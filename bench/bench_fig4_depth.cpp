// Figure 4 reproduction: nesting depth — F2, fp16-F2, F3, fp16-F3, F4
// (Table 4 configurations) relative to fp16-F3R.
//
// Validates the two assumptions of Section 4.1:
//   (i)  splitting FGMRES into nested FGMRES barely changes convergence
//        (F2 vs F3 vs F4 invocation counts similar), and
//   (ii) the innermost F^2 can be replaced by R^2 (F4 vs fp16-F3R similar
//        convergence, fp16-F3R faster by skipping the Arnoldi process);
// plus the negative result that fp16 across 64 or 8 inner FGMRES
// iterations (fp16-F2 / fp16-F3) overflows the format and stalls.
#include "bench_common.hpp"
#include "core/variants.hpp"

using namespace nk;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  auto cfg = bench::parse_bench_options(
      opt, {"hpcg_5_5_5", "thermal2", "hpgmp_5_5_5", "atmosmodd"});
  bench::print_header("Figure 4 — nesting depth (Table 4 variants) vs fp16-F3R", cfg);

  Table t({"matrix", "solver", "rel-conv-speed", "rel-performance", "M-applies", "time[s]",
           "conv"});
  for (const auto& name : cfg.matrices) {
    auto p = prepare_standin(name, cfg.scale, 7, cfg.use_sell());
    auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, cfg.nblocks);

    const auto base = bench::best_of(cfg.runs, [&] {
      return run_nested(p, m, f3r_config(Prec::FP16), f3r_termination(cfg.rtol));
    });
    t.add_row({name, "fp16-F3R", "1.00", "1.00",
               base.converged
                   ? Table::fmt_int(static_cast<long long>(base.precond_invocations))
                   : "-",
               Table::fmt(base.seconds, 3), base.converged ? "yes" : "NO"});

    for (const auto& vname : variant_names()) {
      const auto r = bench::best_of(cfg.runs, [&] {
        return run_nested(p, m, variant_config(vname), f3r_termination(cfg.rtol));
      });
      if (!r.converged || !base.converged) {
        t.add_row({name, vname, "-", "-", "-", Table::fmt(r.seconds, 3),
                   r.converged ? "yes" : "NO"});
        continue;
      }
      const double conv = static_cast<double>(base.precond_invocations) /
                          static_cast<double>(r.precond_invocations);
      t.add_row({name, vname, Table::fmt(conv, 2), Table::fmt(base.seconds / r.seconds, 2),
                 Table::fmt_int(static_cast<long long>(r.precond_invocations)),
                 Table::fmt(r.seconds, 3), "yes"});
    }
  }
  bench::finish_table(t, cfg);
  std::cout << "expected shape (paper Fig. 4): F4 ≈ fp16-F3R in convergence but slower;\n"
               "F2 converges slightly faster but runs slower (Arnoldi cost); fp16-F2 and\n"
               "often fp16-F3 lose convergence speed (fp16 over long inner iterations).\n";
  return 0;
}
