// Figure 1 reproduction (CPU node): performance relative to fp64-F3R.
//
// For every matrix, runs the full Figure 1 solver set with the CPU-node
// configuration (CSR storage, block-Jacobi ILU(0)/IC(0) with the Table 2
// α_ILU factors):
//
//   fp64-F3R (baseline) · fp32-F3R · fp16-F3R
//   fp64/fp32/fp16-CG          (symmetric matrices)
//   fp64/fp32/fp16-BiCGStab    (nonsymmetric matrices)
//   fp64/fp32/fp16-FGMRES(64)
//   fp16-F3R-best (--best; parameter search over the paper's m2-m3-m4 box)
//
// Output mirrors the figure: one speedup-over-fp64-F3R row per matrix,
// plus the fp64-F3R absolute time and the fp16-F3R-best parameters that
// the paper prints above the bars.
#include "bench_common.hpp"

using namespace nk;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  auto cfg = bench::parse_bench_options(
      opt, {"ecology2", "thermal2", "tmt_sym", "apache2", "audikw_1", "hpcg_5_5_5",
            "Transport", "atmosmodd", "t2em", "tmt_unsym", "hpgmp_5_5_5", "ss"});
  bench::print_header("Figure 1 — CPU node: speedup over fp64-F3R", cfg);

  FlatSolverCaps caps;
  caps.rtol = cfg.rtol;
  caps.max_iters = cfg.max_iters;

  Table summary({"matrix", "sym", "fp64-F3R[s]", "fp32-F3R", "fp16-F3R", "fp64-KRY",
                 "fp32-KRY", "fp16-KRY", "fp64-FG64", "fp32-FG64", "fp16-FG64", "best",
                 "best-params"});
  std::vector<double> sp32, sp16;  // speedup collections for the closing summary

  for (const auto& name : cfg.matrices) {
    auto p = prepare_standin(name, cfg.scale, 7, cfg.use_sell());
    auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, cfg.nblocks);

    auto f3r = [&](Prec prec) {
      return bench::best_of(cfg.runs, [&] {
        return run_nested(p, m, f3r_config(prec), f3r_termination(cfg.rtol));
      });
    };
    const auto base = f3r(Prec::FP64);
    const auto r32 = f3r(Prec::FP32);
    const auto r16 = f3r(Prec::FP16);

    auto krylov = [&](Prec st) {
      return bench::best_of(cfg.runs, [&] {
        return p.symmetric ? run_cg(p, *m, st, caps) : run_bicgstab(p, *m, st, caps);
      });
    };
    const auto k64 = krylov(Prec::FP64);
    const auto k32 = krylov(Prec::FP32);
    const auto k16 = krylov(Prec::FP16);

    auto fg = [&](Prec st) {
      return bench::best_of(cfg.runs,
                            [&] { return run_fgmres_restarted(p, *m, st, 64, caps); });
    };
    const auto g64 = fg(Prec::FP64);
    const auto g32 = fg(Prec::FP32);
    const auto g16 = fg(Prec::FP16);

    std::string best_cell = "-", best_params = "-";
    if (cfg.best) {
      const auto best = run_f3r_best(p, m, cfg.rtol, 10);
      best_cell = bench::speedup_cell(base, best.result);
      best_params = best.param_label;
    }

    summary.add_row({name, p.symmetric ? "y" : "n",
                     base.converged ? Table::fmt(base.seconds, 3) : "FAIL",
                     bench::speedup_cell(base, r32), bench::speedup_cell(base, r16),
                     bench::speedup_cell(base, k64), bench::speedup_cell(base, k32),
                     bench::speedup_cell(base, k16), bench::speedup_cell(base, g64),
                     bench::speedup_cell(base, g32), bench::speedup_cell(base, g16),
                     best_cell, best_params});

    if (base.converged && r32.converged) sp32.push_back(base.seconds / r32.seconds);
    if (base.converged && r16.converged) sp16.push_back(base.seconds / r16.seconds);

    // Per-matrix detail (iteration/invocation accounting feeding Table 3).
    std::cout << "\n-- " << name << " (n=" << p.a->size()
              << ", nnz=" << p.a->csr_fp64().nnz() << ", M=" << m->name() << ") --\n";
    Table detail({"solver", "conv", "outer-its", "M-applies", "time[s]", "relres"});
    for (const auto* r : {&base, &r32, &r16, &k64, &k32, &k16, &g64, &g32, &g16}) {
      detail.add_row({r->solver, r->converged ? "yes" : "NO",
                      Table::fmt_int(r->iterations),
                      Table::fmt_int(static_cast<long long>(r->precond_invocations)),
                      Table::fmt(r->seconds, 3), Table::fmt_sci(r->final_relres)});
    }
    detail.print(std::cout);
  }

  print_banner(std::cout, "Figure 1 summary (values are speedup over fp64-F3R)");
  bench::finish_table(summary, cfg);
  if (!sp32.empty())
    std::cout << "geomean speedup fp32-F3R over fp64-F3R: " << Table::fmt(geomean(sp32), 2)
              << "x (paper CPU: ~1.46x)\n";
  if (!sp16.empty())
    std::cout << "geomean speedup fp16-F3R over fp64-F3R: " << Table::fmt(geomean(sp16), 2)
              << "x (paper CPU: 1.59-2.42x)\n";
  std::cout << "note: fp16 gains require the working set to exceed the last-level cache;\n"
               "      increase --scale to enter the paper's memory-bound regime.\n";
  return 0;
}
