// Table 2 reproduction: the test-matrix inventory.
//
// Prints n, nnz, nnz/n, symmetry and the α_ILU / α_AINV factors for every
// stand-in at the requested scale, mirroring the paper's Table 2 (our
// sizes are scaled to a single node; --scale grows them).
#include "bench_common.hpp"
#include "sparse/stats.hpp"

int main(int argc, char** argv) {
  nk::Options opt(argc, argv);
  auto cfg = nk::bench::parse_bench_options(opt, {"all"});
  nk::bench::print_header("Table 2 — test matrices", cfg);

  nk::Table t({"matrix", "standin", "n", "nnz", "nnz/n", "sym", "a_ILU", "a_AINV"});
  for (const auto& name : cfg.matrices) {
    const auto prob = nk::gen::make_problem(name, cfg.scale);
    const auto s = nk::analyze(prob.a);
    t.add_row({prob.spec.paper_name,
               prob.spec.exact ? "(exact generator)" : prob.spec.standin,
               nk::Table::fmt_int(s.n), nk::Table::fmt_int(s.nnz),
               nk::Table::fmt(s.nnz_per_row, 2),
               s.numerically_symmetric ? "yes" : "no",
               nk::Table::fmt(prob.spec.alpha_ilu, 1),
               nk::Table::fmt(prob.spec.alpha_ainv, 1)});
  }
  nk::bench::finish_table(t, cfg);
  return 0;
}
