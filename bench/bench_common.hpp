// Shared plumbing for the figure/table reproduction benches.
//
// Every bench binary accepts:
//   --matrices=a,b,c   matrix subset (paper names; "all" = full Table 2 set)
//   --scale=N          linear-size multiplier for the generated problems
//   --rtol=X           convergence tolerance (paper: 1e-8)
//   --max-iters=N      cap for the flat solvers (paper: 19200)
//   --runs=N           repetitions; the minimum time is reported (paper
//                      averages 3 runs; min is steadier on shared machines)
//   --nblocks=N        block count for block-Jacobi ILU(0)/IC(0)
//   --csv=path         also write the result table as CSV
//   --best             include the fp16-F3R-best parameter search (slow)
//   --format=csr|sell  sparse storage for the solver operators (sell =
//                      sliced ELLPACK, the paper's GPU-node layout)
//
// Default matrix subsets are chosen so the whole bench suite finishes in
// minutes on a single core; pass --matrices=all --scale=2 (or more) for
// paper-scale runs.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/env.hpp"
#include "base/options.hpp"
#include "base/table.hpp"
#include "core/runner.hpp"
#include "sparse/gen/suite_standins.hpp"

namespace nk::bench {

struct BenchConfig {
  std::vector<std::string> matrices;
  int scale = 1;
  double rtol = 1e-8;
  int max_iters = 3000;
  int runs = 1;
  int nblocks = 64;
  std::string csv;
  bool best = false;
  bool gpu_sim = false;
  std::string format = "csr";  ///< sparse storage: "csr" or "sell"

  [[nodiscard]] bool use_sell() const { return format == "sell"; }
};

inline BenchConfig parse_bench_options(const Options& opt,
                                       std::vector<std::string> default_matrices) {
  // A typo'd NKRYLOV_BACKEND must kill the bench up front, not tag hours
  // of records with a backend the run never used.
  require_backend_env_cli();
  BenchConfig c;
  c.matrices = opt.get_list("matrices", default_matrices);
  if (c.matrices.size() == 1 && c.matrices[0] == "all") {
    c.matrices.clear();
    for (const auto& s : gen::standin_catalog()) c.matrices.push_back(s.paper_name);
  }
  if (c.matrices.size() == 1 && c.matrices[0] == "sym") c.matrices = gen::symmetric_set();
  if (c.matrices.size() == 1 && c.matrices[0] == "nonsym")
    c.matrices = gen::nonsymmetric_set();
  c.scale = opt.get_int("scale", 1);
  c.rtol = opt.get_double("rtol", 1e-8);
  c.max_iters = opt.get_int("max-iters", 3000);
  c.runs = opt.get_int("runs", 1);
  c.nblocks = opt.get_int("nblocks", 64);
  c.csv = opt.get("csv", "");
  c.best = opt.get_bool("best", false);
  c.gpu_sim = opt.get_bool("gpu-sim", false);
  c.format = opt.get("format", "csr");
  if (c.format != "csr" && c.format != "sell") {
    // Same discipline as the Options numeric parsers: one line naming the
    // flag, then exit(2) — not an uncaught throw that hides the flag.
    std::cerr << "error: invalid value '" << c.format << "' for --format (csr|sell)\n";
    std::exit(2);
  }
  return c;
}

inline void print_header(const std::string& what, const BenchConfig& c) {
  std::cout << "nkrylov bench: " << what << "\n";
  std::cout << "env: " << env_summary() << "\n";
  std::cout << "config: scale=" << c.scale << " rtol=" << c.rtol
            << " max-iters=" << c.max_iters << " runs=" << c.runs
            << " nblocks=" << c.nblocks << " format=" << c.format
            << (c.gpu_sim ? " [GPU-sim]" : " [CPU]") << "\n";
  std::cout << "matrices:";
  for (const auto& m : c.matrices) std::cout << " " << m;
  std::cout << "\n";
}

/// Re-run a solve `runs` times and keep the fastest (convergence metadata
/// is identical across runs because everything is deterministic).
template <class Fn>
SolveResult best_of(int runs, Fn&& fn) {
  SolveResult best = fn();
  for (int r = 1; r < runs; ++r) {
    SolveResult next = fn();
    if (next.seconds < best.seconds) best = next;
  }
  return best;
}

/// "1.43x" (or "-" when the solver failed).
inline std::string speedup_cell(const SolveResult& base, const SolveResult& r) {
  if (!r.converged) return "-";
  if (!base.converged || base.seconds <= 0.0) return "?";
  return Table::fmt(base.seconds / r.seconds, 2) + "x";
}

inline void finish_table(Table& t, const BenchConfig& c) {
  t.print(std::cout);
  if (!c.csv.empty() && t.write_csv(c.csv)) std::cout << "(csv written to " << c.csv << ")\n";
}

// ---------------------------------------------------------------------------
// Machine-readable perf records (BENCH_*.json) — the repo's perf trajectory.
// One flat array of records so downstream tooling can diff runs:
//   {"name": ..., "n": ..., "nnz": ..., "seconds": ..., "gbps": ...}
// ---------------------------------------------------------------------------

/// One timed kernel/solver measurement.
struct PerfRecord {
  std::string name;     ///< kernel id, e.g. "spmv_sell_fp16_fp32"
  std::int64_t n = 0;   ///< problem size (rows / vector length)
  std::int64_t nnz = 0; ///< nonzeros (0 for BLAS-1 kernels)
  double seconds = 0.0; ///< min wall time of one kernel invocation
  double gbps = 0.0;    ///< effective memory bandwidth (0 if not meaningful)
};

/// Collects PerfRecords and writes them as a JSON document with enough
/// environment metadata to interpret the numbers later.
class JsonReport {
 public:
  explicit JsonReport(std::string tool) : tool_(std::move(tool)) {}

  void add(PerfRecord r) { records_.push_back(std::move(r)); }
  void add(const std::string& name, std::int64_t n, std::int64_t nnz, double seconds,
           double gbps) {
    records_.push_back({name, n, nnz, seconds, gbps});
  }

  [[nodiscard]] const std::vector<PerfRecord>& records() const { return records_; }

  /// Serialize the whole report ({schema, tool, env, threads, records}).
  [[nodiscard]] std::string to_json() const {
    std::ostringstream os;
    os.precision(9);
    os << "{\n  \"schema\": \"nkrylov-bench-v1\",\n";
    os << "  \"tool\": \"" << escape(tool_) << "\",\n";
    os << "  \"env\": \"" << escape(env_summary()) << "\",\n";
    os << "  \"threads\": " << num_threads() << ",\n";
    os << "  \"records\": [";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const auto& r = records_[i];
      os << (i ? ",\n    " : "\n    ");
      os << "{\"name\": \"" << escape(r.name) << "\", \"n\": " << r.n
         << ", \"nnz\": " << r.nnz << ", \"seconds\": " << r.seconds
         << ", \"gbps\": " << r.gbps << "}";
    }
    os << "\n  ]\n}\n";
    return os.str();
  }

  /// Write to `path`; returns false (and reports) on I/O failure.
  bool write(const std::string& path) const {
    std::ofstream f(path);
    if (!f) {
      std::cerr << "JsonReport: cannot open " << path << "\n";
      return false;
    }
    f << to_json();
    return static_cast<bool>(f);
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;  // control chars: drop
      out.push_back(c);
    }
    return out;
  }

  std::string tool_;
  std::vector<PerfRecord> records_;
};

}  // namespace nk::bench
