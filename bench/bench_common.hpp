// Shared plumbing for the figure/table reproduction benches.
//
// Every bench binary accepts:
//   --matrices=a,b,c   matrix subset (paper names; "all" = full Table 2 set)
//   --scale=N          linear-size multiplier for the generated problems
//   --rtol=X           convergence tolerance (paper: 1e-8)
//   --max-iters=N      cap for the flat solvers (paper: 19200)
//   --runs=N           repetitions; the minimum time is reported (paper
//                      averages 3 runs; min is steadier on shared machines)
//   --nblocks=N        block count for block-Jacobi ILU(0)/IC(0)
//   --csv=path         also write the result table as CSV
//   --best             include the fp16-F3R-best parameter search (slow)
//
// Default matrix subsets are chosen so the whole bench suite finishes in
// minutes on a single core; pass --matrices=all --scale=2 (or more) for
// paper-scale runs.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "base/env.hpp"
#include "base/options.hpp"
#include "base/table.hpp"
#include "core/runner.hpp"
#include "sparse/gen/suite_standins.hpp"

namespace nk::bench {

struct BenchConfig {
  std::vector<std::string> matrices;
  int scale = 1;
  double rtol = 1e-8;
  int max_iters = 3000;
  int runs = 1;
  int nblocks = 64;
  std::string csv;
  bool best = false;
  bool gpu_sim = false;
};

inline BenchConfig parse_bench_options(const Options& opt,
                                       std::vector<std::string> default_matrices) {
  BenchConfig c;
  c.matrices = opt.get_list("matrices", default_matrices);
  if (c.matrices.size() == 1 && c.matrices[0] == "all") {
    c.matrices.clear();
    for (const auto& s : gen::standin_catalog()) c.matrices.push_back(s.paper_name);
  }
  if (c.matrices.size() == 1 && c.matrices[0] == "sym") c.matrices = gen::symmetric_set();
  if (c.matrices.size() == 1 && c.matrices[0] == "nonsym")
    c.matrices = gen::nonsymmetric_set();
  c.scale = opt.get_int("scale", 1);
  c.rtol = opt.get_double("rtol", 1e-8);
  c.max_iters = opt.get_int("max-iters", 3000);
  c.runs = opt.get_int("runs", 1);
  c.nblocks = opt.get_int("nblocks", 64);
  c.csv = opt.get("csv", "");
  c.best = opt.get_bool("best", false);
  c.gpu_sim = opt.get_bool("gpu-sim", false);
  return c;
}

inline void print_header(const std::string& what, const BenchConfig& c) {
  std::cout << "nkrylov bench: " << what << "\n";
  std::cout << "env: " << env_summary() << "\n";
  std::cout << "config: scale=" << c.scale << " rtol=" << c.rtol
            << " max-iters=" << c.max_iters << " runs=" << c.runs
            << " nblocks=" << c.nblocks << (c.gpu_sim ? " [GPU-sim]" : " [CPU]") << "\n";
  std::cout << "matrices:";
  for (const auto& m : c.matrices) std::cout << " " << m;
  std::cout << "\n";
}

/// Re-run a solve `runs` times and keep the fastest (convergence metadata
/// is identical across runs because everything is deterministic).
template <class Fn>
SolveResult best_of(int runs, Fn&& fn) {
  SolveResult best = fn();
  for (int r = 1; r < runs; ++r) {
    SolveResult next = fn();
    if (next.seconds < best.seconds) best = next;
  }
  return best;
}

/// "1.43x" (or "-" when the solver failed).
inline std::string speedup_cell(const SolveResult& base, const SolveResult& r) {
  if (!r.converged) return "-";
  if (!base.converged || base.seconds <= 0.0) return "?";
  return Table::fmt(base.seconds / r.seconds, 2) + "x";
}

inline void finish_table(Table& t, const BenchConfig& c) {
  t.print(std::cout);
  if (!c.csv.empty() && t.write_csv(c.csv)) std::cout << "(csv written to " << c.csv << ")\n";
}

}  // namespace nk::bench
