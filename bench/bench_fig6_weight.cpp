// Figure 6 reproduction: adaptive weight vs static weights
// ω ∈ {0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3}.
//
// The paper's point is stability: a well-chosen static ω can win on a
// given matrix, but the static approach is sensitive (it fails outright on
// audikw_1 for every tested ω) while the adaptive scheme is near-best
// everywhere.  Values < 1 mean the adaptive strategy was better.
#include "bench_common.hpp"

using namespace nk;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  auto cfg = bench::parse_bench_options(
      opt, {"hpcg_5_5_5", "thermal2", "audikw_1", "hpgmp_5_5_5", "atmosmodd"});
  bench::print_header("Figure 6 — adaptive vs static Richardson weight", cfg);

  Table t({"matrix", "omega", "performance-vs-adaptive", "conv-speed-vs-adaptive", "conv"});
  for (const auto& name : cfg.matrices) {
    auto p = prepare_standin(name, cfg.scale, 7, cfg.use_sell());
    auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, cfg.nblocks);

    const auto adaptive = bench::best_of(cfg.runs, [&] {
      return run_nested(p, m, f3r_config(Prec::FP16), f3r_termination(cfg.rtol));
    });
    t.add_row({name, "adaptive", "1.00", "1.00", adaptive.converged ? "yes" : "NO"});
    if (!adaptive.converged) continue;

    for (double w : {0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3}) {
      F3rParams prm;
      prm.adaptive = false;
      prm.fixed_weight = static_cast<float>(w);
      const auto r = bench::best_of(cfg.runs, [&] {
        return run_nested(p, m, f3r_config(Prec::FP16, prm), f3r_termination(cfg.rtol));
      });
      if (!r.converged) {
        t.add_row({name, Table::fmt(w, 1), "-", "-", "NO"});
        continue;
      }
      const double perf = adaptive.seconds / r.seconds;
      const double conv = static_cast<double>(adaptive.precond_invocations) /
                          static_cast<double>(r.precond_invocations);
      t.add_row({name, Table::fmt(w, 1), Table::fmt(perf, 2), Table::fmt(conv, 2),
                 "yes"});
    }
  }
  bench::finish_table(t, cfg);
  std::cout << "expected shape (paper Fig. 6): some static weights match or slightly beat\n"
               "adaptive on easy matrices, but static fails (or lags badly) on sensitive\n"
               "ones while adaptive never does — the stability argument for Algorithm 1.\n";
  return 0;
}
