// Ablations beyond the paper's figures, covering the design choices
// DESIGN.md calls out and the paper's future-work directions:
//
//   A. F3R vs conventional two-level iterative refinement (fp64 Richardson
//      outer + low-precision GMRES(8) inner) — the prior-work baseline the
//      nested approach improves on.
//   B. Dynamic inner termination (future work #2): inner FGMRES levels
//      stop once their Givens estimate drops by a factor.
//   C. Chebyshev as the third-level solver (the nested framework "accepts
//      any iterative method"; McInnes et al. use Chebyshev).
//   D. Primary preconditioner sweep: ILU(0)/IC(0) vs SD-AINV vs SSOR vs
//      Neumann(2) vs Jacobi under fp16-F3R.
#include "bench_common.hpp"
#include "precond/neumann.hpp"
#include "precond/ssor.hpp"

using namespace nk;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  auto cfg = bench::parse_bench_options(opt, {"hpcg_5_5_5", "hpgmp_5_5_5", "thermal2"});
  bench::print_header("ablations: IR baseline, dynamic termination, Chebyshev, preconditioners",
                      cfg);

  FlatSolverCaps caps;
  caps.rtol = cfg.rtol;
  caps.max_iters = cfg.max_iters;

  // --- A + B + C on each matrix ---
  Table t({"matrix", "solver", "outer-its", "M-applies", "time[s]", "conv"});
  auto row = [&](const std::string& name, const SolveResult& r) {
    t.add_row({name, r.solver, Table::fmt_int(r.iterations),
               Table::fmt_int(static_cast<long long>(r.precond_invocations)),
               Table::fmt(r.seconds, 3), r.converged ? "yes" : "NO"});
  };

  for (const auto& name : cfg.matrices) {
    auto p = prepare_standin(name, cfg.scale, 7, cfg.use_sell());
    auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, cfg.nblocks);

    row(name, run_nested(p, m, f3r_config(Prec::FP16), f3r_termination(cfg.rtol)));

    // A: conventional iterative refinement baselines.
    row(name, run_ir_gmres(p, *m, Prec::FP32, 8, caps));
    row(name, run_ir_gmres(p, *m, Prec::FP16, 8, caps));

    // B: dynamic inner termination on levels 2 and 3.
    for (double irt : {0.5, 0.1, 0.01}) {
      NestedConfig dyn = f3r_config(Prec::FP16);
      dyn.name = "fp16-F3R-dyn(" + Table::fmt(irt, 2) + ")";
      dyn.levels[1].inner_rtol = irt;
      dyn.levels[2].inner_rtol = irt;
      row(name, run_nested(p, m, dyn, f3r_termination(cfg.rtol)));
    }

    // C: Chebyshev at the third level.
    NestedConfig cheb = f3r_config(Prec::FP16);
    cheb.name = "fp16-F2C-R";
    cheb.levels[2].kind = SolverKind::Chebyshev;
    cheb.levels[2].eig_ratio = 20.0;
    row(name, run_nested(p, m, cheb, f3r_termination(cfg.rtol)));
  }
  print_banner(std::cout, "A/B/C: refinement baseline, dynamic termination, Chebyshev level");
  bench::finish_table(t, cfg);

  // --- D: primary preconditioner sweep under fp16-F3R ---
  Table tp({"matrix", "primary M", "outer-its", "M-applies", "time[s]", "conv"});
  for (const auto& name : cfg.matrices) {
    auto p = prepare_standin(name, cfg.scale, 7, cfg.use_sell());
    struct Entry {
      std::string label;
      std::shared_ptr<PrimaryPrecond> m;
    };
    std::vector<Entry> primaries;
    primaries.push_back({"bj-ilu0/ic0", make_primary(p, PrecondKind::BlockJacobiIluIc,
                                                     cfg.nblocks)});
    primaries.push_back({"sd-ainv", make_primary(p, PrecondKind::SdAinv)});
    primaries.push_back(
        {"ssor(1.0)", std::make_shared<SsorPrecond>(
                          p.a->csr_fp64(), SsorPrecond::Config{cfg.nblocks, 1.0})});
    primaries.push_back({"neumann(2)", std::make_shared<NeumannPrecond>(
                                           p.a->csr_fp64(), NeumannPrecond::Config{2})});
    primaries.push_back({"jacobi", make_primary(p, PrecondKind::Jacobi)});
    for (auto& e : primaries) {
      const auto r = run_nested(p, e.m, f3r_config(Prec::FP16), f3r_termination(cfg.rtol));
      tp.add_row({name, e.label, Table::fmt_int(r.iterations),
                  Table::fmt_int(static_cast<long long>(r.precond_invocations)),
                  Table::fmt(r.seconds, 3), r.converged ? "yes" : "NO"});
    }
  }
  print_banner(std::cout, "D: primary preconditioner sweep under fp16-F3R");
  tp.print(std::cout);
  return 0;
}
