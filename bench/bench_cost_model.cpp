// Memory-access model (Equations (1)-(3)) tables and the nesting advisor,
// reproducing the Section 4.1 reasoning that derives F3R — including the
// paper's worked example (cA = 45, m = 64, minimizer m̄ = 10) — and then
// cross-checking the model against MEASURED per-invocation data volumes.
#include "bench_common.hpp"
#include "core/cost_model.hpp"

using namespace nk;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  auto cfg = bench::parse_bench_options(opt, {"hpcg_5_5_5"});
  bench::print_header("Equations (1)-(3) — memory-access model + nesting advisor", cfg);

  // 1. The paper's worked example.
  print_banner(std::cout, "paper example: cA = cM = 45 (30 nnz/row fp64), m = 64");
  {
    const double ca = 45.0, cm = 45.0;
    Table t({"m_outer", "O(F,F)  Eq(2)", "O(F,R)  Eq(3)", "vs flat O(F^64)"});
    const double flat = cost_fgmres(ca, cm, 64);
    for (int mo : {2, 4, 6, 8, 10, 12, 16, 24, 32}) {
      const double mi = 64.0 / mo;
      const double ff = cost_nested_ff(ca, cm, mo, mi);
      const double fr = cost_nested_fr(ca, cm, mo, mi);
      t.add_row({Table::fmt_int(mo), Table::fmt(ff, 0), Table::fmt(fr, 0),
                 Table::fmt(ff / flat, 2)});
    }
    t.print(std::cout);
    std::cout << "flat O(F^64, M) = " << Table::fmt(flat, 0) << "\n";
    std::cout << "advisor: " << advice_summary(advise_split(ca, cm, 64, 1)) << " (FGMRES only)\n";
    std::cout << "advisor: " << advice_summary(advise_split(ca, cm, 64)) << "\n";
  }

  // 2. Model of the actual F3R configuration per precision.
  print_banner(std::cout, "modelled accesses per 64 primary applications (per row of A)");
  {
    Table t({"config", "cA basis", "accesses", "vs fp64 flat F^64"});
    const double nnzr = 26.6;  // HPCG-like
    const double flat64 = cost_fgmres(access_constant(nnzr, 8), access_constant(nnzr, 8), 64);
    struct Row {
      const char* name;
      std::size_t bytes;
    };
    for (const Row& r : {Row{"fp64-F3R (F8,F4,R2)", 8}, Row{"fp32-F3R", 4},
                         Row{"fp16-F3R", 2}}) {
      const double ca = access_constant(nnzr, r.bytes);
      const double c = cost_nested(ca, ca, {{'F', 8}, {'F', 4}, {'R', 2}});
      t.add_row({r.name, Table::fmt(ca, 1), Table::fmt(c, 0), Table::fmt(flat64 / c, 2) + "x"});
    }
    t.print(std::cout);
  }

  // 3. Advisor across nnz/row regimes (Table 2 spans ~4 to ~82 nnz/row).
  print_banner(std::cout, "nesting advice across sparsity regimes (m = 64)");
  {
    Table t({"nnz/row", "cA(fp64)", "advice"});
    for (double nnzr : {4.0, 7.0, 27.0, 45.0, 82.0}) {
      const double ca = access_constant(nnzr, 8);
      t.add_row({Table::fmt(nnzr, 0), Table::fmt(ca, 1),
                 advice_summary(advise_split(ca, ca, 64))});
    }
    t.print(std::cout);
  }

  // 4. Cross-check against a measured problem: count real SpMV/M-apply
  // volumes of one outer F3R iteration.
  print_banner(std::cout, "model vs measured bytes per outer iteration (fp16-F3R)");
  for (const auto& name : cfg.matrices) {
    auto p = prepare_standin(name, cfg.scale, 7, cfg.use_sell());
    auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, cfg.nblocks);
    const auto res = run_nested(p, m, f3r_config(Prec::FP16), f3r_termination(cfg.rtol));
    if (!res.converged || res.iterations == 0) continue;
    const double applies_per_outer =
        static_cast<double>(res.precond_invocations) / res.iterations;
    std::cout << name << ": " << Table::fmt(applies_per_outer, 1)
              << " M-applies per outer iteration (model: m2*m3*m4 = 64), "
              << res.iterations << " outer its, relres "
              << Table::fmt_sci(res.final_relres) << "\n";
  }
  return 0;
}
