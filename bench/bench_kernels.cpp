// Kernel microbenchmarks + fused-kernel verification — the perf-tracking
// bench behind BENCH_kernels.json.
//
// Measures, across the paper's precision combos (fp64 / fp32 / fp16 with
// fp32 accumulation):
//   * BLAS-1:  dot, axpy, and the fused blas_block kernels dot_many /
//              axpy_many / scal_copy against their unfused sequences
//   * Arnoldi: one full classical-Gram-Schmidt step (k projections +
//              corrections + normalize-copy), unfused blas1 sequence vs
//              the fused hot path FGMRES now runs
//   * SpMV:    CSR vs SELL-C (SIMD column-major) vs the pre-SIMD row-wise
//              SELL reference, on HPCG/HPGMP stencil matrices
//   * Batched solves: 8-RHS lockstep CG vs 8 sequential solves, and the
//              staggered-convergence 16-RHS CG/FGMRES benches comparing
//              active-set compaction against the masked-lockstep
//              reference (gated on bit-identical per-column iterates)
//
// Every fused kernel is checked against its unfused reference first; any
// disagreement beyond tolerance makes the binary exit non-zero (CI runs
// this as the perf-smoke job).  Results land in BENCH_kernels.json
// (schema nkrylov-bench-v1: name, n, nnz, seconds, GB/s); CI diffs the
// fused-vs-reference ratios against the committed copy via
// tools/bench_diff.py.
//
// Flags: --scale=N (problem size multiplier), --n=N (BLAS-1 length,
// default 100000·scale), --runs=R (min-of-R timing, default 5),
// --json=path (default BENCH_kernels.json).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <future>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "base/blas1.hpp"
#include "base/blas_block.hpp"
#include "base/options.hpp"
#include "base/panel.hpp"
#include "base/rng.hpp"
#include "base/simd_fp16.hpp"
#include "base/timer.hpp"
#include "backend/kernels.hpp"
#include "bench_common.hpp"
#include "core/problem.hpp"
#include "core/service/executor.hpp"
#include "core/service/fingerprint.hpp"
#include "core/session.hpp"
#include "core/tune/features.hpp"
#include "core/tune/perf_db.hpp"
#include "core/tune/shortlist.hpp"
#include "krylov/cg.hpp"
#include "krylov/fgmres.hpp"
#include "krylov/operator.hpp"
#include "precond/block_jacobi_ilu0.hpp"
#include "precond/jacobi.hpp"
#include "sparse/gen/laplace.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/gen/suite_standins.hpp"
#include "sparse/scaling.hpp"
#include "sparse/sell.hpp"
#include "sparse/spmm.hpp"
#include "sparse/spmv.hpp"

using namespace nk;

namespace {

int g_runs = 5;
bool g_all_ok = true;

/// Min-of-runs wall time of one invocation of `fn` (one untimed warmup).
template <class Fn>
double time_min(Fn&& fn) {
  fn();
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < g_runs; ++r) {
    WallTimer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

/// Record a fused-vs-reference agreement check; failures flip the exit code.
void check(const std::string& what, double max_abs_diff, double tol) {
  if (!(max_abs_diff <= tol) || !std::isfinite(max_abs_diff)) {
    std::cerr << "VERIFY FAIL: " << what << " max|diff|=" << max_abs_diff
              << " tol=" << tol << "\n";
    g_all_ok = false;
  }
}

template <class T>
const char* tname() {
  if constexpr (std::is_same_v<T, double>) return "fp64";
  else if constexpr (std::is_same_v<T, float>) return "fp32";
  else return "fp16";
}

/// Agreement tolerance for values of magnitude ~`scale` computed in T's
/// accumulator precision.
template <class T>
double tol_for(double scale) {
  const double eps = std::is_same_v<T, double> ? 1e-12 : 1e-5;  // fp16 accumulates fp32
  return eps * std::max(1.0, scale);
}

// ---------------------------------------------------------------------------
// BLAS-1 + fused-kernel benches (one precision)
// ---------------------------------------------------------------------------

template <class T>
void bench_blas1(bench::JsonReport& rep, std::int64_t n) {
  const int k = 8;  // basis size of the paper's second F3R level
  const auto nn = static_cast<std::size_t>(n);
  const auto xd = random_vector<double>(nn * static_cast<std::size_t>(k + 1), 11, -1.0, 1.0);
  std::vector<T> vbuf = converted<T>(xd);                 // k basis rows + spare
  std::vector<T> w = converted<T>(random_vector<double>(nn, 12, -1.0, 1.0));
  std::vector<T> vnext(nn);
  using S = acc_t<T>;
  std::vector<S> h(static_cast<std::size_t>(k), S{0});
  // Tiny coefficients keep repeated unrestored axpy applications bounded.
  for (int j = 0; j < k; ++j) h[static_cast<std::size_t>(j)] = static_cast<S>(1e-8 * (j + 1));
  std::vector<S> dots(static_cast<std::size_t>(k)), dots_ref(static_cast<std::size_t>(k));
  const std::string p = tname<T>();
  const double vec_bytes = static_cast<double>(n) * sizeof(T);

  auto vrow = [&](int j) {
    return std::span<const T>(vbuf.data() + static_cast<std::size_t>(j) * nn, nn);
  };

  // --- verification -------------------------------------------------------
  blas::dot_many(vbuf.data(), n, k, std::span<const T>(w), dots.data());
  for (int j = 0; j < k; ++j) dots_ref[j] = blas::dot(vrow(j), std::span<const T>(w));
  double dmax = 0.0;
  for (int j = 0; j < k; ++j)
    dmax = std::max(dmax, std::abs(static_cast<double>(dots[j]) - static_cast<double>(dots_ref[j])));
  check("dot_many_" + p, dmax, tol_for<T>(static_cast<double>(n)));

  {
    std::vector<T> wf = w, wu = w;
    blas::axpy_many(vbuf.data(), n, k, h.data(), std::span<T>(wf), /*subtract=*/true);
    for (int j = 0; j < k; ++j) blas::axpy(-h[j], vrow(j), std::span<T>(wu));
    double amax = 0.0;
    for (std::size_t i = 0; i < nn; ++i)
      amax = std::max(amax, std::abs(static_cast<double>(wf[i]) - static_cast<double>(wu[i])));
    check("axpy_many_" + p, amax, 0.0);  // element-local chains: bit-exact

    std::vector<T> sc(nn), su = w;
    blas::scal_copy(S{2} / S{3}, std::span<const T>(w), std::span<T>(sc));
    blas::scal(S{2} / S{3}, std::span<T>(su));
    double smax = 0.0;
    for (std::size_t i = 0; i < nn; ++i)
      smax = std::max(smax, std::abs(static_cast<double>(sc[i]) - static_cast<double>(su[i])));
    check("scal_copy_" + p, smax, 0.0);  // same per-element op: bit-exact
  }

  // --- timing -------------------------------------------------------------
  double s = time_min([&] {
    auto d = blas::dot(vrow(0), std::span<const T>(w));
    asm volatile("" ::"r"(&d) : "memory");
  });
  rep.add("dot_" + p, n, 0, s, 2 * vec_bytes / s / 1e9);

  s = time_min([&] {
    blas::dot_many(vbuf.data(), n, k, std::span<const T>(w), dots.data());
    asm volatile("" ::"r"(dots.data()) : "memory");
  });
  rep.add("dot_many_" + p + "_k8", n, 0, s, (k + 1) * vec_bytes / s / 1e9);

  s = time_min([&] {
    for (int j = 0; j < k; ++j) dots_ref[j] = blas::dot(vrow(j), std::span<const T>(w));
    asm volatile("" ::"r"(dots_ref.data()) : "memory");
  });
  rep.add("dot_x8_" + p, n, 0, s, 2 * k * vec_bytes / s / 1e9);

  s = time_min([&] {
    blas::axpy_many(vbuf.data(), n, k, h.data(), std::span<T>(w), true);
    asm volatile("" ::"r"(w.data()) : "memory");
  });
  rep.add("axpy_many_" + p + "_k8", n, 0, s, (k + 2) * vec_bytes / s / 1e9);

  s = time_min([&] {
    for (int j = 0; j < k; ++j) blas::axpy(-h[j], vrow(j), std::span<T>(w));
    asm volatile("" ::"r"(w.data()) : "memory");
  });
  rep.add("axpy_x8_" + p, n, 0, s, 3 * k * vec_bytes / s / 1e9);

  s = time_min([&] {
    blas::scal_copy(S{2} / S{3}, std::span<const T>(w), std::span<T>(vnext));
    asm volatile("" ::"r"(vnext.data()) : "memory");
  });
  rep.add("scal_copy_" + p, n, 0, s, 2 * vec_bytes / s / 1e9);

  s = time_min([&] {
    blas::scal(S{1.0000001}, std::span<T>(w));
    blas::copy(std::span<const T>(w), std::span<T>(vnext));
    asm volatile("" ::"r"(vnext.data()) : "memory");
  });
  rep.add("scal_plus_copy_" + p, n, 0, s, 4 * vec_bytes / s / 1e9);

  // --- dot_cols: pairwise column dots over a panel, both layouts ----------
  // vbuf doubles as a row-major X panel (column j contiguous at j·nn); Y is
  // an independent panel.  The colmajor (interleaved) variant runs on
  // transposed copies of the same data and must match bit-for-bit —
  // PanelLayout changes addressing only, never per-column accumulation
  // order (the contract base/panel.hpp documents).
  {
    const std::vector<T> ybuf =
        converted<T>(random_vector<double>(nn * static_cast<std::size_t>(k), 13, -1.0, 1.0));
    const auto ldn = static_cast<std::ptrdiff_t>(nn);
    std::vector<S> cd(static_cast<std::size_t>(k)), cd_cm(static_cast<std::size_t>(k)),
        cd_ref(static_cast<std::size_t>(k));

    blas::dot_cols(vbuf.data(), ldn, ybuf.data(), ldn, k, nn, cd.data());
    for (int j = 0; j < k; ++j)
      cd_ref[j] = blas::dot(vrow(j), std::span<const T>(ybuf.data() + static_cast<std::size_t>(j) * nn, nn));
    double cmax = 0.0;
    for (int j = 0; j < k; ++j)
      cmax = std::max(cmax, std::abs(static_cast<double>(cd[j]) - static_cast<double>(cd_ref[j])));
    check("dot_cols_" + p, cmax, tol_for<T>(static_cast<double>(n)));

    std::vector<T> xcm(nn * static_cast<std::size_t>(k)), ycm(nn * static_cast<std::size_t>(k));
    panel_copy(vbuf.data(), ldn, PanelLayout::kRowMajor, xcm.data(),
               static_cast<std::ptrdiff_t>(k), PanelLayout::kColMajor, k, ldn);
    panel_copy(ybuf.data(), ldn, PanelLayout::kRowMajor, ycm.data(),
               static_cast<std::ptrdiff_t>(k), PanelLayout::kColMajor, k, ldn);
    blas::dot_cols(xcm.data(), static_cast<std::ptrdiff_t>(k), ycm.data(),
                   static_cast<std::ptrdiff_t>(k), k, nn, cd_cm.data(), nullptr,
                   PanelLayout::kColMajor, PanelLayout::kColMajor);
    double lmax = 0.0;
    for (int j = 0; j < k; ++j)
      lmax = std::max(lmax, std::abs(static_cast<double>(cd_cm[j]) - static_cast<double>(cd[j])));
    check("dot_cols_layout_agreement_" + p, lmax, 0.0);  // addressing-only: bit-exact

    s = time_min([&] {
      blas::dot_cols(vbuf.data(), ldn, ybuf.data(), ldn, k, nn, cd.data());
      asm volatile("" ::"r"(cd.data()) : "memory");
    });
    rep.add("dot_cols_" + p + "_k8", n, 0, s, 2 * k * vec_bytes / s / 1e9);

    s = time_min([&] {
      blas::dot_cols(xcm.data(), static_cast<std::ptrdiff_t>(k), ycm.data(),
                     static_cast<std::ptrdiff_t>(k), k, nn, cd_cm.data(), nullptr,
                     PanelLayout::kColMajor, PanelLayout::kColMajor);
      asm volatile("" ::"r"(cd_cm.data()) : "memory");
    });
    rep.add("dot_cols_cm_" + p + "_k8", n, 0, s, 2 * k * vec_bytes / s / 1e9);
  }
}

// ---------------------------------------------------------------------------
// Fused vs unfused Arnoldi step (the FGMRES inner loop at j = k-1)
// ---------------------------------------------------------------------------

template <class T>
void bench_arnoldi_step(bench::JsonReport& rep, std::int64_t n) {
  const int k = 8;
  const auto nn = static_cast<std::size_t>(n);
  using S = acc_t<T>;
  std::vector<T> vbuf =
      converted<T>(random_vector<double>(nn * static_cast<std::size_t>(k), 21, -1.0, 1.0));
  const std::vector<T> w0 = converted<T>(random_vector<double>(nn, 22, -1.0, 1.0));
  std::vector<T> w(nn), vnext(nn);
  std::vector<S> h(static_cast<std::size_t>(k));
  const std::string p = tname<T>();
  auto vrow = [&](int j) {
    return std::span<const T>(vbuf.data() + static_cast<std::size_t>(j) * nn, nn);
  };

  // Both variants restore w from w0 inside the timed region (the projection
  // drives ‖w‖ toward 0, so an unrestored steady state would hit 1/‖w‖
  // blowups); the restore cost is identical on both sides.
  const double s_unfused = time_min([&] {
    blas::copy(std::span<const T>(w0), std::span<T>(w));
    for (int j = 0; j < k; ++j) h[j] = blas::dot(vrow(j), std::span<const T>(w));
    for (int j = 0; j < k; ++j) blas::axpy(-h[j], vrow(j), std::span<T>(w));
    const S hj1 = blas::nrm2(std::span<const T>(w));
    blas::scal(S{1} / hj1, std::span<T>(w));
    blas::copy(std::span<const T>(w), std::span<T>(vnext));
    asm volatile("" ::"r"(vnext.data()) : "memory");
  });
  rep.add("arnoldi_step_unfused_" + p + "_k8", n, 0, s_unfused, 0.0);

  const double s_fused = time_min([&] {
    blas::copy(std::span<const T>(w0), std::span<T>(w));
    blas::dot_many(vbuf.data(), n, k, std::span<const T>(w), h.data());
    blas::axpy_many(vbuf.data(), n, k, h.data(), std::span<T>(w), /*subtract=*/true);
    const S hj1 = blas::nrm2(std::span<const T>(w));
    blas::scal_copy(S{1} / hj1, std::span<const T>(w), std::span<T>(vnext));
    asm volatile("" ::"r"(vnext.data()) : "memory");
  });
  rep.add("arnoldi_step_fused_" + p + "_k8", n, 0, s_fused, 0.0);

  std::cout << "arnoldi step (" << p << ", n=" << n << ", k=8): unfused "
            << s_unfused * 1e6 << " us, fused " << s_fused * 1e6 << " us  ("
            << s_unfused / s_fused << "x)\n";
}

// ---------------------------------------------------------------------------
// AVX-512 FP16: native binary16 kernels vs the F16C dispatch path
// ---------------------------------------------------------------------------
//
// The scal_fp16 / axpy_fp16 records time whatever blas:: dispatches to
// (F16C unless NKRYLOV_AVX512FP16 opts the native paths in — see
// base/simd_fp16.hpp); the *_avx512fp16 records call the native kernels
// directly, so each pair measures the native advantage with F16C as the
// committed reference.  Native records are emitted only when the build and
// CPU carry the feature; tools/bench_diff.py skips pairs absent from both
// the fresh run and the baseline.

void bench_fp16_native(bench::JsonReport& rep, std::int64_t n) {
  const auto nn = static_cast<std::size_t>(n);
  const double vec_bytes = static_cast<double>(n) * sizeof(half);
  const std::vector<half> x0 = converted<half>(random_vector<double>(nn, 61, -1.0, 1.0));
  const std::vector<half> y0 = converted<half>(random_vector<double>(nn, 62, -1.0, 1.0));
  // Both exactly representable in binary16, so the F16C path (fp32 compute,
  // one rounding at the store) and the native path (binary16 compute)
  // differ by at most 1 ulp_h — the tier simd_fp16.hpp documents, with no
  // extra alpha-rounding term.
  const float as = 0.75f, aa = 0.125f;

  std::vector<half> xb = x0, yb = y0;
  double s = time_min([&] {
    blas::scal(as, std::span<half>(xb));
    asm volatile("" ::"r"(xb.data()) : "memory");
  });
  rep.add("scal_fp16", n, 0, s, 2 * vec_bytes / s / 1e9);

  s = time_min([&] {
    blas::axpy(aa, std::span<const half>(x0), std::span<half>(yb));
    asm volatile("" ::"r"(yb.data()) : "memory");
  });
  rep.add("axpy_fp16", n, 0, s, 3 * vec_bytes / s / 1e9);

  if (!simd_fp16::compiled() || !simd_fp16::cpu_supported()) {
    std::cout << "fp16 native kernels: avx512fp16 "
              << (simd_fp16::compiled() ? "unsupported by this CPU" : "not compiled in")
              << "; skipping *_avx512fp16 records\n";
    return;
  }

  // Verify each native kernel against the dispatch path on fresh copies
  // (identical when NKRYLOV_AVX512FP16 routes blas:: to the same kernels).
  const double ulp_h = 2e-3;  // 1 ulp_h at magnitude <= 2, with headroom
  {
    std::vector<half> xr = x0, xn = x0;
    blas::scal(as, std::span<half>(xr));
    simd_fp16::scal_n(static_cast<half>(as), xn.data(), n);
    double d = 0.0;
    for (std::size_t i = 0; i < nn; ++i)
      d = std::max(d, std::abs(static_cast<double>(xn[i]) - static_cast<double>(xr[i])));
    check("scal_fp16_avx512fp16", d, ulp_h);

    std::vector<half> yr = y0, yn = y0;
    blas::axpy(aa, std::span<const half>(x0), std::span<half>(yr));
    simd_fp16::axpy_n(static_cast<half>(aa), x0.data(), yn.data(), n);
    d = 0.0;
    for (std::size_t i = 0; i < nn; ++i)
      d = std::max(d, std::abs(static_cast<double>(yn[i]) - static_cast<double>(yr[i])));
    check("axpy_fp16_avx512fp16", d, ulp_h);

    const float dn = simd_fp16::dot_n(x0.data(), y0.data(), n);
    const float dr = blas::dot(std::span<const half>(x0), std::span<const half>(y0));
    check("dot_fp16_avx512fp16", std::abs(static_cast<double>(dn) - static_cast<double>(dr)),
          tol_for<half>(static_cast<double>(n)));
  }

  const half ash = static_cast<half>(as), aah = static_cast<half>(aa);
  s = time_min([&] {
    simd_fp16::scal_n(ash, xb.data(), n);
    asm volatile("" ::"r"(xb.data()) : "memory");
  });
  rep.add("scal_fp16_avx512fp16", n, 0, s, 2 * vec_bytes / s / 1e9);

  s = time_min([&] {
    simd_fp16::axpy_n(aah, x0.data(), yb.data(), n);
    asm volatile("" ::"r"(yb.data()) : "memory");
  });
  rep.add("axpy_fp16_avx512fp16", n, 0, s, 3 * vec_bytes / s / 1e9);

  s = time_min([&] {
    auto d = simd_fp16::dot_n(x0.data(), y0.data(), n);
    asm volatile("" ::"r"(&d) : "memory");
  });
  rep.add("dot_fp16_avx512fp16", n, 0, s, 2 * vec_bytes / s / 1e9);
}

// ---------------------------------------------------------------------------
// SpMV: CSR vs SELL-C SIMD vs row-wise SELL reference
// ---------------------------------------------------------------------------

template <class MT, class XT>
void bench_spmv_combo(bench::JsonReport& rep, const std::string& mat_name,
                      const CsrMatrix<MT>& a, const SellMatrix<MT>& s,
                      std::span<const XT> x, const CsrMatrix<double>& a64) {
  const auto n = static_cast<std::int64_t>(a.nrows);
  const auto nnz = static_cast<std::int64_t>(a.nnz());
  const auto nn = static_cast<std::size_t>(a.nrows);
  std::vector<XT> yc(nn), ys(nn), yr(nn);
  const std::string combo =
      std::string(tname<MT>()) + (std::is_same_v<MT, XT> ? "" : std::string("_") + tname<XT>());
  const std::string suffix = combo + "/" + mat_name;

  // Verify: SELL (SIMD and row-wise) against CSR, in fp64 ground truth.
  spmv(a, x, std::span<XT>(yc));
  spmv(s, x, std::span<XT>(ys));
  spmv_rowwise(s, x, std::span<XT>(yr));
  std::vector<double> truth(nn);
  spmv(a64, std::span<const XT>(x), std::span<double>(truth));
  double row_norm = 0.0;  // ~max |row dot| scale for the tolerance
  for (std::size_t i = 0; i < nn; ++i) row_norm = std::max(row_norm, std::abs(truth[i]));
  double dsell = 0.0, drow = 0.0;
  for (std::size_t i = 0; i < nn; ++i) {
    dsell = std::max(dsell, std::abs(static_cast<double>(ys[i]) - static_cast<double>(yc[i])));
    drow = std::max(drow, std::abs(static_cast<double>(yr[i]) - static_cast<double>(ys[i])));
  }
  const double eps = sizeof(MT) == 2 || sizeof(XT) == 2
                         ? (std::is_same_v<XT, half> ? 5e-2 : 1e-3)
                         : (std::is_same_v<MT, float> ? 1e-4 : 1e-11);
  check("spmv_sell_vs_csr_" + suffix, dsell, eps * std::max(1.0, row_norm));
  check("spmv_sell_simd_vs_rowwise_" + suffix, drow, eps * std::max(1.0, row_norm));

  const double csr_bytes = static_cast<double>(nnz) * (sizeof(MT) + 4.0);
  const double sell_bytes = static_cast<double>(s.padded_nnz()) * (sizeof(MT) + 4.0);

  double t = time_min([&] {
    spmv(a, x, std::span<XT>(yc));
    asm volatile("" ::"r"(yc.data()) : "memory");
  });
  rep.add("spmv_csr_" + suffix, n, nnz, t, csr_bytes / t / 1e9);

  t = time_min([&] {
    spmv(s, x, std::span<XT>(ys));
    asm volatile("" ::"r"(ys.data()) : "memory");
  });
  rep.add("spmv_sell_" + suffix, n, nnz, t, sell_bytes / t / 1e9);
  const double t_simd = t;

  t = time_min([&] {
    spmv_rowwise(s, x, std::span<XT>(yr));
    asm volatile("" ::"r"(yr.data()) : "memory");
  });
  rep.add("spmv_sell_rowwise_" + suffix, n, nnz, t, sell_bytes / t / 1e9);
  std::cout << "spmv " << suffix << " (n=" << n << "): sell simd " << t_simd * 1e6
            << " us vs rowwise " << t * 1e6 << " us (" << t / t_simd << "x)\n";
}

// ---------------------------------------------------------------------------
// SpMM: one batched sweep vs k separate SpMVs (the batched-solve kernel)
// ---------------------------------------------------------------------------

template <class MT, class XT>
void bench_spmm_combo(bench::JsonReport& rep, const std::string& mat_name,
                      const CsrMatrix<MT>& a, const SellMatrix<MT>& s, int k) {
  const auto n = static_cast<std::int64_t>(a.nrows);
  const auto nnz = static_cast<std::int64_t>(a.nnz());
  const auto nn = static_cast<std::size_t>(a.nrows);
  const std::string combo =
      std::string(tname<MT>()) + (std::is_same_v<MT, XT> ? "" : std::string("_") + tname<XT>());
  const std::string suffix = combo + "_k" + std::to_string(k) + "/" + mat_name;
  const auto xd = random_vector<double>(nn * static_cast<std::size_t>(k), 71, -1.0, 1.0);
  std::vector<XT> x(xd.size());
  for (std::size_t i = 0; i < xd.size(); ++i) x[i] = static_cast<XT>(xd[i]);
  std::vector<XT> y(nn * static_cast<std::size_t>(k)), yref(nn);

  // Verify: spmm column c must equal spmv on column c — bit-for-bit except
  // fp16 storage with wider vectors, where compiler FMA-contraction freedom
  // across the two loop shapes leaves fp32-rounding-level differences (see
  // spmm.hpp).
  spmm(a, x.data(), static_cast<std::ptrdiff_t>(nn), y.data(),
       static_cast<std::ptrdiff_t>(nn), k);
  double dmax = 0.0, yscale = 0.0;
  for (int c = 0; c < k; ++c) {
    spmv(a, std::span<const XT>(x.data() + static_cast<std::size_t>(c) * nn, nn),
         std::span<XT>(yref));
    for (std::size_t i = 0; i < nn; ++i) {
      dmax = std::max(dmax,
                      std::abs(static_cast<double>(y[static_cast<std::size_t>(c) * nn + i]) -
                               static_cast<double>(yref[i])));
      yscale = std::max(yscale, std::abs(static_cast<double>(yref[i])));
    }
  }
  const double csr_tol = (sizeof(MT) == 2 && !std::is_same_v<MT, XT>)
                             ? 1e-5 * std::max(1.0, yscale)
                             : 0.0;
  check("spmm_csr_vs_spmv_" + suffix, dmax, csr_tol);

  spmm(s, x.data(), static_cast<std::ptrdiff_t>(nn), y.data(),
       static_cast<std::ptrdiff_t>(nn), k);
  dmax = 0.0;
  for (int c = 0; c < k; ++c) {
    spmv(s, std::span<const XT>(x.data() + static_cast<std::size_t>(c) * nn, nn),
         std::span<XT>(yref));
    for (std::size_t i = 0; i < nn; ++i)
      dmax = std::max(dmax,
                      std::abs(static_cast<double>(y[static_cast<std::size_t>(c) * nn + i]) -
                               static_cast<double>(yref[i])));
  }
  check("spmm_sell_vs_spmv_" + suffix, dmax, 0.0);

  // Timing: the batched sweep reads A once; the k-SpMV loop reads it k
  // times.  GB/s uses actual traffic, so the speedup shows as bandwidth.
  const double csr_bytes =
      static_cast<double>(nnz) * (sizeof(MT) + 4.0) + 2.0 * k * n * sizeof(XT);
  double t = time_min([&] {
    spmm(a, x.data(), static_cast<std::ptrdiff_t>(nn), y.data(),
         static_cast<std::ptrdiff_t>(nn), k);
    asm volatile("" ::"r"(y.data()) : "memory");
  });
  rep.add("spmm_csr_" + suffix, n, nnz, t, csr_bytes / t / 1e9);
  const double t_spmm = t;

  t = time_min([&] {
    for (int c = 0; c < k; ++c)
      spmv(a, std::span<const XT>(x.data() + static_cast<std::size_t>(c) * nn, nn),
           std::span<XT>(y.data() + static_cast<std::size_t>(c) * nn, nn));
    asm volatile("" ::"r"(y.data()) : "memory");
  });
  rep.add("spmv_x" + std::to_string(k) + "_csr_" + suffix, n, nnz, t,
          (static_cast<double>(nnz) * (sizeof(MT) + 4.0) * k + 2.0 * k * n * sizeof(XT)) /
              t / 1e9);
  std::cout << "spmm csr " << suffix << ": batched " << t_spmm * 1e6 << " us vs " << k
            << " spmv " << t * 1e6 << " us (" << t / t_spmm << "x)\n";

  t = time_min([&] {
    spmm(s, x.data(), static_cast<std::ptrdiff_t>(nn), y.data(),
         static_cast<std::ptrdiff_t>(nn), k);
    asm volatile("" ::"r"(y.data()) : "memory");
  });
  rep.add("spmm_sell_" + suffix, n, nnz, t,
          (static_cast<double>(s.padded_nnz()) * (sizeof(MT) + 4.0) +
           2.0 * k * n * sizeof(XT)) / t / 1e9);
}

void bench_spmm(bench::JsonReport& rep, const std::string& mat_name,
                const CsrMatrix<double>& a64) {
  const auto a32 = cast_matrix<float>(a64);
  const auto a16 = cast_matrix<half>(a64);
  const auto s64 = csr_to_sell(a64, 32);
  const auto s32 = csr_to_sell(a32, 32);
  const auto s16 = csr_to_sell(a16, 32);
  bench_spmm_combo<double, double>(rep, mat_name, a64, s64, 8);
  bench_spmm_combo<float, float>(rep, mat_name, a32, s32, 8);
  bench_spmm_combo<half, float>(rep, mat_name, a16, s16, 8);
}

// ---------------------------------------------------------------------------
// Batched multi-RHS solve: 8 RHS through one CG in lockstep vs 8 sequential
// solves (the ISSUE 3 acceptance benchmark: >= 1.5x on the n = 100k
// Laplace problem, with per-column agreement)
// ---------------------------------------------------------------------------

void bench_batched_solve(bench::JsonReport& rep, std::int64_t n_target) {
  const auto side = static_cast<index_t>(std::llround(std::sqrt(static_cast<double>(n_target))));
  CsrMatrix<double> a = gen::laplace2d(side, side);
  a.sort_rows();
  diagonal_scale_symmetric(a);
  const std::size_t n = static_cast<std::size_t>(a.nrows);
  const auto nnz = static_cast<std::int64_t>(a.nnz());
  const int k = 8;
  BlockJacobiIlu0 ilu(a, BlockJacobiIlu0::Config{64, 1.0});

  std::vector<double> B(n * k);
  for (int c = 0; c < k; ++c) {
    const auto col = random_vector<double>(n, 900 + static_cast<std::uint64_t>(c), 0.0, 1.0);
    std::copy(col.begin(), col.end(), B.begin() + static_cast<std::size_t>(c) * n);
  }
  CgSolver<double>::Config cfg;
  cfg.rtol = 1e-8;
  cfg.max_iters = 1000;

  // Sequential: k independent solves, each paying its own matrix sweeps.
  std::vector<double> Xs(n * k, 0.0);
  CsrOperator<double, double> op_s(a);
  auto h_s = ilu.make_apply<double>(Prec::FP64);
  CgSolver<double> seq(op_s, *h_s, cfg);
  int iters_seq = 0;
  WallTimer ts;
  for (int c = 0; c < k; ++c) {
    auto r = seq.solve(std::span<const double>(B.data() + static_cast<std::size_t>(c) * n, n),
                       std::span<double>(Xs.data() + static_cast<std::size_t>(c) * n, n));
    iters_seq += r.iterations;
    if (!r.converged) check("batched_cg_seq_converged", 1.0, 0.0);
  }
  const double t_seq = ts.seconds();
  rep.add("solve_cg_seq_8rhs_laplace", static_cast<std::int64_t>(n), nnz, t_seq, 0.0);

  // Batched: one lockstep solve sharing every matrix and factor sweep.
  std::vector<double> Xb(n * k, 0.0);
  CsrOperator<double, double> op_b(a);
  auto h_b = ilu.make_apply<double>(Prec::FP64);
  CgSolver<double> bat(op_b, *h_b, cfg);
  WallTimer tb;
  auto many = bat.solve_many(B.data(), static_cast<std::ptrdiff_t>(n), Xb.data(),
                             static_cast<std::ptrdiff_t>(n), k);
  const double t_bat = tb.seconds();
  rep.add("solve_cg_batched_8rhs_laplace", static_cast<std::int64_t>(n), nnz, t_bat, 0.0);
  rep.add("solve_cg_batched_8rhs_speedup", static_cast<std::int64_t>(n), nnz, t_bat,
          t_seq / t_bat);  // gbps column doubles as the speedup ratio

  // Per-column agreement between the two paths.  Identical kernels per
  // column ⇒ identical iterates; allow ulp-level slack only for the
  // multi-threaded reductions.
  int iters_bat = 0;
  double dmax = 0.0, xscale = 0.0;
  for (int c = 0; c < k; ++c) {
    iters_bat += many[c].iterations;
    if (!many[c].converged) check("batched_cg_bat_converged", 1.0, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      dmax = std::max(dmax, std::abs(Xb[static_cast<std::size_t>(c) * n + i] -
                                     Xs[static_cast<std::size_t>(c) * n + i]));
      xscale = std::max(xscale, std::abs(Xs[static_cast<std::size_t>(c) * n + i]));
    }
  }
  // Single-threaded the two paths are bit-identical; with parallel blas1
  // reductions each path rounds differently, and two independently
  // converged solutions only agree to convergence level.
  check("batched_cg_column_agreement", dmax,
        (num_threads() == 1 ? 0.0 : 1e-5 * std::max(1.0, xscale)));
  check("batched_cg_iteration_agreement", std::abs(iters_bat - iters_seq),
        num_threads() == 1 ? 0.0 : std::max(2.0 * k, 0.05 * iters_seq));

  std::cout << "batched CG 8 RHS (n=" << n << ", bj-ilu0): sequential " << t_seq
            << " s vs batched " << t_bat << " s  (" << t_seq / t_bat << "x, "
            << iters_seq << "/" << iters_bat << " iters)\n";

  // Guarded batched run: the per-iteration non-finite panel scan switched
  // on.  The ISSUE 7 acceptance gate pins its overhead against the
  // unguarded record above (bench_diff.py GUARD_PAIRS, <= 2%).
  std::vector<double> Xg(n * k, 0.0);
  CsrOperator<double, double> op_g(a);
  auto h_g = ilu.make_apply<double>(Prec::FP64);
  CgSolver<double>::Config cfg_g = cfg;
  cfg_g.guard_panels = true;
  CgSolver<double> gua(op_g, *h_g, cfg_g);
  WallTimer tg;
  auto many_g = gua.solve_many(B.data(), static_cast<std::ptrdiff_t>(n), Xg.data(),
                               static_cast<std::ptrdiff_t>(n), k);
  const double t_gua = tg.seconds();
  rep.add("solve_cg_batched_8rhs_guard_laplace", static_cast<std::int64_t>(n), nnz, t_gua,
          0.0);
  rep.add("solve_cg_guard_overhead", static_cast<std::int64_t>(n), nnz, t_gua,
          t_gua / t_bat);  // gbps column doubles as the overhead ratio
  int guard_failures = 0;
  for (int c = 0; c < k; ++c)
    if (many_g[c].status != SolveStatus::kConverged) ++guard_failures;
  check("batched_cg_guard_converged", static_cast<double>(guard_failures), 0.0);

  std::cout << "guarded batched CG 8 RHS: " << t_gua << " s  (" << t_gua / t_bat
            << "x of unguarded)\n";
}

// ---------------------------------------------------------------------------
// Staggered-convergence batched solve: active-set compaction vs the PR 3
// masked-lockstep reference (the ISSUE 4 acceptance benchmark: >= 1.15x
// with bit-identical per-column fp64 iterates).
//
// The HPCG 27-point stencil is 27·I − S⊗S⊗S (S = 1-D tridiag(1,1,1)), so
// its eigenvectors are product sines, and a RHS spanning s eigenvectors
// with distinct eigenvalues exhausts its Krylov space after ~s steps — the
// 16 columns are engineered to retire in three waves at 1x / 2x / 4x the
// median iteration count.  The masked path pays (nearly) full width until
// the last wave finishes (full-width reductions, per-column apply
// fallback); the compacting path shrinks every kernel to the live width
// as columns retire.  The 27-point stencil makes the benchmark
// apply-dominated — the regime batching targets.
// ---------------------------------------------------------------------------

/// RHS spanning s (p,p,p) modes of the (scaled) 27-point operator, spread
/// across the spectrum (well-separated eigenvalues keep finite-precision
/// CG/Arnoldi terminating near the exact Krylov degree s; tightly
/// clustered consecutive modes would smear the retirement point).
std::vector<double> mode_rhs(index_t side, int s) {
  const std::size_t n = static_cast<std::size_t>(side) * side * side;
  std::vector<double> b(n, 0.0);
  const int step = std::max(1, static_cast<int>(side - 1) / s);
  std::vector<double> sines(static_cast<std::size_t>(side));
  for (int j = 0; j < s; ++j) {
    const int p = 1 + j * step;
    for (index_t i = 0; i < side; ++i)
      sines[i] = std::sin(M_PI * p * (i + 1.0) / (side + 1));
    for (index_t z = 0; z < side; ++z)
      for (index_t y = 0; y < side; ++y)
        for (index_t x = 0; x < side; ++x)
          b[(static_cast<std::size_t>(z) * side + y) * side + x] +=
              sines[x] * sines[y] * sines[z];
  }
  return b;
}

/// 16 columns retiring in three waves: 8 at `s` (the median), 4 at 2s,
/// 4 at 4s.
std::vector<double> staggered_batch(index_t side, int s) {
  const std::size_t n = static_cast<std::size_t>(side) * side * side;
  std::vector<double> B(n * 16);
  for (int c = 0; c < 16; ++c) {
    const int sc = c < 8 ? s : (c < 12 ? 2 * s : 4 * s);
    const auto col = mode_rhs(side, sc);
    std::copy(col.begin(), col.end(), B.begin() + static_cast<std::size_t>(c) * n);
  }
  return B;
}

void bench_staggered_cg(bench::JsonReport& rep, index_t side) {
  CsrMatrix<double> a = gen::stencil27({.nx = side, .ny = side, .nz = side});
  a.sort_rows();
  diagonal_scale_symmetric(a);  // constant diagonal: eigenvectors preserved
  const std::size_t n = static_cast<std::size_t>(a.nrows);
  const auto nnz = static_cast<std::int64_t>(a.nnz());
  const int k = 16;
  const auto B = staggered_batch(side, 8);  // retire at ~8 / 16 / 32
  JacobiPrecond jac(a);
  CgSolver<double>::Config cfg{.rtol = 1e-8, .max_iters = 500};

  // One solver (and workspace) per scheduling mode, reused across timing
  // reps — the timed region is the solve, not workspace setup.
  CsrOperator<double, double> op_m(a), op_c(a);
  auto h_m = jac.make_apply<double>(Prec::FP64);
  auto h_c = jac.make_apply<double>(Prec::FP64);
  auto cfg_m = cfg, cfg_c = cfg;
  cfg_m.compact = false;
  cfg_c.compact = true;
  CgSolver<double> solver_m(op_m, *h_m, cfg_m), solver_c(op_c, *h_c, cfg_c);
  auto solve_with = [&](bool compact, std::vector<double>& X) {
    std::fill(X.begin(), X.end(), 0.0);
    auto& solver = compact ? solver_c : solver_m;
    return solver.solve_many(B.data(), static_cast<std::ptrdiff_t>(n), X.data(),
                             static_cast<std::ptrdiff_t>(n), k);
  };

  // Gate: per-column fp64 iterates of the two scheduling modes must be
  // bit-identical (compaction moves data verbatim and reorders nothing).
  std::vector<double> Xm(n * k), Xc(n * k);
  const auto res_m = solve_with(false, Xm);
  const auto res_c = solve_with(true, Xc);
  int it_lo = res_c[0].iterations, it_hi = it_lo;
  for (int c = 0; c < k; ++c) {
    check("staggered_cg_iters_col" + std::to_string(c),
          std::abs(res_m[c].iterations - res_c[c].iterations), 0.0);
    if (!res_c[c].converged) check("staggered_cg_converged", 1.0, 0.0);
    it_lo = std::min(it_lo, res_c[c].iterations);
    it_hi = std::max(it_hi, res_c[c].iterations);
  }
  double dmax = 0.0;
  for (std::size_t i = 0; i < n * k; ++i) dmax = std::max(dmax, std::abs(Xm[i] - Xc[i]));
  check("staggered_cg_column_agreement", dmax, num_threads() == 1 ? 0.0 : 1e-12);

  const double t_masked = time_min([&] { solve_with(false, Xm); });
  rep.add("solve_cg_staggered16_masked_hpcg", static_cast<std::int64_t>(n), nnz,
          t_masked, 0.0);
  const double t_compact = time_min([&] { solve_with(true, Xc); });
  rep.add("solve_cg_staggered16_compact_hpcg", static_cast<std::int64_t>(n), nnz,
          t_compact, 0.0);
  rep.add("solve_cg_staggered16_speedup", static_cast<std::int64_t>(n), nnz, t_compact,
          t_masked / t_compact);  // gbps column doubles as the speedup ratio
  std::cout << "staggered batched CG 16 RHS (n=" << n << ", retire " << it_lo << ".."
            << it_hi << " iters): masked " << t_masked << " s vs compact " << t_compact
            << " s  (" << t_masked / t_compact << "x)\n";
}

void bench_staggered_fgmres(bench::JsonReport& rep, index_t side) {
  CsrMatrix<double> a = gen::stencil27({.nx = side, .ny = side, .nz = side});
  a.sort_rows();
  diagonal_scale_symmetric(a);
  const std::size_t n = static_cast<std::size_t>(a.nrows);
  const auto nnz = static_cast<std::int64_t>(a.nnz());
  const int k = 16;
  // Staggering through the ABSOLUTE target: random columns scaled so their
  // initial residual sits 1.5 / 3 / 8 decades above abs_target — with an
  // ILU(0)-preconditioned cycle contracting at a roughly constant rate per
  // step, the three waves retire at ~1x / 2x / 4x the median step count.
  // (The heavy batched triangular sweeps are exactly what the masked
  // path's per-column fallback loses.)
  std::vector<double> B(n * k);
  for (int c = 0; c < k; ++c) {
    auto col = random_vector<double>(n, 1200 + static_cast<std::uint64_t>(c), -1.0, 1.0);
    const double bn = blas::nrm2(std::span<const double>(col));
    const double decades = c < 8 ? 1.5 : (c < 12 ? 3.0 : 8.0);
    blas::scal(std::pow(10.0, decades) * 1e-8 / bn, std::span<double>(col));
    std::copy(col.begin(), col.end(), B.begin() + static_cast<std::size_t>(c) * n);
  }
  // Few, long blocks (the paper sizes blocks per hardware thread): the
  // triangular solves become latency-bound chains, which the batched
  // column-interleaved substitution turns throughput-bound.
  BlockJacobiIlu0 ilu(a, BlockJacobiIlu0::Config{8, 1.0});
  FgmresSolver<double>::Config cfg{.m = 24};

  // One solver per scheduling mode, reused across reps — constructing a
  // fresh FGMRES solver re-acquires and zeroes the multi-hundred-MB V/Z
  // batch basis, which would swamp the measured solve time.
  CsrOperator<double, double> op_m(a), op_c(a);
  auto h_m = ilu.make_apply<double>(Prec::FP64);
  auto h_c = ilu.make_apply<double>(Prec::FP64);
  auto cfg_m = cfg, cfg_c = cfg;
  cfg_m.compact = false;
  cfg_c.compact = true;
  FgmresSolver<double> solver_m(op_m, *h_m, cfg_m), solver_c(op_c, *h_c, cfg_c);
  auto run_with = [&](bool compact, std::vector<double>& X) {
    std::fill(X.begin(), X.end(), 0.0);
    auto& solver = compact ? solver_c : solver_m;
    return solver.run_many(B.data(), static_cast<std::ptrdiff_t>(n), X.data(),
                           static_cast<std::ptrdiff_t>(n), k, 1e-8, /*x_nonzero=*/false);
  };

  std::vector<double> Xm(n * k), Xc(n * k);
  const auto res_m = run_with(false, Xm);
  const auto res_c = run_with(true, Xc);
  int it_lo = res_c[0].iters, it_hi = it_lo;
  for (int c = 0; c < k; ++c) {
    check("staggered_fgmres_iters_col" + std::to_string(c),
          std::abs(res_m[c].iters - res_c[c].iters), 0.0);
    it_lo = std::min(it_lo, res_c[c].iters);
    it_hi = std::max(it_hi, res_c[c].iters);
  }
  double dmax = 0.0;
  for (std::size_t i = 0; i < n * k; ++i) dmax = std::max(dmax, std::abs(Xm[i] - Xc[i]));
  check("staggered_fgmres_column_agreement", dmax, num_threads() == 1 ? 0.0 : 1e-12);

  const double t_masked = time_min([&] { run_with(false, Xm); });
  rep.add("fgmres_staggered16_masked_hpcg", static_cast<std::int64_t>(n), nnz, t_masked,
          0.0);
  const double t_compact = time_min([&] { run_with(true, Xc); });
  rep.add("fgmres_staggered16_compact_hpcg", static_cast<std::int64_t>(n), nnz,
          t_compact, 0.0);
  rep.add("fgmres_staggered16_speedup", static_cast<std::int64_t>(n), nnz, t_compact,
          t_masked / t_compact);
  std::cout << "staggered batched FGMRES(24) 16 RHS (n=" << n << ", retire " << it_lo
            << ".." << it_hi << " steps): masked " << t_masked << " s vs compact "
            << t_compact << " s  (" << t_masked / t_compact << "x)\n";
}

// ---------------------------------------------------------------------------
// Precision conversion + preconditioner application (the paper's other
// dominant kernels; carried over from the pre-rewrite bench)
// ---------------------------------------------------------------------------

void bench_convert(bench::JsonReport& rep, std::int64_t n) {
  const auto nn = static_cast<std::size_t>(n);
  const auto xd = random_vector<double>(nn, 55, -1.0, 1.0);
  const auto xf = converted<float>(xd);
  std::vector<half> yh(nn);
  std::vector<float> yf(nn);

  double s = time_min([&] {
    blas::convert(std::span<const double>(xd), std::span<half>(yh));
    asm volatile("" ::"r"(yh.data()) : "memory");
  });
  rep.add("convert_fp64_to_fp16", n, 0, s, n * 10.0 / s / 1e9);

  s = time_min([&] {
    blas::convert(std::span<const float>(xf), std::span<half>(yh));
    asm volatile("" ::"r"(yh.data()) : "memory");
  });
  rep.add("convert_fp32_to_fp16", n, 0, s, n * 6.0 / s / 1e9);

  s = time_min([&] {
    blas::convert(std::span<const half>(yh), std::span<float>(yf));
    asm volatile("" ::"r"(yf.data()) : "memory");
  });
  rep.add("convert_fp16_to_fp32", n, 0, s, n * 6.0 / s / 1e9);
}

void bench_ilu_apply(bench::JsonReport& rep, const CsrMatrix<double>& a64) {
  BlockJacobiIlu0 ilu(a64, BlockJacobiIlu0::Config{64, 1.0});
  const auto nn = static_cast<std::size_t>(a64.nrows);
  const auto xd = random_vector<double>(nn, 56, 0.0, 1.0);
  std::vector<double> yd(nn);
  const auto nnz = static_cast<std::int64_t>(a64.nnz());
  for (const Prec storage : {Prec::FP64, Prec::FP32, Prec::FP16}) {
    auto h = ilu.make_apply_fp64(storage);
    const double s = time_min([&] {
      h->apply(std::span<const double>(xd), std::span<double>(yd));
      asm volatile("" ::"r"(yd.data()) : "memory");
    });
    rep.add(std::string("ilu_apply_") + prec_name(storage), a64.nrows, nnz, s,
            static_cast<double>(nnz) * (prec_bytes(storage) + 4.0) / s / 1e9);
  }
}

void bench_spmv(bench::JsonReport& rep, const std::string& mat_name, CsrMatrix<double> a64) {
  const auto a32 = cast_matrix<float>(a64);
  const auto a16 = cast_matrix<half>(a64);
  const auto s64 = csr_to_sell(a64, 32);
  const auto s32 = csr_to_sell(a32, 32);
  const auto s16 = csr_to_sell(a16, 32);
  const auto nn = static_cast<std::size_t>(a64.nrows);
  const auto xd = random_vector<double>(nn, 33, -1.0, 1.0);
  const auto xf = converted<float>(xd);
  const auto xh = converted<half>(xd);

  bench_spmv_combo<double, double>(rep, mat_name, a64, s64, std::span<const double>(xd), a64);
  bench_spmv_combo<float, float>(rep, mat_name, a32, s32, std::span<const float>(xf), a64);
  bench_spmv_combo<half, float>(rep, mat_name, a16, s16, std::span<const float>(xf), a64);
  bench_spmv_combo<half, half>(rep, mat_name, a16, s16, std::span<const half>(xh), a64);
}

// ---------------------------------------------------------------------------
// Backend-tagged kernel records: the same SpMV / SpMM / dot_cols calls
// routed through kern::Kernels for the host and serial backends.  The
// serial column is the reference backend's cost of record (what a missing
// device kernel would fall back to), and the host/serial agreement check
// doubles as a standing oracle test on the dispatch seam itself — if a
// Kernels branch ever routes a call to the wrong backend, the timings and
// diffs here are where it shows.  tools/bench_diff.py treats these records
// as soft (skip-if-absent): baselines predating the backend seam stay
// diffable.
// ---------------------------------------------------------------------------

template <class MT, class XT>
void bench_backend_combo(bench::JsonReport& rep, const CsrMatrix<MT>& a,
                         std::span<const XT> x) {
  const auto n = static_cast<std::int64_t>(a.nrows);
  const auto nnz = static_cast<std::int64_t>(a.nnz());
  const auto nn = static_cast<std::size_t>(a.nrows);
  const int k = 8;
  const std::string p =
      std::string(tname<MT>()) + (std::is_same_v<MT, XT> ? "" : std::string("_") + tname<XT>());
  const double csr_bytes = static_cast<double>(nnz) * (sizeof(MT) + 4.0);
  const double vec_bytes = static_cast<double>(n) * sizeof(XT);

  // One multi-vector panel feeds both spmm and dot_cols.
  const auto pd = random_vector<double>(nn * static_cast<std::size_t>(k), 44, -1.0, 1.0);
  const std::vector<XT> xp = converted<XT>(pd);
  std::vector<XT> yh(nn), ysr(nn), yp(nn * static_cast<std::size_t>(k));
  using S = acc_t<XT>;
  std::vector<S> dh(static_cast<std::size_t>(k)), dsr(static_cast<std::size_t>(k));

  const kern::Kernels khost{Backend::kHost};
  const kern::Kernels kserial{Backend::kSerial};

  // Agreement first: serial is the single-chain oracle; host may reassociate.
  khost.spmv(a, x, std::span<XT>(yh));
  kserial.spmv(a, x, std::span<XT>(ysr));
  double dmax = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < nn; ++i) {
    dmax = std::max(dmax, std::abs(static_cast<double>(yh[i]) - static_cast<double>(ysr[i])));
    scale = std::max(scale, std::abs(static_cast<double>(ysr[i])));
  }
  check("backend_serial_vs_host_spmv_" + p, dmax, tol_for<MT>(scale));
  khost.dot_cols(xp.data(), static_cast<std::ptrdiff_t>(nn), xp.data(),
                 static_cast<std::ptrdiff_t>(nn), k, nn, dh.data());
  kserial.dot_cols(xp.data(), static_cast<std::ptrdiff_t>(nn), xp.data(),
                   static_cast<std::ptrdiff_t>(nn), k, nn, dsr.data());
  dmax = 0.0;
  for (int j = 0; j < k; ++j)
    dmax = std::max(dmax, std::abs(static_cast<double>(dh[static_cast<std::size_t>(j)]) -
                                   static_cast<double>(dsr[static_cast<std::size_t>(j)])));
  check("backend_serial_vs_host_dot_cols_" + p, dmax,
        tol_for<MT>(static_cast<double>(n)));

  struct Be {
    const char* name;
    const kern::Kernels* kx;
  };
  for (const Be be : {Be{"host", &khost}, Be{"serial", &kserial}}) {
    double t = time_min([&] {
      be.kx->spmv(a, x, std::span<XT>(yh));
      asm volatile("" ::"r"(yh.data()) : "memory");
    });
    rep.add("backend_" + std::string(be.name) + "_spmv_csr_" + p, n, nnz, t,
            csr_bytes / t / 1e9);

    t = time_min([&] {
      be.kx->spmm(a, xp.data(), static_cast<std::ptrdiff_t>(nn), yp.data(),
                  static_cast<std::ptrdiff_t>(nn), k);
      asm volatile("" ::"r"(yp.data()) : "memory");
    });
    rep.add("backend_" + std::string(be.name) + "_spmm_csr_" + p + "_k8", n, nnz, t,
            static_cast<double>(k) * csr_bytes / t / 1e9);

    t = time_min([&] {
      be.kx->dot_cols(xp.data(), static_cast<std::ptrdiff_t>(nn), xp.data(),
                      static_cast<std::ptrdiff_t>(nn), k, nn, dh.data());
      asm volatile("" ::"r"(dh.data()) : "memory");
    });
    rep.add("backend_" + std::string(be.name) + "_dot_cols_" + p + "_k8", n, 0, t,
            2 * k * vec_bytes / t / 1e9);
  }
}

void bench_backends(bench::JsonReport& rep, const CsrMatrix<double>& a64) {
  const auto a32 = cast_matrix<float>(a64);
  const auto a16 = cast_matrix<half>(a64);
  const auto nn = static_cast<std::size_t>(a64.nrows);
  const auto xd = random_vector<double>(nn, 43, -1.0, 1.0);
  const auto xf = converted<float>(xd);
  bench_backend_combo<double, double>(rep, a64, std::span<const double>(xd));
  bench_backend_combo<float, float>(rep, a32, std::span<const float>(xf));
  bench_backend_combo<half, float>(rep, a16, std::span<const float>(xf));
}

// ---------------------------------------------------------------------------
// nkrylovd daemon throughput: N logical clients, one solve each, through the
// service SolveExecutor (the daemon's engine minus the socket layer — what
// the socket adds is per-request I/O, not solver scheduling).  All clients
// hit ONE (matrix, spec) key, so the executor's cross-request batching is
// the whole story: c1 measures the un-amortized per-solve cost, c64/c1024
// measure how far merged waves push the per-solve cost down.  One executor
// serves every client count, so the session-cache counters double as the
// zero-re-setup acceptance check: exactly ONE session build (the warm-up),
// everything after is a cache hit.
// ---------------------------------------------------------------------------

void bench_daemon(bench::JsonReport& rep) {
  // 8x8x8 HPCG-style stencil: solves stay sub-millisecond so the daemon's
  // dispatch/batching overhead is what c1 vs c64/c1024 actually contrasts
  // (1024 clients on a big matrix would just measure the solver again).
  CsrMatrix<double> a = gen::stencil27({.nx = 8, .ny = 8, .nz = 8});
  a.sort_rows();
  // Fingerprint the RAW matrix exactly as the server does on a client PUT.
  const std::uint64_t h = service::matrix_fingerprint(a, /*symmetric=*/true);
  auto p = std::make_shared<const PreparedProblem>(prepare_problem(
      "daemon-bench", std::move(a), /*symmetric=*/true, 1.0, 1.0, /*rhs_seed=*/7));
  const SolverSpec spec = SolverSpec::parse("cg/bj;nblocks=8");
  const auto n = static_cast<std::int64_t>(p->b.size());
  const auto nnz = static_cast<std::int64_t>(p->a->csr_fp64().nnz());

  service::ExecutorConfig cfg;
  cfg.threads = 4;
  cfg.max_batch = 32;
  service::SolveExecutor ex(cfg);

  // Warm-up client: pays the one and only Session build.
  {
    auto futs = ex.submit(h, p, spec, {batch_rhs(*p, 1, 7)}, 0);
    if (!futs[0].get().result.converged) check("daemon_warmup_converged", 1.0, 0.0);
  }

  int failures = 0;
  for (const int clients : {1, 64, 1024}) {
    // Per-client RHS generated outside the timed region; the timed lambda
    // only copies (cheap next to a solve) so re-runs see identical inputs.
    std::vector<std::vector<double>> rhs(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c)
      rhs[static_cast<std::size_t>(c)] = batch_rhs(*p, 1, 100 + static_cast<std::uint64_t>(c));

    const double s = time_min([&] {
      std::vector<std::future<service::ColumnOutcome>> futs;
      futs.reserve(static_cast<std::size_t>(clients));
      for (int c = 0; c < clients; ++c) {
        std::vector<std::vector<double>> cols;
        cols.push_back(rhs[static_cast<std::size_t>(c)]);
        for (auto& f : ex.submit(h, p, spec, std::move(cols),
                                 static_cast<std::uint64_t>(c) + 1))
          futs.push_back(std::move(f));
      }
      for (auto& f : futs)
        if (!f.get().result.converged) ++failures;
    });
    // seconds = amortized per-solve cost; the gbps column doubles as the
    // throughput in solves/second.
    rep.add("daemon_solve_c" + std::to_string(clients), n, nnz,
            s / static_cast<double>(clients), static_cast<double>(clients) / s);
    std::cout << "daemon " << clients << " client(s): " << s << " s total, "
              << static_cast<double>(clients) / s << " solves/s\n";
  }
  check("daemon_all_clients_converged", static_cast<double>(failures), 0.0);

  // Zero re-setup, proven by the counters: one session miss (the warm-up),
  // every later lease a hit.  The gbps column carries the hit RATE, which
  // tools/bench_diff.py gates against an absolute floor — a cold-cache
  // regression cannot be grandfathered in by a bad baseline.
  const service::SessionCache::Stats cs = ex.sessions().stats();
  check("daemon_repeat_clients_paid_setup", static_cast<double>(cs.misses) - 1.0, 0.0);
  const double leases = static_cast<double>(cs.hits + cs.misses);
  rep.add("daemon_cache_hit_rate", static_cast<std::int64_t>(cs.hits + cs.misses), 0, 0.0,
          leases > 0.0 ? static_cast<double>(cs.hits) / leases : 0.0);
  std::cout << "daemon session cache: " << cs.hits << " hits / " << cs.misses
            << " miss(es)\n";
}

// ---------------------------------------------------------------------------
// Autotuner quality: Session("auto") vs the best fixed spec on the whole
// stand-in catalog (the ISSUE 10 acceptance margin, bench form).  Both
// sides are measured in MODELED WORK — M applications x modeled accesses
// per application — the machine-independent currency the tuner itself
// optimizes; the aggregate auto/best ratio is what bench_diff.py soft-gates
// against an absolute ceiling (auto_vs_best_fixed_* records, skipped when
// absent from either file).
// ---------------------------------------------------------------------------

void bench_auto_tuner(bench::JsonReport& rep) {
  tune::tune_db().clear();  // cold cache even under NKRYLOV_TUNE_DB
  const std::vector<std::string> sym_universe = {
      "cg", "cg@fp32", "cg@fp16", "fgmres64", "fgmres64@fp16",
      "f3r@fp16", "f3r@fp32", "ir-gmres8@fp32"};
  const std::vector<std::string> nonsym_universe = {
      "bicgstab", "bicgstab@fp32", "bicgstab@fp16", "fgmres64", "fgmres64@fp16",
      "f3r@fp16", "f3r@fp32", "ir-gmres8@fp32"};

  double total_auto = 0.0, total_best = 0.0, worst_cell = 0.0;
  std::int64_t total_n = 0, total_nnz = 0;
  int cells = 0, unconverged = 0, margin_violations = 0;
  WallTimer tw;
  for (const gen::ProblemSpec& ps : gen::standin_catalog()) {
    const auto p =
        std::make_shared<const PreparedProblem>(prepare_standin(ps.paper_name, -4));
    const tune::TuneFeatures f = tune::extract_features(*p);

    double best = std::numeric_limits<double>::infinity();
    for (const std::string& text : ps.symmetric ? sym_universe : nonsym_universe) {
      const SolverSpec spec = SolverSpec::parse(text);
      Session s(p, spec);
      const SolveResult r = s.solve();
      if (!r.converged) continue;
      best = std::min(best, static_cast<double>(r.precond_invocations) *
                                tune::unit_cost(f, spec));
    }

    Session sa(p, "auto");
    const SolveResult ra = sa.solve();
    if (!ra.converged) {
      std::cerr << "auto did not converge on " << ps.paper_name << "\n";
      ++unconverged;
      continue;
    }
    std::string db_text;
    if (!tune::tune_db().lookup(p->fingerprint, db_text)) continue;
    const double auto_work = static_cast<double>(ra.precond_invocations) *
                             tune::unit_cost(f, SolverSpec::parse(db_text));
    if (!std::isfinite(best)) continue;  // no fixed spec converged: auto-only cell
    ++cells;
    total_auto += auto_work;
    total_best += best;
    total_n += static_cast<std::int64_t>(p->b.size());
    total_nnz += static_cast<std::int64_t>(p->a->csr_fp64().nnz());
    worst_cell = std::max(worst_cell, auto_work / best);
    // The tuning-labeled test's per-cell margin, re-asserted here so the
    // perf-smoke job catches a tuner quality regression without gtest.
    if (auto_work > 1.2 * best + 64.0) {
      std::cerr << "auto margin violation on " << ps.paper_name << ": chose "
                << db_text << " work " << auto_work << " vs best fixed " << best
                << "\n";
      ++margin_violations;
    }
  }
  check("auto_converges_on_every_catalog_cell", static_cast<double>(unconverged), 0.0);
  check("auto_within_margin_of_best_fixed", static_cast<double>(margin_violations), 0.0);

  // seconds column carries MODELED WORK (not wall time): the pair ratio
  // bench_diff.py computes is then exactly total_auto / total_best.
  rep.add("auto_vs_best_fixed_work", total_n, total_nnz, total_auto, 0.0);
  rep.add("auto_vs_best_fixed_ref", total_n, total_nnz, total_best, 0.0);
  // Informational: worst single-cell ratio rides the gbps column.
  rep.add("auto_vs_best_fixed_worst_cell", static_cast<std::int64_t>(cells), 0,
          tw.seconds(), worst_cell);
  std::cout << "auto vs best fixed (" << cells << " catalog cells): modeled work "
            << total_auto << " vs " << total_best << "  ("
            << total_auto / std::max(total_best, 1.0) << "x, worst cell "
            << worst_cell << "x, " << tw.seconds() << " s)\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  if (opt.wants_help()) {
    std::cout << "bench_kernels --scale=N --n=N --runs=R --json=path\n";
    return 0;
  }
  const int scale = opt.get_int("scale", 1);
  const std::int64_t n = opt.get_int64("n", 100000LL * scale);
  g_runs = opt.get_int("runs", 5);
  const std::string json = opt.get("json", "BENCH_kernels.json");

  std::cout << "nkrylov bench: kernel microbenchmarks (fused Arnoldi + SIMD SELL)\n";
  std::cout << "env: " << env_summary() << "\n";
  std::cout << "config: scale=" << scale << " n=" << n << " runs=" << g_runs << "\n";

  bench::JsonReport rep("bench_kernels");

  bench_blas1<double>(rep, n);
  bench_blas1<float>(rep, n);
  bench_blas1<half>(rep, n);

  bench_arnoldi_step<double>(rep, n);
  bench_arnoldi_step<float>(rep, n);
  bench_arnoldi_step<half>(rep, n);

  bench_convert(rep, n);
  bench_fp16_native(rep, n);

  const index_t side = static_cast<index_t>(32 * scale);
  auto hpcg = gen::stencil27({.nx = side, .ny = side, .nz = side});
  bench_ilu_apply(rep, hpcg);
  bench_backends(rep, hpcg);
  bench_spmm(rep, "hpcg", hpcg);
  bench_spmv(rep, "hpcg", std::move(hpcg));
  bench_spmv(rep, "hpgmp",
             gen::stencil27({.nx = side, .ny = side, .nz = side, .beta = 0.5}));

  bench_batched_solve(rep, n);
  bench_staggered_cg(rep, static_cast<index_t>(64 * scale));
  bench_staggered_fgmres(rep, static_cast<index_t>(32 * scale));

  bench_daemon(rep);
  bench_auto_tuner(rep);

  std::cout << "\nname, n, nnz, seconds, GB/s\n";
  for (const auto& r : rep.records())
    std::cout << r.name << ", " << r.n << ", " << r.nnz << ", " << r.seconds << ", "
              << r.gbps << "\n";

  if (rep.write(json)) std::cout << "(json written to " << json << ")\n";
  if (!g_all_ok) {
    std::cerr << "bench_kernels: fused-kernel verification FAILED\n";
    return 1;
  }
  std::cout << "bench_kernels: all fused kernels verified against references\n";
  return 0;
}
