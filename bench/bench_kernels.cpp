// Kernel microbenchmarks (google-benchmark): the per-kernel speedups that
// motivate the paper's precision reduction — SpMV across storage
// precisions and formats, BLAS-1 reductions/updates, and preconditioner
// application at fp64/fp32/fp16 storage.
//
// Bytes-per-second is the quantity to compare: all kernels are
// memory-bound, so halving the value bytes should approach 2x on
// out-of-cache sizes (pass --grid=7 to grow the matrix).
#include <benchmark/benchmark.h>

#include <memory>

#include "base/rng.hpp"
#include "precond/block_jacobi_ilu0.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/scaling.hpp"
#include "sparse/sell.hpp"
#include "sparse/spmv.hpp"

namespace {

using nk::half;
using nk::index_t;

struct Fixture {
  nk::CsrMatrix<double> a64;
  nk::CsrMatrix<float> a32;
  nk::CsrMatrix<half> a16;
  nk::SellMatrix<double> s64;
  nk::SellMatrix<half> s16;
  std::vector<double> xd, yd;
  std::vector<float> xf, yf;
  std::vector<half> xh, yh;
  std::unique_ptr<nk::BlockJacobiIlu0> ilu;

  explicit Fixture(int l) {
    a64 = nk::gen::hpcg(l, l, l);
    nk::diagonal_scale_symmetric(a64);
    a32 = nk::cast_matrix<float>(a64);
    a16 = nk::cast_matrix<half>(a64);
    s64 = nk::csr_to_sell(a64, 32);
    s16 = nk::csr_to_sell(a16, 32);
    const auto n = static_cast<std::size_t>(a64.nrows);
    xd = nk::random_vector<double>(n, 1, 0.0, 1.0);
    yd.resize(n);
    xf = nk::converted<float>(xd);
    yf.resize(n);
    xh = nk::converted<half>(xd);
    yh.resize(n);
    ilu = std::make_unique<nk::BlockJacobiIlu0>(a64,
                                                nk::BlockJacobiIlu0::Config{64, 1.0});
  }
};

int g_grid = 6;  // 2^6 per axis = 262k rows, ~7M nnz

Fixture& fixture() {
  static Fixture f(g_grid);
  return f;
}

void set_spmv_counters(benchmark::State& state, std::size_t value_bytes) {
  auto& f = fixture();
  const std::size_t nnz = static_cast<std::size_t>(f.a64.nnz());
  state.counters["nnz"] = static_cast<double>(nnz);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nnz * (value_bytes + 4)));
}

void BM_SpMV_CSR_fp64(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    nk::spmv(f.a64, std::span<const double>(f.xd), std::span<double>(f.yd));
    benchmark::DoNotOptimize(f.yd.data());
  }
  set_spmv_counters(state, 8);
}
BENCHMARK(BM_SpMV_CSR_fp64);

void BM_SpMV_CSR_fp32(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    nk::spmv(f.a32, std::span<const float>(f.xf), std::span<float>(f.yf));
    benchmark::DoNotOptimize(f.yf.data());
  }
  set_spmv_counters(state, 4);
}
BENCHMARK(BM_SpMV_CSR_fp32);

void BM_SpMV_CSR_fp16matrix_fp32vec(benchmark::State& state) {
  // The F3R level-3 kernel: fp16 A, fp32 vectors, fp32 accumulation.
  auto& f = fixture();
  for (auto _ : state) {
    nk::spmv(f.a16, std::span<const float>(f.xf), std::span<float>(f.yf));
    benchmark::DoNotOptimize(f.yf.data());
  }
  set_spmv_counters(state, 2);
}
BENCHMARK(BM_SpMV_CSR_fp16matrix_fp32vec);

void BM_SpMV_CSR_fp16pure(benchmark::State& state) {
  // The innermost Richardson kernel: everything fp16.
  auto& f = fixture();
  for (auto _ : state) {
    nk::spmv(f.a16, std::span<const half>(f.xh), std::span<half>(f.yh));
    benchmark::DoNotOptimize(f.yh.data());
  }
  set_spmv_counters(state, 2);
}
BENCHMARK(BM_SpMV_CSR_fp16pure);

void BM_SpMV_SELL_fp64(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    nk::spmv(f.s64, std::span<const double>(f.xd), std::span<double>(f.yd));
    benchmark::DoNotOptimize(f.yd.data());
  }
  set_spmv_counters(state, 8);
}
BENCHMARK(BM_SpMV_SELL_fp64);

void BM_SpMV_SELL_fp16pure(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    nk::spmv(f.s16, std::span<const half>(f.xh), std::span<half>(f.yh));
    benchmark::DoNotOptimize(f.yh.data());
  }
  set_spmv_counters(state, 2);
}
BENCHMARK(BM_SpMV_SELL_fp16pure);

template <class T>
void BM_Dot(benchmark::State& state) {
  auto& f = fixture();
  std::span<const T> x, y;
  if constexpr (std::is_same_v<T, double>) {
    x = std::span<const T>(f.xd);
    y = std::span<const T>(f.xd);
  } else if constexpr (std::is_same_v<T, float>) {
    x = std::span<const T>(f.xf);
    y = std::span<const T>(f.xf);
  } else {
    x = std::span<const T>(f.xh);
    y = std::span<const T>(f.xh);
  }
  for (auto _ : state) {
    auto s = nk::blas::dot(x, y);
    benchmark::DoNotOptimize(s);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * x.size() * sizeof(T)));
}
BENCHMARK_TEMPLATE(BM_Dot, double);
BENCHMARK_TEMPLATE(BM_Dot, float);
BENCHMARK_TEMPLATE(BM_Dot, half);

template <class T>
void BM_Axpy(benchmark::State& state) {
  auto& f = fixture();
  std::vector<T>* y;
  std::span<const T> x;
  if constexpr (std::is_same_v<T, double>) {
    x = std::span<const T>(f.xd);
    y = &f.yd;
  } else if constexpr (std::is_same_v<T, float>) {
    x = std::span<const T>(f.xf);
    y = &f.yf;
  } else {
    x = std::span<const T>(f.xh);
    y = &f.yh;
  }
  for (auto _ : state) {
    nk::blas::axpy(static_cast<T>(1.0009765f), x, std::span<T>(*y));
    benchmark::DoNotOptimize(y->data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(3 * x.size() * sizeof(T)));
}
BENCHMARK_TEMPLATE(BM_Axpy, double);
BENCHMARK_TEMPLATE(BM_Axpy, float);
BENCHMARK_TEMPLATE(BM_Axpy, half);

void BM_Convert_fp64_to_fp16(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    nk::blas::convert(std::span<const double>(f.xd), std::span<half>(f.yh));
    benchmark::DoNotOptimize(f.yh.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.xd.size() * 10));
}
BENCHMARK(BM_Convert_fp64_to_fp16);

void bm_ilu_apply(benchmark::State& state, nk::Prec storage) {
  auto& f = fixture();
  auto h = f.ilu->make_apply_fp64(storage);
  for (auto _ : state) {
    h->apply(std::span<const double>(f.xd), std::span<double>(f.yd));
    benchmark::DoNotOptimize(f.yd.data());
  }
  const std::size_t nnz = static_cast<std::size_t>(f.a64.nnz());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nnz * (nk::prec_bytes(storage) + 4)));
}
void BM_IluApply_fp64(benchmark::State& state) { bm_ilu_apply(state, nk::Prec::FP64); }
void BM_IluApply_fp32(benchmark::State& state) { bm_ilu_apply(state, nk::Prec::FP32); }
void BM_IluApply_fp16(benchmark::State& state) { bm_ilu_apply(state, nk::Prec::FP16); }
BENCHMARK(BM_IluApply_fp64);
BENCHMARK(BM_IluApply_fp32);
BENCHMARK(BM_IluApply_fp16);

}  // namespace

int main(int argc, char** argv) {
  // Custom flag --grid=L (2^L per axis) consumed before google-benchmark.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--grid=", 0) == 0) {
      g_grid = std::stoi(arg.substr(7));
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
