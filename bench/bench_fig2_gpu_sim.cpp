// Figure 2 reproduction (GPU node, simulated): the paper's GPU experiment
// differs from the CPU one in preconditioner (SD-AINV with α_AINV instead
// of block-Jacobi ILU/IC) and storage format (sliced ELLPACK, chunk 32,
// instead of CSR).  We reproduce both algorithmic differences on the same
// OpenMP substrate — see DESIGN.md §4 for why this preserves the
// solver-vs-solver shape while absolute times differ from an A100.
#include "bench_common.hpp"

using namespace nk;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  auto cfg = bench::parse_bench_options(
      opt, {"ecology2", "thermal2", "tmt_sym", "apache2", "hpcg_5_5_5",
            "Transport", "atmosmodd", "t2em", "tmt_unsym", "hpgmp_5_5_5"});
  cfg.gpu_sim = true;
  bench::print_header("Figure 2 — GPU node (simulated): speedup over fp64-F3R", cfg);

  FlatSolverCaps caps;
  caps.rtol = cfg.rtol;
  caps.max_iters = cfg.max_iters;

  Table summary({"matrix", "sym", "fp64-F3R[s]", "fp32-F3R", "fp16-F3R", "fp64-KRY",
                 "fp32-KRY", "fp16-KRY", "fp64-FG64", "fp16-FG64", "best", "best-params"});
  std::vector<double> sp32, sp16;

  for (const auto& name : cfg.matrices) {
    auto p = prepare_standin(name, cfg.scale, 7, /*use_sell=*/true);
    auto m = make_primary(p, PrecondKind::SdAinv);

    auto f3r = [&](Prec prec) {
      return bench::best_of(cfg.runs, [&] {
        return run_nested(p, m, f3r_config(prec), f3r_termination(cfg.rtol));
      });
    };
    const auto base = f3r(Prec::FP64);
    const auto r32 = f3r(Prec::FP32);
    const auto r16 = f3r(Prec::FP16);

    auto krylov = [&](Prec st) {
      return p.symmetric ? run_cg(p, *m, st, caps) : run_bicgstab(p, *m, st, caps);
    };
    const auto k64 = krylov(Prec::FP64);
    const auto k32 = krylov(Prec::FP32);
    const auto k16 = krylov(Prec::FP16);
    const auto g64 = run_fgmres_restarted(p, *m, Prec::FP64, 64, caps);
    const auto g16 = run_fgmres_restarted(p, *m, Prec::FP16, 64, caps);

    std::string best_cell = "-", best_params = "-";
    if (cfg.best) {
      const auto best = run_f3r_best(p, m, cfg.rtol, 10);
      best_cell = bench::speedup_cell(base, best.result);
      best_params = best.param_label;
    }

    summary.add_row({name, p.symmetric ? "y" : "n",
                     base.converged ? Table::fmt(base.seconds, 3) : "FAIL",
                     bench::speedup_cell(base, r32), bench::speedup_cell(base, r16),
                     bench::speedup_cell(base, k64), bench::speedup_cell(base, k32),
                     bench::speedup_cell(base, k16), bench::speedup_cell(base, g64),
                     bench::speedup_cell(base, g16), best_cell, best_params});
    if (base.converged && r32.converged) sp32.push_back(base.seconds / r32.seconds);
    if (base.converged && r16.converged) sp16.push_back(base.seconds / r16.seconds);

    std::cout << "\n-- " << name << " (n=" << p.a->size() << ", SELL-32 + SD-AINV) --\n";
    Table detail({"solver", "conv", "outer-its", "M-applies", "time[s]", "relres"});
    for (const auto* r : {&base, &r32, &r16, &k64, &k16, &g64})
      detail.add_row({r->solver, r->converged ? "yes" : "NO", Table::fmt_int(r->iterations),
                      Table::fmt_int(static_cast<long long>(r->precond_invocations)),
                      Table::fmt(r->seconds, 3), Table::fmt_sci(r->final_relres)});
    detail.print(std::cout);
  }

  print_banner(std::cout, "Figure 2 summary (values are speedup over fp64-F3R)");
  bench::finish_table(summary, cfg);
  if (!sp32.empty())
    std::cout << "geomean speedup fp32-F3R: " << Table::fmt(geomean(sp32), 2)
              << "x (paper GPU: ~1.34x)\n";
  if (!sp16.empty())
    std::cout << "geomean speedup fp16-F3R: " << Table::fmt(geomean(sp16), 2)
              << "x (paper GPU: ~1.55x)\n";
  return 0;
}
