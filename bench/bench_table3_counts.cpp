// Table 3 reproduction: number of invocations of the primary
// preconditioner M until convergence, CPU-node configuration.
//
// Columns mirror the paper: CG (or BiCGStab for nonsymmetric),
// fp64-FGMRES(64), and the three F3R precision configurations.  Hyphens
// mark convergence failures, as in the paper.
#include "bench_common.hpp"

using namespace nk;

namespace {

std::string count_cell(const SolveResult& r) {
  return r.converged ? Table::fmt_int(static_cast<long long>(r.precond_invocations)) : "-";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  auto cfg = bench::parse_bench_options(
      opt, {"ecology2", "thermal2", "tmt_sym", "apache2", "audikw_1", "hpcg_5_5_5",
            "Transport", "atmosmodd", "t2em", "tmt_unsym", "hpgmp_5_5_5", "ss"});
  bench::print_header("Table 3 — primary preconditioner invocations until convergence", cfg);

  FlatSolverCaps caps;
  caps.rtol = cfg.rtol;
  caps.max_iters = cfg.max_iters;

  Table t({"matrix", "CG/BiCGStab", "fp64-FGMRES(64)", "fp64-F3R", "fp32-F3R", "fp16-F3R"});
  for (const auto& name : cfg.matrices) {
    auto p = prepare_standin(name, cfg.scale, 7, cfg.use_sell());
    auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, cfg.nblocks);

    const auto kry = p.symmetric ? run_cg(p, *m, Prec::FP64, caps)
                                 : run_bicgstab(p, *m, Prec::FP64, caps);
    const auto fg = run_fgmres_restarted(p, *m, Prec::FP64, 64, caps);
    const auto f64 = run_nested(p, m, f3r_config(Prec::FP64), f3r_termination(cfg.rtol));
    const auto f32 = run_nested(p, m, f3r_config(Prec::FP32), f3r_termination(cfg.rtol));
    const auto f16 = run_nested(p, m, f3r_config(Prec::FP16), f3r_termination(cfg.rtol));

    t.add_row({name, count_cell(kry), count_cell(fg), count_cell(f64), count_cell(f32),
               count_cell(f16)});
  }
  bench::finish_table(t, cfg);
  std::cout << "expected shape (paper Table 3): the three F3R columns agree within a few\n"
               "percent; F3R needs fewer invocations than FGMRES(64) on hard problems and\n"
               "somewhat more than CG/BiCGStab on easy ones (64-invocation granularity).\n";
  return 0;
}
