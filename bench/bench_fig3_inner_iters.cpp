// Figure 3 reproduction: sensitivity of fp16-F3R to the inner iteration
// counts m2, m3, m4.
//
// For each matrix, runs fp16-F3R with the default (8, 4, 2) and then the
// paper's sweep values — m4 ∈ {1,3,4}, m3 ∈ {2,3,5,6}, m2 ∈ {6,7,9,10} —
// and prints, per variant, the two ratios the figure plots:
//   relative convergence speed = (default M-applies) / (variant M-applies)
//   relative performance       = (default time)      / (variant time)
// Values > 1 mean better than the default, matching the figure's axes.
#include "bench_common.hpp"

using namespace nk;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  auto cfg = bench::parse_bench_options(
      opt, {"hpcg_5_5_5", "thermal2", "hpgmp_5_5_5", "atmosmodd"});
  bench::print_header("Figure 3 — fp16-F3R vs inner iteration counts (m2, m3, m4)", cfg);

  struct Variant {
    std::string label;
    F3rParams prm;
  };
  std::vector<Variant> variants;
  for (int m4 : {1, 3, 4}) {
    F3rParams p;
    p.m4 = m4;
    variants.push_back({"m4=" + std::to_string(m4), p});
  }
  for (int m3 : {2, 3, 5, 6}) {
    F3rParams p;
    p.m3 = m3;
    variants.push_back({"m3=" + std::to_string(m3), p});
  }
  for (int m2 : {6, 7, 9, 10}) {
    F3rParams p;
    p.m2 = m2;
    variants.push_back({"m2=" + std::to_string(m2), p});
  }

  Table t({"matrix", "variant", "rel-conv-speed", "rel-performance", "M-applies", "conv"});
  for (const auto& name : cfg.matrices) {
    auto p = prepare_standin(name, cfg.scale, 7, cfg.use_sell());
    auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, cfg.nblocks);

    const auto base = bench::best_of(cfg.runs, [&] {
      return run_nested(p, m, f3r_config(Prec::FP16), f3r_termination(cfg.rtol));
    });
    if (!base.converged) {
      t.add_row({name, "default(8-4-2)", "-", "-", "-", "NO"});
      continue;
    }
    t.add_row({name, "default(8-4-2)", "1.00", "1.00",
               Table::fmt_int(static_cast<long long>(base.precond_invocations)), "yes"});

    for (const auto& v : variants) {
      const auto r = bench::best_of(cfg.runs, [&] {
        return run_nested(p, m, f3r_config(Prec::FP16, v.prm), f3r_termination(cfg.rtol));
      });
      if (!r.converged) {
        t.add_row({name, v.label, "-", "-", "-", "NO"});
        continue;
      }
      const double conv = static_cast<double>(base.precond_invocations) /
                          static_cast<double>(r.precond_invocations);
      const double perf = base.seconds / r.seconds;
      t.add_row({name, v.label, Table::fmt(conv, 2), Table::fmt(perf, 2),
                 Table::fmt_int(static_cast<long long>(r.precond_invocations)), "yes"});
    }
  }
  bench::finish_table(t, cfg);
  std::cout << "expected shape (paper Fig. 3): m4=3,4 degrade convergence AND performance;\n"
               "m4=1 sometimes converges faster but runs slower; m3 and m2 move results\n"
               "within roughly 0.5-1.4x with no clear winner.\n";
  return 0;
}
