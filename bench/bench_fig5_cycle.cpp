// Figure 5 reproduction: the weight-updating cycle c of the adaptive
// Richardson (Algorithm 1), c ∈ {1, 4, 16, 32, 128, 256} vs default 64.
//
// c = 1 recomputes the locally optimal ω every invocation (equivalent in
// spirit to GMRES(1)) and pays an extra SpMV + two reductions each time;
// large c updates rarely and relies on the running average.
#include "bench_common.hpp"

using namespace nk;

int main(int argc, char** argv) {
  Options opt(argc, argv);
  auto cfg = bench::parse_bench_options(opt, {"hpcg_5_5_5", "thermal2", "hpgmp_5_5_5"});
  bench::print_header("Figure 5 — adaptive weight-updating cycle c (vs c=64)", cfg);

  Table t({"matrix", "c", "rel-conv-speed", "rel-performance", "M-applies", "conv"});
  for (const auto& name : cfg.matrices) {
    auto p = prepare_standin(name, cfg.scale, 7, cfg.use_sell());
    auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, cfg.nblocks);

    const auto base = bench::best_of(cfg.runs, [&] {
      return run_nested(p, m, f3r_config(Prec::FP16), f3r_termination(cfg.rtol));
    });
    t.add_row({name, "64 (default)", "1.00", "1.00",
               base.converged
                   ? Table::fmt_int(static_cast<long long>(base.precond_invocations))
                   : "-",
               base.converged ? "yes" : "NO"});
    if (!base.converged) continue;

    for (int c : {1, 4, 16, 32, 128, 256}) {
      F3rParams prm;
      prm.cycle = c;
      const auto r = bench::best_of(cfg.runs, [&] {
        return run_nested(p, m, f3r_config(Prec::FP16, prm), f3r_termination(cfg.rtol));
      });
      if (!r.converged) {
        t.add_row({name, std::to_string(c), "-", "-", "-", "NO"});
        continue;
      }
      const double conv = static_cast<double>(base.precond_invocations) /
                          static_cast<double>(r.precond_invocations);
      t.add_row({name, std::to_string(c), Table::fmt(conv, 2),
                 Table::fmt(base.seconds / r.seconds, 2),
                 Table::fmt_int(static_cast<long long>(r.precond_invocations)), "yes"});
    }
  }
  bench::finish_table(t, cfg);
  std::cout << "expected shape (paper Fig. 5): no strong trend; c=1 adds computation\n"
               "without better convergence; very large c slightly slows convergence but\n"
               "costs less per invocation.\n";
  return 0;
}
