#!/usr/bin/env python3
"""Compare a fresh BENCH_kernels.json against the committed baseline.

CI runners are heterogeneous, so absolute seconds are meaningless across
machines.  What IS stable is each fused/batched kernel's advantage over its
unfused/sequential counterpart measured in the same process: the fused and
reference variants run back-to-back on the same box, so their RATIO cancels
the machine.  This script therefore gates on ratio regressions:

    ratio = fused_seconds / reference_seconds       (lower is better)

and fails when a fresh ratio exceeds the committed ratio by more than the
pair's tolerance.  Microsecond-scale BLAS-1/Arnoldi micro-kernel pairs get
2x the base tolerance (their timings carry real run-to-run variance even
min-of-N on one machine); the millisecond-to-second SpMM and batched-solve
pairs use the base tolerance (default 25%).  The batched-reduction records
additionally gate on the BANDWIDTH ratio (higher is better) of the fused
kernel over the single-column dot — the metric the register-blocked
multi-column kernels exist to improve.  (The *_speedup rows in the JSON
are purely informational.)

Record discipline: every gated record must be present.  A record missing
from the fresh run but present in the baseline (or vice versa) means a
kernel was renamed or dropped without updating this gate or the committed
JSON — that is reported as one line naming the record, and the script
exits 2.  A record absent from BOTH files is a feature-conditional kernel
(e.g. the AVX-512 FP16 natives on a machine without the ISA) and its pair
is skipped.

Usage:  tools/bench_diff.py <fresh.json> <baseline.json> [--tolerance 0.25]
        tools/bench_diff.py --self-test
"""

import argparse
import json
import sys

# (fused/batched record, unfused/sequential reference) pairs, per precision.
RATIO_PAIRS = [
    ("dot_many_{p}_k8", "dot_x8_{p}"),
    ("dot_cols_{p}_k8", "dot_x8_{p}"),
    ("dot_cols_cm_{p}_k8", "dot_x8_{p}"),
    ("axpy_many_{p}_k8", "axpy_x8_{p}"),
    ("scal_copy_{p}", "scal_plus_copy_{p}"),
    ("arnoldi_step_fused_{p}_k8", "arnoldi_step_unfused_{p}_k8"),
]
PRECISIONS = ["fp64", "fp32", "fp16"]

# Native AVX-512 FP16 kernels vs the blas:: dispatch path (F16C unless the
# env opts the natives in).  Absent from both files on machines without the
# ISA, hence skipped there rather than required.
FP16_PAIRS = [
    ("scal_fp16_avx512fp16", "scal_fp16"),
    ("axpy_fp16_avx512fp16", "axpy_fp16"),
    ("dot_fp16_avx512fp16", "dot_fp16"),
]

# Backend-tagged kernel records: the serial reference backend's cost over
# the host backend's, for the same kern::Kernels call.  The ratio mostly
# measures how much the host's OpenMP/SIMD paths buy on the bench box, so
# it gets the generous micro-pair tolerance.  These records are SOFT:
# absent from either file (e.g. a committed baseline predating the backend
# seam, or a bench built without the seam) the pair is skipped with a note
# instead of tripping the rename/drop hard error.
BACKEND_PAIRS = [
    ("backend_serial_spmv_csr_{p}", "backend_host_spmv_csr_{p}"),
    ("backend_serial_spmm_csr_{p}_k8", "backend_host_spmm_csr_{p}_k8"),
    ("backend_serial_dot_cols_{p}_k8", "backend_host_dot_cols_{p}_k8"),
]
BACKEND_PRECISIONS = ["fp64", "fp32", "fp16_fp32"]

# Autotuner quality records: Session("auto")'s total MODELED WORK over the
# stand-in catalog vs the best fixed spec's, both in the seconds column.
# The gate is an ABSOLUTE ceiling on the fresh auto/best ratio (the tuner
# must stay within the acceptance margin regardless of the baseline), and
# the records are SOFT like the backend ones: a baseline committed before
# the autotuner existed skips the pair instead of hard-failing.
AUTO_PAIRS = [
    ("auto_vs_best_fixed_work", "auto_vs_best_fixed_ref", 1.2),
]

SOFT_RECORDS = {f.format(p=p)
                for pair in BACKEND_PAIRS for f in pair for p in BACKEND_PRECISIONS}
SOFT_RECORDS |= {name for pair in AUTO_PAIRS for name in pair[:2]}

# Matrix-kernel pairs (suffix carries precision + matrix name).
SPMM_PAIRS = [
    ("spmm_csr_fp64_k8/hpcg", "spmv_x8_csr_fp64_k8/hpcg"),
    ("spmm_csr_fp32_k8/hpcg", "spmv_x8_csr_fp32_k8/hpcg"),
    ("spmm_csr_fp16_fp32_k8/hpcg", "spmv_x8_csr_fp16_fp32_k8/hpcg"),
    ("spmv_sell_fp64/hpcg", "spmv_sell_rowwise_fp64/hpcg"),
]

# Batched-solve pairs: one lockstep/compacted solve vs its reference.
SOLVE_PAIRS = [
    ("solve_cg_batched_8rhs_laplace", "solve_cg_seq_8rhs_laplace"),
    ("solve_cg_staggered16_compact_hpcg", "solve_cg_staggered16_masked_hpcg"),
    ("fgmres_staggered16_compact_hpcg", "fgmres_staggered16_masked_hpcg"),
]

# Daemon-throughput pairs: amortized per-solve seconds of N concurrent
# clients vs the single-client cost, through the nkrylovd SolveExecutor.
# Cross-request batching is what these measure — if merged waves stop
# amortizing setup/sweeps, the c64/c1024 per-solve cost climbs back toward
# c1's and the ratio regresses.  Scheduling noise is real at these
# timescales, so they ride the 2x micro-pair tolerance.
DAEMON_PAIRS = [
    ("daemon_solve_c64", "daemon_solve_c1"),
    ("daemon_solve_c1024", "daemon_solve_c1"),
]

# Absolute FLOOR gates on a single record's gbps column (no reference
# record, no baseline-relative drift): the value itself must stay at or
# above the floor.  daemon_cache_hit_rate carries the session-cache hit
# rate in its gbps column — repeat clients must essentially never re-pay
# setup, regardless of what a bad committed baseline happened to record.
FLOOR_GATES = [
    ("daemon_cache_hit_rate", 0.99),
]

# Guard-overhead gates: ABSOLUTE ceilings on the fresh guarded/unguarded
# seconds ratio, not baseline-relative drift.  The resilience layer's
# per-iteration non-finite panel scan must stay under 2% of the batched CG
# solve regardless of what the committed baseline happened to measure — a
# slow baseline must not grandfather in a slow guard.
GUARD_PAIRS = [
    ("solve_cg_batched_8rhs_guard_laplace", "solve_cg_batched_8rhs_laplace", 1.02),
]

# Bandwidth-ratio gates (HIGHER is better): the batched reduction's GB/s
# over the single-column dot's, fresh vs committed.  Catches the
# latency-bound regression class directly — a change that serializes the
# FMA chains again would keep the seconds-ratios plausible on a fast box
# but halve these.
BANDWIDTH_PAIRS = [
    ("dot_many_{p}_k8", "dot_{p}"),
    ("dot_cols_{p}_k8", "dot_{p}"),
]


def load(path):
    with open(path) as f:
        data = json.load(f)
    return {r["name"]: r for r in data["records"]}


def gated_pairs(tolerance):
    """(fused, reference, tolerance, metric) for every gate."""
    micro = [(f.format(p=p), r.format(p=p)) for f, r in RATIO_PAIRS for p in PRECISIONS]
    backend = [(f.format(p=p), r.format(p=p))
               for f, r in BACKEND_PAIRS for p in BACKEND_PRECISIONS]
    pairs = [(f, r, 2.0 * tolerance, "seconds")
             for f, r in micro + FP16_PAIRS + DAEMON_PAIRS + backend]
    pairs += [(f, r, tolerance, "seconds") for f, r in SPMM_PAIRS + SOLVE_PAIRS]
    pairs += [(f.format(p=p), r.format(p=p), 2.0 * tolerance, "gbps")
              for f, r in BANDWIDTH_PAIRS for p in PRECISIONS]
    # Ceiling/floor gates carry their own absolute limit in place of a
    # tolerance; floor gates have no reference record at all.
    pairs += [(f, r, ceiling, "ceiling") for f, r, ceiling in GUARD_PAIRS + AUTO_PAIRS]
    pairs += [(f, None, floor, "floor") for f, floor in FLOOR_GATES]
    return pairs


def diff(fresh, base, tolerance, fresh_name="fresh", base_name="baseline"):
    """Core comparison on already-loaded record dicts; returns the exit code."""
    failures, missing, checked = [], [], 0
    for fused, ref, tol, metric in gated_pairs(tolerance):
        names = (fused,) if ref is None else (fused, ref)
        # A record present in exactly one file is a rename/drop (or a new
        # kernel whose baseline was not refreshed): hard error.  A record
        # absent from BOTH files is a feature-conditional kernel on a
        # machine without the feature: skip its pair.
        ok = True
        # Soft records (backend-tagged pairs) skip on one-sided absence too:
        # a baseline committed before the backend seam must stay diffable.
        if any(n in SOFT_RECORDS and (n not in fresh or n not in base) for n in names):
            absent = [n for n in names if n not in fresh or n not in base]
            print(f"SKIP  {fused} vs {ref}: soft backend record(s) "
                  f"{', '.join(absent)} absent")
            continue
        for n in names:
            if n in fresh and n not in base:
                print(f"MISSING  record '{n}' absent from {base_name} — new kernel; "
                      f"refresh the committed baseline")
                ok = False
            elif n not in fresh and n in base:
                print(f"MISSING  record '{n}' absent from {fresh_name} but present in "
                      f"{base_name} — renamed or dropped without updating the gate?")
                ok = False
        if not ok:
            missing.extend(n for n in names if (n in fresh) != (n in base))
            continue
        if any(n not in fresh for n in names):
            print(f"SKIP  {fused} vs {ref}: feature-conditional record absent "
                  f"from both files")
            continue
        # seconds: lower is better, gate on the fused/ref ratio RISING.
        # gbps: higher is better, gate on the fused/ref ratio FALLING.
        # ceiling: the fresh seconds ratio must stay under `tol` ABSOLUTELY
        # (the baseline ratio is printed for context only).
        # floor: the fresh record's own gbps value must stay >= `tol`
        # ABSOLUTELY (single record, baseline printed for context only).
        if metric == "floor":
            fresh_val = fresh[fused]["gbps"]
            base_val = base[fused]["gbps"]
            checked += 1
            regressed = fresh_val < tol
            status = "FAIL" if regressed else "ok"
            print(f"{status:4}  {fused:42} gbps value {fresh_val:7.3f} vs floor "
                  f"{tol:.3f}  (baseline {base_val:.3f})")
            if regressed:
                failures.append(f"{fused} [{metric}]")
            continue
        real_metric = "seconds" if metric == "ceiling" else metric
        fresh_ratio = fresh[fused][real_metric] / fresh[ref][real_metric]
        base_ratio = base[fused][real_metric] / base[ref][real_metric]
        checked += 1
        if metric == "ceiling":
            regressed = fresh_ratio > tol
            status = "FAIL" if regressed else "ok"
            print(f"{status:4}  {fused:42} seconds ratio {fresh_ratio:7.3f} vs ceiling "
                  f"{tol:.3f}  (baseline {base_ratio:.3f})")
        else:
            rel = fresh_ratio / base_ratio - 1.0
            regressed = rel > tol if metric == "seconds" else rel < -tol
            status = "FAIL" if regressed else "ok"
            print(f"{status:4}  {fused:42} {metric} ratio {fresh_ratio:7.3f} vs baseline "
                  f"{base_ratio:7.3f}  ({rel:+.1%}, tol {tol:.0%})")
        if regressed:
            failures.append(f"{fused} [{metric}]")

    if missing:
        print(f"\nbench_diff: {len(missing)} gated record(s) missing — see MISSING "
              f"lines above", file=sys.stderr)
        return 2
    if checked == 0:
        print("bench_diff: no comparable records found", file=sys.stderr)
        return 2
    if failures:
        print(f"\nbench_diff: {len(failures)} fused/batched kernel metric(s) regressed "
              f"beyond tolerance vs the committed baseline:", file=sys.stderr)
        for name in failures:
            print(f"  {name}", file=sys.stderr)
        return 1
    print(f"\nbench_diff: {checked} fused/batched kernel ratios within "
          f"tolerance of the committed baseline")
    return 0


def self_test():
    """Exercise the pass / regression / missing-record paths on synthetic
    reports (no files, no timing).  Exit 0 iff every path behaves."""
    def synthetic():
        recs = {}
        for fused, ref, _tol, _metric in gated_pairs(0.25):
            # Fused kernels nominally 4x the reference bandwidth / 1/4 the
            # seconds; exact values are irrelevant, only the ratios matter.
            # (gbps=4.0 also sits above every absolute floor gate.)
            recs.setdefault(fused, {"name": fused, "seconds": 0.25, "gbps": 4.0})
            if ref is not None:
                recs.setdefault(ref, {"name": ref, "seconds": 1.0, "gbps": 1.0})
        return recs

    ok = True

    def expect(what, got, want):
        nonlocal ok
        if got != want:
            print(f"self-test FAIL: {what}: exit {got}, expected {want}", file=sys.stderr)
            ok = False
        else:
            print(f"self-test ok: {what} -> exit {got}")

    expect("identical reports pass", diff(synthetic(), synthetic(), 0.25), 0)

    slow = synthetic()
    slow["dot_many_fp64_k8"] = dict(slow["dot_many_fp64_k8"], seconds=1.0)
    expect("seconds-ratio regression fails", diff(slow, synthetic(), 0.25), 1)

    narrow = synthetic()
    narrow["dot_cols_fp32_k8"] = dict(narrow["dot_cols_fp32_k8"], gbps=1.0)
    expect("bandwidth-ratio regression fails", diff(narrow, synthetic(), 0.25), 1)

    # The guard ceiling is absolute: a 5% overhead fails even when the
    # committed baseline carries the same 5% (no grandfathering).
    heavy = synthetic()
    heavy["solve_cg_batched_8rhs_guard_laplace"] = dict(
        heavy["solve_cg_batched_8rhs_guard_laplace"],
        seconds=1.05 * heavy["solve_cg_batched_8rhs_laplace"]["seconds"])
    expect("guard overhead above the absolute ceiling fails",
           diff(heavy, dict(heavy), 0.25), 1)

    # The cache-hit floor is absolute too: a daemon that makes repeat
    # clients re-pay setup fails even against a baseline with the same rate.
    cold = synthetic()
    cold["daemon_cache_hit_rate"] = dict(cold["daemon_cache_hit_rate"], gbps=0.5)
    expect("cache-hit rate below the absolute floor fails",
           diff(cold, dict(cold), 0.25), 1)

    # The autotuner margin is absolute as well: auto costing 1.5x the best
    # fixed spec fails even when the committed baseline carries the same
    # ratio (the acceptance margin, not drift, is the contract).
    detuned = synthetic()
    detuned["auto_vs_best_fixed_work"] = dict(
        detuned["auto_vs_best_fixed_work"],
        seconds=1.5 * detuned["auto_vs_best_fixed_ref"]["seconds"])
    expect("auto/best-fixed work ratio above the ceiling fails",
           diff(detuned, dict(detuned), 0.25), 1)

    # ...but the records are soft: a baseline committed before the
    # autotuner existed skips the pair rather than exiting 2.
    pre_auto = synthetic()
    for name in ("auto_vs_best_fixed_work", "auto_vs_best_fixed_ref"):
        del pre_auto[name]
    expect("auto records absent from baseline skip", diff(synthetic(), pre_auto, 0.25), 0)

    renamed = synthetic()
    del renamed["dot_cols_fp16_k8"]
    expect("record missing from fresh run exits 2", diff(renamed, synthetic(), 0.25), 2)

    stale = synthetic()
    del stale["axpy_many_fp32_k8"]
    expect("record missing from baseline exits 2", diff(synthetic(), stale, 0.25), 2)

    # Soft backend records: one-sided absence (a pre-seam baseline) skips
    # the pair instead of exiting 2 like a rename/drop would.
    pre_seam = synthetic()
    for name in list(pre_seam):
        if name in SOFT_RECORDS:
            del pre_seam[name]
    expect("soft backend records absent from baseline skip",
           diff(synthetic(), pre_seam, 0.25), 0)

    both = synthetic()
    conditional = [f for f, _r in FP16_PAIRS]
    for name in conditional:
        del both[name]
    expect("feature-conditional records absent from both sides skip",
           diff(both, dict(both), 0.25), 0)

    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("fresh", nargs="?")
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative ratio regression (default 0.25)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in gate self-test and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.fresh is None or args.baseline is None:
        ap.error("fresh and baseline JSON paths are required (or --self-test)")

    return diff(load(args.fresh), load(args.baseline), args.tolerance,
                fresh_name=args.fresh, base_name=args.baseline)


if __name__ == "__main__":
    sys.exit(main())
