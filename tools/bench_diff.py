#!/usr/bin/env python3
"""Compare a fresh BENCH_kernels.json against the committed baseline.

CI runners are heterogeneous, so absolute seconds are meaningless across
machines.  What IS stable is each fused/batched kernel's advantage over its
unfused/sequential counterpart measured in the same process: the fused and
reference variants run back-to-back on the same box, so their RATIO cancels
the machine.  This script therefore gates on ratio regressions:

    ratio = fused_seconds / reference_seconds       (lower is better)

and fails when a fresh ratio exceeds the committed ratio by more than the
pair's tolerance.  Microsecond-scale BLAS-1/Arnoldi micro-kernel pairs get
2x the base tolerance (their timings carry real run-to-run variance even
min-of-N on one machine); the millisecond-to-second SpMM and batched-solve
pairs use the base tolerance (default 25%).  (The *_speedup rows in the
JSON are purely informational — the gate reads only the seconds of each
fused/reference record pair, which covers the same regressions.)

Usage:  tools/bench_diff.py <fresh.json> <baseline.json> [--tolerance 0.25]
"""

import argparse
import json
import sys

# (fused/batched record, unfused/sequential reference) pairs, per precision.
RATIO_PAIRS = [
    ("dot_many_{p}_k8", "dot_x8_{p}"),
    ("axpy_many_{p}_k8", "axpy_x8_{p}"),
    ("scal_copy_{p}", "scal_plus_copy_{p}"),
    ("arnoldi_step_fused_{p}_k8", "arnoldi_step_unfused_{p}_k8"),
]
PRECISIONS = ["fp64", "fp32", "fp16"]

# Matrix-kernel pairs (suffix carries precision + matrix name).
SPMM_PAIRS = [
    ("spmm_csr_fp64_k8/hpcg", "spmv_x8_csr_fp64_k8/hpcg"),
    ("spmm_csr_fp32_k8/hpcg", "spmv_x8_csr_fp32_k8/hpcg"),
    ("spmm_csr_fp16_fp32_k8/hpcg", "spmv_x8_csr_fp16_fp32_k8/hpcg"),
    ("spmv_sell_fp64/hpcg", "spmv_sell_rowwise_fp64/hpcg"),
]

# Batched-solve pairs: one lockstep/compacted solve vs its reference.
SOLVE_PAIRS = [
    ("solve_cg_batched_8rhs_laplace", "solve_cg_seq_8rhs_laplace"),
    ("solve_cg_staggered16_compact_hpcg", "solve_cg_staggered16_masked_hpcg"),
    ("fgmres_staggered16_compact_hpcg", "fgmres_staggered16_masked_hpcg"),
]


def load(path):
    with open(path) as f:
        data = json.load(f)
    return {r["name"]: r for r in data["records"]}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("fresh")
    ap.add_argument("baseline")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative ratio regression (default 0.25)")
    args = ap.parse_args()

    fresh, base = load(args.fresh), load(args.baseline)

    micro = [(f.format(p=p), r.format(p=p)) for f, r in RATIO_PAIRS for p in PRECISIONS]
    pairs = [(f, r, 2.0 * args.tolerance) for f, r in micro]
    pairs += [(f, r, args.tolerance) for f, r in SPMM_PAIRS + SOLVE_PAIRS]

    failures, checked = [], 0
    for fused, ref, tol in pairs:
        missing = [n for n in (fused, ref) if n not in fresh or n not in base]
        if missing:
            print(f"SKIP  {fused} vs {ref}: missing {missing}")
            continue
        fresh_ratio = fresh[fused]["seconds"] / fresh[ref]["seconds"]
        base_ratio = base[fused]["seconds"] / base[ref]["seconds"]
        rel = fresh_ratio / base_ratio - 1.0
        checked += 1
        status = "FAIL" if rel > tol else "ok"
        print(f"{status:4}  {fused:42} ratio {fresh_ratio:6.3f} vs baseline "
              f"{base_ratio:6.3f}  ({rel:+.1%}, tol {tol:.0%})")
        if rel > tol:
            failures.append(fused)

    if checked == 0:
        print("bench_diff: no comparable records found", file=sys.stderr)
        return 2
    if failures:
        print(f"\nbench_diff: {len(failures)} fused/batched kernel metric(s) regressed "
              f"beyond tolerance vs the committed baseline:", file=sys.stderr)
        for name in failures:
            print(f"  {name}", file=sys.stderr)
        return 1
    print(f"\nbench_diff: {checked} fused/batched kernel ratios within "
          f"tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
