#!/bin/sh
# End-to-end smoke test for nkrylovd (wired as ctest "nkrylovd_smoke",
# labels smoke;service).  Boots the daemon on a scratch socket and walks
# the whole protocol through nk_client:
#
#   1. HELLO banner
#   2. PUTGEN twice -> the second must be a cache HIT (zero re-setup)
#   3. a batched SOLVE whose columns all converge
#   4. a malformed raw line -> structured ERR, connection survives policy
#   5. a fault-injected spec (nan@0) -> per-column structured failure,
#      daemon stays up and keeps serving
#   6. STATS counters prove the cache hits happened
#   7. SHUTDOWN drains and exits 0
#
# Usage: service_smoke.sh NKRYLOVD NK_CLIENT WORKDIR
set -eu

NKRYLOVD=$1
NK_CLIENT=$2
WORKDIR=$3
SOCK="$WORKDIR/nkrylovd-smoke-$$.sock"
LOG="$WORKDIR/nkrylovd-smoke-$$.log"

fail() {
  echo "service_smoke: FAIL: $1" >&2
  [ -f "$LOG" ] && sed 's/^/  daemon: /' "$LOG" >&2
  kill "$DAEMON_PID" 2>/dev/null || true
  exit 1
}

"$NKRYLOVD" --socket "$SOCK" --threads 2 --max-batch 8 >"$LOG" 2>&1 &
DAEMON_PID=$!
trap 'kill $DAEMON_PID 2>/dev/null || true; rm -f "$SOCK" "$LOG"' EXIT

# Wait for the socket to appear (the daemon factorizes nothing at boot,
# so this is fast; 10 s is a generous sanitizer allowance).
i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && fail "daemon socket never appeared"
  sleep 0.1
done

out=$("$NK_CLIENT" "$SOCK" hello) || fail "hello"
echo "$out" | grep -q "nkrylovd 1" || fail "unexpected hello banner: $out"

out=$("$NK_CLIENT" "$SOCK" put-gen hpcg_4_4_4 1) || fail "put-gen"
echo "$out" | grep -q " NEW$" || fail "first put-gen not NEW: $out"

out=$("$NK_CLIENT" "$SOCK" put-gen hpcg_4_4_4 1) || fail "repeat put-gen"
echo "$out" | grep -q " CACHED$" || fail "repeat put-gen not CACHED: $out"

out=$("$NK_CLIENT" "$SOCK" solve-gen hpcg_4_4_4 1 "cg/bj;nblocks=8" 4) \
  || fail "batched solve did not converge"
echo "$out" | grep -q "4/4 converged" || fail "unexpected solve output: $out"

# Malformed header line -> one structured ERR (the connection then closes
# by design; nk_client exits after the reply anyway).
out=$("$NK_CLIENT" "$SOCK" raw "SOLVE nothex 4x") || fail "raw request"
echo "$out" | grep -q "^ERR bad-request" || fail "malformed line not ERR'd: $out"

# Poisoned request: the fault preconditioner injects a NaN into column
# iteration 0, so every column fails STRUCTURALLY (non_finite) — the
# daemon itself must survive and keep answering.
# nk_client exits 1 here (not every column converged) — that exit code is
# the client's report, not a script failure.
out=$("$NK_CLIENT" "$SOCK" solve-gen hpcg_4_4_4 1 "cg/fault;inject=nan@0;inner=jacobi" 2 || true)
echo "$out" | grep -q "non_finite" || fail "fault spec did not yield non_finite columns: $out"

out=$("$NK_CLIENT" "$SOCK" hello) || fail "daemon died after poisoned request"

# Four PUTGENs total (put-gen x2, solve-gen x2): exactly ONE generation+
# preparation ever happened — every repeat was a cache hit.
out=$("$NK_CLIENT" "$SOCK" stats) || fail "stats"
echo "$out" | grep -q "problem_misses=1" || fail "expected problem_misses=1 in: $out"
echo "$out" | grep -q "problem_hits=3" || fail "expected problem_hits=3 in: $out"

"$NK_CLIENT" "$SOCK" shutdown || fail "shutdown"
wait "$DAEMON_PID" || fail "daemon exited nonzero"
echo "service_smoke: OK"
