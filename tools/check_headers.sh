#!/usr/bin/env bash
# Header self-sufficiency check: compile every public header under src/ as
# a standalone translation unit, so the umbrella nkrylov.hpp cannot mask a
# missing include in any individual header.
#
#   CXX=g++-13 ./tools/check_headers.sh
#
# Exits non-zero listing every header that fails to compile on its own.
set -u
cxx="${CXX:-c++}"
root="$(cd "$(dirname "$0")/.." && pwd)"
flags=(-std=c++20 -fsyntax-only -x c++ -Wall -Wextra -I "$root/src")

fails=0
checked=0
errlog="$(mktemp)"
trap 'rm -f "$errlog"' EXIT

while IFS= read -r h; do
  checked=$((checked + 1))
  if echo "#include \"$h\"" | "$cxx" "${flags[@]}" - 2> "$errlog"; then
    echo "ok   $h"
  else
    fails=$((fails + 1))
    echo "FAIL $h"
    sed 's/^/     /' "$errlog"
  fi
done < <(cd "$root/src" && find . -name '*.hpp' | sed 's|^\./||' | sort)

echo "checked $checked headers, $fails failed"
[ "$fails" -eq 0 ]
