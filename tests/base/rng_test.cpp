// Tests for the deterministic RNG used to generate reproducible workloads.
#include <gtest/gtest.h>

#include <set>

#include "base/half.hpp"
#include "base/rng.hpp"

namespace nk {
namespace {

TEST(Rng, SplitMixDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitMixDifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, XoshiroDeterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Xoshiro256 rng(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexInRange) {
  Xoshiro256 rng(77);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto k = rng.uniform_index(10);
    EXPECT_LT(k, 10u);
    seen.insert(k);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit in 1000 draws
}

TEST(Rng, FillUniformMatchesPaperRhsRange) {
  // The paper's right-hand sides are uniform in [0, 1).
  auto v = random_vector<double>(4096, 7);
  for (double x : v) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, FillUniformHalfStaysInRange) {
  auto v = random_vector<half>(512, 3, 0.0, 1.0);
  for (half x : v) {
    EXPECT_GE(static_cast<float>(x), 0.0f);
    EXPECT_LE(static_cast<float>(x), 1.0f);  // rounding may hit 1.0 exactly
  }
}

TEST(Rng, SameSeedSameVector) {
  auto a = random_vector<double>(100, 42);
  auto b = random_vector<double>(100, 42);
  EXPECT_EQ(a, b);
  auto c = random_vector<double>(100, 43);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace nk
