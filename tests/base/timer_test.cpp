// Tests for the wall-clock and accumulating section timers.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "base/timer.hpp"

namespace nk {
namespace {

void spin_for_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

TEST(WallTimer, ElapsedIsNonNegativeAndMonotone) {
  WallTimer t;
  const double a = t.seconds();
  EXPECT_GE(a, 0.0);
  spin_for_ms(2);
  const double b = t.seconds();
  EXPECT_GE(b, a);
}

TEST(WallTimer, MeasuresSleepsAtLeastApproximately) {
  WallTimer t;
  spin_for_ms(10);
  EXPECT_GE(t.seconds(), 0.009);  // steady_clock never under-reports a sleep
}

TEST(WallTimer, MillisMatchesSeconds) {
  WallTimer t;
  spin_for_ms(2);
  const double s = t.seconds();
  const double ms = t.millis();
  // Two separate now() calls: ms was read after s, so it can only be
  // larger; a generous upper margin keeps loaded CI runners flake-free.
  EXPECT_GE(ms, s * 1e3);
  EXPECT_NEAR(ms, s * 1e3, 100.0);
}

TEST(WallTimer, ResetRestartsFromZero) {
  WallTimer t;
  spin_for_ms(20);
  const double before = t.seconds();
  t.reset();
  // Post-reset elapsed is microseconds; it beats the 20 ms pre-reset
  // reading unless the scheduler stalls us longer than `before` itself.
  EXPECT_LT(t.seconds(), before);
}

TEST(SectionTimer, AccumulatesAcrossStartStopPairs) {
  SectionTimer t;
  EXPECT_DOUBLE_EQ(t.total_seconds(), 0.0);
  EXPECT_EQ(t.count(), 0u);
  for (int i = 0; i < 3; ++i) {
    t.start();
    spin_for_ms(2);
    t.stop();
  }
  EXPECT_EQ(t.count(), 3u);
  EXPECT_GE(t.total_seconds(), 0.005);
}

TEST(SectionTimer, StopWithoutStartIsIgnored) {
  SectionTimer t;
  t.stop();
  t.stop();
  EXPECT_EQ(t.count(), 0u);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 0.0);
}

TEST(SectionTimer, DoubleStopCountsOnce) {
  SectionTimer t;
  t.start();
  t.stop();
  t.stop();  // second stop: not running any more
  EXPECT_EQ(t.count(), 1u);
}

TEST(SectionTimer, ResetClearsEverything) {
  SectionTimer t;
  t.start();
  spin_for_ms(1);
  t.stop();
  t.reset();
  EXPECT_EQ(t.count(), 0u);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 0.0);
}

TEST(SectionTimer, TimeOutsideSectionNotAttributed) {
  SectionTimer t;
  t.start();
  t.stop();
  const double in_section = t.total_seconds();
  spin_for_ms(10);  // outside start/stop: must not count
  EXPECT_DOUBLE_EQ(t.total_seconds(), in_section);
}

}  // namespace
}  // namespace nk
