// Tests for the bench-table renderer.
#include <gtest/gtest.h>

#include <sstream>

#include "base/table.hpp"

namespace nk {
namespace {

TEST(Table, ArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(Table, PrintAligned) {
  Table t({"solver", "t"});
  t.add_row({"fp16-F3R", "1.0"});
  t.add_row({"cg", "22.5"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("solver"), std::string::npos);
  EXPECT_NE(s.find("fp16-F3R"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  // First column is padded to the widest cell ("fp16-F3R", 8 chars): the
  // header line must contain "solver" followed by at least 2 spaces.
  EXPECT_NE(s.find("solver    "), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt_int(42), "42");
  EXPECT_EQ(Table::fmt_sci(0.000123, 2), "1.23e-04");
}

TEST(Table, WriteCsvFailsGracefully) {
  Table t({"a"});
  EXPECT_FALSE(t.write_csv("/nonexistent-dir/x.csv"));
}

TEST(Table, Banner) {
  std::ostringstream os;
  print_banner(os, "phase 1");
  EXPECT_EQ(os.str(), "\n=== phase 1 ===\n");
}

}  // namespace
}  // namespace nk
