// Tests for the panel-layout helpers (base/panel.hpp): addressing under
// both layouts, exact column copies across every layout combination, the
// whole-panel transposing copy, and the spec-grammar name round-trip.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "base/panel.hpp"
#include "base/rng.hpp"

namespace nk {
namespace {

TEST(PanelLayout, NameAndParseRoundTrip) {
  for (PanelLayout l : {PanelLayout::kRowMajor, PanelLayout::kColMajor}) {
    const auto parsed = parse_panel_layout(panel_layout_name(l));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, l);
  }
  EXPECT_FALSE(parse_panel_layout("columnmajor").has_value());
  EXPECT_FALSE(parse_panel_layout("").has_value());
  EXPECT_FALSE(parse_panel_layout("RowMajor").has_value());
}

TEST(PanelAt, AddressesMatchLayoutDefinition) {
  // 3 columns of length 4; row-major ld = 4 (column stride), colmajor
  // ld = 3 (row stride).
  std::vector<int> rm(12), cm(12);
  for (int c = 0; c < 3; ++c)
    for (int i = 0; i < 4; ++i) {
      rm[static_cast<std::size_t>(c) * 4 + static_cast<std::size_t>(i)] = 10 * c + i;
      cm[static_cast<std::size_t>(i) * 3 + static_cast<std::size_t>(c)] = 10 * c + i;
    }
  for (int c = 0; c < 3; ++c)
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(*panel_at<PanelLayout::kRowMajor>(rm.data(), 4, c, i), 10 * c + i);
      EXPECT_EQ(*panel_at<PanelLayout::kColMajor>(cm.data(), 3, c, i), 10 * c + i);
      EXPECT_EQ(*panel_at(rm.data(), 4, PanelLayout::kRowMajor, c, i), 10 * c + i);
      EXPECT_EQ(*panel_at(cm.data(), 3, PanelLayout::kColMajor, c, i), 10 * c + i);
    }
}

TEST(PanelCopyCol, ExactAcrossAllLayoutCombinations) {
  const std::ptrdiff_t n = 257;  // odd: exercises strided tails
  const int k = 5;
  const auto src_d = random_vector<double>(static_cast<std::size_t>(n) * k, 7, -1.0, 1.0);
  for (PanelLayout ls : {PanelLayout::kRowMajor, PanelLayout::kColMajor}) {
    for (PanelLayout ld : {PanelLayout::kRowMajor, PanelLayout::kColMajor}) {
      const std::ptrdiff_t lds = ls == PanelLayout::kColMajor ? k : n;
      const std::ptrdiff_t ldd = ld == PanelLayout::kColMajor ? k : n;
      std::vector<double> src(static_cast<std::size_t>(n) * k);
      for (int c = 0; c < k; ++c)
        for (std::ptrdiff_t i = 0; i < n; ++i)
          *panel_at(src.data(), lds, ls, c, i) =
              src_d[static_cast<std::size_t>(c) * static_cast<std::size_t>(n) +
                    static_cast<std::size_t>(i)];
      std::vector<double> dst(static_cast<std::size_t>(n) * k, -99.0);
      // Copy column 3 of src into column 1 of dst; every other dst element
      // must stay untouched.
      panel_copy_col(src.data(), lds, ls, 3, dst.data(), ldd, ld, 1, n);
      for (int c = 0; c < k; ++c)
        for (std::ptrdiff_t i = 0; i < n; ++i) {
          const double got = *panel_at(dst.data(), ldd, ld, c, i);
          if (c == 1)
            EXPECT_EQ(got, src_d[3 * static_cast<std::size_t>(n) +
                                 static_cast<std::size_t>(i)])
                << "ls=" << panel_layout_name(ls) << " ld=" << panel_layout_name(ld)
                << " i=" << i;
          else
            EXPECT_EQ(got, -99.0) << "c=" << c << " i=" << i;
        }
    }
  }
}

TEST(PanelCopy, TransposeRoundTripIsIdentity) {
  // Large enough to cross panel_copy's OpenMP threshold (k·n > 2^16).
  const std::ptrdiff_t n = 20000;
  const int k = 7;
  const auto src = random_vector<double>(static_cast<std::size_t>(n) * k, 8, -1.0, 1.0);
  std::vector<double> cm(src.size()), back(src.size(), 0.0);
  panel_copy(src.data(), n, PanelLayout::kRowMajor, cm.data(), k, PanelLayout::kColMajor,
             k, n);
  panel_copy(cm.data(), k, PanelLayout::kColMajor, back.data(), n, PanelLayout::kRowMajor,
             k, n);
  for (std::size_t i = 0; i < src.size(); ++i) ASSERT_EQ(back[i], src[i]) << "i=" << i;
  // Spot-check the interleaving itself.
  for (int c = 0; c < k; ++c)
    for (std::ptrdiff_t i : {std::ptrdiff_t{0}, std::ptrdiff_t{1}, n - 1})
      EXPECT_EQ(cm[static_cast<std::size_t>(i) * k + static_cast<std::size_t>(c)],
                src[static_cast<std::size_t>(c) * static_cast<std::size_t>(n) +
                    static_cast<std::size_t>(i)]);
}

TEST(PanelCopy, ZeroLengthAndZeroColumnsAreNoops) {
  std::vector<double> src(8, 1.0), dst(8, 2.0);
  panel_copy(src.data(), 4, PanelLayout::kRowMajor, dst.data(), 2, PanelLayout::kColMajor,
             2, 0);
  panel_copy(src.data(), 4, PanelLayout::kRowMajor, dst.data(), 2, PanelLayout::kColMajor,
             0, 4);
  for (double v : dst) EXPECT_EQ(v, 2.0);
}

}  // namespace
}  // namespace nk
