// Tests for the fused multi-vector kernels (base/blas_block.hpp): every
// MT/XT precision pair against naive reference loops, edge sizes, and a
// regression check that the contiguous-basis FGMRES reproduces the seed
// (vector-of-vectors, unfused blas1) implementation exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "base/blas1.hpp"
#include "base/blas_block.hpp"
#include "base/env.hpp"
#include "base/rng.hpp"
#include "krylov/fgmres.hpp"
#include "precond/jacobi.hpp"
#include "sparse/spmv.hpp"
#include "support/problems.hpp"

namespace nk {
namespace {

// Edge sizes from the issue: empty, single element, sub-unroll, 4k+3
// (exercises the fp16 four-way remainder and multiple tiles).
const std::vector<std::size_t> kSizes = {0, 1, 3, 4099};
const std::vector<int> kCounts = {1, 3, 8};

template <class TV, class TW>
void check_dot_many() {
  for (std::size_t n : kSizes) {
    for (int k : kCounts) {
      const auto vd =
          random_vector<double>(n * static_cast<std::size_t>(k) + 1, 42, -1.0, 1.0);
      const auto wd = random_vector<double>(n + 1, 43, -1.0, 1.0);
      std::vector<TV> v(vd.size());
      for (std::size_t i = 0; i < vd.size(); ++i) v[i] = static_cast<TV>(vd[i]);
      std::vector<TW> w(n);
      for (std::size_t i = 0; i < n; ++i) w[i] = static_cast<TW>(wd[i]);

      using S = acc_t<promote_t<TV, TW>>;
      std::vector<S> out(static_cast<std::size_t>(k), S{99});
      blas::dot_many(v.data(), static_cast<std::ptrdiff_t>(n), k,
                     std::span<const TW>(w), out.data());
      for (int j = 0; j < k; ++j) {
        const auto ref = blas::dot(
            std::span<const TV>(v.data() + static_cast<std::size_t>(j) * n, n),
            std::span<const TW>(w));
        // Same accumulation order as blas::dot at one thread → exact; under
        // OpenMP the thread partitioning differs, so allow a reassociation
        // bound of n·eps in the accumulator precision.
        const double acc_eps = std::is_same_v<S, double> ? 1e-15 : 1e-6;
        const double tol = num_threads() == 1
                               ? 0.0
                               : acc_eps * static_cast<double>(n + 1) *
                                     std::max(1.0, std::abs(static_cast<double>(ref)));
        EXPECT_NEAR(static_cast<double>(out[j]), static_cast<double>(ref), tol)
            << "n=" << n << " k=" << k << " j=" << j;
      }
    }
  }
}

TEST(DotMany, MatchesDotAllPrecisionPairs) {
  check_dot_many<double, double>();
  check_dot_many<float, float>();
  check_dot_many<half, half>();
  check_dot_many<half, float>();
  check_dot_many<float, half>();
  check_dot_many<double, float>();
  check_dot_many<float, double>();
  check_dot_many<half, double>();
  check_dot_many<double, half>();
}

#ifdef _OPENMP
// Regression for the team-wide reduction scratch: force a real multi-thread
// team through the fused kernels' parallel path (k·n far above the default
// 4096-element threshold).  A per-thread `thread_local` scratch indexed by
// tid left every worker writing through its own empty vector — segfault or
// silently dropped partial sums — and the ordinary suite sizes never caught
// it because CI ran single-threaded.
TEST(BlasBlockParallel, MultiThreadTeamThroughFusedKernels) {
  // Restore on every exit path (GTEST_SKIP and ASSERT return early).
  struct ThreadGuard {
    int saved = omp_get_max_threads();
    ~ThreadGuard() { omp_set_num_threads(saved); }
  } guard;
  omp_set_num_threads(4);
  // omp_set_num_threads is a request the runtime may refuse (OMP_THREAD_LIMIT,
  // dynamic adjustment); with a 1-thread team the pre-fix bug is invisible, so
  // prove the team formed or the regression is silently lost.
  int team = 0;
#pragma omp parallel
  {
#pragma omp single
    team = omp_get_num_threads();
  }
  if (team < 2)
    GTEST_SKIP() << "runtime refused a multi-thread team (got " << team << ")";
  const std::size_t n = 200000;
  const int k = 4;

  {  // dot_many, fp64: reassociation-bounded vs a serial reference.
    const auto vd = random_vector<double>(n * k, 48, -1.0, 1.0);
    const auto wd = random_vector<double>(n, 49, -1.0, 1.0);
    std::vector<double> out(k, 99.0);
    blas::dot_many(vd.data(), static_cast<std::ptrdiff_t>(n), k,
                   std::span<const double>(wd), out.data());
    for (int j = 0; j < k; ++j) {
      double ref = 0.0;
      for (std::size_t i = 0; i < n; ++i) ref += vd[j * n + i] * wd[i];
      EXPECT_NEAR(out[j], ref,
                  1e-15 * static_cast<double>(n) * std::max(1.0, std::abs(ref)))
          << "j=" << j;
    }
  }

  {  // dot_many, fp16 inputs / fp32 accumulation: same bound in fp32 eps.
    const auto vd = random_vector<double>(n * k, 50, -1.0, 1.0);
    const auto wd = random_vector<double>(n, 51, -1.0, 1.0);
    std::vector<half> v(n * k), w(n);
    for (std::size_t i = 0; i < n * k; ++i) v[i] = static_cast<half>(vd[i]);
    for (std::size_t i = 0; i < n; ++i) w[i] = static_cast<half>(wd[i]);
    std::vector<float> out(k, 99.0f);
    blas::dot_many(v.data(), static_cast<std::ptrdiff_t>(n), k,
                   std::span<const half>(w), out.data());
    for (int j = 0; j < k; ++j) {
      double ref = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        ref += static_cast<double>(static_cast<float>(v[j * n + i])) *
               static_cast<double>(static_cast<float>(w[i]));
      EXPECT_NEAR(static_cast<double>(out[j]), ref,
                  1e-6 * static_cast<double>(n) * std::max(1.0, std::abs(ref)))
          << "j=" << j;
    }
  }

  {  // axpy_many: element-local chains, bit-exact at any thread count.
    const auto vd = random_vector<double>(n * k, 52, -1.0, 1.0);
    const auto wd = random_vector<double>(n, 53, -1.0, 1.0);
    std::vector<double> fused = wd, ref = wd;
    const double h[] = {0.1, -0.2, 0.3, -0.4};
    blas::axpy_many(vd.data(), static_cast<std::ptrdiff_t>(n), k, h,
                    std::span<double>(fused), true);
    for (int j = 0; j < k; ++j)
      blas::axpy(-h[j], std::span<const double>(vd.data() + j * n, n),
                 std::span<double>(ref));
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(fused[i], ref[i]) << "i=" << i;  // abort on first of 200k
  }
}
#endif  // _OPENMP

TEST(DotMany, ZeroCountIsNoop) {
  std::vector<double> v(8, 1.0), w(8, 1.0);
  double out = 123.0;
  blas::dot_many(v.data(), 8, 0, std::span<const double>(w), &out);
  EXPECT_EQ(out, 123.0);
}

template <class TV, class TW>
void check_axpy_many() {
  using S = acc_t<promote_t<TV, TW>>;
  for (std::size_t n : kSizes) {
    for (int k : kCounts) {
      const auto vd =
          random_vector<double>(n * static_cast<std::size_t>(k) + 1, 44, -1.0, 1.0);
      const auto wd = random_vector<double>(n + 1, 45, -1.0, 1.0);
      std::vector<TV> v(vd.size());
      for (std::size_t i = 0; i < vd.size(); ++i) v[i] = static_cast<TV>(vd[i]);
      std::vector<TW> w(n);
      for (std::size_t i = 0; i < n; ++i) w[i] = static_cast<TW>(wd[i]);
      std::vector<S> h(static_cast<std::size_t>(k));
      for (int j = 0; j < k; ++j) h[j] = static_cast<S>(0.1 * (j + 1));

      for (bool subtract : {false, true}) {
        std::vector<TW> fused = w, ref = w;
        blas::axpy_many(v.data(), static_cast<std::ptrdiff_t>(n), k, h.data(),
                        std::span<TW>(fused), subtract);
        for (int j = 0; j < k; ++j)
          blas::axpy(subtract ? -h[j] : h[j],
                     std::span<const TV>(v.data() + static_cast<std::size_t>(j) * n, n),
                     std::span<TW>(ref));
        // Element-local chains with identical per-term rounding: bit-exact
        // at any thread count.
        for (std::size_t i = 0; i < n; ++i)
          EXPECT_EQ(static_cast<double>(fused[i]), static_cast<double>(ref[i]))
              << "n=" << n << " k=" << k << " i=" << i << " sub=" << subtract;
      }
    }
  }
}

TEST(AxpyMany, BitExactVsChainedAxpyAllPrecisionPairs) {
  check_axpy_many<double, double>();
  check_axpy_many<float, float>();
  check_axpy_many<half, half>();
  check_axpy_many<half, float>();   // F3R level-3: fp16 basis data, fp32 vectors
  check_axpy_many<float, half>();
  check_axpy_many<double, float>();
}

template <class TX, class TY>
void check_scal_copy() {
  using S = acc_t<promote_t<TX, TY>>;
  for (std::size_t n : kSizes) {
    const auto xd = random_vector<double>(n + 1, 46, -1.0, 1.0);
    std::vector<TX> x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = static_cast<TX>(xd[i]);
    const S a = static_cast<S>(1.0 / 3.0);

    std::vector<TY> fused(n, TY{7});
    blas::scal_copy(a, std::span<const TX>(x), std::span<TY>(fused));

    // Reference: scal in place on a TY copy of x — only valid when TX==TY
    // (that is the only way FGMRES uses it); otherwise compute elementwise.
    for (std::size_t i = 0; i < n; ++i) {
      using W = promote_t<promote_t<TX, TY>, S>;
      const TY ref = static_cast<TY>(static_cast<W>(a) * static_cast<W>(x[i]));
      EXPECT_EQ(static_cast<double>(fused[i]), static_cast<double>(ref)) << "n=" << n;
    }
  }
}

TEST(ScalCopy, BitExactAllPrecisionPairs) {
  check_scal_copy<double, double>();
  check_scal_copy<float, float>();
  check_scal_copy<half, half>();
  check_scal_copy<half, float>();
  check_scal_copy<float, half>();
}

template <class T>
void scal_then_copy_case(const std::vector<double>& xd, std::size_t n) {
  std::vector<T> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = static_cast<T>(xd[i]);
  using S = acc_t<T>;
  const S a = static_cast<S>(0.728);
  std::vector<T> fused(n), ref = x;
  blas::scal_copy(a, std::span<const T>(x), std::span<T>(fused));
  blas::scal(a, std::span<T>(ref));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(static_cast<double>(fused[i]), static_cast<double>(ref[i]));
}

TEST(ScalCopy, MatchesScalThenCopy) {
  for (std::size_t n : kSizes) {
    const auto xd = random_vector<double>(n + 1, 47, -2.0, 2.0);
    scal_then_copy_case<double>(xd, n);
    scal_then_copy_case<float>(xd, n);
    scal_then_copy_case<half>(xd, n);
  }
}

// ---------------------------------------------------------------------------
// Panel-layout batched reductions and column updates.
//
// Width sweep: k = 1..4 covers the pinned small groups, 5/7/9/17 the odd
// post-compaction widths whose sub-4 tails previously fell off the
// unrolled dispatch, 8/16 the full groups.  Every width must be
// BIT-identical across layouts (addressing-only change), and per column
// bit-identical to single-threaded blas::dot.
// ---------------------------------------------------------------------------

const std::vector<int> kWidths = {1, 2, 3, 4, 5, 7, 8, 9, 16, 17};

/// Build a row-major panel (k columns of length n, ld = n) from doubles.
template <class T>
std::vector<T> make_panel(std::size_t n, int k, std::uint64_t seed) {
  const auto d =
      random_vector<double>(n * static_cast<std::size_t>(k) + 1, seed, -1.0, 1.0);
  std::vector<T> p(n * static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < p.size(); ++i) p[i] = static_cast<T>(d[i]);
  return p;
}

/// Row-major panel -> interleaved (colmajor, ld = k) copy.
template <class T>
std::vector<T> interleaved(const std::vector<T>& rm, std::size_t n, int k) {
  std::vector<T> cm(rm.size());
  panel_copy(rm.data(), static_cast<std::ptrdiff_t>(n), PanelLayout::kRowMajor,
             cm.data(), k, PanelLayout::kColMajor, k,
             static_cast<std::ptrdiff_t>(n));
  return cm;
}

template <class TX, class TY>
void check_dot_cols() {
  using S = acc_t<promote_t<TX, TY>>;
  for (std::size_t n : kSizes) {
    for (int k : kWidths) {
      const auto x = make_panel<TX>(n, k, 60);
      const auto y = make_panel<TY>(n, k, 61);
      const auto ldn = static_cast<std::ptrdiff_t>(n);
      const auto kk = static_cast<std::size_t>(k);

      std::vector<S> rm(kk, S{99});
      blas::dot_cols(x.data(), ldn, y.data(), ldn, k, n, rm.data());
      for (int j = 0; j < k; ++j) {
        const auto ref = blas::dot(
            std::span<const TX>(x.data() + static_cast<std::size_t>(j) * n, n),
            std::span<const TY>(y.data() + static_cast<std::size_t>(j) * n, n));
        // Identical accumulation order at one thread; reassociation bound
        // when blas::dot parallelizes (dot_cols itself is serial).
        const double acc_eps = std::is_same_v<S, double> ? 1e-15 : 1e-6;
        const double tol = num_threads() == 1
                               ? 0.0
                               : acc_eps * static_cast<double>(n + 1) *
                                     std::max(1.0, std::abs(static_cast<double>(ref)));
        EXPECT_NEAR(static_cast<double>(rm[j]), static_cast<double>(ref), tol)
            << "n=" << n << " k=" << k << " j=" << j;
      }

      // All four layout combinations: bit-identical to the row-major run.
      const auto xcm = interleaved(x, n, k);
      const auto ycm = interleaved(y, n, k);
      const std::ptrdiff_t ldk = k;
      struct Combo {
        const TX* x;
        std::ptrdiff_t ldx;
        PanelLayout lx;
        const TY* y;
        std::ptrdiff_t ldy;
        PanelLayout ly;
      };
      const Combo combos[] = {
          {xcm.data(), ldk, PanelLayout::kColMajor, ycm.data(), ldk, PanelLayout::kColMajor},
          {xcm.data(), ldk, PanelLayout::kColMajor, y.data(), ldn, PanelLayout::kRowMajor},
          {x.data(), ldn, PanelLayout::kRowMajor, ycm.data(), ldk, PanelLayout::kColMajor},
      };
      for (const auto& cb : combos) {
        std::vector<S> out(kk, S{-1});
        blas::dot_cols(cb.x, cb.ldx, cb.y, cb.ldy, k, n, out.data(), nullptr, cb.lx,
                       cb.ly);
        for (int j = 0; j < k; ++j)
          EXPECT_EQ(static_cast<double>(out[j]), static_cast<double>(rm[j]))
              << "n=" << n << " k=" << k << " j=" << j << " lx="
              << panel_layout_name(cb.lx) << " ly=" << panel_layout_name(cb.ly);
      }

      // Mask: odd columns inactive — their out slots must stay untouched,
      // active ones must equal the unmasked run exactly.
      std::vector<unsigned char> active(kk);
      for (int j = 0; j < k; ++j) active[j] = (j % 2 == 0) ? 1 : 0;
      std::vector<S> masked(kk, S{-7});
      blas::dot_cols(xcm.data(), ldk, ycm.data(), ldk, k, n, masked.data(),
                     active.data(), PanelLayout::kColMajor, PanelLayout::kColMajor);
      for (int j = 0; j < k; ++j) {
        if (active[j])
          EXPECT_EQ(static_cast<double>(masked[j]), static_cast<double>(rm[j]));
        else
          EXPECT_EQ(static_cast<double>(masked[j]), static_cast<double>(S{-7}));
      }
    }
  }
}

TEST(DotCols, WidthSweepBitIdenticalAcrossLayouts) {
  check_dot_cols<double, double>();
  check_dot_cols<float, float>();
  check_dot_cols<half, half>();
  check_dot_cols<half, float>();
  check_dot_cols<float, half>();
  check_dot_cols<double, float>();
}

template <class T>
void check_nrm2_cols() {
  using S = acc_t<T>;
  for (std::size_t n : kSizes) {
    for (int k : kWidths) {
      const auto x = make_panel<T>(n, k, 62);
      const auto kk = static_cast<std::size_t>(k);
      std::vector<S> rm(kk, S{99});
      blas::nrm2_cols(x.data(), static_cast<std::ptrdiff_t>(n), k, n, rm.data());
      for (int j = 0; j < k; ++j) {
        const auto ref = blas::nrm2(
            std::span<const T>(x.data() + static_cast<std::size_t>(j) * n, n));
        const double acc_eps = std::is_same_v<S, double> ? 1e-15 : 1e-6;
        const double tol = num_threads() == 1
                               ? 0.0
                               : acc_eps * static_cast<double>(n + 1) *
                                     std::max(1.0, static_cast<double>(ref));
        EXPECT_NEAR(static_cast<double>(rm[j]), static_cast<double>(ref), tol)
            << "n=" << n << " k=" << k << " j=" << j;
      }
      const auto xcm = interleaved(x, n, k);
      std::vector<S> cm(kk, S{-1});
      blas::nrm2_cols(xcm.data(), k, k, n, cm.data(), nullptr, PanelLayout::kColMajor);
      for (int j = 0; j < k; ++j)
        EXPECT_EQ(static_cast<double>(cm[j]), static_cast<double>(rm[j]))
            << "n=" << n << " k=" << k << " j=" << j;
    }
  }
}

TEST(Nrm2Cols, WidthSweepBitIdenticalAcrossLayouts) {
  check_nrm2_cols<double>();
  check_nrm2_cols<float>();
  check_nrm2_cols<half>();
}

template <class TX, class TY>
void check_axpy_cols() {
  using S = acc_t<promote_t<TX, TY>>;
  for (std::size_t n : kSizes) {
    for (int k : kWidths) {
      const auto x = make_panel<TX>(n, k, 63);
      const auto y0 = make_panel<TY>(n, k, 64);
      const auto ldn = static_cast<std::ptrdiff_t>(n);
      std::vector<S> alpha(static_cast<std::size_t>(k));
      for (int j = 0; j < k; ++j) alpha[j] = static_cast<S>(0.1 * (j + 1));

      // Row-major fused vs chained blas::axpy: element-local, bit-exact.
      std::vector<TY> fused = y0, ref = y0;
      blas::axpy_cols(alpha.data(), x.data(), ldn, fused.data(), ldn, k, n);
      for (int j = 0; j < k; ++j)
        blas::axpy(alpha[j],
                   std::span<const TX>(x.data() + static_cast<std::size_t>(j) * n, n),
                   std::span<TY>(ref.data() + static_cast<std::size_t>(j) * n, n));
      for (std::size_t i = 0; i < fused.size(); ++i)
        ASSERT_EQ(static_cast<double>(fused[i]), static_cast<double>(ref[i]))
            << "n=" << n << " k=" << k << " i=" << i;

      // Interleaved x and y: bit-identical to the row-major result.
      const auto xcm = interleaved(x, n, k);
      auto ycm = interleaved(y0, n, k);
      blas::axpy_cols(alpha.data(), xcm.data(), k, ycm.data(), k, k, n, nullptr,
                      nullptr, PanelLayout::kColMajor, PanelLayout::kColMajor);
      std::vector<TY> back(ycm.size());
      panel_copy(ycm.data(), k, PanelLayout::kColMajor, back.data(), ldn,
                 PanelLayout::kRowMajor, k, ldn);
      for (std::size_t i = 0; i < back.size(); ++i)
        ASSERT_EQ(static_cast<double>(back[i]), static_cast<double>(fused[i]))
            << "n=" << n << " k=" << k << " i=" << i;

      // Interleaved x scattering into row-major y through a compaction map
      // (the compact solvers' x-update shape): columns update ymap[c].
      if (k >= 3 && n > 0) {
        std::vector<int> ymap(static_cast<std::size_t>(k));
        for (int j = 0; j < k; ++j) ymap[j] = (j + 2) % k;  // a permutation
        std::vector<TY> ys = y0, yr = y0;
        blas::axpy_cols(alpha.data(), xcm.data(), k, ys.data(), ldn, k, n, nullptr,
                        ymap.data(), PanelLayout::kColMajor, PanelLayout::kRowMajor);
        for (int j = 0; j < k; ++j)
          blas::axpy(alpha[j],
                     std::span<const TX>(x.data() + static_cast<std::size_t>(j) * n, n),
                     std::span<TY>(yr.data() +
                                       static_cast<std::size_t>(ymap[j]) * n, n));
        for (std::size_t i = 0; i < ys.size(); ++i)
          ASSERT_EQ(static_cast<double>(ys[i]), static_cast<double>(yr[i]))
              << "n=" << n << " k=" << k << " i=" << i;
      }
    }
  }
}

TEST(AxpyCols, WidthSweepBitIdenticalAcrossLayoutsAndMaps) {
  check_axpy_cols<double, double>();
  check_axpy_cols<float, float>();
  check_axpy_cols<half, half>();
  check_axpy_cols<half, float>();
}

template <class T>
void check_axpby_cols() {
  using S = acc_t<T>;
  for (std::size_t n : kSizes) {
    for (int k : kWidths) {
      const auto x = make_panel<T>(n, k, 65);
      const auto y0 = make_panel<T>(n, k, 66);
      const auto ldn = static_cast<std::ptrdiff_t>(n);
      std::vector<S> alpha(static_cast<std::size_t>(k)), beta(static_cast<std::size_t>(k));
      for (int j = 0; j < k; ++j) {
        alpha[j] = static_cast<S>(1.0);
        beta[j] = static_cast<S>(0.25 * (j + 1));
      }
      std::vector<T> rm = y0;
      blas::axpby_cols(alpha.data(), x.data(), ldn, beta.data(), rm.data(), ldn, k, n);

      auto ycm = interleaved(y0, n, k);
      const auto xcm = interleaved(x, n, k);
      blas::axpby_cols(alpha.data(), xcm.data(), k, beta.data(), ycm.data(), k, k, n,
                       nullptr, PanelLayout::kColMajor, PanelLayout::kColMajor);
      std::vector<T> back(ycm.size());
      panel_copy(ycm.data(), k, PanelLayout::kColMajor, back.data(), ldn,
                 PanelLayout::kRowMajor, k, ldn);
      for (std::size_t i = 0; i < back.size(); ++i)
        ASSERT_EQ(static_cast<double>(back[i]), static_cast<double>(rm[i]))
            << "n=" << n << " k=" << k << " i=" << i;
    }
  }
}

TEST(AxpbyCols, BitIdenticalAcrossLayouts) {
  check_axpby_cols<double>();
  check_axpby_cols<float>();
  check_axpby_cols<half>();
}

// ---------------------------------------------------------------------------
// Regression: contiguous-basis FGMRES ≡ the seed implementation.
//
// SeedFgmres below is a line-for-line copy of the pre-refactor solver
// (vector-of-vectors bases, unfused blas1 CGS).  The fused solver must
// produce identical iteration counts and (at one thread) identical
// residual estimates and solutions on the fixture problems.
// ---------------------------------------------------------------------------

template <class VT>
struct SeedFgmres {
  using S = acc_t<VT>;
  struct Stats {
    int iters = 0;
    double residual_est = 0.0;
    bool reached_target = false;
  };

  SeedFgmres(Operator<VT>& a, Preconditioner<VT>& m, int mm) : a_(&a), m_(&m), m_dim_(mm) {
    const std::size_t n = static_cast<std::size_t>(a.size());
    v_.assign(static_cast<std::size_t>(mm) + 1, std::vector<VT>(n));
    z_.assign(static_cast<std::size_t>(mm), std::vector<VT>(n));
    w_.resize(n);
    h_.assign(static_cast<std::size_t>((mm + 1) * mm), S{0});
    g_.assign(static_cast<std::size_t>(mm) + 1, S{0});
    cs_.assign(static_cast<std::size_t>(mm), S{0});
    sn_.assign(static_cast<std::size_t>(mm), S{0});
    y_.assign(static_cast<std::size_t>(mm), S{0});
    hcol_.assign(static_cast<std::size_t>(mm) + 1, S{0});
  }

  Stats run(std::span<const VT> b, std::span<VT> x, double abs_target, bool x_nonzero) {
    const auto n = b.size();
    Stats stats;
    if (x_nonzero) {
      a_->residual(b, std::span<const VT>(x.data(), n), std::span<VT>(v_[0]));
    } else {
      blas::copy(b, std::span<VT>(v_[0]));
    }
    const S beta = blas::nrm2(std::span<const VT>(v_[0]));
    if (!(static_cast<double>(beta) > 0.0) ||
        !std::isfinite(static_cast<double>(beta))) {
      stats.residual_est = static_cast<double>(beta);
      stats.reached_target = static_cast<double>(beta) <= abs_target;
      return stats;
    }
    blas::scal(S{1} / beta, std::span<VT>(v_[0]));
    std::fill(g_.begin(), g_.end(), S{0});
    g_[0] = beta;

    const int m = m_dim_;
    int j = 0;
    for (; j < m; ++j) {
      m_->apply(std::span<const VT>(v_[j]), std::span<VT>(z_[j]));
      a_->apply(std::span<const VT>(z_[j]), std::span<VT>(w_));
      for (int i = 0; i <= j; ++i)
        hcol_[i] = blas::dot(std::span<const VT>(v_[i]), std::span<const VT>(w_));
      for (int i = 0; i <= j; ++i)
        blas::axpy(-hcol_[i], std::span<const VT>(v_[i]), std::span<VT>(w_));
      S hj1 = blas::nrm2(std::span<const VT>(w_));
      for (int i = 0; i < j; ++i) {
        const S t = cs_[i] * hcol_[i] + sn_[i] * hcol_[i + 1];
        hcol_[i + 1] = -sn_[i] * hcol_[i] + cs_[i] * hcol_[i + 1];
        hcol_[i] = t;
      }
      const S denom = std::sqrt(hcol_[j] * hcol_[j] + hj1 * hj1);
      if (static_cast<double>(denom) > 0.0 &&
          std::isfinite(static_cast<double>(denom))) {
        cs_[j] = hcol_[j] / denom;
        sn_[j] = hj1 / denom;
      } else {
        cs_[j] = S{1};
        sn_[j] = S{0};
      }
      hcol_[j] = cs_[j] * hcol_[j] + sn_[j] * hj1;
      g_[j + 1] = -sn_[j] * g_[j];
      g_[j] = cs_[j] * g_[j];
      for (int i = 0; i <= j; ++i) h_[col_major(i, j)] = hcol_[i];

      const double res = std::abs(static_cast<double>(g_[j + 1]));
      const bool breakdown =
          !(static_cast<double>(hj1) > 1e-14 * static_cast<double>(beta));
      if (breakdown || (abs_target > 0.0 && res <= abs_target)) {
        stats.reached_target = res <= abs_target || breakdown;
        ++j;
        break;
      }
      blas::scal(S{1} / hj1, std::span<VT>(w_));
      blas::copy(std::span<const VT>(w_), std::span<VT>(v_[j + 1]));
    }
    stats.iters = std::min(j, m);
    stats.residual_est = std::abs(static_cast<double>(g_[std::min(j, m)]));

    const int k = stats.iters;
    for (int i = k - 1; i >= 0; --i) {
      S s = g_[i];
      for (int l = i + 1; l < k; ++l) s -= h_[col_major(i, l)] * y_[l];
      const S hii = h_[col_major(i, i)];
      y_[i] = (hii != S{0}) ? s / hii : S{0};
    }
    for (int i = 0; i < k; ++i) blas::axpy(y_[i], std::span<const VT>(z_[i]), x);
    return stats;
  }

 private:
  [[nodiscard]] std::size_t col_major(int i, int j) const {
    return static_cast<std::size_t>(j) * (static_cast<std::size_t>(m_dim_) + 1) +
           static_cast<std::size_t>(i);
  }
  Operator<VT>* a_;
  Preconditioner<VT>* m_;
  int m_dim_;
  std::vector<std::vector<VT>> v_, z_;
  std::vector<VT> w_;
  std::vector<S> h_, g_, cs_, sn_, y_, hcol_;
};

template <class VT, class MT>
void fgmres_regression(const CsrMatrix<double>& a64, int m, double rtol,
                       std::uint64_t seed) {
  const auto a = cast_matrix<MT>(a64);
  CsrOperator<MT, VT> op_f(a), op_r(a);
  IdentityPrecond<VT> prec_f(a.nrows), prec_r(a.nrows);

  const auto bd = random_vector<double>(a.nrows, seed, 0.0, 1.0);
  std::vector<VT> b(bd.size());
  for (std::size_t i = 0; i < bd.size(); ++i) b[i] = static_cast<VT>(bd[i]);
  const double target = rtol * static_cast<double>(blas::nrm2(std::span<const VT>(b)));

  std::vector<VT> xf(b.size(), VT{0}), xr(b.size(), VT{0});
  FgmresSolver<VT> fused(op_f, prec_f, {.m = m});
  SeedFgmres<VT> ref(op_r, prec_r, m);
  const auto sf = fused.run(std::span<const VT>(b), std::span<VT>(xf), target, false);
  const auto sr = ref.run(std::span<const VT>(b), std::span<VT>(xr), target, false);

  EXPECT_EQ(sf.iters, sr.iters);
  EXPECT_EQ(sf.reached_target, sr.reached_target);
  if (num_threads() == 1) {
    EXPECT_EQ(sf.residual_est, sr.residual_est);
    for (std::size_t i = 0; i < xf.size(); ++i)
      EXPECT_EQ(static_cast<double>(xf[i]), static_cast<double>(xr[i])) << "i=" << i;
  } else {
    EXPECT_NEAR(sf.residual_est, sr.residual_est,
                1e-6 * (1.0 + std::abs(sr.residual_est)));
  }
}

TEST(FgmresFusedRegression, SpdLaplaceFp64) {
  fgmres_regression<double, double>(test::scaled_laplace2d(12, 12), 60, 1e-10, 2);
}

TEST(FgmresFusedRegression, NonsymmetricConvdiffFp64) {
  fgmres_regression<double, double>(test::scaled_convdiff2d(10, 20.0), 80, 1e-9, 3);
}

TEST(FgmresFusedRegression, Hpcg27PointFp64) {
  fgmres_regression<double, double>(test::scaled_hpcg(3), 40, 1e-8, 4);
}

TEST(FgmresFusedRegression, LaplaceFp32) {
  fgmres_regression<float, float>(test::scaled_laplace2d(10, 10), 50, 1e-5, 5);
}

TEST(FgmresFusedRegression, Fp32SolverOnFp16Matrix) {
  // The F3R level-3 configuration: fp16-stored matrix, fp32 Arnoldi data.
  fgmres_regression<float, half>(test::scaled_laplace2d(10, 10), 40, 1e-3, 6);
}

TEST(FgmresFusedRegression, PureFp16) {
  fgmres_regression<half, half>(test::scaled_laplace2d(8, 8), 20, 1e-2, 7);
}

}  // namespace
}  // namespace nk
