// Tests for the CLI option parser used by benches and examples.
#include <gtest/gtest.h>

#include "base/options.hpp"

namespace nk {
namespace {

Options parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> keep;
  keep = std::move(args);
  argv.push_back(const_cast<char*>("prog"));
  for (auto& s : keep) argv.push_back(const_cast<char*>(s.c_str()));
  return Options(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, KeyEqualsValue) {
  auto o = parse({"--n=42", "--name=hpcg"});
  EXPECT_EQ(o.get_int("n", 0), 42);
  EXPECT_EQ(o.get("name", ""), "hpcg");
}

TEST(Options, KeySpaceValue) {
  auto o = parse({"--n", "17"});
  EXPECT_EQ(o.get_int("n", 0), 17);
}

TEST(Options, BareFlagIsTrue) {
  auto o = parse({"--verbose"});
  EXPECT_TRUE(o.get_bool("verbose", false));
  EXPECT_FALSE(o.get_bool("quiet", false));
}

TEST(Options, Defaults) {
  auto o = parse({});
  EXPECT_EQ(o.get_int("missing", -3), -3);
  EXPECT_DOUBLE_EQ(o.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(o.get("missing", "d"), "d");
  EXPECT_FALSE(o.has("missing"));
}

TEST(Options, DoubleParsing) {
  auto o = parse({"--rtol=1e-8"});
  EXPECT_DOUBLE_EQ(o.get_double("rtol", 0.0), 1e-8);
}

TEST(Options, BoolSpellings) {
  EXPECT_TRUE(parse({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=1"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=0"}).get_bool("x", true));
}

TEST(Options, IntList) {
  auto o = parse({"--sizes=4,8,16"});
  EXPECT_EQ(o.get_int_list("sizes", {}), (std::vector<int>{4, 8, 16}));
  EXPECT_EQ(o.get_int_list("missing", {1, 2}), (std::vector<int>{1, 2}));
}

TEST(Options, DoubleList) {
  auto o = parse({"--w=0.7,1.0,1.3"});
  EXPECT_EQ(o.get_double_list("w", {}), (std::vector<double>{0.7, 1.0, 1.3}));
}

TEST(Options, StringList) {
  auto o = parse({"--m=a,b,c"});
  EXPECT_EQ(o.get_list("m", {}), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Options, Positional) {
  auto o = parse({"file.mtx", "--n=2", "other"});
  ASSERT_EQ(o.positional().size(), 2u);
  EXPECT_EQ(o.positional()[0], "file.mtx");
  EXPECT_EQ(o.positional()[1], "other");
}

TEST(Options, NegativeNumberIsPositional) {
  auto o = parse({"-3"});
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "-3");
}

TEST(Options, NegativeDoubleIsPositional) {
  auto o = parse({"-2.5", "file.mtx"});
  ASSERT_EQ(o.positional().size(), 2u);
  EXPECT_EQ(o.positional()[0], "-2.5");
}

TEST(Options, HighBitCharPositionalIsNotUb) {
  // A single-dash token whose second byte is a non-ASCII (negative char)
  // value — e.g. a UTF-8 filename — must not feed a negative value to
  // isdigit (UB); it parses as a flag, not a crash.
  auto o = parse({"-\xc3\xa9tude"});  // "-étude"
  EXPECT_TRUE(o.get_bool("\xc3\xa9tude", false));
  EXPECT_TRUE(o.positional().empty());
}

// ------------------------------------------------------------ malformed
// numerics: every parse failure must exit(2) with a one-line message
// naming the flag and the offending value — not an uncaught exception.

TEST(OptionsDeathTest, MalformedIntExitsWithMessage) {
  EXPECT_EXIT(parse({"--n=abc"}).get_int("n", 0), ::testing::ExitedWithCode(2),
              "invalid integer value 'abc' for --n");
}

TEST(OptionsDeathTest, TrailingGarbageIntRejected) {
  EXPECT_EXIT(parse({"--n=8x"}).get_int("n", 0), ::testing::ExitedWithCode(2),
              "trailing garbage in integer value '8x' for --n");
}

TEST(OptionsDeathTest, OverflowIntRejected) {
  EXPECT_EXIT(parse({"--n=99999999999"}).get_int("n", 0), ::testing::ExitedWithCode(2),
              "out-of-range integer value '99999999999' for --n");
}

TEST(OptionsDeathTest, OverflowInt64Rejected) {
  EXPECT_EXIT(parse({"--n=99999999999999999999"}).get_int64("n", 0),
              ::testing::ExitedWithCode(2), "out-of-range integer");
}

TEST(OptionsDeathTest, EmptyIntValueRejected) {
  EXPECT_EXIT(parse({"--n="}).get_int("n", 0), ::testing::ExitedWithCode(2),
              "invalid integer value '' for --n");
}

TEST(OptionsDeathTest, MalformedDoubleExitsWithMessage) {
  EXPECT_EXIT(parse({"--rtol=fast"}).get_double("rtol", 0.0),
              ::testing::ExitedWithCode(2), "invalid number value 'fast' for --rtol");
}

TEST(OptionsDeathTest, TrailingGarbageDoubleRejected) {
  EXPECT_EXIT(parse({"--rtol=1e-8z"}).get_double("rtol", 0.0),
              ::testing::ExitedWithCode(2), "trailing garbage in number value '1e-8z'");
}

TEST(OptionsDeathTest, OverflowDoubleRejected) {
  EXPECT_EXIT(parse({"--rtol=1e999"}).get_double("rtol", 0.0),
              ::testing::ExitedWithCode(2), "out-of-range number value '1e999'");
}

TEST(OptionsDeathTest, MalformedIntListTokenRejected) {
  EXPECT_EXIT(parse({"--sizes=4,8q,16"}).get_int_list("sizes", {}),
              ::testing::ExitedWithCode(2), "trailing garbage in integer value '8q'");
}

TEST(OptionsDeathTest, MalformedDoubleListTokenRejected) {
  EXPECT_EXIT(parse({"--w=0.7,oops"}).get_double_list("w", {}),
              ::testing::ExitedWithCode(2), "invalid number value 'oops' for --w");
}

TEST(Options, WellFormedNumericsStillParse) {
  auto o = parse({"--a=-42", "--b=+7", "--c=-1.25e-3"});
  EXPECT_EQ(o.get_int("a", 0), -42);
  EXPECT_EQ(o.get_int("b", 0), 7);
  EXPECT_DOUBLE_EQ(o.get_double("c", 0.0), -1.25e-3);
}

TEST(Options, BoolExtraSpellings) {
  EXPECT_TRUE(parse({"--x=on"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x=off"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=no"}).get_bool("x", true));
  EXPECT_TRUE(parse({"--x"}).get_bool("x", false));  // bare flag
}

TEST(Options, CsvListEdgeCases) {
  EXPECT_EQ(parse({"--s=4,,8"}).get_int_list("s", {}), (std::vector<int>{4, 8}));
  EXPECT_EQ(parse({"--s=,"}).get_int_list("s", {-1}), (std::vector<int>{}));
  EXPECT_EQ(parse({"--w=1.5,"}).get_double_list("w", {}), (std::vector<double>{1.5}));
  EXPECT_EQ(parse({"--m=a,,b"}).get_list("m", {}), (std::vector<std::string>{"a", "b"}));
}

TEST(Options, HelpRendering) {
  auto o = parse({"--help"});
  EXPECT_TRUE(o.wants_help());
  o.describe("n", "problem size");
  const std::string h = o.help("prog");
  EXPECT_NE(h.find("--n"), std::string::npos);
  EXPECT_NE(h.find("problem size"), std::string::npos);
}

}  // namespace
}  // namespace nk
