// Tests for the CLI option parser used by benches and examples.
#include <gtest/gtest.h>

#include "base/options.hpp"

namespace nk {
namespace {

Options parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> keep;
  keep = std::move(args);
  argv.push_back(const_cast<char*>("prog"));
  for (auto& s : keep) argv.push_back(const_cast<char*>(s.c_str()));
  return Options(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, KeyEqualsValue) {
  auto o = parse({"--n=42", "--name=hpcg"});
  EXPECT_EQ(o.get_int("n", 0), 42);
  EXPECT_EQ(o.get("name", ""), "hpcg");
}

TEST(Options, KeySpaceValue) {
  auto o = parse({"--n", "17"});
  EXPECT_EQ(o.get_int("n", 0), 17);
}

TEST(Options, BareFlagIsTrue) {
  auto o = parse({"--verbose"});
  EXPECT_TRUE(o.get_bool("verbose", false));
  EXPECT_FALSE(o.get_bool("quiet", false));
}

TEST(Options, Defaults) {
  auto o = parse({});
  EXPECT_EQ(o.get_int("missing", -3), -3);
  EXPECT_DOUBLE_EQ(o.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(o.get("missing", "d"), "d");
  EXPECT_FALSE(o.has("missing"));
}

TEST(Options, DoubleParsing) {
  auto o = parse({"--rtol=1e-8"});
  EXPECT_DOUBLE_EQ(o.get_double("rtol", 0.0), 1e-8);
}

TEST(Options, BoolSpellings) {
  EXPECT_TRUE(parse({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=1"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=0"}).get_bool("x", true));
}

TEST(Options, IntList) {
  auto o = parse({"--sizes=4,8,16"});
  EXPECT_EQ(o.get_int_list("sizes", {}), (std::vector<int>{4, 8, 16}));
  EXPECT_EQ(o.get_int_list("missing", {1, 2}), (std::vector<int>{1, 2}));
}

TEST(Options, DoubleList) {
  auto o = parse({"--w=0.7,1.0,1.3"});
  EXPECT_EQ(o.get_double_list("w", {}), (std::vector<double>{0.7, 1.0, 1.3}));
}

TEST(Options, StringList) {
  auto o = parse({"--m=a,b,c"});
  EXPECT_EQ(o.get_list("m", {}), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Options, Positional) {
  auto o = parse({"file.mtx", "--n=2", "other"});
  ASSERT_EQ(o.positional().size(), 2u);
  EXPECT_EQ(o.positional()[0], "file.mtx");
  EXPECT_EQ(o.positional()[1], "other");
}

TEST(Options, NegativeNumberIsPositional) {
  auto o = parse({"-3"});
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "-3");
}

TEST(Options, HelpRendering) {
  auto o = parse({"--help"});
  EXPECT_TRUE(o.wants_help());
  o.describe("n", "problem size");
  const std::string h = o.help("prog");
  EXPECT_NE(h.find("--n"), std::string::npos);
  EXPECT_NE(h.find("problem size"), std::string::npos);
}

}  // namespace
}  // namespace nk
