// Unit + property tests for the mixed-precision BLAS-1 kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "base/blas1.hpp"
#include "base/rng.hpp"

namespace nk {
namespace {

TEST(Blas1, ConvertDoubleToHalfAndBack) {
  std::vector<double> x = {1.0, -2.5, 0.125, 1000.0, 3.14159};
  std::vector<half> h(x.size());
  std::vector<double> y(x.size());
  blas::convert<double, half>(x, std::span<half>(h));
  blas::convert<half, double>(h, std::span<double>(y));
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(y[i], x[i], std::abs(x[i]) * fp_limits<half>::eps);
}

TEST(Blas1, CopyAndSetZero) {
  std::vector<float> x = {1, 2, 3, 4};
  std::vector<float> y(4, -1);
  blas::copy<float>(x, std::span<float>(y));
  EXPECT_EQ(y, x);
  blas::set_zero<float>(std::span<float>(y));
  for (float v : y) EXPECT_EQ(v, 0.0f);
}

TEST(Blas1, ScalInPlace) {
  std::vector<double> x = {1, -2, 4};
  blas::scal(0.5, std::span<double>(x));
  EXPECT_DOUBLE_EQ(x[0], 0.5);
  EXPECT_DOUBLE_EQ(x[1], -1.0);
  EXPECT_DOUBLE_EQ(x[2], 2.0);
}

TEST(Blas1, AxpyMatchesReference) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {10, 20, 30};
  blas::axpy(2.0, std::span<const double>(x), std::span<double>(y));
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  EXPECT_DOUBLE_EQ(y[2], 36.0);
}

TEST(Blas1, AxpyMixedHalfIntoFloatPromotes) {
  // y (float) += alpha * x (half): computed in float, so small alpha·x
  // contributions below half-eps of y still register.
  std::vector<half> x(4, static_cast<half>(1.0f));
  std::vector<float> y(4, 1.0f);
  blas::axpy(1e-4f, std::span<const half>(x), std::span<float>(y));
  for (float v : y) EXPECT_FLOAT_EQ(v, 1.0001f);
}

TEST(Blas1, AxpbyMatchesReference) {
  std::vector<double> x = {1, 2};
  std::vector<double> y = {3, 4};
  blas::axpby(2.0, std::span<const double>(x), -1.0, std::span<double>(y));
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
}

TEST(Blas1, SubElementwise) {
  std::vector<double> x = {5, 6}, y = {1, 8};
  std::vector<double> z(2);
  blas::sub(std::span<const double>(x), std::span<const double>(y), std::span<double>(z));
  EXPECT_DOUBLE_EQ(z[0], 4.0);
  EXPECT_DOUBLE_EQ(z[1], -2.0);
}

TEST(Blas1, DotMatchesReference) {
  std::vector<double> x = {1, 2, 3}, y = {4, 5, 6};
  EXPECT_DOUBLE_EQ(blas::dot(std::span<const double>(x), std::span<const double>(y)), 32.0);
}

TEST(Blas1, DotOverHalfAccumulatesInFloat) {
  // 4096 terms of 0.01 * 1.0: naive fp16 accumulation would saturate at
  // coarse resolution; fp32 accumulation keeps ~7 digits.
  const std::size_t n = 4096;
  std::vector<half> x(n, static_cast<half>(0.01f));
  std::vector<half> y(n, static_cast<half>(1.0f));
  const float s = blas::dot(std::span<const half>(x), std::span<const half>(y));
  const float exact = static_cast<float>(n) * round_to_half(0.01f);
  EXPECT_NEAR(s, exact, 0.05f);
  static_assert(std::is_same_v<decltype(blas::dot(std::span<const half>(x),
                                                  std::span<const half>(y))),
                               float>);
}

TEST(Blas1, Nrm2MatchesReference) {
  std::vector<double> x = {3, 4};
  EXPECT_DOUBLE_EQ(blas::nrm2(std::span<const double>(x)), 5.0);
}

TEST(Blas1, NrmInf) {
  std::vector<double> x = {1, -7, 3};
  EXPECT_DOUBLE_EQ(blas::nrm_inf(std::span<const double>(x)), 7.0);
}

TEST(Blas1, CountNonfinite) {
  std::vector<float> x = {1.0f, INFINITY, -INFINITY, NAN, 2.0f};
  EXPECT_EQ(blas::count_nonfinite(std::span<const float>(x)), 3u);
  std::vector<half> h(3, static_cast<half>(1.0f));
  EXPECT_EQ(blas::count_nonfinite(std::span<const half>(h)), 0u);
  h[1] = static_cast<half>(1e6f);  // overflows to inf
  EXPECT_EQ(blas::count_nonfinite(std::span<const half>(h)), 1u);
}

TEST(Blas1, ConvertedVectorHelper) {
  std::vector<double> x = {1.5, 2.5};
  auto f = converted<float>(x);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_FLOAT_EQ(f[0], 1.5f);
  EXPECT_FLOAT_EQ(f[1], 2.5f);
}

// Property: for random vectors, kernel results match a long-double
// reference within type-appropriate bounds, across sizes spanning the
// OpenMP chunking boundaries.
class Blas1Property : public ::testing::TestWithParam<int> {};

TEST_P(Blas1Property, DotAxpyNrm2AgainstReference) {
  const int n = GetParam();
  auto x = random_vector<double>(n, 11, -1.0, 1.0);
  auto y = random_vector<double>(n, 22, -1.0, 1.0);

  long double dref = 0.0L, nref = 0.0L;
  for (int i = 0; i < n; ++i) {
    dref += static_cast<long double>(x[i]) * y[i];
    nref += static_cast<long double>(x[i]) * x[i];
  }
  EXPECT_NEAR(blas::dot(std::span<const double>(x), std::span<const double>(y)),
              static_cast<double>(dref), 1e-12 * n);
  EXPECT_NEAR(blas::nrm2(std::span<const double>(x)),
              std::sqrt(static_cast<double>(nref)), 1e-12 * n);

  std::vector<double> z = y;
  blas::axpy(0.37, std::span<const double>(x), std::span<double>(z));
  for (int i = 0; i < n; i += std::max(1, n / 13))
    EXPECT_NEAR(z[i], y[i] + 0.37 * x[i], 1e-14);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Blas1Property, ::testing::Values(1, 2, 7, 64, 1000, 4097));

}  // namespace
}  // namespace nk
