// Tests for the native AVX-512 FP16 kernels (base/simd_fp16.hpp): the
// documented numerical tiers against F16C-style references computed in
// fp32, the issue's edge sizes (plus the 32-lane boundary), and the
// dispatch gate's invariants.  Skipped wholesale on builds/CPUs without
// the feature — the stubs are unreachable there by construction.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "base/blas1.hpp"
#include "base/rng.hpp"
#include "base/simd_fp16.hpp"

namespace nk {
namespace {

// Edge sizes: empty, single, sub-vector, the 32-lane boundary and its
// neighbors, and 4k+3 (vector body + scalar tail).
const std::vector<std::size_t> kSizes = {0, 1, 3, 31, 32, 33, 4099};

// 1 ulp_h at magnitude <= 2, the documented scal/axpy tier (the alphas
// below are exactly representable in binary16, so no alpha-rounding term).
constexpr double kUlpH = 2e-3;

std::vector<half> half_vector(std::size_t n, std::uint64_t seed) {
  const auto d = random_vector<double>(n + 1, seed, -1.0, 1.0);
  std::vector<half> h(n);
  for (std::size_t i = 0; i < n; ++i) h[i] = static_cast<half>(d[i]);
  return h;
}

bool native_available() {
  return simd_fp16::compiled() && simd_fp16::cpu_supported();
}

TEST(SimdFp16, DispatchGateImpliesCompiledAndCpu) {
  // enabled() may additionally require the env opt-in, but must never claim
  // the native kernels on a build/CPU that cannot run them.
  if (simd_fp16::enabled()) {
    EXPECT_TRUE(simd_fp16::compiled());
    EXPECT_TRUE(simd_fp16::cpu_supported());
  }
  EXPECT_EQ(simd_fp16::enabled(), simd_fp16::enabled());  // cached: stable
}

TEST(SimdFp16, ScalWithinOneUlpOfFp32Reference) {
  if (!native_available()) GTEST_SKIP() << "avx512fp16 not available";
  const float a = 0.75f;  // exact in binary16
  for (std::size_t n : kSizes) {
    std::vector<half> x = half_vector(n, 101), ref = x;
    // F16C-path reference: compute in fp32, round once at the store.
    for (std::size_t i = 0; i < n; ++i)
      ref[i] = static_cast<half>(a * static_cast<float>(ref[i]));
    simd_fp16::scal_n(static_cast<half>(a), x.data(), static_cast<std::ptrdiff_t>(n));
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(static_cast<double>(x[i]), static_cast<double>(ref[i]), kUlpH)
          << "n=" << n << " i=" << i;
  }
}

TEST(SimdFp16, AxpyWithinOneUlpOfFp32Reference) {
  if (!native_available()) GTEST_SKIP() << "avx512fp16 not available";
  const float a = 0.125f;  // exact in binary16
  for (std::size_t n : kSizes) {
    const std::vector<half> x = half_vector(n, 102);
    std::vector<half> y = half_vector(n, 103), ref = y;
    for (std::size_t i = 0; i < n; ++i)
      ref[i] = static_cast<half>(a * static_cast<float>(x[i]) +
                                 static_cast<float>(ref[i]));
    simd_fp16::axpy_n(static_cast<half>(a), x.data(), y.data(),
                      static_cast<std::ptrdiff_t>(n));
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(static_cast<double>(y[i]), static_cast<double>(ref[i]), kUlpH)
          << "n=" << n << " i=" << i;
  }
}

TEST(SimdFp16, DotWithinFp32AccumulationBound) {
  if (!native_available()) GTEST_SKIP() << "avx512fp16 not available";
  for (std::size_t n : kSizes) {
    const std::vector<half> x = half_vector(n, 104), y = half_vector(n, 105);
    double ref = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      ref += static_cast<double>(static_cast<float>(x[i])) *
             static_cast<double>(static_cast<float>(y[i]));
    const float got =
        simd_fp16::dot_n(x.data(), y.data(), static_cast<std::ptrdiff_t>(n));
    // Products are exact in fp32; only the 32-lane reassociated fp32 sum
    // differs from the serial double reference.
    EXPECT_NEAR(static_cast<double>(got), ref,
                1e-6 * static_cast<double>(n + 1) * std::max(1.0, std::abs(ref)))
        << "n=" << n;
  }
}

TEST(SimdFp16, ZeroLengthIsNoop) {
  if (!native_available()) GTEST_SKIP() << "avx512fp16 not available";
  half sentinel = static_cast<half>(7.0f);
  simd_fp16::scal_n(static_cast<half>(2.0f), &sentinel, 0);
  EXPECT_EQ(static_cast<float>(sentinel), 7.0f);
  half y = sentinel;
  simd_fp16::axpy_n(static_cast<half>(2.0f), &sentinel, &y, 0);
  EXPECT_EQ(static_cast<float>(y), 7.0f);
  EXPECT_EQ(simd_fp16::dot_n(&sentinel, &y, 0), 0.0f);
}

// The blas:: fp16 entry points must agree with their own dispatch choice:
// whatever enabled() selects, results stay within the native-vs-F16C tier
// of a pure-fp32 reference.  (Catches a dispatch that mixes kernels
// mid-vector or chunks with the wrong boundary.)
TEST(SimdFp16, BlasEntryPointsConsistentUnderDispatch) {
  for (std::size_t n : kSizes) {
    const std::vector<half> x = half_vector(n, 106);
    std::vector<half> y = half_vector(n, 107);
    std::vector<half> yref = y;
    const float a = 0.25f;
    for (std::size_t i = 0; i < n; ++i)
      yref[i] = static_cast<half>(a * static_cast<float>(x[i]) +
                                  static_cast<float>(yref[i]));
    blas::axpy(a, std::span<const half>(x), std::span<half>(y));
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(static_cast<double>(y[i]), static_cast<double>(yref[i]), kUlpH)
          << "n=" << n << " i=" << i;

    double dref = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      dref += static_cast<double>(static_cast<float>(x[i])) *
              static_cast<double>(static_cast<float>(y[i]));
    const float dot = blas::dot(std::span<const half>(x), std::span<const half>(y));
    EXPECT_NEAR(static_cast<double>(dot), dref,
                1e-6 * static_cast<double>(n + 1) * std::max(1.0, std::abs(dref)))
        << "n=" << n;
  }
}

}  // namespace
}  // namespace nk
