// Tests for the runtime-environment report printed by every bench header.
#include <gtest/gtest.h>

#include "base/env.hpp"
#include "base/simd_fp16.hpp"

namespace nk {
namespace {

TEST(Env, ThreadCountIsPositive) {
  EXPECT_GE(num_threads(), 1);
}

TEST(Env, SummaryReportsThreadCount) {
  const std::string s = env_summary();
  EXPECT_NE(s.find("threads=" + std::to_string(num_threads())), std::string::npos);
}

TEST(Env, SummaryReportsF16cConsistentWithPredicate) {
  const std::string s = env_summary();
  EXPECT_NE(s.find(has_f16c() ? "f16c=yes" : "f16c=no"), std::string::npos);
}

TEST(Env, SummaryReportsOpenmpAndBuildFields) {
  const std::string s = env_summary();
  EXPECT_NE(s.find("openmp="), std::string::npos);
  EXPECT_NE(s.find("build="), std::string::npos);
  EXPECT_NE(s.find("avx512fp16="), std::string::npos);
}

TEST(Env, Avx512Fp16FieldTellsTheTruth) {
  // Truth-in-reporting: the field must track the actual kernel dispatch
  // state, not bare CPUID.  "dispatch" iff the native kernels will really
  // run; "compiled" iff present but gated off; "no" otherwise.
  const std::string s = env_summary();
  const char* want = simd_fp16::enabled()      ? "avx512fp16=dispatch"
                     : simd_fp16::compiled()   ? "avx512fp16=compiled"
                                               : "avx512fp16=no";
  EXPECT_NE(s.find(want), std::string::npos) << s;
  EXPECT_EQ(avx512fp16_dispatched(), simd_fp16::enabled());
  EXPECT_EQ(has_avx512fp16_kernels(), simd_fp16::compiled());
}

TEST(Env, Fp16KernelsFieldNamesTheActiveImplementation) {
  const std::string s = env_summary();
  const char* want = simd_fp16::enabled() ? "fp16-kernels=avx512fp16"
                     : has_f16c()         ? "fp16-kernels=f16c"
                                          : "fp16-kernels=scalar";
  EXPECT_NE(s.find(want), std::string::npos) << s;
}

TEST(Env, SummaryIsStableAcrossCalls) {
  // The report describes the build/runtime, not per-call state.
  EXPECT_EQ(env_summary(), env_summary());
}

}  // namespace
}  // namespace nk
