// Tests for the runtime-environment report printed by every bench header.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "base/env.hpp"
#include "base/simd_fp16.hpp"

namespace nk {
namespace {

TEST(Env, ThreadCountIsPositive) {
  EXPECT_GE(num_threads(), 1);
}

TEST(Env, SummaryReportsThreadCount) {
  const std::string s = env_summary();
  EXPECT_NE(s.find("threads=" + std::to_string(num_threads())), std::string::npos);
}

TEST(Env, SummaryReportsF16cConsistentWithPredicate) {
  const std::string s = env_summary();
  EXPECT_NE(s.find(has_f16c() ? "f16c=yes" : "f16c=no"), std::string::npos);
}

TEST(Env, SummaryReportsOpenmpAndBuildFields) {
  const std::string s = env_summary();
  EXPECT_NE(s.find("openmp="), std::string::npos);
  EXPECT_NE(s.find("build="), std::string::npos);
  EXPECT_NE(s.find("avx512fp16="), std::string::npos);
}

TEST(Env, Avx512Fp16FieldTellsTheTruth) {
  // Truth-in-reporting: the field must track the actual kernel dispatch
  // state, not bare CPUID.  "dispatch" iff the native kernels will really
  // run; "compiled" iff present but gated off; "no" otherwise.
  const std::string s = env_summary();
  const char* want = simd_fp16::enabled()      ? "avx512fp16=dispatch"
                     : simd_fp16::compiled()   ? "avx512fp16=compiled"
                                               : "avx512fp16=no";
  EXPECT_NE(s.find(want), std::string::npos) << s;
  EXPECT_EQ(avx512fp16_dispatched(), simd_fp16::enabled());
  EXPECT_EQ(has_avx512fp16_kernels(), simd_fp16::compiled());
}

TEST(Env, Fp16KernelsFieldNamesTheActiveImplementation) {
  const std::string s = env_summary();
  const char* want = simd_fp16::enabled() ? "fp16-kernels=avx512fp16"
                     : has_f16c()         ? "fp16-kernels=f16c"
                                          : "fp16-kernels=scalar";
  EXPECT_NE(s.find(want), std::string::npos) << s;
}

TEST(Env, SummaryIsStableAcrossCalls) {
  // The report describes the build/runtime, not per-call state.
  EXPECT_EQ(env_summary(), env_summary());
}

TEST(Env, SummaryBackendFieldTracksRequestedVsActive) {
  // The backend= field reports the ACTIVE (canonical) backend, with the
  // requested spelling appended whenever it differs — an alias or a value
  // Session will refuse to build with.  Consistency contract: what the
  // summary names must be exactly what resolve-at-build-time would pick.
  ::unsetenv("NKRYLOV_BACKEND");
  EXPECT_NE(env_summary().find("backend=host"), std::string::npos) << env_summary();

  struct Guard {
    ~Guard() { ::unsetenv("NKRYLOV_BACKEND"); }
  } guard;
  ::setenv("NKRYLOV_BACKEND", "serial", 1);
  EXPECT_NE(env_summary().find("backend=serial"), std::string::npos) << env_summary();
  ::setenv("NKRYLOV_BACKEND", "host", 1);
  EXPECT_NE(env_summary().find("backend=host"), std::string::npos) << env_summary();
  // Alias: active host, requested omp — both visible.
  ::setenv("NKRYLOV_BACKEND", "omp", 1);
  EXPECT_NE(env_summary().find("backend=host(requested=omp)"), std::string::npos)
      << env_summary();
  // Invalid: no silent fallback in the report either.
  ::setenv("NKRYLOV_BACKEND", "cuda", 1);
  EXPECT_NE(env_summary().find("backend=invalid(requested=cuda)"), std::string::npos)
      << env_summary();
}

// ---------------------------------------------------------------------------
// Checked env-knob parsers.  env_long/env_flag parse on every call (the
// production call sites add their own one-time caching), so the tests can
// drive them directly through setenv.  Only the RESULT is asserted; the
// one-per-variable warning goes to stderr and is not captured here.
// ---------------------------------------------------------------------------

struct EnvVarGuard {
  std::string name;
  explicit EnvVarGuard(std::string n) : name(std::move(n)) {}
  ~EnvVarGuard() { ::unsetenv(name.c_str()); }
  void set(const char* v) { ::setenv(name.c_str(), v, 1); }
};

TEST(EnvChecked, LongParsesExactValues) {
  EnvVarGuard g("NKRYLOV_TEST_LONG");
  EXPECT_EQ(env_long("NKRYLOV_TEST_LONG", 42, 0), 42);  // unset -> default
  g.set("0");
  EXPECT_EQ(env_long("NKRYLOV_TEST_LONG", 42, 0), 0);
  g.set("123456");
  EXPECT_EQ(env_long("NKRYLOV_TEST_LONG", 42, 0), 123456);
}

TEST(EnvChecked, LongRejectsTrailingGarbage) {
  // The PR 4 checked-parse policy: "4096x" must NOT parse as 4096.
  EnvVarGuard g("NKRYLOV_TEST_LONG");
  g.set("4096x");
  EXPECT_EQ(env_long("NKRYLOV_TEST_LONG", 42, 0), 42);
  g.set("x4096");
  EXPECT_EQ(env_long("NKRYLOV_TEST_LONG", 42, 0), 42);
  g.set("");
  EXPECT_EQ(env_long("NKRYLOV_TEST_LONG", 42, 0), 42);
  g.set("12 34");
  EXPECT_EQ(env_long("NKRYLOV_TEST_LONG", 42, 0), 42);
  g.set("999999999999999999999999999999");  // ERANGE
  EXPECT_EQ(env_long("NKRYLOV_TEST_LONG", 42, 0), 42);
}

TEST(EnvChecked, LongEnforcesMinimum) {
  EnvVarGuard g("NKRYLOV_TEST_LONG");
  g.set("-3");
  EXPECT_EQ(env_long("NKRYLOV_TEST_LONG", 42, 0), 42);   // below min -> default
  EXPECT_EQ(env_long("NKRYLOV_TEST_LONG", 42, -10), -3); // within min -> value
}

TEST(EnvChecked, FlagParsesTheDocumentedSpellings) {
  EnvVarGuard g("NKRYLOV_TEST_FLAG");
  EXPECT_TRUE(env_flag("NKRYLOV_TEST_FLAG", true));    // unset -> default
  EXPECT_FALSE(env_flag("NKRYLOV_TEST_FLAG", false));
  for (const char* v : {"0", "off", "false", "no"}) {
    g.set(v);
    EXPECT_FALSE(env_flag("NKRYLOV_TEST_FLAG", true)) << v;
  }
  for (const char* v : {"1", "on", "true", "yes"}) {
    g.set(v);
    EXPECT_TRUE(env_flag("NKRYLOV_TEST_FLAG", false)) << v;
  }
}

TEST(EnvChecked, FlagFallsBackOnGarbage) {
  // Garbage used to silently count as truthy at the NKRYLOV_FIRST_TOUCH and
  // NKRYLOV_AVX512FP16 sites; now it keeps the site's default.
  EnvVarGuard g("NKRYLOV_TEST_FLAG");
  for (const char* v : {"2", "ON", "tru", "enabled", ""}) {
    g.set(v);
    EXPECT_TRUE(env_flag("NKRYLOV_TEST_FLAG", true)) << v;
    EXPECT_FALSE(env_flag("NKRYLOV_TEST_FLAG", false)) << v;
  }
}

TEST(EnvChecked, TuneProbesKnobParsesAndClamps) {
  EnvVarGuard g("NKRYLOV_TUNE_PROBES");
  EXPECT_EQ(tune_probes_env(), 4);  // unset -> default budget
  g.set("0");
  EXPECT_EQ(tune_probes_env(), 0);  // 0 = model-only, explicitly legal
  g.set("9");
  EXPECT_EQ(tune_probes_env(), 9);
  g.set("-2");
  EXPECT_EQ(tune_probes_env(), 4);  // below minimum -> default, not -2
  g.set("lots");
  EXPECT_EQ(tune_probes_env(), 4);  // garbage -> default
}

TEST(EnvChecked, TuneDbKnobIsAPlainPath) {
  EnvVarGuard g("NKRYLOV_TUNE_DB");
  EXPECT_EQ(tune_db_env(), "");  // unset -> in-memory only
  g.set("/tmp/nkrylov-tune.db");
  EXPECT_EQ(tune_db_env(), "/tmp/nkrylov-tune.db");
}

TEST(EnvChecked, SummaryReportsTunerKnobsTruthfully) {
  // Truth-in-reporting: the summary shows the PARSED values — a malformed
  // NKRYLOV_TUNE_PROBES reports the default it fell back to, and an unset
  // DB path reports "none", never an empty field.
  EnvVarGuard probes("NKRYLOV_TUNE_PROBES");
  EnvVarGuard db("NKRYLOV_TUNE_DB");
  EXPECT_NE(env_summary().find("tune-probes=4"), std::string::npos) << env_summary();
  EXPECT_NE(env_summary().find("tune-db=none"), std::string::npos) << env_summary();
  probes.set("bogus");
  EXPECT_NE(env_summary().find("tune-probes=4"), std::string::npos) << env_summary();
  probes.set("2");
  db.set("/tmp/t.db");
  EXPECT_NE(env_summary().find("tune-probes=2"), std::string::npos) << env_summary();
  EXPECT_NE(env_summary().find("tune-db=/tmp/t.db"), std::string::npos) << env_summary();
}

TEST(EnvChecked, StrReturnsRawValueOrDefault) {
  // env_str is deliberately validation-free: the raw value when set (even
  // empty — a SET-but-empty knob is distinguishable from unset via the
  // default sentinel), the default otherwise.
  EnvVarGuard g("NKRYLOV_TEST_STR");
  EXPECT_EQ(env_str("NKRYLOV_TEST_STR", "fallback"), "fallback");
  g.set("serial");
  EXPECT_EQ(env_str("NKRYLOV_TEST_STR", "fallback"), "serial");
  g.set("");
  EXPECT_EQ(env_str("NKRYLOV_TEST_STR", "fallback"), "");
}

}  // namespace
}  // namespace nk
