// Tests for the runtime-environment report printed by every bench header.
#include <gtest/gtest.h>

#include "base/env.hpp"

namespace nk {
namespace {

TEST(Env, ThreadCountIsPositive) {
  EXPECT_GE(num_threads(), 1);
}

TEST(Env, SummaryReportsThreadCount) {
  const std::string s = env_summary();
  EXPECT_NE(s.find("threads=" + std::to_string(num_threads())), std::string::npos);
}

TEST(Env, SummaryReportsF16cConsistentWithPredicate) {
  const std::string s = env_summary();
  EXPECT_NE(s.find(has_f16c() ? "f16c=yes" : "f16c=no"), std::string::npos);
}

TEST(Env, SummaryReportsOpenmpAndBuildFields) {
  const std::string s = env_summary();
  EXPECT_NE(s.find("openmp="), std::string::npos);
  EXPECT_NE(s.find("build="), std::string::npos);
  EXPECT_NE(s.find("avx512fp16="), std::string::npos);
}

TEST(Env, SummaryIsStableAcrossCalls) {
  // The report describes the build/runtime, not per-call state.
  EXPECT_EQ(env_summary(), env_summary());
}

}  // namespace
}  // namespace nk
