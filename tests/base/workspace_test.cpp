// Tests for SolverWorkspace (base/workspace.hpp): grow-only slab reuse,
// allocation accounting, and typed aliasing across setup rounds.
#include <gtest/gtest.h>

#include <cstdint>

#include "base/half.hpp"
#include "base/workspace.hpp"

namespace nk {
namespace {

TEST(SolverWorkspace, GrowOnlyReuse) {
  SolverWorkspace ws;
  auto a = ws.get<double>("v", 100);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(ws.allocations(), 1u);
  EXPECT_EQ(ws.buffers(), 1u);
  EXPECT_EQ(ws.bytes(), 100 * sizeof(double));

  // Same size: no growth, same backing memory.
  auto b = ws.get<double>("v", 100);
  EXPECT_EQ(ws.allocations(), 1u);
  EXPECT_EQ(b.data(), a.data());

  // Smaller: no growth.
  auto c = ws.get<double>("v", 10);
  EXPECT_EQ(ws.allocations(), 1u);
  EXPECT_EQ(c.size(), 10u);

  // Larger: grows once.
  auto d = ws.get<double>("v", 200);
  EXPECT_EQ(ws.allocations(), 2u);
  EXPECT_EQ(d.size(), 200u);
  EXPECT_EQ(ws.bytes(), 200 * sizeof(double));
}

TEST(SolverWorkspace, DistinctKeysDistinctSlabs) {
  SolverWorkspace ws;
  auto a = ws.get<float>("lvl0.V", 64);
  auto b = ws.get<float>("lvl1.V", 64);
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(ws.buffers(), 2u);
}

TEST(SolverWorkspace, NewBytesAreZeroed) {
  SolverWorkspace ws;
  auto a = ws.get<double>("z", 32);
  for (double v : a) EXPECT_EQ(v, 0.0);
}

TEST(SolverWorkspace, TypeReuseOnSameKey) {
  // A key reused at a different element type (e.g. a bridge rebuilt at a
  // different inner precision) aliases the same slab when it fits.
  SolverWorkspace ws;
  auto f = ws.get<float>("bridge.rin", 16);
  f[0] = 1.0f;
  auto h = ws.get<half>("bridge.rin", 16);  // half the bytes: reuses
  EXPECT_EQ(ws.allocations(), 1u);
  EXPECT_EQ(static_cast<void*>(h.data()), static_cast<void*>(f.data()));
}

TEST(SolverWorkspace, ReleaseDropsEverything) {
  SolverWorkspace ws;
  ws.get<double>("a", 8);
  ws.get<double>("b", 8);
  ws.release();
  EXPECT_EQ(ws.buffers(), 0u);
  EXPECT_EQ(ws.bytes(), 0u);
  EXPECT_EQ(ws.allocations(), 0u);
}

TEST(SolverWorkspace, ZeroLengthGet) {
  SolverWorkspace ws;
  auto a = ws.get<double>("empty", 0);
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(ws.bytes(), 0u);
}

TEST(SolverWorkspace, SlabsAreCacheLineAligned) {
  // The SELL/SpMM SIMD kernels and the F16C bulk converters read solver
  // buffers with 32-byte vector ops; slabs guarantee 64 (one cache line),
  // including across growth reallocations.
  SolverWorkspace ws;
  auto check = [](const void* p) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % SolverWorkspace::kSlabAlign, 0u);
  };
  check(ws.get<double>("a", 1).data());    // odd sizes must not break alignment
  check(ws.get<float>("b", 3).data());
  check(ws.get<half>("c", 7).data());
  check(ws.get<unsigned char>("d", 13).data());
  for (int round = 1; round <= 4; ++round)
    check(ws.get<double>("grow", static_cast<std::size_t>(round) * 37).data());
}

TEST(SolverWorkspace, PanelLayoutDefaultAndSet) {
  // The workspace default is what solvers use when SolverSpec.layout is
  // unset; it must start row-major (the seed behavior) and stick once set.
  SolverWorkspace ws;
  EXPECT_EQ(ws.panel_layout(), PanelLayout::kRowMajor);
  ws.set_panel_layout(PanelLayout::kColMajor);
  EXPECT_EQ(ws.panel_layout(), PanelLayout::kColMajor);
  ws.release();  // releasing slabs does not reset the layout preference
  EXPECT_EQ(ws.panel_layout(), PanelLayout::kColMajor);
}

TEST(SolverWorkspace, LargeSlabsAreZeroedThroughFirstTouch) {
  // Big enough to span many 64 KiB first-touch chunks and engage the
  // parallel path on multi-thread runs; every byte must still be zero.
  SolverWorkspace ws;
  auto a = ws.get<double>("big", 1 << 18);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], 0.0) << i;
  // Growth first-touches only the new tail; content survives, tail is zero.
  for (std::size_t i = 0; i < 64; ++i) a[i] = 1.0;
  auto b = ws.get<double>("big", 1 << 19);
  for (std::size_t i = 0; i < 64; ++i) ASSERT_EQ(b[i], 1.0) << i;
  for (std::size_t i = 64; i < (std::size_t{1} << 18); ++i) ASSERT_EQ(b[i], 0.0) << i;
  for (std::size_t i = std::size_t{1} << 18; i < b.size(); ++i)
    ASSERT_EQ(b[i], 0.0) << i;
}

TEST(SolverWorkspace, GrowthPreservesContentAndZeroesTail) {
  SolverWorkspace ws;
  auto a = ws.get<double>("v", 8);
  for (std::size_t i = 0; i < 8; ++i) a[i] = static_cast<double>(i + 1);
  auto b = ws.get<double>("v", 32);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(b[i], static_cast<double>(i + 1));
  for (std::size_t i = 8; i < 32; ++i) EXPECT_EQ(b[i], 0.0);
  EXPECT_EQ(ws.allocations(), 2u);
}

}  // namespace
}  // namespace nk
