// Unit tests for the half-precision scalar type and precision traits.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "base/half.hpp"

namespace nk {
namespace {

TEST(Half, SizeIsTwoBytes) { EXPECT_EQ(sizeof(half), 2u); }

TEST(Half, ExactSmallIntegers) {
  // binary16 represents integers exactly up to 2048.
  for (int i = -2048; i <= 2048; i += 77) {
    EXPECT_EQ(static_cast<float>(static_cast<half>(static_cast<float>(i))),
              static_cast<float>(i));
  }
}

TEST(Half, EpsilonMatchesBinary16) {
  // eps = 2^-10: 1 + eps is the next representable value after 1.
  const float eps = fp_limits<half>::eps;
  EXPECT_EQ(eps, std::ldexp(1.0f, -10));
  EXPECT_NE(static_cast<float>(static_cast<half>(1.0f + eps)), 1.0f);
  EXPECT_EQ(static_cast<float>(static_cast<half>(1.0f + eps / 4)), 1.0f);
}

TEST(Half, MaxFiniteAndOverflow) {
  EXPECT_EQ(static_cast<float>(static_cast<half>(65504.0f)), 65504.0f);
  EXPECT_TRUE(std::isinf(static_cast<float>(static_cast<half>(65536.0f))));
  EXPECT_TRUE(std::isinf(static_cast<float>(static_cast<half>(-70000.0f))));
  EXPECT_TRUE(overflows_half(65505.0f));
  EXPECT_FALSE(overflows_half(65504.0f));
  EXPECT_TRUE(overflows_half(-65505.0f));
}

TEST(Half, SubnormalRange) {
  // min normal 2^-14; 2^-24 is the smallest subnormal.
  EXPECT_EQ(fp_limits<half>::min_normal, std::ldexp(1.0f, -14));
  const float smallest_sub = std::ldexp(1.0f, -24);
  EXPECT_EQ(static_cast<float>(static_cast<half>(smallest_sub)), smallest_sub);
  EXPECT_EQ(static_cast<float>(static_cast<half>(smallest_sub / 4)), 0.0f);
}

TEST(Half, ArithmeticRoundsEachOperation) {
  // 1 + eps/2 rounds back to 1 in half arithmetic (round-to-nearest-even).
  const half one{1.0f};
  const half heps = static_cast<half>(fp_limits<half>::eps / 2.0f);
  EXPECT_EQ(static_cast<float>(one + heps), 1.0f);
}

TEST(Half, PromotionToFloatInMixedExpressions) {
  const half a = static_cast<half>(1.5f);
  const float b = 0.25f;
  // half ⊕ float computes in float (usual arithmetic conversions).
  static_assert(std::is_same_v<decltype(a * b), float>);
  EXPECT_FLOAT_EQ(a * b, 0.375f);
}

TEST(Half, RoundToHalfHelper) {
  EXPECT_EQ(round_to_half(1.0f), 1.0f);
  // 1.0005 is between 1 and 1+2^-10; rounds to 1.
  EXPECT_EQ(round_to_half(1.0003f), 1.0f);
  EXPECT_NEAR(round_to_half(3.14159f), 3.14159f, 3.14159f * fp_limits<half>::eps);
}

TEST(PrecTraits, PromoteRules) {
  static_assert(std::is_same_v<promote_t<half, half>, half>);
  static_assert(std::is_same_v<promote_t<half, float>, float>);
  static_assert(std::is_same_v<promote_t<float, half>, float>);
  static_assert(std::is_same_v<promote_t<half, double>, double>);
  static_assert(std::is_same_v<promote_t<float, double>, double>);
  static_assert(std::is_same_v<promote_t<double, double>, double>);
  SUCCEED();
}

TEST(PrecTraits, AccumulatorRules) {
  static_assert(std::is_same_v<acc_t<half>, float>);
  static_assert(std::is_same_v<acc_t<float>, float>);
  static_assert(std::is_same_v<acc_t<double>, double>);
  SUCCEED();
}

TEST(PrecTraits, PrecOfAndNames) {
  EXPECT_EQ(prec_of<double>(), Prec::FP64);
  EXPECT_EQ(prec_of<float>(), Prec::FP32);
  EXPECT_EQ(prec_of<half>(), Prec::FP16);
  EXPECT_STREQ(prec_name(Prec::FP64), "fp64");
  EXPECT_STREQ(prec_name(Prec::FP32), "fp32");
  EXPECT_STREQ(prec_name(Prec::FP16), "fp16");
}

TEST(PrecTraits, ParsePrec) {
  EXPECT_EQ(parse_prec("fp64"), Prec::FP64);
  EXPECT_EQ(parse_prec("double"), Prec::FP64);
  EXPECT_EQ(parse_prec("fp32"), Prec::FP32);
  EXPECT_EQ(parse_prec("single"), Prec::FP32);
  EXPECT_EQ(parse_prec("fp16"), Prec::FP16);
  EXPECT_EQ(parse_prec("half"), Prec::FP16);
  EXPECT_THROW(parse_prec("fp8"), std::invalid_argument);
}

TEST(PrecTraits, Bytes) {
  EXPECT_EQ(prec_bytes(Prec::FP64), 8u);
  EXPECT_EQ(prec_bytes(Prec::FP32), 4u);
  EXPECT_EQ(prec_bytes(Prec::FP16), 2u);
}

TEST(PrecTraits, UnitRoundoff) {
  EXPECT_DOUBLE_EQ(unit_roundoff(Prec::FP64), std::ldexp(1.0, -53));
  EXPECT_DOUBLE_EQ(unit_roundoff(Prec::FP32), std::ldexp(1.0, -24));
  EXPECT_DOUBLE_EQ(unit_roundoff(Prec::FP16), std::ldexp(1.0, -11));
}

// Property sweep: half round-trip error is bounded by eps/2 relative.
class HalfRoundTrip : public ::testing::TestWithParam<float> {};

TEST_P(HalfRoundTrip, RelativeErrorBounded) {
  const float x = GetParam();
  const float y = round_to_half(x);
  EXPECT_LE(std::abs(x - y), std::abs(x) * fp_limits<half>::eps * 0.5f + 1e-30f);
}

INSTANTIATE_TEST_SUITE_P(Values, HalfRoundTrip,
                         ::testing::Values(1.0f, -1.0f, 0.1f, 3.14159f, 1000.5f, 6e4f,
                                           -1.7e-3f, 2.44e-4f, 0.999f, 123.456f));

}  // namespace
}  // namespace nk
