// Fault-injection matrix: scheduled NaN/Inf/huge/bit-flip corruption at the
// operator and preconditioner apply sites, across solvers and precisions,
// must surface as the DOCUMENTED SolveStatus values — never a hang, crash,
// or a dishonest "converged".  Also pins the acceptance criterion of the
// resilience layer: a ";fallback=" ladder recovers NaN-poisoned fp16 cases
// to genuine convergence, per column in the batched path.
//
// These tests carry the `fault-injection` CTest label (tests/CMakeLists.txt)
// and are the only callers of register_fault_injection().
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/fault.hpp"
#include "core/session.hpp"
#include "krylov/cg.hpp"
#include "support/problems.hpp"

namespace nk {
namespace {

PreparedProblem sym_problem() {
  return prepare_problem("fault-sym", test::laplace2d(12, 12), true, 1.0, 1.0, 3);
}

PreparedProblem nonsym_problem() {
  return prepare_problem("fault-nonsym", test::scaled_convdiff2d(12, 2.0), false, 1.0,
                         1.0, 3);
}

TEST(FaultSpecParse, RoundTripsAndRejects) {
  const FaultSpec f = FaultSpec::parse("nan@3@fp16");
  EXPECT_EQ(f.kind, FaultSpec::Kind::kNan);
  EXPECT_EQ(f.at, 3);
  ASSERT_TRUE(f.only.has_value());
  EXPECT_EQ(*f.only, Prec::FP16);
  EXPECT_EQ(f.to_string(), "nan@3@fp16");
  EXPECT_EQ(FaultSpec::parse(f.to_string()), f);

  const FaultSpec g = FaultSpec::parse("bitflip@0");
  EXPECT_EQ(g.kind, FaultSpec::Kind::kBitFlip);
  EXPECT_EQ(g.at, 0);
  EXPECT_FALSE(g.only.has_value());
  EXPECT_EQ(g.to_string(), "bitflip@0");

  EXPECT_THROW(FaultSpec::parse("nan"), SpecError);
  EXPECT_THROW(FaultSpec::parse("frob@1"), SpecError);
  EXPECT_THROW(FaultSpec::parse("nan@-1"), SpecError);
  EXPECT_THROW(FaultSpec::parse("nan@x"), SpecError);
  EXPECT_THROW(FaultSpec::parse("nan@1@fp99"), SpecError);
}

TEST(FaultRegistry, TestOnlyKindStaysOutOfTheConformanceCatalog) {
  register_fault_injection();
  register_fault_injection();  // idempotent (last-wins registration)
  ASSERT_NE(registry().precond_info("fault"), nullptr);
  EXPECT_FALSE(registry().precond_info("fault")->conformance);
  for (const auto& kind : registry().conformance_precond_kinds())
    EXPECT_NE(kind, "fault");
  // The schedule is mandatory: a bare "fault" spec is rejected at build.
  const auto p = sym_problem();
  EXPECT_THROW(registry().make_precond(PrecondSpec::parse("fault"), p), SpecError);
}

// The site x kind x solver matrix.  NaN and Inf injections must be
// ATTRIBUTED (kNonFinite with a named site); huge and bit-flip injections
// corrupt the math without a guaranteed non-finite signature, so the
// contract there is a defined terminal status and an honest convergence
// claim within a bounded budget.
TEST(FaultMatrix, PrecondSiteAcrossKindsAndSolvers) {
  register_fault_injection();
  struct SolverCase {
    const char* token;
    bool symmetric;
  };
  const SolverCase solvers[] = {{"cg", true}, {"bicgstab", false}, {"fgmres8", false}};
  const char* kinds[] = {"nan", "inf", "huge", "bitflip"};

  for (const auto& sc : solvers) {
    for (const char* kind : kinds) {
      const auto p = sc.symmetric ? sym_problem() : nonsym_problem();
      const std::string spec = std::string(sc.token) +
                               "/fault;inject=" + kind +
                               "@1;inner=jacobi;max-iters=400;restarts=1";
      Session s(p, SolverSpec::parse(spec));
      const SolveResult r = s.solve();
      SCOPED_TRACE(spec);
      if (std::string(kind) == "nan" || std::string(kind) == "inf") {
        EXPECT_EQ(r.status, SolveStatus::kNonFinite);
        EXPECT_FALSE(r.failure.empty());
        EXPECT_FALSE(r.converged);
      } else if (r.converged) {
        // Huge/bit-flip may be survivable — but only with the true fp64
        // residual backing the claim (the engines' demotion guarantee).
        EXPECT_EQ(r.status, SolveStatus::kConverged);
        EXPECT_LT(r.final_relres, 1e-8 * 1.5);
      } else {
        EXPECT_NE(r.status, SolveStatus::kConverged);
      }
    }
  }
}

TEST(FaultMatrix, OperatorSiteIsAttributedByTheSolverGuards) {
  const auto a = test::scaled_laplace2d(12, 12);
  const auto prob = test::make_problem(a, 5);
  FaultyOperator<double> op(std::make_unique<CsrOperator<double, double>>(a),
                            FaultSpec::parse("nan@2"));
  IdentityPrecond<double> id(a.nrows);
  CgSolver<double>::Config cfg;
  cfg.rtol = 1e-10;
  cfg.max_iters = 500;
  CgSolver<double> cg(op, id, cfg);
  std::vector<double> x(prob.x);
  const SolveResult r = cg.solve(std::span<const double>(prob.b), std::span<double>(x));
  EXPECT_EQ(r.status, SolveStatus::kNonFinite);
  EXPECT_FALSE(r.failure.empty());
  EXPECT_LT(r.iterations, 10);  // the guard fires at the poisoned apply, not at budget
}

TEST(FaultMatrix, PrecisionFilteredFaultOnlyFiresAtItsStorage) {
  register_fault_injection();
  const auto p = sym_problem();
  // The schedule names fp16 storage, but this solver mints M at fp64 —
  // the fault must never fire and the solve must be clean.
  Session s(p, SolverSpec::parse("cg/fault;inject=nan@0@fp16;inner=bj"));
  const SolveResult r = s.solve();
  EXPECT_EQ(r.status, SolveStatus::kConverged);
  EXPECT_TRUE(r.attempts.empty());
}

// THE acceptance case: an fp16-storage NaN fault kills the first attempt;
// ";fallback=fp32,fp64" escalates, re-mints M above the fault's precision,
// and recovers to true convergence with the failed attempt on record.
TEST(FaultMatrix, FallbackRecoversNanPoisonedFp16ToConvergence) {
  register_fault_injection();
  const auto p = sym_problem();
  Session s(p, SolverSpec::parse(
                   "cg@fp16/fault;inject=nan@2@fp16;inner=bj;fallback=fp32,fp64"));
  const SolveResult r = s.solve();
  EXPECT_EQ(r.status, SolveStatus::kConverged);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.final_relres, 1e-8 * 1.5);
  ASSERT_GE(r.attempts.size(), 1u);
  EXPECT_NE(r.attempts[0].find("non_finite"), std::string::npos) << r.attempts[0];
  // The session's own engine is restored: a second solve repeats the
  // ladder rather than silently staying escalated.
  const SolveResult again = s.solve();
  EXPECT_EQ(again.status, SolveStatus::kConverged);
  ASSERT_GE(again.attempts.size(), 1u);
}

TEST(FaultMatrix, BatchedColumnsRecoverIndividuallyUnderFallback) {
  register_fault_injection();
  const auto p = sym_problem();
  Session s(p, SolverSpec::parse(
                   "cg@fp16/fault;inject=nan@1@fp16;inner=bj;fallback=fp64"));
  const int k = 3;
  const auto B = s.make_rhs_batch(k);
  std::vector<double> X(B.size(), 0.0);
  const auto rs = s.solve_many(B, X, k);
  ASSERT_EQ(rs.size(), static_cast<std::size_t>(k));
  // Every column ends converged, and ONLY the poisoned column pays for a
  // retry: its attempt trail records the fp16 failure, while the clean
  // columns ride through the batched pass untouched (no trail).  That is
  // the per-column recovery contract — corruption in one column neither
  // freezes the wave nor forces the healthy columns through the ladder.
  std::size_t retried = 0;
  for (int c = 0; c < k; ++c) {
    SCOPED_TRACE(c);
    EXPECT_EQ(rs[c].status, SolveStatus::kConverged);
    if (!rs[c].attempts.empty()) {
      ++retried;
      EXPECT_NE(rs[c].attempts[0].find("non_finite"), std::string::npos)
          << rs[c].attempts[0];
    }
  }
  EXPECT_GE(retried, 1u);  // the fault genuinely fired somewhere
}

TEST(FaultMatrix, FallbackExhaustionReportsTheLastAttemptWithTheFullTrail) {
  register_fault_injection();
  const auto p = sym_problem();
  // The fault fires at EVERY storage precision, so the whole ladder fails.
  Session s(p, SolverSpec::parse(
                   "cg@fp16/fault;inject=nan@0;inner=bj;fallback=fp32,fp64"));
  const SolveResult r = s.solve();
  EXPECT_EQ(r.status, SolveStatus::kNonFinite);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.attempts.size(), 2u);  // fp16 and fp32 attempts, fp64 is `r` itself
}

}  // namespace
}  // namespace nk
