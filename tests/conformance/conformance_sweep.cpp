// Conformance sweep — the catalog-wide behavioral pin behind
// `ctest -L conformance`.
//
// Runs the FULL Table-2 stand-in catalog through the solver grid
//
//     standin_catalog() × {CG | BiCGStab, FGMRES(64), F3R}
//                       × {jacobi, bj-ilu0/ic0, sd-ainv}
//                       × {csr, sell}
//                       × {fp64, fp32, fp16}
//
// at the catalog's "mini" scale (negative scale: same structure classes,
// test-sized grids), writes one JSON row per cell — converged, outer
// iterations, true final relative residual — and compares against a
// committed baseline table.  The flat solvers' precision axis is the
// preconditioner storage precision (the paper's fp16-CG etc.); F3R's is
// the lowest precision of the nesting.
//
// Regression policy (exit code 1, listing every offender):
//   * a cell that converged in the baseline no longer converges
//     (guarded: baseline cells that only just squeezed under the
//     iteration cap are reported but not failed — they are cap-noise);
//   * a converged cell needs > 20% + 5 more iterations than baseline;
//   * with the full grid selected, a baseline cell that no longer runs
//     (coverage loss).
// Improvements (new convergence, fewer iterations) are reported, never
// failed — refresh the baseline with --write-baseline to adopt them.
//
// Flags:
//   --scale=-4          catalog scale (negative = mini; see make_problem)
//   --max-iters=800     flat-solver iteration cap
//   --rtol=1e-8         convergence tolerance
//   --matrices=a,b|all  subset filter (default all; subset skips the
//                       coverage-loss check)
//   --baseline=path     committed table to compare against ("" = skip)
//   --out=path          where to write this run's rows ("" = skip)
//   --write-baseline=path  write rows in baseline format and exit 0
//   --backend=name      append ";backend=name" to every cell spec and run
//                       the whole grid there (host|omp|serial; "" = spec
//                       default).  The comparison still runs against the
//                       SAME committed host baseline: serial reductions
//                       round differently, so iteration counts may move
//                       within the 20%+5 band, but convergence must not
//                       regress — that is the cross-backend conformance
//                       contract.  Unknown names exit 2 up front.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "base/backend.hpp"
#include "base/options.hpp"
#include "core/session.hpp"
#include "sparse/gen/suite_standins.hpp"

using namespace nk;

namespace {

struct Cell {
  std::string id;        ///< "<matrix>|<solver>|<precond>|<format>"
  bool converged = false;
  int iters = 0;
  double relres = 0.0;
};

std::string cell_id(const std::string& matrix, const std::string& solver,
                    const std::string& precond, const std::string& format) {
  return matrix + "|" + solver + "|" + precond + "|" + format;
}

// ------------------------------------------------------------- JSON rows

void write_rows(std::ostream& os, const std::vector<Cell>& rows, int scale) {
  os << "{\"schema\": \"nkrylov-conformance-v1\", \"scale\": " << scale
     << ", \"rows\": [\n";
  os.precision(9);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Cell& c = rows[i];
    os << "{\"cell\": \"" << c.id << "\", \"converged\": " << (c.converged ? 1 : 0)
       << ", \"iters\": " << c.iters << ", \"relres\": " << c.relres << "}"
       << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  os << "]}\n";
}

/// Minimal row reader for the format write_rows emits: one row per line,
/// fixed key order.  Lines without a "cell" key are structural and skipped.
std::map<std::string, Cell> read_baseline(const std::string& path) {
  std::map<std::string, Cell> out;
  std::ifstream f(path);
  if (!f) throw std::runtime_error("conformance: cannot open baseline " + path);
  std::string line;
  while (std::getline(f, line)) {
    const auto cpos = line.find("\"cell\": \"");
    if (cpos == std::string::npos) continue;
    const auto cbeg = cpos + 9;
    const auto cend = line.find('"', cbeg);
    if (cend == std::string::npos) continue;
    Cell c;
    c.id = line.substr(cbeg, cend - cbeg);
    int conv = 0;
    const auto vpos = line.find("\"converged\": ", cend);
    const auto ipos = line.find("\"iters\": ", cend);
    const auto rpos = line.find("\"relres\": ", cend);
    if (vpos == std::string::npos || ipos == std::string::npos || rpos == std::string::npos)
      throw std::runtime_error("conformance: malformed baseline row: " + line);
    if (std::sscanf(line.c_str() + vpos, "\"converged\": %d", &conv) != 1 ||
        std::sscanf(line.c_str() + ipos, "\"iters\": %d", &c.iters) != 1 ||
        std::sscanf(line.c_str() + rpos, "\"relres\": %lf", &c.relres) != 1)
      throw std::runtime_error("conformance: malformed baseline row: " + line);
    c.converged = conv != 0;
    out[c.id] = c;
  }
  if (out.empty()) throw std::runtime_error("conformance: baseline has no rows: " + path);
  return out;
}

// ------------------------------------------------------------ the sweep

Cell to_cell(std::string id, const SolveResult& r) {
  Cell c;
  c.id = std::move(id);
  c.converged = r.converged;
  c.iters = r.iterations;
  c.relres = r.final_relres;
  return c;
}

/// Format a double option value so SolverSpec::parse round-trips it.
std::string fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// The catalog's spec string for one (solver kind, precision) cell.  Every
/// cell is constructible from this string alone (the registry coverage
/// test pins that); the baseline keys stay the legacy cell names, which
/// the solve's reporting name maps each spec back to.
std::string cell_spec(const std::string& solver_kind, const std::string& prec,
                      double rtol, int max_iters, const std::string& backend) {
  std::string s = solver_kind;
  if (solver_kind == "fgmres") s += "64";  // the paper's FGMRES(64) baseline
  s += "@" + prec;
  s += ";rtol=" + fmt(rtol);
  if (solver_kind == "f3r") {
    // Nested kinds bound outer work by restarts (default 3 → 400 outer
    // iterations); --max-iters caps only the flat solvers.  Histories are
    // dead weight at catalog scale.
    s += ";nohist";
  } else {
    s += ";max-iters=" + std::to_string(max_iters);
  }
  if (!backend.empty()) s += ";backend=" + backend;
  return s;
}

std::vector<Cell> run_grid(const std::vector<std::string>& matrices, int scale,
                           double rtol, int max_iters, const std::string& backend) {
  std::vector<Cell> rows;
  // The grid's axes come from the registry: every solver/preconditioner
  // kind tagged `conformance`, in registration order (krylov = CG|BiCGStab
  // by symmetry, fgmres, f3r × jacobi, bj, sd-ainv).
  const std::vector<std::string> solver_kinds = registry().conformance_solver_kinds();
  const std::vector<std::string> precond_kinds = registry().conformance_precond_kinds();
  const std::vector<std::string> precs = {"fp64", "fp32", "fp16"};

  for (const std::string& name : matrices) {
    for (const bool use_sell : {false, true}) {
      const std::string format = use_sell ? "sell" : "csr";
      PreparedProblem p = prepare_standin(name, scale, 7, use_sell);
      for (const std::string& pk : precond_kinds) {
        auto m = registry().make_precond(PrecondSpec::parse(pk + ";nblocks=4"), p);
        const std::string mk = m->name();
        for (const std::string& prec : precs) {
          for (const std::string& sk : solver_kinds) {
            Session s(borrow_problem(p),
                      SolverSpec::parse(cell_spec(sk, prec, rtol, max_iters, backend)),
                      m);
            const SolveResult r = s.solve();
            rows.push_back(to_cell(cell_id(name, r.solver, mk, format), r));
          }
        }
        std::cout << "." << std::flush;
      }
    }
    std::cout << " " << name << "\n";
  }
  return rows;
}

// ------------------------------------------------------- the comparison

/// Effective iteration cap for a cell: BiCGStab runs at max_iters/2 (two
/// preconditioner calls per iteration, see run_bicgstab) and the nested
/// F3R counts OUTER iterations capped by (max_restarts+1)·m1 = 400.
int cell_cap(const std::string& id, int max_iters) {
  if (id.find("BiCGStab") != std::string::npos) return max_iters / 2;
  if (id.find("F3R") != std::string::npos) return 400;
  return max_iters;
}

int compare(const std::vector<Cell>& rows, const std::map<std::string, Cell>& base,
            int max_iters, bool full_grid) {
  int regressions = 0, improvements = 0, fragile = 0, newcells = 0;
  std::map<std::string, bool> seen;
  for (const Cell& c : rows) {
    seen[c.id] = true;
    const auto it = base.find(c.id);
    if (it == base.end()) {
      ++newcells;
      continue;
    }
    const Cell& b = it->second;
    const int cap = cell_cap(c.id, max_iters);
    if (b.converged && !c.converged) {
      // Baseline runs that barely fit under the cap flip with thread-count
      // rounding noise; report, don't fail.
      if (b.iters > (cap * 8) / 10) {
        ++fragile;
        std::cout << "FRAGILE   " << c.id << " (baseline converged at " << b.iters
                  << " near cap " << cap << ", now did not)\n";
      } else {
        ++regressions;
        std::cout << "REGRESSED " << c.id << " (baseline converged in " << b.iters
                  << " iters, now fails, relres " << c.relres << ")\n";
      }
      continue;
    }
    if (!b.converged && c.converged) {
      ++improvements;
      continue;
    }
    if (b.converged && c.converged) {
      const int band = (b.iters * 12) / 10 + 5;
      if (c.iters > band) {
        ++regressions;
        std::cout << "REGRESSED " << c.id << " (iters " << b.iters << " -> " << c.iters
                  << ", band " << band << ")\n";
      } else if (c.iters < b.iters) {
        ++improvements;
      }
    }
  }
  if (full_grid) {
    for (const auto& [id, b] : base) {
      if (!seen.count(id)) {
        ++regressions;
        std::cout << "REGRESSED " << id << " (cell present in baseline, missing now)\n";
      }
    }
  }
  std::cout << "conformance: " << rows.size() << " cells, " << regressions
            << " regressions, " << improvements << " improvements, " << fragile
            << " fragile, " << newcells << " new\n";
  return regressions;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt(argc, argv);
  if (opt.wants_help()) {
    std::cout << "conformance_sweep --scale=-4 --max-iters=800 --rtol=1e-8 "
                 "--matrices=all --baseline=path --out=path --write-baseline=path "
                 "--backend=host|serial\n";
    return 0;
  }
  const int scale = opt.get_int("scale", -4);
  const int max_iters = opt.get_int("max-iters", 800);
  const double rtol = opt.get_double("rtol", 1e-8);
  const std::string baseline = opt.get("baseline", "");
  const std::string out = opt.get("out", "");
  const std::string write_base = opt.get("write-baseline", "");
  const std::string backend = opt.get("backend", "");
  if (!backend.empty() && !parse_backend(backend).has_value()) {
    std::cerr << "error: invalid value '" << backend << "' for --backend (known: "
              << backend_names() << ")\n";
    return 2;
  }

  std::vector<std::string> matrices = opt.get_list("matrices", {"all"});
  bool full_grid = false;
  if (matrices.size() == 1 && matrices[0] == "all") {
    matrices.clear();
    for (const auto& s : gen::standin_catalog()) matrices.push_back(s.paper_name);
    full_grid = true;
  }

  std::cout << "conformance sweep: " << matrices.size() << " matrices, scale=" << scale
            << ", rtol=" << rtol << ", max-iters=" << max_iters
            << ", backend=" << (backend.empty() ? "(spec default)" : backend) << "\n";
  const auto rows = run_grid(matrices, scale, rtol, max_iters, backend);

  if (!write_base.empty()) {
    std::ofstream f(write_base);
    if (!f) {
      std::cerr << "conformance: cannot write " << write_base << "\n";
      return 2;
    }
    write_rows(f, rows, scale);
    std::cout << "baseline written to " << write_base << " (" << rows.size() << " rows)\n";
    return 0;
  }
  if (!out.empty()) {
    std::ofstream f(out);
    if (f) {
      write_rows(f, rows, scale);
      std::cout << "rows written to " << out << "\n";
    } else {
      std::cerr << "conformance: cannot write " << out << "\n";
    }
  }
  if (baseline.empty()) {
    std::cout << "no baseline given; sweep is informational\n";
    return 0;
  }
  const auto base = read_baseline(baseline);
  const int regressions = compare(rows, base, max_iters, full_grid);
  if (regressions > 0) {
    std::cerr << "conformance sweep FAILED: " << regressions << " regression(s)\n";
    return 1;
  }
  std::cout << "conformance sweep passed\n";
  return 0;
}
