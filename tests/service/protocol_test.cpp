// Wire-protocol parsing: the daemon's checked-parse policy under test.
// Every malformed header must be rejected with a structured ProtocolError
// — partial integer parses ("4096x") are the bug class satellite #1 fixed
// in the env layer, and the wire must hold the same line.
#include "core/service/protocol.hpp"

#include <gtest/gtest.h>

#include "core/service/fingerprint.hpp"

namespace nk::service {
namespace {

TEST(Protocol, RequestLinesRoundTrip) {
  const char* lines[] = {
      "HELLO",
      "PUTGEN hpcg_4_4_4 2",
      "PUT 4096 97336 1",
      "SOLVE 00ff00ff00ff00ff 8 4096 cg/bj;wave=4;nblocks=8",
      "STATS",
      "FREE 0123456789abcdef",
      "SHUTDOWN",
  };
  for (const char* line : lines) {
    SCOPED_TRACE(line);
    EXPECT_EQ(format_request_line(parse_request_line(line)), line);
  }
}

TEST(Protocol, SolveFieldsParseExactly) {
  const Request r = parse_request_line("SOLVE 00000000000000ab 8 4096 cg/bj;wave=4");
  EXPECT_EQ(r.verb, Request::Verb::kSolve);
  EXPECT_EQ(r.handle, 0xabu);
  EXPECT_EQ(r.k, 8);
  EXPECT_EQ(r.n, 4096);
  EXPECT_EQ(r.spec, "cg/bj;wave=4");
}

TEST(Protocol, RejectsTrailingGarbageInEveryIntegerField) {
  // The "4096x" class: strtol would happily stop at the 'x'.
  EXPECT_THROW(parse_request_line("PUT 4096x 97336 1"), ProtocolError);
  EXPECT_THROW(parse_request_line("PUT 4096 97336z 1"), ProtocolError);
  EXPECT_THROW(parse_request_line("SOLVE 00000000000000ab 8x 16 cg"), ProtocolError);
  EXPECT_THROW(parse_request_line("SOLVE 00000000000000ab 8 16.0 cg"), ProtocolError);
  EXPECT_THROW(parse_request_line("PUTGEN hpcg_4_4_4 2x"), ProtocolError);
}

TEST(Protocol, RejectsMalformedStructure) {
  EXPECT_THROW(parse_request_line(""), ProtocolError);
  EXPECT_THROW(parse_request_line("FROB 1 2"), ProtocolError);
  EXPECT_THROW(parse_request_line("HELLO there"), ProtocolError);
  EXPECT_THROW(parse_request_line("PUT 16 32"), ProtocolError);        // missing sym
  EXPECT_THROW(parse_request_line("PUT 16 32 1 0"), ProtocolError);    // extra field
  EXPECT_THROW(parse_request_line("PUT  16 32 1"), ProtocolError);     // doubled space
  EXPECT_THROW(parse_request_line("SOLVE zz 8 16 cg"), ProtocolError); // bad hex
  EXPECT_THROW(parse_request_line("FREE 0123456789abcdef0"), ProtocolError);  // 17 digits
}

TEST(Protocol, EnforcesBounds) {
  EXPECT_THROW(parse_request_line("PUT 0 0 0"), ProtocolError);   // n >= 1
  EXPECT_THROW(parse_request_line("PUT -4 0 0"), ProtocolError);
  EXPECT_THROW(parse_request_line("SOLVE 00000000000000ab 0 16 cg"), ProtocolError);
  EXPECT_THROW(
      parse_request_line("SOLVE 00000000000000ab " + std::to_string(kMaxK + 1) + " 16 cg"),
      ProtocolError);
  EXPECT_THROW(parse_request_line("PUT 999999999999999999999 1 0"), ProtocolError);
  EXPECT_THROW(parse_request_line("PUTGEN hpcg_4_4_4 65"), ProtocolError);
}

TEST(Protocol, ErrorsCarryTheWireCode) {
  try {
    parse_request_line("PUT 4096x 1 0");
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), "bad-request");
    EXPECT_NE(std::string(e.what()).find("4096x"), std::string::npos)
        << "message must name the offending value";
  }
}

TEST(Protocol, ColLinesRoundTrip) {
  SolveResult ok;
  ok.mark_converged();
  ok.iterations = 27;
  ok.final_relres = 9.2211e-09;
  const WireColumn c = parse_col_line(format_col_line(3, ok));
  EXPECT_EQ(c.col, 3);
  EXPECT_TRUE(c.converged());
  EXPECT_EQ(c.iterations, 27);
  EXPECT_DOUBLE_EQ(c.relres, 9.2211e-09);
  EXPECT_TRUE(c.failure.empty());

  SolveResult bad;
  bad.fail(SolveStatus::kNonFinite, "pivot");
  bad.iterations = 2;
  bad.final_relres = 1.0;
  const WireColumn d = parse_col_line(format_col_line(0, bad));
  EXPECT_FALSE(d.converged());
  EXPECT_EQ(d.status, "non_finite");
  EXPECT_EQ(d.failure, "pivot");
}

TEST(Protocol, ColLineRejectsGarbage) {
  EXPECT_THROW(parse_col_line("COL 0 converged 12"), ProtocolError);
  EXPECT_THROW(parse_col_line("ROW 0 converged 12 1e-9 -"), ProtocolError);
  EXPECT_THROW(parse_col_line("COL x converged 12 1e-9 -"), ProtocolError);
  EXPECT_THROW(parse_col_line("COL 0 converged 12 1e-9x -"), ProtocolError);
}

TEST(Fingerprint, HexRoundTripsAndParsesStrictly) {
  const std::uint64_t fps[] = {0u, 0xabcdefull, ~0ull, kFnvOffset};
  for (const std::uint64_t fp : fps) {
    const std::string hex = fingerprint_hex(fp);
    EXPECT_EQ(hex.size(), 16u);
    std::uint64_t back = 0;
    ASSERT_TRUE(parse_fingerprint_hex(hex, back));
    EXPECT_EQ(back, fp);
  }
  std::uint64_t out = 0;
  EXPECT_TRUE(parse_fingerprint_hex("AB", out));  // upper-case accepted
  EXPECT_EQ(out, 0xabu);
  EXPECT_FALSE(parse_fingerprint_hex("", out));
  EXPECT_FALSE(parse_fingerprint_hex("0x12", out));
  EXPECT_FALSE(parse_fingerprint_hex("12 ", out));
  EXPECT_FALSE(parse_fingerprint_hex("0123456789abcdef0", out));  // 17 digits
  EXPECT_FALSE(parse_fingerprint_hex("-1", out));
}

}  // namespace
}  // namespace nk::service
