// SolveExecutor: cross-request batching, per-client bit-identity under
// concurrency, and fault isolation inside shared waves.
//
// Bit-identity note: these tests use cg, whose batched solve_many path is
// pinned per-column bit-identical to a solo solve() (the conformance /
// BatchedCompaction contracts).  The nested f3r engines share adaptive
// state across a wave and are NOT per-column order-independent — a daemon
// client wanting bit-reproducibility picks a spec with that contract,
// which is exactly what we document in the README.
//
// This file also runs under the CI TSan job (executor_test_forced_team
// matches its regex) — the N-clients-x-M-solves test is the
// data-race probe for the whole service stack.
#include "core/service/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "core/problem.hpp"
#include "core/service/fingerprint.hpp"
#include "support/problems.hpp"

namespace nk::service {
namespace {

std::shared_ptr<const PreparedProblem> shared_problem() {
  return std::make_shared<const PreparedProblem>(prepare_standin("hpcg_4_4_4", 1));
}

std::vector<std::vector<double>> seeded_columns(const PreparedProblem& p, int k,
                                                std::uint64_t seed0) {
  const std::vector<double> flat = batch_rhs(p, k, seed0);
  const std::size_t n = p.b.size();
  std::vector<std::vector<double>> cols(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c)
    cols[static_cast<std::size_t>(c)].assign(flat.begin() + static_cast<std::size_t>(c) * n,
                                             flat.begin() + static_cast<std::size_t>(c + 1) * n);
  return cols;
}

TEST(Executor, SolvesSubmittedColumnsAndCounts) {
  auto p = shared_problem();
  const std::uint64_t h = standin_fingerprint("hpcg_4_4_4", 1);
  const SolverSpec spec = SolverSpec::parse("cg/bj;nblocks=8");

  ExecutorConfig cfg;
  cfg.threads = 2;
  SolveExecutor ex(cfg);
  auto futures = ex.submit(h, p, spec, seeded_columns(*p, 3, 11), 1);
  ASSERT_EQ(futures.size(), 3u);
  for (auto& f : futures) {
    const ColumnOutcome out = f.get();
    EXPECT_TRUE(out.result.converged) << summarize(out.result);
    EXPECT_EQ(out.x.size(), p->b.size());
  }
  const SolveExecutor::Stats s = ex.stats();
  EXPECT_EQ(s.columns, 3u);
  EXPECT_GE(s.widest_batch, 1);
}

TEST(Executor, MergesColumnsFromDifferentRequestsIntoOneWave) {
  auto p = shared_problem();
  const std::uint64_t h = standin_fingerprint("hpcg_4_4_4", 1);
  const SolverSpec spec = SolverSpec::parse("cg/bj;wave=8;nblocks=8");

  // Paused start: all four requests are queued before any worker wakes,
  // so they MUST meet in shared batches once resumed.
  ExecutorConfig cfg;
  cfg.threads = 1;
  cfg.max_batch = 16;
  cfg.start_paused = true;
  SolveExecutor ex(cfg);
  std::vector<std::future<ColumnOutcome>> all;
  for (std::uint64_t req = 1; req <= 4; ++req)
    for (auto& f : ex.submit(h, p, spec, seeded_columns(*p, 2, 100 * req), req))
      all.push_back(std::move(f));
  ex.resume();
  for (auto& f : all) EXPECT_TRUE(f.get().result.converged);

  const SolveExecutor::Stats s = ex.stats();
  EXPECT_EQ(s.columns, 8u);
  EXPECT_GE(s.merged_batches, 1u) << "cross-request merging never happened";
  EXPECT_GT(s.widest_batch, 2) << "batches never grew past a single request";
}

TEST(Executor, ConcurrentClientsGetBitIdenticalResultsVsSequential) {
  auto p = shared_problem();
  const std::uint64_t h = standin_fingerprint("hpcg_4_4_4", 1);
  const SolverSpec spec = SolverSpec::parse("cg/bj;nblocks=8");
  const std::size_t n = p->b.size();

  constexpr int kClients = 6;
  constexpr int kSolvesPerClient = 3;

  // Sequential reference: each client's columns solved alone, one at a
  // time, through a dedicated executor.
  std::vector<std::vector<double>> reference;
  {
    ExecutorConfig cfg;
    cfg.threads = 1;
    cfg.max_batch = 1;  // no batching at all in the reference
    SolveExecutor ref(cfg);
    for (int client = 0; client < kClients; ++client) {
      for (int sol = 0; sol < kSolvesPerClient; ++sol) {
        auto cols = seeded_columns(*p, 1, 1000 * client + sol);
        auto futs = ref.submit(h, p, spec, std::move(cols), 1);
        ColumnOutcome out = futs[0].get();
        EXPECT_TRUE(out.result.converged);
        reference.push_back(std::move(out.x));
      }
    }
  }

  // Concurrent run: all clients submit from their own threads into one
  // busy executor; columns from different clients share waves.
  ExecutorConfig cfg;
  cfg.threads = 3;
  cfg.max_batch = 8;
  SolveExecutor ex(cfg);
  std::vector<std::vector<double>> live(static_cast<std::size_t>(kClients * kSolvesPerClient));
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int client = 0; client < kClients; ++client) {
    clients.emplace_back([&, client] {
      for (int sol = 0; sol < kSolvesPerClient; ++sol) {
        auto cols = seeded_columns(*p, 1, 1000 * client + sol);
        auto futs = ex.submit(h, p, spec, std::move(cols),
                              static_cast<std::uint64_t>(client * kSolvesPerClient + sol + 1));
        ColumnOutcome out = futs[0].get();
        if (!out.result.converged) failures.fetch_add(1);
        live[static_cast<std::size_t>(client * kSolvesPerClient + sol)] = std::move(out.x);
      }
    });
  }
  for (auto& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);

  // cg's batched path is per-column bit-identical to solo solves, so the
  // daemon's cross-client batching must be invisible in the bits.
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(live[i].size(), n);
    for (std::size_t j = 0; j < n; ++j)
      ASSERT_EQ(live[i][j], reference[i][j])
          << "solution bits diverged at solve " << i << ", entry " << j;
  }
}

TEST(Executor, PoisonedColumnIsRetiredWithoutTakingDownItsWave) {
  auto p = shared_problem();
  const std::uint64_t h = standin_fingerprint("hpcg_4_4_4", 1);
  const SolverSpec spec = SolverSpec::parse("cg/bj;wave=4;nblocks=8");
  const std::size_t n = p->b.size();

  ExecutorConfig cfg;
  cfg.threads = 1;  // force all four columns into one shared wave
  cfg.max_batch = 8;
  SolveExecutor ex(cfg);

  auto cols = seeded_columns(*p, 4, 21);
  cols[2][n / 2] = std::nan("");  // one client's poisoned request
  auto futures = ex.submit(h, p, spec, std::move(cols), 1);

  const ColumnOutcome poisoned = futures[2].get();
  EXPECT_FALSE(poisoned.result.converged);
  EXPECT_TRUE(poisoned.result.status == SolveStatus::kNonFinite ||
              poisoned.result.status == SolveStatus::kInvalidInput)
      << status_name(poisoned.result.status);

  // Its wave-mates converge to the SAME bits as a clean solo run.
  SolveExecutor solo(ExecutorConfig{1, 1, 4});
  for (const int c : {0, 1, 3}) {
    const ColumnOutcome out = futures[static_cast<std::size_t>(c)].get();
    ASSERT_TRUE(out.result.converged) << "wave-mate " << c << ": " << summarize(out.result);
    auto ref_cols = seeded_columns(*p, 4, 21);
    auto ref =
        solo.submit(h, p, spec, {std::move(ref_cols[static_cast<std::size_t>(c)])}, 1)[0].get();
    ASSERT_TRUE(ref.result.converged);
    for (std::size_t j = 0; j < n; ++j)
      ASSERT_EQ(out.x[j], ref.x[j]) << "column " << c << " diverged at entry " << j;
  }
}

TEST(Executor, SessionConstructionFailureFailsColumnsStructurally) {
  auto p = shared_problem();
  const std::uint64_t h = standin_fingerprint("hpcg_4_4_4", 1);
  // A kind the registry does not know: Session construction throws inside
  // the worker, and every queued column must come back kInvalidInput with
  // a failure site — never a hung future or a dead worker.
  SolverSpec spec;
  spec.kind = "no-such-solver-kind";
  SolveExecutor ex(ExecutorConfig{1, 4, 4});
  auto futures = ex.submit(h, p, spec, seeded_columns(*p, 2, 5), 1);
  for (auto& f : futures) {
    const ColumnOutcome out = f.get();
    EXPECT_FALSE(out.result.converged);
    EXPECT_EQ(out.result.status, SolveStatus::kInvalidInput);
    EXPECT_NE(out.result.failure.find("session:"), std::string::npos);
  }
}

TEST(Executor, DrainsQueuedColumnsOnDestruction) {
  auto p = shared_problem();
  const std::uint64_t h = standin_fingerprint("hpcg_4_4_4", 1);
  const SolverSpec spec = SolverSpec::parse("cg/jacobi");
  std::vector<std::future<ColumnOutcome>> futures;
  {
    SolveExecutor ex(ExecutorConfig{1, 2, 4});
    futures = ex.submit(h, p, spec, seeded_columns(*p, 5, 31), 1);
    // Destructor runs with most columns still queued.
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().result.converged) << "column lost in shutdown";
}

}  // namespace
}  // namespace nk::service
