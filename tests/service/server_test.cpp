// Full daemon round trips over a real Unix-domain socket: handle
// lifecycle, cache-hit accounting on the wire, per-column structured
// failures for poisoned requests, and the two ERR disciplines (header
// desync closes, semantic errors keep the stream).
#include "core/service/server.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "core/service/client.hpp"
#include "core/session.hpp"
#include "support/problems.hpp"

namespace nk::service {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerConfig cfg;
    cfg.socket_path = "/tmp/nkrylovd-test-" + std::to_string(::getpid()) + "-" +
                      ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".sock";
    cfg.executor.threads = 2;
    cfg.executor.max_batch = 8;
    server_ = std::make_unique<Server>(cfg);
    server_->start();
    path_ = cfg.socket_path;
  }
  void TearDown() override { server_->stop(); }

  std::unique_ptr<Server> server_;
  std::string path_;
};

TEST_F(ServerTest, HelloBanner) {
  Client c(path_);
  EXPECT_EQ(c.hello(), "nkrylovd 1");
}

TEST_F(ServerTest, PutSolveRoundTripMatchesLocalSession) {
  const CsrMatrix<double> a = test::scaled_laplace2d(16, 16);
  const std::size_t n = static_cast<std::size_t>(a.nrows);

  Client c(path_);
  const Client::Handle h = c.put_matrix(a, true);
  EXPECT_FALSE(h.cached);
  EXPECT_EQ(h.n, a.nrows);
  EXPECT_EQ(h.nnz, a.nnz());

  const std::string spec = "cg/jacobi";
  std::vector<double> B(2 * n);
  for (std::size_t i = 0; i < B.size(); ++i)
    B[i] = 0.5 + 0.25 * std::sin(static_cast<double>(i));
  const Client::SolveReply reply = c.solve(h.handle, spec, B, 2, h.n);
  ASSERT_EQ(reply.columns.size(), 2u);
  for (const WireColumn& col : reply.columns) EXPECT_TRUE(col.converged());

  // The daemon prepared the SAME system a local Session would (the PUT
  // path runs prepare_problem on the uploaded matrix), so the returned
  // bits must match a local solve of the prepared problem.
  const PreparedProblem p =
      prepare_problem("local", a, true, 1.0, 1.0, /*rhs_seed=*/7);
  Session s(borrow_problem(p), SolverSpec::parse(spec));
  std::vector<double> x(n, 0.0);
  const SolveResult local = s.solve(std::span<const double>(B.data(), n), x);
  ASSERT_TRUE(local.converged);
  for (std::size_t j = 0; j < n; ++j)
    ASSERT_EQ(reply.x[j], x[j]) << "daemon and local solve diverged at " << j;
}

TEST_F(ServerTest, SerialBackendSpecRoundTripsThroughTheDaemon) {
  // The backend seam reaches the service layer through the spec string
  // alone: a ";backend=serial" request runs on the reference backend
  // daemon-side and must match a LOCAL serial Session bit for bit (the
  // daemon adds no kernels of its own).  Unknown backends come back as a
  // structured per-column failure, not a dead connection.
  const CsrMatrix<double> a = test::scaled_laplace2d(16, 16);
  const std::size_t n = static_cast<std::size_t>(a.nrows);

  Client c(path_);
  const Client::Handle h = c.put_matrix(a, true);
  const std::string spec = "cg/jacobi@fp64;backend=serial";
  std::vector<double> B(n);
  for (std::size_t i = 0; i < n; ++i)
    B[i] = 0.5 + 0.25 * std::sin(static_cast<double>(i));
  const Client::SolveReply reply = c.solve(h.handle, spec, B, 1, h.n);
  ASSERT_EQ(reply.columns.size(), 1u);
  EXPECT_TRUE(reply.columns[0].converged());

  // The executor solves every request through the batched path, so the
  // local reference is solve_many(k=1) on a serial Session — same code
  // path, same bits.
  const PreparedProblem p = prepare_problem("local", a, true, 1.0, 1.0, 7);
  Session s(borrow_problem(p), SolverSpec::parse(spec));
  EXPECT_EQ(s.backend(), Backend::kSerial);
  std::vector<double> x(n, 0.0);
  const std::vector<SolveResult> local =
      s.solve_many(std::span<const double>(B.data(), n), x, 1);
  ASSERT_EQ(local.size(), 1u);
  ASSERT_TRUE(local[0].converged);
  for (std::size_t j = 0; j < n; ++j)
    ASSERT_EQ(reply.x[j], x[j]) << "daemon and local serial solve diverged at " << j;

  // Unknown backend in the spec: the bad-spec semantic-error discipline —
  // ERR returned, connection stays usable.
  try {
    c.solve(h.handle, "cg/jacobi;backend=cuda", B, 1, h.n);
    FAIL() << "expected bad-spec";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), "bad-spec");
  }
  EXPECT_TRUE(c.solve(h.handle, spec, B, 1, h.n).columns[0].converged());
}

TEST_F(ServerTest, RepeatPutIsCachedAcrossConnections) {
  const CsrMatrix<double> a = test::scaled_laplace2d(12, 12);
  {
    Client c1(path_);
    EXPECT_FALSE(c1.put_matrix(a, true).cached);
  }
  Client c2(path_);  // a different client, later: still a hit
  EXPECT_TRUE(c2.put_matrix(a, true).cached);
  const auto stats = c2.stats();
  EXPECT_EQ(stats.at("problem_hits"), 1u);
  EXPECT_EQ(stats.at("problem_misses"), 1u);
}

TEST_F(ServerTest, SemanticErrorsKeepTheConnectionUsable) {
  Client c(path_);
  const Client::Handle h = c.put_standin("hpcg_4_4_4", 1);
  std::vector<double> B(static_cast<std::size_t>(h.n), 1.0);

  // Unknown handle: payload drained, ERR returned, stream intact.
  try {
    c.solve(0xdeadbeefu, "cg/jacobi", B, 1, h.n);
    FAIL() << "expected unknown-handle";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), "unknown-handle");
  }
  // Bad spec on a good handle: same discipline.
  try {
    c.solve(h.handle, "cg;wave=4x", B, 1, h.n);
    FAIL() << "expected bad-spec";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), "bad-spec");
  }
  // The SAME connection still solves.
  EXPECT_TRUE(c.solve(h.handle, "cg/jacobi", B, 1, h.n).columns[0].converged());
}

TEST_F(ServerTest, MalformedHeaderGetsErrThenCloses) {
  Client c(path_);
  const std::string reply = c.request_raw("PUT 16x 32 1");
  EXPECT_EQ(reply.rfind("ERR bad-request", 0), 0u) << reply;
  // The server closed this connection (header desync discipline); the
  // daemon itself keeps serving new ones.
  Client c2(path_);
  EXPECT_EQ(c2.hello(), "nkrylovd 1");
}

TEST_F(ServerTest, BadMatrixStructureIsRejectedBeforePreparation) {
  CsrMatrix<double> a = test::scaled_laplace2d(8, 8);
  a.col_idx[1] = a.nrows + 5;  // out-of-range column
  Client c(path_);
  try {
    c.put_matrix(a, true);
    FAIL() << "expected bad-matrix";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), "bad-matrix");
    EXPECT_NE(std::string(e.what()).find("col_idx"), std::string::npos);
  }
  EXPECT_EQ(c.hello(), "nkrylovd 1") << "connection survives a bad matrix";
}

TEST_F(ServerTest, PoisonedRequestFailsPerColumnWhileOthersConverge) {
  Client c(path_);
  const Client::Handle h = c.put_standin("hpcg_4_4_4", 1);
  const std::size_t n = static_cast<std::size_t>(h.n);
  std::vector<double> B(3 * n, 1.0);
  B[n + 7] = std::nan("");  // column 1 poisoned

  const Client::SolveReply reply = c.solve(h.handle, "cg/bj;nblocks=8", B, 3, h.n);
  ASSERT_EQ(reply.columns.size(), 3u);
  EXPECT_TRUE(reply.columns[0].converged());
  EXPECT_FALSE(reply.columns[1].converged());
  EXPECT_TRUE(reply.columns[1].status == "non_finite" ||
              reply.columns[1].status == "invalid_input")
      << reply.columns[1].status;
  EXPECT_TRUE(reply.columns[2].converged());
  // And the daemon is still alive for the next request.
  EXPECT_EQ(c.hello(), "nkrylovd 1");
}

TEST_F(ServerTest, FreeDropsTheHandle) {
  Client c(path_);
  const Client::Handle h = c.put_standin("hpcg_4_4_4", 1);
  c.free_handle(h.handle);
  try {
    c.free_handle(h.handle);
    FAIL() << "expected unknown-handle on double free";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), "unknown-handle");
  }
  EXPECT_FALSE(c.put_standin("hpcg_4_4_4", 1).cached) << "freed handle re-prepares";
}

TEST_F(ServerTest, ManyConcurrentClientsAllConverge) {
  constexpr int kClients = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      try {
        Client c(path_);
        const Client::Handle h = c.put_standin("hpcg_4_4_4", 1);
        std::vector<double> B(static_cast<std::size_t>(h.n), 1.0);
        const auto reply = c.solve(h.handle, "cg/bj;nblocks=8", B, 1, h.n);
        if (!reply.columns[0].converged()) failures.fetch_add(1);
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  Client c(path_);
  const auto stats = c.stats();
  EXPECT_EQ(stats.at("problem_misses"), 1u)
      << "eight clients, one preparation: the cache is the product";
  EXPECT_EQ(stats.at("problem_hits") + stats.at("problem_misses"),
            static_cast<std::uint64_t>(kClients));
}

}  // namespace
}  // namespace nk::service
