// The daemon's content-addressed caches: fingerprint sensitivity, problem
// hit/miss accounting (the "repeat clients pay zero setup" proof), and
// Session LRU eviction that never touches an in-flight lease.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/service/fingerprint.hpp"
#include "core/service/session_cache.hpp"
#include "support/problems.hpp"

namespace nk::service {
namespace {

TEST(Fingerprint, SeesEveryComponentOfTheMatrix) {
  const CsrMatrix<double> a = test::scaled_laplace2d(8, 8);
  const std::uint64_t base = matrix_fingerprint(a, true);
  EXPECT_EQ(matrix_fingerprint(a, true), base) << "must be deterministic";
  EXPECT_NE(matrix_fingerprint(a, false), base) << "symmetry claim is part of the problem";

  CsrMatrix<double> v = a;
  v.vals[3] += 1e-13;
  EXPECT_NE(matrix_fingerprint(v, true), base) << "value changes must re-key";

  const CsrMatrix<double> other = test::scaled_laplace2d(8, 9);
  EXPECT_NE(matrix_fingerprint(other, true), base) << "shape changes must re-key";
}

TEST(Fingerprint, StandinsAreKeyedByGeneratorCoordinates) {
  const std::uint64_t a = standin_fingerprint("hpcg_4_4_4", 1);
  EXPECT_EQ(standin_fingerprint("hpcg_4_4_4", 1), a);
  EXPECT_NE(standin_fingerprint("hpcg_4_4_4", 2), a);
  EXPECT_NE(standin_fingerprint("ecology2", 1), a);
}

TEST(ProblemTable, RepeatPutIsAHitAndSharesThePreparedProblem) {
  ProblemTable table;
  const CsrMatrix<double> a = test::scaled_laplace2d(8, 8);

  const ProblemTable::PutOutcome first = table.put_matrix(a, true);
  EXPECT_FALSE(first.cached);
  const ProblemTable::PutOutcome second = table.put_matrix(a, true);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(second.handle, first.handle);
  EXPECT_EQ(second.problem.get(), first.problem.get()) << "one PreparedProblem, shared";

  const ProblemTable::Stats s = table.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.resident, 1u);
}

TEST(ProblemTable, SymmetryClaimSplitsTheKey) {
  ProblemTable table;
  const CsrMatrix<double> a = test::scaled_laplace2d(8, 8);
  const auto spd = table.put_matrix(a, true);
  const auto gen = table.put_matrix(a, false);
  EXPECT_NE(spd.handle, gen.handle);
  EXPECT_FALSE(gen.cached);
}

TEST(ProblemTable, EraseDropsTheHandleButNotInFlightUsers) {
  ProblemTable table;
  const auto out = table.put_standin("hpcg_4_4_4", 1);
  const std::shared_ptr<const PreparedProblem> held = table.find(out.handle);
  ASSERT_NE(held, nullptr);
  EXPECT_TRUE(table.erase(out.handle));
  EXPECT_FALSE(table.erase(out.handle)) << "second erase: handle already gone";
  EXPECT_EQ(table.find(out.handle), nullptr);
  // The shared_ptr we took before the erase still owns a live problem.
  EXPECT_EQ(held->b.size(), static_cast<std::size_t>(held->a->size()));
  // Re-PUT after erase is a miss again: preparation is re-paid.
  EXPECT_FALSE(table.put_standin("hpcg_4_4_4", 1).cached);
}

TEST(SessionCache, RepeatLeaseSkipsSetup) {
  ProblemTable table;
  const auto out = table.put_standin("hpcg_4_4_4", 1);
  const SolverSpec spec = SolverSpec::parse("cg/bj;nblocks=8");

  SessionCache cache(4);
  {
    SessionCache::Lease lease = cache.lease(out.handle, out.problem, spec);
    EXPECT_TRUE(lease.built());
    const SolveResult r = lease.session().solve();
    EXPECT_TRUE(r.converged);
  }
  {
    SessionCache::Lease lease = cache.lease(out.handle, out.problem, spec);
    EXPECT_FALSE(lease.built()) << "same (matrix, spec): factorization must be reused";
  }
  // A different spec on the same matrix is a different Session.
  EXPECT_TRUE(cache.lease(out.handle, out.problem, SolverSpec::parse("cg/jacobi")).built());

  const SessionCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.resident, 2u);
}

TEST(SessionCache, EvictsIdleLruBeyondCapacityButNeverInFlight) {
  ProblemTable table;
  const auto out = table.put_standin("hpcg_4_4_4", 1);
  SessionCache cache(1);

  const SolverSpec held_spec = SolverSpec::parse("cg/jacobi");
  {
    SessionCache::Lease held = cache.lease(out.handle, out.problem, held_spec);

    // Two more specs against capacity 1: the IDLE entries churn, the held
    // lease must survive untouched.
    (void)cache.lease(out.handle, out.problem, SolverSpec::parse("cg/bj;nblocks=8"));
    (void)cache.lease(out.handle, out.problem, SolverSpec::parse("bicgstab/jacobi"));

    const SessionCache::Stats s = cache.stats();
    EXPECT_GE(s.evictions, 1u);
    EXPECT_TRUE(held.session().solve().converged) << "in-flight lease still valid";
  }
  // The held entry was never evicted while in flight, so re-leasing it
  // after release is a hit.  (Re-leasing a key while STILL holding its
  // lease would self-deadlock — that is the documented single-lessee
  // contract, same as Session's concurrent-use guard.)
  const std::uint64_t hits_before = cache.stats().hits;
  { SessionCache::Lease again = cache.lease(out.handle, out.problem, held_spec); }
  EXPECT_EQ(cache.stats().hits, hits_before + 1);
}

TEST(SessionCache, ConcurrentLeasesOfOneKeySerializeAndBuildOnce) {
  ProblemTable table;
  const auto out = table.put_standin("hpcg_4_4_4", 1);
  const SolverSpec spec = SolverSpec::parse("cg/bj;nblocks=8");
  SessionCache cache(8);

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> converged{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      SessionCache::Lease lease = cache.lease(out.handle, out.problem, spec);
      if (lease.session().solve().converged) converged.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(converged.load(), kThreads)
      << "serialized leases must never hit the Session concurrent-use guard";
  const SessionCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 1u) << "setup paid exactly once across all threads";
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads - 1));
}

}  // namespace
}  // namespace nk::service
