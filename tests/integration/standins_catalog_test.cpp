// Full-catalog sweep: every Table 2 stand-in generates, validates, matches
// its declared symmetry, survives diagonal scaling into fp16 range, and
// admits its designated preconditioner without fatal breakdown.
#include <gtest/gtest.h>

#include "nkrylov.hpp"

namespace nk {
namespace {

class CatalogSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(CatalogSweep, GeneratesValidatesAndScales) {
  const auto prob = gen::make_problem(GetParam(), 1);
  prob.a.validate();
  EXPECT_TRUE(prob.a.rows_sorted());
  EXPECT_GT(prob.a.nrows, 1000) << "stand-ins must be nontrivial";
  EXPECT_EQ(is_symmetric(prob.a, 1e-10), prob.spec.symmetric);

  auto scaled = prob.a;
  const auto sres = diagonal_scale_symmetric(scaled);
  EXPECT_FALSE(sres.had_zero_diagonal);
  const auto stats = analyze(scaled);
  // Scaling must put every value inside binary16 range (the property fp16
  // storage depends on).
  EXPECT_EQ(stats.fp16_overflow_fraction, 0.0);
  EXPECT_TRUE(stats.has_full_diagonal);
}

TEST_P(CatalogSweep, PrimaryPreconditionerConstructsWithoutFatalBreakdown) {
  auto p = prepare_standin(GetParam(), 1);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 32);
  // Apply once at every storage precision; outputs must be finite.
  const auto r = random_vector<double>(p.b.size(), 3, 0.0, 1.0);
  for (Prec st : {Prec::FP64, Prec::FP32, Prec::FP16}) {
    auto h = m->make_apply<double>(st);
    std::vector<double> z(p.b.size());
    h->apply(std::span<const double>(r), std::span<double>(z));
    EXPECT_EQ(blas::count_nonfinite(std::span<const double>(z)), 0u)
        << GetParam() << " " << prec_name(st);
  }
}

// Sweep a representative subset covering every structure class (the full
// 30-matrix sweep lives in bench_matrices; tests keep runtime bounded).
INSTANTIATE_TEST_SUITE_P(Classes, CatalogSweep,
                         ::testing::Values("ecology2",      // 2-D 5-pt SPD
                                           "thermal2",      // anisotropic SPD
                                           "audikw_1",      // block elasticity SPD
                                           "hpcg_4_4_4",    // exact HPCG
                                           "hpgmp_4_4_4",   // exact HPGMP
                                           "atmosmodd",     // convection-diffusion
                                           "tmt_unsym",     // 2-D nonsymmetric
                                           "ss",            // hard skewed
                                           "Freescale1"),   // circuit graph
                         [](const auto& info) {
                           std::string s = info.param;
                           for (auto& c : s)
                             if (c == '-') c = '_';
                           return s;
                         });

}  // namespace
}  // namespace nk
