// Failure injection: the solvers must degrade gracefully — no crashes, no
// NaN solutions reported as converged — on hostile inputs: fp16 overflow,
// singular matrices, unscaled systems, absurd parameters.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "sparse/gen/laplace.hpp"
#include "sparse/gen/random_matrix.hpp"

namespace nk {
namespace {

TEST(FailureInjection, UnscaledHugeValuesOverflowFp16ButAreDetected) {
  // Skip diagonal scaling and feed values ~1e8: the fp16 copy of A becomes
  // ±inf.  fp16-F3R must not report convergence with a garbage solution.
  auto a = gen::laplace2d(12, 12);
  for (auto& v : a.vals) v *= 1e8;
  PreparedProblem p;
  p.name = "unscaled";
  p.symmetric = true;
  p.a = std::make_shared<MultiPrecMatrix>(std::move(a));  // NOTE: no scaling
  p.b.assign(static_cast<std::size_t>(p.a->size()), 1.0);

  auto m = make_primary(p, PrecondKind::Jacobi);
  const auto res = run_nested(p, m, f3r_config(Prec::FP16), f3r_termination(1e-8));
  if (res.converged) {
    EXPECT_LT(res.final_relres, 1e-8);  // honest claim or no claim
  } else {
    SUCCEED();
  }
}

TEST(FailureInjection, SingularMatrixDoesNotCrashAnySolver) {
  CsrMatrix<double> a(16, 16);
  // Row 7 entirely zero; everything else identity.
  for (index_t i = 0; i < 16; ++i) {
    if (i != 7) {
      a.col_idx.push_back(i);
      a.vals.push_back(1.0);
    }
    a.row_ptr[i + 1] = static_cast<index_t>(a.col_idx.size());
  }
  PreparedProblem p;
  p.name = "singular";
  p.symmetric = false;
  p.a = std::make_shared<MultiPrecMatrix>(std::move(a));
  p.b.assign(16, 1.0);

  auto m = make_primary(p, PrecondKind::Jacobi);
  FlatSolverCaps caps;
  caps.max_iters = 50;
  EXPECT_NO_THROW({
    const auto r1 = run_bicgstab(p, *m, Prec::FP64, caps);
    EXPECT_FALSE(r1.converged);
    const auto r2 = run_fgmres_restarted(p, *m, Prec::FP64, 8, caps);
    EXPECT_FALSE(r2.converged);
    Termination t = f3r_termination(1e-8);
    t.max_restarts = 1;
    const auto r3 = run_nested(p, m, f3r_config(Prec::FP16), t);
    EXPECT_FALSE(r3.converged);
  });
}

TEST(FailureInjection, HardProblemHitsRestartCapWithoutHanging) {
  // A convection-dominated problem with a weak (Jacobi) preconditioner and
  // a tiny outer space: F3R must stop after max_restarts cycles.
  auto p = prepare_standin("stokes", 1);
  // Deliberately weak preconditioner:
  auto m = make_primary(p, PrecondKind::Jacobi);
  F3rParams prm;
  prm.m1 = 4;  // tiny outer space to force restarts
  Termination t;
  t.rtol = 1e-300;  // unreachable: forces the restart path
  t.max_restarts = 2;
  const auto res = run_nested(p, m, f3r_config(Prec::FP16, prm), t);
  EXPECT_FALSE(res.converged);
  EXPECT_LE(res.iterations, 3 * 4);
  // Either all restarts were used or the solve aborted earlier on a
  // non-finite residual (fp16 divergence on this hostile setup) — both are
  // graceful exits.
  EXPECT_LE(res.restarts, 2);
}

TEST(FailureInjection, ZeroRhsAllSolvers) {
  auto p = prepare_standin("hpcg_4_4_4", 1);
  std::fill(p.b.begin(), p.b.end(), 0.0);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 4);
  const auto r1 = run_cg(p, *m, Prec::FP64);
  EXPECT_TRUE(r1.converged);
  EXPECT_EQ(r1.iterations, 0);
  const auto r2 = run_nested(p, m, f3r_config(Prec::FP16));
  EXPECT_TRUE(r2.converged);
}

TEST(FailureInjection, NearSingularPreconditionerPivotsClamped) {
  // random_sparse with dominance < 1 can produce ILU pivot loss; the
  // factorization must survive via pivot replacement.
  gen::RandomOptions o;
  o.n = 400;
  o.dominance = 0.3;
  o.seed = 13;
  auto p = prepare_problem("weak", gen::random_sparse(o), false, 1.0, 1.0, 3);
  EXPECT_NO_THROW({
    auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 4);
    FlatSolverCaps caps;
    caps.max_iters = 200;
    const auto res = run_bicgstab(p, *m, Prec::FP64, caps);
    (void)res;  // may or may not converge; must not throw or NaN-crash
  });
}

TEST(FailureInjection, TinyProblems) {
  // n = 1 and n = 2 exercise every boundary in the Arnoldi/Givens logic.
  for (index_t n : {1, 2}) {
    CsrMatrix<double> a(n, n);
    for (index_t i = 0; i < n; ++i) {
      a.col_idx.push_back(i);
      a.vals.push_back(2.0);
      a.row_ptr[i + 1] = i + 1;
    }
    PreparedProblem p;
    p.name = "tiny";
    p.symmetric = true;
    p.a = std::make_shared<MultiPrecMatrix>(std::move(a));
    p.b.assign(static_cast<std::size_t>(n), 1.0);
    auto m = make_primary(p, PrecondKind::Jacobi);
    const auto res = run_nested(p, m, f3r_config(Prec::FP16));
    EXPECT_TRUE(res.converged) << "n=" << n;
  }
}

TEST(FailureInjection, ManyBlocksExceedingRows) {
  auto p = prepare_problem("s", gen::laplace2d(4, 4), true, 1.0, 1.0, 4);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 1000);  // > n rows
  const auto res = run_cg(p, *m, Prec::FP64);
  EXPECT_TRUE(res.converged);
}

}  // namespace
}  // namespace nk
