// Adversarial-input coverage: hostile inputs driven through EVERY
// registered solver x preconditioner kind must come back as a defined
// SolveStatus within a bounded budget — no hang, crash, uncaught throw, or
// dishonest convergence claim.  This is the library-entry-point half of the
// resilience layer (the scheduled-corruption half lives in
// tests/fault/fault_matrix_test.cpp).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "support/problems.hpp"

namespace nk {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

PreparedProblem small_problem(bool symmetric) {
  return prepare_problem("adv", symmetric ? test::laplace2d(10, 10)
                                          : test::scaled_convdiff2d(10, 2.0),
                         symmetric, 1.0, 1.0, 3);
}

/// Every registered solver kind as a bounded-budget spec string over the
/// given preconditioner kind.
std::vector<std::string> bounded_specs(const std::string& precond_kind) {
  std::vector<std::string> specs;
  for (const auto& kind : registry().solver_kinds()) {
    const SolverKindInfo* info = registry().solver_info(kind);
    std::string s = kind;
    if (info->takes_m && info->default_m == 0) s += "8";
    s += "/" + precond_kind + ";max-iters=60;restarts=1;rtol=1e-8;nohist";
    specs.push_back(std::move(s));
  }
  return specs;
}

/// A status is "defined" when it is one of the taxonomy's enumerators and
/// any convergence claim is backed by the true residual.
void expect_defined(const SolveResult& r, const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_LE(static_cast<int>(r.status), static_cast<int>(SolveStatus::kInvalidInput));
  if (r.converged) {
    EXPECT_EQ(r.status, SolveStatus::kConverged);
    EXPECT_TRUE(std::isfinite(r.final_relres));
  } else {
    EXPECT_NE(r.status, SolveStatus::kConverged);
  }
}

TEST(Adversarial, NanRhsThroughEveryKindIsRejectedUpFront) {
  const auto p = small_problem(true);
  const std::size_t n = p.b.size();
  std::vector<double> b(n, 1.0);
  b[n / 2] = kNan;
  std::vector<double> x(n, 0.0);
  for (const auto& spec : bounded_specs("bj")) {
    Session s(borrow_problem(p), SolverSpec::parse(spec));
    const SolveResult r =
        s.solve(std::span<const double>(b), std::span<double>(x));
    SCOPED_TRACE(spec);
    EXPECT_EQ(r.status, SolveStatus::kInvalidInput);
    EXPECT_EQ(r.failure, "non-finite-b");
  }
}

TEST(Adversarial, NanInMatrixThroughEveryKindAndPrecond) {
  // A NaN matrix entry flows into residuals/recurrences; every kind must
  // stop with a defined status inside its budget.  Preconditioner
  // FACTORIZATION must survive too (bounded loops, clamped pivots).
  for (const auto& pk : registry().precond_kinds()) {
    auto a = test::laplace2d(10, 10);
    a.vals[a.vals.size() / 2] = kNan;
    PreparedProblem p;
    p.name = "nan-matrix";
    p.symmetric = true;
    p.a = std::make_shared<MultiPrecMatrix>(std::move(a));  // no scaling: keep the NaN
    p.b.assign(static_cast<std::size_t>(p.a->size()), 1.0);
    for (const auto& spec : bounded_specs(pk)) {
      SolveResult r;
      ASSERT_NO_THROW({
        Session s(borrow_problem(p), SolverSpec::parse(spec));
        r = s.solve();
      }) << spec << " over " << pk;
      expect_defined(r, spec + " over " + pk);
      EXPECT_FALSE(r.converged) << spec << " over " << pk;
    }
  }
}

TEST(Adversarial, ZeroDiagonalUnderJacobiAndIlu) {
  // A zero diagonal entry gives Jacobi a 1/0 and ILU(0)/IC(0) a zero pivot;
  // both must produce a usable (clamped) or honestly-failing solve, never a
  // crash or hang.
  for (const char* pk : {"jacobi", "bj"}) {
    auto a = test::laplace2d(10, 10);
    for (index_t i = a.row_ptr[7]; i < a.row_ptr[8]; ++i)
      if (a.col_idx[static_cast<std::size_t>(i)] == 7)
        a.vals[static_cast<std::size_t>(i)] = 0.0;
    PreparedProblem p;
    p.name = "zero-diag";
    p.symmetric = true;
    p.a = std::make_shared<MultiPrecMatrix>(std::move(a));
    p.b.assign(static_cast<std::size_t>(p.a->size()), 1.0);
    for (const auto& spec : bounded_specs(pk)) {
      SolveResult r;
      ASSERT_NO_THROW({
        Session s(borrow_problem(p), SolverSpec::parse(spec));
        r = s.solve();
      }) << spec << " over " << pk;
      expect_defined(r, spec + " over " + pk);
    }
  }
}

TEST(Adversarial, DegenerateBatchShapesThroughEveryKind) {
  const auto p = small_problem(true);
  const std::size_t n = p.b.size();
  for (const auto& spec : bounded_specs("bj")) {
    Session s(borrow_problem(p), SolverSpec::parse(spec));
    SCOPED_TRACE(spec);
    // k = 0 and k < 0: empty result, no work, no crash.
    std::vector<double> none;
    EXPECT_TRUE(s.solve_many(std::span<const double>(none),
                             std::span<double>(none), 0).empty());
    EXPECT_TRUE(s.solve_many(std::span<const double>(none),
                             std::span<double>(none), -3).empty());
    // Length-0 RHS through the scalar path: rejected, not segfaulted.
    std::vector<double> empty_x;
    const SolveResult r0 = s.solve(std::span<const double>(none),
                                   std::span<double>(empty_x));
    EXPECT_EQ(r0.status, SolveStatus::kInvalidInput);
    EXPECT_EQ(r0.failure, "size-mismatch");
    // Undersized batch storage: k results, all invalid_input.
    std::vector<double> shortB(n, 1.0), shortX(n, 0.0);
    const auto rs = s.solve_many(std::span<const double>(shortB),
                                 std::span<double>(shortX), 2);
    ASSERT_EQ(rs.size(), 2u);
    for (const auto& r : rs) EXPECT_EQ(r.status, SolveStatus::kInvalidInput);
  }
}

TEST(Adversarial, PoisonedColumnRetiresWithoutFreezingTheWave) {
  // One NaN right-hand side in a batched CG wave retires ITS column with a
  // named site while every other column converges normally — the batched
  // guard that keeps one bad tenant from freezing the building.
  const auto p = small_problem(true);
  const std::size_t n = p.b.size();
  const int k = 8;
  for (const char* spec : {"cg;wave=4", "cg;wave=4;masked", "bicgstab;wave=4"}) {
    Session s(borrow_problem(p), SolverSpec::parse(spec));
    auto B = s.make_rhs_batch(k);
    B[3 * n + n / 3] = kNan;
    std::vector<double> X(B.size(), 0.0);
    const auto rs = s.solve_many(std::span<const double>(B), std::span<double>(X), k);
    ASSERT_EQ(rs.size(), static_cast<std::size_t>(k));
    SCOPED_TRACE(spec);
    EXPECT_EQ(rs[3].status, SolveStatus::kNonFinite);
    EXPECT_FALSE(rs[3].failure.empty());
    for (int c = 0; c < k; ++c) {
      if (c != 3) {
        EXPECT_EQ(rs[c].status, SolveStatus::kConverged) << "column " << c;
      }
    }
  }
}

TEST(Adversarial, StagnationGuardStopsEarlyWithItsOwnStatus) {
  // A singular system with an inconsistent right-hand side (1D Neumann
  // laplacian, b with a null-space component) pins the residual at the
  // projection floor — the one stall the recurrence genuinely cannot
  // contract past.  (A merely-unreachable rtol on a regular system is NOT
  // such a stall: the recurrence norm keeps contracting geometrically all
  // the way to underflow and the engine demotes the false convergence
  // claim to kDiverged instead.)  With ";stagnate-window=" the solver
  // names the stall within a handful of iterations; without it the run
  // grinds on until a recurrence scalar degrades into a breakdown, an
  // order of magnitude later.
  const int n = 64;
  CsrMatrix<double> a;
  a.nrows = a.ncols = n;
  a.row_ptr.push_back(0);
  for (int i = 0; i < n; ++i) {
    if (i > 0) { a.col_idx.push_back(i - 1); a.vals.push_back(-1.0); }
    a.col_idx.push_back(i);
    a.vals.push_back((i == 0 || i == n - 1) ? 1.0 : 2.0);
    if (i < n - 1) { a.col_idx.push_back(i + 1); a.vals.push_back(-1.0); }
    a.row_ptr.push_back(static_cast<index_t>(a.col_idx.size()));
  }
  PreparedProblem p;
  p.name = "singular";
  p.symmetric = true;
  p.a = std::make_shared<MultiPrecMatrix>(std::move(a));
  p.b.assign(static_cast<std::size_t>(n), 1.0);
  p.b[3] = 2.0;  // inconsistent: a null-space component survives

  for (const char* kind : {"cg", "bicgstab"}) {
    SCOPED_TRACE(kind);
    Session guarded(borrow_problem(p), SolverSpec::parse(
        std::string(kind) + "/none;rtol=1e-300;max-iters=400;stagnate-window=5"));
    const SolveResult g = guarded.solve();
    EXPECT_EQ(g.status, SolveStatus::kStagnated);
    EXPECT_EQ(g.failure, "rnorm");
    EXPECT_LT(g.iterations, 400);

    Session plain(borrow_problem(p), SolverSpec::parse(
        std::string(kind) + "/none;rtol=1e-300;max-iters=400"));
    const SolveResult m = plain.solve();
    EXPECT_NE(m.status, SolveStatus::kConverged);
    EXPECT_GT(m.iterations, g.iterations);
  }
}

TEST(Adversarial, StagnationGuardAtRestartGranularityForNestedKinds) {
  const auto p = small_problem(true);
  Session s(borrow_problem(p), SolverSpec::parse(
                "f3r@fp16;rtol=1e-300;restarts=30;stagnate-window=2"));
  const SolveResult r = s.solve();
  EXPECT_EQ(r.status, SolveStatus::kStagnated);
  EXPECT_LT(r.restarts, 30);
}

}  // namespace
}  // namespace nk
