// Integration: batched multi-RHS solving (the setup/solve split).
//
// For every solver family and the F3R variants, solve_many(B) must agree
// COLUMN-BY-COLUMN with k independent solve(b) calls — exactly (to the
// bit) for the fp64 paths when the kernels run single-threaded, and to a
// tight tolerance for the fp16-inner-level nestings (whose per-column
// sequences are preserved by construction, but whose true residuals are
// the meaningful comparison).  Also covered: the k = 0 and k = 1 edge
// cases, and SolverWorkspace reuse across two different matrices with
// zero re-allocation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "base/env.hpp"
#include "base/rng.hpp"
#include "core/runner.hpp"
#include "core/variants.hpp"
#include "krylov/bicgstab.hpp"
#include "krylov/cg.hpp"
#include "krylov/fgmres.hpp"
#include "krylov/richardson.hpp"
#include "precond/block_jacobi_ilu0.hpp"
#include "precond/jacobi.hpp"
#include "support/problems.hpp"
#include "support/solver_checks.hpp"

namespace nk {
namespace {

#ifdef _OPENMP
/// The bit-exactness contract between batched and sequential solves holds
/// when the blas1 reductions both paths call run deterministically, i.e.
/// single-threaded; pin one thread for those cases and restore afterwards.
struct SingleThreadGuard {
  int saved = omp_get_max_threads();
  SingleThreadGuard() { omp_set_num_threads(1); }
  ~SingleThreadGuard() { omp_set_num_threads(saved); }
};
#else
struct SingleThreadGuard {};
#endif

/// k RHS at columns of a contiguous block, each a fresh seeded vector.
std::vector<double> make_batch(std::size_t n, int k, std::uint64_t seed0) {
  std::vector<double> B(n * static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c) {
    const auto col = random_vector<double>(n, seed0 + static_cast<std::uint64_t>(c), 0.0, 1.0);
    std::copy(col.begin(), col.end(), B.begin() + static_cast<std::size_t>(c) * n);
  }
  return B;
}

// ---------------------------------------------------------------- flat CG

TEST(BatchedSolve, CgExactColumnAgreement) {
  SingleThreadGuard guard;
  const auto a = test::scaled_laplace2d(24, 24);
  const std::size_t n = static_cast<std::size_t>(a.nrows);
  JacobiPrecond jac(a);
  CgSolver<double>::Config cfg{.rtol = 1e-9, .max_iters = 2000, .record_history = true};

  for (int k : {0, 1, 3, 8}) {
    const auto B = make_batch(n, k, 11);
    std::vector<double> X(n * static_cast<std::size_t>(k), 0.0);

    CsrOperator<double, double> op_b(a);
    auto h_b = jac.make_apply<double>(Prec::FP64);
    CgSolver<double> batched(op_b, *h_b, cfg);
    const auto many = batched.solve_many(B.data(), static_cast<std::ptrdiff_t>(n),
                                         X.data(), static_cast<std::ptrdiff_t>(n), k);
    ASSERT_EQ(many.size(), static_cast<std::size_t>(k));

    for (int c = 0; c < k; ++c) {
      CsrOperator<double, double> op_s(a);
      auto h_s = jac.make_apply<double>(Prec::FP64);
      CgSolver<double> seq(op_s, *h_s, cfg);
      std::vector<double> x(n, 0.0);
      const auto one = seq.solve(
          std::span<const double>(B.data() + static_cast<std::size_t>(c) * n, n),
          std::span<double>(x));
      EXPECT_EQ(many[c].converged, one.converged) << "c=" << c;
      EXPECT_EQ(many[c].iterations, one.iterations) << "c=" << c;
      ASSERT_EQ(many[c].history.size(), one.history.size()) << "c=" << c;
      for (std::size_t t = 0; t < one.history.size(); ++t)
        EXPECT_EQ(many[c].history[t], one.history[t]) << "c=" << c << " t=" << t;
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(X[static_cast<std::size_t>(c) * n + i], x[i]) << "c=" << c << " i=" << i;
    }
  }
}

TEST(BatchedSolve, CgIlu0ExactColumnAgreement) {
  // ILU0's fused apply_many shares the factor sweep — still bit-identical
  // per column to the sequential triangular solves.
  SingleThreadGuard guard;
  const auto a = test::scaled_convdiff2d(20, 0.0);  // SPD (no convection)
  const std::size_t n = static_cast<std::size_t>(a.nrows);
  BlockJacobiIlu0 ilu(a, {.nblocks = 4, .alpha = 1.0});
  CgSolver<double>::Config cfg{.rtol = 1e-9, .max_iters = 2000};
  const int k = 5;
  const auto B = make_batch(n, k, 21);
  std::vector<double> X(n * k, 0.0);

  CsrOperator<double, double> op_b(a);
  auto h_b = ilu.make_apply<double>(Prec::FP64);
  CgSolver<double> batched(op_b, *h_b, cfg);
  const auto many = batched.solve_many(B.data(), static_cast<std::ptrdiff_t>(n), X.data(),
                                       static_cast<std::ptrdiff_t>(n), k);
  for (int c = 0; c < k; ++c) {
    CsrOperator<double, double> op_s(a);
    auto h_s = ilu.make_apply<double>(Prec::FP64);
    CgSolver<double> seq(op_s, *h_s, cfg);
    std::vector<double> x(n, 0.0);
    const auto one =
        seq.solve(std::span<const double>(B.data() + static_cast<std::size_t>(c) * n, n),
                  std::span<double>(x));
    EXPECT_EQ(many[c].iterations, one.iterations) << "c=" << c;
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(X[static_cast<std::size_t>(c) * n + i], x[i]) << "c=" << c << " i=" << i;
  }
}

// ------------------------------------------------------------- BiCGStab

TEST(BatchedSolve, BicgstabExactColumnAgreement) {
  SingleThreadGuard guard;
  const auto a = test::scaled_convdiff2d(20, 15.0);
  const std::size_t n = static_cast<std::size_t>(a.nrows);
  BlockJacobiIlu0 ilu(a, {.nblocks = 4, .alpha = 1.0});
  BiCgStabSolver<double>::Config cfg{.rtol = 1e-9, .max_iters = 2000, .record_history = true};

  for (int k : {1, 4}) {
    const auto B = make_batch(n, k, 31);
    std::vector<double> X(n * static_cast<std::size_t>(k), 0.0);
    CsrOperator<double, double> op_b(a);
    auto h_b = ilu.make_apply<double>(Prec::FP64);
    BiCgStabSolver<double> batched(op_b, *h_b, cfg);
    const auto many = batched.solve_many(B.data(), static_cast<std::ptrdiff_t>(n),
                                         X.data(), static_cast<std::ptrdiff_t>(n), k);
    for (int c = 0; c < k; ++c) {
      CsrOperator<double, double> op_s(a);
      auto h_s = ilu.make_apply<double>(Prec::FP64);
      BiCgStabSolver<double> seq(op_s, *h_s, cfg);
      std::vector<double> x(n, 0.0);
      const auto one =
          seq.solve(std::span<const double>(B.data() + static_cast<std::size_t>(c) * n, n),
                    std::span<double>(x));
      EXPECT_EQ(many[c].converged, one.converged) << "c=" << c;
      EXPECT_EQ(many[c].iterations, one.iterations) << "c=" << c;
      ASSERT_EQ(many[c].history.size(), one.history.size()) << "c=" << c;
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(X[static_cast<std::size_t>(c) * n + i], x[i]) << "c=" << c << " i=" << i;
    }
  }
}

// --------------------------------------------------------------- FGMRES

TEST(BatchedSolve, FgmresRunManyExactColumnAgreement) {
  SingleThreadGuard guard;
  const auto a = test::scaled_convdiff2d(18, 10.0);
  const std::size_t n = static_cast<std::size_t>(a.nrows);
  JacobiPrecond jac(a);

  for (int k : {0, 1, 4}) {
    const auto B = make_batch(n, k, 41);
    std::vector<double> X(n * static_cast<std::size_t>(k), 0.0);
    CsrOperator<double, double> op_b(a);
    auto h_b = jac.make_apply<double>(Prec::FP64);
    FgmresSolver<double> batched(op_b, *h_b, {.m = 40});
    // Absolute target chosen so some columns stop early and freeze while
    // the rest keep iterating (exercises the per-column masking).
    const auto many = batched.run_many(B.data(), static_cast<std::ptrdiff_t>(n), X.data(),
                                       static_cast<std::ptrdiff_t>(n), k, 1e-6,
                                       /*x_nonzero=*/false);
    ASSERT_EQ(many.size(), static_cast<std::size_t>(k));
    for (int c = 0; c < k; ++c) {
      CsrOperator<double, double> op_s(a);
      auto h_s = jac.make_apply<double>(Prec::FP64);
      FgmresSolver<double> seq(op_s, *h_s, {.m = 40});
      std::vector<double> x(n, 0.0);
      const auto one =
          seq.run(std::span<const double>(B.data() + static_cast<std::size_t>(c) * n, n),
                  std::span<double>(x), 1e-6, /*x_nonzero=*/false);
      EXPECT_EQ(many[c].iters, one.iters) << "c=" << c;
      EXPECT_EQ(many[c].reached_target, one.reached_target) << "c=" << c;
      EXPECT_EQ(many[c].residual_est, one.residual_est) << "c=" << c;
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(X[static_cast<std::size_t>(c) * n + i], x[i]) << "c=" << c << " i=" << i;
    }
  }
}

// ------------------------------------------------------------ Richardson

TEST(BatchedSolve, RichardsonApplyManyPreservesInvocationOrder) {
  SingleThreadGuard guard;
  const auto a = test::scaled_laplace2d(16, 16);
  const std::size_t n = static_cast<std::size_t>(a.nrows);
  JacobiPrecond jac(a);
  RichardsonSolver<double>::Config cfg{.m = 2, .cycle = 3, .adaptive = true};
  const int k = 7;  // crosses a weight-update invocation mid-batch
  const auto R = make_batch(n, k, 51);
  std::vector<double> Zb(n * k, 0.0);

  CsrOperator<double, double> op_b(a);
  auto h_b = jac.make_apply<double>(Prec::FP64);
  RichardsonSolver<double> batched(op_b, *h_b, cfg);
  batched.apply_many(R.data(), static_cast<std::ptrdiff_t>(n), Zb.data(),
                     static_cast<std::ptrdiff_t>(n), k);

  CsrOperator<double, double> op_s(a);
  auto h_s = jac.make_apply<double>(Prec::FP64);
  RichardsonSolver<double> seq(op_s, *h_s, cfg);
  for (int c = 0; c < k; ++c) {
    std::vector<double> z(n, 0.0);
    seq.apply(std::span<const double>(R.data() + static_cast<std::size_t>(c) * n, n),
              std::span<double>(z));
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(Zb[static_cast<std::size_t>(c) * n + i], z[i]) << "c=" << c << " i=" << i;
  }
  EXPECT_EQ(batched.invocations(), seq.invocations());
  EXPECT_EQ(batched.weight_updates(), seq.weight_updates());
  ASSERT_EQ(batched.weights().size(), seq.weights().size());
  for (std::size_t t = 0; t < seq.weights().size(); ++t)
    EXPECT_EQ(batched.weights()[t], seq.weights()[t]);
}

// -------------------------------------------------------- nested (F3R)

TEST(BatchedSolve, NestedF3rFp64ExactColumnAgreement) {
  SingleThreadGuard guard;
  auto p = prepare_standin("hpcg_4_4_4", 1);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 4);
  const std::size_t n = p.b.size();
  const int k = 3;
  const auto B = make_batch(n, k, 61);
  std::vector<double> X(n * k, 0.0);
  const auto term = f3r_termination(1e-8);

  SolverWorkspace ws;
  NestedSolver batched(p.a, m, f3r_config(Prec::FP64), &ws);
  const auto many = batched.solve_many(B.data(), static_cast<std::ptrdiff_t>(n), X.data(),
                                       static_cast<std::ptrdiff_t>(n), k, term);

  NestedSolver seq(p.a, m, f3r_config(Prec::FP64));
  for (int c = 0; c < k; ++c) {
    std::vector<double> x(n, 0.0);
    const auto one =
        seq.solve(std::span<const double>(B.data() + static_cast<std::size_t>(c) * n, n),
                  std::span<double>(x), term);
    EXPECT_EQ(many[c].converged, one.converged) << "c=" << c;
    EXPECT_EQ(many[c].iterations, one.iterations) << "c=" << c;
    EXPECT_EQ(many[c].final_relres, one.final_relres) << "c=" << c;
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(X[static_cast<std::size_t>(c) * n + i], x[i]) << "c=" << c << " i=" << i;
  }
  // Fresh sequential tuple ⇒ same adaptive-state trajectory ⇒ identical
  // Richardson weights afterwards.
  const auto wb = batched.richardson_weights();
  const auto wsq = seq.richardson_weights();
  ASSERT_EQ(wb.size(), wsq.size());
  for (std::size_t t = 0; t < wb.size(); ++t) EXPECT_EQ(wb[t], wsq[t]);
}

TEST(BatchedSolve, F3rVariantsConvergePerColumn) {
  // fp32/fp16 nestings: per-column sequences are preserved by
  // construction; assert the meaningful contract — every column of the
  // batch converges to the same tolerance its sequential counterpart does.
  auto p = prepare_standin("hpcg_4_4_4", 1);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 4);
  const std::size_t n = p.b.size();
  const int k = 3;
  const auto B = batch_rhs(p, k);
  std::vector<double> X(n * k, 0.0);

  for (const Prec lowest : {Prec::FP32, Prec::FP16}) {
    std::fill(X.begin(), X.end(), 0.0);
    const auto many = run_nested_many(p, m, f3r_config(lowest),
                                      std::span<const double>(B), std::span<double>(X), k);
    for (int c = 0; c < k; ++c) {
      EXPECT_TRUE(test::converged(many[c])) << f3r_name(lowest) << " c=" << c;
      EXPECT_LT(many[c].final_relres, 1.5e-8) << f3r_name(lowest) << " c=" << c;
    }
  }
  // Table 4 ablation variants, k = 2 (they share the same machinery).
  for (const auto& name : variant_names()) {
    std::fill(X.begin(), X.end(), 0.0);
    const auto many = run_nested_many(p, m, variant_config(name),
                                      std::span<const double>(B), std::span<double>(X), 2);
    for (int c = 0; c < 2; ++c) {
      EXPECT_TRUE(test::converged(many[c])) << name << " c=" << c;
      EXPECT_LT(many[c].final_relres, 1.5e-8) << name << " c=" << c;
    }
  }
}

// ------------------------------------------- active-set compaction edges
//
// The compaction edge cases ride on eigen-engineered right-hand sides:
// the scaled 2-D Laplacian's eigenvectors are product sines, and a RHS
// spanning s eigenvectors with distinct eigenvalues exhausts its Krylov
// space after exactly s steps, so the column converges at iteration s —
// which lets tests place retirements (and hence compactions) at exact
// iterations and dispatch-width boundaries.

/// RHS spanning the (p,p) grid modes for p in `ps` (distinct eigenvalues).
std::vector<double> mode_rhs(index_t nx, index_t ny, const std::vector<int>& ps) {
  std::vector<double> b(static_cast<std::size_t>(nx) * ny, 0.0);
  for (int p : ps)
    for (index_t y = 0; y < ny; ++y)
      for (index_t x = 0; x < nx; ++x)
        b[static_cast<std::size_t>(y) * nx + x] +=
            std::sin(M_PI * p * (x + 1.0) / (nx + 1)) *
            std::sin(M_PI * p * (y + 1.0) / (ny + 1));
  return b;
}

/// First s mode indices {1..s}.
std::vector<int> first_modes(int s) {
  std::vector<int> ps(static_cast<std::size_t>(s));
  for (int p = 1; p <= s; ++p) ps[static_cast<std::size_t>(p - 1)] = p;
  return ps;
}

/// Batch matrix whose column c spans `counts[c]` modes (0 = random RHS).
std::vector<double> staggered_batch(index_t nx, index_t ny, const std::vector<int>& counts,
                                    std::uint64_t seed0) {
  const std::size_t n = static_cast<std::size_t>(nx) * ny;
  std::vector<double> B(n * counts.size());
  for (std::size_t c = 0; c < counts.size(); ++c) {
    const auto col = counts[c] > 0
                         ? mode_rhs(nx, ny, first_modes(counts[c]))
                         : random_vector<double>(n, seed0 + c, 0.0, 1.0);
    std::copy(col.begin(), col.end(), B.begin() + c * n);
  }
  return B;
}

/// Run compact (at `wave`), masked, and sequential CG on the same batch and
/// assert bit-identical iterates, iteration counts, and histories.
void check_cg_compact_vs_masked_vs_seq(const CsrMatrix<double>& a,
                                       const std::vector<double>& B, int k, int wave,
                                       CgSolver<double>::Config cfg) {
  SingleThreadGuard guard;
  const std::size_t n = static_cast<std::size_t>(a.nrows);
  JacobiPrecond jac(a);
  cfg.record_history = true;

  cfg.compact = true;
  std::vector<double> Xc(n * static_cast<std::size_t>(k), 0.0);
  CsrOperator<double, double> op_c(a);
  auto h_c = jac.make_apply<double>(Prec::FP64);
  CgSolver<double> compact(op_c, *h_c, cfg);
  const auto many_c = compact.solve_many(B.data(), static_cast<std::ptrdiff_t>(n),
                                         Xc.data(), static_cast<std::ptrdiff_t>(n), k, wave);

  cfg.compact = false;
  std::vector<double> Xm(n * static_cast<std::size_t>(k), 0.0);
  CsrOperator<double, double> op_m(a);
  auto h_m = jac.make_apply<double>(Prec::FP64);
  CgSolver<double> masked(op_m, *h_m, cfg);
  const auto many_m = masked.solve_many(B.data(), static_cast<std::ptrdiff_t>(n),
                                        Xm.data(), static_cast<std::ptrdiff_t>(n), k);

  for (int c = 0; c < k; ++c) {
    CsrOperator<double, double> op_s(a);
    auto h_s = jac.make_apply<double>(Prec::FP64);
    cfg.compact = true;  // irrelevant for solve(); keep cfg identical otherwise
    CgSolver<double> seq(op_s, *h_s, cfg);
    std::vector<double> x(n, 0.0);
    const auto one = seq.solve(
        std::span<const double>(B.data() + static_cast<std::size_t>(c) * n, n),
        std::span<double>(x));
    EXPECT_EQ(many_c[c].converged, one.converged) << "c=" << c;
    EXPECT_EQ(many_c[c].iterations, one.iterations) << "c=" << c;
    EXPECT_EQ(many_m[c].iterations, one.iterations) << "c=" << c;
    ASSERT_EQ(many_c[c].history.size(), one.history.size()) << "c=" << c;
    for (std::size_t t = 0; t < one.history.size(); ++t)
      ASSERT_EQ(many_c[c].history[t], one.history[t]) << "c=" << c << " t=" << t;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(Xc[static_cast<std::size_t>(c) * n + i], x[i]) << "c=" << c << " i=" << i;
      ASSERT_EQ(Xm[static_cast<std::size_t>(c) * n + i], x[i]) << "c=" << c << " i=" << i;
    }
  }
}

TEST(BatchedCompaction, AllColumnsRetireAtIterationOne) {
  // Every column is a single eigenvector: the whole batch converges at
  // iteration 1 and the active set empties in one compaction burst.
  const auto a = test::scaled_laplace2d(20, 20);
  std::vector<int> counts(5);
  for (int c = 0; c < 5; ++c) counts[c] = 1;
  const auto B = staggered_batch(20, 20, counts, 101);
  check_cg_compact_vs_masked_vs_seq(a, B, 5, 0, {.rtol = 1e-9, .max_iters = 100});
}

TEST(BatchedCompaction, AllColumnsConvergedAtInit) {
  // b = 0 columns converge before the loop (iteration 0): the compact path
  // must return without ever dispatching a kernel.
  SingleThreadGuard guard;
  const auto a = test::scaled_laplace2d(12, 12);
  const std::size_t n = static_cast<std::size_t>(a.nrows);
  const int k = 3;
  std::vector<double> B(n * k, 0.0), X(n * k, 0.0);
  JacobiPrecond jac(a);
  CsrOperator<double, double> op(a);
  auto h = jac.make_apply<double>(Prec::FP64);
  CgSolver<double> s(op, *h, {.rtol = 1e-9, .max_iters = 100});
  const auto many = s.solve_many(B.data(), static_cast<std::ptrdiff_t>(n), X.data(),
                                 static_cast<std::ptrdiff_t>(n), k);
  for (int c = 0; c < k; ++c) {
    EXPECT_TRUE(many[c].converged) << "c=" << c;
    EXPECT_EQ(many[c].iterations, 0) << "c=" << c;
  }
  EXPECT_EQ(op.spmv_count(), static_cast<std::uint64_t>(k));  // k init residuals only
}

TEST(BatchedCompaction, OneStraggler) {
  // Seven columns retire immediately; one random column keeps iterating
  // alone — the tail runs at width 1 through the compacted panels.
  const auto a = test::scaled_laplace2d(20, 20);
  std::vector<int> counts(8, 1);
  counts[3] = 0;  // random RHS straggler (mid-batch, so the map is exercised)
  const auto B = staggered_batch(20, 20, counts, 111);
  check_cg_compact_vs_masked_vs_seq(a, B, 8, 0, {.rtol = 1e-9, .max_iters = 2000});
}

TEST(BatchedCompaction, RetireExactlyAtDispatchBoundary) {
  // 16 columns, half spanning 2 modes: at iteration 2 exactly eight
  // columns retire together and the live width crosses the 16 → 8
  // compile-time dispatch tier in one step.
  const auto a = test::scaled_laplace2d(20, 20);
  std::vector<int> counts(16);
  for (int c = 0; c < 16; ++c) counts[c] = (c % 2 == 0) ? 2 : 6;
  const auto B = staggered_batch(20, 20, counts, 121);
  check_cg_compact_vs_masked_vs_seq(a, B, 16, 0, {.rtol = 1e-9, .max_iters = 200});
}

TEST(BatchedCompaction, RaggedWavesMatchSequential) {
  // 9 columns of mixed difficulty through 4-wide waves: retiring columns
  // hand their slots to pending ones mid-flight.  Also the degenerate
  // wave = 1 (fully sequential scheduling through the batched code path)
  // and wave > k (plain lockstep).
  const auto a = test::scaled_laplace2d(20, 20);
  const std::vector<int> counts = {1, 0, 3, 1, 0, 5, 2, 0, 4};
  const auto B = staggered_batch(20, 20, counts, 131);
  for (int wave : {4, 1, 16})
    check_cg_compact_vs_masked_vs_seq(a, B, 9, wave, {.rtol = 1e-9, .max_iters = 2000});
}

TEST(BatchedCompaction, MaxItersRetirementRefillsWave) {
  // Columns that exhaust the iteration budget unconverged must retire and
  // hand their wave slot to pending columns, with iteration counts intact.
  SingleThreadGuard guard;
  const auto a = test::scaled_laplace2d(20, 20);
  const std::size_t n = static_cast<std::size_t>(a.nrows);
  const int k = 5;
  const auto B = staggered_batch(20, 20, {0, 1, 0, 1, 0}, 141);
  JacobiPrecond jac(a);
  CgSolver<double>::Config cfg{.rtol = 1e-12, .max_iters = 7};  // unreachable target

  std::vector<double> Xb(n * k, 0.0);
  CsrOperator<double, double> op_b(a);
  auto h_b = jac.make_apply<double>(Prec::FP64);
  CgSolver<double> batched(op_b, *h_b, cfg);
  const auto many = batched.solve_many(B.data(), static_cast<std::ptrdiff_t>(n), Xb.data(),
                                       static_cast<std::ptrdiff_t>(n), k, /*wave=*/2);
  for (int c = 0; c < k; ++c) {
    CsrOperator<double, double> op_s(a);
    auto h_s = jac.make_apply<double>(Prec::FP64);
    CgSolver<double> seq(op_s, *h_s, cfg);
    std::vector<double> x(n, 0.0);
    const auto one = seq.solve(
        std::span<const double>(B.data() + static_cast<std::size_t>(c) * n, n),
        std::span<double>(x));
    EXPECT_EQ(many[c].converged, one.converged) << "c=" << c;
    EXPECT_EQ(many[c].iterations, one.iterations) << "c=" << c;
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(Xb[static_cast<std::size_t>(c) * n + i], x[i]) << "c=" << c << " i=" << i;
  }
}

TEST(BatchedCompaction, BicgstabCompactMatchesMaskedAndSequential) {
  SingleThreadGuard guard;
  const auto a = test::scaled_laplace2d(20, 20);
  const std::size_t n = static_cast<std::size_t>(a.nrows);
  const int k = 6;
  const auto B = staggered_batch(20, 20, {1, 0, 2, 1, 0, 4}, 151);
  BlockJacobiIlu0 ilu(a, {.nblocks = 4, .alpha = 1.0});
  BiCgStabSolver<double>::Config cfg{.rtol = 1e-9, .max_iters = 2000, .record_history = true};

  for (int wave : {0, 3}) {
    cfg.compact = true;
    std::vector<double> Xc(n * k, 0.0);
    CsrOperator<double, double> op_c(a);
    auto h_c = ilu.make_apply<double>(Prec::FP64);
    BiCgStabSolver<double> compact(op_c, *h_c, cfg);
    const auto many_c = compact.solve_many(B.data(), static_cast<std::ptrdiff_t>(n),
                                           Xc.data(), static_cast<std::ptrdiff_t>(n), k, wave);

    cfg.compact = false;
    std::vector<double> Xm(n * k, 0.0);
    CsrOperator<double, double> op_m(a);
    auto h_m = ilu.make_apply<double>(Prec::FP64);
    BiCgStabSolver<double> masked(op_m, *h_m, cfg);
    const auto many_m = masked.solve_many(B.data(), static_cast<std::ptrdiff_t>(n),
                                          Xm.data(), static_cast<std::ptrdiff_t>(n), k);

    for (int c = 0; c < k; ++c) {
      CsrOperator<double, double> op_s(a);
      auto h_s = ilu.make_apply<double>(Prec::FP64);
      BiCgStabSolver<double> seq(op_s, *h_s, cfg);
      std::vector<double> x(n, 0.0);
      const auto one = seq.solve(
          std::span<const double>(B.data() + static_cast<std::size_t>(c) * n, n),
          std::span<double>(x));
      EXPECT_EQ(many_c[c].converged, one.converged) << "wave=" << wave << " c=" << c;
      EXPECT_EQ(many_c[c].iterations, one.iterations) << "wave=" << wave << " c=" << c;
      EXPECT_EQ(many_m[c].iterations, one.iterations) << "wave=" << wave << " c=" << c;
      ASSERT_EQ(many_c[c].history.size(), one.history.size()) << "wave=" << wave << " c=" << c;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(Xc[static_cast<std::size_t>(c) * n + i], x[i])
            << "wave=" << wave << " c=" << c << " i=" << i;
        ASSERT_EQ(Xm[static_cast<std::size_t>(c) * n + i], x[i])
            << "wave=" << wave << " c=" << c << " i=" << i;
      }
    }
  }
}

TEST(BatchedCompaction, FgmresCompactMatchesMaskedAndRun) {
  // Columns spanning few eigenvectors break down (hit their Krylov degree)
  // at staggered steps within one cycle; the compact path must gather the
  // survivors and still reproduce run()'s per-column data exactly.
  SingleThreadGuard guard;
  const auto a = test::scaled_laplace2d(18, 18);
  const std::size_t n = static_cast<std::size_t>(a.nrows);
  const int k = 6;
  const auto B = staggered_batch(18, 18, {2, 0, 4, 8, 0, 3}, 161);
  JacobiPrecond jac(a);

  FgmresSolver<double>::Config cfg{.m = 30};
  cfg.compact = true;
  std::vector<double> Xc(n * k, 0.0);
  CsrOperator<double, double> op_c(a);
  auto h_c = jac.make_apply<double>(Prec::FP64);
  FgmresSolver<double> compact(op_c, *h_c, cfg);
  const auto many_c = compact.run_many(B.data(), static_cast<std::ptrdiff_t>(n), Xc.data(),
                                       static_cast<std::ptrdiff_t>(n), k, 1e-8,
                                       /*x_nonzero=*/false);

  cfg.compact = false;
  std::vector<double> Xm(n * k, 0.0);
  CsrOperator<double, double> op_m(a);
  auto h_m = jac.make_apply<double>(Prec::FP64);
  FgmresSolver<double> masked(op_m, *h_m, cfg);
  const auto many_m = masked.run_many(B.data(), static_cast<std::ptrdiff_t>(n), Xm.data(),
                                      static_cast<std::ptrdiff_t>(n), k, 1e-8,
                                      /*x_nonzero=*/false);

  bool staggered = false;
  for (int c = 1; c < k; ++c) staggered = staggered || many_c[c].iters != many_c[0].iters;
  EXPECT_TRUE(staggered) << "test needs columns retiring at different steps";

  for (int c = 0; c < k; ++c) {
    CsrOperator<double, double> op_s(a);
    auto h_s = jac.make_apply<double>(Prec::FP64);
    FgmresSolver<double> seq(op_s, *h_s, {.m = 30});
    std::vector<double> x(n, 0.0);
    const auto one =
        seq.run(std::span<const double>(B.data() + static_cast<std::size_t>(c) * n, n),
                std::span<double>(x), 1e-8, /*x_nonzero=*/false);
    EXPECT_EQ(many_c[c].iters, one.iters) << "c=" << c;
    EXPECT_EQ(many_m[c].iters, one.iters) << "c=" << c;
    EXPECT_EQ(many_c[c].reached_target, one.reached_target) << "c=" << c;
    EXPECT_EQ(many_c[c].residual_est, one.residual_est) << "c=" << c;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(Xc[static_cast<std::size_t>(c) * n + i], x[i]) << "c=" << c << " i=" << i;
      ASSERT_EQ(Xm[static_cast<std::size_t>(c) * n + i], x[i]) << "c=" << c << " i=" << i;
    }
  }
}

// ------------------------------------------- survivor-panel layouts
//
// layout=colmajor changes only the ADDRESSING of the batched panels; the
// per-column accumulation order is preserved, so whole solves must be
// bit-identical to the row-major default.  The CG/BiCGStab cases carry no
// SingleThreadGuard on purpose: every reduction on their solve_many paths
// goes through dot_cols (deliberately serial) and every update is
// element-local, so the identity must hold at any thread count — the
// forced-team re-run exercises exactly that.  FGMRES is the exception:
// its per-column CGS runs blas::dot_many / blas::nrm2, whose OpenMP
// `reduction` combine order is unspecified with a real team, so run_many
// is only bit-reproducible single-threaded (same caveat as every exact
// batched-vs-sequential test above) — that case pins one thread.

TEST(BatchedLayout, CgColMajorBitIdenticalToRowMajor) {
  const auto a = test::scaled_laplace2d(20, 20);
  const std::size_t n = static_cast<std::size_t>(a.nrows);
  const int k = 9;
  const auto B = staggered_batch(20, 20, {1, 0, 3, 1, 0, 5, 2, 0, 4}, 171);
  JacobiPrecond jac(a);
  CgSolver<double>::Config cfg{.rtol = 1e-9, .max_iters = 2000, .record_history = true};
  cfg.compact = true;

  std::vector<std::vector<double>> X;
  std::vector<std::vector<SolveResult>> R;
  for (PanelLayout lay : {PanelLayout::kRowMajor, PanelLayout::kColMajor}) {
    cfg.layout = lay;
    X.emplace_back(n * static_cast<std::size_t>(k), 0.0);
    CsrOperator<double, double> op(a);
    auto h = jac.make_apply<double>(Prec::FP64);
    CgSolver<double> s(op, *h, cfg);
    R.push_back(s.solve_many(B.data(), static_cast<std::ptrdiff_t>(n), X.back().data(),
                             static_cast<std::ptrdiff_t>(n), k, /*wave=*/4));
  }
  for (int c = 0; c < k; ++c) {
    EXPECT_EQ(R[1][c].converged, R[0][c].converged) << "c=" << c;
    EXPECT_EQ(R[1][c].iterations, R[0][c].iterations) << "c=" << c;
    ASSERT_EQ(R[1][c].history.size(), R[0][c].history.size()) << "c=" << c;
    for (std::size_t t = 0; t < R[0][c].history.size(); ++t)
      ASSERT_EQ(R[1][c].history[t], R[0][c].history[t]) << "c=" << c << " t=" << t;
  }
  for (std::size_t i = 0; i < X[0].size(); ++i) ASSERT_EQ(X[1][i], X[0][i]) << i;
}

TEST(BatchedLayout, BicgstabColMajorBitIdenticalToRowMajor) {
  const auto a = test::scaled_convdiff2d(20, 15.0);
  const std::size_t n = static_cast<std::size_t>(a.nrows);
  const int k = 5;
  const auto B = make_batch(n, k, 181);
  BlockJacobiIlu0 ilu(a, {.nblocks = 4, .alpha = 1.0});
  BiCgStabSolver<double>::Config cfg{.rtol = 1e-9, .max_iters = 2000,
                                     .record_history = true};
  cfg.compact = true;

  std::vector<std::vector<double>> X;
  std::vector<std::vector<SolveResult>> R;
  for (PanelLayout lay : {PanelLayout::kRowMajor, PanelLayout::kColMajor}) {
    cfg.layout = lay;
    X.emplace_back(n * static_cast<std::size_t>(k), 0.0);
    CsrOperator<double, double> op(a);
    auto h = ilu.make_apply<double>(Prec::FP64);
    BiCgStabSolver<double> s(op, *h, cfg);
    R.push_back(s.solve_many(B.data(), static_cast<std::ptrdiff_t>(n), X.back().data(),
                             static_cast<std::ptrdiff_t>(n), k));
  }
  for (int c = 0; c < k; ++c) {
    EXPECT_EQ(R[1][c].converged, R[0][c].converged) << "c=" << c;
    EXPECT_EQ(R[1][c].iterations, R[0][c].iterations) << "c=" << c;
    ASSERT_EQ(R[1][c].history.size(), R[0][c].history.size()) << "c=" << c;
    for (std::size_t t = 0; t < R[0][c].history.size(); ++t)
      ASSERT_EQ(R[1][c].history[t], R[0][c].history[t]) << "c=" << c << " t=" << t;
  }
  for (std::size_t i = 0; i < X[0].size(); ++i) ASSERT_EQ(X[1][i], X[0][i]) << i;
}

TEST(BatchedLayout, FgmresColMajorBitIdenticalToRowMajor) {
  SingleThreadGuard guard;  // CGS reductions reassociate under a team
  const auto a = test::scaled_laplace2d(18, 18);
  const std::size_t n = static_cast<std::size_t>(a.nrows);
  const int k = 6;
  const auto B = staggered_batch(18, 18, {2, 0, 4, 8, 0, 3}, 191);
  JacobiPrecond jac(a);

  std::vector<std::vector<double>> X;
  std::vector<std::vector<FgmresSolver<double>::RunStats>> R;
  for (PanelLayout lay : {PanelLayout::kRowMajor, PanelLayout::kColMajor}) {
    FgmresSolver<double>::Config cfg{.m = 30};
    cfg.compact = true;
    cfg.layout = lay;
    X.emplace_back(n * static_cast<std::size_t>(k), 0.0);
    CsrOperator<double, double> op(a);
    auto h = jac.make_apply<double>(Prec::FP64);
    FgmresSolver<double> s(op, *h, cfg);
    R.push_back(s.run_many(B.data(), static_cast<std::ptrdiff_t>(n), X.back().data(),
                           static_cast<std::ptrdiff_t>(n), k, 1e-8,
                           /*x_nonzero=*/false));
  }
  for (int c = 0; c < k; ++c) {
    EXPECT_EQ(R[1][c].iters, R[0][c].iters) << "c=" << c;
    EXPECT_EQ(R[1][c].reached_target, R[0][c].reached_target) << "c=" << c;
    EXPECT_EQ(R[1][c].residual_est, R[0][c].residual_est) << "c=" << c;
  }
  for (std::size_t i = 0; i < X[0].size(); ++i) ASSERT_EQ(X[1][i], X[0][i]) << i;
}

TEST(BatchedLayout, WorkspaceDefaultAppliesWhenConfigUnset) {
  // cfg.layout unset → the workspace's panel_layout() decides; setting it
  // to colmajor must reproduce the explicit cfg.layout=colmajor solve.
  const auto a = test::scaled_laplace2d(16, 16);
  const std::size_t n = static_cast<std::size_t>(a.nrows);
  const int k = 4;
  const auto B = make_batch(n, k, 201);
  JacobiPrecond jac(a);
  CgSolver<double>::Config cfg{.rtol = 1e-9, .max_iters = 1000};
  cfg.compact = true;

  std::vector<double> Xw(n * k, 0.0), Xe(n * k, 0.0);
  {
    CsrOperator<double, double> op(a);
    auto h = jac.make_apply<double>(Prec::FP64);
    SolverWorkspace ws;
    ws.set_panel_layout(PanelLayout::kColMajor);
    CgSolver<double> s(cfg, &ws, "cg");
    s.setup(op, *h);
    s.solve_many(B.data(), static_cast<std::ptrdiff_t>(n), Xw.data(),
                 static_cast<std::ptrdiff_t>(n), k);
  }
  {
    CsrOperator<double, double> op(a);
    auto h = jac.make_apply<double>(Prec::FP64);
    auto cfg2 = cfg;
    cfg2.layout = PanelLayout::kColMajor;
    CgSolver<double> s(op, *h, cfg2);
    s.solve_many(B.data(), static_cast<std::ptrdiff_t>(n), Xe.data(),
                 static_cast<std::ptrdiff_t>(n), k);
  }
  for (std::size_t i = 0; i < Xw.size(); ++i) ASSERT_EQ(Xw[i], Xe[i]) << i;
}

// ------------------------------------------------- workspace lifecycle

TEST(BatchedSolve, WorkspaceReuseAcrossTwoMatricesNoRealloc) {
  SingleThreadGuard guard;
  // Two different matrices of the same size: the second tuple build +
  // batched solve must not grow the shared workspace at all.
  auto p1 = prepare_standin("hpcg_4_4_4", 1);
  auto p2 = prepare_standin("hpgmp_4_4_4", 1);
  ASSERT_EQ(p1.b.size(), p2.b.size());
  auto m1 = make_primary(p1, PrecondKind::BlockJacobiIluIc, 4);
  auto m2 = make_primary(p2, PrecondKind::BlockJacobiIluIc, 4);
  const std::size_t n = p1.b.size();
  const int k = 2;
  const auto B = batch_rhs(p1, k);
  std::vector<double> X(n * k, 0.0);
  const auto term = f3r_termination(1e-8);

  SolverWorkspace ws;
  {
    NestedSolver s1(p1.a, m1, f3r_config(Prec::FP16), &ws);
    auto r1 = s1.solve_many(B.data(), static_cast<std::ptrdiff_t>(n), X.data(),
                            static_cast<std::ptrdiff_t>(n), k, term);
    for (const auto& r : r1) EXPECT_TRUE(test::converged(r));
  }
  const auto allocs_after_first = ws.allocations();
  const auto bytes_after_first = ws.bytes();
  EXPECT_GT(allocs_after_first, 0u);

  {
    std::fill(X.begin(), X.end(), 0.0);
    NestedSolver s2(p2.a, m2, f3r_config(Prec::FP16), &ws);
    auto r2 = s2.solve_many(B.data(), static_cast<std::ptrdiff_t>(n), X.data(),
                            static_cast<std::ptrdiff_t>(n), k, term);
    for (const auto& r : r2) EXPECT_TRUE(test::converged(r));
  }
  EXPECT_EQ(ws.allocations(), allocs_after_first)
      << "second same-shape tuple build re-allocated workspace memory";
  EXPECT_EQ(ws.bytes(), bytes_after_first);
}

TEST(BatchedSolve, RepeatedSolveManyZeroAllocation) {
  SingleThreadGuard guard;
  const auto a = test::scaled_laplace2d(20, 20);
  const std::size_t n = static_cast<std::size_t>(a.nrows);
  JacobiPrecond jac(a);
  CsrOperator<double, double> op(a);
  auto h = jac.make_apply<double>(Prec::FP64);
  SolverWorkspace ws;
  CgSolver<double> solver({.rtol = 1e-8, .max_iters = 500}, &ws, "cg");
  solver.setup(op, *h);

  const int k = 4;
  const auto B = make_batch(n, k, 71);
  std::vector<double> X(n * k, 0.0);
  solver.solve_many(B.data(), static_cast<std::ptrdiff_t>(n), X.data(),
                    static_cast<std::ptrdiff_t>(n), k);
  const auto allocs = ws.allocations();
  std::fill(X.begin(), X.end(), 0.0);
  solver.solve_many(B.data(), static_cast<std::ptrdiff_t>(n), X.data(),
                    static_cast<std::ptrdiff_t>(n), k);
  EXPECT_EQ(ws.allocations(), allocs) << "second solve_many allocated workspace memory";
  // A smaller batch must also reuse the k=4 slabs.
  solver.solve_many(B.data(), static_cast<std::ptrdiff_t>(n), X.data(),
                    static_cast<std::ptrdiff_t>(n), 2);
  EXPECT_EQ(ws.allocations(), allocs);
}

}  // namespace
}  // namespace nk
