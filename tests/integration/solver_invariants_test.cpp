// Cross-cutting solver invariants, swept over precision configurations and
// preconditioner block counts:
//
//   * determinism — identical runs produce bit-identical iteration counts
//     and solutions (everything in the library is seeded);
//   * block-count robustness — block-Jacobi quality degrades gracefully as
//     blocks shrink, and F3R converges for every partition;
//   * solution agreement — different solver families land on the same x
//     (not just the same residual norm);
//   * restart consistency — an F3R solve interrupted by small m1 and
//     restarted reaches the same accuracy as a single large cycle.
#include <gtest/gtest.h>

#include <tuple>

#include "nkrylov.hpp"
#include "support/solver_checks.hpp"

namespace nk {
namespace {

class BlockSweep : public ::testing::TestWithParam<int> {};

TEST_P(BlockSweep, F3rConvergesForEveryPartition) {
  const int nblocks = GetParam();
  auto p = prepare_standin("hpcg_4_4_4", 1);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, nblocks);
  const auto res = run_nested(p, m, f3r_config(Prec::FP16), f3r_termination(1e-8));
  EXPECT_TRUE(test::converged(res)) << "nblocks=" << nblocks;
  EXPECT_LT(res.final_relres, 1e-8);
}

TEST_P(BlockSweep, MoreBlocksNeverBeatFewerByMuch) {
  // Fewer blocks = stronger M.  CG iteration counts must be monotone-ish:
  // count(nblocks) >= count(1) for every partition.
  const int nblocks = GetParam();
  auto p = prepare_standin("hpcg_4_4_4", 1);
  auto m1 = make_primary(p, PrecondKind::BlockJacobiIluIc, 1);
  auto mb = make_primary(p, PrecondKind::BlockJacobiIluIc, nblocks);
  const auto r1 = run_cg(p, *m1, Prec::FP64);
  const auto rb = run_cg(p, *mb, Prec::FP64);
  ASSERT_TRUE(test::converged(r1));
  ASSERT_TRUE(test::converged(rb));
  EXPECT_GE(rb.iterations + 1, r1.iterations) << "nblocks=" << nblocks;
}

INSTANTIATE_TEST_SUITE_P(Partitions, BlockSweep, ::testing::Values(1, 2, 8, 64, 512));

class PrecisionDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(PrecisionDeterminism, IdenticalRunsAreBitIdentical) {
  const Prec prec = static_cast<Prec>(GetParam());
  auto p = prepare_standin("hpgmp_4_4_4", 1);
  auto run_once = [&] {
    auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 8);
    NestedSolver s(p.a, m, f3r_config(prec));
    std::vector<double> x(p.b.size(), 0.0);
    const auto res = s.solve(std::span<const double>(p.b), std::span<double>(x),
                             f3r_termination(1e-8));
    return std::make_pair(res, x);
  };
  const auto [r1, x1] = run_once();
  const auto [r2, x2] = run_once();
  ASSERT_TRUE(r1.converged);
  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_EQ(r1.precond_invocations, r2.precond_invocations);
  EXPECT_EQ(x1, x2);  // bitwise
}

INSTANTIATE_TEST_SUITE_P(Precisions, PrecisionDeterminism, ::testing::Values(0, 1, 2),
                         [](const auto& info) {
                           return std::string(prec_name(static_cast<Prec>(info.param)));
                         });

TEST(SolutionAgreement, FamiliesAgreeOnXNotJustResidual) {
  auto p = prepare_standin("hpcg_4_4_4", 1);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 8);
  const double tol = 1e-10;

  auto solve_nested = [&](const NestedConfig& cfg) {
    NestedSolver s(p.a, m, cfg);
    std::vector<double> x(p.b.size(), 0.0);
    auto res = s.solve(std::span<const double>(p.b), std::span<double>(x),
                       f3r_termination(tol));
    EXPECT_TRUE(test::converged(res)) << cfg.name;
    return x;
  };
  const auto x_f3r16 = solve_nested(f3r_config(Prec::FP16));
  const auto x_f3r64 = solve_nested(f3r_config(Prec::FP64));

  CsrOperator<double, double> op(p.a->csr_fp64());
  auto h = m->make_apply<double>(Prec::FP64);
  CgSolver<double> cg(op, *h, {.rtol = tol, .max_iters = 10000});
  std::vector<double> x_cg(p.b.size(), 0.0);
  ASSERT_TRUE(test::converged(cg.solve(std::span<const double>(p.b), std::span<double>(x_cg))));

  // The matrix is well conditioned after scaling (27-pt stencil), so a
  // 1e-10 residual pins x to ~1e-9 relative.
  EXPECT_LT(test::max_rel_diff(x_f3r16, x_cg), 1e-7);
  EXPECT_LT(test::max_rel_diff(x_f3r64, x_cg), 1e-7);
  EXPECT_LT(test::max_rel_diff(x_f3r16, x_f3r64), 1e-7);
}

TEST(RestartConsistency, SmallM1WithRestartsReachesSameAccuracy) {
  auto p = prepare_standin("hpcg_4_4_4", 1);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 64);

  const auto big = run_nested(p, m, f3r_config(Prec::FP16), f3r_termination(1e-8));
  F3rParams small_prm;
  small_prm.m1 = 1;  // one outer iteration per cycle: forces restarts
  Termination t = f3r_termination(1e-8);
  t.max_restarts = 60;
  const auto small = run_nested(p, m, f3r_config(Prec::FP16, small_prm), t);

  ASSERT_TRUE(test::converged(big));
  ASSERT_TRUE(test::converged(small));
  EXPECT_LT(small.final_relres, 1e-8);
  EXPECT_GT(small.restarts, 0);
}

TEST(SeedSensitivity, DifferentRhsSameIterationScale) {
  // Convergence behaviour must be a property of (A, M), not of the RHS:
  // counts across seeds stay within one outer iteration.
  std::vector<int> counts;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto p = prepare_standin("hpcg_4_4_4", 1, seed);
    auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 8);
    const auto res = run_nested(p, m, f3r_config(Prec::FP16), f3r_termination(1e-8));
    ASSERT_TRUE(test::converged(res));
    counts.push_back(res.iterations);
  }
  for (int c : counts) EXPECT_LE(std::abs(c - counts[0]), 1);
}

}  // namespace
}  // namespace nk
