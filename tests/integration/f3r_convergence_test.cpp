// Integration tests of the paper's central convergence claims:
//   * reducing precision inside F3R does not slow convergence (Table 3:
//     iteration-count differences within ~9%);
//   * the innermost solver performs m2·m3·m4 primary-preconditioner
//     applications per outermost iteration;
//   * Assumption (ii): (F^m3, R^2, M) ≈ (F^m3, F^2, M) in convergence.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "core/variants.hpp"
#include "support/solver_checks.hpp"

namespace nk {
namespace {

TEST(F3rConvergence, PrecisionDoesNotChangeIterationCounts) {
  // The paper's Table 3: fp64/fp32/fp16-F3R invocation counts agree within
  // a few percent.  At test scale the counts are quantized to whole
  // outermost iterations (64 M-applies each), so we weaken the
  // preconditioner (64 blocks) to get enough outer iterations for the
  // comparison to be meaningful, and allow one extra outer iteration.
  for (const char* name : {"hpcg_4_4_4", "hpgmp_4_4_4"}) {
    auto p = prepare_standin(name, 1);
    auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 64);
    const auto r64 = run_nested(p, m, f3r_config(Prec::FP64));
    const auto r32 = run_nested(p, m, f3r_config(Prec::FP32));
    const auto r16 = run_nested(p, m, f3r_config(Prec::FP16));
    ASSERT_TRUE(test::converged(r64)) << name;
    ASSERT_TRUE(test::converged(r32)) << name;
    ASSERT_TRUE(test::converged(r16)) << name;
    EXPECT_LE(std::abs(static_cast<double>(r32.iterations) - r64.iterations), 1.0) << name;
    EXPECT_LE(std::abs(static_cast<double>(r16.iterations) - r64.iterations), 1.0) << name;
  }
}

TEST(F3rConvergence, InvocationsPerOuterIterationIsM2M3M4) {
  auto p = prepare_standin("hpcg_4_4_4", 1);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 8);
  F3rParams prm;  // 8·4·2 = 64
  const auto res = run_nested(p, m, f3r_config(Prec::FP16, prm));
  ASSERT_TRUE(test::converged(res));
  EXPECT_EQ(res.precond_invocations,
            static_cast<std::uint64_t>(res.iterations) * 64u);

  prm.m2 = 6;
  prm.m3 = 3;
  prm.m4 = 1;  // 18 per outer iteration
  const auto res2 = run_nested(p, m, f3r_config(Prec::FP16, prm));
  ASSERT_TRUE(test::converged(res2));
  EXPECT_EQ(res2.precond_invocations,
            static_cast<std::uint64_t>(res2.iterations) * 18u);
}

TEST(F3rConvergence, AssumptionIiRichardsonVsInnerFgmres) {
  // F4 replaces the innermost R^2 with F^2; Section 6.2 finds similar
  // convergence ("the convergence rates of F4 and fp16-F3R were similar").
  auto p = prepare_standin("hpcg_4_4_4", 1);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 8);
  const auto f3r = run_nested(p, m, f3r_config(Prec::FP16));
  const auto f4 = run_nested(p, m, variant_config("F4"));
  ASSERT_TRUE(test::converged(f3r));
  ASSERT_TRUE(test::converged(f4));
  const double ratio = static_cast<double>(f3r.precond_invocations) /
                       static_cast<double>(f4.precond_invocations);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(F3rConvergence, DeeperNestingStillConverges) {
  // Five levels: (F^50, F^8, F^4, F^2, R^2, M) — the framework "naturally
  // extends to deeper levels of nesting" (Section 3).
  auto p = prepare_standin("hpcg_4_4_4", 1);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 8);
  NestedConfig cfg = f3r_config(Prec::FP16);
  cfg.name = "F4R";
  LevelSpec extra;
  extra.kind = SolverKind::FGMRES;
  extra.m = 2;
  extra.mat = Prec::FP16;
  extra.vec = Prec::FP32;
  cfg.levels.insert(cfg.levels.begin() + 3, extra);
  cfg.levels[0].m = 50;
  const auto res = run_nested(p, m, cfg, f3r_termination(1e-8));
  EXPECT_TRUE(test::converged(res));
}

TEST(F3rConvergence, AdaptiveWeightBeatsBadFixedWeight) {
  // Section 6.3: the adaptive technique is stable where bad static weights
  // fail or lag.  With a deliberately bad fixed ω = 0.3 the solve needs
  // more outer iterations than the adaptive run.
  auto p = prepare_standin("hpcg_4_4_4", 1);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 8);

  F3rParams adaptive;  // default c = 64
  const auto ra = run_nested(p, m, f3r_config(Prec::FP16, adaptive));

  F3rParams fixed;
  fixed.adaptive = false;
  fixed.fixed_weight = 0.3f;
  const auto rf = run_nested(p, m, f3r_config(Prec::FP16, fixed));

  ASSERT_TRUE(test::converged(ra));
  if (rf.converged) {
    EXPECT_LE(ra.precond_invocations, rf.precond_invocations);
  }
}

TEST(F3rConvergence, SellAndCsrGiveSameIterationCounts) {
  // Storage format must not affect convergence, only kernels.
  auto pc = prepare_standin("hpgmp_4_4_4", 1, 7, false);
  auto ps = prepare_standin("hpgmp_4_4_4", 1, 7, true);
  auto mc = make_primary(pc, PrecondKind::SdAinv);
  auto ms = make_primary(ps, PrecondKind::SdAinv);
  const auto rc = run_nested(pc, mc, f3r_config(Prec::FP32));
  const auto rs = run_nested(ps, ms, f3r_config(Prec::FP32));
  ASSERT_TRUE(test::converged(rc));
  ASSERT_TRUE(test::converged(rs));
  EXPECT_EQ(rc.iterations, rs.iterations);
  EXPECT_EQ(rc.precond_invocations, rs.precond_invocations);
}

}  // namespace
}  // namespace nk
