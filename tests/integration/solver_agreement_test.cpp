// Integration: every solver family must reach the same answer on the same
// prepared problems, across symmetric/nonsymmetric and CPU/GPU-sim
// configurations.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/runner.hpp"
#include "core/variants.hpp"
#include "support/solver_checks.hpp"

namespace nk {
namespace {

// (problem, gpu_sim) — the generated problems stay small (scale of the
// stand-ins is fixed; we use HPCG/HPGMP at 4_4_4 plus tiny scale-1 classes).
class SolverAgreement : public ::testing::TestWithParam<std::tuple<std::string, bool>> {};

TEST_P(SolverAgreement, AllFamiliesConvergeTo1em8) {
  const auto& [name, gpu_sim] = GetParam();
  auto p = prepare_standin(name, 1, 7, gpu_sim);
  auto m = make_primary(p, gpu_sim ? PrecondKind::SdAinv : PrecondKind::BlockJacobiIluIc,
                        gpu_sim ? 0 : 4);

  FlatSolverCaps caps;
  caps.max_iters = 8000;

  std::vector<SolveResult> results;
  results.push_back(run_nested(p, m, f3r_config(Prec::FP64)));
  results.push_back(run_nested(p, m, f3r_config(Prec::FP32)));
  results.push_back(run_nested(p, m, f3r_config(Prec::FP16)));
  if (p.symmetric)
    results.push_back(run_cg(p, *m, Prec::FP64, caps));
  else
    results.push_back(run_bicgstab(p, *m, Prec::FP64, caps));
  results.push_back(run_fgmres_restarted(p, *m, Prec::FP64, 64, caps));

  for (const auto& r : results) {
    EXPECT_TRUE(test::converged(r)) << name << " " << r.solver;
    EXPECT_LT(r.final_relres, 1.5e-8) << name << " " << r.solver;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Problems, SolverAgreement,
    ::testing::Values(std::make_tuple("hpcg_4_4_4", false),
                      std::make_tuple("hpgmp_4_4_4", false),
                      std::make_tuple("hpcg_4_4_4", true),
                      std::make_tuple("hpgmp_4_4_4", true)),
    [](const auto& info) {
      return std::get<0>(info.param) + (std::get<1>(info.param) ? "_gpusim" : "_cpu");
    });

TEST(SolverAgreementExtra, Table4VariantsSolveHpcg) {
  auto p = prepare_standin("hpcg_4_4_4", 1);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 4);
  for (const auto& name : variant_names()) {
    const auto res = run_nested(p, m, variant_config(name), f3r_termination(1e-8));
    EXPECT_TRUE(test::converged(res)) << name;
    EXPECT_LT(res.final_relres, 1e-8) << name;
  }
}

TEST(SolverAgreementExtra, PrecondStoragePrecisionSweepCg) {
  // fp64/fp32/fp16-CG all converge with nearly identical iteration counts
  // on a well-scaled SPD problem (the paper's Figure 1 observation).
  auto p = prepare_standin("hpcg_4_4_4", 1);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 4);
  const auto r64 = run_cg(p, *m, Prec::FP64);
  const auto r32 = run_cg(p, *m, Prec::FP32);
  const auto r16 = run_cg(p, *m, Prec::FP16);
  EXPECT_TRUE(test::converged(r64));
  EXPECT_TRUE(test::converged(r32));
  EXPECT_TRUE(test::converged(r16));
  EXPECT_LE(std::abs(r32.iterations - r64.iterations), 2);
  EXPECT_LE(std::abs(r16.iterations - r64.iterations),
            std::max(2, r64.iterations / 4));
}

}  // namespace
}  // namespace nk
