// Tests that the F3R factory reproduces Table 1 exactly.
#include <gtest/gtest.h>

#include "core/f3r.hpp"

namespace nk {
namespace {

TEST(F3rConfig, DefaultParametersMatchPaper) {
  const F3rParams p;
  EXPECT_EQ(p.m1, 100);
  EXPECT_EQ(p.m2, 8);
  EXPECT_EQ(p.m3, 4);
  EXPECT_EQ(p.m4, 2);
  EXPECT_EQ(p.cycle, 64);
  EXPECT_TRUE(p.adaptive);
}

TEST(F3rConfig, Fp16MatchesTable1) {
  const auto cfg = f3r_config(Prec::FP16);
  ASSERT_EQ(cfg.levels.size(), 4u);
  EXPECT_EQ(cfg.name, "fp16-F3R");

  // F^m1: A fp64, vectors fp64.
  EXPECT_EQ(cfg.levels[0].kind, SolverKind::FGMRES);
  EXPECT_EQ(cfg.levels[0].m, 100);
  EXPECT_EQ(cfg.levels[0].mat, Prec::FP64);
  EXPECT_EQ(cfg.levels[0].vec, Prec::FP64);

  // F^m2: A fp32, vectors fp32.
  EXPECT_EQ(cfg.levels[1].m, 8);
  EXPECT_EQ(cfg.levels[1].mat, Prec::FP32);
  EXPECT_EQ(cfg.levels[1].vec, Prec::FP32);

  // F^m3: A fp16, vectors fp32 ("F^m3 performs SpMV in fp32 because A is
  // stored in fp16 while the input Arnoldi basis is in fp32").
  EXPECT_EQ(cfg.levels[2].m, 4);
  EXPECT_EQ(cfg.levels[2].mat, Prec::FP16);
  EXPECT_EQ(cfg.levels[2].vec, Prec::FP32);

  // R^m4: everything fp16 including M.
  EXPECT_EQ(cfg.levels[3].kind, SolverKind::Richardson);
  EXPECT_EQ(cfg.levels[3].m, 2);
  EXPECT_EQ(cfg.levels[3].mat, Prec::FP16);
  EXPECT_EQ(cfg.levels[3].vec, Prec::FP16);
  EXPECT_EQ(cfg.levels[3].cycle, 64);
  EXPECT_EQ(cfg.precond_storage, Prec::FP16);
}

TEST(F3rConfig, Fp64AllLevelsDouble) {
  const auto cfg = f3r_config(Prec::FP64);
  EXPECT_EQ(cfg.name, "fp64-F3R");
  for (const auto& lv : cfg.levels) {
    EXPECT_EQ(lv.mat, Prec::FP64);
    EXPECT_EQ(lv.vec, Prec::FP64);
  }
  EXPECT_EQ(cfg.precond_storage, Prec::FP64);
}

TEST(F3rConfig, Fp32InnerLevelsSingle) {
  // "the latter use fp32 for all the inner solvers"
  const auto cfg = f3r_config(Prec::FP32);
  EXPECT_EQ(cfg.name, "fp32-F3R");
  EXPECT_EQ(cfg.levels[0].vec, Prec::FP64);  // outermost stays fp64
  for (std::size_t d = 1; d < cfg.levels.size(); ++d) {
    EXPECT_EQ(cfg.levels[d].mat, Prec::FP32);
    EXPECT_EQ(cfg.levels[d].vec, Prec::FP32);
  }
  EXPECT_EQ(cfg.precond_storage, Prec::FP32);
}

TEST(F3rConfig, CustomParametersPropagate) {
  F3rParams p;
  p.m1 = 50;
  p.m2 = 6;
  p.m3 = 5;
  p.m4 = 3;
  p.cycle = 16;
  p.adaptive = false;
  p.fixed_weight = 0.9f;
  const auto cfg = f3r_config(Prec::FP16, p);
  EXPECT_EQ(cfg.levels[0].m, 50);
  EXPECT_EQ(cfg.levels[1].m, 6);
  EXPECT_EQ(cfg.levels[2].m, 5);
  EXPECT_EQ(cfg.levels[3].m, 3);
  EXPECT_EQ(cfg.levels[3].cycle, 16);
  EXPECT_FALSE(cfg.levels[3].adaptive);
  EXPECT_FLOAT_EQ(cfg.levels[3].fixed_weight, 0.9f);
}

TEST(F3rConfig, Names) {
  EXPECT_EQ(f3r_name(Prec::FP64), "fp64-F3R");
  EXPECT_EQ(f3r_name(Prec::FP32), "fp32-F3R");
  EXPECT_EQ(f3r_name(Prec::FP16), "fp16-F3R");
}

TEST(F3rConfig, TerminationMatchesPaper) {
  const auto t = f3r_termination();
  EXPECT_DOUBLE_EQ(t.rtol, 1e-8);
  EXPECT_EQ(t.max_restarts, 3);  // 300 outermost iterations total
}

TEST(F3rConfig, ValidatesCleanly) {
  for (Prec p : {Prec::FP64, Prec::FP32, Prec::FP16})
    EXPECT_NO_THROW(validate(f3r_config(p)));
}

}  // namespace
}  // namespace nk
