// Tests for the experiment runner shared by benches and examples.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/cost_model.hpp"
#include "core/runner.hpp"
#include "sparse/gen/laplace.hpp"

namespace nk {
namespace {

TEST(Runner, PrepareProblemScalesAndBuildsRhs) {
  auto p = prepare_problem("t", gen::laplace2d(8, 8), true, 1.2, 1.3, 42);
  EXPECT_EQ(p.name, "t");
  EXPECT_TRUE(p.symmetric);
  EXPECT_DOUBLE_EQ(p.alpha_ilu, 1.2);
  EXPECT_DOUBLE_EQ(p.alpha_ainv, 1.3);
  EXPECT_EQ(p.b.size(), static_cast<std::size_t>(p.a->size()));
  // Diagonal scaling leaves a unit diagonal.
  for (double d : p.a->csr_fp64().diagonal()) EXPECT_NEAR(d, 1.0, 1e-14);
  // RHS in [0,1) (the paper's distribution).
  for (double v : p.b) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Runner, PrepareStandinByName) {
  auto p = prepare_standin("hpcg_4_4_4", 1);
  EXPECT_EQ(p.name, "hpcg_4_4_4");
  EXPECT_TRUE(p.symmetric);
  EXPECT_EQ(p.a->size(), 4096);
}

TEST(Runner, MakePrimarySelectsIcForSymmetric) {
  auto psym = prepare_problem("s", gen::laplace2d(8, 8), true, 1.0, 1.0, 1);
  EXPECT_EQ(make_primary(psym, PrecondKind::BlockJacobiIluIc)->name(), "bj-ic0");
  auto pnon = prepare_problem("n", gen::laplace2d(8, 8), false, 1.0, 1.0, 1);
  EXPECT_EQ(make_primary(pnon, PrecondKind::BlockJacobiIluIc)->name(), "bj-ilu0");
  EXPECT_EQ(make_primary(psym, PrecondKind::SdAinv)->name(), "sd-ainv");
  EXPECT_EQ(make_primary(psym, PrecondKind::Jacobi)->name(), "jacobi");
}

TEST(Runner, CgReportsAccurateMetadata) {
  auto p = prepare_problem("s", gen::laplace2d(12, 12), true, 1.0, 1.0, 2);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 2);
  const auto res = run_cg(p, *m, Prec::FP64);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.solver, "fp64-CG");
  EXPECT_LT(res.final_relres, 1.5e-8);
  // CG applies M once before the loop and once per iteration except the
  // final (converged) one: total equals the iteration count.
  EXPECT_EQ(res.precond_invocations, static_cast<std::uint64_t>(res.iterations));
  EXPECT_GT(res.seconds, 0.0);
}

TEST(Runner, BicgstabNamesFollowStoragePrecision) {
  auto p = prepare_problem("n", gen::laplace2d(12, 12), false, 1.0, 1.0, 3);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 2);
  const auto r16 = run_bicgstab(p, *m, Prec::FP16);
  EXPECT_EQ(r16.solver, "fp16-BiCGStab");
  EXPECT_TRUE(r16.converged);
}

TEST(Runner, FgmresRestartedConverges) {
  auto p = prepare_problem("s", gen::laplace2d(12, 12), true, 1.0, 1.0, 4);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 2);
  const auto res = run_fgmres_restarted(p, *m, Prec::FP32, 16);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.solver, "fp32-FGMRES(16)");
  EXPECT_EQ(res.precond_invocations, static_cast<std::uint64_t>(res.iterations));
}

TEST(Runner, FlatCapsRespected) {
  auto p = prepare_problem("s", gen::laplace2d(16, 16), true, 1.0, 1.0, 5);
  auto m = make_primary(p, PrecondKind::Jacobi);
  FlatSolverCaps caps;
  caps.max_iters = 4;  // far too few
  const auto res = run_cg(p, *m, Prec::FP64, caps);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 4);
}

TEST(Runner, AllSolversAgreeOnSolutionQuality) {
  auto p = prepare_problem("s", gen::laplace2d(12, 12), true, 1.0, 1.0, 6);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 2);
  const auto cg = run_cg(p, *m, Prec::FP64);
  const auto fg = run_fgmres_restarted(p, *m, Prec::FP64, 32);
  const auto f3r = run_nested(p, m, f3r_config(Prec::FP16));
  for (const auto* r : {&cg, &fg, &f3r}) {
    EXPECT_TRUE(r->converged) << r->solver;
    EXPECT_LT(r->final_relres, 1.5e-8) << r->solver;
  }
}

TEST(Runner, F3rBestSearchReturnsConvergedConfig) {
  auto p = prepare_problem("s", gen::laplace2d(10, 10), true, 1.0, 1.0, 7);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 2);
  const auto best = run_f3r_best(p, m, 1e-8, 4);
  EXPECT_EQ(best.tried, 4);
  EXPECT_TRUE(best.result.converged);
  EXPECT_EQ(best.result.solver, "fp16-F3R-best");
  // Label has the paper's m2-m3-m4 form.
  EXPECT_EQ(std::count(best.param_label.begin(), best.param_label.end(), '-'), 2);
}

TEST(Runner, F3rBestZeroBudgetTriesNothing) {
  auto p = prepare_problem("s", gen::laplace2d(8, 8), true, 1.0, 1.0, 8);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 2);
  const auto best = run_f3r_best(p, m, 1e-8, 0);
  EXPECT_EQ(best.tried, 0);
  EXPECT_FALSE(best.result.converged);
  EXPECT_EQ(best.param_label, "-");
}

TEST(Runner, F3rBestBudgetCappedByParameterBoxSize) {
  // The box is m2 ∈ {6..10} × m3 ∈ {2..6} × m4 ∈ {1,2} = 50 candidates;
  // an oversized budget must stop there.
  auto p = prepare_problem("s", gen::laplace2d(8, 8), true, 1.0, 1.0, 9);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 2);
  const auto best = run_f3r_best(p, m, 1e-6, 10000);
  EXPECT_EQ(best.tried, 50);
  EXPECT_TRUE(best.result.converged);
}

TEST(Runner, F3rBestOrdersCandidatesByMemoryAccessModel) {
  // With budget 1 exactly the model-cheapest configuration is tried, so on
  // an easy problem it is also the one returned.  Recompute the model's
  // argmin independently and compare.
  auto p = prepare_problem("s", gen::laplace2d(10, 10), true, 1.0, 1.0, 10);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 2);
  const auto best = run_f3r_best(p, m, 1e-8, 1);
  ASSERT_EQ(best.tried, 1);
  ASSERT_TRUE(best.result.converged);

  const double ca = access_constant(p.a->csr_fp64().nnz_per_row(), 2);
  double min_cost = std::numeric_limits<double>::max();
  int e2 = 0, e3 = 0, e4 = 0;
  for (int m2 = 6; m2 <= 10; ++m2)
    for (int m3 = 2; m3 <= 6; ++m3)
      for (int m4 = 1; m4 <= 2; ++m4) {
        const double c = cost_nested(ca, ca, {{'F', m2}, {'F', m3}, {'R', m4}});
        if (c < min_cost) {
          min_cost = c;
          e2 = m2;
          e3 = m3;
          e4 = m4;
        }
      }
  EXPECT_EQ(best.params.m2, e2);
  EXPECT_EQ(best.params.m3, e3);
  EXPECT_EQ(best.params.m4, e4);
  EXPECT_EQ(best.param_label, std::to_string(e2) + "-" + std::to_string(e3) + "-" +
                                  std::to_string(e4));
}

TEST(Runner, F3rBestSkipsNonConvergedCandidates) {
  // An unreachable tolerance: every candidate fails, the search reports
  // the whole budget as tried and returns a non-converged placeholder.
  auto p = prepare_problem("s", gen::laplace2d(6, 6), true, 1.0, 1.0, 11);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 2);
  const auto best = run_f3r_best(p, m, 1e-300, 2);
  EXPECT_EQ(best.tried, 2);
  EXPECT_FALSE(best.result.converged);
  EXPECT_EQ(best.param_label, "-");
  EXPECT_EQ(best.result.solver, "fp16-F3R-best");
}

}  // namespace
}  // namespace nk
