// SolverSpec / PrecondSpec text-form round-trip and rejection tests.
//
// The round-trip contract is parse(to_string(s)) == s for every valid
// spec; the table test below sweeps every registered kind × precision ×
// batching combination (plus non-default termination and preconditioner
// fields) so the grammar cannot silently drop a field.  The rejection
// tests pin the malformed-input behavior: SpecError (a subclass of
// std::invalid_argument) with a message naming the problem.
#include <gtest/gtest.h>

#include "core/fault.hpp"
#include "core/registry.hpp"
#include "core/spec.hpp"

namespace nk {
namespace {

TEST(Spec, DefaultsAndCanonicalForms) {
  const SolverSpec def;
  EXPECT_EQ(def.to_string(), "f3r");
  EXPECT_EQ(SolverSpec::parse("f3r"), def);

  // The issue-form examples all parse and re-render canonically.
  EXPECT_EQ(SolverSpec::parse("fgmres64/bj-ilu0@fp16").to_string(),
            "fgmres64/bj-ilu0@fp16");
  EXPECT_EQ(SolverSpec::parse("ir-gmres8@fp32").to_string(), "ir-gmres8@fp32");
  EXPECT_EQ(SolverSpec::parse("f3r@fp16").to_string(), "f3r@fp16");
  EXPECT_EQ(SolverSpec::parse("cg/jacobi;wave=8;rtol=1e-06").to_string(),
            "cg/jacobi;rtol=1e-06;wave=8");
}

TEST(Spec, ParsePopulatesEveryField) {
  const SolverSpec s = SolverSpec::parse(
      "fgmres32@fp32/ssor@fp16;rtol=2.5e-05;max-iters=123;restarts=5;nohist;wave=7;"
      "masked;nblocks=9;omega=1.5;degree=4");
  EXPECT_EQ(s.kind, "fgmres");
  EXPECT_EQ(s.m, 32);
  EXPECT_EQ(s.prec, Prec::FP32);
  EXPECT_DOUBLE_EQ(s.rtol, 2.5e-5);
  EXPECT_EQ(s.max_iters, 123);
  EXPECT_EQ(s.max_restarts, 5);
  EXPECT_FALSE(s.record_history);
  EXPECT_EQ(s.wave, 7);
  EXPECT_FALSE(s.compact);
  EXPECT_EQ(s.precond.kind, "ssor");
  ASSERT_TRUE(s.precond.storage.has_value());
  EXPECT_EQ(*s.precond.storage, Prec::FP16);
  EXPECT_EQ(s.precond.nblocks, 9);
  EXPECT_DOUBLE_EQ(s.precond.omega, 1.5);
  EXPECT_EQ(s.precond.degree, 4);
  EXPECT_EQ(SolverSpec::parse(s.to_string()), s);
}

TEST(Spec, LayoutOptionRoundTripsAndDefaultsUnset) {
  // layout= selects the survivor-panel storage; unset (the default) defers
  // to the workspace, and to_string omits it so old spec strings re-render
  // unchanged.
  EXPECT_FALSE(SolverSpec::parse("cg").layout.has_value());

  const SolverSpec cm = SolverSpec::parse("cg;layout=colmajor");
  ASSERT_TRUE(cm.layout.has_value());
  EXPECT_EQ(*cm.layout, PanelLayout::kColMajor);
  EXPECT_EQ(cm.to_string(), "cg;layout=colmajor");
  EXPECT_EQ(SolverSpec::parse(cm.to_string()), cm);

  const SolverSpec rm = SolverSpec::parse("bicgstab;layout=rowmajor;wave=8");
  ASSERT_TRUE(rm.layout.has_value());
  EXPECT_EQ(*rm.layout, PanelLayout::kRowMajor);
  EXPECT_EQ(SolverSpec::parse(rm.to_string()), rm);

  EXPECT_THROW(SolverSpec::parse("cg;layout=diagonal"), SpecError);
  EXPECT_THROW(SolverSpec::parse("cg;layout="), SpecError);
  EXPECT_THROW(SolverSpec::parse("cg;layout"), SpecError);
}

TEST(Spec, LegacyPaperNamesAreAliases) {
  EXPECT_EQ(SolverSpec::parse("fp16-F3R"), SolverSpec::parse("f3r@fp16"));
  EXPECT_EQ(SolverSpec::parse("fp32-CG"), SolverSpec::parse("cg@fp32"));
  EXPECT_EQ(SolverSpec::parse("fp64-BiCGStab"), SolverSpec::parse("bicgstab"));
  EXPECT_EQ(SolverSpec::parse("fp32-FGMRES64"), SolverSpec::parse("fgmres64@fp32"));
  // Table 4 variants are registered kinds of their own — "fp16-F2" is the
  // variant, NOT "f2" at fp16 (which the grammar rejects below).
  EXPECT_EQ(SolverSpec::parse("fp16-F2").kind, "fp16-f2");
  EXPECT_EQ(SolverSpec::parse("F2").kind, "f2");
  EXPECT_EQ(SolverSpec::parse("fp16-F3").kind, "fp16-f3");
}

/// Round-trip sweep: every registered solver kind × precision × batching
/// combination, with non-default termination, precond, and backend fields
/// mixed in (the backend cycles unset/host/serial across cells).
TEST(Spec, RoundTripAllRegisteredKinds) {
  const auto precond_kinds = registry().precond_kinds();
  std::size_t cells = 0, pidx = 0;
  for (const std::string& kind : registry().solver_kinds()) {
    const SolverKindInfo* info = registry().solver_info(kind);
    ASSERT_NE(info, nullptr) << kind;
    for (const Prec prec : {Prec::FP64, Prec::FP32, Prec::FP16}) {
      if (!info->takes_prec && prec != Prec::FP64) continue;
      for (const int wave : {0, 4}) {
        for (const bool compact : {true, false}) {
          SolverSpec s;
          s.kind = kind;
          s.prec = prec;
          s.m = info->takes_m ? info->default_m + 3 : 0;
          s.rtol = 3e-7;
          s.max_iters = 321;
          s.max_restarts = 1;
          s.record_history = (wave == 0);
          s.wave = wave;
          s.compact = compact;
          s.precond.kind = precond_kinds[pidx++ % precond_kinds.size()];
          s.precond.storage = (cells % 2 == 0) ? std::optional<Prec>(Prec::FP16)
                                               : std::nullopt;
          s.precond.nblocks = static_cast<int>(cells % 3) * 8;
          switch (cells % 3) {
            case 0: s.backend.reset(); break;
            case 1: s.backend = Backend::kHost; break;
            default: s.backend = Backend::kSerial; break;
          }
          const std::string text = s.to_string();
          EXPECT_EQ(SolverSpec::parse(text), s) << text;
          ++cells;
        }
      }
    }
  }
  EXPECT_GT(cells, 80u);  // the grid actually swept something
}

TEST(Spec, BackendOptionRoundTripsAndDefaultsUnset) {
  // Unset (the default) means "resolve at build time", and to_string omits
  // it, so pre-backend spec strings re-render byte-identically.
  EXPECT_FALSE(SolverSpec::parse("cg").backend.has_value());
  EXPECT_EQ(SolverSpec::parse("cg/jacobi;wave=8").to_string(), "cg/jacobi;wave=8");

  const SolverSpec ser = SolverSpec::parse("cg;backend=serial");
  ASSERT_TRUE(ser.backend.has_value());
  EXPECT_EQ(*ser.backend, Backend::kSerial);
  EXPECT_EQ(ser.to_string(), "cg;backend=serial");
  EXPECT_EQ(SolverSpec::parse(ser.to_string()), ser);

  // "omp" is an accepted alias for the host backend; the canonical form —
  // what to_string emits — is "host".
  const SolverSpec omp = SolverSpec::parse("cg;backend=omp");
  ASSERT_TRUE(omp.backend.has_value());
  EXPECT_EQ(*omp.backend, Backend::kHost);
  EXPECT_EQ(omp.to_string(), "cg;backend=host");
  EXPECT_EQ(omp, SolverSpec::parse("cg;backend=host"));
}

TEST(Spec, BackendSuffixAliasEveryKindTimesPrecision) {
  // ":NAME" on the head is the short spelling of ";backend=NAME" — pinned
  // for every registered kind × precision so no kind's token resolution
  // (trailing digits, fpNN- prefixes, Table 4 names) eats the suffix.
  for (const std::string& kind : registry().solver_kinds()) {
    const SolverKindInfo* info = registry().solver_info(kind);
    ASSERT_NE(info, nullptr) << kind;
    for (const Prec prec : {Prec::FP64, Prec::FP32, Prec::FP16}) {
      if (!info->takes_prec && prec != Prec::FP64) continue;
      std::string head = kind;
      if (prec != Prec::FP64) head += std::string("@") + prec_name(prec);
      for (const char* be : {"host", "omp", "serial"}) {
        const SolverSpec via_suffix = SolverSpec::parse(head + ":" + be);
        const SolverSpec via_option = SolverSpec::parse(head + ";backend=" + be);
        EXPECT_EQ(via_suffix, via_option) << head << ":" << be;
        ASSERT_TRUE(via_suffix.backend.has_value()) << head;
        EXPECT_EQ(SolverSpec::parse(via_suffix.to_string()), via_suffix) << head;
      }
    }
  }
  // The suffix follows the whole head, precond part included, and survives
  // an option tail and mixed case.
  const SolverSpec full = SolverSpec::parse("fgmres64/bj-ilu0@fp16:serial;rtol=1e-06");
  EXPECT_EQ(full.kind, "fgmres");
  EXPECT_EQ(full.precond.kind, "bj-ilu0");
  ASSERT_TRUE(full.backend.has_value());
  EXPECT_EQ(*full.backend, Backend::kSerial);
  EXPECT_EQ(SolverSpec::parse("CG:SERIAL"), SolverSpec::parse("cg;backend=serial"));
}

TEST(Spec, RejectsBadBackendTokens) {
  // Unknown names — the message lists the known backends.
  try {
    SolverSpec::parse("cg;backend=cuda");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("serial"), std::string::npos) << e.what();
  }
  EXPECT_THROW(SolverSpec::parse("cg:cuda"), SpecError);
  // Structurally broken suffixes.
  EXPECT_THROW(SolverSpec::parse("cg:"), SpecError);
  EXPECT_THROW(SolverSpec::parse("cg:serial:host"), SpecError);
  EXPECT_THROW(SolverSpec::parse("cg;backend="), SpecError);
  EXPECT_THROW(SolverSpec::parse("cg;backend"), SpecError);
  // A backend may be named at most once, whichever spellings are used.
  EXPECT_THROW(SolverSpec::parse("cg:serial;backend=serial"), SpecError);
  EXPECT_THROW(SolverSpec::parse("cg:host;backend=serial"), SpecError);
  EXPECT_THROW(SolverSpec::parse("cg;backend=serial;backend=host"), SpecError);
  // backend= is a solver-level option only.
  EXPECT_THROW(PrecondSpec::parse("bj;backend=serial"), SpecError);
}

TEST(Spec, PrecondRoundTripAllRegisteredKinds) {
  for (const std::string& kind : registry().precond_kinds()) {
    for (const auto storage :
         {std::optional<Prec>{}, std::optional<Prec>{Prec::FP32}}) {
      PrecondSpec s;
      s.kind = kind;
      s.storage = storage;
      s.nblocks = 16;
      s.omega = 1.25;
      s.degree = 3;
      EXPECT_EQ(PrecondSpec::parse(s.to_string()), s) << s.to_string();
    }
  }
  EXPECT_EQ(PrecondSpec::parse("bj").to_string(), "bj");
}

TEST(Spec, RejectsMalformedStrings) {
  // Empty / structurally broken.
  EXPECT_THROW(SolverSpec::parse(""), SpecError);
  EXPECT_THROW(SolverSpec::parse("@fp32"), SpecError);
  EXPECT_THROW(SolverSpec::parse("cg/"), SpecError);
  EXPECT_THROW(SolverSpec::parse("cg/bj/jacobi"), SpecError);
  EXPECT_THROW(SolverSpec::parse("cg;"), SpecError);
  EXPECT_THROW(SolverSpec::parse("cg;;wave=1"), SpecError);
  // Bad precision tokens.
  EXPECT_THROW(SolverSpec::parse("cg@fp99"), SpecError);
  EXPECT_THROW(SolverSpec::parse("cg@"), SpecError);
  EXPECT_THROW(SolverSpec::parse("cg@fp32@fp16"), SpecError);
  EXPECT_THROW(SolverSpec::parse("fp16-cg@fp32"), SpecError);  // precision twice
  // Unknown kinds (message names the registered ones).
  try {
    SolverSpec::parse("hypre-boomeramg");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("f3r"), std::string::npos) << e.what();
  }
  EXPECT_THROW(SolverSpec::parse("cg/ilut"), SpecError);
  EXPECT_THROW(PrecondSpec::parse("ilut"), SpecError);
  // Trailing garbage / bad option values.
  EXPECT_THROW(SolverSpec::parse("cg;wave=4x"), SpecError);
  EXPECT_THROW(SolverSpec::parse("cg;rtol=1e-8zzz"), SpecError);
  EXPECT_THROW(SolverSpec::parse("cg;max-iters=-5"), SpecError);
  EXPECT_THROW(SolverSpec::parse("cg;bogus=1"), SpecError);
  EXPECT_THROW(SolverSpec::parse("cg;masked=1"), SpecError);  // flag, not kv
  EXPECT_THROW(SolverSpec::parse("cg;wave"), SpecError);      // kv, not flag
  EXPECT_THROW(PrecondSpec::parse("bj;rtol=1e-8"), SpecError);  // solver-only key
  EXPECT_THROW(PrecondSpec::parse("bj/jacobi"), SpecError);
  // Kind-specific shape violations.
  EXPECT_THROW(SolverSpec::parse("cg64"), SpecError);    // cg takes no m
  EXPECT_THROW(SolverSpec::parse("f2@fp32"), SpecError); // variants: fixed precisions
  EXPECT_THROW(SolverSpec::parse("fgmres0"), SpecError); // m must be >= 1
}

TEST(Spec, SpecErrorIsInvalidArgument) {
  // Legacy catch sites (variant_config callers) catch invalid_argument.
  EXPECT_THROW(SolverSpec::parse("nonsense"), std::invalid_argument);
}

TEST(Spec, ResilienceOptionsRoundTrip) {
  const SolverSpec s =
      SolverSpec::parse("cg@fp16;stagnate-window=25;fallback=fp32,fp64");
  EXPECT_EQ(s.stagnate_window, 25);
  ASSERT_EQ(s.fallback.size(), 2u);
  EXPECT_EQ(s.fallback[0], Prec::FP32);
  EXPECT_EQ(s.fallback[1], Prec::FP64);
  EXPECT_EQ(SolverSpec::parse(s.to_string()), s);

  // Both default to off, and the defaults are omitted from the canonical
  // form — pre-resilience spec strings re-render unchanged.
  const SolverSpec plain = SolverSpec::parse("cg@fp16");
  EXPECT_EQ(plain.stagnate_window, 0);
  EXPECT_TRUE(plain.fallback.empty());
  EXPECT_EQ(plain.to_string(), "cg@fp16");
}

TEST(Spec, FaultHarnessOptionsRoundTrip) {
  // The "fault" kind is test-only: the grammar accepts it only once a test
  // has installed it (kind validation stays registry-driven).
  register_fault_injection();
  const PrecondSpec p = PrecondSpec::parse("fault;inject=nan@3@fp16;inner=jacobi");
  EXPECT_EQ(p.kind, "fault");
  EXPECT_EQ(p.inject, "nan@3@fp16");
  EXPECT_EQ(p.inner, "jacobi");
  EXPECT_EQ(PrecondSpec::parse(p.to_string()), p);

  // The hooks ride through a full solver spec too.
  const SolverSpec s = SolverSpec::parse("cg/fault;inject=inf@0;inner=bj");
  EXPECT_EQ(s.precond.inject, "inf@0");
  EXPECT_EQ(s.precond.inner, "bj");
  EXPECT_EQ(SolverSpec::parse(s.to_string()), s);
}

TEST(Spec, RejectsMalformedResilienceOptions) {
  EXPECT_THROW(SolverSpec::parse("cg;stagnate-window=-1"), SpecError);
  EXPECT_THROW(SolverSpec::parse("cg;stagnate-window"), SpecError);
  EXPECT_THROW(SolverSpec::parse("cg;fallback="), SpecError);
  EXPECT_THROW(SolverSpec::parse("cg;fallback=fp32,,fp64"), SpecError);
  EXPECT_THROW(SolverSpec::parse("cg;fallback=fp99"), SpecError);
}

}  // namespace
}  // namespace nk
