// Tests for the memory-access cost model (Equations (1)-(3)) including the
// paper's worked example.
#include <gtest/gtest.h>

#include "core/cost_model.hpp"

namespace nk {
namespace {

TEST(CostModel, AccessConstantMatchesPaperExample) {
  // "assuming cA = 45 (30 nonzeros per row, with fp64 for values and
  //  32-bit integers for indices)"
  EXPECT_DOUBLE_EQ(access_constant(30.0, 8), 45.0);
  EXPECT_DOUBLE_EQ(access_constant(30.0, 4), 30.0);  // fp32
  EXPECT_DOUBLE_EQ(access_constant(30.0, 2), 22.5);  // fp16
}

TEST(CostModel, Equation1Fgmres) {
  // cA·m + cM·m + 2.5 m².
  EXPECT_DOUBLE_EQ(cost_fgmres(45.0, 45.0, 8), 45.0 * 8 + 45.0 * 8 + 2.5 * 64);
  EXPECT_DOUBLE_EQ(cost_fgmres(10.0, 5.0, 1), 17.5);
}

TEST(CostModel, Equation1Richardson) {
  // cA(m−1) + cM·m + 4(m−1): zero initial guess saves the first SpMV.
  EXPECT_DOUBLE_EQ(cost_richardson(45.0, 45.0, 2), 45.0 + 90.0 + 4.0);
  EXPECT_DOUBLE_EQ(cost_richardson(45.0, 45.0, 1), 45.0);  // one M apply only
}

TEST(CostModel, Equation2ExpandedFormIdentity) {
  // Eq (2): O(F^m̄,F^m̿,M) = O(F^m,M) + cA·m̄ + 2.5 m̿²m̄ + 2.5 m̄² − 2.5 m²
  // when m = m̄·m̿.  Check both forms agree.
  const double ca = 45.0, cm = 45.0;
  for (int mo : {2, 4, 8, 16}) {
    const int mi = 64 / mo;
    const double direct = cost_nested_ff(ca, cm, mo, mi);
    const double expanded = cost_fgmres(ca, cm, 64) + ca * mo + 2.5 * mi * mi * mo +
                            2.5 * mo * mo - 2.5 * 64.0 * 64.0;
    EXPECT_NEAR(direct, expanded, 1e-9) << "m_outer=" << mo;
  }
}

TEST(CostModel, PaperExampleSplittingF64) {
  // With cA = 45 and m = 64, nesting wins for most m̄, and m̄ = 10 is the
  // model minimizer (the paper notes 10 is not a divisor of 64).
  const double ca = 45.0, cm = 45.0;
  const double flat = cost_fgmres(ca, cm, 64);
  int best_mo = 0;
  double best = 1e300;
  int cheaper_count = 0;
  for (int mo = 2; mo <= 32; ++mo) {
    const double mi = 64.0 / mo;  // model fixes m = m̄·m̿ (continuous m̿)
    const double c = cost_nested_ff(ca, cm, mo, mi);
    if (c < flat) ++cheaper_count;
    if (c < best) {
      best = c;
      best_mo = mo;
    }
  }
  EXPECT_GT(cheaper_count, 20);  // "for most possible values of m̄"
  EXPECT_EQ(best_mo, 10);
}

TEST(CostModel, Equation3RichardsonWinsForSmallM) {
  // Replacing the inner FGMRES by Richardson reduces accesses for all m̄
  // when m ≥ 3 (paper, after Eq. (3)).
  const double ca = 45.0, cm = 45.0;
  for (int m : {4, 8, 16}) {
    for (int mo = 2; mo <= m / 2; ++mo) {
      const double mi = static_cast<double>(m) / mo;
      EXPECT_LT(cost_nested_fr(ca, cm, mo, mi), cost_nested_ff(ca, cm, mo, mi))
          << "m=" << m << " mo=" << mo;
    }
  }
}

TEST(CostModel, NestingSmallMIncreasesAccesses) {
  // For small m, Eq (2) indicates splitting costs MORE (the reason F3R
  // replaces its would-be fourth FGMRES with Richardson).
  const double ca = 45.0, cm = 45.0;
  const double flat8 = cost_fgmres(ca, cm, 8);
  EXPECT_GT(cost_nested_ff(ca, cm, 4, 2), flat8);
  EXPECT_GT(cost_nested_ff(ca, cm, 2, 4), flat8);
}

TEST(CostModel, GenericNestedMatchesSpecializations) {
  const double ca = 45.0, cm = 45.0;
  EXPECT_DOUBLE_EQ(cost_nested(ca, cm, {{'F', 8}}), cost_fgmres(ca, cm, 8));
  EXPECT_DOUBLE_EQ(cost_nested(ca, cm, {{'R', 2}}), cost_richardson(ca, cm, 2));
  EXPECT_DOUBLE_EQ(cost_nested(ca, cm, {{'F', 8}, {'F', 8}}),
                   cost_nested_ff(ca, cm, 8, 8));
  EXPECT_DOUBLE_EQ(cost_nested(ca, cm, {{'F', 4}, {'R', 2}}),
                   cost_nested_fr(ca, cm, 4, 2));
  EXPECT_THROW(cost_nested(ca, cm, {}), std::invalid_argument);
}

TEST(CostModel, F3rConfigurationCheaperThanF64) {
  // The whole point: (F8, F4, R2, M) costs less per 64 M-applications than
  // flat F64.
  const double ca = 45.0, cm = 45.0;
  const double f3r = cost_nested(ca, cm, {{'F', 8}, {'F', 4}, {'R', 2}});
  EXPECT_LT(f3r, cost_fgmres(ca, cm, 64));
}

TEST(CostModel, AdviseSplitLargeM) {
  // With Richardson disallowed (limit 1) the advisor reproduces the
  // paper's FGMRES-split example: m̄ = 10 for cA = 45, m = 64.
  const auto ff_only = advise_split(45.0, 45.0, 64, 1);
  EXPECT_TRUE(ff_only.split);
  EXPECT_EQ(ff_only.m_outer, 10);
  EXPECT_EQ(ff_only.inner_kind, 'F');
  EXPECT_LT(ff_only.best_cost, ff_only.flat_cost);

  // With Richardson allowed (Assumption (ii) holds below the limit), an
  // F-over-R split is cheaper still (Eq. (3)).
  const auto adv = advise_split(45.0, 45.0, 64);
  EXPECT_TRUE(adv.split);
  EXPECT_EQ(adv.inner_kind, 'R');
  EXPECT_LE(adv.m_inner, 5);
  EXPECT_LT(adv.best_cost, ff_only.best_cost);
  const std::string s = advice_summary(adv);
  EXPECT_NE(s.find("split"), std::string::npos);
}

TEST(CostModel, AdviseSplitTinyMKeepsFlatOrRichardson) {
  // m = 2: the only candidate splits don't beat flat FGMRES via Eq (2),
  // but Richardson replacement may still win via Eq (3); either way the
  // advice must not be more expensive than flat.
  const auto adv = advise_split(45.0, 45.0, 2);
  EXPECT_LE(adv.best_cost, adv.flat_cost);
  const std::string s = advice_summary(adv);
  EXPECT_FALSE(s.empty());
}

TEST(CostModel, RichardsonLimitRespected) {
  // With richardson_limit 1 no R-split can be advised.
  const auto adv = advise_split(45.0, 45.0, 64, 1);
  EXPECT_EQ(adv.inner_kind, 'F');
}

TEST(CostModel, DegenerateMOne) {
  // m = 1 collapses every formula to its floor: FGMRES(1) is one SpMV +
  // one M apply + one 2.5-access orthogonalization step; Richardson(1)
  // is one M apply alone (zero initial guess saves the SpMV).
  const double ca = 45.0, cm = 45.0;
  EXPECT_DOUBLE_EQ(cost_fgmres(ca, cm, 1), ca + cm + 2.5);
  EXPECT_DOUBLE_EQ(cost_richardson(ca, cm, 1), cm);
  // And the advisor must not propose splitting a 1-deep cycle.
  const auto adv = advise_split(ca, cm, 1);
  EXPECT_FALSE(adv.split);
  EXPECT_DOUBLE_EQ(adv.best_cost, adv.flat_cost);
}

TEST(CostModel, NonDivisorSplitWellDefined) {
  // The model's minimizing m̄ = 10 does NOT divide m = 64 (the paper
  // remarks on exactly this): Eq (2) stays well-defined with a fractional
  // m̿ = 6.4, costs less than flat F64, and less than both neighboring
  // integer-m̿ splits' worse halves.
  const double ca = 45.0, cm = 45.0;
  const double split10 = cost_nested_ff(ca, cm, 10, 6.4);
  EXPECT_GT(split10, 0.0);
  EXPECT_LT(split10, cost_fgmres(ca, cm, 64));
  EXPECT_LE(split10, cost_nested_ff(ca, cm, 8, 8.0));
  EXPECT_LE(split10, cost_nested_ff(ca, cm, 16, 4.0));
}

TEST(CostModel, ExtremeDensities) {
  // cA at the catalog's density extremes: a diagonal-ish 1 nnz/row matrix
  // and a dense-ish 200 nnz/row one.  The constants stay finite, ordered
  // by byte width, and the advisor still hands back a configuration no
  // worse than flat at both ends.
  for (const double nnzr : {1.0, 200.0}) {
    const double ca64 = access_constant(nnzr, 8);
    const double ca16 = access_constant(nnzr, 2);
    EXPECT_DOUBLE_EQ(ca64, nnzr * 12.0 / 8.0);
    EXPECT_LT(ca16, ca64);
    EXPECT_GT(ca16, 0.0);
  }
  const auto sparse_adv = advise_split(access_constant(1.0, 8), 1.0, 64);
  const auto dense_adv = advise_split(access_constant(200.0, 8), 300.0, 64);
  EXPECT_TRUE(sparse_adv.split);
  EXPECT_TRUE(dense_adv.split);
  EXPECT_LE(sparse_adv.best_cost, sparse_adv.flat_cost);
  EXPECT_LE(dense_adv.best_cost, dense_adv.flat_cost);
  EXPECT_GT(dense_adv.flat_cost, sparse_adv.flat_cost);
  // A structural property of the R-inner advice worth pinning: once the
  // inner solver is Richardson at a fixed (m̄, m̿), the split streams the
  // SAME number of A and M accesses as flat FGMRES(m̄·m̿) — the whole
  // saving is orthogonalization (2.5·m² vs 2.5·(m̄²+m̿²·0) + 4-access
  // Richardson updates) and is therefore INDEPENDENT of cA.
  EXPECT_EQ(sparse_adv.inner_kind, 'R');
  EXPECT_EQ(dense_adv.inner_kind, 'R');
}

TEST(CostModel, AdviseSplitMonotoneInBudget) {
  // Both the flat cost and the advised best cost increase strictly with
  // the preconditioner budget m, and the advised saving never decreases:
  // the deeper the flat cycle, the more its 2.5·m² term has to give.
  double prev_flat = -1.0, prev_best = -1.0, prev_saving = -1.0;
  for (const int m : {2, 4, 8, 16, 32, 64, 128}) {
    const auto adv = advise_split(45.0, 45.0, m);
    EXPECT_GT(adv.flat_cost, prev_flat) << "m=" << m;
    EXPECT_GT(adv.best_cost, prev_best) << "m=" << m;
    EXPECT_GE(adv.flat_cost - adv.best_cost, prev_saving) << "m=" << m;
    prev_flat = adv.flat_cost;
    prev_best = adv.best_cost;
    prev_saving = adv.flat_cost - adv.best_cost;
  }
}

TEST(CostModel, RichardsonSplitSavingIndependentOfAccessConstant) {
  // The cA-independence property in isolation: sweeping cA by two orders
  // of magnitude with cM = cA leaves the advised saving over flat
  // FGMRES(64) exactly unchanged (the advisor keeps the same (m̄, m̿, R)
  // and every cA access it adds is one the flat cycle also pays).
  const auto base = advise_split(1.5, 1.5, 64);
  const double base_saving = base.flat_cost - base.best_cost;
  for (const double ca : {5.0, 45.0, 180.0, 300.0}) {
    const auto adv = advise_split(ca, ca, 64);
    EXPECT_NEAR(adv.flat_cost - adv.best_cost, base_saving, 1e-9) << "cA=" << ca;
  }
}

}  // namespace
}  // namespace nk
