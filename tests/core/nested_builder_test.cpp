// Tests for the nested-solver framework: MultiPrecMatrix, precision
// bridges, configuration validation, and end-to-end nested solves.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "core/f3r.hpp"
#include "core/nested_builder.hpp"
#include "core/runner.hpp"
#include "sparse/gen/laplace.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/scaling.hpp"
#include "sparse/spmv.hpp"

namespace nk {
namespace {

std::shared_ptr<MultiPrecMatrix> small_matrix(bool sell = false) {
  auto a = gen::laplace2d(10, 10);
  diagonal_scale_symmetric(a);
  return std::make_shared<MultiPrecMatrix>(std::move(a), sell);
}

TEST(MultiPrecMatrix, LazyCopiesTrackedByValueBytes) {
  auto a = small_matrix();
  const std::size_t base = a->value_bytes();
  EXPECT_EQ(base, a->csr_fp64().vals.size() * 8);
  auto op32 = a->make_operator<float>(Prec::FP32);
  EXPECT_EQ(a->value_bytes(), base + a->csr_fp64().vals.size() * 4);
  auto op16 = a->make_operator<half>(Prec::FP16);
  EXPECT_EQ(a->value_bytes(), base + a->csr_fp64().vals.size() * 6);
  // Re-requesting does not duplicate.
  auto op16b = a->make_operator<float>(Prec::FP16);
  EXPECT_EQ(a->value_bytes(), base + a->csr_fp64().vals.size() * 6);
}

TEST(MultiPrecMatrix, OperatorsComputeSameProduct) {
  auto a = small_matrix();
  const index_t n = a->size();
  const auto xd = random_vector<double>(n, 1, 0.0, 1.0);
  std::vector<double> y64(n);
  auto op64 = a->make_operator<double>(Prec::FP64);
  op64->apply(std::span<const double>(xd), std::span<double>(y64));

  auto op16 = a->make_operator<float>(Prec::FP16);
  const auto xf = converted<float>(xd);
  std::vector<float> y16(n);
  op16->apply(std::span<const float>(xf), std::span<float>(y16));
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(y16[i], y64[i], 2e-2);
  EXPECT_EQ(op64->spmv_count(), 1u);
}

TEST(MultiPrecMatrix, SellVariantMatchesCsr) {
  auto ac = small_matrix(false);
  auto as = small_matrix(true);
  EXPECT_FALSE(ac->uses_sell());
  EXPECT_TRUE(as->uses_sell());
  const index_t n = ac->size();
  const auto x = random_vector<double>(n, 2, 0.0, 1.0);
  std::vector<double> yc(n), ys(n);
  ac->make_operator<double>(Prec::FP64)->apply(std::span<const double>(x), std::span<double>(yc));
  as->make_operator<double>(Prec::FP64)->apply(std::span<const double>(x), std::span<double>(ys));
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(ys[i], yc[i], 1e-12);
}

TEST(MultiPrecMatrix, RejectsRectangular) {
  CsrMatrix<double> r(2, 3);
  r.row_ptr = {0, 0, 0};
  EXPECT_THROW(MultiPrecMatrix(std::move(r)), std::invalid_argument);
}

TEST(PrecisionBridge, RoundTripsThroughLowerPrecision) {
  // Bridge double→float over an inner identity: output is the fp32-rounded
  // input.
  IdentityPrecond<float> inner(4);
  PrecisionBridge<double, float> bridge(&inner);
  std::vector<double> r = {1.0 + 1e-12, 2.0, -3.5, 0.1};
  std::vector<double> z(4);
  bridge.apply(std::span<const double>(r), std::span<double>(z));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(z[i], static_cast<double>(static_cast<float>(r[i])));
  EXPECT_EQ(bridge.size(), 4);
}

TEST(Validation, RejectsBadConfigs) {
  NestedConfig cfg;
  EXPECT_THROW(validate(cfg), std::invalid_argument);  // empty

  cfg = f3r_config(Prec::FP16);
  cfg.levels[0].vec = Prec::FP32;  // outermost must be fp64
  EXPECT_THROW(validate(cfg), std::invalid_argument);

  cfg = f3r_config(Prec::FP16);
  cfg.levels[0].kind = SolverKind::Richardson;
  EXPECT_THROW(validate(cfg), std::invalid_argument);

  cfg = f3r_config(Prec::FP16);
  cfg.levels[2].m = 0;
  EXPECT_THROW(validate(cfg), std::invalid_argument);

  cfg = f3r_config(Prec::FP16);
  cfg.levels[3].cycle = 0;
  EXPECT_THROW(validate(cfg), std::invalid_argument);

  EXPECT_NO_THROW(validate(f3r_config(Prec::FP16)));
}

TEST(TupleNotation, MatchesPaperString) {
  EXPECT_EQ(tuple_notation(f3r_config(Prec::FP16)), "(F^100, F^8, F^4, R^2, M)");
}

class NestedSolveAllPrecisions : public ::testing::TestWithParam<Prec> {};

TEST_P(NestedSolveAllPrecisions, F3rSolvesSmallLaplacian) {
  auto a = gen::laplace2d(16, 16);
  auto p = prepare_problem("lap", std::move(a), true, 1.0, 1.0, 11);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 2);
  const auto res = run_nested(p, m, f3r_config(GetParam()), f3r_termination(1e-8));
  EXPECT_TRUE(res.converged) << prec_name(GetParam());
  EXPECT_LT(res.final_relres, 1e-8);
  EXPECT_GT(res.precond_invocations, 0u);
  // F3R applies M in multiples of m2·m3·m4 = 64 per outer iteration.
  EXPECT_EQ(res.precond_invocations % 64, 0u);
}

INSTANTIATE_TEST_SUITE_P(Precisions, NestedSolveAllPrecisions,
                         ::testing::Values(Prec::FP64, Prec::FP32, Prec::FP16),
                         [](const auto& info) { return prec_name(info.param); });

TEST(NestedSolver, SolutionMatchesDirectKrylov) {
  auto a = gen::hpcg(3, 3, 3);
  auto p = prepare_problem("hpcg", std::move(a), true, 1.0, 1.0, 3);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 2);
  const auto res = run_nested(p, m, f3r_config(Prec::FP16), f3r_termination(1e-10));
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.final_relres, 1e-10);  // true fp64 residual, not an estimate
}

TEST(NestedSolver, RichardsonWeightProbes) {
  auto p = prepare_problem("lap", gen::laplace2d(12, 12), true, 1.0, 1.0, 4);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 1);
  NestedSolver s(p.a, m, f3r_config(Prec::FP16));
  const auto w0 = s.richardson_weights();
  ASSERT_EQ(w0.size(), 2u);  // m4 = 2 weights
  EXPECT_FLOAT_EQ(w0[0], 1.0f);

  std::vector<double> x(p.b.size(), 0.0);
  s.solve(std::span<const double>(p.b), std::span<double>(x), f3r_termination(1e-8));
  const auto w1 = s.richardson_weights();
  // ≥ 64 Richardson invocations happened → at least one ω update.
  EXPECT_NE(w1[0], 1.0f);

  s.reset_state();
  EXPECT_FLOAT_EQ(s.richardson_weights()[0], 1.0f);
}

TEST(NestedSolver, RestartsCountedAndCapped) {
  auto p = prepare_problem("lap", gen::laplace2d(12, 12), true, 1.0, 1.0, 5);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 1);
  // Tiny outer dimension + impossible tolerance → exhausts all restarts.
  F3rParams prm;
  prm.m1 = 2;
  auto cfg = f3r_config(Prec::FP64, prm);
  NestedSolver s(p.a, m, cfg);
  Termination t;
  t.rtol = 1e-300;
  t.max_restarts = 2;
  std::vector<double> x(p.b.size(), 0.0);
  const auto res = s.solve(std::span<const double>(p.b), std::span<double>(x), t);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.restarts, 2);
  // 3 cycles × m1=2, minus possible lucky-breakdown early exits when the
  // inner pipeline solves the correction (nearly) exactly.
  EXPECT_GE(res.iterations, 3);
  EXPECT_LE(res.iterations, 6);
}

TEST(NestedSolver, HistoryRecordsOuterEstimates) {
  auto p = prepare_problem("lap", gen::laplace2d(12, 12), true, 1.0, 1.0, 6);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 2);
  NestedSolver s(p.a, m, f3r_config(Prec::FP32));
  Termination t = f3r_termination(1e-8);
  std::vector<double> x(p.b.size(), 0.0);
  const auto res = s.solve(std::span<const double>(p.b), std::span<double>(x), t);
  ASSERT_EQ(static_cast<int>(res.history.size()), res.iterations);
  EXPECT_LE(res.history.back(), 1e-8 * 1.01);

  t.record_history = false;
  std::vector<double> x2(p.b.size(), 0.0);
  EXPECT_TRUE(s.solve(std::span<const double>(p.b), std::span<double>(x2), t).history.empty());
}

TEST(NestedSolver, MismatchedPrecondRejected) {
  auto p = prepare_problem("lap", gen::laplace2d(8, 8), true, 1.0, 1.0, 7);
  auto p2 = prepare_problem("lap2", gen::laplace2d(4, 4), true, 1.0, 1.0, 7);
  auto m_small = make_primary(p2, PrecondKind::BlockJacobiIluIc, 1);
  EXPECT_THROW(NestedSolver(p.a, m_small, f3r_config(Prec::FP64)), std::invalid_argument);
}

TEST(NestedSolver, TwoLevelConfigWorks) {
  // Minimal nesting: (F^50, R^2, M) — Richardson directly under the outer.
  auto p = prepare_problem("lap", gen::laplace2d(12, 12), true, 1.0, 1.0, 8);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 2);
  NestedConfig cfg;
  cfg.name = "F-R";
  LevelSpec outer;
  outer.m = 50;
  LevelSpec rich;
  rich.kind = SolverKind::Richardson;
  rich.m = 2;
  rich.mat = Prec::FP64;
  rich.vec = Prec::FP64;
  cfg.levels = {outer, rich};
  const auto res = run_nested(p, m, cfg, f3r_termination(1e-8));
  EXPECT_TRUE(res.converged);
}

TEST(NestedSolver, SingleLevelIsPlainFgmres) {
  // (F^100, M): degenerate nesting = preconditioned FGMRES.
  auto p = prepare_problem("lap", gen::laplace2d(10, 10), true, 1.0, 1.0, 9);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 2);
  NestedConfig cfg;
  cfg.name = "flat";
  LevelSpec outer;
  outer.m = 100;
  cfg.levels = {outer};
  const auto res = run_nested(p, m, cfg, f3r_termination(1e-8));
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.precond_invocations, static_cast<std::uint64_t>(res.iterations));
}

TEST(NestedSolver, GpuSimSellConfiguration) {
  // SELL storage + SD-AINV: the Figure 2 configuration.
  auto p = prepare_problem("lap", gen::laplace2d(12, 12), true, 1.0, 1.0, 10, /*use_sell=*/true);
  auto m = make_primary(p, PrecondKind::SdAinv);
  const auto res = run_nested(p, m, f3r_config(Prec::FP16), f3r_termination(1e-8));
  EXPECT_TRUE(res.converged);
}

}  // namespace
}  // namespace nk
