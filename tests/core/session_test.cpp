// nk::Session facade tests: shim/facade consistency (the run_* entry
// points are one-line shims over Session since PR 5, so the MatchesLegacy*
// tests pin that the two spellings cannot drift apart — equivalence with
// the PRE-descriptor implementations is pinned separately by the committed
// conformance baseline, whose rows were verified byte-identical across the
// rewrite), per-column batched/sequential agreement through the facade,
// workspace reuse across repeated solves, and the custom-NestedConfig
// escape hatch.
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/runner.hpp"
#include "core/session.hpp"
#include "support/problems.hpp"

namespace nk {
namespace {

#ifdef _OPENMP
struct SingleThreadGuard {
  int saved = omp_get_max_threads();
  SingleThreadGuard() { omp_set_num_threads(1); }
  ~SingleThreadGuard() { omp_set_num_threads(saved); }
};
#else
struct SingleThreadGuard {};
#endif

PreparedProblem sym_problem() {
  return prepare_problem("s", test::laplace2d(12, 12), true, 1.0, 1.0, 2);
}

PreparedProblem nonsym_problem() {
  return prepare_problem("n", test::scaled_convdiff2d(12, 4.0), false, 1.0, 1.0, 2);
}

TEST(Session, MatchesLegacyRunCgExactly) {
  const auto p = sym_problem();
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 2);
  const auto legacy = run_cg(p, *m, Prec::FP16);
  const auto via_session =
      Session(p, SolverSpec::parse("cg@fp16"), borrow_precond(*m)).solve();
  EXPECT_EQ(via_session.solver, "fp16-CG");
  EXPECT_EQ(via_session.solver, legacy.solver);
  EXPECT_EQ(via_session.iterations, legacy.iterations);
  EXPECT_EQ(via_session.converged, legacy.converged);
  EXPECT_DOUBLE_EQ(via_session.final_relres, legacy.final_relres);
  EXPECT_EQ(via_session.history.size(), legacy.history.size());
}

TEST(Session, MatchesLegacyFgmresAndIrGmres) {
  const auto p = nonsym_problem();
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 2);
  const auto fg_legacy = run_fgmres_restarted(p, *m, Prec::FP32, 16);
  const auto fg = Session(p, SolverSpec::parse("fgmres16@fp32"), borrow_precond(*m)).solve();
  EXPECT_EQ(fg.solver, "fp32-FGMRES(16)");
  EXPECT_EQ(fg.iterations, fg_legacy.iterations);
  EXPECT_DOUBLE_EQ(fg.final_relres, fg_legacy.final_relres);

  const auto ir_legacy = run_ir_gmres(p, *m, Prec::FP32, 8);
  const auto ir = Session(p, SolverSpec::parse("ir-gmres8@fp32"), borrow_precond(*m)).solve();
  EXPECT_EQ(ir.solver, "fp32-IR-GMRES(8)");
  EXPECT_EQ(ir.iterations, ir_legacy.iterations);
  EXPECT_DOUBLE_EQ(ir.final_relres, ir_legacy.final_relres);
}

TEST(Session, MatchesLegacyNested) {
  const auto p = sym_problem();
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 2);
  const auto legacy = run_nested(p, m, f3r_config(Prec::FP16));
  const auto via_spec = Session(p, SolverSpec::parse("f3r@fp16"), m).solve();
  EXPECT_EQ(via_spec.solver, "fp16-F3R");
  EXPECT_EQ(via_spec.iterations, legacy.iterations);
  EXPECT_EQ(via_spec.converged, legacy.converged);
}

TEST(Session, BuildsPrecondFromSpecAlone) {
  const auto p = sym_problem();
  Session s(p, SolverSpec::parse("krylov@fp16/bj;nblocks=4"));
  EXPECT_EQ(s.precond().name(), "bj-ic0");  // bj auto-selects IC(0) on SPD
  EXPECT_EQ(s.solver_name(), "fp16-CG");
  const auto r = s.solve();
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.final_relres, 1.5e-8);
  EXPECT_EQ(r.precond_invocations, static_cast<std::uint64_t>(r.iterations));
}

/// The facade preserves the batched/sequential bit-identity contract:
/// solve_many columns reproduce per-column solve() exactly (single-thread
/// reductions), across plain, waved, and masked scheduling specs.
TEST(Session, SolveManyColumnsMatchSequentialSolves) {
  SingleThreadGuard guard;
  const auto p = sym_problem();
  const std::size_t n = p.b.size();
  const int k = 5;
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 2);
  const std::vector<double> B = batch_rhs(p, k, 11);

  for (const char* spec : {"cg", "cg;wave=2", "cg;masked"}) {
    SCOPED_TRACE(spec);
    Session batched(p, SolverSpec::parse(spec), m);
    std::vector<double> X(n * k, 0.0);
    const auto many = batched.solve_many(std::span<const double>(B), std::span<double>(X), k);
    ASSERT_EQ(many.size(), static_cast<std::size_t>(k));

    Session seq(p, SolverSpec::parse("cg"), m);
    for (int c = 0; c < k; ++c) {
      std::vector<double> x(n, 0.0);
      const auto one = seq.solve(std::span<const double>(B.data() + c * n, n),
                                 std::span<double>(x));
      EXPECT_EQ(many[c].iterations, one.iterations) << "column " << c;
      EXPECT_EQ(many[c].converged, one.converged) << "column " << c;
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(X[c * n + i], x[i]) << "column " << c << " row " << i;
    }
  }
}

TEST(Session, SolveManyNestedAndSequentialKindsWork) {
  const auto p = sym_problem();
  const std::size_t n = p.b.size();
  const int k = 3;
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 2);
  const std::vector<double> B = batch_rhs(p, k, 11);
  for (const char* spec : {"f3r@fp16", "fgmres16"}) {
    SCOPED_TRACE(spec);
    Session s(p, SolverSpec::parse(spec), m);
    std::vector<double> X(n * k, 0.0);
    const auto many = s.solve_many(std::span<const double>(B), std::span<double>(X), k);
    ASSERT_EQ(many.size(), static_cast<std::size_t>(k));
    for (const auto& r : many) EXPECT_TRUE(r.converged) << r.solver;
  }
}

TEST(Session, RepeatedSolvesReuseTheWorkspace) {
  const auto p = sym_problem();
  Session s(p, SolverSpec::parse("f3r@fp32/bj;nblocks=2"));
  const auto r1 = s.solve();
  const auto allocs = s.workspace().allocations();
  EXPECT_GT(allocs, 0u);  // first solve acquired the level buffers
  const auto r2 = s.solve();
  EXPECT_EQ(s.workspace().allocations(), allocs);  // second solve: zero new slabs
  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_EQ(r1.converged, r2.converged);
}

TEST(Session, CustomNestedConfigEscapeHatch) {
  const auto p = sym_problem();
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 2);
  NestedConfig cfg = f3r_config(Prec::FP32);
  cfg.name = "custom-f3r";
  cfg.levels[1].inner_rtol = 0.1;  // not expressible in the spec grammar
  const auto legacy = run_nested(p, m, cfg);
  Session s(p, cfg, f3r_termination(), m);
  const auto r = s.solve();
  EXPECT_EQ(r.solver, "custom-f3r");
  EXPECT_EQ(r.iterations, legacy.iterations);
  EXPECT_EQ(r.converged, legacy.converged);
}

TEST(Session, BorrowedProblemAvoidsCopyAndMatchesOwned) {
  const auto p = sym_problem();
  Session owned(p, SolverSpec::parse("cg/jacobi"));
  Session borrowed(borrow_problem(p), SolverSpec::parse("cg/jacobi"));
  EXPECT_EQ(&borrowed.problem(), &p);   // shares the caller's object
  EXPECT_NE(&owned.problem(), &p);      // owns a copy
  const auto r1 = owned.solve();
  const auto r2 = borrowed.solve();
  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_DOUBLE_EQ(r1.final_relres, r2.final_relres);
}

TEST(Session, BorrowedPrecondSharesInvocationCounter) {
  const auto p = sym_problem();
  auto m = make_primary(p, PrecondKind::Jacobi);
  const auto before = m->invocations();
  Session s(p, SolverSpec::parse("cg"), borrow_precond(*m));
  const auto r = s.solve();
  EXPECT_EQ(m->invocations() - before, r.precond_invocations);
  EXPECT_GT(r.precond_invocations, 0u);
}

TEST(Session, MakeRhsBatchMatchesBatchRhs) {
  const auto p = sym_problem();
  Session s(p, SolverSpec::parse("cg/jacobi"));
  EXPECT_EQ(s.make_rhs_batch(3, 7), batch_rhs(p, 3, 7));
  // Column 0 with the problem's own seed reproduces p.b.
  EXPECT_EQ(s.make_rhs_batch(1, 2), p.b);
}

// ---------------------------------------------------------------------------
// Concurrency contract: a Session is single-solver-at-a-time; the loser of
// an overlapping solve fails fast with kInvalidInput/"concurrent-use"
// (session.hpp).  Deterministic via a preconditioner whose first apply
// parks the in-flight solve on a gate while the main thread probes.
// ---------------------------------------------------------------------------

struct SolveGate {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;
};

class GatedPreconditioner final : public Preconditioner<double> {
 public:
  GatedPreconditioner(std::unique_ptr<Preconditioner<double>> inner,
                      std::shared_ptr<SolveGate> gate)
      : inner_(std::move(inner)), gate_(std::move(gate)) {}

  void apply(std::span<const double> r, std::span<double> z) override {
    if (!blocked_once_) {
      blocked_once_ = true;
      std::unique_lock<std::mutex> lock(gate_->mu);
      gate_->entered = true;
      gate_->cv.notify_all();
      gate_->cv.wait(lock, [&] { return gate_->release; });
    }
    inner_->apply(r, z);
  }
  [[nodiscard]] index_t size() const override { return inner_->size(); }

 private:
  std::unique_ptr<Preconditioner<double>> inner_;
  std::shared_ptr<SolveGate> gate_;
  bool blocked_once_ = false;
};

class GatedPrimary final : public PrimaryPrecond {
 public:
  GatedPrimary(std::shared_ptr<PrimaryPrecond> inner, std::shared_ptr<SolveGate> gate)
      : inner_(std::move(inner)), gate_(std::move(gate)) {}
  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] index_t size() const override { return inner_->size(); }
  std::unique_ptr<Preconditioner<double>> make_apply_fp64(Prec storage) override {
    return std::make_unique<GatedPreconditioner>(inner_->make_apply_fp64(storage), gate_);
  }
  std::unique_ptr<Preconditioner<float>> make_apply_fp32(Prec storage) override {
    return inner_->make_apply_fp32(storage);
  }
  std::unique_ptr<Preconditioner<half>> make_apply_fp16(Prec storage) override {
    return inner_->make_apply_fp16(storage);
  }

 private:
  std::shared_ptr<PrimaryPrecond> inner_;
  std::shared_ptr<SolveGate> gate_;
};

TEST(Session, ConcurrentSolveFailsFastNotCorrupts) {
  const auto p = sym_problem();
  auto real = make_primary(p, PrecondKind::Jacobi);
  auto gate = std::make_shared<SolveGate>();
  Session s(p, SolverSpec::parse("cg"),
            std::make_shared<GatedPrimary>(borrow_precond(*real), gate));

  std::vector<double> x1(p.b.size(), 0.0);
  SolveResult winner;
  std::thread solver([&] { winner = s.solve(p.b, x1); });
  {
    std::unique_lock<std::mutex> lock(gate->mu);
    gate->cv.wait(lock, [&] { return gate->entered; });
  }

  // The solve slot is provably held: every overlapping call loses fast.
  const SolveResult loser = s.solve();
  EXPECT_EQ(loser.status, SolveStatus::kInvalidInput);
  EXPECT_EQ(loser.failure, "concurrent-use");
  EXPECT_FALSE(loser.converged);

  const auto B = s.make_rhs_batch(2);
  std::vector<double> X(B.size(), 0.0);
  const auto losers = s.solve_many(B, X, 2);
  ASSERT_EQ(losers.size(), 2u);
  for (const auto& r : losers) {
    EXPECT_EQ(r.status, SolveStatus::kInvalidInput);
    EXPECT_EQ(r.failure, "concurrent-use");
  }

  {
    const std::lock_guard<std::mutex> lock(gate->mu);
    gate->release = true;
  }
  gate->cv.notify_all();
  solver.join();
  EXPECT_TRUE(winner.converged) << summarize(winner);

  // The slot is released: the Session is fully usable again.
  const SolveResult after = s.solve();
  EXPECT_TRUE(after.converged) << summarize(after);
}

TEST(Session, ThrowsSpecErrorOnUnknownKinds) {
  const auto p = sym_problem();
  SolverSpec bad;
  bad.kind = "petsc-ksp";  // programmatic spec skipping parse() validation
  EXPECT_THROW(Session(p, bad), SpecError);
  SolverSpec badpc = SolverSpec::parse("cg");
  badpc.precond.kind = "ilut";
  EXPECT_THROW(Session(p, badpc), SpecError);
}

struct BackendEnvGuard {
  ~BackendEnvGuard() { ::unsetenv("NKRYLOV_BACKEND"); }
  static void set(const char* v) { ::setenv("NKRYLOV_BACKEND", v, 1); }
};

TEST(Session, BackendResolutionOrderIsSpecThenEnvThenHost) {
  const BackendEnvGuard guard;
  const auto p = sym_problem();
  // Default: host.
  ::unsetenv("NKRYLOV_BACKEND");
  EXPECT_EQ(Session(p, SolverSpec::parse("cg")).backend(), Backend::kHost);
  // Env overrides the default ("omp" aliases host).
  BackendEnvGuard::set("serial");
  EXPECT_EQ(Session(p, SolverSpec::parse("cg")).backend(), Backend::kSerial);
  BackendEnvGuard::set("omp");
  EXPECT_EQ(Session(p, SolverSpec::parse("cg")).backend(), Backend::kHost);
  // Spec overrides the env, whichever spelling.
  BackendEnvGuard::set("host");
  EXPECT_EQ(Session(p, SolverSpec::parse("cg;backend=serial")).backend(),
            Backend::kSerial);
  BackendEnvGuard::set("serial");
  EXPECT_EQ(Session(p, SolverSpec::parse("cg:host")).backend(), Backend::kHost);
  // And the env-selected backend actually solves.
  Session s(p, SolverSpec::parse("cg"));
  EXPECT_EQ(s.backend(), Backend::kSerial);
  const SolveResult r = s.solve();
  EXPECT_TRUE(r.converged) << summarize(r);
}

TEST(Session, UnknownBackendEnvFailsFastNotSilently) {
  // An unknown NKRYLOV_BACKEND must never silently run on host: the
  // Session builds (construction stays throw-free for env problems) but
  // every solve fails fast with kInvalidInput naming the backend — the
  // library-path twin of the CLI front-ends' exit(2).
  const BackendEnvGuard guard;
  BackendEnvGuard::set("cuda");
  const auto p = sym_problem();
  Session s(p, SolverSpec::parse("cg"));
  const SolveResult r = s.solve();
  EXPECT_EQ(r.status, SolveStatus::kInvalidInput);
  EXPECT_NE(r.failure.find("backend"), std::string::npos) << r.failure;
  EXPECT_NE(r.failure.find("cuda"), std::string::npos) << r.failure;
  std::vector<double> B(p.b.size() * 2), X(p.b.size() * 2);
  for (const SolveResult& c : s.solve_many(B, X, 2))
    EXPECT_EQ(c.status, SolveStatus::kInvalidInput);
  // A spec-level backend sidesteps the poisoned environment entirely.
  Session ok(p, SolverSpec::parse("cg;backend=serial"));
  EXPECT_EQ(ok.backend(), Backend::kSerial);
  EXPECT_TRUE(ok.solve().converged);
}

TEST(Session, SerialBackendSolvesMatchHostWithinTolerance) {
  // The serial backend is an independently written reference: same
  // algorithm, single-chain reductions.  Iterate streams may differ in
  // rounding, but both must converge to the same rtol on the same problem
  // and report the same solver name.
  const auto p = sym_problem();
  for (const char* spec : {"cg@fp16", "fgmres32", "f3r@fp16"}) {
    SCOPED_TRACE(spec);
    const SolveResult host = Session(p, SolverSpec::parse(spec)).solve();
    const SolveResult serial =
        Session(p, SolverSpec::parse(std::string(spec) + ";backend=serial")).solve();
    EXPECT_EQ(host.solver, serial.solver);
    EXPECT_TRUE(host.converged) << summarize(host);
    EXPECT_TRUE(serial.converged) << summarize(serial);
    EXPECT_LE(serial.final_relres, 1e-8);
  }
}

}  // namespace
}  // namespace nk
