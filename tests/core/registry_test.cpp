// Registry tests: kind metadata, factory behavior, the conformance
// catalog's coverage contract, and the variant aliases.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/runner.hpp"
#include "core/session.hpp"
#include "core/variants.hpp"
#include "support/problems.hpp"

namespace nk {
namespace {

PreparedProblem small_problem(bool symmetric) {
  return symmetric
             ? prepare_problem("s", test::laplace2d(10, 10), true, 1.0, 1.0, 3)
             : prepare_problem("n", test::scaled_convdiff2d(10, 4.0), false, 1.0, 1.0, 3);
}

TEST(Registry, BuiltinKindsAreRegistered) {
  const auto solvers = registry().solver_kinds();
  for (const char* k : {"cg", "bicgstab", "krylov", "fgmres", "ir-gmres", "f3r", "f2",
                        "fp16-f2", "f3", "fp16-f3", "f4"})
    EXPECT_NE(std::find(solvers.begin(), solvers.end(), k), solvers.end()) << k;
  const auto preconds = registry().precond_kinds();
  for (const char* k :
       {"jacobi", "bj", "sd-ainv", "bj-ilu0", "bj-ic0", "ssor", "neumann", "none"})
    EXPECT_NE(std::find(preconds.begin(), preconds.end(), k), preconds.end()) << k;
}

TEST(Registry, ConformanceAxesMatchTheCatalogGrid) {
  // The sweep's cell ordering contract (registration order).
  EXPECT_EQ(registry().conformance_solver_kinds(),
            (std::vector<std::string>{"krylov", "fgmres", "f3r"}));
  EXPECT_EQ(registry().conformance_precond_kinds(),
            (std::vector<std::string>{"jacobi", "bj", "sd-ainv"}));
}

TEST(Registry, MakePrecondMatchesLegacyMakePrimary) {
  const auto psym = small_problem(true);
  const auto pnon = small_problem(false);
  EXPECT_EQ(registry().make_precond(PrecondSpec::parse("bj"), psym)->name(), "bj-ic0");
  EXPECT_EQ(registry().make_precond(PrecondSpec::parse("bj"), pnon)->name(), "bj-ilu0");
  EXPECT_EQ(registry().make_precond(PrecondSpec::parse("bj-ilu0"), psym)->name(),
            "bj-ilu0");
  EXPECT_EQ(registry().make_precond(PrecondSpec::parse("sd-ainv"), psym)->name(),
            "sd-ainv");
  EXPECT_EQ(registry().make_precond(PrecondSpec::parse("jacobi"), psym)->name(), "jacobi");
  EXPECT_EQ(registry().make_precond(PrecondSpec::parse("none"), psym)->name(), "none");
}

TEST(Registry, UnknownKindsThrowSpecErrorNamingTheRegistered) {
  const auto p = small_problem(true);
  PrecondSpec ps;
  ps.kind = "ilut";
  try {
    [[maybe_unused]] auto unused = registry().make_precond(ps, p);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("sd-ainv"), std::string::npos) << e.what();
  }
  SolverSpec ss;
  ss.kind = "gmres-dr";
  auto m = registry().make_precond(PrecondSpec::parse("jacobi"), p);
  SolverWorkspace ws;
  EXPECT_THROW(registry().make_solver(ss, p, m, &ws), SpecError);
}

TEST(Registry, MakeSolverValidatesKindShape) {
  const auto p = small_problem(true);
  auto m = registry().make_precond(PrecondSpec::parse("jacobi"), p);
  SolverWorkspace ws;
  SolverSpec bad_m;
  bad_m.kind = "cg";
  bad_m.m = 8;  // cg takes no iteration count
  EXPECT_THROW(registry().make_solver(bad_m, p, m, &ws), SpecError);
  SolverSpec bad_prec;
  bad_prec.kind = "f2";
  bad_prec.prec = Prec::FP32;  // variants have fixed precisions
  EXPECT_THROW(registry().make_solver(bad_prec, p, m, &ws), SpecError);
}

/// Acceptance pin: every solver×precond cell of the conformance catalog is
/// constructible from a spec string alone (preconditioner included) and
/// produces a converged solve on an easy problem.
TEST(Registry, EveryConformanceCellConstructibleFromSpecStringAlone) {
  for (const bool symmetric : {true, false}) {
    const auto p = small_problem(symmetric);
    for (const std::string& sk : registry().conformance_solver_kinds()) {
      for (const std::string& pk : registry().conformance_precond_kinds()) {
        for (const char* prec : {"fp64", "fp32", "fp16"}) {
          const std::string text = sk + std::string(sk == "fgmres" ? "64" : "") + "@" +
                                   prec + "/" + pk + ";nblocks=4;rtol=1e-08";
          SCOPED_TRACE(text);
          const SolverSpec spec = SolverSpec::parse(text);
          EXPECT_EQ(SolverSpec::parse(spec.to_string()), spec);
          Session s(p, spec);
          const SolveResult r = s.solve();
          EXPECT_TRUE(r.converged) << r.solver << " relres " << r.final_relres;
        }
      }
    }
  }
}

TEST(Registry, EveryKindSupportsBothBackendsByDefault) {
  for (const std::string& k : registry().solver_kinds()) {
    const SolverKindInfo* info = registry().solver_info(k);
    ASSERT_NE(info, nullptr) << k;
    EXPECT_TRUE(info->supports_backend(Backend::kHost)) << k;
    EXPECT_TRUE(info->supports_backend(Backend::kSerial)) << k;
  }
}

TEST(Registry, MakeSolverRejectsUnsupportedBackend) {
  // A device-resident kind narrows its backends list; asking for one it
  // cannot build on is a SpecError naming the backend, not a silent host
  // build.  Registered here as a host-only alias of cg.
  SolverKindInfo info;
  info.kind = "test-host-only";
  info.summary = "registry backend-narrowing test kind";
  info.backends = {Backend::kHost};
  registry().add_solver(info, [](const SolverSpec& spec, const PreparedProblem& prob,
                                 std::shared_ptr<PrimaryPrecond> m, SolverWorkspace* ws) {
    SolverSpec inner = spec;
    inner.kind = "cg";
    inner.backend.reset();
    return registry().make_solver(inner, prob, std::move(m), ws);
  });
  const auto p = small_problem(true);
  auto m = registry().make_precond(PrecondSpec::parse("jacobi"), p);
  SolverWorkspace ws;
  SolverSpec ok;
  ok.kind = "test-host-only";
  ok.backend = Backend::kHost;
  EXPECT_NE(registry().make_solver(ok, p, m, &ws), nullptr);
  SolverSpec bad = ok;
  bad.backend = Backend::kSerial;
  try {
    [[maybe_unused]] auto unused = registry().make_solver(bad, p, m, &ws);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("serial"), std::string::npos) << e.what();
  }
}

/// Acceptance pin for the backend seam: every conformance cell is also
/// constructible with an EXPLICIT backend — the serial reference backend
/// converges on the same easy problems, and the Session reports the
/// backend the spec asked for.
TEST(Registry, EveryConformanceCellConstructibleWithExplicitBackend) {
  for (const bool symmetric : {true, false}) {
    const auto p = small_problem(symmetric);
    for (const std::string& sk : registry().conformance_solver_kinds()) {
      for (const std::string& pk : registry().conformance_precond_kinds()) {
        for (const char* prec : {"fp64", "fp32", "fp16"}) {
          const std::string head =
              sk + std::string(sk == "fgmres" ? "64" : "") + "@" + prec + "/" + pk;
          const std::string opts = ";nblocks=4;rtol=1e-08";
          {
            SCOPED_TRACE(head + opts + ";backend=serial");
            Session s(p, SolverSpec::parse(head + opts + ";backend=serial"));
            EXPECT_EQ(s.backend(), Backend::kSerial);
            const SolveResult r = s.solve();
            EXPECT_TRUE(r.converged) << r.solver << " relres " << r.final_relres;
          }
          {
            // The ':backend' suffix rides the head, before any options.
            SCOPED_TRACE(head + ":host" + opts);
            Session s(p, SolverSpec::parse(head + ":host" + opts));
            EXPECT_EQ(s.backend(), Backend::kHost);
            const SolveResult r = s.solve();
            EXPECT_TRUE(r.converged) << r.solver << " relres " << r.final_relres;
          }
        }
      }
    }
  }
}

TEST(Registry, VariantAliasesMatchVariantConfig) {
  // The Table 4 variants are registered spec aliases: solving through the
  // registry kind must report the canonical variant name and match the
  // variant_config-built nested solve exactly.
  const auto p = small_problem(true);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 2);
  for (const std::string& name : variant_names()) {
    const SolveResult via_spec = Session(p, SolverSpec::parse(name), m).solve();
    const SolveResult via_cfg = run_nested(p, m, variant_config(name));
    EXPECT_EQ(via_spec.solver, name);
    EXPECT_EQ(via_spec.solver, via_cfg.solver);
    EXPECT_EQ(via_spec.iterations, via_cfg.iterations) << name;
    EXPECT_EQ(via_spec.converged, via_cfg.converged) << name;
  }
}

TEST(Registry, ConcurrentLookupAndRegistrationIsSafe) {
  // A daemon builds Sessions (registry lookups + factory calls) from many
  // threads while the test-only fault kind may still be registering: the
  // copy-on-write snapshot must keep every reader on a consistent table and
  // every info pointer valid.  Run registrations and lookups concurrently;
  // TSan (the CI tsan job runs this binary) proves the absence of races.
  const auto p = small_problem(true);
  constexpr int kThreads = 8, kRounds = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        if (t % 4 == 0) {
          // Writer: re-register a private kind (last-wins; harmless).
          PrecondKindInfo info;
          info.kind = "test-concurrent-" + std::to_string(t);
          info.summary = "registry concurrency test kind";
          registry().add_precond(info, [](const PrecondSpec& spec,
                                          const PreparedProblem& prob) {
            PrecondSpec inner = spec;
            inner.kind = "jacobi";
            return registry().make_precond(inner, prob);
          });
        }
        const SolverKindInfo* si = registry().solver_info("cg");
        if (si == nullptr || si->kind != "cg") ++failures;
        if (registry().precond_info("bj") == nullptr) ++failures;
        auto m = registry().make_precond(PrecondSpec::parse("jacobi"), p);
        SolverWorkspace ws;
        auto eng = registry().make_solver(SolverSpec::parse("cg"), p, m, &ws);
        if (eng->name() != "fp64-CG") ++failures;
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(failures.load(), 0);
  // The concurrently-registered kinds are usable afterwards.
  EXPECT_NE(registry().precond_info("test-concurrent-0"), nullptr);
}

TEST(Registry, KrylovKindDispatchesOnSymmetry) {
  const auto psym = small_problem(true);
  const auto pnon = small_problem(false);
  auto msym = registry().make_precond(PrecondSpec::parse("bj"), psym);
  auto mnon = registry().make_precond(PrecondSpec::parse("bj"), pnon);
  SolverWorkspace ws1, ws2;
  EXPECT_EQ(registry().make_solver(SolverSpec::parse("krylov"), psym, msym, &ws1)->name(),
            "fp64-CG");
  EXPECT_EQ(registry().make_solver(SolverSpec::parse("krylov"), pnon, mnon, &ws2)->name(),
            "fp64-BiCGStab");
}

}  // namespace
}  // namespace nk
