// Tests that the Section 6.2 variants reproduce Table 4 exactly.
#include <gtest/gtest.h>

#include "core/variants.hpp"

namespace nk {
namespace {

TEST(Variants, AllNamesBuildAndValidate) {
  for (const auto& name : variant_names()) {
    const auto cfg = variant_config(name);
    EXPECT_EQ(cfg.name, name);
    EXPECT_NO_THROW(validate(cfg));
    EXPECT_EQ(cfg.precond_storage, Prec::FP16);  // Table 4: M fp16 everywhere
  }
  EXPECT_THROW(variant_config("F9"), std::invalid_argument);
}

TEST(Variants, F2Structure) {
  const auto cfg = variant_config("F2");
  ASSERT_EQ(cfg.levels.size(), 2u);
  EXPECT_EQ(cfg.levels[0].m, 100);
  EXPECT_EQ(cfg.levels[1].m, 64);
  EXPECT_EQ(cfg.levels[1].mat, Prec::FP32);
  EXPECT_EQ(cfg.levels[1].vec, Prec::FP32);
}

TEST(Variants, Fp16F2Structure) {
  const auto cfg = variant_config("fp16-F2");
  ASSERT_EQ(cfg.levels.size(), 2u);
  EXPECT_EQ(cfg.levels[1].m, 64);
  EXPECT_EQ(cfg.levels[1].mat, Prec::FP16);
  EXPECT_EQ(cfg.levels[1].vec, Prec::FP16);
}

TEST(Variants, F3Structure) {
  const auto cfg = variant_config("F3");
  ASSERT_EQ(cfg.levels.size(), 3u);
  EXPECT_EQ(cfg.levels[1].m, 8);
  EXPECT_EQ(cfg.levels[1].mat, Prec::FP32);
  EXPECT_EQ(cfg.levels[2].m, 8);
  EXPECT_EQ(cfg.levels[2].mat, Prec::FP16);
  EXPECT_EQ(cfg.levels[2].vec, Prec::FP32);  // F3 keeps fp32 vectors inside
}

TEST(Variants, Fp16F3Structure) {
  const auto cfg = variant_config("fp16-F3");
  ASSERT_EQ(cfg.levels.size(), 3u);
  EXPECT_EQ(cfg.levels[2].vec, Prec::FP16);  // the difference from F3
}

TEST(Variants, F4IsF3rWithFgmresInnermost) {
  const auto cfg = variant_config("F4");
  ASSERT_EQ(cfg.levels.size(), 4u);
  EXPECT_EQ(cfg.levels[1].m, 8);
  EXPECT_EQ(cfg.levels[2].m, 4);
  EXPECT_EQ(cfg.levels[3].m, 2);
  EXPECT_EQ(cfg.levels[3].kind, SolverKind::FGMRES);  // not Richardson
  EXPECT_EQ(cfg.levels[3].mat, Prec::FP16);
  EXPECT_EQ(cfg.levels[3].vec, Prec::FP16);
}

TEST(Variants, NamesInPaperOrder) {
  EXPECT_EQ(variant_names(),
            (std::vector<std::string>{"F2", "fp16-F2", "F3", "fp16-F3", "F4"}));
}

}  // namespace
}  // namespace nk
