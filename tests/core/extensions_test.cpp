// Tests for the extension features: Chebyshev nesting levels, dynamic
// inner termination, the iterative-refinement baseline, and the new
// primary preconditioners driven through the full nested stack.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "krylov/fgmres.hpp"
#include "precond/neumann.hpp"
#include "precond/ssor.hpp"
#include "sparse/gen/laplace.hpp"

namespace nk {
namespace {

TEST(Extensions, ChebyshevInnerLevelSolves) {
  auto p = prepare_standin("hpcg_4_4_4", 1);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 8);
  NestedConfig cfg = f3r_config(Prec::FP16);
  cfg.name = "F2C-R";
  cfg.levels[2].kind = SolverKind::Chebyshev;  // replace F^4 by C^4
  cfg.levels[2].eig_ratio = 20.0;
  const auto res = run_nested(p, m, cfg, f3r_termination(1e-8));
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.final_relres, 1e-8);
  EXPECT_EQ(tuple_notation(cfg), "(F^100, F^8, C^4, R^2, M)");
}

TEST(Extensions, DynamicInnerTerminationSavesWork) {
  // With inner_rtol set, the second-level FGMRES may stop early; the solve
  // must still converge, with no more primary applications than the fixed
  // version (usually fewer on easy problems).
  auto p = prepare_standin("hpcg_4_4_4", 1);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 8);

  const auto fixed = run_nested(p, m, f3r_config(Prec::FP16), f3r_termination(1e-8));
  NestedConfig cfg = f3r_config(Prec::FP16);
  cfg.name = "fp16-F3R-dyn";
  cfg.levels[1].inner_rtol = 0.05;
  cfg.levels[2].inner_rtol = 0.05;
  const auto dyn = run_nested(p, m, cfg, f3r_termination(1e-8));

  ASSERT_TRUE(fixed.converged);
  ASSERT_TRUE(dyn.converged);
  EXPECT_LE(dyn.precond_invocations, fixed.precond_invocations * 2);
}

TEST(Extensions, InnerRtolStopsEarlyDirectly) {
  // Unit-level check: apply() with inner_rtol on an easy system performs
  // fewer Arnoldi steps than m.
  auto a = gen::laplace2d(10, 10);
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> ident(a.nrows);
  FgmresSolver<double> strict(op, ident, {.m = 50, .inner_rtol = 0.0});
  FgmresSolver<double> loose(op, ident, {.m = 50, .inner_rtol = 0.5});
  std::vector<double> v(a.nrows, 1.0), z(a.nrows);
  strict.apply(std::span<const double>(v), std::span<double>(z));
  loose.apply(std::span<const double>(v), std::span<double>(z));
  EXPECT_EQ(strict.total_iterations(), 50u);
  EXPECT_LT(loose.total_iterations(), 50u);
}

TEST(Extensions, IterativeRefinementBaselineConverges) {
  auto p = prepare_standin("hpcg_4_4_4", 1);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 8);
  FlatSolverCaps caps;
  caps.max_iters = 4000;
  for (Prec prec : {Prec::FP32, Prec::FP16}) {
    const auto res = run_ir_gmres(p, *m, prec, 8, caps);
    EXPECT_TRUE(res.converged) << prec_name(prec);
    EXPECT_LT(res.final_relres, 1e-8) << prec_name(prec);
    EXPECT_EQ(res.solver, std::string(prec_name(prec)) + "-IR-GMRES(8)");
    EXPECT_GT(res.iterations, 0);
  }
}

TEST(Extensions, IrHistoryIsMonotoneUntilConvergence) {
  auto p = prepare_standin("hpcg_4_4_4", 1);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 8);
  FlatSolverCaps caps;
  caps.max_iters = 4000;
  const auto res = run_ir_gmres(p, *m, Prec::FP32, 8, caps);
  ASSERT_TRUE(res.converged);
  ASSERT_GE(res.history.size(), 2u);
  for (std::size_t i = 1; i < res.history.size(); ++i)
    EXPECT_LT(res.history[i], res.history[i - 1]);
}

TEST(Extensions, SsorAsPrimaryOfF3r) {
  auto p = prepare_standin("hpcg_4_4_4", 1);
  auto ssor = std::make_shared<SsorPrecond>(p.a->csr_fp64(),
                                            SsorPrecond::Config{.nblocks = 8, .omega = 1.0});
  const auto res = run_nested(p, std::static_pointer_cast<PrimaryPrecond>(ssor),
                              f3r_config(Prec::FP16), f3r_termination(1e-8));
  EXPECT_TRUE(res.converged);
}

TEST(Extensions, NeumannAsPrimaryOfF3r) {
  auto p = prepare_standin("hpcg_4_4_4", 1);
  auto nm = std::make_shared<NeumannPrecond>(p.a->csr_fp64(),
                                             NeumannPrecond::Config{.degree = 2});
  const auto res = run_nested(p, std::static_pointer_cast<PrimaryPrecond>(nm),
                              f3r_config(Prec::FP16), f3r_termination(1e-8));
  EXPECT_TRUE(res.converged);
}

TEST(Extensions, ChebyshevTupleNotationTag) {
  NestedConfig cfg;
  LevelSpec outer;
  outer.m = 10;
  LevelSpec cheb;
  cheb.kind = SolverKind::Chebyshev;
  cheb.m = 3;
  cfg.levels = {outer, cheb};
  EXPECT_EQ(tuple_notation(cfg), "(F^10, C^3, M)");
}

}  // namespace
}  // namespace nk
