// Tests for the block-Jacobi SSOR preconditioner.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "krylov/cg.hpp"
#include "precond/ssor.hpp"
#include "sparse/spmv.hpp"
#include "support/problems.hpp"

namespace nk {
namespace {

TEST(Ssor, DiagonalMatrixClosedForm) {
  // For diagonal A, M_SSOR = ω/(2−ω)·(D/ω)D⁻¹(D/ω) = D/(ω(2−ω)), so
  // M⁻¹ r = ω(2−ω)·D⁻¹ r; exactly D⁻¹ only at ω = 1.
  CsrMatrix<double> a(3, 3);
  a.row_ptr = {0, 1, 2, 3};
  a.col_idx = {0, 1, 2};
  a.vals = {2.0, 4.0, 8.0};
  for (double om : {0.5, 1.0, 1.5}) {
    SsorPrecond m(a, {.nblocks = 1, .omega = om});
    auto h = m.make_apply_fp64(Prec::FP64);
    std::vector<double> r = {2.0, 4.0, 8.0}, z(3);
    h->apply(std::span<const double>(r), std::span<double>(z));
    const double factor = om * (2.0 - om);
    EXPECT_NEAR(z[0], factor, 1e-14) << "omega=" << om;
    EXPECT_NEAR(z[1], factor, 1e-14);
    EXPECT_NEAR(z[2], factor, 1e-14);
  }
}

TEST(Ssor, MatchesManualSweepOnSmallSystem) {
  // Hand-computed SSOR (ω = 1, symmetric Gauss-Seidel) on a 2×2 system:
  // forward (D+L)y = r, scale y ← D y, backward (D+U)z = y.
  CsrMatrix<double> a(2, 2);
  a.row_ptr = {0, 2, 4};
  a.col_idx = {0, 1, 0, 1};
  a.vals = {4.0, 1.0, 1.0, 4.0};
  SsorPrecond m(a, {.nblocks = 1, .omega = 1.0});
  auto h = m.make_apply_fp64(Prec::FP64);
  std::vector<double> r = {8.0, 9.0}, z(2);
  h->apply(std::span<const double>(r), std::span<double>(z));
  // y0 = 8/4 = 2; y1 = (9 − 1·2)/4 = 1.75; scale: (8, 7);
  // back: z1 = 7/4 = 1.75; z0 = (8 − 1·1.75)/4 = 1.5625.
  EXPECT_NEAR(z[1], 1.75, 1e-14);
  EXPECT_NEAR(z[0], 1.5625, 1e-14);
}

TEST(Ssor, SymmetricApplyForSpdMatrix) {
  auto a = test::laplace2d(10, 10);
  SsorPrecond m(a, {.nblocks = 2, .omega = 1.2});
  auto h = m.make_apply_fp64(Prec::FP64);
  const auto u = random_vector<double>(a.nrows, 1, -1.0, 1.0);
  const auto v = random_vector<double>(a.nrows, 2, -1.0, 1.0);
  std::vector<double> mu(a.nrows), mv(a.nrows);
  h->apply(std::span<const double>(u), std::span<double>(mu));
  h->apply(std::span<const double>(v), std::span<double>(mv));
  const double lhs = blas::dot(std::span<const double>(mu), std::span<const double>(v));
  const double rhs = blas::dot(std::span<const double>(u), std::span<const double>(mv));
  EXPECT_NEAR(lhs, rhs, 1e-10 * std::abs(lhs));
}

TEST(Ssor, PreconditionsCgFasterThanJacobi) {
  auto a = test::scaled_laplace2d(20, 20);
  CsrOperator<double, double> op(a);
  const auto b = random_vector<double>(a.nrows, 3, 0.0, 1.0);

  IdentityPrecond<double> ident(a.nrows);
  CgSolver<double> plain(op, ident, {.rtol = 1e-8, .max_iters = 5000});
  std::vector<double> x1(a.nrows, 0.0);
  const auto r1 = plain.solve(b, std::span<double>(x1));

  SsorPrecond ssor(a, {.nblocks = 1, .omega = 1.0});
  auto h = ssor.make_apply_fp64(Prec::FP64);
  CgSolver<double> pcg(op, *h, {.rtol = 1e-8, .max_iters = 5000});
  std::vector<double> x2(a.nrows, 0.0);
  const auto r2 = pcg.solve(b, std::span<double>(x2));

  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_LT(r2.iterations, r1.iterations / 2);
}

TEST(Ssor, Fp16StorageApply) {
  auto a = test::scaled_laplace2d(8, 8);
  SsorPrecond m(a, {.nblocks = 2, .omega = 1.0});
  const auto r = random_vector<double>(a.nrows, 4, 0.0, 1.0);
  std::vector<double> z64(a.nrows), z16(a.nrows);
  m.make_apply_fp64(Prec::FP64)->apply(r, std::span<double>(z64));
  m.make_apply_fp64(Prec::FP16)->apply(r, std::span<double>(z16));
  const double ref = blas::nrm_inf(std::span<const double>(z64)) + 1e-12;
  for (index_t i = 0; i < a.nrows; ++i) EXPECT_NEAR(z16[i], z64[i], 0.05 * ref);
}

TEST(Ssor, RejectsBadParameters) {
  auto a = test::laplace2d(4, 4);
  EXPECT_THROW(SsorPrecond(a, {.nblocks = 1, .omega = 0.0}), std::invalid_argument);
  EXPECT_THROW(SsorPrecond(a, {.nblocks = 1, .omega = 2.0}), std::invalid_argument);
  CsrMatrix<double> rect(2, 3);
  rect.row_ptr = {0, 0, 0};
  EXPECT_THROW(SsorPrecond(rect, {}), std::invalid_argument);
}

TEST(Ssor, CountsInvocations) {
  auto a = test::laplace2d(4, 4);
  SsorPrecond m(a, {.nblocks = 1, .omega = 1.0});
  auto h = m.make_apply_fp32(Prec::FP32);
  std::vector<float> r(a.nrows, 1.0f), z(a.nrows);
  h->apply(std::span<const float>(r), std::span<float>(z));
  h->apply(std::span<const float>(r), std::span<float>(z));
  EXPECT_EQ(m.invocations(), 2u);
  EXPECT_EQ(m.name(), "ssor");
}

}  // namespace
}  // namespace nk
