// Tests for block-Jacobi ILU(0).
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "precond/block_jacobi_ilu0.hpp"
#include "sparse/gen/random_matrix.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/spmv.hpp"
#include "support/problems.hpp"

namespace nk {
namespace {

TEST(BlockStarts, BalancedPartition) {
  const auto s = make_block_starts(10, 3);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.front(), 0);
  EXPECT_EQ(s.back(), 10);
  for (std::size_t b = 1; b < s.size(); ++b) EXPECT_GE(s[b], s[b - 1]);
}

TEST(BlockStarts, MoreBlocksThanRowsClamped) {
  const auto s = make_block_starts(3, 16);
  EXPECT_EQ(s.back(), 3);
  EXPECT_LE(s.size(), 4u);
}

TEST(Ilu0, ExactOnTridiagonalSingleBlock) {
  // ILU(0) on a tridiagonal matrix has no discarded fill: LU is exact, so
  // M⁻¹r solves A z = r to machine precision.
  const index_t n = 50;
  CsrMatrix<double> a(n, n);
  std::vector<index_t> cols;
  std::vector<double> vals;
  for (index_t i = 0; i < n; ++i) {
    if (i > 0) { cols.push_back(i - 1); vals.push_back(-1.0); }
    cols.push_back(i); vals.push_back(2.5);
    if (i + 1 < n) { cols.push_back(i + 1); vals.push_back(-1.0); }
    a.row_ptr[i + 1] = static_cast<index_t>(cols.size());
  }
  a.col_idx = cols;
  a.vals = vals;

  BlockJacobiIlu0 m(a, {.nblocks = 1, .alpha = 1.0});
  EXPECT_EQ(m.breakdowns(), 0);
  auto h = m.make_apply_fp64(Prec::FP64);

  const auto r = random_vector<double>(n, 2, -1.0, 1.0);
  std::vector<double> z(n), az(n);
  h->apply(r, std::span<double>(z));
  spmv(a, std::span<const double>(z), std::span<double>(az));
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(az[i], r[i], 1e-12);
}

TEST(Ilu0, DiagonalMatrixGivesExactInverse) {
  CsrMatrix<double> a(4, 4);
  a.row_ptr = {0, 1, 2, 3, 4};
  a.col_idx = {0, 1, 2, 3};
  a.vals = {2.0, 4.0, 0.5, -8.0};
  BlockJacobiIlu0 m(a, {.nblocks = 2, .alpha = 1.0});
  auto h = m.make_apply_fp64(Prec::FP64);
  std::vector<double> r = {2, 4, 1, 8}, z(4);
  h->apply(std::span<const double>(r), std::span<double>(z));
  EXPECT_DOUBLE_EQ(z[0], 1.0);
  EXPECT_DOUBLE_EQ(z[1], 1.0);
  EXPECT_DOUBLE_EQ(z[2], 2.0);
  EXPECT_DOUBLE_EQ(z[3], -1.0);
}

TEST(Ilu0, BlocksAreIndependent) {
  // Two decoupled tridiagonal blocks with a 2-block partition must equal
  // per-block exact solves.
  const index_t half_n = 20, n = 2 * half_n;
  CsrMatrix<double> a(n, n);
  std::vector<index_t> cols;
  std::vector<double> vals;
  for (index_t i = 0; i < n; ++i) {
    const index_t lo = i < half_n ? 0 : half_n;
    const index_t hi = i < half_n ? half_n : n;
    if (i > lo) { cols.push_back(i - 1); vals.push_back(-1.0); }
    cols.push_back(i); vals.push_back(3.0);
    if (i + 1 < hi) { cols.push_back(i + 1); vals.push_back(-1.0); }
    a.row_ptr[i + 1] = static_cast<index_t>(cols.size());
  }
  a.col_idx = cols;
  a.vals = vals;

  BlockJacobiIlu0 m(a, {.nblocks = 2, .alpha = 1.0});
  auto h = m.make_apply_fp64(Prec::FP64);
  const auto r = random_vector<double>(n, 3, -1.0, 1.0);
  std::vector<double> z(n), az(n);
  h->apply(r, std::span<double>(z));
  spmv(a, std::span<const double>(z), std::span<double>(az));
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(az[i], r[i], 1e-12);
}

TEST(Ilu0, OffBlockEntriesAreDropped) {
  // A dense 2×2-coupled system partitioned into 2 blocks of 1: the
  // preconditioner reduces to diagonal scaling.
  CsrMatrix<double> a(2, 2);
  a.row_ptr = {0, 2, 4};
  a.col_idx = {0, 1, 0, 1};
  a.vals = {4.0, 1.0, 1.0, 4.0};
  BlockJacobiIlu0 m(a, {.nblocks = 2, .alpha = 1.0});
  auto h = m.make_apply_fp64(Prec::FP64);
  std::vector<double> r = {4.0, 8.0}, z(2);
  h->apply(std::span<const double>(r), std::span<double>(z));
  EXPECT_DOUBLE_EQ(z[0], 1.0);  // 4/4, coupling ignored
  EXPECT_DOUBLE_EQ(z[1], 2.0);
}

TEST(Ilu0, AlphaBoostsFactorDiagonal) {
  const auto a = gen::hpcg(2, 2, 2);
  BlockJacobiIlu0 m1(a, {.nblocks = 1, .alpha = 1.0});
  BlockJacobiIlu0 m2(a, {.nblocks = 1, .alpha = 2.0});
  // With a doubled diagonal the U factor's diagonal grows, so M⁻¹r shrinks.
  std::vector<double> r(a.nrows, 1.0), z1(a.nrows), z2(a.nrows);
  m1.make_apply_fp64(Prec::FP64)->apply(std::span<const double>(r), std::span<double>(z1));
  m2.make_apply_fp64(Prec::FP64)->apply(std::span<const double>(r), std::span<double>(z2));
  EXPECT_LT(blas::nrm2(std::span<const double>(z2)), blas::nrm2(std::span<const double>(z1)));
}

TEST(Ilu0, MissingDiagonalInsertedAndCounted) {
  CsrMatrix<double> a(2, 2);
  a.row_ptr = {0, 1, 2};
  a.col_idx = {1, 0};  // no diagonal at all
  a.vals = {1.0, 1.0};
  BlockJacobiIlu0 m(a, {.nblocks = 2, .alpha = 1.0});
  EXPECT_EQ(m.breakdowns(), 2);  // zero pivots replaced by 1
  auto h = m.make_apply_fp64(Prec::FP64);
  std::vector<double> r = {3.0, 5.0}, z(2);
  h->apply(std::span<const double>(r), std::span<double>(z));
  EXPECT_DOUBLE_EQ(z[0], 3.0);
  EXPECT_DOUBLE_EQ(z[1], 5.0);
}

TEST(Ilu0, CastStorageCloseToFp64Apply) {
  auto a = test::scaled_hpcg(3);
  BlockJacobiIlu0 m(a, {.nblocks = 4, .alpha = 1.0});
  const auto r = random_vector<double>(a.nrows, 5, 0.0, 1.0);
  std::vector<double> z64(a.nrows), z32(a.nrows), z16(a.nrows);
  m.make_apply_fp64(Prec::FP64)->apply(r, std::span<double>(z64));
  m.make_apply_fp64(Prec::FP32)->apply(r, std::span<double>(z32));
  m.make_apply_fp64(Prec::FP16)->apply(r, std::span<double>(z16));
  const double n64 = blas::nrm2(std::span<const double>(z64));
  double e32 = 0.0, e16 = 0.0;
  for (index_t i = 0; i < a.nrows; ++i) {
    e32 = std::max(e32, std::abs(z32[i] - z64[i]));
    e16 = std::max(e16, std::abs(z16[i] - z64[i]));
  }
  EXPECT_LT(e32, 1e-4 * n64);
  EXPECT_LT(e16, 2e-2 * n64);
  EXPECT_GT(e16, 0.0);  // fp16 storage really is coarser
}

TEST(Ilu0, InvocationCounterSharedAcrossHandles) {
  const auto a = gen::hpcg(2, 2, 2);
  BlockJacobiIlu0 m(a, {.nblocks = 1, .alpha = 1.0});
  auto h64 = m.make_apply_fp64(Prec::FP64);
  auto h32 = m.make_apply_fp32(Prec::FP32);
  auto h16 = m.make_apply_fp16(Prec::FP16);
  std::vector<double> r(a.nrows, 1.0), z(a.nrows);
  std::vector<float> rf(a.nrows, 1.0f), zf(a.nrows);
  std::vector<half> rh(a.nrows, static_cast<half>(1.0f)), zh(a.nrows);
  h64->apply(std::span<const double>(r), std::span<double>(z));
  h32->apply(std::span<const float>(rf), std::span<float>(zf));
  h16->apply(std::span<const half>(rh), std::span<half>(zh));
  EXPECT_EQ(m.invocations(), 3u);
  m.reset_invocations();
  EXPECT_EQ(m.invocations(), 0u);
}

TEST(Ilu0, RejectsNonSquare) {
  CsrMatrix<double> a(2, 3);
  a.row_ptr = {0, 0, 0};
  EXPECT_THROW(BlockJacobiIlu0(a, {}), std::invalid_argument);
}

TEST(Ilu0, Fp16VectorApplyStaysFinite) {
  auto a = test::scaled_hpcg(3);
  BlockJacobiIlu0 m(a, {.nblocks = 4, .alpha = 1.0});
  auto h = m.make_apply_fp16(Prec::FP16);
  const auto r = random_vector<half>(a.nrows, 6, 0.0, 1.0);
  std::vector<half> z(a.nrows);
  h->apply(std::span<const half>(r), std::span<half>(z));
  EXPECT_EQ(blas::count_nonfinite(std::span<const half>(z)), 0u);
}

}  // namespace
}  // namespace nk
