// Tests for block-Jacobi IC(0).
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "precond/block_jacobi_ic0.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/spmv.hpp"
#include "support/problems.hpp"

namespace nk {
namespace {

CsrMatrix<double> spd_tridiag(index_t n, double diag) {
  CsrMatrix<double> a(n, n);
  std::vector<index_t> cols;
  std::vector<double> vals;
  for (index_t i = 0; i < n; ++i) {
    if (i > 0) { cols.push_back(i - 1); vals.push_back(-1.0); }
    cols.push_back(i); vals.push_back(diag);
    if (i + 1 < n) { cols.push_back(i + 1); vals.push_back(-1.0); }
    a.row_ptr[i + 1] = static_cast<index_t>(cols.size());
  }
  a.col_idx = std::move(cols);
  a.vals = std::move(vals);
  return a;
}

TEST(Ic0, ExactCholeskyOnTridiagonal) {
  // IC(0) on a tridiagonal SPD matrix generates no fill → exact Cholesky.
  const auto a = spd_tridiag(40, 2.5);
  BlockJacobiIc0 m(a, {.nblocks = 1, .alpha = 1.0});
  EXPECT_EQ(m.breakdowns(), 0);
  auto h = m.make_apply_fp64(Prec::FP64);
  const auto r = random_vector<double>(40, 1, -1.0, 1.0);
  std::vector<double> z(40), az(40);
  h->apply(r, std::span<double>(z));
  spmv(a, std::span<const double>(z), std::span<double>(az));
  for (index_t i = 0; i < 40; ++i) EXPECT_NEAR(az[i], r[i], 1e-12);
}

TEST(Ic0, FactorsReproduceMatrixOnPattern) {
  // On the tridiagonal pattern L Lᵀ must equal A entrywise.
  const auto a = spd_tridiag(10, 3.0);
  BlockJacobiIc0 m(a, {.nblocks = 1, .alpha = 1.0});
  const auto& f = m.factors_fp64();
  // Reconstruct (L Lᵀ)_{ij} for stored lower entries and the diagonal.
  auto lentry = [&](index_t i, index_t j) {
    for (index_t p = f.l_row_ptr[i]; p < f.l_row_ptr[i + 1]; ++p)
      if (f.l_col[p] == j) return f.l_val[p];
    return 0.0;
  };
  for (index_t i = 0; i < 10; ++i)
    for (index_t j = std::max<index_t>(0, i - 1); j <= i; ++j) {
      double s = 0.0;
      for (index_t k = 0; k <= j; ++k) s += lentry(i, k) * lentry(j, k);
      EXPECT_NEAR(s, a.at(i, j), 1e-12) << "(" << i << "," << j << ")";
    }
}

TEST(Ic0, SymmetricApplyIsSymmetric) {
  // M⁻¹ = L⁻ᵀL⁻¹ is symmetric: (M⁻¹u, v) == (u, M⁻¹v).
  auto a = test::laplace2d(12, 12);
  BlockJacobiIc0 m(a, {.nblocks = 3, .alpha = 1.0});
  auto h = m.make_apply_fp64(Prec::FP64);
  const auto u = random_vector<double>(a.nrows, 4, -1.0, 1.0);
  const auto v = random_vector<double>(a.nrows, 5, -1.0, 1.0);
  std::vector<double> mu(a.nrows), mv(a.nrows);
  h->apply(std::span<const double>(u), std::span<double>(mu));
  h->apply(std::span<const double>(v), std::span<double>(mv));
  const double lhs = blas::dot(std::span<const double>(mu), std::span<const double>(v));
  const double rhs = blas::dot(std::span<const double>(u), std::span<const double>(mv));
  EXPECT_NEAR(lhs, rhs, 1e-10 * std::abs(lhs));
}

TEST(Ic0, PositiveDefiniteApply) {
  // (r, M⁻¹ r) > 0 for any nonzero r.
  auto a = test::scaled_hpcg(3);
  BlockJacobiIc0 m(a, {.nblocks = 4, .alpha = 1.0});
  auto h = m.make_apply_fp64(Prec::FP64);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto r = random_vector<double>(a.nrows, seed, -1.0, 1.0);
    std::vector<double> z(a.nrows);
    h->apply(r, std::span<double>(z));
    EXPECT_GT(blas::dot(std::span<const double>(r), std::span<const double>(z)), 0.0);
  }
}

TEST(Ic0, BreakdownClampedOnIndefiniteMatrix) {
  // An indefinite diagonal breaks IC(0); pivots are clamped and counted.
  CsrMatrix<double> a(2, 2);
  a.row_ptr = {0, 1, 2};
  a.col_idx = {0, 1};
  a.vals = {1.0, -1.0};
  BlockJacobiIc0 m(a, {.nblocks = 1, .alpha = 1.0});
  EXPECT_EQ(m.breakdowns(), 1);
  auto h = m.make_apply_fp64(Prec::FP64);
  std::vector<double> r = {1.0, 1.0}, z(2);
  h->apply(std::span<const double>(r), std::span<double>(z));
  EXPECT_TRUE(std::isfinite(z[0]));
  EXPECT_TRUE(std::isfinite(z[1]));
}

TEST(Ic0, AlphaReducesBreakdowns) {
  // A nearly-indefinite SPD-ish matrix: boosting the diagonal during
  // factorization (the paper's α technique) avoids pivot clamps.
  CsrMatrix<double> a(3, 3);
  a.row_ptr = {0, 3, 6, 9};
  a.col_idx = {0, 1, 2, 0, 1, 2, 0, 1, 2};
  a.vals = {1.0, -0.9, -0.9, -0.9, 1.0, -0.9, -0.9, -0.9, 1.0};
  BlockJacobiIc0 plain(a, {.nblocks = 1, .alpha = 1.0});
  BlockJacobiIc0 boosted(a, {.nblocks = 1, .alpha = 2.5});
  EXPECT_GT(plain.breakdowns(), 0);
  EXPECT_EQ(boosted.breakdowns(), 0);
}

TEST(Ic0, CastHandlesAgree) {
  auto a = test::scaled_laplace2d(10, 10);
  BlockJacobiIc0 m(a, {.nblocks = 2, .alpha = 1.0});
  const auto r = random_vector<double>(a.nrows, 9, 0.0, 1.0);
  std::vector<double> z64(a.nrows), z16(a.nrows);
  m.make_apply_fp64(Prec::FP64)->apply(r, std::span<double>(z64));
  m.make_apply_fp64(Prec::FP16)->apply(r, std::span<double>(z16));
  const double ref = blas::nrm_inf(std::span<const double>(z64));
  for (index_t i = 0; i < a.nrows; ++i) EXPECT_NEAR(z16[i], z64[i], 0.05 * ref);
}

TEST(Ic0, InvocationCounting) {
  const auto a = spd_tridiag(8, 3.0);
  BlockJacobiIc0 m(a, {.nblocks = 1, .alpha = 1.0});
  auto h = m.make_apply_fp64(Prec::FP64);
  std::vector<double> r(8, 1.0), z(8);
  for (int i = 0; i < 5; ++i) h->apply(std::span<const double>(r), std::span<double>(z));
  EXPECT_EQ(m.invocations(), 5u);
}

TEST(Ic0, RejectsNonSquare) {
  CsrMatrix<double> a(2, 3);
  a.row_ptr = {0, 0, 0};
  EXPECT_THROW(BlockJacobiIc0(a, {}), std::invalid_argument);
}

}  // namespace
}  // namespace nk
