// Tests for the truncated Neumann polynomial preconditioner.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "krylov/cg.hpp"
#include "precond/jacobi.hpp"
#include "precond/neumann.hpp"
#include "sparse/spmv.hpp"
#include "support/problems.hpp"

namespace nk {
namespace {

TEST(Neumann, DegreeZeroIsJacobi) {
  auto a = test::laplace2d(6, 6);
  NeumannPrecond nm(a, {.degree = 0});
  JacobiPrecond jac(a);
  auto hn = nm.make_apply_fp64(Prec::FP64);
  auto hj = jac.make_apply_fp64(Prec::FP64);
  const auto r = random_vector<double>(a.nrows, 1, 0.0, 1.0);
  std::vector<double> zn(a.nrows), zj(a.nrows);
  hn->apply(r, std::span<double>(zn));
  hj->apply(r, std::span<double>(zj));
  for (index_t i = 0; i < a.nrows; ++i) EXPECT_NEAR(zn[i], zj[i], 1e-14);
}

TEST(Neumann, MatchesExplicitSeriesOnScaledMatrix) {
  // On a diagonally scaled matrix (D = I), degree-2 must equal
  // (I + N + N²) r with N = I − A.
  auto a = test::scaled_laplace2d(5, 5);
  NeumannPrecond nm(a, {.degree = 2});
  auto h = nm.make_apply_fp64(Prec::FP64);
  const auto r = random_vector<double>(a.nrows, 2, -1.0, 1.0);
  std::vector<double> z(a.nrows);
  h->apply(std::span<const double>(r), std::span<double>(z));

  const index_t n = a.nrows;
  std::vector<double> nr(n), nnr(n), ref(n);
  // N r = r − A r
  std::vector<double> ar(n);
  spmv(a, std::span<const double>(r), std::span<double>(ar));
  for (index_t i = 0; i < n; ++i) nr[i] = r[i] - ar[i];
  spmv(a, std::span<const double>(nr), std::span<double>(ar));
  for (index_t i = 0; i < n; ++i) nnr[i] = nr[i] - ar[i];
  for (index_t i = 0; i < n; ++i) ref[i] = r[i] + nr[i] + nnr[i];
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(z[i], ref[i], 1e-12);
}

TEST(Neumann, HigherDegreeImprovesApproximation) {
  auto a = test::scaled_laplace2d(10, 10);
  const auto r = random_vector<double>(a.nrows, 3, 0.0, 1.0);
  double prev = 1e300;
  for (int deg : {0, 1, 2, 4}) {
    NeumannPrecond nm(a, {.degree = deg});
    auto h = nm.make_apply_fp64(Prec::FP64);
    std::vector<double> z(a.nrows), az(a.nrows);
    h->apply(r, std::span<double>(z));
    spmv(a, std::span<const double>(z), std::span<double>(az));
    double err = 0.0;
    for (index_t i = 0; i < a.nrows; ++i) err += (az[i] - r[i]) * (az[i] - r[i]);
    err = std::sqrt(err);
    EXPECT_LT(err, prev) << "degree " << deg;
    prev = err;
  }
}

TEST(Neumann, AcceleratesCg) {
  auto a = test::scaled_laplace2d(20, 20);
  CsrOperator<double, double> op(a);
  const auto b = random_vector<double>(a.nrows, 4, 0.0, 1.0);

  JacobiPrecond jac(a);
  auto hj = jac.make_apply_fp64(Prec::FP64);
  CgSolver<double> cg_j(op, *hj, {.rtol = 1e-8, .max_iters = 5000});
  std::vector<double> x1(a.nrows, 0.0);
  const auto r1 = cg_j.solve(b, std::span<double>(x1));

  NeumannPrecond nm(a, {.degree = 2});
  auto hn = nm.make_apply_fp64(Prec::FP64);
  CgSolver<double> cg_n(op, *hn, {.rtol = 1e-8, .max_iters = 5000});
  std::vector<double> x2(a.nrows, 0.0);
  const auto r2 = cg_n.solve(b, std::span<double>(x2));

  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_LT(r2.iterations, r1.iterations);
}

TEST(Neumann, Fp16StorageApplyFinite) {
  auto a = test::scaled_laplace2d(8, 8);
  NeumannPrecond nm(a, {.degree = 2});
  auto h = nm.make_apply_fp16(Prec::FP16);
  const auto r = random_vector<half>(a.nrows, 5, 0.0, 1.0);
  std::vector<half> z(a.nrows);
  h->apply(std::span<const half>(r), std::span<half>(z));
  EXPECT_EQ(blas::count_nonfinite(std::span<const half>(z)), 0u);
}

TEST(Neumann, RejectsBadArguments) {
  auto a = test::laplace2d(4, 4);
  EXPECT_THROW(NeumannPrecond(a, {.degree = -1}), std::invalid_argument);
  CsrMatrix<double> rect(2, 3);
  rect.row_ptr = {0, 0, 0};
  EXPECT_THROW(NeumannPrecond(rect, {}), std::invalid_argument);
}

TEST(Neumann, CountsInvocations) {
  auto a = test::laplace2d(4, 4);
  NeumannPrecond nm(a, {.degree = 1});
  auto h = nm.make_apply_fp64(Prec::FP64);
  std::vector<double> r(a.nrows, 1.0), z(a.nrows);
  for (int i = 0; i < 3; ++i) h->apply(std::span<const double>(r), std::span<double>(z));
  EXPECT_EQ(nm.invocations(), 3u);
  EXPECT_EQ(nm.name(), "neumann");
}

}  // namespace
}  // namespace nk
