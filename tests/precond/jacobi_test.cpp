// Tests for the Jacobi (diagonal) preconditioner.
#include <gtest/gtest.h>

#include "precond/jacobi.hpp"
#include "support/problems.hpp"

namespace nk {
namespace {

TEST(Jacobi, ApplyDividesByDiagonal) {
  CsrMatrix<double> a(3, 3);
  a.row_ptr = {0, 2, 3, 4};
  a.col_idx = {0, 1, 1, 2};
  a.vals = {2.0, 5.0, 4.0, -0.5};
  JacobiPrecond m(a);
  auto h = m.make_apply_fp64(Prec::FP64);
  std::vector<double> r = {2.0, 8.0, 1.0}, z(3);
  h->apply(std::span<const double>(r), std::span<double>(z));
  EXPECT_DOUBLE_EQ(z[0], 1.0);
  EXPECT_DOUBLE_EQ(z[1], 2.0);
  EXPECT_DOUBLE_EQ(z[2], -2.0);
}

TEST(Jacobi, ZeroDiagonalFallsBackToIdentity) {
  CsrMatrix<double> a(2, 2);
  a.row_ptr = {0, 1, 1};  // row 1 has no entries
  a.col_idx = {1};
  a.vals = {3.0};  // row 0 stores only the off-diagonal
  JacobiPrecond m(a);
  auto h = m.make_apply_fp64(Prec::FP64);
  std::vector<double> r = {7.0, 9.0}, z(2);
  h->apply(std::span<const double>(r), std::span<double>(z));
  EXPECT_DOUBLE_EQ(z[0], 7.0);
  EXPECT_DOUBLE_EQ(z[1], 9.0);
}

TEST(Jacobi, StoragePrecisionRounding) {
  CsrMatrix<double> a(1, 1);
  a.row_ptr = {0, 1};
  a.col_idx = {0};
  a.vals = {3.0};
  JacobiPrecond m(a);
  auto h16 = m.make_apply_fp64(Prec::FP16);
  std::vector<double> r = {1.0}, z(1);
  h16->apply(std::span<const double>(r), std::span<double>(z));
  EXPECT_NEAR(z[0], 1.0 / 3.0, (1.0 / 3.0) * 1e-3);
  EXPECT_NE(z[0], 1.0 / 3.0);  // fp16 storage rounds 1/3
}

TEST(Jacobi, HalfVectorApply) {
  const auto a = test::laplace2d(4, 4);
  JacobiPrecond m(a);
  auto h = m.make_apply_fp16(Prec::FP16);
  std::vector<half> r(a.nrows, static_cast<half>(2.0f)), z(a.nrows);
  h->apply(std::span<const half>(r), std::span<half>(z));
  for (half v : z) EXPECT_NEAR(static_cast<float>(v), 0.5f, 1e-3f);
}

TEST(Jacobi, CountsInvocations) {
  const auto a = test::laplace2d(3, 3);
  JacobiPrecond m(a);
  auto h = m.make_apply_fp32(Prec::FP32);
  std::vector<float> r(a.nrows, 1.0f), z(a.nrows);
  for (int i = 0; i < 4; ++i) h->apply(std::span<const float>(r), std::span<float>(z));
  EXPECT_EQ(m.invocations(), 4u);
  EXPECT_EQ(m.name(), "jacobi");
}

}  // namespace
}  // namespace nk
