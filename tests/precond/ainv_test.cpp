// Tests for the SD-AINV approximate inverse.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "precond/ainv.hpp"
#include "sparse/spmv.hpp"
#include "support/problems.hpp"

namespace nk {
namespace {

double apply_and_residual(const CsrMatrix<double>& a, PrimaryPrecond& m,
                          std::uint64_t seed = 1) {
  auto h = m.make_apply_fp64(Prec::FP64);
  const auto r = random_vector<double>(a.nrows, seed, -1.0, 1.0);
  std::vector<double> z(a.nrows), az(a.nrows);
  h->apply(r, std::span<double>(z));
  spmv(a, std::span<const double>(z), std::span<double>(az));
  double num = 0.0, den = 0.0;
  for (index_t i = 0; i < a.nrows; ++i) {
    num += (az[i] - r[i]) * (az[i] - r[i]);
    den += r[i] * r[i];
  }
  return std::sqrt(num / den);  // ‖A M⁻¹ r − r‖ / ‖r‖
}

TEST(Ainv, ExactOnDiagonalMatrix) {
  CsrMatrix<double> a(4, 4);
  a.row_ptr = {0, 1, 2, 3, 4};
  a.col_idx = {0, 1, 2, 3};
  a.vals = {2.0, 4.0, 0.5, 8.0};
  SdAinv m(a, {.symmetric = true});
  EXPECT_LT(apply_and_residual(a, m), 1e-12);
  EXPECT_EQ(m.clamped_pivots(), 0);
}

TEST(Ainv, NoDropGivesExactInverseSmallSpd) {
  // With drop tolerance 0 and unlimited fill, biconjugation is exact.
  auto a = test::scaled_laplace2d(5, 5);
  SdAinv m(a, {.drop_tol = 0.0, .max_fill = 0, .symmetric = true});
  EXPECT_LT(apply_and_residual(a, m), 1e-8);
}

TEST(Ainv, NoDropGivesExactInverseSmallNonsym) {
  auto a = test::scaled_convdiff2d(5, 3.0);
  SdAinv m(a, {.drop_tol = 0.0, .max_fill = 0, .symmetric = false});
  EXPECT_LT(apply_and_residual(a, m), 1e-8);
}

TEST(Ainv, DroppedVersionStillReducesResidual) {
  auto a = test::scaled_laplace2d(16, 16);
  SdAinv m(a, {.drop_tol = 0.1, .max_fill = 10, .symmetric = true});
  // Approximate inverse: A·M⁻¹r should be much closer to r than 0 is
  // (relative residual < 1 means M is better than identity scaling-wise).
  EXPECT_LT(apply_and_residual(a, m), 0.9);
}

TEST(Ainv, ApplyCostsExactlyTwoSpmvEquivalents) {
  // Structure check: Wᵀ and Z each have ≥ n entries (unit diagonals) and
  // the handle performs spmv(wt) + diag + spmv(z); we verify fill is
  // bounded by the max_fill cap.
  auto a = test::scaled_laplace2d(12, 12);
  SdAinv m(a, {.drop_tol = 0.1, .max_fill = 5, .symmetric = true});
  const auto& f = m.factors_fp64();
  EXPECT_EQ(f.n, a.nrows);
  EXPECT_LE(f.wt.nnz(), a.nrows * 6);  // ≤ max_fill+1 per column
  EXPECT_LE(f.z.nnz(), a.nrows * 6);
  EXPECT_GE(f.wt.nnz(), a.nrows);      // diagonal always kept
}

TEST(Ainv, SymmetricModeSharesFactors) {
  auto a = test::scaled_laplace2d(8, 8);
  SdAinv m(a, {.drop_tol = 0.05, .max_fill = 8, .symmetric = true});
  const auto& f = m.factors_fp64();
  // W = Z → Wᵀ must equal Zᵀ: compare via transpose(z).
  const auto zt = transpose(f.z);
  ASSERT_EQ(zt.nnz(), f.wt.nnz());
  EXPECT_EQ(zt.col_idx, f.wt.col_idx);
  for (std::size_t k = 0; k < zt.vals.size(); ++k)
    EXPECT_DOUBLE_EQ(zt.vals[k], f.wt.vals[k]);
}

TEST(Ainv, AlphaBoostChangesFactors) {
  auto a = test::scaled_laplace2d(8, 8);
  SdAinv m1(a, {.alpha = 1.0, .symmetric = true});
  SdAinv m2(a, {.alpha = 1.5, .symmetric = true});
  // Boosted construction yields smaller |M⁻¹| (more diagonally dominant).
  std::vector<double> r(a.nrows, 1.0), z1(a.nrows), z2(a.nrows);
  m1.make_apply_fp64(Prec::FP64)->apply(std::span<const double>(r), std::span<double>(z1));
  m2.make_apply_fp64(Prec::FP64)->apply(std::span<const double>(r), std::span<double>(z2));
  EXPECT_LT(blas::nrm2(std::span<const double>(z2)), blas::nrm2(std::span<const double>(z1)));
}

TEST(Ainv, PivotClampOnSingularMatrix) {
  // A matrix with a zero row/column forces a pivot clamp instead of a crash.
  CsrMatrix<double> a(3, 3);
  a.row_ptr = {0, 1, 1, 2};  // row 1 empty
  a.col_idx = {0, 2};
  a.vals = {1.0, 1.0};
  SdAinv m(a, {.symmetric = false});
  EXPECT_GT(m.clamped_pivots(), 0);
}

TEST(Ainv, CastHandles) {
  auto a = test::scaled_laplace2d(10, 10);
  SdAinv m(a, {.symmetric = true});
  const auto r = random_vector<double>(a.nrows, 3, 0.0, 1.0);
  std::vector<double> z64(a.nrows), z16(a.nrows);
  m.make_apply_fp64(Prec::FP64)->apply(r, std::span<double>(z64));
  m.make_apply_fp64(Prec::FP16)->apply(r, std::span<double>(z16));
  const double ref = blas::nrm_inf(std::span<const double>(z64)) + 1e-12;
  for (index_t i = 0; i < a.nrows; ++i) EXPECT_NEAR(z16[i], z64[i], 0.05 * ref);
}

TEST(Ainv, Fp16HandleApplyOnHalfVectors) {
  auto a = test::scaled_laplace2d(10, 10);
  SdAinv m(a, {.symmetric = true});
  auto h = m.make_apply_fp16(Prec::FP16);
  const auto r = random_vector<half>(a.nrows, 4, 0.0, 1.0);
  std::vector<half> z(a.nrows);
  h->apply(std::span<const half>(r), std::span<half>(z));
  EXPECT_EQ(blas::count_nonfinite(std::span<const half>(z)), 0u);
}

TEST(Ainv, InvocationCounting) {
  auto a = test::laplace2d(6, 6);
  SdAinv m(a, {.symmetric = true});
  auto h = m.make_apply_fp64(Prec::FP64);
  std::vector<double> r(a.nrows, 1.0), z(a.nrows);
  h->apply(std::span<const double>(r), std::span<double>(z));
  h->apply(std::span<const double>(r), std::span<double>(z));
  EXPECT_EQ(m.invocations(), 2u);
}

TEST(Ainv, RejectsNonSquare) {
  CsrMatrix<double> a(2, 3);
  a.row_ptr = {0, 0, 0};
  EXPECT_THROW(SdAinv(a, {}), std::invalid_argument);
}

}  // namespace
}  // namespace nk
