// Tests for the Table 2 SuiteSparse stand-in catalog.
#include <gtest/gtest.h>

#include <set>

#include "sparse/gen/suite_standins.hpp"
#include "sparse/stats.hpp"

namespace nk {
namespace {

TEST(Standins, CatalogCoversBothSets) {
  const auto& cat = gen::standin_catalog();
  EXPECT_GE(cat.size(), 28u);  // 31 paper matrices (HPCG/HPGMP at 4 sizes each)
  const auto sym = gen::symmetric_set();
  const auto nonsym = gen::nonsymmetric_set();
  EXPECT_EQ(sym.size() + nonsym.size(), cat.size());
  EXPECT_GE(sym.size(), 12u);
  EXPECT_GE(nonsym.size(), 12u);
}

TEST(Standins, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& s : gen::standin_catalog()) names.insert(s.paper_name);
  EXPECT_EQ(names.size(), gen::standin_catalog().size());
}

TEST(Standins, FindSpecKnownAndUnknown) {
  const auto& s = gen::find_spec("ecology2");
  EXPECT_TRUE(s.symmetric);
  EXPECT_DOUBLE_EQ(s.alpha_ilu, 1.0);
  const auto& q = gen::find_spec("Queen_4147");
  EXPECT_DOUBLE_EQ(q.alpha_ilu, 1.1);
  EXPECT_DOUBLE_EQ(q.alpha_ainv, 1.3);
  EXPECT_THROW(gen::find_spec("not-a-matrix"), std::invalid_argument);
  EXPECT_THROW(gen::make_problem("not-a-matrix"), std::invalid_argument);
}

TEST(Standins, AlphaValuesMatchTable2) {
  // Spot-check the paper's α columns for stand-ins that carry them.
  EXPECT_DOUBLE_EQ(gen::find_spec("audikw_1").alpha_ainv, 1.6);
  EXPECT_DOUBLE_EQ(gen::find_spec("Bump_2911").alpha_ilu, 1.1);
  EXPECT_DOUBLE_EQ(gen::find_spec("stokes").alpha_ainv, 1.3);
  EXPECT_DOUBLE_EQ(gen::find_spec("atmosmodd").alpha_ilu, 1.0);
}

TEST(Standins, SymmetryFlagMatchesGeneratedMatrix) {
  // Verify on a representative subset (full sweep lives in the benches).
  for (const char* name : {"ecology2", "thermal2", "atmosmodd", "tmt_unsym"}) {
    const auto p = gen::make_problem(name, 1);
    EXPECT_EQ(is_symmetric(p.a, 1e-12), p.spec.symmetric) << name;
  }
}

TEST(Standins, HpcgEntriesAreExact) {
  const auto p = gen::make_problem("hpcg_4_4_4", 1);
  EXPECT_TRUE(p.spec.exact);
  EXPECT_EQ(p.a.nrows, 16 * 16 * 16);
  EXPECT_DOUBLE_EQ(p.a.at(0, 0), 26.0);
}

TEST(Standins, HpgmpEntriesAreExact) {
  const auto p = gen::make_problem("hpgmp_4_4_4", 1);
  EXPECT_TRUE(p.spec.exact);
  EXPECT_FALSE(is_symmetric(p.a, 1e-12));
}

TEST(Standins, ElasticityClassHasWideRows) {
  const auto p = gen::make_problem("audikw_1", 1);
  const auto s = analyze(p.a);
  // audikw_1 has ~82 nnz/row; the block stand-in targets the same regime
  // (27-point × 3×3 block = 81 interior entries per row).
  EXPECT_GT(s.nnz_per_row, 60.0);
  EXPECT_TRUE(s.numerically_symmetric);
}

TEST(Standins, LowNnzClassMatches) {
  const auto p = gen::make_problem("ecology2", 1);
  EXPECT_NEAR(p.a.nnz_per_row(), 5.0, 0.2);  // paper: 5.00
}

TEST(Standins, KronBlockExpandsStructure) {
  CsrMatrix<double> a(2, 2);
  a.row_ptr = {0, 2, 4};
  a.col_idx = {0, 1, 0, 1};
  a.vals = {2.0, -1.0, -1.0, 2.0};
  const std::vector<double> blk = {1.0, 0.5, 0.5, 2.0};  // SPD 2×2
  const auto k = gen::kron_block(a, blk, 2);
  EXPECT_EQ(k.nrows, 4);
  EXPECT_EQ(k.nnz(), 16);
  EXPECT_DOUBLE_EQ(k.at(0, 0), 2.0 * 1.0);
  EXPECT_DOUBLE_EQ(k.at(0, 1), 2.0 * 0.5);
  EXPECT_DOUBLE_EQ(k.at(1, 2), -1.0 * 0.5);
  EXPECT_TRUE(is_symmetric(k, 1e-14));
  EXPECT_THROW(gen::kron_block(a, blk, 3), std::invalid_argument);
}

TEST(Standins, HardProblemsAreFlagged) {
  EXPECT_TRUE(gen::find_spec("stokes").hard);
  EXPECT_TRUE(gen::find_spec("Freescale1").hard);
  EXPECT_FALSE(gen::find_spec("hpcg_4_4_4").hard);
}

}  // namespace
}  // namespace nk
