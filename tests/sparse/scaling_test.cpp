// Tests for diagonal scaling — the transformation the paper applies to all
// matrices, which is what makes fp16 storage of A viable.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "sparse/gen/random_matrix.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/scaling.hpp"
#include "sparse/spmv.hpp"

namespace nk {
namespace {

TEST(Scaling, UnitDiagonalAfterSymmetricScaling) {
  auto a = gen::hpcg(3, 3, 3);
  diagonal_scale_symmetric(a);
  for (double d : a.diagonal()) EXPECT_NEAR(d, 1.0, 1e-14);
}

TEST(Scaling, SymmetryPreserved) {
  auto a = gen::hpcg(3, 3, 3);
  diagonal_scale_symmetric(a);
  EXPECT_TRUE(is_symmetric(a, 1e-13));
}

TEST(Scaling, ValuesEnterFp16Range) {
  // HPCG values are 26 / −1 — representable anyway; rescale a badly scaled
  // copy (× 1e6) and verify everything returns to O(1).
  auto a = gen::hpcg(3, 3, 3);
  for (auto& v : a.vals) v *= 1e6;
  diagonal_scale_symmetric(a);
  for (double v : a.vals) EXPECT_LE(std::abs(v), 1.0 + 1e-12);
}

TEST(Scaling, SolutionRecoveryThroughScaling) {
  // Solve à x̃ = b̃ exactly by dense elimination on a tiny system, then map
  // back: x = S x̃ where b̃ = S b.
  CsrMatrix<double> a(2, 2);
  a.row_ptr = {0, 2, 4};
  a.col_idx = {0, 1, 0, 1};
  a.vals = {4.0, 1.0, 1.0, 9.0};
  const std::vector<double> x_true = {1.0, -2.0};
  std::vector<double> b(2);
  spmv(a, std::span<const double>(x_true), std::span<double>(b));

  auto scaled = a;
  const auto sres = diagonal_scale_symmetric(scaled);
  std::vector<double> bt = b;
  apply_scale(sres.scale, bt);

  // Dense solve of the 2×2 scaled system.
  const double a00 = scaled.at(0, 0), a01 = scaled.at(0, 1), a10 = scaled.at(1, 0),
               a11 = scaled.at(1, 1);
  const double det = a00 * a11 - a01 * a10;
  std::vector<double> xt = {(bt[0] * a11 - a01 * bt[1]) / det,
                            (a00 * bt[1] - a10 * bt[0]) / det};
  apply_scale(sres.scale, xt);
  EXPECT_NEAR(xt[0], x_true[0], 1e-12);
  EXPECT_NEAR(xt[1], x_true[1], 1e-12);
}

TEST(Scaling, NegativeDiagonalUsesAbs) {
  CsrMatrix<double> a(2, 2);
  a.row_ptr = {0, 1, 2};
  a.col_idx = {0, 1};
  a.vals = {-4.0, 9.0};
  const auto r = diagonal_scale_symmetric(a);
  EXPECT_FALSE(r.had_zero_diagonal);
  EXPECT_NEAR(a.at(0, 0), -1.0, 1e-15);  // sign preserved, magnitude 1
  EXPECT_NEAR(a.at(1, 1), 1.0, 1e-15);
}

TEST(Scaling, ZeroDiagonalFlaggedAndLeftAlone) {
  CsrMatrix<double> a(2, 2);
  a.row_ptr = {0, 1, 2};
  a.col_idx = {1, 0};  // no diagonal entries at all
  a.vals = {3.0, 5.0};
  const auto r = diagonal_scale_symmetric(a);
  EXPECT_TRUE(r.had_zero_diagonal);
  EXPECT_DOUBLE_EQ(r.scale[0], 1.0);
  EXPECT_DOUBLE_EQ(r.scale[1], 1.0);
  EXPECT_DOUBLE_EQ(a.vals[0], 3.0);
}

TEST(Scaling, RowScalingMakesUnitDiagonal) {
  auto a = gen::random_sparse({.n = 50, .seed = 3});
  const auto d = diagonal_scale_rows(a);
  EXPECT_EQ(d.size(), 50u);
  for (double v : a.diagonal()) EXPECT_NEAR(v, 1.0, 1e-14);
}

TEST(Scaling, ApplyScaleElementwise) {
  std::vector<double> s = {2.0, 3.0};
  std::vector<double> x = {1.0, 1.0};
  apply_scale(s, x);
  EXPECT_DOUBLE_EQ(x[0], 2.0);
  EXPECT_DOUBLE_EQ(x[1], 3.0);
}

}  // namespace
}  // namespace nk
