// Exhaustive property sweep over every (matrix precision × vector
// precision) combination of the CSR SpMV — nine pairings, each checked
// against the fp64 dense reference with a type-appropriate error budget.
// This pins down the promotion semantics F3R depends on (Table 1 uses four
// of the nine; the rest must still be correct for custom nestings).
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "base/rng.hpp"
#include "nkrylov.hpp"

namespace nk {
namespace {

struct Combo {
  Prec mat;
  Prec vec;
};

class SpmvPrecisionMatrix : public ::testing::TestWithParam<std::tuple<int, int>> {};

double budget(Prec mat, Prec vec, double rowsum) {
  const double u = std::max(unit_roundoff(mat), unit_roundoff(vec));
  return rowsum * u * 64.0 + 1e-12;  // rounding of values + accumulation slack
}

TEST_P(SpmvPrecisionMatrix, MatchesReferenceWithinPrecisionBudget) {
  const auto [mi, vi] = GetParam();
  const Prec mp = static_cast<Prec>(mi);
  const Prec vp = static_cast<Prec>(vi);

  auto a = gen::laplace2d(17, 13);  // non-square grid, 221 rows
  diagonal_scale_symmetric(a);      // keep values fp16-representable
  const index_t n = a.nrows;
  const auto xd = random_vector<double>(n, 31, 0.0, 1.0);

  // Reference in fp64.
  std::vector<double> ref(n);
  spmv(a, std::span<const double>(xd), std::span<double>(ref));

  // Row |sums| for the budget.
  std::vector<double> rowsum(n, 0.0);
  for (index_t i = 0; i < n; ++i)
    for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k)
      rowsum[i] += std::abs(a.vals[k]) * std::abs(xd[a.col_idx[k]]);

  auto check = [&](const std::vector<double>& y) {
    for (index_t i = 0; i < n; ++i)
      EXPECT_NEAR(y[i], ref[i], budget(mp, vp, rowsum[i])) << "row " << i;
  };

  // Dispatch over the combination through MultiPrecMatrix (the production
  // path the nested builder uses).
  MultiPrecMatrix mpm(a);
  std::vector<double> out(n);
  switch (vp) {
    case Prec::FP64: {
      auto op = mpm.make_operator<double>(mp);
      op->apply(std::span<const double>(xd), std::span<double>(out));
      break;
    }
    case Prec::FP32: {
      auto op = mpm.make_operator<float>(mp);
      const auto x = converted<float>(xd);
      std::vector<float> y(n);
      op->apply(std::span<const float>(x), std::span<float>(y));
      for (index_t i = 0; i < n; ++i) out[i] = y[i];
      break;
    }
    case Prec::FP16: {
      auto op = mpm.make_operator<half>(mp);
      const auto x = converted<half>(xd);
      std::vector<half> y(n);
      op->apply(std::span<const half>(x), std::span<half>(y));
      for (index_t i = 0; i < n; ++i) out[i] = static_cast<double>(y[i]);
      break;
    }
  }
  check(out);
}

INSTANTIATE_TEST_SUITE_P(
    AllNine, SpmvPrecisionMatrix,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Values(0, 1, 2)),
    [](const auto& info) {
      return std::string("mat_") + prec_name(static_cast<Prec>(std::get<0>(info.param))) +
             "_vec_" + prec_name(static_cast<Prec>(std::get<1>(info.param)));
    });

// The SELL format must agree with CSR for the same nine combinations.
class SellPrecisionMatrix : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SellPrecisionMatrix, SellOperatorsMatchCsrOperators) {
  const auto [mi, vi] = GetParam();
  const Prec mp = static_cast<Prec>(mi);
  const Prec vp = static_cast<Prec>(vi);

  auto a = gen::hpcg(3, 3, 3);
  diagonal_scale_symmetric(a);
  const index_t n = a.nrows;
  MultiPrecMatrix csr(a), sell(a, /*use_sell=*/true);
  const auto xd = random_vector<double>(n, 5, 0.0, 1.0);

  auto run = [&](MultiPrecMatrix& m) {
    std::vector<double> out(n);
    if (vp == Prec::FP64) {
      auto op = m.make_operator<double>(mp);
      op->apply(std::span<const double>(xd), std::span<double>(out));
    } else if (vp == Prec::FP32) {
      auto op = m.make_operator<float>(mp);
      const auto x = converted<float>(xd);
      std::vector<float> y(n);
      op->apply(std::span<const float>(x), std::span<float>(y));
      for (index_t i = 0; i < n; ++i) out[i] = y[i];
    } else {
      auto op = m.make_operator<half>(mp);
      const auto x = converted<half>(xd);
      std::vector<half> y(n);
      op->apply(std::span<const half>(x), std::span<half>(y));
      for (index_t i = 0; i < n; ++i) out[i] = static_cast<double>(y[i]);
    }
    return out;
  };

  const auto yc = run(csr);
  const auto ys = run(sell);
  // Same precision, same per-row arithmetic; only summation order may
  // differ (padding taps multiply by zero), so agreement is tight.
  const double tol = 200.0 * unit_roundoff(vp == Prec::FP16 ? Prec::FP16 : vp);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(ys[i], yc[i], tol * (1.0 + std::abs(yc[i]))) << "row " << i;
}

INSTANTIATE_TEST_SUITE_P(
    AllNine, SellPrecisionMatrix,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Values(0, 1, 2)),
    [](const auto& info) {
      return std::string("mat_") + prec_name(static_cast<Prec>(std::get<0>(info.param))) +
             "_vec_" + prec_name(static_cast<Prec>(std::get<1>(info.param)));
    });

}  // namespace
}  // namespace nk
