// Tests for the batched multi-RHS kernels: spmm / residual_many over CSR
// and SELL-C (sparse/spmm.hpp) and the column kernels dot_cols / axpy_cols
// / axpby_cols (base/blas_block.hpp).  Mirrors blas_block_test's grid:
// edge sizes 0/1/3/4099, every MT/XT precision pair, SELL chunk-remainder
// rows, and a forced multi-thread team re-run registered by CMake with
// OMP_NUM_THREADS=4 + NKRYLOV_PAR_THRESHOLD=0 (the PR 2 scratch-buffer bug
// class: kernels must stay correct when every parallel region really
// forms a team).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "base/blas_block.hpp"
#include "base/rng.hpp"
#include "sparse/gen/laplace.hpp"
#include "sparse/gen/random_matrix.hpp"
#include "sparse/sell.hpp"
#include "sparse/spmm.hpp"
#include "sparse/spmv.hpp"

namespace nk {
namespace {

// Edge sizes: empty, single row, sub-chunk, 4k+3 (multiple SELL chunks of
// 32 plus a 3-row remainder slice; also several parallel tiles).
const std::vector<index_t> kSizes = {0, 1, 3, 4099};
const std::vector<int> kCounts = {0, 1, 3, 8};

template <class T>
std::vector<T> typed_random(std::size_t n, std::uint64_t seed) {
  const auto d = random_vector<double>(n, seed, -1.0, 1.0);
  std::vector<T> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<T>(d[i]);
  return out;
}

/// Sorted random test matrix; n = 0 degenerates to the empty matrix
/// (random_sparse itself rejects it).
CsrMatrix<double> test_matrix(index_t n, double nnz_per_row, std::uint64_t seed) {
  if (n == 0) return CsrMatrix<double>(0, 0);
  auto a = gen::random_sparse({.n = n, .avg_nnz_per_row = nnz_per_row, .seed = seed});
  a.sort_rows();
  return a;
}

/// Agreement bound between spmm and per-column spmv over CSR: bitwise for
/// everything except fp16 STORAGE with a wider vector type, where the two
/// loop structures may be FMA-contracted differently by the compiler (see
/// spmm.hpp) — there the bound is fp32-rounding-level.  SELL runs the
/// identical slice sweep on both sides and is always bitwise.
template <class MT, class XT>
double csr_tol(double ref) {
  if constexpr (sizeof(MT) == 2 && !std::is_same_v<MT, XT>)
    return 1e-5 * std::max(1.0, std::abs(ref));
  else
    return 0.0;
}

template <class MT, class XT>
void check_spmm_pair() {
  for (index_t n : kSizes) {
    const auto a64 = test_matrix(n, 6.0, 77);
    const auto a = cast_matrix<MT>(a64);
    const auto s = csr_to_sell(a, 32);
    const auto s8 = csr_to_sell(a, 8);  // remainder rows in the last slice for n=1,3,4099
    const std::size_t nn = static_cast<std::size_t>(n);
    for (int k : kCounts) {
      const auto x = typed_random<XT>(nn * static_cast<std::size_t>(k), 78);
      std::vector<XT> y(nn * static_cast<std::size_t>(k), XT{9});
      std::vector<XT> yref(nn);

      spmm(a, x.data(), static_cast<std::ptrdiff_t>(nn), y.data(),
           static_cast<std::ptrdiff_t>(nn), k);
      for (int c = 0; c < k; ++c) {
        spmv(a, std::span<const XT>(x.data() + static_cast<std::size_t>(c) * nn, nn),
             std::span<XT>(yref));
        for (std::size_t i = 0; i < nn; ++i) {
          const double ref = static_cast<double>(yref[i]);
          ASSERT_NEAR(static_cast<double>(y[static_cast<std::size_t>(c) * nn + i]), ref,
                      (csr_tol<MT, XT>(ref)))
              << "csr n=" << n << " k=" << k << " c=" << c << " i=" << i;
        }
      }

      for (const auto* sm : {&s, &s8}) {
        std::fill(y.begin(), y.end(), XT{9});
        spmm(*sm, x.data(), static_cast<std::ptrdiff_t>(nn), y.data(),
             static_cast<std::ptrdiff_t>(nn), k);
        for (int c = 0; c < k; ++c) {
          spmv(*sm, std::span<const XT>(x.data() + static_cast<std::size_t>(c) * nn, nn),
               std::span<XT>(yref));
          for (std::size_t i = 0; i < nn; ++i)
            ASSERT_EQ(static_cast<double>(y[static_cast<std::size_t>(c) * nn + i]),
                      static_cast<double>(yref[i]))
                << "sell C=" << sm->chunk << " n=" << n << " k=" << k << " c=" << c
                << " i=" << i;
        }
      }
    }
  }
}

TEST(Spmm, MatchesSpmvPerColumnAllPrecisionPairs) {
  check_spmm_pair<double, double>();
  check_spmm_pair<float, float>();
  check_spmm_pair<half, half>();
  check_spmm_pair<half, float>();  // F3R level 3: fp16 matrix, fp32 vectors
  check_spmm_pair<float, double>();
}

template <class MT, class XT>
void check_residual_many_pair() {
  for (index_t n : kSizes) {
    const auto a64 = test_matrix(n, 5.0, 80);
    const auto a = cast_matrix<MT>(a64);
    const auto s = csr_to_sell(a, 32);
    const std::size_t nn = static_cast<std::size_t>(n);
    for (int k : kCounts) {
      const auto x = typed_random<XT>(nn * static_cast<std::size_t>(k), 81);
      const auto b = typed_random<XT>(nn * static_cast<std::size_t>(k), 82);
      std::vector<XT> r(nn * static_cast<std::size_t>(k), XT{9});
      std::vector<XT> rref(nn);

      residual_many(a, x.data(), static_cast<std::ptrdiff_t>(nn), b.data(),
                    static_cast<std::ptrdiff_t>(nn), r.data(),
                    static_cast<std::ptrdiff_t>(nn), k);
      for (int c = 0; c < k; ++c) {
        residual(a, std::span<const XT>(x.data() + static_cast<std::size_t>(c) * nn, nn),
                 std::span<const XT>(b.data() + static_cast<std::size_t>(c) * nn, nn),
                 std::span<XT>(rref));
        for (std::size_t i = 0; i < nn; ++i) {
          const double ref = static_cast<double>(rref[i]);
          ASSERT_NEAR(static_cast<double>(r[static_cast<std::size_t>(c) * nn + i]), ref,
                      (csr_tol<MT, XT>(ref)))
              << "csr n=" << n << " k=" << k << " c=" << c;
        }
      }

      std::fill(r.begin(), r.end(), XT{9});
      residual_many(s, x.data(), static_cast<std::ptrdiff_t>(nn), b.data(),
                    static_cast<std::ptrdiff_t>(nn), r.data(),
                    static_cast<std::ptrdiff_t>(nn), k);
      for (int c = 0; c < k; ++c) {
        residual(s, std::span<const XT>(x.data() + static_cast<std::size_t>(c) * nn, nn),
                 std::span<const XT>(b.data() + static_cast<std::size_t>(c) * nn, nn),
                 std::span<XT>(rref));
        for (std::size_t i = 0; i < nn; ++i)
          ASSERT_EQ(static_cast<double>(r[static_cast<std::size_t>(c) * nn + i]),
                    static_cast<double>(rref[i]))
              << "sell n=" << n << " k=" << k << " c=" << c;
      }
    }
  }
}

TEST(ResidualMany, MatchesResidualPerColumnAllPrecisionPairs) {
  check_residual_many_pair<double, double>();
  check_residual_many_pair<float, float>();
  check_residual_many_pair<half, half>();
  check_residual_many_pair<half, float>();
}

TEST(Spmm, ZeroColumnsIsNoop) {
  auto a = gen::random_sparse({.n = 16, .seed = 5});
  a.sort_rows();
  double sentinel = 123.0;
  spmm(a, &sentinel, 16, &sentinel, 16, 0);
  EXPECT_EQ(sentinel, 123.0);
}

TEST(Spmm, SellChunkRemainderRows) {
  // 4099 = 128·32 + 3: the final slice has 3 real rows and 29 padding
  // lanes; padding must contribute exact zeros for every precision.
  auto a64 = gen::laplace2d(4099, 1);
  a64.sort_rows();
  const auto a16 = cast_matrix<half>(a64);
  const auto s16 = csr_to_sell(a16, 32);
  const std::size_t nn = 4099;
  const int k = 3;
  const auto x = typed_random<float>(nn * k, 90);
  std::vector<float> y(nn * k), yref(nn);
  spmm(s16, x.data(), static_cast<std::ptrdiff_t>(nn), y.data(),
       static_cast<std::ptrdiff_t>(nn), k);
  for (int c = 0; c < k; ++c) {
    spmv(s16, std::span<const float>(x.data() + static_cast<std::size_t>(c) * nn, nn),
         std::span<float>(yref));
    for (std::size_t i = 0; i < nn; ++i)
      ASSERT_EQ(y[static_cast<std::size_t>(c) * nn + i], yref[i]) << "c=" << c << " i=" << i;
  }
}

// ---------------------------------------------------------------------------
// Column kernels (blas_block.hpp)
// ---------------------------------------------------------------------------

template <class TX, class TY>
void check_dot_cols() {
  for (index_t n : kSizes) {
    const std::size_t nn = static_cast<std::size_t>(n);
    for (int k : kCounts) {
      const auto x = typed_random<TX>(nn * static_cast<std::size_t>(k), 60);
      const auto y = typed_random<TY>(nn * static_cast<std::size_t>(k), 61);
      using S = acc_t<promote_t<TX, TY>>;
      std::vector<S> out(static_cast<std::size_t>(k) + 1, S{99});
      blas::dot_cols(x.data(), static_cast<std::ptrdiff_t>(nn), y.data(),
                     static_cast<std::ptrdiff_t>(nn), k, nn, out.data());
      for (int c = 0; c < k; ++c) {
        // Serial-order reference replicating blas::dot's unrolling.
        S ref;
        if constexpr (sizeof(TX) == 2 || sizeof(TY) == 2) {
          S s0{0}, s1{0}, s2{0}, s3{0};
          std::size_t i = 0;
          for (; i + 4 <= nn; i += 4) {
            const std::size_t o = static_cast<std::size_t>(c) * nn + i;
            s0 += static_cast<S>(x[o]) * static_cast<S>(y[o]);
            s1 += static_cast<S>(x[o + 1]) * static_cast<S>(y[o + 1]);
            s2 += static_cast<S>(x[o + 2]) * static_cast<S>(y[o + 2]);
            s3 += static_cast<S>(x[o + 3]) * static_cast<S>(y[o + 3]);
          }
          for (; i < nn; ++i) {
            const std::size_t o = static_cast<std::size_t>(c) * nn + i;
            s0 += static_cast<S>(x[o]) * static_cast<S>(y[o]);
          }
          ref = (s0 + s1) + (s2 + s3);
        } else {
          S s{0};
          for (std::size_t i = 0; i < nn; ++i) {
            const std::size_t o = static_cast<std::size_t>(c) * nn + i;
            s += static_cast<S>(x[o]) * static_cast<S>(y[o]);
          }
          ref = s;
        }
        ASSERT_EQ(static_cast<double>(out[c]), static_cast<double>(ref))
            << "n=" << n << " k=" << k << " c=" << c;
      }
      EXPECT_EQ(static_cast<double>(out[static_cast<std::size_t>(k)]), 99.0);
    }
  }
}

TEST(DotCols, SerialOrderPerColumnAllPrecisionPairs) {
  check_dot_cols<double, double>();
  check_dot_cols<float, float>();
  check_dot_cols<half, half>();
  check_dot_cols<half, float>();
  check_dot_cols<float, double>();
}

template <class TX, class TY>
void check_axpy_cols() {
  using S = acc_t<promote_t<TX, TY>>;
  for (index_t n : kSizes) {
    const std::size_t nn = static_cast<std::size_t>(n);
    for (int k : kCounts) {
      const auto x = typed_random<TX>(nn * static_cast<std::size_t>(k), 62);
      const auto y0 = typed_random<TY>(nn * static_cast<std::size_t>(k), 63);
      std::vector<S> alpha(static_cast<std::size_t>(std::max(k, 1)));
      std::vector<unsigned char> act(static_cast<std::size_t>(std::max(k, 1)), 1);
      for (int c = 0; c < k; ++c) alpha[c] = static_cast<S>(0.25 * (c + 1));
      if (k > 1) act[1] = 0;  // one frozen column must stay untouched

      std::vector<TY> fused = y0, ref = y0;
      blas::axpy_cols(alpha.data(), x.data(), static_cast<std::ptrdiff_t>(nn),
                      fused.data(), static_cast<std::ptrdiff_t>(nn), k, nn, act.data());
      for (int c = 0; c < k; ++c) {
        if (!act[c]) continue;
        blas::axpy(alpha[c],
                   std::span<const TX>(x.data() + static_cast<std::size_t>(c) * nn, nn),
                   std::span<TY>(ref.data() + static_cast<std::size_t>(c) * nn, nn));
      }
      for (std::size_t i = 0; i < fused.size(); ++i)
        ASSERT_EQ(static_cast<double>(fused[i]), static_cast<double>(ref[i]))
            << "n=" << n << " k=" << k << " i=" << i;
    }
  }
}

TEST(AxpyCols, BitExactVsPerColumnAxpyWithMask) {
  check_axpy_cols<double, double>();
  check_axpy_cols<float, float>();
  check_axpy_cols<half, half>();
  check_axpy_cols<half, float>();
  check_axpy_cols<float, half>();
}

TEST(AxpbyCols, BitExactVsPerColumnAxpbyWithMask) {
  const std::size_t nn = 4099;
  const int k = 4;
  const auto x = typed_random<double>(nn * k, 64);
  const auto y0 = typed_random<double>(nn * k, 65);
  std::vector<double> alpha = {1.0, 1.0, 1.0, 1.0};
  std::vector<double> beta = {0.5, -0.25, 2.0, 0.0};
  std::vector<unsigned char> act = {1, 0, 1, 1};
  std::vector<double> fused = y0, ref = y0;
  blas::axpby_cols(alpha.data(), x.data(), static_cast<std::ptrdiff_t>(nn), beta.data(),
                   fused.data(), static_cast<std::ptrdiff_t>(nn), k, nn, act.data());
  for (int c = 0; c < k; ++c) {
    if (!act[c]) continue;
    blas::axpby(alpha[c], std::span<const double>(x.data() + c * nn, nn), beta[c],
                std::span<double>(ref.data() + c * nn, nn));
  }
  for (std::size_t i = 0; i < fused.size(); ++i) ASSERT_EQ(fused[i], ref[i]) << i;
}

}  // namespace
}  // namespace nk
