// Tests for the sliced-ELLPACK format: structural invariants and SpMV
// equivalence with CSR across chunk sizes and value types.
#include <gtest/gtest.h>

#include <tuple>

#include "base/rng.hpp"
#include "sparse/gen/random_matrix.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/sell.hpp"
#include "sparse/spmv.hpp"

namespace nk {
namespace {

TEST(Sell, StructureOfSmallConversion) {
  // 3 rows with 1, 3, 2 entries; chunk 2 → slice 0 width 3, slice 1 width 2.
  CsrMatrix<double> a(3, 3);
  a.row_ptr = {0, 1, 4, 6};
  a.col_idx = {0, 0, 1, 2, 1, 2};
  a.vals = {1, 2, 3, 4, 5, 6};
  const auto s = csr_to_sell(a, 2);
  EXPECT_EQ(s.nslices(), 2);
  EXPECT_EQ(s.slice_width[0], 3);
  EXPECT_EQ(s.slice_width[1], 2);
  EXPECT_EQ(s.slice_ptr[1], 6);       // 3 × 2 lanes
  EXPECT_EQ(s.padded_nnz(), 10u);     // 6 + 4
  EXPECT_DOUBLE_EQ(sell_pad_ratio(s, a.nnz()), 10.0 / 6.0);
}

TEST(Sell, PaddingValuesAreZero) {
  CsrMatrix<double> a(2, 2);
  a.row_ptr = {0, 2, 3};
  a.col_idx = {0, 1, 1};
  a.vals = {1, 2, 3};
  const auto s = csr_to_sell(a, 2);
  // Row 1 (lane 1) has width-2 slice with 1 real entry: one pad with v=0.
  int zeros = 0;
  for (double v : s.vals)
    if (v == 0.0) ++zeros;
  EXPECT_EQ(zeros, 1);
}

class SellEquivalence : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SellEquivalence, SpmvMatchesCsr) {
  const auto [n, chunk] = GetParam();
  gen::RandomOptions opt;
  opt.n = n;
  opt.seed = 31 + static_cast<std::uint64_t>(chunk);
  const auto a = gen::random_sparse(opt);
  const auto s = csr_to_sell(a, chunk);
  const auto x = random_vector<double>(n, 17, -1.0, 1.0);

  std::vector<double> yc(n), ys(n);
  spmv(a, std::span<const double>(x), std::span<double>(yc));
  spmv(s, std::span<const double>(x), std::span<double>(ys));
  for (int i = 0; i < n; ++i) EXPECT_NEAR(ys[i], yc[i], 1e-12);
}

TEST_P(SellEquivalence, ResidualMatchesCsr) {
  const auto [n, chunk] = GetParam();
  gen::RandomOptions opt;
  opt.n = n;
  opt.seed = 77;
  const auto a = gen::random_sparse(opt);
  const auto s = csr_to_sell(a, chunk);
  const auto x = random_vector<double>(n, 3, -1.0, 1.0);
  const auto b = random_vector<double>(n, 4, -1.0, 1.0);

  std::vector<double> rc(n), rs(n);
  residual(a, std::span<const double>(x), std::span<const double>(b), std::span<double>(rc));
  residual(s, std::span<const double>(x), std::span<const double>(b), std::span<double>(rs));
  for (int i = 0; i < n; ++i) EXPECT_NEAR(rs[i], rc[i], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(SizesChunks, SellEquivalence,
                         ::testing::Combine(::testing::Values(1, 31, 32, 33, 257),
                                            ::testing::Values(1, 4, 32)));

TEST(Sell, HalfPrecisionSpmvMatchesCsrHalf) {
  const auto a = gen::random_sparse({.n = 300, .avg_nnz_per_row = 8.0, .seed = 5});
  const auto a16 = cast_matrix<half>(a);
  const auto s16 = csr_to_sell(a16, 32);
  const auto x = random_vector<float>(300, 9, 0.0, 1.0);

  std::vector<float> yc(300), ys(300);
  spmv(a16, std::span<const float>(x), std::span<float>(yc));
  spmv(s16, std::span<const float>(x), std::span<float>(ys));
  // Same arithmetic per row, possibly different order due to padding taps
  // multiplying by zero — results should agree to fp32 rounding.
  for (int i = 0; i < 300; ++i) EXPECT_NEAR(ys[i], yc[i], 1e-4f * (1.0f + std::abs(yc[i])));
}

TEST(Sell, StencilChunk32MatchesPaperSetting) {
  const auto a = gen::hpcg(4, 4, 4);
  const auto s = csr_to_sell(a, 32);
  EXPECT_EQ(s.chunk, 32);
  EXPECT_EQ(s.nslices(), (a.nrows + 31) / 32);
  // 27-point stencil rows differ in nnz near boundaries → some padding.
  EXPECT_GT(sell_pad_ratio(s, a.nnz()), 1.0);
  EXPECT_LT(sell_pad_ratio(s, a.nnz()), 1.3);
}

}  // namespace
}  // namespace nk
