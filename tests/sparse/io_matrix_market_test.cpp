// Tests for Matrix Market I/O (the SuiteSparse distribution format).
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/gen/random_matrix.hpp"
#include "sparse/io_matrix_market.hpp"

namespace nk {
namespace {

TEST(MatrixMarket, RoundTripGeneral) {
  const auto a = gen::random_sparse({.n = 40, .avg_nnz_per_row = 5.0, .seed = 4});
  std::stringstream ss;
  write_matrix_market(ss, a);
  const auto b = read_matrix_market(ss);
  ASSERT_EQ(b.nrows, a.nrows);
  ASSERT_EQ(b.nnz(), a.nnz());
  for (index_t i = 0; i < a.nrows; ++i)
    for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k)
      EXPECT_NEAR(b.at(i, a.col_idx[k]), a.vals[k], 1e-15 * std::abs(a.vals[k]));
}

TEST(MatrixMarket, SymmetricExpansion) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% lower triangle only\n"
      "3 3 4\n"
      "1 1 2.0\n"
      "2 1 -1.0\n"
      "2 2 2.0\n"
      "3 3 2.0\n");
  const auto a = read_matrix_market(in);
  EXPECT_EQ(a.nnz(), 5);  // off-diagonal mirrored
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
}

TEST(MatrixMarket, SkewSymmetricExpansion) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n");
  const auto a = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -3.0);
}

TEST(MatrixMarket, PatternFieldGivesOnes) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  const auto a = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 1.0);
}

TEST(MatrixMarket, IntegerField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "1 1 1\n"
      "1 1 7\n");
  EXPECT_DOUBLE_EQ(read_matrix_market(in).at(0, 0), 7.0);
}

TEST(MatrixMarket, CommentsSkipped) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% comment a\n"
      "% comment b\n"
      "1 1 1\n"
      "1 1 4.5\n");
  EXPECT_DOUBLE_EQ(read_matrix_market(in).at(0, 0), 4.5);
}

TEST(MatrixMarket, RejectsMalformedInputs) {
  {
    std::istringstream in("not a matrix\n1 1 1\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
  {
    std::istringstream in("%%MatrixMarket matrix array real general\n1 1\n1.0\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
  {
    std::istringstream in("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
  {
    // truncated entries
    std::istringstream in("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
  {
    std::istringstream in("");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
}

TEST(MatrixMarket, CrlfLineEndingsParseIdentically) {
  // Windows-written files: every line terminated \r\n, including the
  // banner, comments, size line, and entries.  Must parse exactly like the
  // LF version, not error and not corrupt values.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\r\n"
      "% written on windows\r\n"
      "\r\n"
      "3 3 3\r\n"
      "1 1 2.5\r\n"
      "2 1 -1.0\r\n"
      "3 3 4.0\r\n");
  const auto a = read_matrix_market(in);
  EXPECT_EQ(a.nrows, 3);
  EXPECT_EQ(a.nnz(), 4);  // (2,1) mirrored
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 4.0);
}

TEST(MatrixMarket, TruncatedHeaderRejected) {
  {
    // Banner line cut off mid-token list (no field/symmetry).
    std::istringstream in("%%MatrixMarket matrix coordinate\n2 2 1\n1 1 1.0\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
  {
    // Header only, no size line at all.
    std::istringstream in("%%MatrixMarket matrix coordinate real general\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
  {
    // Comments but still no size line.
    std::istringstream in("%%MatrixMarket matrix coordinate real general\n% a\n% b\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
  {
    // Size line with a missing count.
    std::istringstream in("%%MatrixMarket matrix coordinate real general\n4 4\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
}

TEST(MatrixMarket, OutOfRangeIndicesRejected) {
  {
    // 1-based index above the declared dimension.
    std::istringstream in("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
  {
    // Zero index (below the 1-based range).
    std::istringstream in("%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
  {
    // Negative index.
    std::istringstream in("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 -1 1.0\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
  {
    // Index so large the old narrowing cast would have wrapped back into
    // range and silently corrupted the matrix.
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n4294967297 1 1.0\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
  {
    // Dimensions beyond the 32-bit index range.
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n9999999999 2 0\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
}

TEST(MatrixMarket, PatternAndComplexFieldEdgeCases) {
  {
    // Pattern entry carrying a malformed index: clean error, not UB.
    std::istringstream in("%%MatrixMarket matrix coordinate pattern general\n2 2 1\nx y\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
  {
    // Real field with a garbage value token.
    std::istringstream in("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
  {
    // Complex field: unsupported, must say so cleanly.
    std::istringstream in(
        "%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 1 1.0 0.0\n");
    try {
      read_matrix_market(in);
      FAIL() << "complex field accepted";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("complex"), std::string::npos);
    }
  }
  {
    // Hermitian symmetry: unsupported, clean error.
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real hermitian\n2 2 1\n1 1 1.0\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
}

TEST(MatrixMarket, FileRoundTrip) {
  const auto a = gen::random_sparse({.n = 10, .seed = 8});
  const std::string path = ::testing::TempDir() + "/nk_io_test.mtx";
  write_matrix_market_file(path, a);
  const auto b = read_matrix_market_file(path);
  EXPECT_EQ(b.nnz(), a.nnz());
  EXPECT_THROW(read_matrix_market_file("/no/such/file.mtx"), std::runtime_error);
}

TEST(MatrixMarket, DuplicateEntriesSummed) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "1 1 2\n"
      "1 1 1.5\n"
      "1 1 2.5\n");
  EXPECT_DOUBLE_EQ(read_matrix_market(in).at(0, 0), 4.0);
}

}  // namespace
}  // namespace nk
