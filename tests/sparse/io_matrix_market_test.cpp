// Tests for Matrix Market I/O (the SuiteSparse distribution format).
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/gen/random_matrix.hpp"
#include "sparse/io_matrix_market.hpp"

namespace nk {
namespace {

TEST(MatrixMarket, RoundTripGeneral) {
  const auto a = gen::random_sparse({.n = 40, .avg_nnz_per_row = 5.0, .seed = 4});
  std::stringstream ss;
  write_matrix_market(ss, a);
  const auto b = read_matrix_market(ss);
  ASSERT_EQ(b.nrows, a.nrows);
  ASSERT_EQ(b.nnz(), a.nnz());
  for (index_t i = 0; i < a.nrows; ++i)
    for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k)
      EXPECT_NEAR(b.at(i, a.col_idx[k]), a.vals[k], 1e-15 * std::abs(a.vals[k]));
}

TEST(MatrixMarket, SymmetricExpansion) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% lower triangle only\n"
      "3 3 4\n"
      "1 1 2.0\n"
      "2 1 -1.0\n"
      "2 2 2.0\n"
      "3 3 2.0\n");
  const auto a = read_matrix_market(in);
  EXPECT_EQ(a.nnz(), 5);  // off-diagonal mirrored
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
}

TEST(MatrixMarket, SkewSymmetricExpansion) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n");
  const auto a = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -3.0);
}

TEST(MatrixMarket, PatternFieldGivesOnes) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  const auto a = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 1.0);
}

TEST(MatrixMarket, IntegerField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "1 1 1\n"
      "1 1 7\n");
  EXPECT_DOUBLE_EQ(read_matrix_market(in).at(0, 0), 7.0);
}

TEST(MatrixMarket, CommentsSkipped) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% comment a\n"
      "% comment b\n"
      "1 1 1\n"
      "1 1 4.5\n");
  EXPECT_DOUBLE_EQ(read_matrix_market(in).at(0, 0), 4.5);
}

TEST(MatrixMarket, RejectsMalformedInputs) {
  {
    std::istringstream in("not a matrix\n1 1 1\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
  {
    std::istringstream in("%%MatrixMarket matrix array real general\n1 1\n1.0\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
  {
    std::istringstream in("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
  {
    // truncated entries
    std::istringstream in("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
  {
    std::istringstream in("");
    EXPECT_THROW(read_matrix_market(in), std::runtime_error);
  }
}

TEST(MatrixMarket, FileRoundTrip) {
  const auto a = gen::random_sparse({.n = 10, .seed = 8});
  const std::string path = ::testing::TempDir() + "/nk_io_test.mtx";
  write_matrix_market_file(path, a);
  const auto b = read_matrix_market_file(path);
  EXPECT_EQ(b.nnz(), a.nnz());
  EXPECT_THROW(read_matrix_market_file("/no/such/file.mtx"), std::runtime_error);
}

TEST(MatrixMarket, DuplicateEntriesSummed) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "1 1 2\n"
      "1 1 1.5\n"
      "1 1 2.5\n");
  EXPECT_DOUBLE_EQ(read_matrix_market(in).at(0, 0), 4.0);
}

}  // namespace
}  // namespace nk
