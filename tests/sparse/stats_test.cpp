// Tests for the matrix analysis used in Table 2 reporting.
#include <gtest/gtest.h>

#include "sparse/gen/convdiff.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/stats.hpp"

namespace nk {
namespace {

TEST(Stats, HpcgStencilProperties) {
  const auto a = gen::hpcg(3, 3, 3);
  const auto s = analyze(a);
  EXPECT_EQ(s.n, 512);
  EXPECT_TRUE(s.structurally_symmetric);
  EXPECT_TRUE(s.numerically_symmetric);
  EXPECT_TRUE(s.has_full_diagonal);
  EXPECT_EQ(s.max_row_nnz, 27);
  EXPECT_EQ(s.min_row_nnz, 8);  // corner rows: 2×2×2 neighbourhood
  EXPECT_DOUBLE_EQ(s.max_abs, 26.0);
  EXPECT_DOUBLE_EQ(s.fp16_overflow_fraction, 0.0);
  // interior: 26 / 26 off-diagonals of magnitude 1 → dominance 1.
  EXPECT_NEAR(s.diag_dominance_min, 1.0, 1e-12);
}

TEST(Stats, HpgmpIsNonsymmetric) {
  const auto a = gen::hpgmp(3, 3, 3);
  const auto s = analyze(a);
  EXPECT_TRUE(s.structurally_symmetric);  // pattern symmetric
  EXPECT_FALSE(s.numerically_symmetric);  // ±β breaks value symmetry
}

TEST(Stats, ConvdiffWeaklyDiagonallyDominant) {
  gen::ConvDiffOptions o;
  o.nx = o.ny = 16;
  o.nz = 1;
  o.vx = 50.0;
  const auto s = analyze(gen::convdiff(o));
  EXPECT_GE(s.diag_dominance_min, 1.0 - 1e-12);
  EXPECT_FALSE(s.numerically_symmetric);
}

TEST(Stats, Fp16OverflowFractionCounts) {
  CsrMatrix<double> a(2, 2);
  a.row_ptr = {0, 1, 2};
  a.col_idx = {0, 1};
  a.vals = {1e6, 2.0};  // 1e6 overflows binary16
  const auto s = analyze(a);
  EXPECT_DOUBLE_EQ(s.fp16_overflow_fraction, 0.5);
}

TEST(Stats, MissingDiagonalDetected) {
  CsrMatrix<double> a(2, 2);
  a.row_ptr = {0, 1, 2};
  a.col_idx = {1, 0};
  a.vals = {1.0, 1.0};
  const auto s = analyze(a);
  EXPECT_FALSE(s.has_full_diagonal);
}

TEST(Stats, SummaryContainsKeyFields) {
  const auto s = analyze(gen::hpcg(3, 3, 3));
  const std::string str = stats_summary(s);
  EXPECT_NE(str.find("n=512"), std::string::npos);
  EXPECT_NE(str.find("sym=yes"), std::string::npos);
}

}  // namespace
}  // namespace nk
