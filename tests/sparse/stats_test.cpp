// Tests for the matrix analysis used in Table 2 reporting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sparse/gen/convdiff.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/stats.hpp"

namespace nk {
namespace {

TEST(Stats, HpcgStencilProperties) {
  const auto a = gen::hpcg(3, 3, 3);
  const auto s = analyze(a);
  EXPECT_EQ(s.n, 512);
  EXPECT_TRUE(s.structurally_symmetric);
  EXPECT_TRUE(s.numerically_symmetric);
  EXPECT_TRUE(s.has_full_diagonal);
  EXPECT_EQ(s.max_row_nnz, 27);
  EXPECT_EQ(s.min_row_nnz, 8);  // corner rows: 2×2×2 neighbourhood
  EXPECT_DOUBLE_EQ(s.max_abs, 26.0);
  EXPECT_DOUBLE_EQ(s.fp16_overflow_fraction, 0.0);
  // interior: 26 / 26 off-diagonals of magnitude 1 → dominance 1.
  EXPECT_NEAR(s.diag_dominance_min, 1.0, 1e-12);
}

TEST(Stats, HpgmpIsNonsymmetric) {
  const auto a = gen::hpgmp(3, 3, 3);
  const auto s = analyze(a);
  EXPECT_TRUE(s.structurally_symmetric);  // pattern symmetric
  EXPECT_FALSE(s.numerically_symmetric);  // ±β breaks value symmetry
}

TEST(Stats, ConvdiffWeaklyDiagonallyDominant) {
  gen::ConvDiffOptions o;
  o.nx = o.ny = 16;
  o.nz = 1;
  o.vx = 50.0;
  const auto s = analyze(gen::convdiff(o));
  EXPECT_GE(s.diag_dominance_min, 1.0 - 1e-12);
  EXPECT_FALSE(s.numerically_symmetric);
}

TEST(Stats, Fp16OverflowFractionCounts) {
  CsrMatrix<double> a(2, 2);
  a.row_ptr = {0, 1, 2};
  a.col_idx = {0, 1};
  a.vals = {1e6, 2.0};  // 1e6 overflows binary16
  const auto s = analyze(a);
  EXPECT_DOUBLE_EQ(s.fp16_overflow_fraction, 0.5);
}

TEST(Stats, MissingDiagonalDetected) {
  CsrMatrix<double> a(2, 2);
  a.row_ptr = {0, 1, 2};
  a.col_idx = {1, 0};
  a.vals = {1.0, 1.0};
  const auto s = analyze(a);
  EXPECT_FALSE(s.has_full_diagonal);
}

TEST(Stats, BandwidthAndRowVariance) {
  // Tridiagonal: bandwidth exactly 1; rows are 2-2-...-2-3-...-3-2 so the
  // row-length stddev is small but nonzero.
  const int n = 8;
  CsrMatrix<double> a(n, n);
  a.row_ptr.assign(1, 0);
  for (int i = 0; i < n; ++i) {
    for (int j = std::max(0, i - 1); j <= std::min(n - 1, i + 1); ++j) {
      a.col_idx.push_back(j);
      a.vals.push_back(i == j ? 2.0 : -1.0);
    }
    a.row_ptr.push_back(static_cast<index_t>(a.col_idx.size()));
  }
  const auto s = analyze(a);
  EXPECT_EQ(s.bandwidth, 1);
  // 2 rows of 2 nnz, 6 rows of 3 nnz: mean 22/8, population variance
  // 2·(2−μ)² + 6·(3−μ)² over 8.
  const double mu = 22.0 / 8.0;
  const double var = (2.0 * (2.0 - mu) * (2.0 - mu) + 6.0 * (3.0 - mu) * (3.0 - mu)) / 8.0;
  EXPECT_NEAR(s.row_nnz_stddev, std::sqrt(var), 1e-12);
}

TEST(Stats, BandwidthSeesOffDiagonalBlocks) {
  // An arrow pattern: row 0 reaches column n-1, so bandwidth = n-1, and
  // row lengths are maximally ragged vs the all-diagonal remainder.
  CsrMatrix<double> a(4, 4);
  a.row_ptr = {0, 4, 5, 6, 7};
  a.col_idx = {0, 1, 2, 3, 1, 2, 3};
  a.vals = {4.0, 1.0, 1.0, 1.0, 4.0, 4.0, 4.0};
  const auto s = analyze(a);
  EXPECT_EQ(s.bandwidth, 3);
  EXPECT_GT(s.row_nnz_stddev, 1.0);
}

TEST(Stats, UniformStencilHasZeroRowVariance) {
  // Every interior-only uniform pattern: stddev identically 0 (the signal
  // the SELL-format recommendation keys on).
  CsrMatrix<double> a(3, 3);
  a.row_ptr = {0, 1, 2, 3};
  a.col_idx = {0, 1, 2};
  a.vals = {1.0, 1.0, 1.0};
  const auto s = analyze(a);
  EXPECT_DOUBLE_EQ(s.row_nnz_stddev, 0.0);
  EXPECT_EQ(s.bandwidth, 0);
}

TEST(Stats, SummaryContainsKeyFields) {
  const auto s = analyze(gen::hpcg(3, 3, 3));
  const std::string str = stats_summary(s);
  EXPECT_NE(str.find("n=512"), std::string::npos);
  EXPECT_NE(str.find("sym=yes"), std::string::npos);
}

}  // namespace
}  // namespace nk
