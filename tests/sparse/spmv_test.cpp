// Property tests for the CSR SpMV kernels, including the mixed-precision
// combinations F3R relies on (fp16 matrix × fp32 vectors, pure fp16).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "base/rng.hpp"
#include "sparse/gen/random_matrix.hpp"
#include "sparse/spmv.hpp"

namespace nk {
namespace {

/// Dense reference product in long double.
std::vector<double> dense_ref(const CsrMatrix<double>& a, const std::vector<double>& x) {
  std::vector<double> y(a.nrows, 0.0);
  for (index_t i = 0; i < a.nrows; ++i) {
    long double s = 0.0L;
    for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k)
      s += static_cast<long double>(a.vals[k]) * x[a.col_idx[k]];
    y[i] = static_cast<double>(s);
  }
  return y;
}

class SpmvProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SpmvProperty, MatchesDenseReferenceFp64) {
  const auto [n, seed] = GetParam();
  gen::RandomOptions opt;
  opt.n = n;
  opt.seed = static_cast<std::uint64_t>(seed);
  opt.avg_nnz_per_row = 6.0;
  const auto a = gen::random_sparse(opt);
  const auto x = random_vector<double>(n, 99, -1.0, 1.0);
  const auto ref = dense_ref(a, x);

  std::vector<double> y(n);
  spmv(a, std::span<const double>(x), std::span<double>(y));
  for (index_t i = 0; i < a.nrows; ++i) EXPECT_NEAR(y[i], ref[i], 1e-12);
}

TEST_P(SpmvProperty, MixedFp16MatrixFp32VectorsTracksReference) {
  const auto [n, seed] = GetParam();
  gen::RandomOptions opt;
  opt.n = n;
  opt.seed = static_cast<std::uint64_t>(seed);
  const auto a = gen::random_sparse(opt);
  const auto a16 = cast_matrix<half>(a);
  const auto x = random_vector<double>(n, 5, -1.0, 1.0);
  const auto xf = converted<float>(x);
  const auto ref = dense_ref(a, x);

  std::vector<float> y(n);
  spmv(a16, std::span<const float>(xf), std::span<float>(y));
  // Error budget: half matrix-storage rounding (2^-11 per value) times the
  // row's absolute sum.
  for (index_t i = 0; i < a.nrows; ++i) {
    double rowsum = 0.0;
    for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) rowsum += std::abs(a.vals[k]);
    EXPECT_NEAR(y[i], ref[i], rowsum * 2e-3 + 1e-6);
  }
}

TEST_P(SpmvProperty, PureFp16RoundsButStaysClose) {
  const auto [n, seed] = GetParam();
  gen::RandomOptions opt;
  opt.n = n;
  opt.seed = static_cast<std::uint64_t>(seed);
  opt.avg_nnz_per_row = 4.0;
  const auto a = gen::random_sparse(opt);
  const auto a16 = cast_matrix<half>(a);
  const auto x = random_vector<double>(n, 5, 0.0, 1.0);
  const auto xh = converted<half>(x);
  const auto ref = dense_ref(a, x);

  std::vector<half> y(n);
  spmv(a16, std::span<const half>(xh), std::span<half>(y));
  for (index_t i = 0; i < a.nrows; ++i) {
    double rowsum = 1e-3;
    for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) rowsum += std::abs(a.vals[k]);
    EXPECT_NEAR(static_cast<double>(y[i]), ref[i], rowsum * 2e-2);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SpmvProperty,
                         ::testing::Combine(::testing::Values(1, 5, 64, 500),
                                            ::testing::Values(1, 2, 3)));

TEST(Spmv, FusedResidualEqualsTwoStep) {
  gen::RandomOptions opt;
  opt.n = 200;
  const auto a = gen::random_sparse(opt);
  const auto x = random_vector<double>(200, 1, -1.0, 1.0);
  const auto b = random_vector<double>(200, 2, -1.0, 1.0);

  std::vector<double> ax(200), r1(200), r2(200);
  spmv(a, std::span<const double>(x), std::span<double>(ax));
  for (int i = 0; i < 200; ++i) r1[i] = b[i] - ax[i];
  residual(a, std::span<const double>(x), std::span<const double>(b), std::span<double>(r2));
  for (int i = 0; i < 200; ++i) EXPECT_NEAR(r2[i], r1[i], 1e-13);
}

TEST(Spmv, RelativeResidualZeroForExactSolve) {
  // Identity matrix: x = b gives relres 0.
  CsrMatrix<double> a(3, 3);
  a.row_ptr = {0, 1, 2, 3};
  a.col_idx = {0, 1, 2};
  a.vals = {1.0, 1.0, 1.0};
  std::vector<double> b = {1, 2, 3};
  EXPECT_DOUBLE_EQ(relative_residual(a, std::span<const double>(b), std::span<const double>(b)),
                   0.0);
  std::vector<double> x0(3, 0.0);
  EXPECT_DOUBLE_EQ(relative_residual(a, std::span<const double>(x0), std::span<const double>(b)),
                   1.0);
}

TEST(Spmv, EmptyRowsGiveZero) {
  CsrMatrix<double> a(3, 3);  // all rows empty
  std::vector<double> x = {1, 2, 3}, y(3, 7.0);
  spmv(a, std::span<const double>(x), std::span<double>(y));
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Spmv, AccumulatorOverrideImprovesFp16Sum) {
  // A row of 1000 entries of 0.25 with x = 1: fp16 accumulation loses
  // precision past 250 (spacing 0.25 at ~256... exactly representable here),
  // use 0.3 which rounds: fp32 accumulation must be closer to exact.
  const int m = 1000;
  CsrMatrix<half> a(1, m);
  a.row_ptr = {0, m};
  a.col_idx.resize(m);
  a.vals.assign(m, static_cast<half>(0.3f));
  for (int k = 0; k < m; ++k) a.col_idx[k] = k;
  std::vector<half> x(m, static_cast<half>(1.0f));

  std::vector<half> y16(1);
  spmv(a, std::span<const half>(x), std::span<half>(y16));
  std::vector<float> y32(1);
  spmv<half, half, float, float>(a, std::span<const half>(x), std::span<float>(y32));

  const double exact = m * static_cast<double>(round_to_half(0.3f));
  EXPECT_LT(std::abs(y32[0] - exact), std::abs(static_cast<double>(y16[0]) - exact) + 1e-3);
  EXPECT_NEAR(y32[0], exact, 0.5);
}

}  // namespace
}  // namespace nk
