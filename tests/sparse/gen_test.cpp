// Tests for the workload generators: HPCG/HPGMP stencils, Laplacians,
// convection-diffusion, and random matrices.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "sparse/gen/convdiff.hpp"
#include "sparse/gen/laplace.hpp"
#include "sparse/gen/random_matrix.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/stats.hpp"

namespace nk {
namespace {

TEST(Stencil, HpcgDimensionsAndNnz) {
  const auto a = gen::hpcg(3, 3, 3);  // 8×8×8
  EXPECT_EQ(a.nrows, 512);
  a.validate();
  EXPECT_TRUE(a.rows_sorted());
  // Interior point count: 6³ rows with full 27 entries.
  index_t full = 0;
  for (index_t i = 0; i < a.nrows; ++i)
    if (a.row_ptr[i + 1] - a.row_ptr[i] == 27) ++full;
  EXPECT_EQ(full, 6 * 6 * 6);
}

TEST(Stencil, HpcgValues) {
  const auto a = gen::hpcg(2, 2, 2);
  for (index_t i = 0; i < a.nrows; ++i)
    for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      if (a.col_idx[k] == i)
        EXPECT_DOUBLE_EQ(a.vals[k], 26.0);
      else
        EXPECT_DOUBLE_EQ(a.vals[k], -1.0);
    }
}

TEST(Stencil, HpcgMatchesPaperNnzPerRow) {
  // Table 2: hpcg_7_7_7 has nnz/n = 26.58.  The ratio depends only on the
  // grid size, which we verify at 2^5 where generation is cheap:
  // nnz/n grows toward 27 with size.
  const auto a = gen::hpcg(5, 5, 5);
  EXPECT_NEAR(a.nnz_per_row(), 26.0, 1.0);
  EXPECT_LT(a.nnz_per_row(), 27.0);
}

TEST(Stencil, HpgmpBetaAsymmetry) {
  const auto a = gen::hpgmp(2, 2, 2, 0.5);
  // A z-forward neighbour of an interior point carries −0.5; backward −1.5.
  const index_t nx = 4, ny = 4;
  const index_t p = (1 * ny + 1) * nx + 1;  // interior point (1,1,1)
  const index_t zf = (2 * ny + 1) * nx + 1;
  const index_t zb = (0 * ny + 1) * nx + 1;
  EXPECT_DOUBLE_EQ(a.at(p, zf), -0.5);
  EXPECT_DOUBLE_EQ(a.at(p, zb), -1.5);
  EXPECT_DOUBLE_EQ(a.at(p, p), 26.0);
  // x/y neighbours with dz = 0 stay at −1.
  EXPECT_DOUBLE_EQ(a.at(p, p + 1), -1.0);
}

TEST(Stencil, HpgmpNameHelper) {
  EXPECT_EQ(gen::stencil_name("hpgmp", 8, 7, 7), "hpgmp_8_7_7");
}

TEST(Stencil, RejectsBadSizes) {
  gen::StencilOptions o;
  o.nx = 0;
  EXPECT_THROW(gen::stencil27(o), std::invalid_argument);
}

TEST(Laplace, Structure2d) {
  const auto a = gen::laplace2d(4, 4);
  EXPECT_EQ(a.nrows, 16);
  const auto s = analyze(a);
  EXPECT_TRUE(s.numerically_symmetric);
  EXPECT_EQ(s.max_row_nnz, 5);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
}

TEST(Laplace, Structure3d) {
  const auto a = gen::laplace3d(3, 3, 3);
  EXPECT_EQ(a.nrows, 27);
  EXPECT_DOUBLE_EQ(a.at(13, 13), 6.0);  // center point
  EXPECT_EQ(a.row_ptr[14] - a.row_ptr[13], 7);
  EXPECT_TRUE(is_symmetric(a));
}

TEST(Laplace, AnisotropicWeighting) {
  const auto a = gen::anisotropic2d(4, 4, 0.1);
  EXPECT_NEAR(a.at(5, 5), 2.0 * 0.1 + 2.0, 1e-15);
  EXPECT_DOUBLE_EQ(a.at(5, 4), -0.1);  // x-neighbour gets eps
  EXPECT_DOUBLE_EQ(a.at(5, 1), -1.0);  // y-neighbour gets 1
}

TEST(ConvDiff, UpwindRowSumsNonNegative) {
  gen::ConvDiffOptions o;
  o.nx = o.ny = 8;
  o.nz = 4;
  o.vx = 100.0;
  const auto a = gen::convdiff(o);
  // Upwinding keeps the M-matrix property: diag ≥ |off-diag row sum|.
  for (index_t i = 0; i < a.nrows; ++i) {
    double diag = 0.0, off = 0.0;
    for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      if (a.col_idx[k] == i)
        diag = a.vals[k];
      else
        off += std::abs(a.vals[k]);
    }
    EXPECT_GE(diag, off - 1e-9 * diag);
  }
}

TEST(ConvDiff, TwoDHasNoZCoupling) {
  gen::ConvDiffOptions o;
  o.nx = 8;
  o.ny = 8;
  o.nz = 1;
  const auto a = gen::convdiff(o);
  EXPECT_LE(analyze(a).max_row_nnz, 5);
}

TEST(ConvDiff, VelocityBreaksSymmetry) {
  gen::ConvDiffOptions o;
  o.nx = o.ny = 6;
  o.nz = 1;
  o.vx = 10.0;
  EXPECT_FALSE(is_symmetric(gen::convdiff(o), 1e-12));
  o.vx = o.vy = 0.0;
  EXPECT_TRUE(is_symmetric(gen::convdiff(o), 1e-12));
}

TEST(RandomSparse, DominanceAndDiagonal) {
  const auto a = gen::random_sparse({.n = 300, .dominance = 1.3, .seed = 6});
  const auto s = analyze(a);
  EXPECT_TRUE(s.has_full_diagonal);
  EXPECT_GE(s.diag_dominance_min, 1.3 - 1e-9);
}

TEST(RandomSparse, SymmetricFlag) {
  gen::RandomOptions o;
  o.n = 150;
  o.symmetric = true;
  o.seed = 10;
  EXPECT_TRUE(is_symmetric(gen::random_sparse(o), 1e-13));
  o.symmetric = false;
  EXPECT_FALSE(is_symmetric(gen::random_sparse(o), 1e-13));
}

TEST(RandomSparse, Deterministic) {
  gen::RandomOptions o;
  o.n = 100;
  o.seed = 12;
  const auto a = gen::random_sparse(o);
  const auto b = gen::random_sparse(o);
  EXPECT_EQ(a.col_idx, b.col_idx);
  EXPECT_EQ(a.vals, b.vals);
}

TEST(RandomSpd, IsSpdByCholeskyConstruction) {
  const auto a = gen::random_spd(60, 0.05, 0.1, 3);
  EXPECT_TRUE(is_symmetric(a, 1e-12));
  // Gershgorin lower bound may be negative, but x'Ax > 0 for random probes.
  Xoshiro256 rng(4);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> x(60);
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);
    double q = 0.0;
    for (index_t i = 0; i < 60; ++i)
      for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k)
        q += x[i] * a.vals[k] * x[a.col_idx[k]];
    EXPECT_GT(q, 0.0);
  }
}

TEST(RandomCircuit, StructureIsIrregular) {
  const auto a = gen::random_circuit(500, 64, 1.1, 5);
  const auto s = analyze(a);
  EXPECT_TRUE(s.has_full_diagonal);
  EXPECT_GE(s.max_row_nnz, 8);      // hubs exist
  EXPECT_LE(s.nnz_per_row, 8.0);    // but most rows are small
  EXPECT_TRUE(s.structurally_symmetric);
  EXPECT_FALSE(s.numerically_symmetric);
}

TEST(Generators, RejectBadArguments) {
  EXPECT_THROW(gen::laplace2d(0, 4), std::invalid_argument);
  EXPECT_THROW(gen::anisotropic3d(-1, 2, 2, 1, 1, 1), std::invalid_argument);
  EXPECT_THROW(gen::random_sparse({.n = 0}), std::invalid_argument);
  EXPECT_THROW(gen::random_circuit(1, 4, 1.1, 0), std::invalid_argument);
  gen::ConvDiffOptions o;
  o.nx = 0;
  EXPECT_THROW(gen::convdiff(o), std::invalid_argument);
}

}  // namespace
}  // namespace nk
