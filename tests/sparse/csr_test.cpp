// Unit tests for the CSR container and its structural operations.
#include <gtest/gtest.h>

#include "sparse/coo_builder.hpp"
#include "sparse/csr.hpp"

namespace nk {
namespace {

CsrMatrix<double> small_matrix() {
  // [ 2 -1  0 ]
  // [-1  2 -1 ]
  // [ 0 -1  2 ]
  CooBuilder b(3, 3);
  b.add(0, 0, 2);
  b.add(0, 1, -1);
  b.add(1, 0, -1);
  b.add(1, 1, 2);
  b.add(1, 2, -1);
  b.add(2, 1, -1);
  b.add(2, 2, 2);
  return b.to_csr();
}

TEST(Csr, BasicAccessors) {
  auto a = small_matrix();
  EXPECT_EQ(a.nrows, 3);
  EXPECT_EQ(a.ncols, 3);
  EXPECT_EQ(a.nnz(), 7);
  EXPECT_NEAR(a.nnz_per_row(), 7.0 / 3.0, 1e-15);
  EXPECT_FALSE(a.empty());
  EXPECT_TRUE(CsrMatrix<double>{}.empty());
}

TEST(Csr, AtLooksUpStoredAndMissing) {
  auto a = small_matrix();
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 2), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0.0);  // not stored
}

TEST(Csr, Diagonal) {
  auto a = small_matrix();
  const auto d = a.diagonal();
  ASSERT_EQ(d.size(), 3u);
  for (double v : d) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(Csr, RowSpans) {
  auto a = small_matrix();
  const auto cols = a.row_cols(1);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], 0);
  EXPECT_EQ(cols[1], 1);
  EXPECT_EQ(cols[2], 2);
  const auto vals = a.row_vals(1);
  EXPECT_DOUBLE_EQ(vals[1], 2.0);
}

TEST(Csr, SortRowsAndCheck) {
  CsrMatrix<double> a(2, 2);
  a.row_ptr = {0, 2, 3};
  a.col_idx = {1, 0, 1};  // row 0 unsorted
  a.vals = {5.0, 7.0, 9.0};
  EXPECT_FALSE(a.rows_sorted());
  a.sort_rows();
  EXPECT_TRUE(a.rows_sorted());
  EXPECT_DOUBLE_EQ(a.at(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 5.0);
}

TEST(Csr, ValidateCatchesBrokenStructure) {
  auto a = small_matrix();
  EXPECT_NO_THROW(a.validate());
  auto bad = a;
  bad.col_idx[0] = 99;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  auto bad2 = a;
  bad2.row_ptr[1] = 100;
  EXPECT_THROW(bad2.validate(), std::invalid_argument);
  auto bad3 = a;
  bad3.row_ptr.pop_back();
  EXPECT_THROW(bad3.validate(), std::invalid_argument);
}

TEST(Csr, CastMatrixRoundsValues) {
  auto a = small_matrix();
  a.vals[0] = 1.0001;  // not representable in fp16
  const auto h = cast_matrix<half>(a);
  EXPECT_EQ(h.nnz(), a.nnz());
  EXPECT_EQ(h.col_idx, a.col_idx);
  EXPECT_FLOAT_EQ(static_cast<float>(h.vals[0]), 1.0f);
  const auto f = cast_matrix<float>(a);
  EXPECT_FLOAT_EQ(f.vals[0], 1.0001f);
}

TEST(Csr, TransposeInvolution) {
  auto a = small_matrix();
  a.vals[1] = -3.0;  // make it nonsymmetric
  const auto at = transpose(a);
  EXPECT_DOUBLE_EQ(at.at(1, 0), -3.0);
  EXPECT_DOUBLE_EQ(at.at(0, 1), -1.0);
  const auto att = transpose(at);
  EXPECT_EQ(att.row_ptr, a.row_ptr);
  EXPECT_EQ(att.col_idx, a.col_idx);
  for (std::size_t k = 0; k < a.vals.size(); ++k)
    EXPECT_DOUBLE_EQ(att.vals[k], a.vals[k]);
}

TEST(Csr, IsSymmetricDetects) {
  auto a = small_matrix();
  EXPECT_TRUE(is_symmetric(a));
  a.vals[1] = -3.0;
  EXPECT_FALSE(is_symmetric(a));
  // Rectangular is never symmetric.
  CsrMatrix<double> r(2, 3);
  EXPECT_FALSE(is_symmetric(r));
}

TEST(Csr, IsSymmetricWithTolerance) {
  auto a = small_matrix();
  a.vals[1] = -1.0 + 1e-12;
  EXPECT_FALSE(is_symmetric(a, 0.0));
  EXPECT_TRUE(is_symmetric(a, 1e-10));
}

}  // namespace
}  // namespace nk
