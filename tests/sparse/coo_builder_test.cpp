// Tests for the COO → CSR assembler.
#include <gtest/gtest.h>

#include "sparse/coo_builder.hpp"

namespace nk {
namespace {

TEST(CooBuilder, DuplicatesAreSummed) {
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.5);
  b.add(1, 1, -1.0);
  const auto a = b.to_csr();
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(a.at(1, 1), -1.0);
}

TEST(CooBuilder, RowsComeOutSorted) {
  CooBuilder b(2, 3);
  b.add(0, 2, 3.0);
  b.add(0, 0, 1.0);
  b.add(0, 1, 2.0);
  const auto a = b.to_csr();
  EXPECT_TRUE(a.rows_sorted());
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 3.0);
}

TEST(CooBuilder, OutOfRangeThrows) {
  CooBuilder b(2, 2);
  EXPECT_THROW(b.add(2, 0, 1.0), std::out_of_range);
  EXPECT_THROW(b.add(0, -1, 1.0), std::out_of_range);
  EXPECT_THROW(b.add(-1, 0, 1.0), std::out_of_range);
}

TEST(CooBuilder, AddSymAddsBothTriangles) {
  CooBuilder b(3, 3);
  b.add_sym(0, 1, 5.0);
  b.add_sym(2, 2, 7.0);  // diagonal only once
  const auto a = b.to_csr();
  EXPECT_DOUBLE_EQ(a.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 7.0);
  EXPECT_EQ(a.nnz(), 3);
}

TEST(CooBuilder, EmptyRowsHandled) {
  CooBuilder b(4, 4);
  b.add(0, 0, 1.0);
  b.add(3, 3, 1.0);
  const auto a = b.to_csr();
  EXPECT_EQ(a.row_ptr[1], 1);
  EXPECT_EQ(a.row_ptr[2], 1);  // row 1 empty
  EXPECT_EQ(a.row_ptr[3], 1);  // row 2 empty
  EXPECT_EQ(a.nnz(), 2);
  a.validate();
}

TEST(CooBuilder, EntriesCounterIncludesDuplicates) {
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, 1.0);
  EXPECT_EQ(b.entries(), 2u);
}

}  // namespace
}  // namespace nk
