// Tests for the preconditioned Chebyshev inner solver and the power
// iteration eigenvalue estimator.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "krylov/chebyshev.hpp"
#include "precond/jacobi.hpp"
#include "sparse/spmv.hpp"
#include "support/problems.hpp"

namespace nk {
namespace {

TEST(PowerIteration, EstimatesDominantEigenvalueOfDiagonal) {
  CsrMatrix<double> a(4, 4);
  a.row_ptr = {0, 1, 2, 3, 4};
  a.col_idx = {0, 1, 2, 3};
  a.vals = {1.0, 2.0, 3.0, 7.0};
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> ident(4);
  const double lmax = estimate_lambda_max(op, ident, 60);
  EXPECT_NEAR(lmax, 7.0, 0.05);
}

TEST(PowerIteration, ScaledLaplacianSpectrumBounded) {
  // Diagonally scaled Laplacian has eigenvalues in (0, 2).
  auto a = test::scaled_laplace2d(16, 16);
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> ident(a.nrows);
  const double lmax = estimate_lambda_max(op, ident, 40);
  EXPECT_GT(lmax, 1.0);
  EXPECT_LT(lmax, 2.01);
}

TEST(Chebyshev, ReducesResidualEachInvocation) {
  auto a = test::scaled_laplace2d(12, 12);
  CsrOperator<double, double> op(a);
  JacobiPrecond jac(a);
  auto m = jac.make_apply_fp64(Prec::FP64);
  ChebyshevSolver<double> cheb(op, *m, {.m = 6});
  const auto v = random_vector<double>(a.nrows, 1, 0.0, 1.0);
  std::vector<double> z(a.nrows), r(a.nrows);
  cheb.apply(std::span<const double>(v), std::span<double>(z));
  residual(a, std::span<const double>(z), std::span<const double>(v), std::span<double>(r));
  EXPECT_LT(blas::nrm2(std::span<const double>(r)),
            0.7 * blas::nrm2(std::span<const double>(v)));
}

TEST(Chebyshev, MoreIterationsReduceMore) {
  auto a = test::scaled_laplace2d(12, 12);
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> ident(a.nrows);
  const auto v = random_vector<double>(a.nrows, 2, 0.0, 1.0);
  double prev = 1e300;
  for (int m : {2, 4, 8, 16}) {
    ChebyshevSolver<double> cheb(op, ident, {.m = m, .eig_ratio = 50.0});
    std::vector<double> z(a.nrows), r(a.nrows);
    cheb.apply(std::span<const double>(v), std::span<double>(z));
    residual(a, std::span<const double>(z), std::span<const double>(v), std::span<double>(r));
    const double rn = blas::nrm2(std::span<const double>(r));
    EXPECT_LT(rn, prev) << "m=" << m;
    prev = rn;
  }
}

TEST(Chebyshev, EllipseParametersFromConfig) {
  auto a = test::laplace2d(6, 6);
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> ident(a.nrows);
  ChebyshevSolver<double> cheb(op, ident, {.m = 2, .lambda_max = 10.0, .eig_ratio = 10.0,
                                           .safety = 1.0});
  EXPECT_NEAR(cheb.theta(), 0.5 * (10.0 + 1.0), 1e-12);
  EXPECT_NEAR(cheb.delta(), 0.5 * (10.0 - 1.0), 1e-12);
}

TEST(Chebyshev, WorksOnFloatVectorsOverCastMatrix) {
  // The mixed-precision configuration a nested level would use: fp32
  // vectors over an fp32 copy of the matrix.
  auto a = test::scaled_laplace2d(12, 12);
  auto a32 = cast_matrix<float>(a);
  CsrOperator<float, float> op32(a32);
  JacobiPrecond jac(a);
  auto m32 = jac.make_apply_fp32(Prec::FP32);
  ChebyshevSolver<float> cheb(op32, *m32, {.m = 4});
  const auto vd = random_vector<double>(a.nrows, 3, 0.0, 1.0);
  const auto v = converted<float>(vd);
  std::vector<float> z(v.size()), r(v.size());
  cheb.apply(std::span<const float>(v), std::span<float>(z));
  residual(a32, std::span<const float>(z), std::span<const float>(v), std::span<float>(r));
  EXPECT_LT(blas::nrm2(std::span<const float>(r)), blas::nrm2(std::span<const float>(v)));
}

}  // namespace
}  // namespace nk
