// Tests for preconditioned CG.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "krylov/cg.hpp"
#include "precond/block_jacobi_ic0.hpp"
#include "precond/jacobi.hpp"
#include "sparse/gen/laplace.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/scaling.hpp"
#include "sparse/spmv.hpp"

namespace nk {
namespace {

TEST(Cg, SolvesLaplacianWithJacobi) {
  auto a = gen::laplace2d(16, 16);
  diagonal_scale_symmetric(a);
  CsrOperator<double, double> op(a);
  JacobiPrecond jac(a);
  auto m = jac.make_apply_fp64(Prec::FP64);
  CgSolver<double> cg(op, *m, {.rtol = 1e-10, .max_iters = 2000});
  const auto b = random_vector<double>(a.nrows, 1, 0.0, 1.0);
  std::vector<double> x(a.nrows, 0.0);
  const auto res = cg.solve(b, std::span<double>(x));
  EXPECT_TRUE(res.converged);
  EXPECT_LT(relative_residual(a, std::span<const double>(x), std::span<const double>(b)), 1e-9);
}

TEST(Cg, Ic0PreconditioningReducesIterations) {
  auto a = gen::hpcg(3, 3, 3);
  diagonal_scale_symmetric(a);
  CsrOperator<double, double> op(a);
  const auto b = random_vector<double>(a.nrows, 2, 0.0, 1.0);

  IdentityPrecond<double> ident(a.nrows);
  CgSolver<double> plain(op, ident, {.rtol = 1e-8, .max_iters = 5000});
  std::vector<double> x1(a.nrows, 0.0);
  const auto r1 = plain.solve(b, std::span<double>(x1));

  BlockJacobiIc0 ic(a, {.nblocks = 2, .alpha = 1.0});
  auto m = ic.make_apply_fp64(Prec::FP64);
  CgSolver<double> pcg(op, *m, {.rtol = 1e-8, .max_iters = 5000});
  std::vector<double> x2(a.nrows, 0.0);
  const auto r2 = pcg.solve(b, std::span<double>(x2));

  EXPECT_TRUE(r1.converged);
  EXPECT_TRUE(r2.converged);
  EXPECT_LT(r2.iterations, r1.iterations);
}

TEST(Cg, HistoryRecordsEveryIteration) {
  auto a = gen::laplace2d(8, 8);
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> m(a.nrows);
  CgSolver<double> cg(op, m, {.rtol = 1e-8, .max_iters = 500, .record_history = true});
  const auto b = random_vector<double>(a.nrows, 3, 0.0, 1.0);
  std::vector<double> x(a.nrows, 0.0);
  const auto res = cg.solve(b, std::span<double>(x));
  EXPECT_TRUE(res.converged);
  // history[0] is the initial relres 1.0; one entry per iteration after.
  ASSERT_EQ(static_cast<int>(res.history.size()), res.iterations + 1);
  EXPECT_DOUBLE_EQ(res.history.front(), 1.0);
  EXPECT_LE(res.history.back(), 1e-8);
}

TEST(Cg, IterationCapReportsFailure) {
  auto a = gen::laplace2d(20, 20);
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> m(a.nrows);
  CgSolver<double> cg(op, m, {.rtol = 1e-14, .max_iters = 3});
  const auto b = random_vector<double>(a.nrows, 4, 0.0, 1.0);
  std::vector<double> x(a.nrows, 0.0);
  const auto res = cg.solve(b, std::span<double>(x));
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 3);
}

TEST(Cg, ZeroRhsConvergesImmediately) {
  auto a = gen::laplace2d(4, 4);
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> m(a.nrows);
  CgSolver<double> cg(op, m, {});
  std::vector<double> b(a.nrows, 0.0), x(a.nrows, 0.0);
  const auto res = cg.solve(std::span<const double>(b), std::span<double>(x));
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

TEST(Cg, WarmStartFromGoodGuess) {
  auto a = gen::laplace2d(10, 10);
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> m(a.nrows);
  const auto xs = random_vector<double>(a.nrows, 5, -1.0, 1.0);
  std::vector<double> b(a.nrows);
  spmv(a, std::span<const double>(xs), std::span<double>(b));

  CgSolver<double> cg(op, m, {.rtol = 1e-10, .max_iters = 1000});
  std::vector<double> cold(a.nrows, 0.0);
  const auto rc = cg.solve(std::span<const double>(b), std::span<double>(cold));
  std::vector<double> warm = xs;  // exact solution as guess
  const auto rw = cg.solve(std::span<const double>(b), std::span<double>(warm));
  EXPECT_TRUE(rw.converged);
  EXPECT_LT(rw.iterations, rc.iterations);
}

TEST(Cg, BreakdownOnIndefiniteMatrixDetected) {
  // CG on an indefinite matrix: (p, Ap) can hit 0/negative — the solver
  // must exit without crashing (converged = false or early exit).
  CsrMatrix<double> a(2, 2);
  a.row_ptr = {0, 1, 2};
  a.col_idx = {0, 1};
  a.vals = {1.0, -1.0};
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> m(2);
  CgSolver<double> cg(op, m, {.rtol = 1e-12, .max_iters = 50});
  std::vector<double> b = {1.0, 1.0}, x(2, 0.0);
  const auto res = cg.solve(std::span<const double>(b), std::span<double>(x));
  // Diagonal ±1: CG actually solves it in 2 steps or breaks down — either
  // way, no NaNs in x.
  for (double v : x) EXPECT_TRUE(std::isfinite(v));
  (void)res;
}

TEST(Cg, Fp16PreconditionerStorageStillConverges) {
  // The paper's fp16-CG: fp64 CG + fp16-stored IC(0).
  auto a = gen::hpcg(3, 3, 3);
  diagonal_scale_symmetric(a);
  CsrOperator<double, double> op(a);
  BlockJacobiIc0 ic(a, {.nblocks = 2, .alpha = 1.0});
  auto m16 = ic.make_apply_fp64(Prec::FP16);
  CgSolver<double> cg(op, *m16, {.rtol = 1e-8, .max_iters = 5000});
  const auto b = random_vector<double>(a.nrows, 7, 0.0, 1.0);
  std::vector<double> x(a.nrows, 0.0);
  const auto res = cg.solve(b, std::span<double>(x));
  EXPECT_TRUE(res.converged);
  EXPECT_LT(relative_residual(a, std::span<const double>(x), std::span<const double>(b)),
            2e-8);
}

}  // namespace
}  // namespace nk
