// Tests for preconditioned CG.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "krylov/cg.hpp"
#include "precond/block_jacobi_ic0.hpp"
#include "precond/jacobi.hpp"
#include "sparse/spmv.hpp"
#include "support/problems.hpp"
#include "support/solver_checks.hpp"

namespace nk {
namespace {

TEST(Cg, SolvesLaplacianWithJacobi) {
  auto p = test::make_problem(test::scaled_laplace2d(16, 16), 1);
  CsrOperator<double, double> op(p.a);
  JacobiPrecond jac(p.a);
  auto m = jac.make_apply_fp64(Prec::FP64);
  CgSolver<double> cg(op, *m, {.rtol = 1e-10, .max_iters = 2000});
  const auto res = cg.solve(p.b, std::span<double>(p.x));
  EXPECT_TRUE(test::converged(res));
  EXPECT_TRUE(test::residual_below(p.a, p.x, p.b, 1e-9));
}

TEST(Cg, Ic0PreconditioningReducesIterations) {
  auto p = test::make_problem(test::scaled_hpcg(3), 2);
  CsrOperator<double, double> op(p.a);

  IdentityPrecond<double> ident(p.a.nrows);
  CgSolver<double> plain(op, ident, {.rtol = 1e-8, .max_iters = 5000});
  std::vector<double> x1(p.a.nrows, 0.0);
  const auto r1 = plain.solve(p.b, std::span<double>(x1));

  BlockJacobiIc0 ic(p.a, {.nblocks = 2, .alpha = 1.0});
  auto m = ic.make_apply_fp64(Prec::FP64);
  CgSolver<double> pcg(op, *m, {.rtol = 1e-8, .max_iters = 5000});
  std::vector<double> x2(p.a.nrows, 0.0);
  const auto r2 = pcg.solve(p.b, std::span<double>(x2));

  EXPECT_TRUE(test::converged(r1));
  EXPECT_TRUE(test::converged(r2));
  EXPECT_LT(r2.iterations, r1.iterations);
}

TEST(Cg, HistoryRecordsEveryIteration) {
  auto p = test::make_problem(test::laplace2d(8, 8), 3);
  CsrOperator<double, double> op(p.a);
  IdentityPrecond<double> m(p.a.nrows);
  CgSolver<double> cg(op, m, {.rtol = 1e-8, .max_iters = 500, .record_history = true});
  const auto res = cg.solve(p.b, std::span<double>(p.x));
  EXPECT_TRUE(test::converged(res));
  // history[0] is the initial relres 1.0; one entry per iteration after.
  ASSERT_EQ(static_cast<int>(res.history.size()), res.iterations + 1);
  EXPECT_DOUBLE_EQ(res.history.front(), 1.0);
  EXPECT_LE(res.history.back(), 1e-8);
}

TEST(Cg, IterationCapReportsFailure) {
  auto p = test::make_problem(test::laplace2d(20, 20), 4);
  CsrOperator<double, double> op(p.a);
  IdentityPrecond<double> m(p.a.nrows);
  CgSolver<double> cg(op, m, {.rtol = 1e-14, .max_iters = 3});
  const auto res = cg.solve(p.b, std::span<double>(p.x));
  EXPECT_TRUE(test::not_converged(res));
  EXPECT_EQ(res.iterations, 3);
}

TEST(Cg, ZeroRhsConvergesImmediately) {
  const auto a = test::laplace2d(4, 4);
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> m(a.nrows);
  CgSolver<double> cg(op, m, {});
  std::vector<double> b(a.nrows, 0.0), x(a.nrows, 0.0);
  const auto res = cg.solve(std::span<const double>(b), std::span<double>(x));
  EXPECT_TRUE(test::converged(res));
  EXPECT_EQ(res.iterations, 0);
}

TEST(Cg, WarmStartFromGoodGuess) {
  const auto a = test::laplace2d(10, 10);
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> m(a.nrows);
  const auto xs = random_vector<double>(a.nrows, 5, -1.0, 1.0);
  std::vector<double> b(a.nrows);
  spmv(a, std::span<const double>(xs), std::span<double>(b));

  CgSolver<double> cg(op, m, {.rtol = 1e-10, .max_iters = 1000});
  std::vector<double> cold(a.nrows, 0.0);
  const auto rc = cg.solve(std::span<const double>(b), std::span<double>(cold));
  std::vector<double> warm = xs;  // exact solution as guess
  const auto rw = cg.solve(std::span<const double>(b), std::span<double>(warm));
  EXPECT_TRUE(test::converged(rw));
  EXPECT_LT(rw.iterations, rc.iterations);
}

TEST(Cg, BreakdownOnIndefiniteMatrixDetected) {
  // CG on an indefinite matrix: (p, Ap) can hit 0/negative — the solver
  // must exit without crashing (converged = false or early exit).
  const auto a = test::indefinite_diag2();
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> m(2);
  CgSolver<double> cg(op, m, {.rtol = 1e-12, .max_iters = 50});
  std::vector<double> b = {1.0, 1.0}, x(2, 0.0);
  const auto res = cg.solve(std::span<const double>(b), std::span<double>(x));
  // Diagonal ±1: CG actually solves it in 2 steps or breaks down — either
  // way, no NaNs in x.
  EXPECT_TRUE(test::all_finite(x));
  (void)res;
}

TEST(Cg, Fp16PreconditionerStorageStillConverges) {
  // The paper's fp16-CG: fp64 CG + fp16-stored IC(0).
  auto p = test::make_problem(test::scaled_hpcg(3), 7);
  CsrOperator<double, double> op(p.a);
  BlockJacobiIc0 ic(p.a, {.nblocks = 2, .alpha = 1.0});
  auto m16 = ic.make_apply_fp64(Prec::FP16);
  CgSolver<double> cg(op, *m16, {.rtol = 1e-8, .max_iters = 5000});
  const auto res = cg.solve(p.b, std::span<double>(p.x));
  EXPECT_TRUE(test::converged(res));
  EXPECT_TRUE(test::residual_below(p.a, p.x, p.b, 2e-8));
}

}  // namespace
}  // namespace nk
