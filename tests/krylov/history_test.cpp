// Tests for the SolveResult summary line and the geometric-mean helper.
#include <gtest/gtest.h>

#include <cmath>

#include "krylov/history.hpp"

namespace nk {
namespace {

TEST(Summarize, ConvergedRunMentionsEveryHeadlineMetric) {
  SolveResult r;
  r.solver = "fp16-F3R";
  r.mark_converged();
  r.iterations = 12;
  r.precond_invocations = 768;
  r.seconds = 0.42;
  r.final_relres = 6.3e-9;
  const std::string s = summarize(r);
  EXPECT_NE(s.find("fp16-F3R"), std::string::npos);
  EXPECT_NE(s.find("converged"), std::string::npos);
  EXPECT_NE(s.find("12 outer its"), std::string::npos);
  EXPECT_NE(s.find("768 M-applies"), std::string::npos);
  EXPECT_NE(s.find("0.42 s"), std::string::npos);
  EXPECT_NE(s.find("6.30e-09"), std::string::npos);
}

TEST(Summarize, FailedRunNamesTheTerminalCause) {
  SolveResult r;
  r.solver = "fp64-CG";
  r.iterations = 19200;  // default status: budget exhausted
  const std::string s = summarize(r);
  EXPECT_NE(s.find("max_iters"), std::string::npos);
  EXPECT_EQ(s.find("converged"), std::string::npos);
}

TEST(Summarize, FailureSiteAndAttemptChainAreRendered) {
  SolveResult r;
  r.solver = "fp64-CG";
  r.fail(SolveStatus::kNonFinite, "pivot");
  r.attempts = {"fp16-CG: non_finite (rnorm)", "fp32-CG: breakdown (pivot)"};
  const std::string s = summarize(r);
  EXPECT_NE(s.find("non_finite (pivot)"), std::string::npos);
  EXPECT_NE(s.find("[after {fp16-CG: non_finite (rnorm)} {fp32-CG: breakdown (pivot)}]"),
            std::string::npos);
}

TEST(Status, NamesAreStableAndExhaustive) {
  EXPECT_STREQ(status_name(SolveStatus::kConverged), "converged");
  EXPECT_STREQ(status_name(SolveStatus::kMaxIters), "max_iters");
  EXPECT_STREQ(status_name(SolveStatus::kBreakdown), "breakdown");
  EXPECT_STREQ(status_name(SolveStatus::kDiverged), "diverged");
  EXPECT_STREQ(status_name(SolveStatus::kNonFinite), "non_finite");
  EXPECT_STREQ(status_name(SolveStatus::kStagnated), "stagnated");
  EXPECT_STREQ(status_name(SolveStatus::kInvalidInput), "invalid_input");
}

TEST(Status, FailAndMarkConvergedKeepTheLegacyFlagInSync) {
  SolveResult r;
  EXPECT_EQ(r.status, SolveStatus::kMaxIters);  // the pre-taxonomy default
  r.mark_converged();
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.status, SolveStatus::kConverged);
  EXPECT_TRUE(r.failure.empty());
  r.fail(SolveStatus::kBreakdown, "rho");
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.status, SolveStatus::kBreakdown);
  EXPECT_EQ(r.failure, "rho");
  r.mark_converged();  // recovery clears the site
  EXPECT_TRUE(r.failure.empty());
}

TEST(Geomean, EmptyInputIsZero) { EXPECT_DOUBLE_EQ(geomean({}), 0.0); }

TEST(Geomean, SingletonIsIdentity) { EXPECT_DOUBLE_EQ(geomean({2.5}), 2.5); }

TEST(Geomean, KnownValues) {
  // geomean(2, 8) = 4; geomean(1, 10, 100) = 10.
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-12);
}

TEST(Geomean, InvariantUnderPermutation) {
  EXPECT_DOUBLE_EQ(geomean({3.0, 1.5, 0.5}), geomean({0.5, 3.0, 1.5}));
}

TEST(Geomean, MatchesLogDefinitionForSpeedupRatios) {
  const std::vector<double> xs = {1.43, 0.97, 2.10, 1.08};
  double s = 0.0;
  for (double x : xs) s += std::log(x);
  EXPECT_NEAR(geomean(xs), std::exp(s / 4.0), 1e-15);
}

}  // namespace
}  // namespace nk
