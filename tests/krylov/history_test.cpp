// Tests for the SolveResult summary line and the geometric-mean helper.
#include <gtest/gtest.h>

#include <cmath>

#include "krylov/history.hpp"

namespace nk {
namespace {

TEST(Summarize, ConvergedRunMentionsEveryHeadlineMetric) {
  SolveResult r;
  r.solver = "fp16-F3R";
  r.converged = true;
  r.iterations = 12;
  r.precond_invocations = 768;
  r.seconds = 0.42;
  r.final_relres = 6.3e-9;
  const std::string s = summarize(r);
  EXPECT_NE(s.find("fp16-F3R"), std::string::npos);
  EXPECT_NE(s.find("converged"), std::string::npos);
  EXPECT_NE(s.find("12 outer its"), std::string::npos);
  EXPECT_NE(s.find("768 M-applies"), std::string::npos);
  EXPECT_NE(s.find("0.42 s"), std::string::npos);
  EXPECT_NE(s.find("6.30e-09"), std::string::npos);
}

TEST(Summarize, FailedRunSaysFailed) {
  SolveResult r;
  r.solver = "fp64-CG";
  r.converged = false;
  r.iterations = 19200;
  const std::string s = summarize(r);
  EXPECT_NE(s.find("FAILED"), std::string::npos);
  EXPECT_EQ(s.find("converged"), std::string::npos);
}

TEST(Geomean, EmptyInputIsZero) { EXPECT_DOUBLE_EQ(geomean({}), 0.0); }

TEST(Geomean, SingletonIsIdentity) { EXPECT_DOUBLE_EQ(geomean({2.5}), 2.5); }

TEST(Geomean, KnownValues) {
  // geomean(2, 8) = 4; geomean(1, 10, 100) = 10.
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-12);
}

TEST(Geomean, InvariantUnderPermutation) {
  EXPECT_DOUBLE_EQ(geomean({3.0, 1.5, 0.5}), geomean({0.5, 3.0, 1.5}));
}

TEST(Geomean, MatchesLogDefinitionForSpeedupRatios) {
  const std::vector<double> xs = {1.43, 0.97, 2.10, 1.08};
  double s = 0.0;
  for (double x : xs) s += std::log(x);
  EXPECT_NEAR(geomean(xs), std::exp(s / 4.0), 1e-15);
}

}  // namespace
}  // namespace nk
