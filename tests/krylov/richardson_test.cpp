// Tests for Richardson with adaptive weight updating (Algorithm 1).
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "krylov/richardson.hpp"
#include "precond/jacobi.hpp"
#include "sparse/spmv.hpp"
#include "support/problems.hpp"

namespace nk {
namespace {

struct Fixture {
  CsrMatrix<double> a;
  std::unique_ptr<CsrOperator<double, double>> op;
  std::unique_ptr<JacobiPrecond> jac;
  std::unique_ptr<Preconditioner<double>> m;

  explicit Fixture(index_t nx = 10) {
    a = test::scaled_laplace2d(nx, nx);
    op = std::make_unique<CsrOperator<double, double>>(a);
    jac = std::make_unique<JacobiPrecond>(a);
    m = jac->make_apply_fp64(Prec::FP64);
  }
};

TEST(Richardson, WeightsInitializeToOne) {
  Fixture f;
  RichardsonSolver<double> r(*f.op, *f.m, {.m = 3, .cycle = 64});
  ASSERT_EQ(r.weights().size(), 3u);
  for (float w : r.weights()) EXPECT_FLOAT_EQ(w, 1.0f);
  EXPECT_EQ(r.invocations(), 0u);
}

TEST(Richardson, TwoIterationsReduceResidual) {
  Fixture f;
  RichardsonSolver<double> r(*f.op, *f.m, {.m = 2, .cycle = 64});
  const auto v = random_vector<double>(f.a.nrows, 1, 0.0, 1.0);
  std::vector<double> z(f.a.nrows);
  r.apply(std::span<const double>(v), std::span<double>(z));
  std::vector<double> res(f.a.nrows);
  residual(f.a, std::span<const double>(z), std::span<const double>(v), std::span<double>(res));
  EXPECT_LT(blas::nrm2(std::span<const double>(res)), blas::nrm2(std::span<const double>(v)));
}

TEST(Richardson, UpdateHappensExactlyEveryCycleCalls) {
  Fixture f;
  const int c = 4;
  RichardsonSolver<double> r(*f.op, *f.m, {.m = 2, .cycle = c});
  const auto v = random_vector<double>(f.a.nrows, 2, 0.0, 1.0);
  std::vector<double> z(f.a.nrows);
  for (int call = 1; call <= 2 * c; ++call) {
    r.apply(std::span<const double>(v), std::span<double>(z));
    EXPECT_EQ(r.weight_updates(), static_cast<std::uint64_t>(call / c) * 2)
        << "after call " << call;  // 2 iterations per call → 2 ω'-updates
  }
  // Weights moved away from 1 after the first update.
  for (float w : r.weights()) EXPECT_NE(w, 1.0f);
}

TEST(Richardson, CumulativeAverageFormula) {
  // With cycle 1 every call updates: after the first update
  // ω = (1·1 + ω′)/2; verify against a manually computed ω′.
  Fixture f;
  RichardsonSolver<double> r(*f.op, *f.m, {.m = 1, .cycle = 1});
  const auto v = random_vector<double>(f.a.nrows, 3, 0.0, 1.0);

  // Manual ω′ for the first step: (v, AMv)/(AMv, AMv).
  std::vector<double> mv(f.a.nrows), amv(f.a.nrows);
  f.m->apply(std::span<const double>(v), std::span<double>(mv));
  spmv(f.a, std::span<const double>(mv), std::span<double>(amv));
  const double num = blas::dot(std::span<const double>(v), std::span<const double>(amv));
  const double den = blas::dot(std::span<const double>(amv), std::span<const double>(amv));
  const float wp = static_cast<float>(num / den);

  std::vector<double> z(f.a.nrows);
  r.apply(std::span<const double>(v), std::span<double>(z));
  // l = cntr/c = 1 → ω = (1·ω₀ + ω′)/2 with ω₀ = 1.
  EXPECT_NEAR(r.weights()[0], (1.0f + wp) / 2.0f, 1e-4f);
}

TEST(Richardson, LocallyOptimalWeightMinimizesResidual) {
  // On the update step the solver uses ω′ itself; the resulting residual
  // must be no larger than with any fixed ω we try.
  Fixture f;
  const auto v = random_vector<double>(f.a.nrows, 4, 0.0, 1.0);

  RichardsonSolver<double> adaptive(*f.op, *f.m, {.m = 1, .cycle = 1});
  std::vector<double> za(f.a.nrows);
  adaptive.apply(std::span<const double>(v), std::span<double>(za));
  std::vector<double> ra(f.a.nrows);
  residual(f.a, std::span<const double>(za), std::span<const double>(v), std::span<double>(ra));
  const double best = blas::nrm2(std::span<const double>(ra));

  for (float w : {0.5f, 0.8f, 1.0f, 1.2f}) {
    RichardsonSolver<double> fixed(*f.op, *f.m,
                                   {.m = 1, .cycle = 64, .adaptive = false, .fixed_weight = w});
    std::vector<double> zf(f.a.nrows);
    fixed.apply(std::span<const double>(v), std::span<double>(zf));
    std::vector<double> rf(f.a.nrows);
    residual(f.a, std::span<const double>(zf), std::span<const double>(v),
             std::span<double>(rf));
    EXPECT_LE(best, blas::nrm2(std::span<const double>(rf)) * (1.0 + 1e-5));
  }
}

TEST(Richardson, FixedWeightModeUsesExactlyThatWeight) {
  Fixture f;
  const float w = 0.7f;
  RichardsonSolver<double> r(*f.op, *f.m,
                             {.m = 1, .cycle = 64, .adaptive = false, .fixed_weight = w});
  const auto v = random_vector<double>(f.a.nrows, 5, 0.0, 1.0);
  std::vector<double> z(f.a.nrows), mv(f.a.nrows);
  r.apply(std::span<const double>(v), std::span<double>(z));
  f.m->apply(std::span<const double>(v), std::span<double>(mv));
  for (index_t i = 0; i < f.a.nrows; ++i) EXPECT_NEAR(z[i], w * mv[i], 1e-12);
}

TEST(Richardson, ResetStateRestoresInitialWeights) {
  Fixture f;
  RichardsonSolver<double> r(*f.op, *f.m, {.m = 2, .cycle = 1});
  const auto v = random_vector<double>(f.a.nrows, 6, 0.0, 1.0);
  std::vector<double> z(f.a.nrows);
  r.apply(std::span<const double>(v), std::span<double>(z));
  EXPECT_NE(r.weights()[0], 1.0f);
  r.reset_state();
  EXPECT_FLOAT_EQ(r.weights()[0], 1.0f);
  EXPECT_EQ(r.invocations(), 0u);
  EXPECT_EQ(r.weight_updates(), 0u);
}

TEST(Richardson, StatePersistsAcrossInvocations) {
  // Algorithm 1's cntr and ω are global across calls: two solvers fed the
  // same sequence have identical weights, and the weights depend on all
  // previous calls (not just the last).
  Fixture f;
  RichardsonSolver<double> r1(*f.op, *f.m, {.m = 2, .cycle = 2});
  RichardsonSolver<double> r2(*f.op, *f.m, {.m = 2, .cycle = 2});
  std::vector<double> z(f.a.nrows);
  for (std::uint64_t s = 1; s <= 6; ++s) {
    const auto v = random_vector<double>(f.a.nrows, s, 0.0, 1.0);
    r1.apply(std::span<const double>(v), std::span<double>(z));
    r2.apply(std::span<const double>(v), std::span<double>(z));
  }
  ASSERT_EQ(r1.weights().size(), r2.weights().size());
  for (std::size_t k = 0; k < r1.weights().size(); ++k)
    EXPECT_FLOAT_EQ(r1.weights()[k], r2.weights()[k]);
  EXPECT_EQ(r1.invocations(), 6u);
}

TEST(Richardson, Fp16PathWithSeparateFp32Operator) {
  // The fp16-F3R innermost configuration: fp16 matrix + vectors, fp32 ω'.
  auto a = test::scaled_laplace2d(12, 12);
  const auto a16 = cast_matrix<half>(a);
  CsrOperator<half, half> op16(a16);
  CsrOperator<half, float> op32(a16);
  JacobiPrecond jac(a);
  auto m16 = jac.make_apply_fp16(Prec::FP16);

  RichardsonSolver<half> r(op16, *m16, {.m = 2, .cycle = 1}, &op32);
  const auto vd = random_vector<double>(a.nrows, 8, 0.0, 1.0);
  const auto v = converted<half>(vd);
  std::vector<half> z(a.nrows);
  r.apply(std::span<const half>(v), std::span<half>(z));
  EXPECT_EQ(blas::count_nonfinite(std::span<const half>(z)), 0u);
  EXPECT_GT(r.weight_updates(), 0u);
  // The adapted weight should be positive and O(1) for this SPD problem.
  EXPECT_GT(r.weights()[0], 0.1f);
  EXPECT_LT(r.weights()[0], 3.0f);

  // And the iteration reduces the residual measured in fp64.
  std::vector<double> zd(a.nrows), res(a.nrows);
  blas::convert(std::span<const half>(z), std::span<double>(zd));
  residual(a, std::span<const double>(zd), std::span<const double>(vd), std::span<double>(res));
  EXPECT_LT(blas::nrm2(std::span<const double>(res)),
            blas::nrm2(std::span<const double>(vd)));
}

TEST(Richardson, MatchesManualRecurrenceNonUpdateStep) {
  // On non-update calls, z after m=2 steps must equal the hand-rolled
  // recurrence with ω = 1.
  Fixture f;
  RichardsonSolver<double> r(*f.op, *f.m, {.m = 2, .cycle = 1000});
  const auto v = random_vector<double>(f.a.nrows, 9, 0.0, 1.0);
  std::vector<double> z(f.a.nrows);
  r.apply(std::span<const double>(v), std::span<double>(z));

  const index_t n = f.a.nrows;
  std::vector<double> zi(n, 0.0), mr(n), rr(n);
  f.m->apply(std::span<const double>(v), std::span<double>(mr));
  for (index_t i = 0; i < n; ++i) zi[i] += mr[i];  // step 1, r0 = v
  residual(f.a, std::span<const double>(zi), std::span<const double>(v), std::span<double>(rr));
  f.m->apply(std::span<const double>(rr), std::span<double>(mr));
  for (index_t i = 0; i < n; ++i) zi[i] += mr[i];  // step 2
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(z[i], zi[i], 1e-13);
}

}  // namespace
}  // namespace nk
