// Tests for the flexible GMRES building block.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "krylov/fgmres.hpp"
#include "precond/jacobi.hpp"
#include "sparse/spmv.hpp"
#include "support/problems.hpp"

namespace nk {
namespace {

TEST(Fgmres, SolvesIdentityInOneIteration) {
  CsrMatrix<double> a(5, 5);
  a.row_ptr = {0, 1, 2, 3, 4, 5};
  a.col_idx = {0, 1, 2, 3, 4};
  a.vals.assign(5, 1.0);
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> m(5);
  FgmresSolver<double> s(op, m, {.m = 5});
  const auto b = random_vector<double>(5, 1, 1.0, 2.0);
  std::vector<double> x(5, 0.0);
  const auto st = s.run(b, std::span<double>(x), 1e-12 * blas::nrm2(std::span<const double>(b)),
                        false);
  EXPECT_LE(st.iters, 2);
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(x[i], b[i], 1e-10);
}

TEST(Fgmres, SolvesSpdSystemToTolerance) {
  auto a = test::scaled_laplace2d(12, 12);
  CsrOperator<double, double> op(a);
  JacobiPrecond jac(a);
  auto m = jac.make_apply_fp64(Prec::FP64);
  FgmresSolver<double> s(op, *m, {.m = 200});
  const auto b = random_vector<double>(a.nrows, 2, 0.0, 1.0);
  std::vector<double> x(a.nrows, 0.0);
  const double bn = blas::nrm2(std::span<const double>(b));
  const auto st = s.run(b, std::span<double>(x), 1e-10 * bn, false);
  EXPECT_TRUE(st.reached_target);
  EXPECT_LT(relative_residual(a, std::span<const double>(x), std::span<const double>(b)), 1e-9);
}

TEST(Fgmres, SolvesNonsymmetricSystem) {
  auto a = test::scaled_convdiff2d(10, 20.0);
  CsrOperator<double, double> op(a);
  JacobiPrecond jac(a);
  auto m = jac.make_apply_fp64(Prec::FP64);
  FgmresSolver<double> s(op, *m, {.m = 150});
  const auto b = random_vector<double>(a.nrows, 3, 0.0, 1.0);
  std::vector<double> x(a.nrows, 0.0);
  const auto st =
      s.run(b, std::span<double>(x), 1e-9 * blas::nrm2(std::span<const double>(b)), false);
  EXPECT_TRUE(st.reached_target);
}

TEST(Fgmres, GivensEstimateTracksTrueResidual) {
  auto a = test::scaled_laplace2d(10, 10);
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> m(a.nrows);
  FgmresSolver<double> s(op, m, {.m = 40});
  const auto b = random_vector<double>(a.nrows, 4, 0.0, 1.0);
  std::vector<double> x(a.nrows, 0.0);
  const auto st = s.run(b, std::span<double>(x), 0.0, false);  // run all 40
  const double true_res = relative_residual(a, std::span<const double>(x),
                                            std::span<const double>(b)) *
                          blas::nrm2(std::span<const double>(b));
  EXPECT_NEAR(st.residual_est, true_res, 1e-6 * (1.0 + true_res));
}

TEST(Fgmres, ResidualEstimatesMonotoneNonincreasing) {
  auto a = test::laplace2d(8, 8);
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> m(a.nrows);
  FgmresSolver<double> s(op, m, {.m = 30});
  std::vector<double> log;
  s.set_iteration_log(&log);
  const auto b = random_vector<double>(a.nrows, 5, 0.0, 1.0);
  std::vector<double> x(a.nrows, 0.0);
  s.run(b, std::span<double>(x), 0.0, false);
  ASSERT_GE(log.size(), 10u);
  for (std::size_t i = 1; i < log.size(); ++i) EXPECT_LE(log[i], log[i - 1] * (1.0 + 1e-12));
}

TEST(Fgmres, InnerApplyReducesResidualFromZeroGuess) {
  auto a = test::scaled_laplace2d(10, 10);
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> m(a.nrows);
  FgmresSolver<double> inner(op, m, {.m = 8});
  const auto v = random_vector<double>(a.nrows, 6, 0.0, 1.0);
  std::vector<double> z(a.nrows, 99.0);  // apply() must reset to zero guess
  inner.apply(std::span<const double>(v), std::span<double>(z));
  // ‖v − A z‖ < ‖v‖ : 8 Krylov steps make progress.
  std::vector<double> r(a.nrows);
  residual(a, std::span<const double>(z), std::span<const double>(v), std::span<double>(r));
  EXPECT_LT(blas::nrm2(std::span<const double>(r)), blas::nrm2(std::span<const double>(v)));
}

TEST(Fgmres, NonzeroInitialGuessContinuesSolve) {
  auto a = test::laplace2d(8, 8);
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> m(a.nrows);
  FgmresSolver<double> s(op, m, {.m = 20});
  const auto b = random_vector<double>(a.nrows, 7, 0.0, 1.0);
  const double bn = blas::nrm2(std::span<const double>(b));
  std::vector<double> x(a.nrows, 0.0);
  s.run(b, std::span<double>(x), 0.0, false);           // 20 its
  const double r1 = relative_residual(a, std::span<const double>(x), std::span<const double>(b));
  s.run(b, std::span<double>(x), 1e-12 * bn, true);     // restart from x
  const double r2 = relative_residual(a, std::span<const double>(x), std::span<const double>(b));
  EXPECT_LT(r2, r1);
}

TEST(Fgmres, ZeroRhsReturnsImmediately) {
  auto a = test::laplace2d(4, 4);
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> m(a.nrows);
  FgmresSolver<double> s(op, m, {.m = 5});
  std::vector<double> b(a.nrows, 0.0), x(a.nrows, 0.0);
  const auto st = s.run(b, std::span<double>(x), 1e-8, false);
  EXPECT_EQ(st.iters, 0);
  EXPECT_TRUE(st.reached_target);
}

TEST(Fgmres, FlexiblePreconditioningWithVariableInner) {
  // A preconditioner that changes between calls: plain GMRES theory breaks,
  // FGMRES (storing Z) must still converge.
  class Alternating final : public Preconditioner<double> {
   public:
    explicit Alternating(index_t n) : n_(n) {}
    void apply(std::span<const double> r, std::span<double> z) override {
      const double w = (calls_++ % 2 == 0) ? 1.0 : 0.25;
      for (index_t i = 0; i < n_; ++i) z[i] = w * r[i];
    }
    index_t size() const override { return n_; }

   private:
    index_t n_;
    int calls_ = 0;
  };
  auto a = test::scaled_laplace2d(10, 10);
  CsrOperator<double, double> op(a);
  Alternating m(a.nrows);
  FgmresSolver<double> s(op, m, {.m = 120});
  const auto b = random_vector<double>(a.nrows, 8, 0.0, 1.0);
  std::vector<double> x(a.nrows, 0.0);
  const auto st =
      s.run(b, std::span<double>(x), 1e-9 * blas::nrm2(std::span<const double>(b)), false);
  EXPECT_TRUE(st.reached_target);
}

TEST(Fgmres, TotalIterationsAccumulate) {
  auto a = test::laplace2d(6, 6);
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> m(a.nrows);
  FgmresSolver<double> s(op, m, {.m = 4});
  const auto v = random_vector<double>(a.nrows, 9, 0.0, 1.0);
  std::vector<double> z(a.nrows);
  s.apply(std::span<const double>(v), std::span<double>(z));
  s.apply(std::span<const double>(v), std::span<double>(z));
  EXPECT_EQ(s.total_iterations(), 8u);
}

TEST(Fgmres, Fp32SolverOnFp16Matrix) {
  // The F3R level-3 configuration: fp16-stored matrix, fp32 vectors.
  auto a = test::scaled_laplace2d(12, 12);
  const auto a16 = cast_matrix<half>(a);
  CsrOperator<half, float> op(a16);
  IdentityPrecond<float> m(a.nrows);
  FgmresSolver<float> s(op, m, {.m = 60});
  const auto bd = random_vector<double>(a.nrows, 10, 0.0, 1.0);
  const auto b = converted<float>(bd);
  std::vector<float> x(a.nrows, 0.0f);
  const auto st = s.run(std::span<const float>(b), std::span<float>(x),
                        1e-3 * blas::nrm2(std::span<const float>(b)), false);
  EXPECT_TRUE(st.reached_target);  // fp16 storage still allows 1e-3 progress
}

TEST(Fgmres, Fp32BreakdownDetectedOnRankDeficientKrylov) {
  // A with exactly two distinct eigenvalues: every Krylov space is spanned
  // after 2 steps, so the third Arnoldi vector is numerically dependent.
  // In fp32 the CGS leftover is hj1 ≈ ε_fp32·β ≈ 1e-7·β — far above the
  // old precision-blind 1e-14·β threshold, which let the cycle keep
  // orthogonalizing rounding noise for all m steps.  With the tolerance
  // scaled by the working epsilon the breakdown is detected and the cycle
  // stops at the Krylov degree.
  const index_t n = 32;
  CsrMatrix<float> a(n, n);
  a.row_ptr.resize(n + 1);
  a.col_idx.resize(n);
  a.vals.resize(n);
  for (index_t i = 0; i < n; ++i) {
    a.row_ptr[i] = i;
    a.col_idx[i] = i;
    a.vals[i] = i < n / 2 ? 1.0f : 2.0f;
  }
  a.row_ptr[n] = n;
  CsrOperator<float, float> op(a);
  IdentityPrecond<float> m(n);
  FgmresSolver<float> s(op, m, {.m = 8});
  const auto b = converted<float>(random_vector<double>(n, 17, 0.5, 1.5));
  std::vector<float> x(n, 0.0f);
  const auto st = s.run(std::span<const float>(b), std::span<float>(x), 0.0, false);
  EXPECT_EQ(st.iters, 2);  // stops at the Krylov degree, not at m
  EXPECT_TRUE(st.reached_target);
  // The 2-step solution is still the exact one (to fp32 accuracy).
  std::vector<float> r(n);
  op.residual(std::span<const float>(b), std::span<const float>(x), std::span<float>(r));
  EXPECT_LT(blas::nrm2(std::span<const float>(r)),
            1e-5f * blas::nrm2(std::span<const float>(b)));
}

}  // namespace
}  // namespace nk
