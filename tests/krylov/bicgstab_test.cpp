// Tests for preconditioned BiCGStab.
#include <gtest/gtest.h>

#include "krylov/bicgstab.hpp"
#include "precond/block_jacobi_ilu0.hpp"
#include "precond/jacobi.hpp"
#include "support/problems.hpp"
#include "support/solver_checks.hpp"

namespace nk {
namespace {

TEST(BiCgStab, SolvesConvectionDiffusion) {
  auto p = test::make_problem(test::scaled_convdiff2d(16, 10.0), 1);
  CsrOperator<double, double> op(p.a);
  JacobiPrecond jac(p.a);
  auto m = jac.make_apply_fp64(Prec::FP64);
  BiCgStabSolver<double> s(op, *m, {.rtol = 1e-9, .max_iters = 2000});
  const auto res = s.solve(p.b, std::span<double>(p.x));
  EXPECT_TRUE(test::converged(res));
  EXPECT_TRUE(test::residual_below(p.a, p.x, p.b, 1e-8));
}

TEST(BiCgStab, IluPreconditioningReducesIterations) {
  auto p = test::make_problem(test::scaled_convdiff2d(20, 30.0), 2);
  CsrOperator<double, double> op(p.a);

  IdentityPrecond<double> ident(p.a.nrows);
  BiCgStabSolver<double> plain(op, ident, {.rtol = 1e-8, .max_iters = 4000});
  std::vector<double> x1(p.a.nrows, 0.0);
  const auto r1 = plain.solve(p.b, std::span<double>(x1));

  BlockJacobiIlu0 ilu(p.a, {.nblocks = 2, .alpha = 1.0});
  auto m = ilu.make_apply_fp64(Prec::FP64);
  BiCgStabSolver<double> pre(op, *m, {.rtol = 1e-8, .max_iters = 4000});
  std::vector<double> x2(p.a.nrows, 0.0);
  const auto r2 = pre.solve(p.b, std::span<double>(x2));

  EXPECT_TRUE(test::converged(r1));
  EXPECT_TRUE(test::converged(r2));
  EXPECT_LT(r2.iterations, r1.iterations);
}

TEST(BiCgStab, TwoPrecondCallsPerIteration) {
  auto p = test::make_problem(test::scaled_convdiff2d(8, 5.0), 3);
  CsrOperator<double, double> op(p.a);
  BlockJacobiIlu0 ilu(p.a, {.nblocks = 1, .alpha = 1.0});
  auto m = ilu.make_apply_fp64(Prec::FP64);
  BiCgStabSolver<double> s(op, *m, {.rtol = 1e-9, .max_iters = 500});
  const auto res = s.solve(p.b, std::span<double>(p.x));
  EXPECT_TRUE(test::converged(res));
  // Table 3 counts preconditioner invocations: 2 per full iteration
  // (the converged-at-s early exit uses only 1 on the last step).
  EXPECT_GE(ilu.invocations(), static_cast<std::uint64_t>(2 * res.iterations - 1));
  EXPECT_LE(ilu.invocations(), static_cast<std::uint64_t>(2 * res.iterations));
}

TEST(BiCgStab, HistoryMonotoneAtExit) {
  auto p = test::make_problem(test::scaled_convdiff2d(10, 8.0), 4);
  CsrOperator<double, double> op(p.a);
  IdentityPrecond<double> m(p.a.nrows);
  BiCgStabSolver<double> s(op, m, {.rtol = 1e-8, .max_iters = 2000, .record_history = true});
  const auto res = s.solve(p.b, std::span<double>(p.x));
  EXPECT_TRUE(test::converged(res));
  ASSERT_GE(res.history.size(), 2u);
  EXPECT_LE(res.history.back(), 1e-8);  // final entry below tolerance
}

TEST(BiCgStab, IterationCapReportsFailure) {
  auto p = test::make_problem(test::scaled_convdiff2d(16, 50.0), 5);
  CsrOperator<double, double> op(p.a);
  IdentityPrecond<double> m(p.a.nrows);
  BiCgStabSolver<double> s(op, m, {.rtol = 1e-14, .max_iters = 2});
  EXPECT_TRUE(test::not_converged(s.solve(p.b, std::span<double>(p.x))));
}

TEST(BiCgStab, ZeroRhsImmediate) {
  const auto a = test::scaled_convdiff2d(4, 1.0);
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> m(a.nrows);
  BiCgStabSolver<double> s(op, m, {});
  std::vector<double> b(a.nrows, 0.0), x(a.nrows, 0.0);
  const auto res = s.solve(std::span<const double>(b), std::span<double>(x));
  EXPECT_TRUE(test::converged(res));
  EXPECT_EQ(res.iterations, 0);
}

TEST(BiCgStab, SymmetricSystemAlsoWorks) {
  auto p = test::make_problem(test::scaled_laplace2d(12, 12), 6);
  CsrOperator<double, double> op(p.a);
  IdentityPrecond<double> m(p.a.nrows);
  BiCgStabSolver<double> s(op, m, {.rtol = 1e-9, .max_iters = 2000});
  EXPECT_TRUE(test::converged(s.solve(p.b, std::span<double>(p.x))));
}

TEST(BiCgStab, NoNanOnSingularMatrix) {
  const auto a = test::singular_row2();
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> m(2);
  BiCgStabSolver<double> s(op, m, {.rtol = 1e-10, .max_iters = 10});
  std::vector<double> b = {1.0, 1.0}, x(2, 0.0);
  const auto res = s.solve(std::span<const double>(b), std::span<double>(x));
  EXPECT_TRUE(test::not_converged(res));
  EXPECT_TRUE(test::all_finite(x));
}

}  // namespace
}  // namespace nk
