// Tests for preconditioned BiCGStab.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "krylov/bicgstab.hpp"
#include "precond/block_jacobi_ilu0.hpp"
#include "precond/jacobi.hpp"
#include "sparse/gen/convdiff.hpp"
#include "sparse/gen/laplace.hpp"
#include "sparse/scaling.hpp"
#include "sparse/spmv.hpp"

namespace nk {
namespace {

CsrMatrix<double> nonsym_problem(index_t nx, double v) {
  gen::ConvDiffOptions o;
  o.nx = nx;
  o.ny = nx;
  o.nz = 1;
  o.vx = v;
  o.vy = v / 2;
  auto a = gen::convdiff(o);
  diagonal_scale_symmetric(a);
  return a;
}

TEST(BiCgStab, SolvesConvectionDiffusion) {
  const auto a = nonsym_problem(16, 10.0);
  CsrOperator<double, double> op(a);
  JacobiPrecond jac(a);
  auto m = jac.make_apply_fp64(Prec::FP64);
  BiCgStabSolver<double> s(op, *m, {.rtol = 1e-9, .max_iters = 2000});
  const auto b = random_vector<double>(a.nrows, 1, 0.0, 1.0);
  std::vector<double> x(a.nrows, 0.0);
  const auto res = s.solve(b, std::span<double>(x));
  EXPECT_TRUE(res.converged);
  EXPECT_LT(relative_residual(a, std::span<const double>(x), std::span<const double>(b)), 1e-8);
}

TEST(BiCgStab, IluPreconditioningReducesIterations) {
  const auto a = nonsym_problem(20, 30.0);
  CsrOperator<double, double> op(a);
  const auto b = random_vector<double>(a.nrows, 2, 0.0, 1.0);

  IdentityPrecond<double> ident(a.nrows);
  BiCgStabSolver<double> plain(op, ident, {.rtol = 1e-8, .max_iters = 4000});
  std::vector<double> x1(a.nrows, 0.0);
  const auto r1 = plain.solve(b, std::span<double>(x1));

  BlockJacobiIlu0 ilu(a, {.nblocks = 2, .alpha = 1.0});
  auto m = ilu.make_apply_fp64(Prec::FP64);
  BiCgStabSolver<double> pre(op, *m, {.rtol = 1e-8, .max_iters = 4000});
  std::vector<double> x2(a.nrows, 0.0);
  const auto r2 = pre.solve(b, std::span<double>(x2));

  EXPECT_TRUE(r1.converged);
  EXPECT_TRUE(r2.converged);
  EXPECT_LT(r2.iterations, r1.iterations);
}

TEST(BiCgStab, TwoPrecondCallsPerIteration) {
  const auto a = nonsym_problem(8, 5.0);
  CsrOperator<double, double> op(a);
  BlockJacobiIlu0 ilu(a, {.nblocks = 1, .alpha = 1.0});
  auto m = ilu.make_apply_fp64(Prec::FP64);
  BiCgStabSolver<double> s(op, *m, {.rtol = 1e-9, .max_iters = 500});
  const auto b = random_vector<double>(a.nrows, 3, 0.0, 1.0);
  std::vector<double> x(a.nrows, 0.0);
  const auto res = s.solve(b, std::span<double>(x));
  EXPECT_TRUE(res.converged);
  // Table 3 counts preconditioner invocations: 2 per full iteration
  // (the converged-at-s early exit uses only 1 on the last step).
  EXPECT_GE(ilu.invocations(), static_cast<std::uint64_t>(2 * res.iterations - 1));
  EXPECT_LE(ilu.invocations(), static_cast<std::uint64_t>(2 * res.iterations));
}

TEST(BiCgStab, HistoryMonotoneAtExit) {
  const auto a = nonsym_problem(10, 8.0);
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> m(a.nrows);
  BiCgStabSolver<double> s(op, m, {.rtol = 1e-8, .max_iters = 2000, .record_history = true});
  const auto b = random_vector<double>(a.nrows, 4, 0.0, 1.0);
  std::vector<double> x(a.nrows, 0.0);
  const auto res = s.solve(b, std::span<double>(x));
  EXPECT_TRUE(res.converged);
  ASSERT_GE(res.history.size(), 2u);
  EXPECT_LE(res.history.back(), 1e-8);  // final entry below tolerance
}

TEST(BiCgStab, IterationCapReportsFailure) {
  const auto a = nonsym_problem(16, 50.0);
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> m(a.nrows);
  BiCgStabSolver<double> s(op, m, {.rtol = 1e-14, .max_iters = 2});
  const auto b = random_vector<double>(a.nrows, 5, 0.0, 1.0);
  std::vector<double> x(a.nrows, 0.0);
  EXPECT_FALSE(s.solve(b, std::span<double>(x)).converged);
}

TEST(BiCgStab, ZeroRhsImmediate) {
  const auto a = nonsym_problem(4, 1.0);
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> m(a.nrows);
  BiCgStabSolver<double> s(op, m, {});
  std::vector<double> b(a.nrows, 0.0), x(a.nrows, 0.0);
  const auto res = s.solve(std::span<const double>(b), std::span<double>(x));
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

TEST(BiCgStab, SymmetricSystemAlsoWorks) {
  auto a = gen::laplace2d(12, 12);
  diagonal_scale_symmetric(a);
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> m(a.nrows);
  BiCgStabSolver<double> s(op, m, {.rtol = 1e-9, .max_iters = 2000});
  const auto b = random_vector<double>(a.nrows, 6, 0.0, 1.0);
  std::vector<double> x(a.nrows, 0.0);
  EXPECT_TRUE(s.solve(b, std::span<double>(x)).converged);
}

TEST(BiCgStab, NoNanOnSingularMatrix) {
  CsrMatrix<double> a(2, 2);
  a.row_ptr = {0, 1, 1};
  a.col_idx = {0};
  a.vals = {1.0};  // second row identically zero
  CsrOperator<double, double> op(a);
  IdentityPrecond<double> m(2);
  BiCgStabSolver<double> s(op, m, {.rtol = 1e-10, .max_iters = 10});
  std::vector<double> b = {1.0, 1.0}, x(2, 0.0);
  const auto res = s.solve(std::span<const double>(b), std::span<double>(x));
  EXPECT_FALSE(res.converged);
  for (double v : x) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace nk
