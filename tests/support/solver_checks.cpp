#include "support/solver_checks.hpp"

#include <algorithm>
#include <cmath>

#include "base/blas1.hpp"
#include "sparse/spmv.hpp"

namespace nk::test {

::testing::AssertionResult converged(const SolveResult& r) {
  if (r.converged) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << (r.solver.empty() ? "solver" : r.solver) << " did not converge: " << r.iterations
         << " iterations, " << r.restarts << " restarts, final relres " << r.final_relres;
}

::testing::AssertionResult not_converged(const SolveResult& r) {
  if (!r.converged) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << (r.solver.empty() ? "solver" : r.solver) << " unexpectedly converged in "
         << r.iterations << " iterations (final relres " << r.final_relres << ")";
}

::testing::AssertionResult residual_below(const CsrMatrix<double>& a,
                                          std::span<const double> x,
                                          std::span<const double> b, double tol) {
  const double rr = relative_residual(a, x, b);
  if (rr < tol) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "relative residual " << rr << " is not below " << tol;
}

::testing::AssertionResult all_finite(std::span<const double> x) {
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!std::isfinite(x[i])) {
      return ::testing::AssertionFailure() << "x[" << i << "] = " << x[i] << " is not finite";
    }
  }
  return ::testing::AssertionSuccess();
}

double max_rel_diff(const std::vector<double>& x, const std::vector<double>& ref) {
  const double rn = blas::nrm2(std::span<const double>(ref));
  double d = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) d = std::max(d, std::abs(x[i] - ref[i]));
  return rn > 0.0 ? d / rn : d;
}

}  // namespace nk::test
