// Solver-result matchers shared by the krylov/precond/integration tests.
//
// Use with EXPECT_TRUE so failures carry the full solve context:
//
//   EXPECT_TRUE(test::converged(res));
//   EXPECT_TRUE(test::residual_below(a, x, b, 1e-9));
#pragma once

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "krylov/history.hpp"
#include "sparse/csr.hpp"

namespace nk::test {

/// Passes iff the solve converged; failure message carries the solver name,
/// iteration count, and final residual.
::testing::AssertionResult converged(const SolveResult& r);

/// Passes iff the solve did NOT converge (for cap/breakdown tests).
::testing::AssertionResult not_converged(const SolveResult& r);

/// Passes iff the true fp64 relative residual ‖b − Ax‖/‖b‖ is below `tol`.
::testing::AssertionResult residual_below(const CsrMatrix<double>& a,
                                          std::span<const double> x,
                                          std::span<const double> b, double tol);

/// Passes iff every element of `x` is finite (breakdown-path tests).
::testing::AssertionResult all_finite(std::span<const double> x);

/// Max-norm relative difference between two solution vectors, normalised by
/// ‖ref‖₂ (solution-agreement tests).
double max_rel_diff(const std::vector<double>& x, const std::vector<double>& ref);

}  // namespace nk::test
