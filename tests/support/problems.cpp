#include "support/problems.hpp"

#include "base/rng.hpp"
#include "sparse/gen/convdiff.hpp"
#include "sparse/gen/laplace.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/scaling.hpp"

namespace nk::test {

CsrMatrix<double> laplace2d(int nx, int ny) { return gen::laplace2d(nx, ny); }

CsrMatrix<double> scaled_laplace2d(int nx, int ny) {
  auto a = gen::laplace2d(nx, ny);
  diagonal_scale_symmetric(a);
  return a;
}

CsrMatrix<double> scaled_hpcg(int l) {
  auto a = gen::hpcg(l, l, l);
  diagonal_scale_symmetric(a);
  return a;
}

CsrMatrix<double> scaled_convdiff2d(int nx, double vx) {
  gen::ConvDiffOptions o;
  o.nx = nx;
  o.ny = nx;
  o.nz = 1;
  o.vx = vx;
  o.vy = vx / 2;
  auto a = gen::convdiff(o);
  diagonal_scale_symmetric(a);
  return a;
}

CsrMatrix<double> spd_tridiag3() {
  CsrMatrix<double> a(3, 3);
  a.row_ptr = {0, 2, 5, 7};
  a.col_idx = {0, 1, 0, 1, 2, 1, 2};
  a.vals = {4.0, -1.0, -1.0, 4.0, -1.0, -1.0, 4.0};
  return a;
}

CsrMatrix<double> indefinite_diag2() {
  CsrMatrix<double> a(2, 2);
  a.row_ptr = {0, 1, 2};
  a.col_idx = {0, 1};
  a.vals = {1.0, -1.0};
  return a;
}

CsrMatrix<double> singular_row2() {
  CsrMatrix<double> a(2, 2);
  a.row_ptr = {0, 1, 1};
  a.col_idx = {0};
  a.vals = {1.0};
  return a;
}

TestProblem make_problem(CsrMatrix<double> a, std::uint64_t seed, double lo, double hi) {
  TestProblem p{std::move(a), {}, {}};
  p.b = random_vector<double>(p.a.nrows, seed, lo, hi);
  p.x.assign(p.a.nrows, 0.0);
  return p;
}

}  // namespace nk::test
