// Shared test fixtures: the canonical small matrices and prepared linear
// systems the krylov/precond/integration tests exercise solvers on.
//
// Every factory returns the matrix *after* symmetric diagonal scaling when
// the paper's pipeline would scale it (all solver tests run on scaled
// systems), and every right-hand side is seeded, so tests stay
// deterministic and bit-reproducible across runs.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace nk::test {

/// 5-point 2-D Laplacian on an nx x ny grid, symmetrically scaled to unit
/// diagonal. SPD; the workhorse matrix of the flat-solver tests.
CsrMatrix<double> scaled_laplace2d(int nx, int ny);

/// Unscaled 5-point 2-D Laplacian (for preconditioner construction tests
/// that need the raw diagonal).
CsrMatrix<double> laplace2d(int nx, int ny);

/// HPCG 27-point stencil on a (2^l)^3 grid, symmetrically scaled. SPD.
CsrMatrix<double> scaled_hpcg(int l);

/// 2-D convection-diffusion on an nx x nx grid with convection (vx, vx/2),
/// symmetrically scaled. Nonsymmetric; the workhorse of the
/// BiCGStab/FGMRES tests.
CsrMatrix<double> scaled_convdiff2d(int nx, double vx);

/// Small dense-diagonal SPD matrix with known entries:
///   [ 4 -1  0; -1  4 -1; 0 -1  4 ]  (CSR, 3x3)
CsrMatrix<double> spd_tridiag3();

/// Indefinite diagonal diag(1, -1): CG/IC0 breakdown-path probe.
CsrMatrix<double> indefinite_diag2();

/// Singular 2x2 matrix whose second row is identically zero:
/// breakdown/no-NaN probe for the nonsymmetric solvers.
CsrMatrix<double> singular_row2();

/// A prepared system: matrix + seeded RHS + zero initial guess.
struct TestProblem {
  CsrMatrix<double> a;
  std::vector<double> b;
  std::vector<double> x;  ///< zero-initialised, sized to a.nrows
};

/// Attach a seeded uniform-[lo,hi) RHS and a zero guess to `a`.
TestProblem make_problem(CsrMatrix<double> a, std::uint64_t seed, double lo = 0.0,
                         double hi = 1.0);

}  // namespace nk::test
