// Autotuner layer 2: the cost-model shortlist and its gates
// (core/tune/shortlist.hpp).  All pure-function tests over hand-built
// feature records — no solves.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/tune/shortlist.hpp"

namespace nk::tune {
namespace {

/// A benign mid-catalog feature record every gate passes.
TuneFeatures benign(bool symmetric) {
  TuneFeatures f;
  f.n = 4096;
  f.nnz = 4096 * 27;
  f.nnz_per_row = 27.0;
  f.symmetric = symmetric;
  f.diag_dominance_min = 1.0;
  f.fp16_overflow_fraction = 0.0;
  f.bandwidth = 64;
  f.row_nnz_stddev = 1.0;
  f.fingerprint = 0x1234;
  return f;
}

bool has_kind(const std::vector<Candidate>& cs, const std::string& kind) {
  return std::any_of(cs.begin(), cs.end(),
                     [&](const Candidate& c) { return c.spec.kind == kind; });
}

TEST(Shortlist, SymmetryGatesFlatKind) {
  const auto sym = shortlist(benign(true));
  EXPECT_TRUE(has_kind(sym, "cg"));
  EXPECT_FALSE(has_kind(sym, "bicgstab"));
  const auto gen = shortlist(benign(false));
  EXPECT_TRUE(has_kind(gen, "bicgstab"));
  EXPECT_FALSE(has_kind(gen, "cg"));
  // The robust baselines ride along either way.
  for (const auto& cs : {sym, gen}) {
    EXPECT_TRUE(has_kind(cs, "fgmres"));
    EXPECT_TRUE(has_kind(cs, "f3r"));
    EXPECT_TRUE(has_kind(cs, "ir-gmres"));
  }
}

TEST(Shortlist, Fp16OverflowGatesEveryFp16Candidate) {
  TuneFeatures f = benign(true);
  f.fp16_overflow_fraction = 1e-6;  // ANY overflow disqualifies fp16
  const auto cs = shortlist(f);
  EXPECT_FALSE(cs.empty());
  for (const Candidate& c : cs)
    EXPECT_NE(c.spec.prec, Prec::FP16) << c.spec.to_string();
}

TEST(Shortlist, WeakDiagonalGatesJacobi) {
  TuneFeatures f = benign(true);
  f.diag_dominance_min = 0.2;
  for (const Candidate& c : shortlist(f))
    EXPECT_NE(c.spec.precond.kind, "jacobi") << c.spec.to_string();
  f.diag_dominance_min = 1.0;
  bool any_jacobi = false;
  for (const Candidate& c : shortlist(f)) any_jacobi |= c.spec.precond.kind == "jacobi";
  EXPECT_TRUE(any_jacobi);
}

TEST(Shortlist, SortedAscendingByModelCost) {
  for (const bool sym : {true, false}) {
    const auto cs = shortlist(benign(sym));
    ASSERT_GE(cs.size(), 2u);
    for (std::size_t i = 1; i < cs.size(); ++i)
      EXPECT_LE(cs[i - 1].unit_cost, cs[i].unit_cost)
          << cs[i - 1].spec.to_string() << " vs " << cs[i].spec.to_string();
    for (const Candidate& c : cs) {
      EXPECT_GT(c.unit_cost, 0.0);
      EXPECT_FALSE(c.why.empty());
    }
  }
}

TEST(Shortlist, LowerStoragePrecisionIsCheaper) {
  // The paper's premise, reflected by the pricing: the same kind with a
  // narrower M storage costs fewer modeled accesses per application.
  const TuneFeatures f = benign(true);
  SolverSpec s16 = SolverSpec::parse("cg@fp16");
  SolverSpec s64 = SolverSpec::parse("cg");
  EXPECT_LT(unit_cost(f, s16), unit_cost(f, s64));
}

TEST(Shortlist, PrecisionPinRestrictsTheAxis) {
  Constraints c;
  c.pin_prec = Prec::FP32;
  const auto cs = shortlist(benign(true), c);
  EXPECT_FALSE(cs.empty());
  for (const Candidate& cand : cs)
    EXPECT_EQ(cand.spec.prec, Prec::FP32) << cand.spec.to_string();
}

TEST(Shortlist, PrecondPinReplacesTheDefault) {
  Constraints c;
  c.pin_precond = "sd-ainv";
  const auto cs = shortlist(benign(true), c);
  EXPECT_FALSE(cs.empty());
  for (const Candidate& cand : cs)
    EXPECT_EQ(cand.spec.precond.kind, "sd-ainv") << cand.spec.to_string();
}

TEST(Shortlist, UserPinOutranksTheFp16Gate) {
  // '@fp16' pinned on an overflowing matrix: the gated list would be
  // empty, so the gate yields and the probes get to judge.
  TuneFeatures f = benign(true);
  f.fp16_overflow_fraction = 0.5;
  Constraints c;
  c.pin_prec = Prec::FP16;
  const auto cs = shortlist(f, c);
  EXPECT_FALSE(cs.empty());
  for (const Candidate& cand : cs)
    EXPECT_EQ(cand.spec.prec, Prec::FP16) << cand.spec.to_string();
}

TEST(Shortlist, EveryCandidateSpecParsesBack) {
  // DB entries are candidate spec texts — each must round-trip through
  // the grammar (the perf-DB's persistence contract).
  for (const bool sym : {true, false}) {
    for (const Candidate& c : shortlist(benign(sym))) {
      const std::string text = c.spec.to_string();
      EXPECT_EQ(SolverSpec::parse(text), c.spec) << text;
    }
  }
}

}  // namespace
}  // namespace nk::tune
