// Autotuner layer 1: TuneFeatures extraction (core/tune/features.hpp).
#include <gtest/gtest.h>

#include "core/fingerprint.hpp"
#include "core/problem.hpp"
#include "core/tune/features.hpp"
#include "support/problems.hpp"

namespace nk::tune {
namespace {

TEST(TuneFeatures, ExtractsStandinStructure) {
  const PreparedProblem p = prepare_standin("ecology2", -4);
  const TuneFeatures f = extract_features(p);
  EXPECT_EQ(f.n, p.a->size());
  EXPECT_EQ(f.nnz, p.a->csr_fp64().nnz());
  EXPECT_GT(f.nnz_per_row, 0.0);
  EXPECT_TRUE(f.symmetric);
  EXPECT_GT(f.bandwidth, 0);
  EXPECT_GE(f.row_nnz_stddev, 0.0);
  EXPECT_FALSE(f.uses_sell);
  // prepare_problem stamped the fingerprint; extraction reuses it.
  EXPECT_NE(f.fingerprint, 0u);
  EXPECT_EQ(f.fingerprint, p.fingerprint);
}

TEST(TuneFeatures, SymmetryIsTheClaimNotTheValues) {
  // A numerically symmetric matrix prepared "as general" must feature as
  // nonsymmetric: the solve will not assume symmetry, so neither may the
  // shortlist (it would pick CG for a solve path that runs BiCGStab).
  CsrMatrix<double> a = test::scaled_laplace2d(12, 12);
  const PreparedProblem p =
      prepare_problem("laplace-as-general", std::move(a), /*symmetric=*/false, 1.0, 1.0, 7);
  EXPECT_FALSE(extract_features(p).symmetric);
}

TEST(TuneFeatures, FingerprintRecomputedWhenUnset) {
  // Hand-assembled problems may carry fingerprint 0; extraction falls back
  // to hashing the prepared matrix itself.
  PreparedProblem p = prepare_standin("thermal2", -4);
  const std::uint64_t stamped = p.fingerprint;
  p.fingerprint = 0;
  const TuneFeatures f = extract_features(p);
  EXPECT_EQ(f.fingerprint, stamped);
  EXPECT_EQ(f.fingerprint, matrix_fingerprint(p.a->csr_fp64(), p.symmetric));
}

TEST(TuneFeatures, DistinctMatricesDistinctFingerprints) {
  const TuneFeatures f1 = extract_features(prepare_standin("ecology2", -4));
  const TuneFeatures f2 = extract_features(prepare_standin("thermal2", -4));
  EXPECT_NE(f1.fingerprint, f2.fingerprint);
}

TEST(TuneFeatures, PrefersSellOnUniformRows) {
  TuneFeatures f;
  f.nnz_per_row = 27.0;
  f.row_nnz_stddev = 1.0;  // ~4% ragged: SELL padding is near-free
  EXPECT_TRUE(prefers_sell(f));
  f.row_nnz_stddev = 9.0;  // a third of the mean: padding dominates
  EXPECT_FALSE(prefers_sell(f));
  f.nnz_per_row = 0.0;  // empty matrix: no recommendation
  EXPECT_FALSE(prefers_sell(f));
}

TEST(TuneFeatures, SummaryNamesTheSignals) {
  const std::string s = features_summary(extract_features(prepare_standin("ecology2", -4)));
  for (const char* token : {"n=", "nnz/row=", "sym=", "diag_dom_min=", "fp16_overflow=",
                            "bandwidth=", "row_nnz_stddev=", "format=", "prefer="})
    EXPECT_NE(s.find(token), std::string::npos) << "missing '" << token << "' in: " << s;
}

}  // namespace
}  // namespace nk::tune
