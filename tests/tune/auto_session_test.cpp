// The Session("auto") acceptance surface: the meta-kind converges on the
// whole stand-in catalog within a bounded margin of the best fixed spec,
// the perf-DB short-circuits repeat tuning, stale/corrupt DB entries are
// survived, and the user pins are honored.
//
// Margin currency: MODELED WORK = M-applications x modeled accesses per
// application (unit_cost) — the Table 3 comparison the tuner itself
// optimizes.  Raw outer-iteration counts are not comparable across kinds
// (one F3R outer iteration is 64 M-applications), and wall-clock would
// make the bound load-dependent.
//
// Each TEST runs as its own CTest process (gtest_discover_tests), so the
// process-wide tune_db() singleton starts cold per test; clear() guards
// against an inherited NKRYLOV_TUNE_DB attachment anyway.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "core/tune/perf_db.hpp"
#include "core/tune/tuner.hpp"
#include "sparse/gen/suite_standins.hpp"

namespace nk::tune {
namespace {

/// The fixed-spec universe the tuner is judged against: the shortlist's
/// own candidate space, spelled as user-visible spec strings.
std::vector<std::string> fixed_universe(bool symmetric) {
  const std::string flat = symmetric ? "cg" : "bicgstab";
  return {flat,          flat + "@fp32", flat + "@fp16", "fgmres64",
          "fgmres64@fp16", "f3r@fp16",   "f3r@fp32",     "ir-gmres8@fp32"};
}

double modeled_work(const TuneFeatures& f, const SolverSpec& spec,
                    std::uint64_t mapplies) {
  return static_cast<double>(mapplies) * unit_cost(f, spec);
}

TEST(AutoSession, ConvergesOnWholeCatalogWithinMarginOfBestFixed) {
  tune_db().clear();
  for (const gen::ProblemSpec& ps : gen::standin_catalog()) {
    const auto p =
        std::make_shared<const PreparedProblem>(prepare_standin(ps.paper_name, -4));
    const TuneFeatures f = extract_features(*p);

    double best_fixed = std::numeric_limits<double>::infinity();
    std::string best_name;
    for (const std::string& text : fixed_universe(ps.symmetric)) {
      const SolverSpec spec = SolverSpec::parse(text);
      Session s(p, spec);
      const SolveResult r = s.solve();
      if (!r.converged) continue;
      const double work = modeled_work(f, spec, r.precond_invocations);
      if (work < best_fixed) {
        best_fixed = work;
        best_name = text;
      }
    }

    Session sa(p, "auto");
    const SolveResult ra = sa.solve();
    EXPECT_TRUE(ra.converged) << ps.paper_name << ": auto (" << ra.solver
                              << ") did not converge: " << status_name(ra.status);
    if (!ra.converged || !std::isfinite(best_fixed)) continue;

    // The chosen engine's minimal spec, for pricing what auto actually ran.
    const std::string db_text = [&] {
      std::string t;
      EXPECT_TRUE(tune_db().lookup(p->fingerprint, t)) << ps.paper_name;
      return t;
    }();
    const double auto_work =
        modeled_work(f, SolverSpec::parse(db_text), ra.precond_invocations);
    EXPECT_LE(auto_work, 1.2 * best_fixed + 64.0)
        << ps.paper_name << ": auto chose " << db_text << " (work " << auto_work
        << ") vs best fixed " << best_name << " (work " << best_fixed << ")";
  }
}

TEST(AutoSession, SecondSessionHitsPerfDbWithZeroProbes) {
  tune_db().clear();
  const auto p =
      std::make_shared<const PreparedProblem>(prepare_standin("ecology2", -4));

  Session first(p, "auto");
  const TuneDbStats after_first = tune_db().stats();
  EXPECT_EQ(after_first.misses, 1u);
  EXPECT_GT(after_first.probes, 0u);  // default NKRYLOV_TUNE_PROBES = 4
  EXPECT_EQ(after_first.entries, 1u);
  EXPECT_TRUE(first.solve().converged);

  Session second(p, "auto");
  const TuneDbStats after_second = tune_db().stats();
  EXPECT_EQ(after_second.hits, after_first.hits + 1);
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_EQ(after_second.probes, after_first.probes) << "db hit must skip probes";
  EXPECT_TRUE(second.solve().converged);
  EXPECT_EQ(second.solver_name(), first.solver_name());
}

TEST(AutoSession, ProbesDisabledStillConverges) {
  // NKRYLOV_TUNE_PROBES=0 is the model-only mode: the shortlist's top
  // pick is adopted unprobed (and escalation still guards the solve).
  ::setenv("NKRYLOV_TUNE_PROBES", "0", 1);
  tune_db().clear();
  const auto p =
      std::make_shared<const PreparedProblem>(prepare_standin("thermal2", -4));
  Session s(p, "auto");
  EXPECT_EQ(tune_db().stats().probes, 0u);
  EXPECT_TRUE(s.solve().converged);
  ::unsetenv("NKRYLOV_TUNE_PROBES");
}

TEST(AutoSession, StaleDbEntryIsEscalatedPastAndOverwritten) {
  // Hand-seed the DB with a spec that genuinely fails here: CG's
  // three-term recurrence breaks on the convection-dominated "stokes"
  // stand-in (residual blows up to ~1e24 and the iteration cap trips).
  // The entry is advisory: the solve must escalate through the ranked
  // candidates, converge, and replace it with the spec that worked.
  tune_db().clear();
  const auto p =
      std::make_shared<const PreparedProblem>(prepare_standin("stokes", -4));
  tune_db().store(p->fingerprint, "cg");

  Session s(p, "auto");
  const SolveResult r = s.solve();
  EXPECT_TRUE(r.converged) << status_name(r.status);
  EXPECT_FALSE(r.attempts.empty()) << "the seeded cg attempt should be on the trail";

  std::string text;
  ASSERT_TRUE(tune_db().lookup(p->fingerprint, text));
  EXPECT_NE(text, "cg") << "winning spec must overwrite the stale entry";
  EXPECT_NE(SolverSpec::parse(text).kind, "cg");
}

TEST(AutoSession, UnparseableDbEntryFallsBackToTuning) {
  tune_db().clear();
  const auto p =
      std::make_shared<const PreparedProblem>(prepare_standin("ecology2", -4));
  tune_db().store(p->fingerprint, "no-such-kind@fp99");

  Session s(p, "auto");
  EXPECT_TRUE(s.solve().converged);
  std::string text;
  ASSERT_TRUE(tune_db().lookup(p->fingerprint, text));
  EXPECT_NO_THROW(SolverSpec::parse(text)) << "re-tuning must repair the entry";
}

TEST(AutoSession, PrecisionPinIsHonored) {
  tune_db().clear();
  const auto p =
      std::make_shared<const PreparedProblem>(prepare_standin("ecology2", -4));
  Session s(p, "auto@fp32");
  const SolveResult r = s.solve();
  EXPECT_TRUE(r.converged);
  EXPECT_NE(s.solver_name().find("fp32"), std::string::npos) << s.solver_name();
  std::string text;
  ASSERT_TRUE(tune_db().lookup(p->fingerprint, text));
  EXPECT_EQ(SolverSpec::parse(text).prec, Prec::FP32) << text;
}

TEST(AutoSession, UserOptionTailCarriesOntoTheWinner) {
  // rtol travels: a looser target must be met (and reported) by whatever
  // engine the tuner picks.
  tune_db().clear();
  const auto p =
      std::make_shared<const PreparedProblem>(prepare_standin("thermal2", -4));
  Session s(p, "auto;rtol=1e-4");
  const SolveResult r = s.solve();
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.final_relres, 1e-4);
}

TEST(AutoSession, SolveManyDelegatesToTheChosenEngine) {
  tune_db().clear();
  const auto p =
      std::make_shared<const PreparedProblem>(prepare_standin("ecology2", -4));
  Session s(p, "auto;wave=2");
  const int k = 4;
  const std::vector<double> B = s.make_rhs_batch(k);
  std::vector<double> X(B.size(), 0.0);
  const auto rs = s.solve_many(std::span<const double>(B), std::span<double>(X), k);
  ASSERT_EQ(rs.size(), static_cast<std::size_t>(k));
  for (const SolveResult& r : rs) EXPECT_TRUE(r.converged) << r.solver;
}

}  // namespace
}  // namespace nk::tune
