// Autotuner layer 4: the fingerprint-keyed perf-DB (core/tune/perf_db.hpp).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/tune/perf_db.hpp"

namespace nk::tune {
namespace {

std::string temp_db_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(TuneDb, LookupStoreAndCounters) {
  TuneDb db;
  std::string spec;
  EXPECT_FALSE(db.lookup(0xabcu, spec));
  db.store(0xabcu, "cg@fp16");
  EXPECT_TRUE(db.lookup(0xabcu, spec));
  EXPECT_EQ(spec, "cg@fp16");
  db.store(0xabcu, "f3r@fp16");  // overwrite wins
  EXPECT_TRUE(db.lookup(0xabcu, spec));
  EXPECT_EQ(spec, "f3r@fp16");
  db.note_probes(3);
  const TuneDbStats s = db.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.probes, 3u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(TuneDb, FileRoundTrip) {
  const std::string path = temp_db_path("roundtrip.db");
  std::remove(path.c_str());
  {
    TuneDb db;
    db.attach_file(path);  // absent file: fine, created on first store
    db.store(0x00ffu, "cg@fp16");
    db.store(0xffff0000ffff0000u, "fgmres64/bj@fp16;nblocks=4");
  }
  // Versioned header plus one sorted line per entry.
  const std::string text = slurp(path);
  EXPECT_NE(text.find("# nkrylov-tune-db-v1"), std::string::npos);
  EXPECT_NE(text.find("00000000000000ff cg@fp16"), std::string::npos);
  EXPECT_NE(text.find("ffff0000ffff0000 fgmres64/bj@fp16;nblocks=4"), std::string::npos);

  TuneDb other;
  other.attach_file(path);
  std::string spec;
  EXPECT_TRUE(other.lookup(0x00ffu, spec));
  EXPECT_EQ(spec, "cg@fp16");
  EXPECT_TRUE(other.lookup(0xffff0000ffff0000u, spec));
  EXPECT_EQ(spec, "fgmres64/bj@fp16;nblocks=4");
  std::remove(path.c_str());
}

TEST(TuneDb, MalformedLinesSkippedNotFatal) {
  const std::string path = temp_db_path("corrupt.db");
  {
    std::ofstream out(path);
    out << "# nkrylov-tune-db-v1\n"
        << "\n"                                  // blank: skipped silently
        << "# a comment\n"                       // comment: skipped silently
        << "not-hex-at-all cg@fp16\n"            // bad key
        << "00000000000000aa\n"                  // no spec field
        << "00000000000000bb \n"                 // empty spec field
        << "00000000000000cc f3r@fp16\n";        // the one good entry
  }
  TuneDb db;
  db.attach_file(path);
  std::string spec;
  EXPECT_TRUE(db.lookup(0xccu, spec));
  EXPECT_EQ(spec, "f3r@fp16");
  EXPECT_FALSE(db.lookup(0xaau, spec));
  EXPECT_FALSE(db.lookup(0xbbu, spec));
  EXPECT_EQ(db.stats().entries, 1u);
  std::remove(path.c_str());
}

TEST(TuneDb, ClearDetachesAndZeroes) {
  const std::string path = temp_db_path("clear.db");
  TuneDb db;
  db.attach_file(path);
  db.store(1u, "cg");
  db.clear();
  const TuneDbStats s = db.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.probes, 0u);
  // Detached: a store after clear() must not touch the old file.
  const std::string before = slurp(path);
  db.store(2u, "f3r@fp16");
  EXPECT_EQ(slurp(path), before);
  std::remove(path.c_str());
}

TEST(TuneDb, ProcessSingletonIsStable) {
  TuneDb& a = tune_db();
  TuneDb& b = tune_db();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace nk::tune
