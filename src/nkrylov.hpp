// Umbrella header: the complete public API of the nkrylov library.
//
//   #include "nkrylov.hpp"
//
// pulls in the precision substrate, sparse formats and generators, all
// preconditioners, all solvers, and the nested-Krylov core (F3R).
// Individual headers remain includable for finer-grained dependencies.
#pragma once

// base: precision substrate and utilities
#include "base/blas1.hpp"
#include "base/blas_block.hpp"
#include "base/env.hpp"
#include "base/half.hpp"
#include "base/options.hpp"
#include "base/rng.hpp"
#include "base/table.hpp"
#include "base/timer.hpp"
#include "base/workspace.hpp"

// sparse: formats, kernels, IO, workload generators
#include "sparse/coo_builder.hpp"
#include "sparse/csr.hpp"
#include "sparse/gen/convdiff.hpp"
#include "sparse/gen/laplace.hpp"
#include "sparse/gen/random_matrix.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/gen/suite_standins.hpp"
#include "sparse/io_matrix_market.hpp"
#include "sparse/scaling.hpp"
#include "sparse/sell.hpp"
#include "sparse/spmm.hpp"
#include "sparse/spmv.hpp"
#include "sparse/stats.hpp"

// precond: primary preconditioners
#include "precond/ainv.hpp"
#include "precond/block_jacobi_ic0.hpp"
#include "precond/block_jacobi_ilu0.hpp"
#include "precond/jacobi.hpp"
#include "precond/neumann.hpp"
#include "precond/preconditioner.hpp"
#include "precond/ssor.hpp"

// krylov: solvers
#include "krylov/bicgstab.hpp"
#include "krylov/cg.hpp"
#include "krylov/chebyshev.hpp"
#include "krylov/fgmres.hpp"
#include "krylov/history.hpp"
#include "krylov/operator.hpp"
#include "krylov/richardson.hpp"

// core: the nested-Krylov framework, F3R, and the descriptor-driven API
#include "core/cost_model.hpp"
#include "core/engine.hpp"
#include "core/f3r.hpp"
#include "core/fingerprint.hpp"
#include "core/nested_builder.hpp"
#include "core/problem.hpp"
#include "core/registry.hpp"
#include "core/runner.hpp"
#include "core/session.hpp"
#include "core/spec.hpp"
#include "core/variants.hpp"

// core/tune: the Session("auto") autotuner (features -> cost-model
// shortlist -> probe solves -> fingerprint-keyed perf-DB)
#include "core/tune/features.hpp"
#include "core/tune/perf_db.hpp"
#include "core/tune/shortlist.hpp"
#include "core/tune/tuner.hpp"
