// Richardson iteration with adaptive weight updating (Algorithm 1).
//
// This is the innermost solver of F3R: a stationary iteration
//
//     z_k = z_{k-1} + ω_k M (v − A z_{k-1}),    z_0 = 0,
//
// run for a fixed, small m (default 2) as the flexible preconditioner of
// its parent FGMRES.  The weight matters because Richardson's convergence
// is governed by the spectral radius of I − ωMA (Assumption (ii) of the
// paper).  The adaptive scheme:
//
//   * keeps one weight ω_k per inner iteration index k, initialized to 1;
//   * every c-th invocation (default 64) computes the locally optimal
//         ω'_k = (r_{k-1}, AMr_{k-1}) / (AMr_{k-1}, AMr_{k-1}),
//     uses ω'_k for that step, and folds it into a running average
//         ω_k ← (l·ω_k + ω'_k)/(l+1),  l = invocation count / c;
//   * state (ω_k, call counter) persists across invocations because the
//     optimal weight is a property of M·A, not of the right-hand side.
//
// Per the paper, everything runs in the solver's vector precision (fp16 in
// fp16-F3R) except the ω' computation, which is carried out in fp32: the
// SpMV A·(Mr) reads the fp16 matrix but accumulates in fp32 via a separate
// fp32-vector operator, and both reductions accumulate fp32.
//
// Lifecycle: setup(a, m, a32) binds a system and acquires the working
// vectors from a SolverWorkspace (shared or private); the adaptive state
// (ω_k, counters) is solver-owned and survives setup — call reset_state()
// when moving to an unrelated system.  Batched application goes through
// the inherited Preconditioner::apply_many, which processes columns in
// invocation order: Algorithm 1's shared adaptive state makes the column
// sequence part of the math, so a batch must see exactly the invocation
// order k sequential apply() calls would produce.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "base/blas1.hpp"
#include "base/workspace.hpp"
#include "krylov/operator.hpp"
#include "precond/preconditioner.hpp"

namespace nk {

template <class VT>
class RichardsonSolver final : public Preconditioner<VT> {
 public:
  struct Config {
    int m = 2;               ///< iterations per invocation (paper m4)
    int cycle = 64;          ///< weight-update period c
    bool adaptive = true;    ///< false → use fixed_weight for every step
    float fixed_weight = 1.0f;
  };

  /// Deferred-setup construction (no allocation until setup()).
  explicit RichardsonSolver(Config cfg, SolverWorkspace* ws = nullptr,
                            std::string key = "richardson")
      : cfg_(cfg), ws_(ws), key_(std::move(key)) {
    weights_.assign(static_cast<std::size_t>(cfg_.m), 1.0f);
  }

  /// Construct and set up in one step (the pre-workspace API).  `a32` is
  /// the fp32-accumulation operator for the ω' computation; when null the
  /// native operator is used (fp64/fp32 configurations, where the native
  /// precision is already ≥ fp32).
  RichardsonSolver(Operator<VT>& a, Preconditioner<VT>& m, Config cfg,
                   Operator<float>* a32 = nullptr, SolverWorkspace* ws = nullptr,
                   std::string key = "richardson")
      : RichardsonSolver(cfg, ws, std::move(key)) {
    setup(a, m, a32);
  }

  // Buffer spans point into own_ (or the shared workspace); a copy would
  // alias them.
  RichardsonSolver(const RichardsonSolver&) = delete;
  RichardsonSolver& operator=(const RichardsonSolver&) = delete;

  /// Bind a system; acquires (or reuses) workspace vectors.  Adaptive
  /// state is preserved — reset_state() starts a new system family.
  void setup(Operator<VT>& a, Preconditioner<VT>& m, Operator<float>* a32 = nullptr) {
    a_ = &a;
    m_ = &m;
    a32_ = a32;
    const std::size_t n = static_cast<std::size_t>(a.size());
    SolverWorkspace& w = wsref();
    this->set_backend(w.backend());  // kernel dispatch follows the workspace
    r_ = w.get<VT>(key_ + ".r", n);
    mr_ = w.get<VT>(key_ + ".mr", n);
    amr_ = {};
    if (a32_ != nullptr) {
      rf_ = w.get<float>(key_ + ".rf", n);
      mrf_ = w.get<float>(key_ + ".mrf", n);
      amrf_ = w.get<float>(key_ + ".amrf", n);
    }
  }

  /// One invocation of Algorithm 1: m iterations from z = 0.
  void apply(std::span<const VT> v, std::span<VT> z) override {
    ++cntr_;
    const bool update = cfg_.adaptive && (cntr_ % static_cast<std::uint64_t>(cfg_.cycle) == 0);
    this->kern_table().set_zero(z);
    for (int k = 0; k < cfg_.m; ++k) {
      // r_{k-1} = v − A z_{k-1};  r_0 = v without computation.
      std::span<const VT> r;
      if (k == 0) {
        r = v;
      } else {
        a_->residual(v, std::span<const VT>(z.data(), z.size()),
                     std::span<VT>(r_.data(), r_.size()));
        r = std::span<const VT>(r_.data(), r_.size());
      }
      m_->apply(r, std::span<VT>(mr_.data(), mr_.size()));  // Mr in the native precision

      float w;
      if (update) {
        const float wp = local_optimal_weight(r);
        // ω_k ← (l·ω_k + ω'_k)/(l+1), and use ω'_k for this step (it
        // minimizes the residual right now).
        const auto l = static_cast<float>(cntr_ / static_cast<std::uint64_t>(cfg_.cycle));
        weights_[k] = (l * weights_[k] + wp) / (l + 1.0f);
        ++updates_;
        w = wp;
      } else {
        w = cfg_.adaptive ? weights_[k] : cfg_.fixed_weight;
      }
      this->kern_table().axpy(w, std::span<const VT>(mr_.data(), mr_.size()), z);  // z += w · Mr
    }
  }

  [[nodiscard]] index_t size() const override { return a_->size(); }

  /// Current per-step weights (tests / diagnostics).
  [[nodiscard]] const std::vector<float>& weights() const { return weights_; }
  [[nodiscard]] std::uint64_t invocations() const { return cntr_; }
  [[nodiscard]] std::uint64_t weight_updates() const { return updates_; }

  /// Reset Algorithm 1 state (new linear system family).
  void reset_state() {
    cntr_ = 0;
    updates_ = 0;
    std::fill(weights_.begin(), weights_.end(), 1.0f);
  }

 private:
  [[nodiscard]] SolverWorkspace& wsref() { return ws_ != nullptr ? *ws_ : own_; }

  /// ω' = (r, AMr)/(AMr, AMr) computed in fp32.
  float local_optimal_weight(std::span<const VT> r) {
    if (a32_ != nullptr) {
      // fp32 path: convert r and Mr, run the fp32-vector SpMV (fp16 matrix,
      // fp32 accumulate), reduce in fp32.
      this->kern_table().convert(r, std::span<float>(rf_.data(), rf_.size()));
      this->kern_table().convert(std::span<const VT>(mr_.data(), mr_.size()),
                    std::span<float>(mrf_.data(), mrf_.size()));
      a32_->apply(std::span<const float>(mrf_.data(), mrf_.size()),
                  std::span<float>(amrf_.data(), amrf_.size()));
      const float num = this->kern_table().dot(std::span<const float>(rf_.data(), rf_.size()),
                                  std::span<const float>(amrf_.data(), amrf_.size()));
      const float den = this->kern_table().dot(std::span<const float>(amrf_.data(), amrf_.size()),
                                  std::span<const float>(amrf_.data(), amrf_.size()));
      return den > 0.0f ? num / den : 1.0f;
    }
    // Native path (VT is fp32 or fp64): amr uses a lazily-acquired buffer.
    a_->apply(std::span<const VT>(mr_.data(), mr_.size()), amr_native_workspace());
    const auto num = this->kern_table().dot(r, std::span<const VT>(amr_.data(), amr_.size()));
    const auto den = this->kern_table().dot(std::span<const VT>(amr_.data(), amr_.size()),
                               std::span<const VT>(amr_.data(), amr_.size()));
    return den > 0 ? static_cast<float>(num / den) : 1.0f;
  }

  std::span<VT> amr_native_workspace() {
    if (amr_.empty()) {
      SolverWorkspace& w = wsref();
      amr_ = w.get<VT>(key_ + ".amr", r_.size());
    }
    return amr_;
  }

  Operator<VT>* a_ = nullptr;
  Preconditioner<VT>* m_ = nullptr;
  Operator<float>* a32_ = nullptr;
  Config cfg_;
  SolverWorkspace* ws_ = nullptr;
  SolverWorkspace own_;
  std::string key_;

  std::span<VT> r_, mr_, amr_;
  std::span<float> rf_, mrf_, amrf_;    // fp32 ω' workspaces
  std::vector<float> weights_;          // ω_k, persistent across invocations
  std::uint64_t cntr_ = 0;              // invocation counter (Algorithm 1)
  std::uint64_t updates_ = 0;
};

}  // namespace nk
