// Explicit instantiations of the Richardson solver for the three vector
// precisions (half is the paper's innermost configuration).
#include "krylov/richardson.hpp"

namespace nk {

template class RichardsonSolver<double>;
template class RichardsonSolver<float>;
template class RichardsonSolver<half>;

}  // namespace nk
