// Preconditioned Chebyshev iteration — an alternative reduction-free inner
// solver for the nested framework.
//
// The nested-Krylov literature the paper builds on (McInnes et al. 2014)
// uses Chebyshev as an inner solver precisely because, like Richardson, it
// needs no inner products: only SpMVs, preconditioner applications, and
// scalar recurrences — attractive for low precision and for communication
// avoidance.  Chebyshev needs bounds [λmin, λmax] on the spectrum of M⁻¹A;
// we estimate λmax by power iteration on M⁻¹A and set λmin = λmax / ratio
// (the standard smoothing heuristic), both computed once at setup.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "backend/kernels.hpp"
#include "base/backend.hpp"
#include "base/blas1.hpp"
#include "krylov/operator.hpp"
#include "precond/preconditioner.hpp"

namespace nk {

/// Largest-eigenvalue estimate of M⁻¹A by power iteration (fp64 vectors
/// recommended; the estimate only steers the Chebyshev ellipse).
template <class VT>
double estimate_lambda_max(Operator<VT>& a, Preconditioner<VT>& m, int iters,
                           std::uint64_t seed = 1234,
                           Backend be = Backend::kHost) {
  const kern::Kernels kx(be);
  const std::size_t n = static_cast<std::size_t>(a.size());
  std::vector<VT> v(n), av(n), mav(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<VT>(0.5 + 0.5 * std::sin(static_cast<double>(i + seed)));
  double lambda = 1.0;
  for (int k = 0; k < iters; ++k) {
    const auto nv = kx.nrm2(std::span<const VT>(v));
    if (!(static_cast<double>(nv) > 0.0)) break;
    kx.scal(decltype(nv){1} / nv, std::span<VT>(v));
    a.apply(std::span<const VT>(v), std::span<VT>(av));
    m.apply(std::span<const VT>(av), std::span<VT>(mav));
    lambda = static_cast<double>(
        kx.dot(std::span<const VT>(v), std::span<const VT>(mav)));
    std::swap(v, mav);
  }
  return std::abs(lambda);
}

/// Fixed-iteration preconditioned Chebyshev usable at any nesting level.
template <class VT>
class ChebyshevSolver final : public Preconditioner<VT> {
 public:
  struct Config {
    int m = 4;                  ///< iterations per invocation
    double lambda_max = 0.0;    ///< 0 → estimate at construction
    double eig_ratio = 10.0;    ///< λmin = λmax / eig_ratio
    int power_iters = 12;       ///< power-iteration steps for the estimate
    double safety = 1.1;        ///< λmax inflation guard
  };

  ChebyshevSolver(Operator<VT>& a, Preconditioner<VT>& m, Config cfg,
                  Backend be = Backend::kHost)
      : a_(&a), m_(&m), cfg_(cfg) {
    this->set_backend(be);
    const std::size_t n = static_cast<std::size_t>(a.size());
    r_.resize(n);
    z_.resize(n);
    p_.resize(n);
    double lmax = cfg_.lambda_max;
    if (lmax <= 0.0) lmax = estimate_lambda_max(a, m, cfg_.power_iters, 1234, be);
    lmax *= cfg_.safety;
    const double lmin = lmax / cfg_.eig_ratio;
    theta_ = 0.5 * (lmax + lmin);
    delta_ = 0.5 * (lmax - lmin);
    if (delta_ <= 0.0) delta_ = 0.5 * theta_;
  }

  /// One invocation: m Chebyshev steps from z = 0 (Saad, Alg. 12.1 with
  /// preconditioning folded in).
  void apply(std::span<const VT> v, std::span<VT> x) override {
    using S = acc_t<VT>;
    this->kern_table().set_zero(x);
    this->kern_table().copy(v, std::span<VT>(r_));  // r = v − A·0
    const double sigma1 = theta_ / delta_;
    double rho = 1.0 / sigma1;
    // p = (1/θ) M r
    m_->apply(std::span<const VT>(r_), std::span<VT>(z_));
    this->kern_table().copy(std::span<const VT>(z_), std::span<VT>(p_));
    this->kern_table().scal(static_cast<S>(1.0 / theta_), std::span<VT>(p_));
    for (int k = 0; k < cfg_.m; ++k) {
      this->kern_table().axpy(S{1}, std::span<const VT>(p_), x);
      if (k + 1 == cfg_.m) break;
      a_->residual(v, std::span<const VT>(x.data(), x.size()), std::span<VT>(r_));
      m_->apply(std::span<const VT>(r_), std::span<VT>(z_));
      const double rho_next = 1.0 / (2.0 * sigma1 - rho);
      // p ← ρ'ρ p + (2ρ'/δ) z
      this->kern_table().axpby(static_cast<S>(2.0 * rho_next / delta_), std::span<const VT>(z_),
                  static_cast<S>(rho_next * rho), std::span<VT>(p_));
      rho = rho_next;
    }
  }

  [[nodiscard]] index_t size() const override { return a_->size(); }
  [[nodiscard]] double theta() const { return theta_; }
  [[nodiscard]] double delta() const { return delta_; }

 private:
  Operator<VT>* a_;
  Preconditioner<VT>* m_;
  Config cfg_;
  double theta_ = 1.0, delta_ = 0.5;
  std::vector<VT> r_, z_, p_;
};

}  // namespace nk
