// Explicit instantiations of FGMRES for the three vector precisions.
// fp64/fp32 appear at levels 1-3 of F3R; the half instantiation backs the
// fp16-F2 / fp16-F3 ablation solvers of Section 6.2.
#include "krylov/fgmres.hpp"

namespace nk {

template class FgmresSolver<double>;
template class FgmresSolver<float>;
template class FgmresSolver<half>;

}  // namespace nk
