#include "krylov/history.hpp"

#include <cmath>
#include <sstream>

namespace nk {

const char* status_name(SolveStatus s) noexcept {
  switch (s) {
    case SolveStatus::kConverged: return "converged";
    case SolveStatus::kMaxIters: return "max_iters";
    case SolveStatus::kBreakdown: return "breakdown";
    case SolveStatus::kDiverged: return "diverged";
    case SolveStatus::kNonFinite: return "non_finite";
    case SolveStatus::kStagnated: return "stagnated";
    case SolveStatus::kInvalidInput: return "invalid_input";
  }
  return "unknown";
}

std::string summarize(const SolveResult& r) {
  std::ostringstream os;
  os << r.solver << ": " << status_name(r.status);
  if (!r.failure.empty()) os << " (" << r.failure << ")";
  os << " in " << r.iterations << " outer its / " << r.precond_invocations
     << " M-applies, ";
  os.precision(3);
  os << r.seconds << " s, relres ";
  os.precision(2);
  os << std::scientific << r.final_relres;
  if (!r.attempts.empty()) {
    os << " [after";
    for (const std::string& a : r.attempts) os << " {" << a << "}";
    os << "]";
  }
  return os.str();
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += std::log(x);
  return std::exp(s / static_cast<double>(xs.size()));
}

}  // namespace nk
