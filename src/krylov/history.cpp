#include "krylov/history.hpp"

#include <cmath>
#include <sstream>

namespace nk {

std::string summarize(const SolveResult& r) {
  std::ostringstream os;
  os << r.solver << ": " << (r.converged ? "converged" : "FAILED") << " in " << r.iterations
     << " outer its / " << r.precond_invocations << " M-applies, ";
  os.precision(3);
  os << r.seconds << " s, relres ";
  os.precision(2);
  os << std::scientific << r.final_relres;
  return os.str();
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += std::log(x);
  return std::exp(s / static_cast<double>(xs.size()));
}

}  // namespace nk
