// Preconditioned Conjugate Gradient — the paper's baseline for symmetric
// positive definite systems ("CG is the de facto standard for SPD").
//
// The paper's fp64-CG / fp32-CG / fp16-CG are all fp64 solvers differing
// only in the storage precision of the preconditioner, which is handled by
// the PrimaryPrecond handle the caller passes in.
//
// Lifecycle: setup(a, m) binds a system and acquires the four working
// vectors from a SolverWorkspace (shared or private); solve()/solve_many()
// then run with zero per-call allocation, and a later setup() against an
// equally-sized matrix reuses the same memory.
//
// solve_many() advances k right-hand sides in lockstep: one batched SpMM
// and one batched preconditioner sweep per iteration stream the matrix and
// the factors once for the whole batch, and the per-column reductions run
// interleaved (dot_cols/nrm2_cols) so their k dependency chains overlap.
// Per column every operation reproduces solve()'s — batched and
// sequential solves agree to the last bit whenever the underlying blas1
// reductions are deterministic (single-threaded or below the parallel
// threshold; the regime the exactness tests pin), and to rounding level
// otherwise.  Columns converge (or break down) independently and are
// frozen the moment they finish.
//
// Active-set compaction (default): when a column retires, the survivors
// are compacted into the leading columns of the interleaved R/Z/P/Q
// panels (an active→original index map scatters the x updates back to
// caller positions), so every SpMM, preconditioner sweep, and column
// reduction runs at the CURRENT width — re-dispatching through the
// compile-time k = 4/8/16 kernel tiers as the set shrinks — instead of
// paying full width k until the last straggler finishes.  Compaction
// moves column data verbatim and never reorders any per-column operation,
// so iterates stay bit-identical to solve().  The `wave` argument turns
// the same loop into a ragged-batch scheduler: k right-hand sides are
// dispatched at most `wave` at a time, and a slot freed by a retiring
// column is refilled from the pending queue at the next iteration
// boundary — one workspace, sized for the wave, serves the whole batch.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "backend/kernels.hpp"
#include "base/panel.hpp"
#include "base/workspace.hpp"
#include "krylov/history.hpp"
#include "krylov/operator.hpp"
#include "precond/preconditioner.hpp"

namespace nk {

template <class VT = double>
class CgSolver {
 public:
  struct Config {
    double rtol = 1e-8;     ///< on ‖r‖ / ‖b‖ (recurrence residual)
    int max_iters = 19200;  ///< the paper's iteration cap
    bool record_history = false;
    /// Stagnation guard: stop with SolveStatus::kStagnated after this many
    /// consecutive iterations without relative-residual progress (rnorm
    /// failing to improve on 0.99× the best seen).  0 = off (default; the
    /// conformance-pinned behavior).  Pure comparisons on the already-
    /// computed norms — iterate streams are untouched.
    int stagnate_window = 0;
    /// Per-iteration non-finite panel scan (batched paths): after the
    /// residual update, scan the R panel with blas::has_nonfinite and
    /// retire any poisoned column with kNonFinite("panel").  Off by
    /// default — the residual-NORM check already catches NaN for free;
    /// this is the belt-and-braces mode the guard-overhead bench pins.
    bool guard_panels = false;
    /// Batched scheduling: true (default) = active-set compaction (kernels
    /// run at the current active width); false = the PR 3 masked-lockstep
    /// reference path (full-width kernels, per-column apply fallback),
    /// kept for A/B benching.  Iterates are bit-identical either way.
    bool compact = true;
    /// Storage layout of the compact scheduler's survivor panels (see
    /// base/panel.hpp): kColMajor interleaves the live columns so every
    /// width-na kernel streams unit-stride over exactly the active set.
    /// Unset = the workspace's panel_layout() default.  Per-column
    /// operation order is preserved — iterates are bit-identical.
    std::optional<PanelLayout> layout;
  };

  /// Deferred-setup construction (no allocation until setup()).
  explicit CgSolver(Config cfg, SolverWorkspace* ws = nullptr, std::string key = "cg")
      : cfg_(cfg), ws_(ws), key_(std::move(key)) {}

  /// Construct and set up in one step (the pre-workspace API).
  CgSolver(Operator<VT>& a, Preconditioner<VT>& m, Config cfg,
           SolverWorkspace* ws = nullptr, std::string key = "cg")
      : CgSolver(cfg, ws, std::move(key)) {
    setup(a, m);
  }

  // Buffer spans point into own_ (or the shared workspace); a copy would
  // alias them.  Two live solvers on one workspace need distinct keys.
  CgSolver(const CgSolver&) = delete;
  CgSolver& operator=(const CgSolver&) = delete;

  /// Bind a system; acquires (or reuses) the workspace vectors.  The
  /// kernel dispatch table is rebound here too: solvers run on whatever
  /// backend the workspace was built for.
  void setup(Operator<VT>& a, Preconditioner<VT>& m) {
    a_ = &a;
    m_ = &m;
    n_ = static_cast<std::size_t>(a.size());
    SolverWorkspace& w = wsref();
    kx_ = kern::Kernels(w.backend());
    r_ = w.get<VT>(key_ + ".r", n_);
    z_ = w.get<VT>(key_ + ".z", n_);
    p_ = w.get<VT>(key_ + ".p", n_);
    q_ = w.get<VT>(key_ + ".q", n_);
  }

  /// Solve A x = b from the given initial guess; returns iteration data.
  /// (final_relres / seconds / solver name are filled by the caller, which
  /// owns true-residual evaluation and timing.)
  SolveResult solve(std::span<const VT> b, std::span<VT> x);

  /// Batched solve: k systems A x_c = b_c in lockstep (column c of B/X at
  /// b + c·ldb / x + c·ldx).  Per column bit-identical to solve().
  /// `wave` > 0 caps the dispatch width: the batch runs as waves of at most
  /// `wave` columns, refilled from the pending queue as columns retire
  /// (0 = whole batch at once).  Waves require the compacting scheduler;
  /// the masked reference path (Config::compact = false) is always full
  /// lockstep and ignores `wave`.
  std::vector<SolveResult> solve_many(const VT* b, std::ptrdiff_t ldb, VT* x,
                                      std::ptrdiff_t ldx, int k, int wave = 0);

 private:
  void solve_many_masked(const VT* b, std::ptrdiff_t ldb, VT* x, std::ptrdiff_t ldx,
                         int k, std::vector<SolveResult>& res);
  void solve_many_compact(const VT* b, std::ptrdiff_t ldb, VT* x, std::ptrdiff_t ldx,
                          int k, int wave, std::vector<SolveResult>& res);

  [[nodiscard]] SolverWorkspace& wsref() { return ws_ != nullptr ? *ws_ : own_; }

  Operator<VT>* a_ = nullptr;
  Preconditioner<VT>* m_ = nullptr;
  Config cfg_;
  std::size_t n_ = 0;
  SolverWorkspace* ws_ = nullptr;
  SolverWorkspace own_;
  std::string key_;
  kern::Kernels kx_;
  std::span<VT> r_, z_, p_, q_;
};

}  // namespace nk
