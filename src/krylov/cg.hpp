// Preconditioned Conjugate Gradient — the paper's baseline for symmetric
// positive definite systems ("CG is the de facto standard for SPD").
//
// The paper's fp64-CG / fp32-CG / fp16-CG are all fp64 solvers differing
// only in the storage precision of the preconditioner, which is handled by
// the PrimaryPrecond handle the caller passes in.
#pragma once

#include <span>
#include <vector>

#include "krylov/history.hpp"
#include "krylov/operator.hpp"
#include "precond/preconditioner.hpp"

namespace nk {

template <class VT = double>
class CgSolver {
 public:
  struct Config {
    double rtol = 1e-8;     ///< on ‖r‖ / ‖b‖ (recurrence residual)
    int max_iters = 19200;  ///< the paper's iteration cap
    bool record_history = false;
  };

  CgSolver(Operator<VT>& a, Preconditioner<VT>& m, Config cfg) : a_(&a), m_(&m), cfg_(cfg) {
    const std::size_t n = static_cast<std::size_t>(a.size());
    r_.resize(n);
    z_.resize(n);
    p_.resize(n);
    q_.resize(n);
  }

  /// Solve A x = b from the given initial guess; returns iteration data.
  /// (final_relres / seconds / solver name are filled by the caller, which
  /// owns true-residual evaluation and timing.)
  SolveResult solve(std::span<const VT> b, std::span<VT> x);

 private:
  Operator<VT>* a_;
  Preconditioner<VT>* m_;
  Config cfg_;
  std::vector<VT> r_, z_, p_, q_;
};

}  // namespace nk
