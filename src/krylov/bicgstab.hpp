// Preconditioned BiCGStab (van der Vorst; Saad 2003) — the paper's baseline
// for nonsymmetric systems.  Each iteration applies the preconditioner
// twice and the operator twice, which is why Table 3 reports invocation
// counts rather than iteration counts for cross-solver comparability.
#pragma once

#include <span>
#include <vector>

#include "krylov/history.hpp"
#include "krylov/operator.hpp"
#include "precond/preconditioner.hpp"

namespace nk {

template <class VT = double>
class BiCgStabSolver {
 public:
  struct Config {
    double rtol = 1e-8;
    int max_iters = 19200;  ///< iteration cap (each = 2 preconditioner calls)
    bool record_history = false;
  };

  BiCgStabSolver(Operator<VT>& a, Preconditioner<VT>& m, Config cfg)
      : a_(&a), m_(&m), cfg_(cfg) {
    const std::size_t n = static_cast<std::size_t>(a.size());
    r_.resize(n);
    rhat_.resize(n);
    p_.resize(n);
    v_.resize(n);
    s_.resize(n);
    t_.resize(n);
    phat_.resize(n);
    shat_.resize(n);
  }

  SolveResult solve(std::span<const VT> b, std::span<VT> x);

 private:
  Operator<VT>* a_;
  Preconditioner<VT>* m_;
  Config cfg_;
  std::vector<VT> r_, rhat_, p_, v_, s_, t_, phat_, shat_;
};

}  // namespace nk
