// Preconditioned BiCGStab (van der Vorst; Saad 2003) — the paper's baseline
// for nonsymmetric systems.  Each iteration applies the preconditioner
// twice and the operator twice, which is why Table 3 reports invocation
// counts rather than iteration counts for cross-solver comparability.
//
// Lifecycle mirrors CgSolver: setup(a, m) binds a system and acquires the
// eight working vectors from a SolverWorkspace; solve()/solve_many() then
// run with zero per-call allocation.  solve_many() advances k right-hand
// sides in lockstep — the two operator and two preconditioner applications
// per iteration each stream the matrix/factors once for the whole batch,
// and the six reductions run column-interleaved — reproducing solve()'s
// per-column operations bit-for-bit whenever the blas1 reductions are
// deterministic (single-threaded / below the parallel threshold), and to
// rounding level otherwise.
//
// Like CgSolver, the batched path defaults to active-set compaction with a
// ragged-wave scheduler (see cg.hpp for the scheme): survivors are
// compacted into the leading panel columns so every kernel runs at the
// current width, retiring columns hand their slots to pending right-hand
// sides, and an active→original map scatters x updates to caller columns.
// Compaction moves data verbatim — iterates remain bit-identical.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "backend/kernels.hpp"
#include "base/panel.hpp"
#include "base/workspace.hpp"
#include "krylov/history.hpp"
#include "krylov/operator.hpp"
#include "precond/preconditioner.hpp"

namespace nk {

template <class VT = double>
class BiCgStabSolver {
 public:
  struct Config {
    double rtol = 1e-8;
    int max_iters = 19200;  ///< iteration cap (each = 2 preconditioner calls)
    bool record_history = false;
    /// Stagnation guard (see CgSolver::Config::stagnate_window): stop with
    /// kStagnated after this many consecutive iterations without relative-
    /// residual progress.  0 = off (default).
    int stagnate_window = 0;
    /// true (default) = active-set compaction; false = the PR 3 masked
    /// lockstep reference path (kept for A/B benching).  Bit-identical.
    bool compact = true;
    /// Survivor-panel layout for the compact scheduler (see base/panel.hpp
    /// and CgSolver::Config::layout).  Unset = the workspace default.
    std::optional<PanelLayout> layout;
  };

  /// Deferred-setup construction (no allocation until setup()).
  explicit BiCgStabSolver(Config cfg, SolverWorkspace* ws = nullptr,
                          std::string key = "bicgstab")
      : cfg_(cfg), ws_(ws), key_(std::move(key)) {}

  /// Construct and set up in one step (the pre-workspace API).
  BiCgStabSolver(Operator<VT>& a, Preconditioner<VT>& m, Config cfg,
                 SolverWorkspace* ws = nullptr, std::string key = "bicgstab")
      : BiCgStabSolver(cfg, ws, std::move(key)) {
    setup(a, m);
  }

  // Buffer spans point into own_ (or the shared workspace); a copy would
  // alias them.
  BiCgStabSolver(const BiCgStabSolver&) = delete;
  BiCgStabSolver& operator=(const BiCgStabSolver&) = delete;

  /// Bind a system; acquires (or reuses) the workspace vectors.
  void setup(Operator<VT>& a, Preconditioner<VT>& m) {
    a_ = &a;
    m_ = &m;
    n_ = static_cast<std::size_t>(a.size());
    SolverWorkspace& w = wsref();
    kx_ = kern::Kernels(w.backend());
    r_ = w.get<VT>(key_ + ".r", n_);
    rhat_ = w.get<VT>(key_ + ".rhat", n_);
    p_ = w.get<VT>(key_ + ".p", n_);
    v_ = w.get<VT>(key_ + ".v", n_);
    s_ = w.get<VT>(key_ + ".s", n_);
    t_ = w.get<VT>(key_ + ".t", n_);
    phat_ = w.get<VT>(key_ + ".phat", n_);
    shat_ = w.get<VT>(key_ + ".shat", n_);
  }

  SolveResult solve(std::span<const VT> b, std::span<VT> x);

  /// Batched solve: k systems in lockstep (column c of B/X at b + c·ldb /
  /// x + c·ldx).  Per column bit-identical to solve().  `wave` > 0 caps
  /// the dispatch width (ragged waves refilled as columns retire); the
  /// masked reference path (Config::compact = false) ignores it.
  std::vector<SolveResult> solve_many(const VT* b, std::ptrdiff_t ldb, VT* x,
                                      std::ptrdiff_t ldx, int k, int wave = 0);

 private:
  void solve_many_masked(const VT* b, std::ptrdiff_t ldb, VT* x, std::ptrdiff_t ldx,
                         int k, std::vector<SolveResult>& res);
  void solve_many_compact(const VT* b, std::ptrdiff_t ldb, VT* x, std::ptrdiff_t ldx,
                          int k, int wave, std::vector<SolveResult>& res);

  [[nodiscard]] SolverWorkspace& wsref() { return ws_ != nullptr ? *ws_ : own_; }

  Operator<VT>* a_ = nullptr;
  Preconditioner<VT>* m_ = nullptr;
  Config cfg_;
  std::size_t n_ = 0;
  SolverWorkspace* ws_ = nullptr;
  SolverWorkspace own_;
  std::string key_;
  kern::Kernels kx_;
  std::span<VT> r_, rhat_, p_, v_, s_, t_, phat_, shat_;
};

}  // namespace nk
