// Flexible GMRES (Saad 1993) — the building block of the nested Krylov
// framework.
//
// Flexible means the preconditioner may change between iterations, which is
// exactly what a nested inner solver is; FGMRES therefore stores the
// preconditioned basis Z alongside the Arnoldi basis V and forms the
// update from Z.
//
// Implementation follows the paper: classical Gram-Schmidt for the Arnoldi
// process and Givens rotations for the least-squares QR, with all Arnoldi /
// QR scalars and vectors held in the solver's vector precision VT (fp32 in
// the inner levels of F3R; reductions over fp16 inputs accumulate fp32).
//
// The Arnoldi basis V and the preconditioned basis Z live in single
// contiguous row-major buffers (vector j at offset j·n), and the CGS
// projection / correction / normalization run through the fused kernels in
// base/blas_block.hpp (dot_many / axpy_many / scal_copy): one pass over the
// basis block per step instead of 2(j+1) blas1 launches re-reading w.  The
// fused kernels reproduce the blas1 operation sequence bit-for-bit (see
// blas_block.hpp), so only the schedule changed, not the math.
//
// The same class serves two roles:
//   * inner solver: apply() — solve A z ≈ v from a zero initial guess for
//     exactly m iterations, no convergence test (the paper checks
//     convergence only in the outermost solver);
//   * outer solver: run() — iterate from a given x with an absolute
//     residual target, reporting the Givens residual estimate.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "base/blas1.hpp"
#include "base/blas_block.hpp"
#include "krylov/operator.hpp"
#include "precond/preconditioner.hpp"

namespace nk {

template <class VT>
class FgmresSolver final : public Preconditioner<VT> {
 public:
  /// Scalar type of the Arnoldi/QR data (fp32 for VT=half).
  using S = acc_t<VT>;

  struct Config {
    int m = 8;  ///< Krylov dimension per invocation / restart cycle
    /// Dynamic inner termination (the paper's second future-work item):
    /// when > 0 and the solver is used as an inner solver (apply()), stop
    /// as soon as the Givens residual estimate has dropped below
    /// inner_rtol · ‖v‖ instead of always running all m iterations.
    double inner_rtol = 0.0;
  };

  struct RunStats {
    int iters = 0;                 ///< Arnoldi steps performed
    double residual_est = 0.0;     ///< Givens estimate of ‖b − Ax‖₂
    bool reached_target = false;
  };

  FgmresSolver(Operator<VT>& a, Preconditioner<VT>& m, Config cfg)
      : a_(&a), m_(&m), cfg_(cfg), n_(static_cast<std::size_t>(a.size())) {
    const std::size_t mm = static_cast<std::size_t>(cfg_.m);
    vbuf_.assign((mm + 1) * n_, VT{0});
    zbuf_.assign(mm * n_, VT{0});
    w_.resize(n_);
    h_.assign((mm + 1) * mm, S{0});
    g_.assign(mm + 1, S{0});
    cs_.assign(mm, S{0});
    sn_.assign(mm, S{0});
    y_.assign(mm, S{0});
    hcol_.assign(mm + 1, S{0});
  }

  /// Inner-solver interface: z ≈ A⁻¹ v, zero initial guess, m iterations
  /// (fewer when Config::inner_rtol enables dynamic termination).
  void apply(std::span<const VT> v, std::span<VT> z) override {
    blas::set_zero(z);
    double target = 0.0;
    if (cfg_.inner_rtol > 0.0)
      target = cfg_.inner_rtol * static_cast<double>(blas::nrm2(v));
    run(v, z, target, /*x_nonzero=*/false);
  }

  /// Outer-solver interface: continue from x; stop when the Givens residual
  /// estimate drops below `abs_target` (0 → run all m iterations).
  RunStats run(std::span<const VT> b, std::span<VT> x, double abs_target,
               bool x_nonzero = true) {
    const auto n = b.size();
    RunStats stats;

    // r0 (x = 0 ⇒ r0 = b without an SpMV).
    if (x_nonzero) {
      a_->residual(b, std::span<const VT>(x.data(), n), vcol(0));
    } else {
      blas::copy(b, vcol(0));
    }
    const S beta = blas::nrm2(std::span<const VT>(vcol(0)));
    if (!(static_cast<double>(beta) > 0.0) || !std::isfinite(static_cast<double>(beta))) {
      stats.residual_est = static_cast<double>(beta);
      stats.reached_target = static_cast<double>(beta) <= abs_target;
      return stats;
    }
    blas::scal(S{1} / beta, vcol(0));
    std::fill(g_.begin(), g_.end(), S{0});
    g_[0] = beta;

    const int m = cfg_.m;
    int j = 0;
    for (; j < m; ++j) {
      // Flexible preconditioning: z_j = M⁻¹ v_j (M may itself be a solver).
      m_->apply(std::span<const VT>(vcol(j)), zcol(j));
      a_->apply(std::span<const VT>(zcol(j)), std::span<VT>(w_));

      // Classical Gram-Schmidt: all projections against the ORIGINAL w,
      // fused — one sweep over the contiguous basis block for the j+1
      // dots, one read-modify-write of w for the j+1 corrections.
      blas::dot_many(vbuf_.data(), static_cast<std::ptrdiff_t>(n_), j + 1,
                     std::span<const VT>(w_), hcol_.data());
      blas::axpy_many(vbuf_.data(), static_cast<std::ptrdiff_t>(n_), j + 1, hcol_.data(),
                      std::span<VT>(w_), /*subtract=*/true);
      S hj1 = blas::nrm2(std::span<const VT>(w_));

      // Apply the accumulated Givens rotations to the new column.
      for (int i = 0; i < j; ++i) {
        const S t = cs_[i] * hcol_[i] + sn_[i] * hcol_[i + 1];
        hcol_[i + 1] = -sn_[i] * hcol_[i] + cs_[i] * hcol_[i + 1];
        hcol_[i] = t;
      }
      // New rotation eliminating hj1.
      const S denom = std::sqrt(hcol_[j] * hcol_[j] + hj1 * hj1);
      if (static_cast<double>(denom) > 0.0 && std::isfinite(static_cast<double>(denom))) {
        cs_[j] = hcol_[j] / denom;
        sn_[j] = hj1 / denom;
      } else {
        cs_[j] = S{1};
        sn_[j] = S{0};
      }
      hcol_[j] = cs_[j] * hcol_[j] + sn_[j] * hj1;
      g_[j + 1] = -sn_[j] * g_[j];
      g_[j] = cs_[j] * g_[j];

      for (int i = 0; i <= j; ++i) h_[col_major(i, j)] = hcol_[i];
      ++total_iterations_;

      const double res = std::abs(static_cast<double>(g_[j + 1]));
      if (iter_log_ != nullptr) iter_log_->push_back(res);
      const bool breakdown =
          !(static_cast<double>(hj1) > breakdown_tol_ * static_cast<double>(beta));
      if (breakdown || (abs_target > 0.0 && res <= abs_target)) {
        stats.reached_target = res <= abs_target || breakdown;
        ++j;
        break;
      }
      // Normalize the next basis vector: v_{j+1} = w/h in a single write
      // (w is scratch and is rebuilt by the next A·z, so it need not be
      // scaled in place).
      blas::scal_copy(S{1} / hj1, std::span<const VT>(w_), vcol(j + 1));
    }
    stats.iters = std::min(j, m);
    stats.residual_est = std::abs(static_cast<double>(g_[std::min(j, m)]));

    // Back substitution R y = g and update x += Z y.
    const int k = stats.iters;
    for (int i = k - 1; i >= 0; --i) {
      S s = g_[i];
      for (int l = i + 1; l < k; ++l) s -= h_[col_major(i, l)] * y_[l];
      const S hii = h_[col_major(i, i)];
      y_[i] = (hii != S{0}) ? s / hii : S{0};
    }
    if (k > 0)
      blas::axpy_many(zbuf_.data(), static_cast<std::ptrdiff_t>(n_), k, y_.data(),
                      std::span<VT>(x.data(), n_));  // bound by n_, x may be oversized
    return stats;
  }

  [[nodiscard]] index_t size() const override { return a_->size(); }

  /// Total Arnoldi steps across all invocations (cost-model validation).
  [[nodiscard]] std::uint64_t total_iterations() const { return total_iterations_; }

  /// Optional per-iteration log: run() appends the absolute Givens residual
  /// estimate after every Arnoldi step (used by outer solvers to record
  /// convergence histories).  Pass nullptr to disable.
  void set_iteration_log(std::vector<double>* log) { iter_log_ = log; }

 private:
  [[nodiscard]] std::size_t col_major(int i, int j) const {
    return static_cast<std::size_t>(j) * (static_cast<std::size_t>(cfg_.m) + 1) +
           static_cast<std::size_t>(i);
  }

  /// Column j of the contiguous Arnoldi basis (row-major, stride n).
  [[nodiscard]] std::span<VT> vcol(int j) {
    return {vbuf_.data() + static_cast<std::size_t>(j) * n_, n_};
  }
  /// Column j of the contiguous preconditioned basis.
  [[nodiscard]] std::span<VT> zcol(int j) {
    return {zbuf_.data() + static_cast<std::size_t>(j) * n_, n_};
  }

  Operator<VT>* a_;
  Preconditioner<VT>* m_;
  Config cfg_;
  std::size_t n_ = 0;

  std::vector<VT> vbuf_;  ///< Arnoldi basis V, (m+1)·n contiguous row-major
  std::vector<VT> zbuf_;  ///< preconditioned basis Z, m·n contiguous
  std::vector<VT> w_;
  std::vector<S> h_, g_, cs_, sn_, y_, hcol_;
  std::vector<double>* iter_log_ = nullptr;
  std::uint64_t total_iterations_ = 0;
  static constexpr double breakdown_tol_ = 1e-14;
};

}  // namespace nk
