// Flexible GMRES (Saad 1993) — the building block of the nested Krylov
// framework.
//
// Flexible means the preconditioner may change between iterations, which is
// exactly what a nested inner solver is; FGMRES therefore stores the
// preconditioned basis Z alongside the Arnoldi basis V and forms the
// update from Z.
//
// Implementation follows the paper: classical Gram-Schmidt for the Arnoldi
// process and Givens rotations for the least-squares QR, with all Arnoldi /
// QR scalars and vectors held in the solver's vector precision VT (fp32 in
// the inner levels of F3R; reductions over fp16 inputs accumulate fp32).
//
// The Arnoldi basis V and the preconditioned basis Z live in single
// contiguous row-major buffers (vector j at offset j·n), and the CGS
// projection / correction / normalization run through the fused kernels in
// base/blas_block.hpp (dot_many / axpy_many / scal_copy): one pass over the
// basis block per step instead of 2(j+1) blas1 launches re-reading w.  The
// fused kernels reproduce the blas1 operation sequence bit-for-bit (see
// blas_block.hpp), so only the schedule changed, not the math.
//
// Lifecycle (the setup/solve split): construction binds the configuration;
// setup(a, m) binds a matrix/preconditioner pair and acquires every buffer
// from a SolverWorkspace — an external one shared across solvers and
// matrices, or a private fallback.  After setup, run()/apply()/run_many()
// perform no allocation, and a later setup() against an equally-sized (or
// smaller) system reuses the same memory.
//
// The same class serves three roles:
//   * inner solver: apply() — solve A z ≈ v from a zero initial guess for
//     exactly m iterations, no convergence test (the paper checks
//     convergence only in the outermost solver);
//   * outer solver: run() — iterate from a given x with an absolute
//     residual target, reporting the Givens residual estimate;
//   * batched outer solver: run_many() — k right-hand sides in lockstep,
//     sharing every matrix sweep (SpMM) and preconditioner sweep across
//     the batch while reproducing run()'s per-column iterates exactly.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "base/blas1.hpp"
#include "base/blas_block.hpp"
#include "base/panel.hpp"
#include "base/workspace.hpp"
#include "krylov/operator.hpp"
#include "precond/preconditioner.hpp"

namespace nk {

template <class VT>
class FgmresSolver final : public Preconditioner<VT> {
 public:
  /// Scalar type of the Arnoldi/QR data (fp32 for VT=half).
  using S = acc_t<VT>;

  struct Config {
    int m = 8;  ///< Krylov dimension per invocation / restart cycle
    /// Dynamic inner termination (the paper's second future-work item):
    /// when > 0 and the solver is used as an inner solver (apply()), stop
    /// as soon as the Givens residual estimate has dropped below
    /// inner_rtol · ‖v‖ instead of always running all m iterations.
    double inner_rtol = 0.0;
    /// Batched run_many scheduling: true (default) = active-set compaction
    /// (the preconditioner/operator sweeps run at the current active width
    /// through a gather/scatter layer); false = the PR 3 masked-lockstep
    /// reference path.  Iterates are bit-identical either way.
    bool compact = true;
    /// Layout of the compact path's gather panels (see base/panel.hpp):
    /// kColMajor interleaves the gathered v_j/z_j columns so a ragged
    /// survivor set streams unit-stride through the preconditioner and
    /// operator sweeps.  Unset = the workspace default.  Gather/scatter
    /// copies are exact and per-column applies are order-preserving, so
    /// iterates are bit-identical across layouts.
    std::optional<PanelLayout> layout;
  };

  struct RunStats {
    int iters = 0;                 ///< Arnoldi steps performed
    double residual_est = 0.0;     ///< Givens estimate of ‖b − Ax‖₂
    bool reached_target = false;
    /// Terminal-cause markers for the engines' SolveStatus attribution:
    /// `breakdown` = the eps-scaled hj1 test ended the cycle with finite
    /// arithmetic (possibly a lucky breakdown — the caller still checks the
    /// true residual); `non_finite` = a NaN/Inf norm (beta or hj1) ended it.
    bool breakdown = false;
    bool non_finite = false;
  };

  /// Deferred-setup construction: no matrix bound, no memory acquired.
  /// `ws` (optional) is the workspace every buffer is drawn from under
  /// `key`-prefixed names; null → a private workspace.
  explicit FgmresSolver(Config cfg, SolverWorkspace* ws = nullptr,
                        std::string key = "fgmres")
      : cfg_(cfg), ws_(ws), key_(std::move(key)) {}

  /// Construct and set up in one step (the pre-workspace API).
  FgmresSolver(Operator<VT>& a, Preconditioner<VT>& m, Config cfg,
               SolverWorkspace* ws = nullptr, std::string key = "fgmres")
      : FgmresSolver(cfg, ws, std::move(key)) {
    setup(a, m);
  }

  // Buffer spans point into own_ (or the shared workspace); a copy would
  // alias them.  Two live solvers on one workspace need distinct keys.
  FgmresSolver(const FgmresSolver&) = delete;
  FgmresSolver& operator=(const FgmresSolver&) = delete;

  /// Bind a system and acquire workspace.  Runs once per matrix; repeated
  /// setup against a same-sized system performs zero allocation.
  void setup(Operator<VT>& a, Preconditioner<VT>& m) {
    a_ = &a;
    m_ = &m;
    n_ = static_cast<std::size_t>(a.size());
    const std::size_t mm = static_cast<std::size_t>(cfg_.m);
    SolverWorkspace& w = wsref();
    this->set_backend(w.backend());  // kernel dispatch follows the workspace
    vbuf_ = w.get<VT>(key_ + ".V", (mm + 1) * n_);
    zbuf_ = w.get<VT>(key_ + ".Z", mm * n_);
    w_ = w.get<VT>(key_ + ".w", n_);
    h_ = w.get<S>(key_ + ".h", (mm + 1) * mm);
    g_ = w.get<S>(key_ + ".g", mm + 1);
    cs_ = w.get<S>(key_ + ".cs", mm);
    sn_ = w.get<S>(key_ + ".sn", mm);
    y_ = w.get<S>(key_ + ".y", mm);
    hcol_ = w.get<S>(key_ + ".hcol", mm + 1);
    this->kern_table().set_zero(vbuf_);
    this->kern_table().set_zero(zbuf_);
    std::fill(h_.begin(), h_.end(), S{0});
  }

  /// Inner-solver interface: z ≈ A⁻¹ v, zero initial guess, m iterations
  /// (fewer when Config::inner_rtol enables dynamic termination).
  void apply(std::span<const VT> v, std::span<VT> z) override {
    this->kern_table().set_zero(z);
    double target = 0.0;
    if (cfg_.inner_rtol > 0.0)
      target = cfg_.inner_rtol * static_cast<double>(this->kern_table().nrm2(v));
    run(v, z, target, /*x_nonzero=*/false);
  }

  /// Outer-solver interface: continue from x; stop when the Givens residual
  /// estimate drops below `abs_target` (0 → run all m iterations).
  RunStats run(std::span<const VT> b, std::span<VT> x, double abs_target,
               bool x_nonzero = true) {
    const auto n = b.size();
    RunStats stats;

    // r0 (x = 0 ⇒ r0 = b without an SpMV).
    if (x_nonzero) {
      a_->residual(b, std::span<const VT>(x.data(), n), vcol(0));
    } else {
      this->kern_table().copy(b, vcol(0));
    }
    const S beta = this->kern_table().nrm2(std::span<const VT>(vcol(0)));
    if (!(static_cast<double>(beta) > 0.0) || !std::isfinite(static_cast<double>(beta))) {
      stats.residual_est = static_cast<double>(beta);
      stats.non_finite = !std::isfinite(static_cast<double>(beta));
      stats.reached_target = static_cast<double>(beta) <= abs_target;
      return stats;
    }
    this->kern_table().scal(S{1} / beta, vcol(0));
    std::fill(g_.begin(), g_.end(), S{0});
    g_[0] = beta;

    const int m = cfg_.m;
    int j = 0;
    for (; j < m; ++j) {
      // Flexible preconditioning: z_j = M⁻¹ v_j (M may itself be a solver).
      m_->apply(std::span<const VT>(vcol(j)), zcol(j));
      a_->apply(std::span<const VT>(zcol(j)), std::span<VT>(w_));

      // Classical Gram-Schmidt: all projections against the ORIGINAL w,
      // fused — one sweep over the contiguous basis block for the j+1
      // dots, one read-modify-write of w for the j+1 corrections.
      this->kern_table().dot_many(vbuf_.data(), static_cast<std::ptrdiff_t>(n_), j + 1,
                     std::span<const VT>(w_.data(), n_), hcol_.data());
      this->kern_table().axpy_many(vbuf_.data(), static_cast<std::ptrdiff_t>(n_), j + 1, hcol_.data(),
                      std::span<VT>(w_.data(), n_), /*subtract=*/true);
      S hj1 = this->kern_table().nrm2(std::span<const VT>(w_.data(), n_));

      const double res = givens_update(hcol_.data(), g_.data(), cs_.data(), sn_.data(),
                                       h_.data(), j, hj1);
      ++total_iterations_;
      if (iter_log_ != nullptr) iter_log_->push_back(res);
      const bool breakdown =
          !(static_cast<double>(hj1) > breakdown_tol_ * static_cast<double>(beta));
      if (breakdown || (abs_target > 0.0 && res <= abs_target)) {
        stats.reached_target = res <= abs_target || breakdown;
        stats.breakdown = breakdown && std::isfinite(static_cast<double>(hj1));
        stats.non_finite = breakdown && !std::isfinite(static_cast<double>(hj1));
        ++j;
        break;
      }
      // Normalize the next basis vector: v_{j+1} = w/h in a single write
      // (w is scratch and is rebuilt by the next A·z, so it need not be
      // scaled in place).
      this->kern_table().scal_copy(S{1} / hj1, std::span<const VT>(w_.data(), n_), vcol(j + 1));
    }
    stats.iters = std::min(j, m);
    stats.residual_est = std::abs(static_cast<double>(g_[std::min(j, m)]));

    // Back substitution R y = g and update x += Z y.
    back_substitute(h_.data(), g_.data(), y_.data(), stats.iters);
    if (stats.iters > 0)
      this->kern_table().axpy_many(zbuf_.data(), static_cast<std::ptrdiff_t>(n_), stats.iters, y_.data(),
                      std::span<VT>(x.data(), n_));  // bound by n_, x may be oversized
    return stats;
  }

  /// Batched outer interface: advance k right-hand sides in lockstep
  /// through one FGMRES cycle.  Column c of B/X lives at b + c·ldb and
  /// x + c·ldx.  While every column stays live the preconditioner and
  /// operator are applied once per step for the whole batch (one matrix
  /// sweep via SpMM); per column the operation sequence — and therefore
  /// every iterate and the Givens estimate — is identical to run() on that
  /// column alone, provided M is stateless across apply() calls (primary
  /// preconditioners are; nested tuples with adaptive Richardson state are
  /// batched by NestedSolver::solve_many instead, which preserves the
  /// state's invocation order).  A column that converges or breaks down is
  /// frozen and costs nothing further.  No iteration log is recorded.
  ///
  /// With Config::compact (the default) the survivor set is compacted:
  /// once a column freezes, the per-step preconditioner and operator
  /// sweeps run at the CURRENT active width over gather panels (active
  /// columns' v_j gathered to contiguous slots, z_j scattered back into
  /// their per-column basis blocks), re-dispatching through the
  /// compile-time k = 4/8/16 kernels as the set shrinks.  The basis
  /// blocks, Hessenberg data, and every per-column operation are untouched
  /// by compaction, so iterates match run() (and the masked path) to the
  /// bit.
  std::vector<RunStats> run_many(const VT* b, std::ptrdiff_t ldb, VT* x,
                                 std::ptrdiff_t ldx, int k, double abs_target,
                                 bool x_nonzero = true) {
    std::vector<RunStats> stats(static_cast<std::size_t>(std::max(k, 0)));
    if (k <= 0) return stats;
    const std::size_t kk = static_cast<std::size_t>(k);
    const std::size_t mm = static_cast<std::size_t>(cfg_.m);
    const std::size_t vstr = (mm + 1) * n_;  // one column's V block
    const std::size_t zstr = mm * n_;
    SolverWorkspace& w = wsref();
    auto VB = w.get<VT>(key_ + ".bat.V", kk * vstr);
    auto ZB = w.get<VT>(key_ + ".bat.Z", kk * zstr);
    auto WB = w.get<VT>(key_ + ".bat.w", kk * n_);
    auto HB = w.get<S>(key_ + ".bat.h", kk * (mm + 1) * mm);
    auto GB = w.get<S>(key_ + ".bat.g", kk * (mm + 1));
    auto CS = w.get<S>(key_ + ".bat.cs", kk * mm);
    auto SN = w.get<S>(key_ + ".bat.sn", kk * mm);
    auto YB = w.get<S>(key_ + ".bat.y", kk * mm);
    auto HC = w.get<S>(key_ + ".bat.hcol", kk * (mm + 1));
    auto beta = w.get<S>(key_ + ".bat.beta", kk);
    auto act = w.get<unsigned char>(key_ + ".bat.act", kk);
    // Compaction state: gather panels for v_j / z_j and the
    // active→original map (only touched on the compact path).
    auto VS = w.get<VT>(key_ + ".bat.vs", cfg_.compact ? kk * n_ : 0);
    auto ZS = w.get<VT>(key_ + ".bat.zs", cfg_.compact ? kk * n_ : 0);
    auto map = w.get<int>(key_ + ".bat.map", kk);
    // Gather-panel layout (base/panel.hpp): interleaved gathers stream
    // unit-stride through the ragged-set sweeps.  Exact copies in/out —
    // iterates are unchanged.
    const PanelLayout lay = cfg_.layout.value_or(w.panel_layout());
    const bool ilv = lay == PanelLayout::kColMajor;
    const std::ptrdiff_t gld =
        ilv ? static_cast<std::ptrdiff_t>(k) : static_cast<std::ptrdiff_t>(n_);

    auto vc = [&](int c, int j) {
      return std::span<VT>(VB.data() + static_cast<std::size_t>(c) * vstr +
                               static_cast<std::size_t>(j) * n_, n_);
    };
    auto zc = [&](int c, int j) {
      return std::span<VT>(ZB.data() + static_cast<std::size_t>(c) * zstr +
                               static_cast<std::size_t>(j) * n_, n_);
    };
    auto wc = [&](int c) {
      return std::span<VT>(WB.data() + static_cast<std::size_t>(c) * n_, n_);
    };

    // r0 per column (one shared A sweep when x is nonzero).
    if (x_nonzero) {
      a_->residual_many(b, ldb, x, ldx, VB.data(), static_cast<std::ptrdiff_t>(vstr), k);
    } else {
      for (int c = 0; c < k; ++c)
        this->kern_table().copy(std::span<const VT>(b + static_cast<std::ptrdiff_t>(c) * ldb, n_),
                   vc(c, 0));
    }
    int nactive = 0;
    for (int c = 0; c < k; ++c) {
      beta[c] = this->kern_table().nrm2(std::span<const VT>(vc(c, 0)));
      const double bd = static_cast<double>(beta[c]);
      if (!(bd > 0.0) || !std::isfinite(bd)) {
        stats[c].residual_est = bd;
        stats[c].non_finite = !std::isfinite(bd);
        stats[c].reached_target = bd <= abs_target;
        act[c] = 0;
        continue;
      }
      this->kern_table().scal(S{1} / beta[c], vc(c, 0));
      S* g = GB.data() + static_cast<std::size_t>(c) * (mm + 1);
      std::fill(g, g + mm + 1, S{0});
      g[0] = beta[c];
      act[c] = 1;
      if (cfg_.compact) map[nactive] = c;
      ++nactive;
    }

    const int m = cfg_.m;
    for (int j = 0; j < m && nactive > 0; ++j) {
      // Preconditioner + operator at the current width.  The survivor map
      // is always sorted (stable compaction), so whenever the live set is
      // a contiguous column range — always at full width, and typically
      // under FIFO wave retirement — the applies run DIRECTLY on the basis
      // blocks at their natural stride, zero copies.  A ragged survivor
      // set gathers the active v_j into contiguous slots, applies at width
      // nactive, and scatters z_j back into the per-column Z blocks (the
      // masked path instead falls back to per-column applies).  Either way
      // each column's apply is bit-identical to run()'s, and M/A see
      // exactly one application per live column.
      bool direct = !cfg_.compact;  // compact: set per step below
      if (cfg_.compact) {
        const int c0 = map[0];
        direct = map[nactive - 1] - c0 == nactive - 1;
        if (direct) {
          m_->apply_many(VB.data() + static_cast<std::size_t>(c0) * vstr +
                             static_cast<std::size_t>(j) * n_,
                         static_cast<std::ptrdiff_t>(vstr),
                         ZB.data() + static_cast<std::size_t>(c0) * zstr +
                             static_cast<std::size_t>(j) * n_,
                         static_cast<std::ptrdiff_t>(zstr), nactive);
          a_->apply_many(ZB.data() + static_cast<std::size_t>(c0) * zstr +
                             static_cast<std::size_t>(j) * n_,
                         static_cast<std::ptrdiff_t>(zstr),
                         WB.data() + static_cast<std::size_t>(c0) * n_,
                         static_cast<std::ptrdiff_t>(n_), nactive);
        } else if (ilv) {
          // Interleaved gather: active v_j columns side by side, so the M
          // and A sweeps stream unit-stride across the survivor set; the
          // w output stays row-major (CGS consumes contiguous wc spans).
          for (int i = 0; i < nactive; ++i)
            panel_copy_col(vc(map[i], j).data(), static_cast<std::ptrdiff_t>(n_),
                           PanelLayout::kRowMajor, 0, VS.data(), gld, lay, i,
                           static_cast<std::ptrdiff_t>(n_));
          m_->apply_many_layout(VS.data(), gld, ZS.data(), gld, nactive, lay);
          a_->apply_many_layout(ZS.data(), gld, WB.data(),
                                static_cast<std::ptrdiff_t>(n_), nactive, lay,
                                PanelLayout::kRowMajor);
          for (int i = 0; i < nactive; ++i)
            panel_copy_col(ZS.data(), gld, lay, i, zc(map[i], j).data(),
                           static_cast<std::ptrdiff_t>(n_), PanelLayout::kRowMajor, 0,
                           static_cast<std::ptrdiff_t>(n_));
        } else {
          for (int i = 0; i < nactive; ++i)
            this->kern_table().copy(std::span<const VT>(vc(map[i], j)),
                       std::span<VT>(VS.data() + static_cast<std::size_t>(i) * n_, n_));
          m_->apply_many(VS.data(), static_cast<std::ptrdiff_t>(n_), ZS.data(),
                         static_cast<std::ptrdiff_t>(n_), nactive);
          a_->apply_many(ZS.data(), static_cast<std::ptrdiff_t>(n_), WB.data(),
                         static_cast<std::ptrdiff_t>(n_), nactive);
          for (int i = 0; i < nactive; ++i)
            this->kern_table().copy(std::span<const VT>(ZS.data() + static_cast<std::size_t>(i) * n_, n_),
                       zc(map[i], j));
        }
      } else if (nactive == k) {
        m_->apply_many(VB.data() + static_cast<std::size_t>(j) * n_,
                       static_cast<std::ptrdiff_t>(vstr),
                       ZB.data() + static_cast<std::size_t>(j) * n_,
                       static_cast<std::ptrdiff_t>(zstr), k);
        a_->apply_many(ZB.data() + static_cast<std::size_t>(j) * n_,
                       static_cast<std::ptrdiff_t>(zstr), WB.data(),
                       static_cast<std::ptrdiff_t>(n_), k);
      } else {
        for (int c = 0; c < k; ++c) {
          if (!act[c]) continue;
          m_->apply(std::span<const VT>(vc(c, j)), zc(c, j));
          a_->apply(std::span<const VT>(zc(c, j)), wc(c));
        }
      }
      // CGS + Givens per live column.  In direct mode column c's w vector
      // sits at its original position c; in gather mode slot i's w sits at
      // gather position i — `slot` abstracts the two.
      const int loop_n = cfg_.compact ? nactive : k;
      int nkeep = 0;
      for (int i = 0; i < loop_n; ++i) {
        const int c = cfg_.compact ? map[i] : i;
        if (!act[c]) continue;
        const int slot = direct ? c : i;
        S* hcol = HC.data() + static_cast<std::size_t>(c) * (mm + 1);
        S* g = GB.data() + static_cast<std::size_t>(c) * (mm + 1);
        S* cs = CS.data() + static_cast<std::size_t>(c) * mm;
        S* sn = SN.data() + static_cast<std::size_t>(c) * mm;
        S* h = HB.data() + static_cast<std::size_t>(c) * (mm + 1) * mm;
        const VT* vbase = VB.data() + static_cast<std::size_t>(c) * vstr;
        this->kern_table().dot_many(vbase, static_cast<std::ptrdiff_t>(n_), j + 1,
                       std::span<const VT>(wc(slot)), hcol);
        this->kern_table().axpy_many(vbase, static_cast<std::ptrdiff_t>(n_), j + 1, hcol, wc(slot),
                        /*subtract=*/true);
        const S hj1 = this->kern_table().nrm2(std::span<const VT>(wc(slot)));
        const double res = givens_update(hcol, g, cs, sn, h, j, hj1);
        ++total_iterations_;
        const bool breakdown =
            !(static_cast<double>(hj1) > breakdown_tol_ * static_cast<double>(beta[c]));
        stats[c].iters = j + 1;
        stats[c].residual_est = std::abs(static_cast<double>(g[j + 1]));
        if (breakdown || (abs_target > 0.0 && res <= abs_target)) {
          stats[c].reached_target = res <= abs_target || breakdown;
          stats[c].breakdown = breakdown && std::isfinite(static_cast<double>(hj1));
          stats[c].non_finite = breakdown && !std::isfinite(static_cast<double>(hj1));
          act[c] = 0;
          if (!cfg_.compact) --nactive;
          continue;
        }
        this->kern_table().scal_copy(S{1} / hj1, std::span<const VT>(wc(slot)), vc(c, j + 1));
        if (cfg_.compact) map[nkeep++] = c;  // stable survivor compaction
      }
      if (cfg_.compact) nactive = nkeep;
    }

    // Per-column back substitution and solution update x_c += Z_c y_c.
    for (int c = 0; c < k; ++c) {
      const int kc = stats[c].iters;
      if (kc == 0) continue;
      S* g = GB.data() + static_cast<std::size_t>(c) * (mm + 1);
      S* h = HB.data() + static_cast<std::size_t>(c) * (mm + 1) * mm;
      S* y = YB.data() + static_cast<std::size_t>(c) * mm;
      back_substitute(h, g, y, kc);
      this->kern_table().axpy_many(ZB.data() + static_cast<std::size_t>(c) * zstr,
                      static_cast<std::ptrdiff_t>(n_), kc, y,
                      std::span<VT>(x + static_cast<std::ptrdiff_t>(c) * ldx, n_));
    }
    return stats;
  }

  [[nodiscard]] index_t size() const override { return a_->size(); }

  /// Total Arnoldi steps across all invocations (cost-model validation).
  [[nodiscard]] std::uint64_t total_iterations() const { return total_iterations_; }

  /// Optional per-iteration log: run() appends the absolute Givens residual
  /// estimate after every Arnoldi step (used by outer solvers to record
  /// convergence histories).  Pass nullptr to disable.
  void set_iteration_log(std::vector<double>* log) { iter_log_ = log; }

 private:
  [[nodiscard]] SolverWorkspace& wsref() { return ws_ != nullptr ? *ws_ : own_; }

  [[nodiscard]] std::size_t col_major(int i, int j) const {
    return static_cast<std::size_t>(j) * (static_cast<std::size_t>(cfg_.m) + 1) +
           static_cast<std::size_t>(i);
  }

  /// Apply the accumulated Givens rotations to the new column `hcol`, form
  /// the rotation eliminating hj1, update g, and store the column into h.
  /// Returns the updated residual estimate |g[j+1]|.  Shared verbatim by
  /// the sequential and batched paths so they cannot drift.
  double givens_update(S* hcol, S* g, S* cs, S* sn, S* h, int j, S hj1) {
    for (int i = 0; i < j; ++i) {
      const S t = cs[i] * hcol[i] + sn[i] * hcol[i + 1];
      hcol[i + 1] = -sn[i] * hcol[i] + cs[i] * hcol[i + 1];
      hcol[i] = t;
    }
    const S denom = std::sqrt(hcol[j] * hcol[j] + hj1 * hj1);
    if (static_cast<double>(denom) > 0.0 && std::isfinite(static_cast<double>(denom))) {
      cs[j] = hcol[j] / denom;
      sn[j] = hj1 / denom;
    } else {
      cs[j] = S{1};
      sn[j] = S{0};
    }
    hcol[j] = cs[j] * hcol[j] + sn[j] * hj1;
    g[j + 1] = -sn[j] * g[j];
    g[j] = cs[j] * g[j];
    for (int i = 0; i <= j; ++i) h[col_major(i, j)] = hcol[i];
    return std::abs(static_cast<double>(g[j + 1]));
  }

  /// Solve the k×k upper-triangular system R y = g (in-place arrays).
  void back_substitute(const S* h, const S* g, S* y, int k) const {
    for (int i = k - 1; i >= 0; --i) {
      S s = g[i];
      for (int l = i + 1; l < k; ++l) s -= h[col_major(i, l)] * y[l];
      const S hii = h[col_major(i, i)];
      y[i] = (hii != S{0}) ? s / hii : S{0};
    }
  }

  /// Column j of the contiguous Arnoldi basis (row-major, stride n).
  [[nodiscard]] std::span<VT> vcol(int j) {
    return {vbuf_.data() + static_cast<std::size_t>(j) * n_, n_};
  }
  /// Column j of the contiguous preconditioned basis.
  [[nodiscard]] std::span<VT> zcol(int j) {
    return {zbuf_.data() + static_cast<std::size_t>(j) * n_, n_};
  }

  Operator<VT>* a_ = nullptr;
  Preconditioner<VT>* m_ = nullptr;
  Config cfg_;
  std::size_t n_ = 0;

  SolverWorkspace* ws_ = nullptr;  ///< shared workspace (null → own_)
  SolverWorkspace own_;
  std::string key_;

  std::span<VT> vbuf_;  ///< Arnoldi basis V, (m+1)·n contiguous row-major
  std::span<VT> zbuf_;  ///< preconditioned basis Z, m·n contiguous
  std::span<VT> w_;
  std::span<S> h_, g_, cs_, sn_, y_, hcol_;
  std::vector<double>* iter_log_ = nullptr;
  std::uint64_t total_iterations_ = 0;
  // Breakdown threshold on hj1 relative to the cycle's initial residual
  // norm.  A numerically dependent Arnoldi vector leaves hj1 at the CGS
  // rounding-noise level, which is O(ε_S·β) for working scalar type S — a
  // fixed 1e-14 is therefore precision-blind: with fp32/fp16 inner
  // arithmetic (ε ≈ 1.2e-7) a genuine breakdown yields hj1 ≈ ε·β ≫ 1e-14·β,
  // the test never fires, and the cycle keeps orthogonalizing noise.
  // Scale by the working epsilon; the max() keeps the fp64 threshold at its
  // long-standing 1e-14 (16·ε_fp64 ≈ 3.6e-15 < 1e-14), so fp64 iterate
  // streams — and the committed conformance baseline — are unchanged.
  static constexpr double breakdown_tol_ =
      std::max(1e-14, 16.0 * static_cast<double>(std::numeric_limits<S>::epsilon()));
};

}  // namespace nk
