#include "krylov/bicgstab.hpp"

#include <cmath>

#include "base/blas_block.hpp"

namespace nk {

template <class VT>
SolveResult BiCgStabSolver<VT>::solve(std::span<const VT> b, std::span<VT> x) {
  using S = acc_t<VT>;
  SolveResult res;
  res.solver = "bicgstab";
  const auto n = b.size();
  std::span<VT> r(r_), rhat(rhat_), p(p_), v(v_), s(s_), t(t_), phat(phat_), shat(shat_);

  const double bnorm = static_cast<double>(kx_.nrm2(b));
  const double bref = bnorm > 0.0 ? bnorm : 1.0;
  const double target = cfg_.rtol * bref;

  a_->residual(b, std::span<const VT>(x.data(), n), r);
  kx_.copy(std::span<const VT>(r_), rhat);
  double rnorm = static_cast<double>(kx_.nrm2(std::span<const VT>(r_)));
  if (cfg_.record_history) res.history.push_back(rnorm / bref);
  if (!std::isfinite(bnorm) || !std::isfinite(rnorm)) {
    res.fail(SolveStatus::kNonFinite, !std::isfinite(bnorm) ? "b" : "rnorm");
    return res;
  }
  if (rnorm <= target) {
    res.mark_converged();
    return res;
  }
  // Stagnation guard state: comparisons only, never touches the iterates.
  double stag_best = rnorm;
  int stall = 0;

  S rho{1}, alpha{1}, omega{1};
  kx_.set_zero(p);
  kx_.set_zero(v);

  for (int it = 1; it <= cfg_.max_iters; ++it) {
    res.iterations = it;
    const S rho_new = kx_.dot(std::span<const VT>(rhat_), std::span<const VT>(r_));
    if (!std::isfinite(static_cast<double>(rho_new)) || rho_new == S{0}) {
      res.fail(std::isfinite(static_cast<double>(rho_new)) ? SolveStatus::kBreakdown
                                                           : SolveStatus::kNonFinite,
               "rho");
      return res;
    }
    if (it == 1) {
      kx_.copy(std::span<const VT>(r_), p);
    } else {
      const S beta = (rho_new / rho) * (alpha / omega);
      // p = r + beta (p - omega v)
      kx_.axpy(-omega, std::span<const VT>(v_), p);
      kx_.axpby(S{1}, std::span<const VT>(r_), beta, p);
    }
    rho = rho_new;

    m_->apply(std::span<const VT>(p_), phat);
    a_->apply(std::span<const VT>(phat_), v);
    const S rhat_v = kx_.dot(std::span<const VT>(rhat_), std::span<const VT>(v_));
    if (!std::isfinite(static_cast<double>(rhat_v)) || rhat_v == S{0}) {
      res.fail(std::isfinite(static_cast<double>(rhat_v)) ? SolveStatus::kBreakdown
                                                          : SolveStatus::kNonFinite,
               "rhat_v");
      return res;
    }
    alpha = rho / rhat_v;

    // s = r - alpha v
    kx_.copy(std::span<const VT>(r_), s);
    kx_.axpy(-alpha, std::span<const VT>(v_), s);
    const double snorm = static_cast<double>(kx_.nrm2(std::span<const VT>(s_)));
    if (snorm <= target) {
      kx_.axpy(alpha, std::span<const VT>(phat_), x);
      if (cfg_.record_history) res.history.push_back(snorm / bref);
      res.mark_converged();
      return res;
    }

    m_->apply(std::span<const VT>(s_), shat);
    a_->apply(std::span<const VT>(shat_), t);
    const S tt = kx_.dot(std::span<const VT>(t_), std::span<const VT>(t_));
    if (!std::isfinite(static_cast<double>(tt)) || tt == S{0}) {
      res.fail(std::isfinite(static_cast<double>(tt)) ? SolveStatus::kBreakdown
                                                      : SolveStatus::kNonFinite,
               "tt");
      return res;
    }
    omega = kx_.dot(std::span<const VT>(t_), std::span<const VT>(s_)) / tt;

    kx_.axpy(alpha, std::span<const VT>(phat_), x);
    kx_.axpy(omega, std::span<const VT>(shat_), x);

    // r = s - omega t
    kx_.copy(std::span<const VT>(s_), r);
    kx_.axpy(-omega, std::span<const VT>(t_), r);

    rnorm = static_cast<double>(kx_.nrm2(std::span<const VT>(r_)));
    if (cfg_.record_history) res.history.push_back(rnorm / bref);
    if (!std::isfinite(rnorm)) {
      res.fail(SolveStatus::kNonFinite, "rnorm");
      return res;
    }
    if (rnorm <= target) {
      res.mark_converged();
      return res;
    }
    if (omega == S{0}) {  // stagnation breakdown
      res.fail(SolveStatus::kBreakdown, "omega");
      return res;
    }
    if (cfg_.stagnate_window > 0) {
      if (rnorm < 0.99 * stag_best) {
        stag_best = rnorm;
        stall = 0;
      } else if (++stall >= cfg_.stagnate_window) {
        res.fail(SolveStatus::kStagnated, "rnorm");
        return res;
      }
    }
  }
  return res;
}

template <class VT>
std::vector<SolveResult> BiCgStabSolver<VT>::solve_many(const VT* b, std::ptrdiff_t ldb,
                                                        VT* x, std::ptrdiff_t ldx, int k,
                                                        int wave) {
  std::vector<SolveResult> res(static_cast<std::size_t>(std::max(k, 0)));
  for (auto& r : res) r.solver = "bicgstab";
  if (k <= 0) return res;
  if (cfg_.compact) {
    solve_many_compact(b, ldb, x, ldx, k, wave, res);
  } else {
    solve_many_masked(b, ldb, x, ldx, k, res);
  }
  return res;
}

// Compacting batched BiCGStab (see CgSolver::solve_many_compact for the
// scheme): survivors occupy the leading `na` columns of the eight panels,
// `map[j]` scatters x updates back to original caller columns, and every
// kernel — the four applications per iteration included — runs at the
// current width.  Retirement swap-removes a slot (data moves verbatim, so
// iterates stay bit-identical to solve()); with 0 < wave < k pending
// right-hand sides refill freed slots at iteration boundaries.
template <class VT>
void BiCgStabSolver<VT>::solve_many_compact(const VT* b, std::ptrdiff_t ldb, VT* x,
                                            std::ptrdiff_t ldx, int k, int wave,
                                            std::vector<SolveResult>& res) {
  using S = acc_t<VT>;
  const int W = (wave > 0 && wave < k) ? wave : k;  // dispatch width
  const std::size_t ww = static_cast<std::size_t>(W);
  SolverWorkspace& w = wsref();
  auto R = w.get<VT>(key_ + ".bat.r", ww * n_);
  auto RH = w.get<VT>(key_ + ".bat.rhat", ww * n_);
  auto P = w.get<VT>(key_ + ".bat.p", ww * n_);
  auto V = w.get<VT>(key_ + ".bat.v", ww * n_);
  auto Sv = w.get<VT>(key_ + ".bat.s", ww * n_);
  auto T = w.get<VT>(key_ + ".bat.t", ww * n_);
  auto PH = w.get<VT>(key_ + ".bat.phat", ww * n_);
  auto SH = w.get<VT>(key_ + ".bat.shat", ww * n_);
  auto rho = w.get<S>(key_ + ".bat.rho", ww);
  auto alpha = w.get<S>(key_ + ".bat.alpha", ww);
  auto omega = w.get<S>(key_ + ".bat.omega", ww);
  auto sc0 = w.get<S>(key_ + ".bat.sc0", ww);  // per-slot coefficient scratch
  auto sc1 = w.get<S>(key_ + ".bat.sc1", ww);
  auto red = w.get<S>(key_ + ".bat.red", ww);  // dot/nrm2 results per slot
  auto red2 = w.get<S>(key_ + ".bat.red2", ww);
  auto target = w.get<double>(key_ + ".bat.target", ww);
  auto bref = w.get<double>(key_ + ".bat.bref", ww);
  auto itc = w.get<int>(key_ + ".bat.itc", ww);  // per-column iteration count
  auto map = w.get<int>(key_ + ".bat.map", ww);  // slot → original column
  auto upd = w.get<unsigned char>(key_ + ".bat.upd", ww);  // direction-update mask
  auto best = w.get<double>(key_ + ".bat.best", ww);  // stagnation guard state
  auto stall = w.get<int>(key_ + ".bat.stall", ww);
  const std::ptrdiff_t nld = static_cast<std::ptrdiff_t>(n_);

  // Survivor-panel layout (base/panel.hpp; see CgSolver::solve_many_compact
  // for the scheme).  Addressing only — iterates are bit-identical.
  const PanelLayout lay = cfg_.layout.value_or(w.panel_layout());
  const bool ilv = lay == PanelLayout::kColMajor;
  const std::ptrdiff_t pld = ilv ? static_cast<std::ptrdiff_t>(W) : nld;
  std::span<VT> scr;  // contiguous staging for single-column work
  if (ilv) scr = w.get<VT>(key_ + ".bat.scr", n_);

  auto col = [&](std::span<VT> blk, int j) {
    return std::span<VT>(blk.data() + static_cast<std::size_t>(j) * n_, n_);
  };
  auto ccol = [&](std::span<VT> blk, int j) {
    return std::span<const VT>(blk.data() + static_cast<std::size_t>(j) * n_, n_);
  };
  auto cptr = [&](std::span<VT> blk, int j) {
    return blk.data() + static_cast<std::ptrdiff_t>(j) * nld;
  };
  auto xcol = [&](int c) {
    return std::span<VT>(x + static_cast<std::ptrdiff_t>(c) * ldx, n_);
  };
  // Layout-neutral single-column helpers: exact element copies / zeros on
  // either layout (the kernels the row-major path uses make the same
  // stores).
  auto copy_col = [&](std::span<VT> src, std::span<VT> dst, int j) {
    if (ilv)
      panel_copy_col(src.data(), pld, lay, j, dst.data(), pld, lay, j, nld);
    else
      kx_.copy(ccol(src, j), col(dst, j));
  };
  auto zero_col = [&](std::span<VT> blk, int j) {
    if (ilv)
      for (std::ptrdiff_t i = 0; i < nld; ++i) blk[static_cast<std::size_t>(i * pld + j)] = VT{0};
    else
      kx_.set_zero(col(blk, j));
  };

  int na = 0;    // live width
  int next = 0;  // head of the pending column queue

  // Initialize original column c into slot j — solve()'s exact preamble
  // sequence.  Returns false when the column converges at iteration 0.
  auto init_slot = [&](int j, int c) -> bool {
    map[j] = c;
    itc[j] = 0;
    kx_.nrm2_cols(b + static_cast<std::ptrdiff_t>(c) * ldb, ldb, 1, n_, &red[j]);
    const double bnorm = static_cast<double>(red[j]);
    if (!std::isfinite(bnorm)) {
      // Poisoned RHS: retire the column before it ever occupies a slot.
      res[c].fail(SolveStatus::kNonFinite, "b");
      return false;
    }
    bref[j] = bnorm > 0.0 ? bnorm : 1.0;
    target[j] = cfg_.rtol * bref[j];
    // Interleaved: build r in contiguous scratch so the residual and its
    // norm are the row-major path's operations verbatim, then scatter
    // (exact copies) into the R and RH panel columns.
    VT* r0 = ilv ? scr.data() : cptr(R, j);
    a_->residual(std::span<const VT>(b + static_cast<std::ptrdiff_t>(c) * ldb, n_),
                 std::span<const VT>(x + static_cast<std::ptrdiff_t>(c) * ldx, n_),
                 std::span<VT>(r0, n_));
    kx_.nrm2_cols(r0, nld, 1, n_, &red[j]);
    const double rnorm = static_cast<double>(red[j]);
    if (cfg_.record_history) res[c].history.push_back(rnorm / bref[j]);
    if (!std::isfinite(rnorm)) {
      res[c].fail(SolveStatus::kNonFinite, "rnorm");
      return false;
    }
    if (rnorm <= target[j]) {
      res[c].mark_converged();
      return false;
    }
    best[j] = rnorm;
    stall[j] = 0;
    if (ilv) {
      panel_copy_col(r0, nld, PanelLayout::kRowMajor, 0, R.data(), pld, lay, j, nld);
      panel_copy_col(r0, nld, PanelLayout::kRowMajor, 0, RH.data(), pld, lay, j, nld);
    } else {
      kx_.copy(ccol(R, j), col(RH, j));
    }
    rho[j] = S{1};
    alpha[j] = S{1};
    omega[j] = S{1};
    zero_col(P, j);
    zero_col(V, j);
    return true;
  };
  auto refill = [&]() {
    while (na < W && next < k)
      if (init_slot(na, next++)) ++na;
  };
  // Swap-remove.  BiCGStab has five mid-pass retirement sites with
  // different panel liveness; moving all eight panels is simpler than
  // tracking which are live where, and retirements are rare.
  auto move_slot = [&](int dst, int src) {
    if (dst == src) return;
    for (auto* blk : {&R, &RH, &P, &V, &Sv, &T, &PH, &SH}) {
      if (ilv)
        panel_copy_col(blk->data(), pld, lay, src, blk->data(), pld, lay, dst, nld);
      else
        kx_.copy(ccol(*blk, src), col(*blk, dst));
    }
    rho[dst] = rho[src];
    alpha[dst] = alpha[src];
    omega[dst] = omega[src];
    sc0[dst] = sc0[src];
    sc1[dst] = sc1[src];
    red[dst] = red[src];
    red2[dst] = red2[src];
    target[dst] = target[src];
    bref[dst] = bref[src];
    itc[dst] = itc[src];
    map[dst] = map[src];
    upd[dst] = upd[src];
    best[dst] = best[src];
    stall[dst] = stall[src];
  };

  refill();
  while (na > 0 || next < k) {
    // Iteration boundary: retire exhausted budgets, top the wave back up.
    for (int j = 0; j < na;) {
      if (itc[j] >= cfg_.max_iters) {
        move_slot(j, --na);
      } else {
        ++j;
      }
    }
    refill();
    if (na == 0) break;

    kx_.dot_cols(RH.data(), pld, R.data(), pld, na, n_, red.data(), nullptr, lay, lay);
    for (int j = 0; j < na;) {
      const int it = ++itc[j];
      res[map[j]].iterations = it;
      const S rho_new = red[j];
      if (!std::isfinite(static_cast<double>(rho_new)) || rho_new == S{0}) {
        res[map[j]].fail(std::isfinite(static_cast<double>(rho_new))
                             ? SolveStatus::kBreakdown
                             : SolveStatus::kNonFinite,
                         "rho");
        move_slot(j, --na);
        continue;
      }
      if (it == 1) {
        copy_col(R, P, j);
        upd[j] = 0;
      } else {
        upd[j] = 1;
        sc0[j] = -omega[j];
        sc1[j] = (rho_new / rho[j]) * (alpha[j] / omega[j]);  // beta
      }
      rho[j] = rho_new;
      ++j;
    }
    if (na == 0) continue;
    bool any_upd = false;
    for (int j = 0; j < na; ++j) any_upd = any_upd || upd[j] != 0;
    if (any_upd) {
      // p_j = r_j + beta_j (p_j − omega_j v_j) for slots past iteration 1
      // (freshly injected slots took p = r above, masked out here).
      kx_.axpy_cols(sc0.data(), V.data(), pld, P.data(), pld, na, n_, upd.data(),
                      nullptr, lay, lay);
      for (int j = 0; j < na; ++j) sc0[j] = S{1};
      kx_.axpby_cols(sc0.data(), R.data(), pld, sc1.data(), P.data(), pld, na, n_,
                       upd.data(), lay, lay);
    }

    m_->apply_many_layout(P.data(), pld, PH.data(), pld, na, lay);
    a_->apply_many_layout(PH.data(), pld, V.data(), pld, na, lay, lay);
    kx_.dot_cols(RH.data(), pld, V.data(), pld, na, n_, red.data(), nullptr, lay, lay);
    for (int j = 0; j < na;) {
      const S rhat_v = red[j];
      if (!std::isfinite(static_cast<double>(rhat_v)) || rhat_v == S{0}) {
        res[map[j]].fail(std::isfinite(static_cast<double>(rhat_v))
                             ? SolveStatus::kBreakdown
                             : SolveStatus::kNonFinite,
                         "rhat_v");
        move_slot(j, --na);
        continue;
      }
      alpha[j] = rho[j] / rhat_v;
      sc0[j] = -alpha[j];
      copy_col(R, Sv, j);  // s_j = r_j − alpha_j v_j …
      ++j;
    }
    if (na == 0) continue;
    kx_.axpy_cols(sc0.data(), V.data(), pld, Sv.data(), pld, na, n_, nullptr, nullptr,
                    lay, lay);
    kx_.nrm2_cols(Sv.data(), pld, na, n_, red.data(), nullptr, lay);
    for (int j = 0; j < na;) {
      const double snorm = static_cast<double>(red[j]);
      if (snorm <= target[j]) {
        const int c = map[j];
        // x_c += alpha_j phat_j: a width-1 column axpy.  On the interleaved
        // layout PH's column j is strided, so this goes through axpy_cols
        // (the same element math/rounding as kx_.axpy single-column).
        if (ilv)
          kx_.axpy_cols(&alpha[j], PH.data() + j, pld, x + static_cast<std::ptrdiff_t>(c) * ldx,
                          ldx, 1, n_, nullptr, nullptr, lay, PanelLayout::kRowMajor);
        else
          kx_.axpy(alpha[j], ccol(PH, j), xcol(c));
        if (cfg_.record_history) res[c].history.push_back(snorm / bref[j]);
        res[c].mark_converged();
        move_slot(j, --na);
        continue;
      }
      ++j;
    }
    if (na == 0) continue;

    m_->apply_many_layout(Sv.data(), pld, SH.data(), pld, na, lay);
    a_->apply_many_layout(SH.data(), pld, T.data(), pld, na, lay, lay);
    kx_.dot_cols(T.data(), pld, T.data(), pld, na, n_, red.data(), nullptr, lay, lay);
    kx_.dot_cols(T.data(), pld, Sv.data(), pld, na, n_, red2.data(), nullptr, lay, lay);
    for (int j = 0; j < na;) {
      const S tt = red[j];
      if (!std::isfinite(static_cast<double>(tt)) || tt == S{0}) {
        res[map[j]].fail(std::isfinite(static_cast<double>(tt))
                             ? SolveStatus::kBreakdown
                             : SolveStatus::kNonFinite,
                         "tt");
        move_slot(j, --na);
        continue;
      }
      omega[j] = red2[j] / tt;
      sc0[j] = -omega[j];
      ++j;
    }
    if (na == 0) continue;
    // x_{map[j]} += alpha_j phat_j + omega_j shat_j (two chained scattered
    // updates, as in solve()); then r_j = s_j − omega_j t_j.
    kx_.axpy_cols(alpha.data(), PH.data(), pld, x, ldx, na, n_, nullptr, map.data(),
                    lay, PanelLayout::kRowMajor);
    kx_.axpy_cols(omega.data(), SH.data(), pld, x, ldx, na, n_, nullptr, map.data(),
                    lay, PanelLayout::kRowMajor);
    for (int j = 0; j < na; ++j) copy_col(Sv, R, j);
    kx_.axpy_cols(sc0.data(), T.data(), pld, R.data(), pld, na, n_, nullptr, nullptr,
                    lay, lay);
    kx_.nrm2_cols(R.data(), pld, na, n_, red.data(), nullptr, lay);
    for (int j = 0; j < na;) {
      const int c = map[j];
      const double rnorm = static_cast<double>(red[j]);
      if (cfg_.record_history) res[c].history.push_back(rnorm / bref[j]);
      if (!std::isfinite(rnorm)) {
        res[c].fail(SolveStatus::kNonFinite, "rnorm");
        move_slot(j, --na);
        continue;
      }
      if (rnorm <= target[j]) {
        res[c].mark_converged();
        move_slot(j, --na);
        continue;
      }
      if (omega[j] == S{0}) {  // stagnation breakdown
        res[c].fail(SolveStatus::kBreakdown, "omega");
        move_slot(j, --na);
        continue;
      }
      if (cfg_.stagnate_window > 0) {
        if (rnorm < 0.99 * best[j]) {
          best[j] = rnorm;
          stall[j] = 0;
        } else if (++stall[j] >= cfg_.stagnate_window) {
          res[c].fail(SolveStatus::kStagnated, "rnorm");
          move_slot(j, --na);
          continue;
        }
      }
      ++j;
    }
  }
}

// Masked lockstep batched BiCGStab — the PR 3 reference path (cfg.compact
// = false), mirroring solve() per column.  Every per-column scalar
// recurrence and element-local update matches solve() exactly; the four
// applications per iteration (M·p, A·phat, M·s, A·shat) run batched while
// all columns are live, so each streams the matrix/factors once for the
// whole batch.
template <class VT>
void BiCgStabSolver<VT>::solve_many_masked(const VT* b, std::ptrdiff_t ldb, VT* x,
                                           std::ptrdiff_t ldx, int k,
                                           std::vector<SolveResult>& res) {
  using S = acc_t<VT>;
  const std::size_t kk = static_cast<std::size_t>(k);
  SolverWorkspace& w = wsref();
  auto R = w.get<VT>(key_ + ".bat.r", kk * n_);
  auto RH = w.get<VT>(key_ + ".bat.rhat", kk * n_);
  auto P = w.get<VT>(key_ + ".bat.p", kk * n_);
  auto V = w.get<VT>(key_ + ".bat.v", kk * n_);
  auto Sv = w.get<VT>(key_ + ".bat.s", kk * n_);
  auto T = w.get<VT>(key_ + ".bat.t", kk * n_);
  auto PH = w.get<VT>(key_ + ".bat.phat", kk * n_);
  auto SH = w.get<VT>(key_ + ".bat.shat", kk * n_);
  auto rho = w.get<S>(key_ + ".bat.rho", kk);
  auto alpha = w.get<S>(key_ + ".bat.alpha", kk);
  auto omega = w.get<S>(key_ + ".bat.omega", kk);
  auto sc0 = w.get<S>(key_ + ".bat.sc0", kk);  // per-column coefficient scratch
  auto sc1 = w.get<S>(key_ + ".bat.sc1", kk);
  auto red = w.get<S>(key_ + ".bat.red", kk);  // dot/nrm2 results per column
  auto red2 = w.get<S>(key_ + ".bat.red2", kk);
  auto target = w.get<double>(key_ + ".bat.target", kk);
  auto bref = w.get<double>(key_ + ".bat.bref", kk);
  auto act = w.get<unsigned char>(key_ + ".bat.act", kk);
  auto best = w.get<double>(key_ + ".bat.best", kk);  // stagnation guard state
  auto stall = w.get<int>(key_ + ".bat.stall", kk);
  const std::ptrdiff_t nld = static_cast<std::ptrdiff_t>(n_);

  auto col = [&](std::span<VT> blk, int c) {
    return std::span<VT>(blk.data() + static_cast<std::size_t>(c) * n_, n_);
  };
  auto ccol = [&](std::span<VT> blk, int c) {
    return std::span<const VT>(blk.data() + static_cast<std::size_t>(c) * n_, n_);
  };
  auto xcol = [&](int c) {
    return std::span<VT>(x + static_cast<std::ptrdiff_t>(c) * ldx, n_);
  };

  // nrm2_cols / dot_cols reproduce solve()'s single-threaded blas1
  // reductions bit-for-bit with the column chains interleaved for ILP.
  int nactive = 0;
  a_->residual_many(b, ldb, x, ldx, R.data(), nld, k);
  kx_.nrm2_cols(b, ldb, k, n_, red.data());
  kx_.nrm2_cols(R.data(), nld, k, n_, red2.data());
  for (int c = 0; c < k; ++c) {
    const double bnorm = static_cast<double>(red[c]);
    bref[c] = bnorm > 0.0 ? bnorm : 1.0;
    target[c] = cfg_.rtol * bref[c];
    kx_.copy(ccol(R, c), col(RH, c));
    const double rnorm = static_cast<double>(red2[c]);
    if (cfg_.record_history) res[c].history.push_back(rnorm / bref[c]);
    if (!std::isfinite(bnorm) || !std::isfinite(rnorm)) {
      res[c].fail(SolveStatus::kNonFinite, !std::isfinite(bnorm) ? "b" : "rnorm");
      act[c] = 0;
      continue;
    }
    if (rnorm <= target[c]) {
      res[c].mark_converged();
      act[c] = 0;
      continue;
    }
    best[c] = rnorm;
    stall[c] = 0;
    rho[c] = S{1};
    alpha[c] = S{1};
    omega[c] = S{1};
    kx_.set_zero(col(P, c));
    kx_.set_zero(col(V, c));
    act[c] = 1;
    ++nactive;
  }

  auto batched_apply = [&](auto&& one, auto&& many, std::span<VT> in, std::span<VT> out) {
    if (nactive == k) {
      many(in.data(), out.data());
    } else {
      for (int c = 0; c < k; ++c)
        if (act[c]) one(ccol(in, c), col(out, c));
    }
  };
  auto m_apply = [&](std::span<VT> in, std::span<VT> out) {
    batched_apply([&](auto r, auto z) { m_->apply(r, z); },
                  [&](const VT* r, VT* z) { m_->apply_many(r, nld, z, nld, k); }, in, out);
  };
  auto a_apply = [&](std::span<VT> in, std::span<VT> out) {
    batched_apply([&](auto r, auto z) { a_->apply(r, z); },
                  [&](const VT* r, VT* z) { a_->apply_many(r, nld, z, nld, k); }, in, out);
  };

  for (int it = 1; it <= cfg_.max_iters && nactive > 0; ++it) {
    kx_.dot_cols(RH.data(), nld, R.data(), nld, k, n_, red.data(), act.data());
    for (int c = 0; c < k; ++c) {
      if (!act[c]) continue;
      res[c].iterations = it;
      const S rho_new = red[c];
      if (!std::isfinite(static_cast<double>(rho_new)) || rho_new == S{0}) {
        res[c].fail(std::isfinite(static_cast<double>(rho_new))
                        ? SolveStatus::kBreakdown
                        : SolveStatus::kNonFinite,
                    "rho");
        act[c] = 0;
        --nactive;
        continue;
      }
      if (it == 1) {
        kx_.copy(ccol(R, c), col(P, c));
        sc0[c] = S{0};  // no direction update on the first iteration
      } else {
        sc0[c] = -omega[c];
        sc1[c] = (rho_new / rho[c]) * (alpha[c] / omega[c]);  // beta
      }
      rho[c] = rho_new;
    }
    if (it > 1) {
      // p_c = r_c + beta_c (p_c − omega_c v_c), masked per column.
      kx_.axpy_cols(sc0.data(), V.data(), nld, P.data(), nld, k, n_, act.data());
      for (int c = 0; c < k; ++c) sc0[c] = S{1};
      kx_.axpby_cols(sc0.data(), R.data(), nld, sc1.data(), P.data(), nld, k, n_,
                       act.data());
    }

    m_apply(P, PH);
    a_apply(PH, V);
    kx_.dot_cols(RH.data(), nld, V.data(), nld, k, n_, red.data(), act.data());
    for (int c = 0; c < k; ++c) {
      if (!act[c]) continue;
      const S rhat_v = red[c];
      if (!std::isfinite(static_cast<double>(rhat_v)) || rhat_v == S{0}) {
        res[c].fail(std::isfinite(static_cast<double>(rhat_v))
                        ? SolveStatus::kBreakdown
                        : SolveStatus::kNonFinite,
                    "rhat_v");
        act[c] = 0;
        --nactive;
        continue;
      }
      alpha[c] = rho[c] / rhat_v;
      sc0[c] = -alpha[c];
      // s_c = r_c − alpha_c v_c
      kx_.copy(ccol(R, c), col(Sv, c));
    }
    kx_.axpy_cols(sc0.data(), V.data(), nld, Sv.data(), nld, k, n_, act.data());
    kx_.nrm2_cols(Sv.data(), nld, k, n_, red.data(), act.data());
    for (int c = 0; c < k; ++c) {
      if (!act[c]) continue;
      const double snorm = static_cast<double>(red[c]);
      if (snorm <= target[c]) {
        kx_.axpy(alpha[c], ccol(PH, c), xcol(c));
        if (cfg_.record_history) res[c].history.push_back(snorm / bref[c]);
        res[c].mark_converged();
        act[c] = 0;
        --nactive;
      }
    }
    if (nactive == 0) break;

    m_apply(Sv, SH);
    a_apply(SH, T);
    kx_.dot_cols(T.data(), nld, T.data(), nld, k, n_, red.data(), act.data());
    kx_.dot_cols(T.data(), nld, Sv.data(), nld, k, n_, red2.data(), act.data());
    for (int c = 0; c < k; ++c) {
      if (!act[c]) continue;
      const S tt = red[c];
      if (!std::isfinite(static_cast<double>(tt)) || tt == S{0}) {
        res[c].fail(std::isfinite(static_cast<double>(tt)) ? SolveStatus::kBreakdown
                                                           : SolveStatus::kNonFinite,
                    "tt");
        act[c] = 0;
        --nactive;
        sc0[c] = S{0};
        sc1[c] = S{0};
        continue;
      }
      omega[c] = red2[c] / tt;
      sc0[c] = -omega[c];
      sc1[c] = S{1};
    }
    // x_c += alpha_c phat_c + omega_c shat_c (two chained updates, as in
    // solve()); then r_c = s_c − omega_c t_c.
    kx_.axpy_cols(alpha.data(), PH.data(), nld, x, ldx, k, n_, act.data());
    kx_.axpy_cols(omega.data(), SH.data(), nld, x, ldx, k, n_, act.data());
    for (int c = 0; c < k; ++c)
      if (act[c]) kx_.copy(ccol(Sv, c), col(R, c));
    kx_.axpy_cols(sc0.data(), T.data(), nld, R.data(), nld, k, n_, act.data());
    kx_.nrm2_cols(R.data(), nld, k, n_, red.data(), act.data());
    for (int c = 0; c < k; ++c) {
      if (!act[c]) continue;
      const double rnorm = static_cast<double>(red[c]);
      if (cfg_.record_history) res[c].history.push_back(rnorm / bref[c]);
      if (!std::isfinite(rnorm)) {
        res[c].fail(SolveStatus::kNonFinite, "rnorm");
        act[c] = 0;
        --nactive;
        continue;
      }
      if (rnorm <= target[c]) {
        res[c].mark_converged();
        act[c] = 0;
        --nactive;
        continue;
      }
      if (omega[c] == S{0}) {  // stagnation breakdown
        res[c].fail(SolveStatus::kBreakdown, "omega");
        act[c] = 0;
        --nactive;
        continue;
      }
      if (cfg_.stagnate_window > 0) {
        if (rnorm < 0.99 * best[c]) {
          best[c] = rnorm;
          stall[c] = 0;
        } else if (++stall[c] >= cfg_.stagnate_window) {
          res[c].fail(SolveStatus::kStagnated, "rnorm");
          act[c] = 0;
          --nactive;
        }
      }
    }
  }
}

template class BiCgStabSolver<double>;
template class BiCgStabSolver<float>;

}  // namespace nk
