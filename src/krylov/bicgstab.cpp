#include "krylov/bicgstab.hpp"

#include <cmath>

namespace nk {

template <class VT>
SolveResult BiCgStabSolver<VT>::solve(std::span<const VT> b, std::span<VT> x) {
  using S = acc_t<VT>;
  SolveResult res;
  res.solver = "bicgstab";
  const auto n = b.size();
  std::span<VT> r(r_), rhat(rhat_), p(p_), v(v_), s(s_), t(t_), phat(phat_), shat(shat_);

  const double bnorm = static_cast<double>(blas::nrm2(b));
  const double bref = bnorm > 0.0 ? bnorm : 1.0;
  const double target = cfg_.rtol * bref;

  a_->residual(b, std::span<const VT>(x.data(), n), r);
  blas::copy(std::span<const VT>(r_), rhat);
  double rnorm = static_cast<double>(blas::nrm2(std::span<const VT>(r_)));
  if (cfg_.record_history) res.history.push_back(rnorm / bref);
  if (rnorm <= target) {
    res.converged = true;
    return res;
  }

  S rho{1}, alpha{1}, omega{1};
  blas::set_zero(p);
  blas::set_zero(v);

  for (int it = 1; it <= cfg_.max_iters; ++it) {
    res.iterations = it;
    const S rho_new = blas::dot(std::span<const VT>(rhat_), std::span<const VT>(r_));
    if (!std::isfinite(static_cast<double>(rho_new)) || rho_new == S{0}) return res;
    if (it == 1) {
      blas::copy(std::span<const VT>(r_), p);
    } else {
      const S beta = (rho_new / rho) * (alpha / omega);
      // p = r + beta (p - omega v)
      blas::axpy(-omega, std::span<const VT>(v_), p);
      blas::axpby(S{1}, std::span<const VT>(r_), beta, p);
    }
    rho = rho_new;

    m_->apply(std::span<const VT>(p_), phat);
    a_->apply(std::span<const VT>(phat_), v);
    const S rhat_v = blas::dot(std::span<const VT>(rhat_), std::span<const VT>(v_));
    if (!std::isfinite(static_cast<double>(rhat_v)) || rhat_v == S{0}) return res;
    alpha = rho / rhat_v;

    // s = r - alpha v
    blas::copy(std::span<const VT>(r_), s);
    blas::axpy(-alpha, std::span<const VT>(v_), s);
    const double snorm = static_cast<double>(blas::nrm2(std::span<const VT>(s_)));
    if (snorm <= target) {
      blas::axpy(alpha, std::span<const VT>(phat_), x);
      if (cfg_.record_history) res.history.push_back(snorm / bref);
      res.converged = true;
      return res;
    }

    m_->apply(std::span<const VT>(s_), shat);
    a_->apply(std::span<const VT>(shat_), t);
    const S tt = blas::dot(std::span<const VT>(t_), std::span<const VT>(t_));
    if (!std::isfinite(static_cast<double>(tt)) || tt == S{0}) return res;
    omega = blas::dot(std::span<const VT>(t_), std::span<const VT>(s_)) / tt;

    blas::axpy(alpha, std::span<const VT>(phat_), x);
    blas::axpy(omega, std::span<const VT>(shat_), x);

    // r = s - omega t
    blas::copy(std::span<const VT>(s_), r);
    blas::axpy(-omega, std::span<const VT>(t_), r);

    rnorm = static_cast<double>(blas::nrm2(std::span<const VT>(r_)));
    if (cfg_.record_history) res.history.push_back(rnorm / bref);
    if (!std::isfinite(rnorm)) return res;
    if (rnorm <= target) {
      res.converged = true;
      return res;
    }
    if (omega == S{0}) return res;  // stagnation breakdown
  }
  return res;
}

template class BiCgStabSolver<double>;
template class BiCgStabSolver<float>;

}  // namespace nk
