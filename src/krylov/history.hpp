// Common solve-result and convergence-history types shared by all solvers
// and the bench harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nk {

/// Structured terminal cause of a solve — the taxonomy the daemon-facing
/// resilience layer keys retry/fallback policy on.  Every solver records
/// WHY it stopped, not just whether the residual target was met:
///
///   kConverged    residual target reached (and, through an engine, the
///                 true fp64 residual confirmed it)
///   kMaxIters     iteration / restart budget exhausted with finite residuals
///   kBreakdown    a Krylov recurrence scalar hit an exact zero (CG pivot,
///                 BiCGStab rho / rhat·v / t·t / omega, Arnoldi hj1) —
///                 SolveResult::failure names the site
///   kDiverged     the recurrence claimed convergence but the true fp64
///                 residual disagreed (the engines' rtol·1.5 demotion)
///   kNonFinite    a NaN/Inf surfaced in a residual norm or recurrence
///                 scalar — failure names where
///   kStagnated    the windowed progress test saw no relative-residual
///                 improvement for `stagnate_window` consecutive checks
///   kInvalidInput the inputs were rejected before any iteration
///                 (dimension mismatch, non-finite b, empty system)
enum class SolveStatus : std::uint8_t {
  kConverged = 0,
  kMaxIters,
  kBreakdown,
  kDiverged,
  kNonFinite,
  kStagnated,
  kInvalidInput,
};

/// Short stable name ("converged", "max_iters", "breakdown", ...).
const char* status_name(SolveStatus s) noexcept;

/// Outcome of one complete solve (outer loop including restarts).
struct SolveResult {
  std::string solver;                ///< e.g. "fp16-F3R", "fp64-CG"
  bool converged = false;
  SolveStatus status = SolveStatus::kMaxIters;  ///< terminal cause
  std::string failure;               ///< breakdown/non-finite site ("pivot",
                                     ///< "rho", "hj1", "rnorm", ...); empty
                                     ///< unless status is a failure kind
  int iterations = 0;                ///< outermost iterations (incl. restarts)
  int restarts = 0;
  std::uint64_t precond_invocations = 0;  ///< Table 3 metric
  std::uint64_t spmv_count = 0;
  double seconds = 0.0;
  double final_relres = 0.0;         ///< true fp64 ‖b−Ax‖/‖b‖ at exit
  std::vector<double> history;       ///< per-outer-iteration relative residual
  /// Precision-escalation fallback trail (Session's `;fallback=` policy):
  /// one "<solver>: <status>[ (<site>)]" entry per FAILED attempt that
  /// preceded the attempt this result describes.  Empty when the first
  /// attempt stood.
  std::vector<std::string> attempts;

  /// Record a terminal cause with its site and keep `converged` in sync.
  void fail(SolveStatus s, std::string where = {}) {
    status = s;
    failure = std::move(where);
    converged = false;
  }
  void mark_converged() {
    status = SolveStatus::kConverged;
    failure.clear();
    converged = true;
  }
};

/// Pretty one-line summary ("converged in 12 outer its / 768 M-applies,
/// 0.42 s, relres 6.3e-09").
std::string summarize(const SolveResult& r);

/// Geometric mean of a set of positive ratios (used in the relative-speedup
/// summaries that accompany the paper's figures).
double geomean(const std::vector<double>& xs);

}  // namespace nk
