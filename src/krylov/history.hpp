// Common solve-result and convergence-history types shared by all solvers
// and the bench harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nk {

/// Outcome of one complete solve (outer loop including restarts).
struct SolveResult {
  std::string solver;                ///< e.g. "fp16-F3R", "fp64-CG"
  bool converged = false;
  int iterations = 0;                ///< outermost iterations (incl. restarts)
  int restarts = 0;
  std::uint64_t precond_invocations = 0;  ///< Table 3 metric
  std::uint64_t spmv_count = 0;
  double seconds = 0.0;
  double final_relres = 0.0;         ///< true fp64 ‖b−Ax‖/‖b‖ at exit
  std::vector<double> history;       ///< per-outer-iteration relative residual
};

/// Pretty one-line summary ("converged in 12 outer its / 768 M-applies,
/// 0.42 s, relres 6.3e-09").
std::string summarize(const SolveResult& r);

/// Geometric mean of a set of positive ratios (used in the relative-speedup
/// summaries that accompany the paper's figures).
double geomean(const std::vector<double>& xs);

}  // namespace nk
