// Typed linear-operator interface.
//
// A solver at nesting level d sees vectors of type VT; the matrix behind
// the operator may be stored at a different (lower) precision.  Concrete
// operators wrap a CSR or sliced-ELLPACK matrix and perform the product in
// promote_t<matrix precision, VT> — e.g. the paper's level-3 FGMRES does
// its SpMV in fp32 because A is fp16 and the Arnoldi basis is fp32.
#pragma once

#include <cstdint>
#include <span>

#include "base/half.hpp"
#include "sparse/sell.hpp"
#include "sparse/spmv.hpp"

namespace nk {

template <class VT>
class Operator {
 public:
  virtual ~Operator() = default;

  /// y = A x.
  virtual void apply(std::span<const VT> x, std::span<VT> y) = 0;

  /// r = b - A x (fused).
  virtual void residual(std::span<const VT> b, std::span<const VT> x, std::span<VT> r) = 0;

  [[nodiscard]] virtual index_t size() const = 0;

  /// Number of operator applications so far (SpMV count; diagnostics).
  [[nodiscard]] std::uint64_t spmv_count() const { return count_; }
  void reset_spmv_count() { count_ = 0; }

 protected:
  std::uint64_t count_ = 0;
};

/// CSR-backed operator; MT is the storage precision of the matrix values.
template <class MT, class VT>
class CsrOperator final : public Operator<VT> {
 public:
  explicit CsrOperator(const CsrMatrix<MT>& a) : a_(&a) {}

  void apply(std::span<const VT> x, std::span<VT> y) override {
    ++this->count_;
    spmv(*a_, x, y);
  }
  void residual(std::span<const VT> b, std::span<const VT> x, std::span<VT> r) override {
    ++this->count_;
    nk::residual(*a_, x, b, r);
  }
  [[nodiscard]] index_t size() const override { return a_->nrows; }

  [[nodiscard]] const CsrMatrix<MT>& matrix() const { return *a_; }

 private:
  const CsrMatrix<MT>* a_;
};

/// Sliced-ELLPACK-backed operator (the paper's GPU storage format).
template <class MT, class VT>
class SellOperator final : public Operator<VT> {
 public:
  explicit SellOperator(const SellMatrix<MT>& a) : a_(&a) {}

  void apply(std::span<const VT> x, std::span<VT> y) override {
    ++this->count_;
    spmv(*a_, x, y);
  }
  void residual(std::span<const VT> b, std::span<const VT> x, std::span<VT> r) override {
    ++this->count_;
    nk::residual(*a_, x, b, r);
  }
  [[nodiscard]] index_t size() const override { return a_->nrows; }

 private:
  const SellMatrix<MT>* a_;
};

}  // namespace nk
