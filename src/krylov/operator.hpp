// Typed linear-operator interface.
//
// A solver at nesting level d sees vectors of type VT; the matrix behind
// the operator may be stored at a different (lower) precision.  Concrete
// operators wrap a CSR or sliced-ELLPACK matrix and perform the product in
// promote_t<matrix precision, VT> — e.g. the paper's level-3 FGMRES does
// its SpMV in fp32 because A is fp16 and the Arnoldi basis is fp32.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "backend/kernels.hpp"
#include "base/backend.hpp"
#include "base/half.hpp"
#include "base/panel.hpp"
#include "sparse/sell.hpp"

namespace nk {

template <class VT>
class Operator {
 public:
  virtual ~Operator() = default;

  /// y = A x.
  virtual void apply(std::span<const VT> x, std::span<VT> y) = 0;

  /// r = b - A x (fused).
  virtual void residual(std::span<const VT> b, std::span<const VT> x, std::span<VT> r) = 0;

  /// Y_c = A X_c for k batch columns (column c at x + c·ldx / y + c·ldy).
  /// Column results are bit-identical to k apply() calls; the default loops,
  /// concrete operators override with an SpMM that streams A only once.
  virtual void apply_many(const VT* x, std::ptrdiff_t ldx, VT* y, std::ptrdiff_t ldy,
                          int k) {
    const std::size_t n = static_cast<std::size_t>(size());
    for (int c = 0; c < k; ++c)
      apply(std::span<const VT>(x + static_cast<std::ptrdiff_t>(c) * ldx, n),
            std::span<VT>(y + static_cast<std::ptrdiff_t>(c) * ldy, n));
  }

  /// R_c = B_c − A X_c for k batch columns (fused batched residual).
  virtual void residual_many(const VT* b, std::ptrdiff_t ldb, const VT* x,
                             std::ptrdiff_t ldx, VT* r, std::ptrdiff_t ldr, int k) {
    const std::size_t n = static_cast<std::size_t>(size());
    for (int c = 0; c < k; ++c)
      residual(std::span<const VT>(b + static_cast<std::ptrdiff_t>(c) * ldb, n),
               std::span<const VT>(x + static_cast<std::ptrdiff_t>(c) * ldx, n),
               std::span<VT>(r + static_cast<std::ptrdiff_t>(c) * ldr, n));
  }

  /// Layout-aware batched apply: like apply_many but the X / Y panels are
  /// addressed per lx / ly (see panel.hpp).  The default stages interleaved
  /// panels through a grow-only row-major scratch — exact copies around the
  /// row-major apply, so results are bit-identical to apply_many at the
  /// cost of the transposes.  Operators with a native interleaved kernel
  /// (CSR SpMM) override to skip the staging.
  virtual void apply_many_layout(const VT* x, std::ptrdiff_t ldx, VT* y,
                                 std::ptrdiff_t ldy, int k, PanelLayout lx,
                                 PanelLayout ly) {
    if (lx == PanelLayout::kRowMajor && ly == PanelLayout::kRowMajor) {
      apply_many(x, ldx, y, ldy, k);
      return;
    }
    const std::ptrdiff_t n = size();
    stage_.resize(static_cast<std::size_t>(2 * k) * n);
    VT* xs = stage_.data();
    VT* ys = xs + static_cast<std::ptrdiff_t>(k) * n;
    const VT* xr = x;
    std::ptrdiff_t lxr = ldx;
    if (lx == PanelLayout::kColMajor) {
      panel_copy(x, ldx, lx, xs, n, PanelLayout::kRowMajor, k, n);
      xr = xs;
      lxr = n;
    }
    if (ly == PanelLayout::kColMajor) {
      apply_many(xr, lxr, ys, n, k);
      panel_copy(ys, n, PanelLayout::kRowMajor, y, ldy, ly, k, n);
    } else {
      apply_many(xr, lxr, y, ldy, k);
    }
  }

  [[nodiscard]] virtual index_t size() const = 0;

  /// Number of operator applications so far (SpMV count; diagnostics).
  [[nodiscard]] std::uint64_t spmv_count() const { return count_; }
  void reset_spmv_count() { count_ = 0; }

 protected:
  std::uint64_t count_ = 0;
  std::vector<VT> stage_;  ///< grow-only transpose scratch of the staged default
};

/// CSR-backed operator; MT is the storage precision of the matrix values.
/// The backend chooses which kernel implementation performs the products —
/// the operator itself never names one.
template <class MT, class VT>
class CsrOperator final : public Operator<VT> {
 public:
  explicit CsrOperator(const CsrMatrix<MT>& a, Backend be = Backend::kHost)
      : a_(&a), kx_(be) {}

  void apply(std::span<const VT> x, std::span<VT> y) override {
    ++this->count_;
    kx_.spmv(*a_, x, y);
  }
  void residual(std::span<const VT> b, std::span<const VT> x, std::span<VT> r) override {
    ++this->count_;
    kx_.residual(*a_, x, b, r);
  }
  void apply_many(const VT* x, std::ptrdiff_t ldx, VT* y, std::ptrdiff_t ldy,
                  int k) override {
    this->count_ += static_cast<std::uint64_t>(k);  // k column-SpMVs, one A sweep
    kx_.spmm(*a_, x, ldx, y, ldy, k);
  }
  void residual_many(const VT* b, std::ptrdiff_t ldb, const VT* x, std::ptrdiff_t ldx,
                     VT* r, std::ptrdiff_t ldr, int k) override {
    this->count_ += static_cast<std::uint64_t>(k);
    kx_.residual_many(*a_, x, ldx, b, ldb, r, ldr, k);
  }
  void apply_many_layout(const VT* x, std::ptrdiff_t ldx, VT* y, std::ptrdiff_t ldy,
                         int k, PanelLayout lx, PanelLayout ly) override {
    this->count_ += static_cast<std::uint64_t>(k);
    kx_.spmm(*a_, x, ldx, y, ldy, k, lx, ly);  // native: no transpose staging
  }
  [[nodiscard]] index_t size() const override { return a_->nrows; }

  [[nodiscard]] const CsrMatrix<MT>& matrix() const { return *a_; }

 private:
  const CsrMatrix<MT>* a_;
  kern::Kernels kx_;
};

/// Sliced-ELLPACK-backed operator (the paper's GPU storage format).
template <class MT, class VT>
class SellOperator final : public Operator<VT> {
 public:
  explicit SellOperator(const SellMatrix<MT>& a, Backend be = Backend::kHost)
      : a_(&a), kx_(be) {}

  void apply(std::span<const VT> x, std::span<VT> y) override {
    ++this->count_;
    kx_.spmv(*a_, x, y);
  }
  void residual(std::span<const VT> b, std::span<const VT> x, std::span<VT> r) override {
    ++this->count_;
    kx_.residual(*a_, x, b, r);
  }
  void apply_many(const VT* x, std::ptrdiff_t ldx, VT* y, std::ptrdiff_t ldy,
                  int k) override {
    this->count_ += static_cast<std::uint64_t>(k);
    kx_.spmm(*a_, x, ldx, y, ldy, k);
  }
  void residual_many(const VT* b, std::ptrdiff_t ldb, const VT* x, std::ptrdiff_t ldx,
                     VT* r, std::ptrdiff_t ldr, int k) override {
    this->count_ += static_cast<std::uint64_t>(k);
    kx_.residual_many(*a_, x, ldx, b, ldb, r, ldr, k);
  }
  [[nodiscard]] index_t size() const override { return a_->nrows; }

 private:
  const SellMatrix<MT>* a_;
  kern::Kernels kx_;
};

}  // namespace nk
