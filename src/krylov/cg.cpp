#include "krylov/cg.hpp"

#include <cmath>

namespace nk {

template <class VT>
SolveResult CgSolver<VT>::solve(std::span<const VT> b, std::span<VT> x) {
  SolveResult res;
  res.solver = "cg";
  const auto n = b.size();
  std::span<VT> r(r_), z(z_), p(p_), q(q_);

  const double bnorm = static_cast<double>(blas::nrm2(b));
  const double target = cfg_.rtol * (bnorm > 0.0 ? bnorm : 1.0);

  a_->residual(b, std::span<const VT>(x.data(), n), r);
  double rnorm = static_cast<double>(blas::nrm2(std::span<const VT>(r_)));
  if (cfg_.record_history) res.history.push_back(rnorm / (bnorm > 0.0 ? bnorm : 1.0));
  if (rnorm <= target) {
    res.converged = true;
    return res;
  }

  m_->apply(std::span<const VT>(r_), z);
  blas::copy(std::span<const VT>(z_), p);
  auto rz = blas::dot(std::span<const VT>(r_), std::span<const VT>(z_));

  for (int it = 1; it <= cfg_.max_iters; ++it) {
    a_->apply(std::span<const VT>(p_), q);
    const auto pq = blas::dot(std::span<const VT>(p_), std::span<const VT>(q_));
    if (!(std::abs(static_cast<double>(pq)) > 0.0) ||
        !std::isfinite(static_cast<double>(pq))) {
      res.iterations = it;
      return res;  // breakdown (matrix not SPD w.r.t. p)
    }
    const auto alpha = rz / pq;
    blas::axpy(alpha, std::span<const VT>(p_), x);
    blas::axpy(-alpha, std::span<const VT>(q_), r);

    rnorm = static_cast<double>(blas::nrm2(std::span<const VT>(r_)));
    if (cfg_.record_history) res.history.push_back(rnorm / (bnorm > 0.0 ? bnorm : 1.0));
    res.iterations = it;
    if (!std::isfinite(rnorm)) return res;
    if (rnorm <= target) {
      res.converged = true;
      return res;
    }

    m_->apply(std::span<const VT>(r_), z);
    const auto rz_new = blas::dot(std::span<const VT>(r_), std::span<const VT>(z_));
    const auto beta = rz_new / rz;
    rz = rz_new;
    blas::axpby(static_cast<decltype(rz)>(1), std::span<const VT>(z_),
                static_cast<decltype(rz)>(beta), p);
  }
  return res;
}

template class CgSolver<double>;
template class CgSolver<float>;

}  // namespace nk
