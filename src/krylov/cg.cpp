#include "krylov/cg.hpp"

#include <cmath>

#include "base/blas_block.hpp"

namespace nk {

template <class VT>
SolveResult CgSolver<VT>::solve(std::span<const VT> b, std::span<VT> x) {
  SolveResult res;
  res.solver = "cg";
  const auto n = b.size();
  std::span<VT> r(r_), z(z_), p(p_), q(q_);

  const double bnorm = static_cast<double>(kx_.nrm2(b));
  const double target = cfg_.rtol * (bnorm > 0.0 ? bnorm : 1.0);

  a_->residual(b, std::span<const VT>(x.data(), n), r);
  double rnorm = static_cast<double>(kx_.nrm2(std::span<const VT>(r_)));
  if (cfg_.record_history) res.history.push_back(rnorm / (bnorm > 0.0 ? bnorm : 1.0));
  if (!std::isfinite(bnorm) || !std::isfinite(rnorm)) {
    res.fail(SolveStatus::kNonFinite, "rnorm");
    return res;
  }
  if (rnorm <= target) {
    res.mark_converged();
    return res;
  }
  // Stagnation guard state: comparisons only, never touches the iterates.
  double best = rnorm;
  int stall = 0;

  m_->apply(std::span<const VT>(r_), z);
  kx_.copy(std::span<const VT>(z_), p);
  auto rz = kx_.dot(std::span<const VT>(r_), std::span<const VT>(z_));

  for (int it = 1; it <= cfg_.max_iters; ++it) {
    a_->apply(std::span<const VT>(p_), q);
    const auto pq = kx_.dot(std::span<const VT>(p_), std::span<const VT>(q_));
    if (!(std::abs(static_cast<double>(pq)) > 0.0) ||
        !std::isfinite(static_cast<double>(pq))) {
      res.iterations = it;
      res.fail(std::isfinite(static_cast<double>(pq)) ? SolveStatus::kBreakdown
                                                      : SolveStatus::kNonFinite,
               "pivot");
      return res;  // breakdown (matrix not SPD w.r.t. p)
    }
    const auto alpha = rz / pq;
    kx_.axpy(alpha, std::span<const VT>(p_), x);
    kx_.axpy(-alpha, std::span<const VT>(q_), r);

    rnorm = static_cast<double>(kx_.nrm2(std::span<const VT>(r_)));
    if (cfg_.record_history) res.history.push_back(rnorm / (bnorm > 0.0 ? bnorm : 1.0));
    res.iterations = it;
    if (!std::isfinite(rnorm)) {
      res.fail(SolveStatus::kNonFinite, "rnorm");
      return res;
    }
    if (rnorm <= target) {
      res.mark_converged();
      return res;
    }
    if (cfg_.stagnate_window > 0) {
      if (rnorm < 0.99 * best) {
        best = rnorm;
        stall = 0;
      } else if (++stall >= cfg_.stagnate_window) {
        res.fail(SolveStatus::kStagnated, "rnorm");
        return res;
      }
    }

    m_->apply(std::span<const VT>(r_), z);
    const auto rz_new = kx_.dot(std::span<const VT>(r_), std::span<const VT>(z_));
    const auto beta = rz_new / rz;
    rz = rz_new;
    kx_.axpby(static_cast<decltype(rz)>(1), std::span<const VT>(z_),
                static_cast<decltype(rz)>(beta), p);
  }
  return res;
}

template <class VT>
std::vector<SolveResult> CgSolver<VT>::solve_many(const VT* b, std::ptrdiff_t ldb, VT* x,
                                                  std::ptrdiff_t ldx, int k, int wave) {
  std::vector<SolveResult> res(static_cast<std::size_t>(std::max(k, 0)));
  for (auto& r : res) r.solver = "cg";
  if (k <= 0) return res;
  if (cfg_.compact) {
    solve_many_compact(b, ldb, x, ldx, k, wave, res);
  } else {
    solve_many_masked(b, ldb, x, ldx, k, res);
  }
  return res;
}

// Compacting batched CG — the default scheduler.  Survivor columns live in
// the leading `na` columns of the R/Z/P/Q panels; `map[j]` names the
// original column slot j is solving, and retirement swap-removes the slot
// (column data moves verbatim, so per-column arithmetic — and therefore
// every iterate — is solve()'s to the bit).  Every kernel runs at width
// `na`, falling through the compile-time k = 4/8/16 dispatch tiers as the
// set shrinks.  With 0 < wave < k the same loop becomes the ragged-batch
// scheduler: at most `wave` columns are in flight, and pending columns
// are initialized into freed slots at iteration boundaries.
template <class VT>
void CgSolver<VT>::solve_many_compact(const VT* b, std::ptrdiff_t ldb, VT* x,
                                      std::ptrdiff_t ldx, int k, int wave,
                                      std::vector<SolveResult>& res) {
  using S = acc_t<VT>;
  const int W = (wave > 0 && wave < k) ? wave : k;  // dispatch width
  const std::size_t ww = static_cast<std::size_t>(W);
  SolverWorkspace& w = wsref();
  auto R = w.get<VT>(key_ + ".bat.r", ww * n_);
  auto Z = w.get<VT>(key_ + ".bat.z", ww * n_);
  auto P = w.get<VT>(key_ + ".bat.p", ww * n_);
  auto Q = w.get<VT>(key_ + ".bat.q", ww * n_);
  auto rz = w.get<S>(key_ + ".bat.rz", ww);
  auto alpha = w.get<S>(key_ + ".bat.alpha", ww);
  auto nalpha = w.get<S>(key_ + ".bat.nalpha", ww);
  auto beta = w.get<S>(key_ + ".bat.beta", ww);
  auto ones = w.get<S>(key_ + ".bat.ones", ww);
  auto red = w.get<S>(key_ + ".bat.red", ww);  // dot/nrm2 results per slot
  auto target = w.get<double>(key_ + ".bat.target", ww);
  auto bref = w.get<double>(key_ + ".bat.bref", ww);
  auto itc = w.get<int>(key_ + ".bat.itc", ww);  // per-column iteration count
  auto map = w.get<int>(key_ + ".bat.map", ww);  // slot → original column
  auto best = w.get<double>(key_ + ".bat.best", ww);  // stagnation guard state
  auto stall = w.get<int>(key_ + ".bat.stall", ww);
  const std::ptrdiff_t nld = static_cast<std::ptrdiff_t>(n_);

  // Survivor-panel layout (base/panel.hpp): row-major columns (the seed
  // layout, single-column spans free) or interleaved columns (unit-stride
  // across the live set for every width-na kernel).  Addressing only —
  // per-column operation order is identical, so iterates match solve() to
  // the bit under either layout.
  const PanelLayout lay = cfg_.layout.value_or(w.panel_layout());
  const bool ilv = lay == PanelLayout::kColMajor;
  const std::ptrdiff_t pld = ilv ? static_cast<std::ptrdiff_t>(W) : nld;
  // Interleaved panels have no contiguous columns, so single-column work
  // (residual/preconditioner applies in init_slot) stages through scratch.
  std::span<VT> scr;
  if (ilv) scr = w.get<VT>(key_ + ".bat.scr", 2 * n_);

  auto col = [&](std::span<VT> blk, int j) {
    return std::span<VT>(blk.data() + static_cast<std::size_t>(j) * n_, n_);
  };
  auto ccol = [&](std::span<VT> blk, int j) {
    return std::span<const VT>(blk.data() + static_cast<std::size_t>(j) * n_, n_);
  };
  auto cptr = [&](std::span<VT> blk, int j) {
    return blk.data() + static_cast<std::ptrdiff_t>(j) * nld;
  };
  for (int j = 0; j < W; ++j) ones[j] = S{1};

  int na = 0;    // live width
  int next = 0;  // head of the pending column queue

  // Initialize original column c into slot j — the exact operation sequence
  // of solve()'s preamble (nrm2_cols/dot_cols at width 1 are bit-identical
  // to the single-threaded blas1 reductions solve() runs).  Returns false
  // when the column finishes at iteration 0 and never occupies the slot.
  auto init_slot = [&](int j, int c) -> bool {
    map[j] = c;
    itc[j] = 0;
    kx_.nrm2_cols(b + static_cast<std::ptrdiff_t>(c) * ldb, ldb, 1, n_, &red[j]);
    const double bnorm = static_cast<double>(red[j]);
    if (!std::isfinite(bnorm)) {
      // Poisoned RHS: retire the column before it ever occupies a slot —
      // the rest of the wave keeps running at full width.
      res[c].fail(SolveStatus::kNonFinite, "b");
      return false;
    }
    bref[j] = bnorm > 0.0 ? bnorm : 1.0;
    target[j] = cfg_.rtol * bref[j];
    // Interleaved panels: build r/z in contiguous scratch (the same values
    // the row-major path writes into the panel columns — exact copies on
    // the scatter), so the single-column residual/apply/reductions below
    // are the row-major path's operations verbatim.
    VT* r0 = ilv ? scr.data() : cptr(R, j);
    a_->residual(std::span<const VT>(b + static_cast<std::ptrdiff_t>(c) * ldb, n_),
                 std::span<const VT>(x + static_cast<std::ptrdiff_t>(c) * ldx, n_),
                 std::span<VT>(r0, n_));
    kx_.nrm2_cols(r0, nld, 1, n_, &red[j]);
    const double rnorm = static_cast<double>(red[j]);
    if (cfg_.record_history) res[c].history.push_back(rnorm / bref[j]);
    if (!std::isfinite(rnorm)) {
      res[c].fail(SolveStatus::kNonFinite, "rnorm");
      return false;
    }
    if (rnorm <= target[j]) {
      res[c].mark_converged();
      return false;
    }
    best[j] = rnorm;
    stall[j] = 0;
    const std::ptrdiff_t nn = nld;
    if (ilv) {
      VT* z0 = scr.data() + n_;
      m_->apply(std::span<const VT>(r0, n_), std::span<VT>(z0, n_));
      kx_.dot_cols(r0, nld, z0, nld, 1, n_, &rz[j]);
      // Scatter r into R_j and z into P_j (Z is pass-local: rewritten by
      // the trailing preconditioner sweep before any read, so it needs no
      // initialization here).
      panel_copy_col(r0, nld, PanelLayout::kRowMajor, 0, R.data(), pld, lay, j, nn);
      panel_copy_col(z0, nld, PanelLayout::kRowMajor, 0, P.data(), pld, lay, j, nn);
    } else {
      m_->apply(ccol(R, j), col(Z, j));
      kx_.copy(ccol(Z, j), col(P, j));
      kx_.dot_cols(cptr(R, j), nld, cptr(Z, j), nld, 1, n_, &rz[j]);
    }
    return true;
  };
  auto refill = [&]() {
    while (na < W && next < k)
      if (init_slot(na, next++)) ++na;
  };
  // Swap-remove: move slot src's live state into dst.  Z is pass-local
  // (rewritten by the trailing preconditioner apply before any read) and
  // never moves; Q is live only between A·P and the r update, which spans
  // the one mid-pass retirement site (the pq breakdown check), so it moves.
  auto move_slot = [&](int dst, int src) {
    if (dst == src) return;
    if (ilv) {
      panel_copy_col(R.data(), pld, lay, src, R.data(), pld, lay, dst, nld);
      panel_copy_col(P.data(), pld, lay, src, P.data(), pld, lay, dst, nld);
      panel_copy_col(Q.data(), pld, lay, src, Q.data(), pld, lay, dst, nld);
    } else {
      kx_.copy(ccol(R, src), col(R, dst));
      kx_.copy(ccol(P, src), col(P, dst));
      kx_.copy(ccol(Q, src), col(Q, dst));
    }
    rz[dst] = rz[src];
    red[dst] = red[src];
    target[dst] = target[src];
    bref[dst] = bref[src];
    itc[dst] = itc[src];
    map[dst] = map[src];
    best[dst] = best[src];
    stall[dst] = stall[src];
  };

  refill();
  while (na > 0 || next < k) {
    // Iteration boundary: drop columns whose budget is exhausted (exactly
    // where solve()'s loop falls through) and top the wave back up.
    for (int j = 0; j < na;) {
      if (itc[j] >= cfg_.max_iters) {
        move_slot(j, --na);
      } else {
        ++j;
      }
    }
    refill();
    if (na == 0) break;

    a_->apply_many_layout(P.data(), pld, Q.data(), pld, na, lay, lay);
    kx_.dot_cols(P.data(), pld, Q.data(), pld, na, n_, red.data(), nullptr, lay, lay);
    for (int j = 0; j < na;) {
      const int it = ++itc[j];
      const S pq = red[j];
      if (!(std::abs(static_cast<double>(pq)) > 0.0) ||
          !std::isfinite(static_cast<double>(pq))) {
        res[map[j]].iterations = it;  // breakdown: retire where solve() returns
        res[map[j]].fail(std::isfinite(static_cast<double>(pq))
                             ? SolveStatus::kBreakdown
                             : SolveStatus::kNonFinite,
                         "pivot");
        move_slot(j, --na);
        continue;
      }
      alpha[j] = rz[j] / pq;
      nalpha[j] = -alpha[j];
      ++j;
    }
    if (na == 0) continue;

    // x_{map[j]} += α_j p_j (scattered through the index map into caller
    // columns); r_j −= α_j q_j.
    kx_.axpy_cols(alpha.data(), P.data(), pld, x, ldx, na, n_, nullptr, map.data(), lay,
                    PanelLayout::kRowMajor);
    kx_.axpy_cols(nalpha.data(), Q.data(), pld, R.data(), pld, na, n_, nullptr, nullptr,
                    lay, lay);
    kx_.nrm2_cols(R.data(), pld, na, n_, red.data(), nullptr, lay);
    // Belt-and-braces panel guard (benched; see Config::guard_panels).  The
    // rnorm check below already retires every poisoned column — a NaN/Inf
    // anywhere in r makes its norm non-finite — so the scan only sharpens
    // the failure site attribution; its cost is what the bench gate pins.
    const int badc = cfg_.guard_panels
                         ? kx_.first_nonfinite_col(R.data(), pld, na, n_, lay)
                         : -1;
    for (int j = 0; j < na;) {
      const int c = map[j];
      const double rnorm = static_cast<double>(red[j]);
      if (cfg_.record_history) res[c].history.push_back(rnorm / bref[j]);
      res[c].iterations = itc[j];
      if (!std::isfinite(rnorm)) {
        res[c].fail(SolveStatus::kNonFinite, j == badc ? "panel" : "rnorm");
        move_slot(j, --na);
        continue;
      }
      if (rnorm <= target[j]) {
        res[c].mark_converged();
        move_slot(j, --na);
        continue;
      }
      if (cfg_.stagnate_window > 0) {
        if (rnorm < 0.99 * best[j]) {
          best[j] = rnorm;
          stall[j] = 0;
        } else if (++stall[j] >= cfg_.stagnate_window) {
          res[c].fail(SolveStatus::kStagnated, "rnorm");
          move_slot(j, --na);
          continue;
        }
      }
      ++j;
    }
    if (na == 0) continue;

    // The trailing preconditioner apply and direction update run even on a
    // column's final iteration, exactly as solve()'s loop body does.
    m_->apply_many_layout(R.data(), pld, Z.data(), pld, na, lay);
    kx_.dot_cols(R.data(), pld, Z.data(), pld, na, n_, red.data(), nullptr, lay, lay);
    for (int j = 0; j < na; ++j) {
      beta[j] = red[j] / rz[j];
      rz[j] = red[j];
    }
    // p_j = z_j + β_j p_j.
    kx_.axpby_cols(ones.data(), Z.data(), pld, beta.data(), P.data(), pld, na, n_,
                     nullptr, lay, lay);
  }
}

// Masked lockstep batched CG — the PR 3 reference path (cfg.compact =
// false).  Each step performs the sequential solve()'s operations per
// column — the same blas1 reductions, the same element-local updates via
// the masked column kernels, and the matrix/preconditioner sweeps shared
// across the batch (bit-identical per column to k separate apply() calls
// by the operators' apply_many contract).  A column leaves the active set
// exactly where solve() would have returned, and is never touched again;
// the panels keep full width k throughout.
template <class VT>
void CgSolver<VT>::solve_many_masked(const VT* b, std::ptrdiff_t ldb, VT* x,
                                     std::ptrdiff_t ldx, int k,
                                     std::vector<SolveResult>& res) {
  using S = acc_t<VT>;
  const std::size_t kk = static_cast<std::size_t>(k);
  SolverWorkspace& w = wsref();
  auto R = w.get<VT>(key_ + ".bat.r", kk * n_);
  auto Z = w.get<VT>(key_ + ".bat.z", kk * n_);
  auto P = w.get<VT>(key_ + ".bat.p", kk * n_);
  auto Q = w.get<VT>(key_ + ".bat.q", kk * n_);
  auto rz = w.get<S>(key_ + ".bat.rz", kk);
  auto alpha = w.get<S>(key_ + ".bat.alpha", kk);
  auto nalpha = w.get<S>(key_ + ".bat.nalpha", kk);
  auto beta = w.get<S>(key_ + ".bat.beta", kk);
  auto ones = w.get<S>(key_ + ".bat.ones", kk);
  auto red = w.get<S>(key_ + ".bat.red", kk);  // dot/nrm2 results per column
  auto target = w.get<double>(key_ + ".bat.target", kk);
  auto bref = w.get<double>(key_ + ".bat.bref", kk);
  auto act = w.get<unsigned char>(key_ + ".bat.act", kk);
  auto best = w.get<double>(key_ + ".bat.best", kk);  // stagnation guard state
  auto stall = w.get<int>(key_ + ".bat.stall", kk);
  const std::ptrdiff_t nld = static_cast<std::ptrdiff_t>(n_);

  auto col = [&](std::span<VT> blk, int c) {
    return std::span<VT>(blk.data() + static_cast<std::size_t>(c) * n_, n_);
  };
  auto ccol = [&](std::span<VT> blk, int c) {
    return std::span<const VT>(blk.data() + static_cast<std::size_t>(c) * n_, n_);
  };

  // The reductions below (nrm2_cols / dot_cols) reproduce the sequential
  // solve()'s blas1 reductions bit-for-bit in their single-threaded form;
  // see blas_block.hpp.
  int nactive = 0;
  a_->residual_many(b, ldb, x, ldx, R.data(), nld, k);
  kx_.nrm2_cols(b, ldb, k, n_, beta.data());  // ‖b_c‖ (beta reused as scratch)
  kx_.nrm2_cols(R.data(), nld, k, n_, red.data());
  for (int c = 0; c < k; ++c) {
    ones[c] = S{1};
    const double bnorm = static_cast<double>(beta[c]);
    bref[c] = bnorm > 0.0 ? bnorm : 1.0;
    target[c] = cfg_.rtol * bref[c];
    const double rnorm = static_cast<double>(red[c]);
    if (cfg_.record_history) res[c].history.push_back(rnorm / bref[c]);
    if (!std::isfinite(bnorm) || !std::isfinite(rnorm)) {
      res[c].fail(SolveStatus::kNonFinite, !std::isfinite(bnorm) ? "b" : "rnorm");
      act[c] = 0;
      continue;
    }
    if (rnorm <= target[c]) {
      res[c].mark_converged();
      act[c] = 0;
      continue;
    }
    best[c] = rnorm;
    stall[c] = 0;
    act[c] = 1;
    ++nactive;
  }
  if (nactive == 0) return;

  auto precondition = [&]() {  // Z_c = M⁻¹ R_c for the active columns
    if (nactive == k) {
      m_->apply_many(R.data(), nld, Z.data(), nld, k);
    } else {
      for (int c = 0; c < k; ++c)
        if (act[c]) m_->apply(ccol(R, c), col(Z, c));
    }
  };

  precondition();
  for (int c = 0; c < k; ++c)
    if (act[c]) kx_.copy(ccol(Z, c), col(P, c));
  kx_.dot_cols(R.data(), nld, Z.data(), nld, k, n_, rz.data(), act.data());

  for (int it = 1; it <= cfg_.max_iters && nactive > 0; ++it) {
    if (nactive == k) {
      a_->apply_many(P.data(), nld, Q.data(), nld, k);
    } else {
      for (int c = 0; c < k; ++c)
        if (act[c]) a_->apply(ccol(P, c), col(Q, c));
    }
    kx_.dot_cols(P.data(), nld, Q.data(), nld, k, n_, red.data(), act.data());
    for (int c = 0; c < k; ++c) {
      if (!act[c]) continue;
      const S pq = red[c];
      if (!(std::abs(static_cast<double>(pq)) > 0.0) ||
          !std::isfinite(static_cast<double>(pq))) {
        res[c].iterations = it;
        res[c].fail(std::isfinite(static_cast<double>(pq)) ? SolveStatus::kBreakdown
                                                           : SolveStatus::kNonFinite,
                    "pivot");
        act[c] = 0;  // breakdown: freeze exactly as solve() returns
        --nactive;
        continue;
      }
      alpha[c] = rz[c] / pq;
      nalpha[c] = -alpha[c];
    }
    // x_c += α_c p_c, r_c −= α_c q_c (frozen columns masked out).
    kx_.axpy_cols(alpha.data(), P.data(), nld, x, ldx, k, n_, act.data());
    kx_.axpy_cols(nalpha.data(), Q.data(), nld, R.data(), nld, k, n_, act.data());
    kx_.nrm2_cols(R.data(), nld, k, n_, red.data(), act.data());
    for (int c = 0; c < k; ++c) {
      if (!act[c]) continue;
      const double rnorm = static_cast<double>(red[c]);
      if (cfg_.record_history) res[c].history.push_back(rnorm / bref[c]);
      res[c].iterations = it;
      if (!std::isfinite(rnorm)) {
        res[c].fail(SolveStatus::kNonFinite, "rnorm");
        act[c] = 0;
        --nactive;
        continue;
      }
      if (rnorm <= target[c]) {
        res[c].mark_converged();
        act[c] = 0;
        --nactive;
        continue;
      }
      if (cfg_.stagnate_window > 0) {
        if (rnorm < 0.99 * best[c]) {
          best[c] = rnorm;
          stall[c] = 0;
        } else if (++stall[c] >= cfg_.stagnate_window) {
          res[c].fail(SolveStatus::kStagnated, "rnorm");
          act[c] = 0;
          --nactive;
        }
      }
    }
    if (nactive == 0) break;

    // The trailing preconditioner apply and direction update run even on
    // the final iteration, exactly as solve()'s loop body does — keeps
    // invocation counts (and any stateful M) in step with k sequential
    // solves.
    precondition();
    kx_.dot_cols(R.data(), nld, Z.data(), nld, k, n_, red.data(), act.data());
    for (int c = 0; c < k; ++c) {
      if (!act[c]) continue;
      beta[c] = red[c] / rz[c];
      rz[c] = red[c];
    }
    // p_c = z_c + β_c p_c.
    kx_.axpby_cols(ones.data(), Z.data(), nld, beta.data(), P.data(), nld, k, n_,
                     act.data());
  }
}

template class CgSolver<double>;
template class CgSolver<float>;

}  // namespace nk
