#include "krylov/cg.hpp"

#include <cmath>

#include "base/blas_block.hpp"

namespace nk {

template <class VT>
SolveResult CgSolver<VT>::solve(std::span<const VT> b, std::span<VT> x) {
  SolveResult res;
  res.solver = "cg";
  const auto n = b.size();
  std::span<VT> r(r_), z(z_), p(p_), q(q_);

  const double bnorm = static_cast<double>(blas::nrm2(b));
  const double target = cfg_.rtol * (bnorm > 0.0 ? bnorm : 1.0);

  a_->residual(b, std::span<const VT>(x.data(), n), r);
  double rnorm = static_cast<double>(blas::nrm2(std::span<const VT>(r_)));
  if (cfg_.record_history) res.history.push_back(rnorm / (bnorm > 0.0 ? bnorm : 1.0));
  if (rnorm <= target) {
    res.converged = true;
    return res;
  }

  m_->apply(std::span<const VT>(r_), z);
  blas::copy(std::span<const VT>(z_), p);
  auto rz = blas::dot(std::span<const VT>(r_), std::span<const VT>(z_));

  for (int it = 1; it <= cfg_.max_iters; ++it) {
    a_->apply(std::span<const VT>(p_), q);
    const auto pq = blas::dot(std::span<const VT>(p_), std::span<const VT>(q_));
    if (!(std::abs(static_cast<double>(pq)) > 0.0) ||
        !std::isfinite(static_cast<double>(pq))) {
      res.iterations = it;
      return res;  // breakdown (matrix not SPD w.r.t. p)
    }
    const auto alpha = rz / pq;
    blas::axpy(alpha, std::span<const VT>(p_), x);
    blas::axpy(-alpha, std::span<const VT>(q_), r);

    rnorm = static_cast<double>(blas::nrm2(std::span<const VT>(r_)));
    if (cfg_.record_history) res.history.push_back(rnorm / (bnorm > 0.0 ? bnorm : 1.0));
    res.iterations = it;
    if (!std::isfinite(rnorm)) return res;
    if (rnorm <= target) {
      res.converged = true;
      return res;
    }

    m_->apply(std::span<const VT>(r_), z);
    const auto rz_new = blas::dot(std::span<const VT>(r_), std::span<const VT>(z_));
    const auto beta = rz_new / rz;
    rz = rz_new;
    blas::axpby(static_cast<decltype(rz)>(1), std::span<const VT>(z_),
                static_cast<decltype(rz)>(beta), p);
  }
  return res;
}

// Lockstep batched CG.  Each step performs the sequential solve()'s
// operations per column — the same blas1 reductions, the same element-local
// updates via the masked column kernels, and the matrix/preconditioner
// sweeps shared across the batch (bit-identical per column to k separate
// apply() calls by the operators' apply_many contract).  A column leaves
// the active set exactly where solve() would have returned, and is never
// touched again.
template <class VT>
std::vector<SolveResult> CgSolver<VT>::solve_many(const VT* b, std::ptrdiff_t ldb, VT* x,
                                                  std::ptrdiff_t ldx, int k) {
  using S = acc_t<VT>;
  std::vector<SolveResult> res(static_cast<std::size_t>(std::max(k, 0)));
  for (auto& r : res) r.solver = "cg";
  if (k <= 0) return res;
  const std::size_t kk = static_cast<std::size_t>(k);
  SolverWorkspace& w = wsref();
  auto R = w.get<VT>(key_ + ".bat.r", kk * n_);
  auto Z = w.get<VT>(key_ + ".bat.z", kk * n_);
  auto P = w.get<VT>(key_ + ".bat.p", kk * n_);
  auto Q = w.get<VT>(key_ + ".bat.q", kk * n_);
  auto rz = w.get<S>(key_ + ".bat.rz", kk);
  auto alpha = w.get<S>(key_ + ".bat.alpha", kk);
  auto nalpha = w.get<S>(key_ + ".bat.nalpha", kk);
  auto beta = w.get<S>(key_ + ".bat.beta", kk);
  auto ones = w.get<S>(key_ + ".bat.ones", kk);
  auto red = w.get<S>(key_ + ".bat.red", kk);  // dot/nrm2 results per column
  auto target = w.get<double>(key_ + ".bat.target", kk);
  auto bref = w.get<double>(key_ + ".bat.bref", kk);
  auto act = w.get<unsigned char>(key_ + ".bat.act", kk);
  const std::ptrdiff_t nld = static_cast<std::ptrdiff_t>(n_);

  auto col = [&](std::span<VT> blk, int c) {
    return std::span<VT>(blk.data() + static_cast<std::size_t>(c) * n_, n_);
  };
  auto ccol = [&](std::span<VT> blk, int c) {
    return std::span<const VT>(blk.data() + static_cast<std::size_t>(c) * n_, n_);
  };

  // The reductions below (nrm2_cols / dot_cols) reproduce the sequential
  // solve()'s blas1 reductions bit-for-bit in their single-threaded form;
  // see blas_block.hpp.
  int nactive = 0;
  a_->residual_many(b, ldb, x, ldx, R.data(), nld, k);
  blas::nrm2_cols(b, ldb, k, n_, beta.data());  // ‖b_c‖ (beta reused as scratch)
  blas::nrm2_cols(R.data(), nld, k, n_, red.data());
  for (int c = 0; c < k; ++c) {
    ones[c] = S{1};
    const double bnorm = static_cast<double>(beta[c]);
    bref[c] = bnorm > 0.0 ? bnorm : 1.0;
    target[c] = cfg_.rtol * bref[c];
    const double rnorm = static_cast<double>(red[c]);
    if (cfg_.record_history) res[c].history.push_back(rnorm / bref[c]);
    if (rnorm <= target[c]) {
      res[c].converged = true;
      act[c] = 0;
      continue;
    }
    act[c] = 1;
    ++nactive;
  }
  if (nactive == 0) return res;

  auto precondition = [&]() {  // Z_c = M⁻¹ R_c for the active columns
    if (nactive == k) {
      m_->apply_many(R.data(), nld, Z.data(), nld, k);
    } else {
      for (int c = 0; c < k; ++c)
        if (act[c]) m_->apply(ccol(R, c), col(Z, c));
    }
  };

  precondition();
  for (int c = 0; c < k; ++c)
    if (act[c]) blas::copy(ccol(Z, c), col(P, c));
  blas::dot_cols(R.data(), nld, Z.data(), nld, k, n_, rz.data(), act.data());

  for (int it = 1; it <= cfg_.max_iters && nactive > 0; ++it) {
    if (nactive == k) {
      a_->apply_many(P.data(), nld, Q.data(), nld, k);
    } else {
      for (int c = 0; c < k; ++c)
        if (act[c]) a_->apply(ccol(P, c), col(Q, c));
    }
    blas::dot_cols(P.data(), nld, Q.data(), nld, k, n_, red.data(), act.data());
    for (int c = 0; c < k; ++c) {
      if (!act[c]) continue;
      const S pq = red[c];
      if (!(std::abs(static_cast<double>(pq)) > 0.0) ||
          !std::isfinite(static_cast<double>(pq))) {
        res[c].iterations = it;
        act[c] = 0;  // breakdown: freeze exactly as solve() returns
        --nactive;
        continue;
      }
      alpha[c] = rz[c] / pq;
      nalpha[c] = -alpha[c];
    }
    // x_c += α_c p_c, r_c −= α_c q_c (frozen columns masked out).
    blas::axpy_cols(alpha.data(), P.data(), nld, x, ldx, k, n_, act.data());
    blas::axpy_cols(nalpha.data(), Q.data(), nld, R.data(), nld, k, n_, act.data());
    blas::nrm2_cols(R.data(), nld, k, n_, red.data(), act.data());
    for (int c = 0; c < k; ++c) {
      if (!act[c]) continue;
      const double rnorm = static_cast<double>(red[c]);
      if (cfg_.record_history) res[c].history.push_back(rnorm / bref[c]);
      res[c].iterations = it;
      if (!std::isfinite(rnorm)) {
        act[c] = 0;
        --nactive;
        continue;
      }
      if (rnorm <= target[c]) {
        res[c].converged = true;
        act[c] = 0;
        --nactive;
      }
    }
    if (nactive == 0) break;

    // The trailing preconditioner apply and direction update run even on
    // the final iteration, exactly as solve()'s loop body does — keeps
    // invocation counts (and any stateful M) in step with k sequential
    // solves.
    precondition();
    blas::dot_cols(R.data(), nld, Z.data(), nld, k, n_, red.data(), act.data());
    for (int c = 0; c < k; ++c) {
      if (!act[c]) continue;
      beta[c] = red[c] / rz[c];
      rz[c] = red[c];
    }
    // p_c = z_c + β_c p_c.
    blas::axpby_cols(ones.data(), Z.data(), nld, beta.data(), P.data(), nld, k, n_,
                     act.data());
  }
  return res;
}

template class CgSolver<double>;
template class CgSolver<float>;

}  // namespace nk
