// Preconditioner interfaces.
//
// Two layers:
//
//  * Preconditioner<VT> — the typed application interface a solver calls:
//    z = M⁻¹ r on vectors of type VT.  Inner solvers of the nested Krylov
//    framework also implement this interface (a solver *is* a flexible
//    preconditioner of its parent).
//
//  * PrimaryPrecond — a factorization-owning object (ILU(0), IC(0), AINV,
//    Jacobi) constructed once in fp64 and able to mint typed apply handles
//    at any storage precision (fp64 / fp32 / fp16).  The paper constructs
//    preconditioners in fp64 and then casts the values ("we first construct
//    it in fp64 and then cast its values to fp32 or fp16").
//
// Every apply through a PrimaryPrecond handle increments a shared
// invocation counter — the metric of the paper's Table 3.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "backend/kernels.hpp"
#include "base/backend.hpp"
#include "base/half.hpp"
#include "base/blas1.hpp"
#include "base/panel.hpp"

namespace nk {

/// Typed preconditioner application: z = M⁻¹ r (or an approximation).
template <class VT>
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// z = M⁻¹ r.  `r` and `z` must not alias and must both have size().
  virtual void apply(std::span<const VT> r, std::span<VT> z) = 0;

  /// Z_c = M⁻¹ R_c for k batch columns (column c at r + c·ldr / z + c·ldz).
  /// Column results are bit-identical to k apply() calls in column order —
  /// the contract batched solvers rely on.  The default loops (which also
  /// preserves any solver-internal state sequencing, e.g. Algorithm 1's
  /// adaptive Richardson weights); stateless preconditioners override with
  /// fused kernels that read their factors once per batch.
  virtual void apply_many(const VT* r, std::ptrdiff_t ldr, VT* z, std::ptrdiff_t ldz,
                          int k) {
    const std::size_t n = static_cast<std::size_t>(size());
    for (int c = 0; c < k; ++c)
      apply(std::span<const VT>(r + static_cast<std::ptrdiff_t>(c) * ldr, n),
            std::span<VT>(z + static_cast<std::ptrdiff_t>(c) * ldz, n));
  }

  /// Layout-aware batched apply: like apply_many but both panels use
  /// `layout` (see panel.hpp).  The default stages an interleaved batch
  /// through a grow-only row-major scratch — exact copies around the
  /// row-major apply_many, so results (and solver-state sequencing) are
  /// bit-identical at the cost of the transposes.  Stateless
  /// preconditioners with a native interleaved kernel (ILU substitution,
  /// Jacobi) override to skip the staging.
  virtual void apply_many_layout(const VT* r, std::ptrdiff_t ldr, VT* z,
                                 std::ptrdiff_t ldz, int k, PanelLayout layout) {
    if (layout == PanelLayout::kRowMajor) {
      apply_many(r, ldr, z, ldz, k);
      return;
    }
    const std::ptrdiff_t n = size();
    stage_.resize(static_cast<std::size_t>(2 * k) * n);
    VT* rs = stage_.data();
    VT* zs = rs + static_cast<std::ptrdiff_t>(k) * n;
    panel_copy(r, ldr, layout, rs, n, PanelLayout::kRowMajor, k, n);
    apply_many(rs, n, zs, n, k);
    panel_copy(zs, n, PanelLayout::kRowMajor, z, ldz, layout, k, n);
  }

  [[nodiscard]] virtual index_t size() const = 0;

  /// Execution-space backend this handle's kernels run on.  Set by the
  /// minting site (engines, nested builder) right after make_apply; the
  /// default host keeps direct construction paths byte-identical.
  void set_backend(Backend be) { kx_ = kern::Kernels(be); }
  [[nodiscard]] Backend backend() const { return kx_.backend(); }

 protected:
  [[nodiscard]] const kern::Kernels& kern_table() const { return kx_; }

  std::vector<VT> stage_;  ///< grow-only transpose scratch of the staged default

 private:
  kern::Kernels kx_;
};

/// Identity "preconditioner" (un-preconditioned solves in tests/benches).
template <class VT>
class IdentityPrecond final : public Preconditioner<VT> {
 public:
  explicit IdentityPrecond(index_t n) : n_(n) {}
  void apply(std::span<const VT> r, std::span<VT> z) override {
    this->kern_table().copy(r, z);
  }
  [[nodiscard]] index_t size() const override { return n_; }

 private:
  index_t n_;
};

/// Shared invocation counter (Table 3 metric).
struct InvocationCounter {
  std::uint64_t count = 0;
};

/// A primary preconditioner M: owns the fp64 factorization, mints typed
/// apply handles at a requested storage precision, and counts invocations
/// across *all* handles (every nesting level applies the same primary M).
class PrimaryPrecond {
 public:
  virtual ~PrimaryPrecond() = default;

  /// Short name for reporting ("bj-ilu0", "bj-ic0", "sd-ainv", "jacobi").
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual index_t size() const = 0;

  /// Mint a typed apply handle with values stored at `storage` precision.
  /// Storage copies are created lazily and cached inside the object.
  virtual std::unique_ptr<Preconditioner<double>> make_apply_fp64(Prec storage) = 0;
  virtual std::unique_ptr<Preconditioner<float>> make_apply_fp32(Prec storage) = 0;
  virtual std::unique_ptr<Preconditioner<half>> make_apply_fp16(Prec storage) = 0;

  /// Typed convenience dispatcher.
  template <class VT>
  std::unique_ptr<Preconditioner<VT>> make_apply(Prec storage) {
    if constexpr (std::is_same_v<VT, double>) return make_apply_fp64(storage);
    else if constexpr (std::is_same_v<VT, float>) return make_apply_fp32(storage);
    else return make_apply_fp16(storage);
  }

  [[nodiscard]] std::uint64_t invocations() const { return counter_->count; }
  void reset_invocations() { counter_->count = 0; }

 protected:
  std::shared_ptr<InvocationCounter> counter_ = std::make_shared<InvocationCounter>();
};

}  // namespace nk
