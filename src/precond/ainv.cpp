#include "precond/ainv.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nk {

namespace {

/// Sparse-vector workspace: dense value array + touched-index list.
struct SparseWork {
  std::vector<double> val;
  std::vector<index_t> touched;
  std::vector<char> mark;

  explicit SparseWork(index_t n) : val(n, 0.0), mark(n, 0) {}

  void add(index_t i, double v) {
    if (!mark[i]) {
      mark[i] = 1;
      touched.push_back(i);
      val[i] = v;
    } else {
      val[i] += v;
    }
  }

  void clear() {
    for (index_t i : touched) {
      val[i] = 0.0;
      mark[i] = 0;
    }
    touched.clear();
  }
};

using Col = std::vector<std::pair<index_t, double>>;  // sparse column (idx, val)

/// Drop small entries: keep `always` unconditionally, drop |v| < tol·max|v|,
/// then cap at max_fill largest-magnitude off-`always` entries.
Col extract_dropped(SparseWork& w, index_t always, double tol, int max_fill) {
  double vmax = 0.0;
  for (index_t i : w.touched) vmax = std::max(vmax, std::abs(w.val[i]));
  const double thresh = tol * vmax;
  Col out;
  out.reserve(w.touched.size());
  for (index_t i : w.touched) {
    if (i == always || std::abs(w.val[i]) >= thresh) out.emplace_back(i, w.val[i]);
  }
  if (max_fill > 0 && static_cast<int>(out.size()) > max_fill + 1) {
    std::nth_element(out.begin(), out.begin() + max_fill, out.end(),
                     [&](const auto& a, const auto& b) {
                       if (a.first == always) return true;  // keep pivot entry
                       if (b.first == always) return false;
                       return std::abs(a.second) > std::abs(b.second);
                     });
    out.resize(max_fill + 1);
    // Ensure the pivot entry survived the cap.
    bool has_pivot = false;
    for (auto& e : out)
      if (e.first == always) { has_pivot = true; break; }
    if (!has_pivot) out.emplace_back(always, w.val[always]);
  }
  std::sort(out.begin(), out.end());
  w.clear();
  return out;
}

CsrMatrix<double> cols_to_csr_rows(const std::vector<Col>& cols, index_t n) {
  // Interpret cols[i] as ROW i (used for Wᵀ storage where row i = wᵢ).
  CsrMatrix<double> m(n, n);
  for (index_t i = 0; i < n; ++i) m.row_ptr[i + 1] = static_cast<index_t>(cols[i].size());
  for (index_t i = 0; i < n; ++i) m.row_ptr[i + 1] += m.row_ptr[i];
  m.col_idx.resize(m.row_ptr[n]);
  m.vals.resize(m.row_ptr[n]);
  for (index_t i = 0; i < n; ++i) {
    index_t p = m.row_ptr[i];
    for (const auto& [j, v] : cols[i]) {
      m.col_idx[p] = j;
      m.vals[p] = v;
      ++p;
    }
  }
  return m;
}

}  // namespace

SdAinv::SdAinv(const CsrMatrix<double>& a_in, Config cfg) {
  if (a_in.nrows != a_in.ncols) throw std::invalid_argument("SdAinv: matrix must be square");
  const index_t n = a_in.nrows;

  // α_AINV diagonal boost on a working copy.
  CsrMatrix<double> a = a_in;
  if (cfg.alpha != 1.0) {
    for (index_t i = 0; i < n; ++i)
      for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k)
        if (a.col_idx[k] == i) a.vals[k] *= cfg.alpha;
  }
  const CsrMatrix<double> at = transpose(a);

  // Completed columns zᵢ / wᵢ and their images tᵢ = A zᵢ (scattered by row
  // into trows) and sᵢ = Aᵀ wᵢ (scattered into srows); only rows > i are
  // kept since earlier rows are never revisited by the left-looking sweep.
  std::vector<Col> zcols(n), wcols(n);
  std::vector<Col> trows(n), srows(n);
  std::vector<double> d(n, 1.0);
  SparseWork work(n), image(n);
  int clamped = 0;

  auto build_column = [&](index_t i, const std::vector<Col>& basis, const std::vector<Col>& rows_of_image) {
    // col = eᵢ - Σ_j (image_j[i]/d_j) basis_j
    work.add(i, 1.0);
    for (const auto& [j, coef_num] : rows_of_image[i]) {
      const double coef = coef_num / d[j];
      if (coef == 0.0) continue;
      for (const auto& [r, v] : basis[j]) work.add(r, -coef * v);
    }
    return extract_dropped(work, i, cfg.drop_tol, cfg.max_fill);
  };

  auto image_of = [&](const Col& col, const CsrMatrix<double>& rows_matrix) {
    // image = Σ_k col[k] · (row k of rows_matrix); drop tiny entries.
    for (const auto& [k, v] : col) {
      for (index_t p = rows_matrix.row_ptr[k]; p < rows_matrix.row_ptr[k + 1]; ++p)
        image.add(rows_matrix.col_idx[p], v * rows_matrix.vals[p]);
    }
    return extract_dropped(image, -1, 1e-12, 0);
  };

  for (index_t i = 0; i < n; ++i) {
    // zᵢ = eᵢ - Σ_{j<i} (s_j[i]/d_j) z_j   where s_j = Aᵀ w_j.
    zcols[i] = build_column(i, zcols, srows);
    if (cfg.symmetric) {
      wcols[i] = zcols[i];
    } else {
      // wᵢ = eᵢ - Σ_{j<i} (t_j[i]/d_j) w_j   where t_j = A z_j.
      wcols[i] = build_column(i, wcols, trows);
    }

    // tᵢ = A zᵢ (columns of A = rows of Aᵀ), sᵢ = Aᵀ wᵢ (rows of A).
    const Col ti = image_of(zcols[i], at);
    const Col si = cfg.symmetric ? ti : image_of(wcols[i], a);

    // dᵢ = sᵢ · zᵢ  (= wᵢᵀ A zᵢ).
    double di = 0.0;
    {
      std::size_t p = 0, q = 0;
      while (p < si.size() && q < zcols[i].size()) {
        if (si[p].first < zcols[i][q].first) ++p;
        else if (si[p].first > zcols[i][q].first) ++q;
        else { di += si[p].second * zcols[i][q].second; ++p; ++q; }
      }
    }
    if (std::abs(di) < cfg.pivot_floor || !std::isfinite(di)) {
      di = (di < 0.0 ? -1.0 : 1.0) * cfg.pivot_floor;
      ++clamped;
    }
    d[i] = di;

    // Scatter images to later rows only.
    for (const auto& [r, v] : ti)
      if (r > i) trows[r].emplace_back(i, v);
    if (!cfg.symmetric) {
      for (const auto& [r, v] : si)
        if (r > i) srows[r].emplace_back(i, v);
    } else {
      for (const auto& [r, v] : ti)
        if (r > i) srows[r].emplace_back(i, v);
    }
  }

  auto f = std::make_shared<AinvFactors<double>>();
  f->n = n;
  f->wt = cols_to_csr_rows(wcols, n);         // row i = wᵢᵀ
  f->z = transpose(cols_to_csr_rows(zcols, n));  // rows of Z from columns zᵢ
  f->inv_d.resize(n);
  for (index_t i = 0; i < n; ++i) f->inv_d[i] = 1.0 / d[i];
  clamped_ = clamped;
  f64_ = std::move(f);
}

template <class VT>
std::unique_ptr<Preconditioner<VT>> SdAinv::make_apply_impl(Prec storage) {
  switch (storage) {
    case Prec::FP64:
      return std::make_unique<AinvApplyHandle<double, VT>>(f64_, counter_);
    case Prec::FP32:
      if (!f32_) f32_ = std::make_shared<AinvFactors<float>>(cast_factors<float>(*f64_));
      return std::make_unique<AinvApplyHandle<float, VT>>(f32_, counter_);
    case Prec::FP16:
      if (!f16_) f16_ = std::make_shared<AinvFactors<half>>(cast_factors<half>(*f64_));
      return std::make_unique<AinvApplyHandle<half, VT>>(f16_, counter_);
  }
  throw std::logic_error("SdAinv: bad storage precision");
}

std::unique_ptr<Preconditioner<double>> SdAinv::make_apply_fp64(Prec storage) {
  return make_apply_impl<double>(storage);
}
std::unique_ptr<Preconditioner<float>> SdAinv::make_apply_fp32(Prec storage) {
  return make_apply_impl<float>(storage);
}
std::unique_ptr<Preconditioner<half>> SdAinv::make_apply_fp16(Prec storage) {
  return make_apply_impl<half>(storage);
}

}  // namespace nk
