#include "precond/ssor.hpp"

#include <cmath>
#include <stdexcept>

#include "precond/block_jacobi_ilu0.hpp"  // make_block_starts

namespace nk {

SsorPrecond::SsorPrecond(const CsrMatrix<double>& a, Config cfg) {
  if (a.nrows != a.ncols) throw std::invalid_argument("SsorPrecond: matrix must be square");
  if (cfg.omega <= 0.0 || cfg.omega >= 2.0)
    throw std::invalid_argument("SsorPrecond: omega must be in (0, 2)");
  auto f = std::make_shared<SsorData<double>>();
  f->n = a.nrows;
  f->omega = cfg.omega;
  f->block_start = make_block_starts(a.nrows, cfg.nblocks);
  const index_t nb = f->nblocks();
  std::vector<index_t> owner(a.nrows);
  for (index_t b = 0; b < nb; ++b)
    for (index_t i = f->block_start[b]; i < f->block_start[b + 1]; ++i) owner[i] = b;

  // Copy block-restricted rows, forcing a (unit if absent) diagonal entry,
  // exactly as the ILU(0) setup does.
  f->row_ptr.assign(a.nrows + 1, 0);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(a.nrows); ++i) {
    const index_t b0 = f->block_start[owner[i]], b1 = f->block_start[owner[i] + 1];
    index_t cnt = 0;
    bool saw_diag = false;
    for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const index_t c = a.col_idx[k];
      if (c >= b0 && c < b1) {
        ++cnt;
        if (c == static_cast<index_t>(i)) saw_diag = true;
      }
    }
    if (!saw_diag) ++cnt;
    f->row_ptr[i + 1] = cnt;
  }
  for (index_t i = 0; i < a.nrows; ++i) f->row_ptr[i + 1] += f->row_ptr[i];
  f->col_idx.resize(f->row_ptr[a.nrows]);
  f->vals.resize(f->row_ptr[a.nrows]);
  f->diag_pos.resize(a.nrows);

#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(a.nrows); ++i) {
    const index_t b0 = f->block_start[owner[i]], b1 = f->block_start[owner[i] + 1];
    index_t p = f->row_ptr[i];
    bool placed = false;
    for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const index_t c = a.col_idx[k];
      if (c < b0 || c >= b1) continue;
      if (!placed && c > static_cast<index_t>(i)) {
        f->col_idx[p] = static_cast<index_t>(i);
        f->vals[p] = 1.0;
        f->diag_pos[i] = p++;
        placed = true;
      }
      f->col_idx[p] = c;
      f->vals[p] = a.vals[k];
      if (c == static_cast<index_t>(i)) {
        f->diag_pos[i] = p;
        placed = true;
        if (f->vals[p] == 0.0 || !std::isfinite(f->vals[p])) f->vals[p] = 1.0;
      }
      ++p;
    }
    if (!placed) {
      f->col_idx[p] = static_cast<index_t>(i);
      f->vals[p] = 1.0;
      f->diag_pos[i] = p;
    }
  }
  f64_ = std::move(f);
}

template <class VT>
std::unique_ptr<Preconditioner<VT>> SsorPrecond::make_apply_impl(Prec storage) {
  switch (storage) {
    case Prec::FP64:
      return std::make_unique<SsorApplyHandle<double, VT>>(f64_, counter_);
    case Prec::FP32:
      if (!f32_) f32_ = std::make_shared<SsorData<float>>(cast_factors<float>(*f64_));
      return std::make_unique<SsorApplyHandle<float, VT>>(f32_, counter_);
    case Prec::FP16:
      if (!f16_) f16_ = std::make_shared<SsorData<half>>(cast_factors<half>(*f64_));
      return std::make_unique<SsorApplyHandle<half, VT>>(f16_, counter_);
  }
  throw std::logic_error("SsorPrecond: bad storage precision");
}

std::unique_ptr<Preconditioner<double>> SsorPrecond::make_apply_fp64(Prec storage) {
  return make_apply_impl<double>(storage);
}
std::unique_ptr<Preconditioner<float>> SsorPrecond::make_apply_fp32(Prec storage) {
  return make_apply_impl<float>(storage);
}
std::unique_ptr<Preconditioner<half>> SsorPrecond::make_apply_fp16(Prec storage) {
  return make_apply_impl<half>(storage);
}

}  // namespace nk
