// SD-AINV — approximate inverse preconditioner applied with two SpMVs.
//
// The paper's GPU experiments use SD-AINV (Suzuki, Fukaya, Iwashita 2022),
// a simplified variant of the AINV factored approximate inverse (Benzi,
// Meyer, Tůma 1996):
//
//     M⁻¹ ≈ Z D⁻¹ Wᵀ            (W = Z for SPD matrices)
//
// where the columns of W and Z are built by incomplete biconjugation so
// that Wᵀ A Z ≈ D (diagonal).  Application is exactly two sparse
// matrix-vector products plus a diagonal scaling —
//     z = Z · (D⁻¹ · (Wᵀ r)) —
// which is why it suits wide-SIMT hardware: no triangular solves.
//
// Construction runs in fp64 with value dropping (relative threshold +
// per-column fill cap) to keep Z and W sparse; the paper's α_AINV diagonal
// boost is applied to A during construction.  Storage casts to fp32/fp16
// are lazy, exactly as for the ILU/IC factorizations.
#pragma once

#include <memory>
#include <vector>

#include "backend/kernels.hpp"
#include "base/backend.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/csr.hpp"

namespace nk {

/// AINV data at storage precision P:  Wᵀ (rows = columns wᵢ), Z (natural row
/// storage), and the inverted pivots d⁻¹.
template <class P>
struct AinvFactors {
  index_t n = 0;
  CsrMatrix<P> wt;          ///< row i = wᵢᵀ
  CsrMatrix<P> z;           ///< Z by rows
  std::vector<P> inv_d;     ///< 1/dᵢ

  [[nodiscard]] index_t fill_nnz() const { return wt.nnz() + z.nnz(); }
};

template <class Dst, class Src>
AinvFactors<Dst> cast_factors(const AinvFactors<Src>& f) {
  AinvFactors<Dst> out;
  out.n = f.n;
  out.wt = cast_matrix<Dst>(f.wt);
  out.z = cast_matrix<Dst>(f.z);
  out.inv_d.resize(f.inv_d.size());
  blas::convert<Src, Dst>(std::span<const Src>(f.inv_d), std::span<Dst>(out.inv_d));
  return out;
}

/// z = Z D⁻¹ Wᵀ r — two SpMVs + diagonal, all parallel.  `tmp` must have
/// size n and serves as the intermediate in the apply's working precision.
/// SpMVs dispatch per backend; the diagonal scaling is element-local and
/// runs the identical loop with the OpenMP team suppressed when serial.
template <class P, class VT, class W = promote_t<P, VT>>
void ainv_apply(const AinvFactors<P>& f, std::span<const VT> r, std::span<VT> z,
                std::span<VT> tmp, Backend be = Backend::kHost) {
  const kern::Kernels kx(be);
  kx.spmv(f.wt, r, tmp);  // tmp = Wᵀ r
  const std::ptrdiff_t n = f.n;
  const bool par = be == Backend::kHost;
  (void)par;  // referenced only from the pragma; unused without OpenMP
#pragma omp parallel for schedule(static) if (par)
  for (std::ptrdiff_t i = 0; i < n; ++i)
    tmp[i] = static_cast<VT>(static_cast<W>(tmp[i]) * static_cast<W>(f.inv_d[i]));
  kx.spmv(f.z, std::span<const VT>(tmp.data(), tmp.size()), z);  // z = Z tmp
}

class SdAinv final : public PrimaryPrecond {
 public:
  struct Config {
    double alpha = 1.0;      ///< α_AINV diagonal boost during construction
    double drop_tol = 0.1;   ///< relative drop threshold for Z/W entries
    int max_fill = 10;       ///< per-column cap on off-diagonal fill
    bool symmetric = false;  ///< true → single-sided biconjugation (W = Z)
    double pivot_floor = 1e-8;  ///< |d| clamp (stabilized pivots)
  };

  SdAinv(const CsrMatrix<double>& a, Config cfg);

  [[nodiscard]] std::string name() const override { return "sd-ainv"; }
  [[nodiscard]] index_t size() const override { return f64_->n; }

  std::unique_ptr<Preconditioner<double>> make_apply_fp64(Prec storage) override;
  std::unique_ptr<Preconditioner<float>> make_apply_fp32(Prec storage) override;
  std::unique_ptr<Preconditioner<half>> make_apply_fp16(Prec storage) override;

  /// Pivots clamped by the stabilization floor.
  [[nodiscard]] int clamped_pivots() const { return clamped_; }

  [[nodiscard]] const AinvFactors<double>& factors_fp64() const { return *f64_; }

 private:
  template <class VT>
  std::unique_ptr<Preconditioner<VT>> make_apply_impl(Prec storage);

  std::shared_ptr<AinvFactors<double>> f64_;
  std::shared_ptr<AinvFactors<float>> f32_;
  std::shared_ptr<AinvFactors<half>> f16_;
  int clamped_ = 0;
};

template <class SP, class VT>
class AinvApplyHandle final : public Preconditioner<VT> {
 public:
  AinvApplyHandle(std::shared_ptr<const AinvFactors<SP>> f,
                  std::shared_ptr<InvocationCounter> cnt)
      : f_(std::move(f)), cnt_(std::move(cnt)), tmp_(f_->n) {}

  void apply(std::span<const VT> r, std::span<VT> z) override {
    ++cnt_->count;
    ainv_apply(*f_, r, z, std::span<VT>(tmp_), this->backend());
  }
  [[nodiscard]] index_t size() const override { return f_->n; }

 private:
  std::shared_ptr<const AinvFactors<SP>> f_;
  std::shared_ptr<InvocationCounter> cnt_;
  std::vector<VT> tmp_;
};

}  // namespace nk
