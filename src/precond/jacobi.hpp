// Jacobi (diagonal) preconditioner — the simplest primary preconditioner;
// used in tests and as a cheap baseline in ablation benches.
#pragma once

#include <memory>
#include <vector>

#include "precond/preconditioner.hpp"
#include "sparse/csr.hpp"

namespace nk {

template <class P>
struct JacobiFactors {
  index_t n = 0;
  std::vector<P> inv_diag;
};

template <class Dst, class Src>
JacobiFactors<Dst> cast_factors(const JacobiFactors<Src>& f) {
  JacobiFactors<Dst> out;
  out.n = f.n;
  out.inv_diag.resize(f.inv_diag.size());
  blas::convert<Src, Dst>(std::span<const Src>(f.inv_diag), std::span<Dst>(out.inv_diag));
  return out;
}

class JacobiPrecond final : public PrimaryPrecond {
 public:
  explicit JacobiPrecond(const CsrMatrix<double>& a);

  [[nodiscard]] std::string name() const override { return "jacobi"; }
  [[nodiscard]] index_t size() const override { return f64_->n; }

  std::unique_ptr<Preconditioner<double>> make_apply_fp64(Prec storage) override;
  std::unique_ptr<Preconditioner<float>> make_apply_fp32(Prec storage) override;
  std::unique_ptr<Preconditioner<half>> make_apply_fp16(Prec storage) override;

 private:
  template <class VT>
  std::unique_ptr<Preconditioner<VT>> make_apply_impl(Prec storage);

  std::shared_ptr<JacobiFactors<double>> f64_;
  std::shared_ptr<JacobiFactors<float>> f32_;
  std::shared_ptr<JacobiFactors<half>> f16_;
};

template <class SP, class VT>
class JacobiApplyHandle final : public Preconditioner<VT> {
 public:
  JacobiApplyHandle(std::shared_ptr<const JacobiFactors<SP>> f,
                    std::shared_ptr<InvocationCounter> cnt)
      : f_(std::move(f)), cnt_(std::move(cnt)) {}

  // The diagonal scaling is element-local, so the serial backend is the
  // identical loop with the OpenMP team suppressed (`if` clause) —
  // bit-identical results on either backend.
  void apply(std::span<const VT> r, std::span<VT> z) override {
    ++cnt_->count;
    using W = promote_t<SP, VT>;
    const std::ptrdiff_t n = f_->n;
    const bool par = this->backend() == Backend::kHost;
    (void)par;  // referenced only from the pragma; unused without OpenMP
#pragma omp parallel for schedule(static) if (par)
    for (std::ptrdiff_t i = 0; i < n; ++i)
      z[i] = static_cast<VT>(static_cast<W>(r[i]) * static_cast<W>(f_->inv_diag[i]));
  }
  /// Batched apply: one sweep over the diagonal serves all k columns; each
  /// element computes exactly the per-column apply() op.
  void apply_many(const VT* r, std::ptrdiff_t ldr, VT* z, std::ptrdiff_t ldz,
                  int k) override {
    cnt_->count += static_cast<std::uint64_t>(k);
    using W = promote_t<SP, VT>;
    const std::ptrdiff_t n = f_->n;
    const SP* __restrict d = f_->inv_diag.data();
    const bool par = this->backend() == Backend::kHost;
    (void)par;
#pragma omp parallel for schedule(static) if (par)
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      const W di = static_cast<W>(d[i]);
      for (int c = 0; c < k; ++c)
        z[static_cast<std::ptrdiff_t>(c) * ldz + i] =
            static_cast<VT>(static_cast<W>(r[static_cast<std::ptrdiff_t>(c) * ldr + i]) * di);
    }
  }
  /// Element-local, so the interleaved layout is native: only the
  /// addressing changes, each element computes the identical product.
  void apply_many_layout(const VT* r, std::ptrdiff_t ldr, VT* z, std::ptrdiff_t ldz,
                         int k, PanelLayout layout) override {
    if (layout == PanelLayout::kRowMajor) {
      apply_many(r, ldr, z, ldz, k);
      return;
    }
    cnt_->count += static_cast<std::uint64_t>(k);
    using W = promote_t<SP, VT>;
    const std::ptrdiff_t n = f_->n;
    const SP* __restrict d = f_->inv_diag.data();
    const bool par = this->backend() == Backend::kHost;
    (void)par;
#pragma omp parallel for schedule(static) if (par)
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      const W di = static_cast<W>(d[i]);
      for (int c = 0; c < k; ++c)
        z[i * ldz + c] = static_cast<VT>(static_cast<W>(r[i * ldr + c]) * di);
    }
  }
  [[nodiscard]] index_t size() const override { return f_->n; }

 private:
  std::shared_ptr<const JacobiFactors<SP>> f_;
  std::shared_ptr<InvocationCounter> cnt_;
};

}  // namespace nk
