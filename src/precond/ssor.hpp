// SSOR (symmetric successive over-relaxation) preconditioner.
//
//   M = (D/ω + L) · (D/ω)⁻¹ · (D/ω + U) · ω/(2−ω)
//
// applied block-Jacobi style (forward/backward sweeps restricted to
// contiguous row blocks, parallel across blocks).  SSOR needs no
// factorization — only the matrix itself — which makes it the natural
// stepping stone toward the asynchronous preconditioners the paper lists
// as future work: its sweeps tolerate stale off-block values by
// construction here.
#pragma once

#include <memory>
#include <vector>

#include "base/backend.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/csr.hpp"

namespace nk {

/// Block-restricted matrix data (rows sorted; diag position) at storage
/// precision P, shared by the SSOR sweeps.
template <class P>
struct SsorData {
  index_t n = 0;
  double omega = 1.0;
  std::vector<index_t> block_start;
  std::vector<index_t> row_ptr, col_idx, diag_pos;
  std::vector<P> vals;

  [[nodiscard]] index_t nblocks() const {
    return static_cast<index_t>(block_start.size()) - 1;
  }
};

template <class Dst, class Src>
SsorData<Dst> cast_factors(const SsorData<Src>& f) {
  SsorData<Dst> out;
  out.n = f.n;
  out.omega = f.omega;
  out.block_start = f.block_start;
  out.row_ptr = f.row_ptr;
  out.col_idx = f.col_idx;
  out.diag_pos = f.diag_pos;
  out.vals.resize(f.vals.size());
  blas::convert<Src, Dst>(std::span<const Src>(f.vals), std::span<Dst>(out.vals));
  return out;
}

/// One SSOR application: forward sweep, diagonal scaling, backward sweep.
/// Per-block sweeps are thread-invariant, so the serial backend runs the
/// identical loop with the OpenMP team suppressed — bit-identical results.
template <class P, class VT, class W = promote_t<P, VT>>
void ssor_solve(const SsorData<P>& f, std::span<const VT> r, std::span<VT> z,
                Backend be = Backend::kHost) {
  const index_t nb = f.nblocks();
  const W om = static_cast<W>(f.omega);
  const bool par = be == Backend::kHost;
  (void)par;  // referenced only from the pragma; unused without OpenMP
#pragma omp parallel for schedule(static) if (par)
  for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(nb); ++b) {
    const index_t b0 = f.block_start[b], b1 = f.block_start[b + 1];
    // Forward: (D/ω + L) y = r.
    for (index_t i = b0; i < b1; ++i) {
      W s = static_cast<W>(r[i]);
      for (index_t p = f.row_ptr[i]; p < f.diag_pos[i]; ++p)
        s -= static_cast<W>(f.vals[p]) * static_cast<W>(z[f.col_idx[p]]);
      z[i] = static_cast<VT>(s * om / static_cast<W>(f.vals[f.diag_pos[i]]));
    }
    // Scale: y ← (D/ω) y · (2−ω)/ω → combined into the backward sweep rhs.
    for (index_t i = b0; i < b1; ++i)
      z[i] = static_cast<VT>(static_cast<W>(z[i]) * static_cast<W>(f.vals[f.diag_pos[i]]) *
                             (W{2} - om) / om);
    // Backward: (D/ω + U) z = y.
    for (index_t i = b1; i-- > b0;) {
      W s = static_cast<W>(z[i]);
      for (index_t p = f.diag_pos[i] + 1; p < f.row_ptr[i + 1]; ++p)
        s -= static_cast<W>(f.vals[p]) * static_cast<W>(z[f.col_idx[p]]);
      z[i] = static_cast<VT>(s * om / static_cast<W>(f.vals[f.diag_pos[i]]));
    }
  }
}

class SsorPrecond final : public PrimaryPrecond {
 public:
  struct Config {
    int nblocks = 0;     ///< 0 → one block per OpenMP thread
    double omega = 1.0;  ///< relaxation weight (1 = symmetric Gauss-Seidel)
  };

  SsorPrecond(const CsrMatrix<double>& a, Config cfg);

  [[nodiscard]] std::string name() const override { return "ssor"; }
  [[nodiscard]] index_t size() const override { return f64_->n; }

  std::unique_ptr<Preconditioner<double>> make_apply_fp64(Prec storage) override;
  std::unique_ptr<Preconditioner<float>> make_apply_fp32(Prec storage) override;
  std::unique_ptr<Preconditioner<half>> make_apply_fp16(Prec storage) override;

  [[nodiscard]] const SsorData<double>& data_fp64() const { return *f64_; }

 private:
  template <class VT>
  std::unique_ptr<Preconditioner<VT>> make_apply_impl(Prec storage);

  std::shared_ptr<SsorData<double>> f64_;
  std::shared_ptr<SsorData<float>> f32_;
  std::shared_ptr<SsorData<half>> f16_;
};

template <class SP, class VT>
class SsorApplyHandle final : public Preconditioner<VT> {
 public:
  SsorApplyHandle(std::shared_ptr<const SsorData<SP>> f, std::shared_ptr<InvocationCounter> cnt)
      : f_(std::move(f)), cnt_(std::move(cnt)) {}

  void apply(std::span<const VT> r, std::span<VT> z) override {
    ++cnt_->count;
    ssor_solve(*f_, r, z, this->backend());
  }
  [[nodiscard]] index_t size() const override { return f_->n; }

 private:
  std::shared_ptr<const SsorData<SP>> f_;
  std::shared_ptr<InvocationCounter> cnt_;
};

}  // namespace nk
