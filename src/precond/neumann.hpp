// Truncated Neumann-series polynomial preconditioner.
//
// For a diagonally scaled matrix à = D^{-1/2} A D^{-1/2} = I − N,
//
//   M⁻¹ ≈ Σ_{k=0}^{degree} Nᵏ  (applied to D⁻¹-scaled input via Horner)
//
// i.e. z = r + N(r + N(r + …)).  Application is `degree` SpMVs and vector
// adds — completely reduction-free and triangular-solve-free, which makes
// it (like SD-AINV) a natural fit for wide-SIMT hardware and for the
// asynchronous settings the paper's future work mentions.  Degree 0 is
// Jacobi.  The Horner recurrence uses the *original* matrix and its
// diagonal: z ← D⁻¹ r + (I − D⁻¹A) z.
#pragma once

#include <memory>
#include <vector>

#include "backend/kernels.hpp"
#include "base/backend.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/csr.hpp"

namespace nk {

template <class P>
struct NeumannData {
  index_t n = 0;
  int degree = 2;
  CsrMatrix<P> a;             ///< the (scaled) matrix
  std::vector<P> inv_diag;    ///< D⁻¹
};

template <class Dst, class Src>
NeumannData<Dst> cast_factors(const NeumannData<Src>& f) {
  NeumannData<Dst> out;
  out.n = f.n;
  out.degree = f.degree;
  out.a = cast_matrix<Dst>(f.a);
  out.inv_diag.resize(f.inv_diag.size());
  blas::convert<Src, Dst>(std::span<const Src>(f.inv_diag), std::span<Dst>(out.inv_diag));
  return out;
}

/// z = Σ_{k≤degree} (I − D⁻¹A)ᵏ D⁻¹ r via Horner; tmp must have size n.
/// The element updates are backend-invariant (same loop, OpenMP team
/// suppressed for serial); the interior SpMV dispatches per backend.
template <class P, class VT, class W = promote_t<P, VT>>
void neumann_apply(const NeumannData<P>& f, std::span<const VT> r, std::span<VT> z,
                   std::span<VT> tmp, Backend be = Backend::kHost) {
  const std::ptrdiff_t n = f.n;
  const kern::Kernels kx(be);
  const bool par = be == Backend::kHost;
  (void)par;  // referenced only from the pragma; unused without OpenMP
  // z ← D⁻¹ r
#pragma omp parallel for schedule(static) if (par)
  for (std::ptrdiff_t i = 0; i < n; ++i)
    z[i] = static_cast<VT>(static_cast<W>(r[i]) * static_cast<W>(f.inv_diag[i]));
  for (int k = 0; k < f.degree; ++k) {
    // tmp ← A z;  z ← D⁻¹ r + z − D⁻¹ tmp
    kx.spmv(f.a, std::span<const VT>(z.data(), z.size()), tmp);
#pragma omp parallel for schedule(static) if (par)
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      const W d = static_cast<W>(f.inv_diag[i]);
      z[i] = static_cast<VT>(d * static_cast<W>(r[i]) + static_cast<W>(z[i]) -
                             d * static_cast<W>(tmp[i]));
    }
  }
}

class NeumannPrecond final : public PrimaryPrecond {
 public:
  struct Config {
    int degree = 2;  ///< number of SpMVs per application
  };

  NeumannPrecond(const CsrMatrix<double>& a, Config cfg);

  [[nodiscard]] std::string name() const override { return "neumann"; }
  [[nodiscard]] index_t size() const override { return f64_->n; }

  std::unique_ptr<Preconditioner<double>> make_apply_fp64(Prec storage) override;
  std::unique_ptr<Preconditioner<float>> make_apply_fp32(Prec storage) override;
  std::unique_ptr<Preconditioner<half>> make_apply_fp16(Prec storage) override;

 private:
  template <class VT>
  std::unique_ptr<Preconditioner<VT>> make_apply_impl(Prec storage);

  std::shared_ptr<NeumannData<double>> f64_;
  std::shared_ptr<NeumannData<float>> f32_;
  std::shared_ptr<NeumannData<half>> f16_;
};

template <class SP, class VT>
class NeumannApplyHandle final : public Preconditioner<VT> {
 public:
  NeumannApplyHandle(std::shared_ptr<const NeumannData<SP>> f,
                     std::shared_ptr<InvocationCounter> cnt)
      : f_(std::move(f)), cnt_(std::move(cnt)), tmp_(f_->n) {}

  void apply(std::span<const VT> r, std::span<VT> z) override {
    ++cnt_->count;
    neumann_apply(*f_, r, z, std::span<VT>(tmp_), this->backend());
  }
  [[nodiscard]] index_t size() const override { return f_->n; }

 private:
  std::shared_ptr<const NeumannData<SP>> f_;
  std::shared_ptr<InvocationCounter> cnt_;
  std::vector<VT> tmp_;
};

}  // namespace nk
