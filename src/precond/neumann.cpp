#include "precond/neumann.hpp"

#include <cmath>
#include <stdexcept>

namespace nk {

NeumannPrecond::NeumannPrecond(const CsrMatrix<double>& a, Config cfg) {
  if (a.nrows != a.ncols) throw std::invalid_argument("NeumannPrecond: matrix must be square");
  if (cfg.degree < 0) throw std::invalid_argument("NeumannPrecond: degree must be >= 0");
  auto f = std::make_shared<NeumannData<double>>();
  f->n = a.nrows;
  f->degree = cfg.degree;
  f->a = a;
  f->inv_diag.resize(a.nrows);
  const auto d = a.diagonal();
  for (index_t i = 0; i < a.nrows; ++i)
    f->inv_diag[i] = (d[i] != 0.0 && std::isfinite(d[i])) ? 1.0 / d[i] : 1.0;
  f64_ = std::move(f);
}

template <class VT>
std::unique_ptr<Preconditioner<VT>> NeumannPrecond::make_apply_impl(Prec storage) {
  switch (storage) {
    case Prec::FP64:
      return std::make_unique<NeumannApplyHandle<double, VT>>(f64_, counter_);
    case Prec::FP32:
      if (!f32_) f32_ = std::make_shared<NeumannData<float>>(cast_factors<float>(*f64_));
      return std::make_unique<NeumannApplyHandle<float, VT>>(f32_, counter_);
    case Prec::FP16:
      if (!f16_) f16_ = std::make_shared<NeumannData<half>>(cast_factors<half>(*f64_));
      return std::make_unique<NeumannApplyHandle<half, VT>>(f16_, counter_);
  }
  throw std::logic_error("NeumannPrecond: bad storage precision");
}

std::unique_ptr<Preconditioner<double>> NeumannPrecond::make_apply_fp64(Prec storage) {
  return make_apply_impl<double>(storage);
}
std::unique_ptr<Preconditioner<float>> NeumannPrecond::make_apply_fp32(Prec storage) {
  return make_apply_impl<float>(storage);
}
std::unique_ptr<Preconditioner<half>> NeumannPrecond::make_apply_fp16(Prec storage) {
  return make_apply_impl<half>(storage);
}

}  // namespace nk
