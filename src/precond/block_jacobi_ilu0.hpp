// Block-Jacobi ILU(0) — the paper's primary preconditioner on the CPU node.
//
// Rows are partitioned into `nblocks` contiguous blocks (the paper uses one
// block per hardware thread: 112 = 56 × 2); each diagonal block is factored
// independently with ILU(0) (no fill outside the block's sparsity pattern),
// and application performs the forward/backward substitutions block-parallel.
//
// Stabilization: the diagonal entries of A are multiplied by a
// problem-dependent factor α_ILU during the factorization only (Table 2
// lists the paper's values), which damps pivot loss in the incomplete
// factors.  Zero pivots encountered anyway are replaced by a unit pivot and
// counted (`breakdowns()`).
//
// The factorization is computed once in fp64; fp32/fp16 value copies are
// cast lazily ("construct in fp64, then cast"), and apply handles can mix
// any storage precision with any vector precision — arithmetic runs in the
// wider of the two, per the paper's precision-promotion rule.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "base/backend.hpp"
#include "base/panel.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/csr.hpp"

namespace nk {

/// Factored block data at storage precision P.  The concatenated CSR covers
/// all rows; each row stores L (strict lower, unit diagonal implicit)
/// followed by U (diagonal + strict upper), with `diag_pos` marking the
/// diagonal entry.
template <class P>
struct IluFactors {
  index_t n = 0;
  std::vector<index_t> block_start;  ///< size nblocks+1
  std::vector<index_t> row_ptr;      ///< size n+1
  std::vector<index_t> col_idx;      ///< global columns, sorted, within-block
  std::vector<index_t> diag_pos;     ///< position of the diagonal in each row
  std::vector<P> vals;

  [[nodiscard]] index_t nblocks() const {
    return static_cast<index_t>(block_start.size()) - 1;
  }
};

/// Cast factors to another storage precision (structure shared by copy).
template <class Dst, class Src>
IluFactors<Dst> cast_factors(const IluFactors<Src>& f) {
  IluFactors<Dst> out;
  out.n = f.n;
  out.block_start = f.block_start;
  out.row_ptr = f.row_ptr;
  out.col_idx = f.col_idx;
  out.diag_pos = f.diag_pos;
  out.vals.resize(f.vals.size());
  blas::convert<Src, Dst>(std::span<const Src>(f.vals), std::span<Dst>(out.vals));
  return out;
}

/// Block-parallel LU substitution:  z = U⁻¹ L⁻¹ r, computed in W.
///
/// Backend dispatch happens HERE, not in a separate kernel copy: the
/// per-block substitution is thread-invariant (blocks are independent and
/// each block's recurrence is a fixed serial chain), so the serial backend
/// is the same math with the OpenMP team suppressed via the `if` clause —
/// bit-identical to the host sweep by construction.
template <class P, class VT, class W = promote_t<P, VT>>
void ilu_solve(const IluFactors<P>& f, std::span<const VT> r, std::span<VT> z,
               Backend be = Backend::kHost) {
  const index_t nb = f.nblocks();
  const bool par = be == Backend::kHost;
  (void)par;  // referenced only from the pragma; unused without OpenMP
#pragma omp parallel for schedule(static) if (par)
  for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(nb); ++b) {
    const index_t b0 = f.block_start[b], b1 = f.block_start[b + 1];
    // Forward: L y = r (unit diagonal), y written into z.
    for (index_t i = b0; i < b1; ++i) {
      W s = static_cast<W>(r[i]);
      for (index_t p = f.row_ptr[i]; p < f.diag_pos[i]; ++p)
        s -= static_cast<W>(f.vals[p]) * static_cast<W>(z[f.col_idx[p]]);
      z[i] = static_cast<VT>(s);
    }
    // Backward: U z = y.
    for (index_t i = b1; i-- > b0;) {
      W s = static_cast<W>(z[i]);
      for (index_t p = f.diag_pos[i] + 1; p < f.row_ptr[i + 1]; ++p)
        s -= static_cast<W>(f.vals[p]) * static_cast<W>(z[f.col_idx[p]]);
      z[i] = static_cast<VT>(s / static_cast<W>(f.vals[f.diag_pos[i]]));
    }
  }
}

/// Column-group width of the batched substitution's stack accumulators.
inline constexpr int kIluMaxCols = 16;

/// Batched substitution: Z_c = U⁻¹ L⁻¹ R_c for k columns.  The triangular
/// recurrence is a serial dependency chain over rows, so a sequential
/// solve is latency-bound; here the k columns' (mutually independent)
/// chains advance in lockstep — each factor entry is loaded once and
/// applied to every column — which turns the substitution throughput-bound
/// in exactly the way the batched SpMM does.  Per column the operation
/// sequence (subtractions in position order, then the divide) is
/// ilu_solve()'s, so batched and sequential applications agree
/// bit-for-bit.
namespace ilu_detail {

/// L selects the shared layout of the R and Z panels (see panel.hpp):
/// kColMajor addresses element (i, c) at p[i·ld + c], which makes every
/// per-row column sweep below — including the z gathers at the factor's
/// column indices — unit-stride over the live columns.  Addressing only;
/// the substitution order per column is layout-independent.
template <class P, class VT, class W, int KC,
          PanelLayout L = PanelLayout::kRowMajor>
void solve_group(const IluFactors<P>& f, const VT* rg, std::ptrdiff_t ldr, VT* zg,
                 std::ptrdiff_t ldz, int kc_dyn, Backend be) {
  const int kc = KC > 0 ? KC : kc_dyn;
  const index_t nb = f.nblocks();
  constexpr bool ilv = L == PanelLayout::kColMajor;
  const bool par = be == Backend::kHost;
  (void)par;
#pragma omp parallel for schedule(static) if (par)
  for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(nb); ++b) {
    const index_t b0 = f.block_start[b], b1 = f.block_start[b + 1];
    W s[kIluMaxCols];
    // Forward: L y = r (unit diagonal), y written into z.
    for (index_t i = b0; i < b1; ++i) {
      for (int c = 0; c < kc; ++c)
        s[c] = static_cast<W>(*panel_at<L>(rg, ldr, c, i));
      for (index_t p = f.row_ptr[i]; p < f.diag_pos[i]; ++p) {
        const W vp = static_cast<W>(f.vals[p]);
        const VT* __restrict zc = ilv ? zg + f.col_idx[p] * ldz : zg + f.col_idx[p];
        const std::ptrdiff_t zs = ilv ? 1 : ldz;
        for (int c = 0; c < kc; ++c)
          s[c] -= vp * static_cast<W>(zc[static_cast<std::ptrdiff_t>(c) * zs]);
      }
      for (int c = 0; c < kc; ++c)
        *panel_at<L>(zg, ldz, c, i) = static_cast<VT>(s[c]);
    }
    // Backward: U z = y.
    for (index_t i = b1; i-- > b0;) {
      for (int c = 0; c < kc; ++c)
        s[c] = static_cast<W>(*panel_at<L>(zg, ldz, c, i));
      for (index_t p = f.diag_pos[i] + 1; p < f.row_ptr[i + 1]; ++p) {
        const W vp = static_cast<W>(f.vals[p]);
        const VT* __restrict zc = ilv ? zg + f.col_idx[p] * ldz : zg + f.col_idx[p];
        const std::ptrdiff_t zs = ilv ? 1 : ldz;
        for (int c = 0; c < kc; ++c)
          s[c] -= vp * static_cast<W>(zc[static_cast<std::ptrdiff_t>(c) * zs]);
      }
      const W d = static_cast<W>(f.vals[f.diag_pos[i]]);
      for (int c = 0; c < kc; ++c)
        *panel_at<L>(zg, ldz, c, i) = static_cast<VT>(s[c] / d);
    }
  }
}

template <PanelLayout L, class P, class VT, class W>
void solve_many_dispatch(const IluFactors<P>& f, const VT* r, std::ptrdiff_t ldr, VT* z,
                         std::ptrdiff_t ldz, int k, Backend be) {
  // Greedy 16/8/4 groups (blas::greedy_group) with the 1/2/3 tails pinned
  // too, so every compacted width — odd ones included — runs fully
  // unrolled; mirrors spmm's dispatch.
  for (int c0 = 0; c0 < k;) {
    const int kc = blas::greedy_group(k - c0, kIluMaxCols);
    const VT* rg = L == PanelLayout::kColMajor ? r + c0 : r + static_cast<std::ptrdiff_t>(c0) * ldr;
    VT* zg = L == PanelLayout::kColMajor ? z + c0 : z + static_cast<std::ptrdiff_t>(c0) * ldz;
    switch (kc) {
      case 1: solve_group<P, VT, W, 1, L>(f, rg, ldr, zg, ldz, kc, be); break;
      case 2: solve_group<P, VT, W, 2, L>(f, rg, ldr, zg, ldz, kc, be); break;
      case 3: solve_group<P, VT, W, 3, L>(f, rg, ldr, zg, ldz, kc, be); break;
      case 4: solve_group<P, VT, W, 4, L>(f, rg, ldr, zg, ldz, kc, be); break;
      case 8: solve_group<P, VT, W, 8, L>(f, rg, ldr, zg, ldz, kc, be); break;
      case kIluMaxCols:
        solve_group<P, VT, W, kIluMaxCols, L>(f, rg, ldr, zg, ldz, kc, be);
        break;
      default: solve_group<P, VT, W, 0, L>(f, rg, ldr, zg, ldz, kc, be); break;
    }
    c0 += kc;
  }
}

}  // namespace ilu_detail

template <class P, class VT, class W = promote_t<P, VT>>
void ilu_solve_many(const IluFactors<P>& f, const VT* r, std::ptrdiff_t ldr, VT* z,
                    std::ptrdiff_t ldz, int k,
                    PanelLayout layout = PanelLayout::kRowMajor,
                    Backend be = Backend::kHost) {
  if (layout == PanelLayout::kColMajor)
    ilu_detail::solve_many_dispatch<PanelLayout::kColMajor, P, VT, W>(f, r, ldr, z, ldz,
                                                                     k, be);
  else
    ilu_detail::solve_many_dispatch<PanelLayout::kRowMajor, P, VT, W>(f, r, ldr, z, ldz,
                                                                     k, be);
}

class BlockJacobiIlu0 final : public PrimaryPrecond {
 public:
  struct Config {
    int nblocks = 0;     ///< 0 → one block per OpenMP thread
    double alpha = 1.0;  ///< α_ILU diagonal boost during factorization
  };

  /// Factor the block-diagonal part of `a` (rows must be sorted).
  BlockJacobiIlu0(const CsrMatrix<double>& a, Config cfg);

  [[nodiscard]] std::string name() const override { return "bj-ilu0"; }
  [[nodiscard]] index_t size() const override { return f64_->n; }

  std::unique_ptr<Preconditioner<double>> make_apply_fp64(Prec storage) override;
  std::unique_ptr<Preconditioner<float>> make_apply_fp32(Prec storage) override;
  std::unique_ptr<Preconditioner<half>> make_apply_fp16(Prec storage) override;

  /// Zero pivots replaced during factorization.
  [[nodiscard]] int breakdowns() const { return breakdowns_; }

  [[nodiscard]] const IluFactors<double>& factors_fp64() const { return *f64_; }

 private:
  template <class VT>
  std::unique_ptr<Preconditioner<VT>> make_apply_impl(Prec storage);

  std::shared_ptr<IluFactors<double>> f64_;
  std::shared_ptr<IluFactors<float>> f32_;  // lazy
  std::shared_ptr<IluFactors<half>> f16_;   // lazy
  int breakdowns_ = 0;
};

/// Typed apply handle over shared factors; counts invocations.
template <class SP, class VT>
class IluApplyHandle final : public Preconditioner<VT> {
 public:
  IluApplyHandle(std::shared_ptr<const IluFactors<SP>> f,
                 std::shared_ptr<InvocationCounter> cnt)
      : f_(std::move(f)), cnt_(std::move(cnt)) {}

  void apply(std::span<const VT> r, std::span<VT> z) override {
    ++cnt_->count;
    ilu_solve(*f_, r, z, this->backend());
  }
  void apply_many(const VT* r, std::ptrdiff_t ldr, VT* z, std::ptrdiff_t ldz,
                  int k) override {
    cnt_->count += static_cast<std::uint64_t>(k);
    ilu_solve_many(*f_, r, ldr, z, ldz, k, PanelLayout::kRowMajor, this->backend());
  }
  void apply_many_layout(const VT* r, std::ptrdiff_t ldr, VT* z, std::ptrdiff_t ldz,
                         int k, PanelLayout layout) override {
    cnt_->count += static_cast<std::uint64_t>(k);
    ilu_solve_many(*f_, r, ldr, z, ldz, k, layout, this->backend());  // native: no staging
  }
  [[nodiscard]] index_t size() const override { return f_->n; }

 private:
  std::shared_ptr<const IluFactors<SP>> f_;
  std::shared_ptr<InvocationCounter> cnt_;
};

/// Compute balanced contiguous block boundaries (helper shared with IC(0)).
std::vector<index_t> make_block_starts(index_t n, int nblocks);

}  // namespace nk
