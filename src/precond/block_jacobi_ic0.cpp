#include "precond/block_jacobi_ic0.hpp"

#include <cmath>
#include <stdexcept>

#include "precond/block_jacobi_ilu0.hpp"  // make_block_starts

namespace nk {

BlockJacobiIc0::BlockJacobiIc0(const CsrMatrix<double>& a, Config cfg) {
  if (a.nrows != a.ncols) throw std::invalid_argument("BlockJacobiIc0: matrix must be square");
  auto f = std::make_shared<IcFactors<double>>();
  f->n = a.nrows;
  f->block_start = make_block_starts(a.nrows, cfg.nblocks);
  const index_t nb = f->nblocks();
  std::vector<index_t> owner(a.nrows);
  for (index_t b = 0; b < nb; ++b)
    for (index_t i = f->block_start[b]; i < f->block_start[b + 1]; ++i) owner[i] = b;

  // Pass 1: count lower-triangular entries per row within the block,
  // forcing a diagonal entry.
  f->l_row_ptr.assign(a.nrows + 1, 0);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(a.nrows); ++i) {
    const index_t b0 = f->block_start[owner[i]];
    index_t cnt = 1;  // diagonal always present
    for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const index_t c = a.col_idx[k];
      if (c >= b0 && c < static_cast<index_t>(i)) ++cnt;
    }
    f->l_row_ptr[i + 1] = cnt;
  }
  for (index_t i = 0; i < a.nrows; ++i) f->l_row_ptr[i + 1] += f->l_row_ptr[i];
  f->l_col.resize(f->l_row_ptr[a.nrows]);
  f->l_val.resize(f->l_row_ptr[a.nrows]);

  // Pass 2: copy strict-lower entries (sorted) + boosted diagonal last.
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(a.nrows); ++i) {
    const index_t b0 = f->block_start[owner[i]];
    index_t p = f->l_row_ptr[i];
    double diag = 0.0;
    for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const index_t c = a.col_idx[k];
      if (c >= b0 && c < static_cast<index_t>(i)) {
        f->l_col[p] = c;
        f->l_val[p] = a.vals[k];
        ++p;
      } else if (c == static_cast<index_t>(i)) {
        diag = a.vals[k];
      }
    }
    f->l_col[p] = static_cast<index_t>(i);
    f->l_val[p] = diag * cfg.alpha;
  }

  // Pass 3: IC(0) per block.  For each row i and each stored l_ij (j < i):
  //   l_ij = (a_ij - Σ_{k<j} l_ik l_jk) / l_jj,   l_ii = sqrt(a_ii - Σ l_ik²).
  int breakdowns = 0;
#pragma omp parallel for schedule(static) reduction(+ : breakdowns)
  for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(nb); ++b) {
    const index_t b0 = f->block_start[b], b1 = f->block_start[b + 1];
    const index_t width = b1 - b0;
    std::vector<double> w(width, 0.0);       // row i values by local column
    std::vector<index_t> tag(width, -1);     // which row the slot belongs to
    for (index_t i = b0; i < b1; ++i) {
      const index_t begin = f->l_row_ptr[i], end = f->l_row_ptr[i + 1] - 1;
      for (index_t p = begin; p <= end; ++p) {
        w[f->l_col[p] - b0] = f->l_val[p];
        tag[f->l_col[p] - b0] = i;
      }
      for (index_t p = begin; p < end; ++p) {
        const index_t j = f->l_col[p];
        // s = a_ij - Σ_{k<j} l_ik l_jk over row j's stored entries
        double s = w[j - b0];
        const index_t jend = f->l_row_ptr[j + 1] - 1;  // skip row j's diagonal
        for (index_t q = f->l_row_ptr[j]; q < jend; ++q) {
          const index_t k = f->l_col[q];
          if (tag[k - b0] == i) s -= w[k - b0] * f->l_val[q];
        }
        const double ljj = f->l_val[jend];
        const double lij = s / ljj;
        w[j - b0] = lij;
        f->l_val[p] = lij;
      }
      double s = w[static_cast<index_t>(i) - b0];
      for (index_t p = begin; p < end; ++p) {
        const double lik = f->l_val[p];
        s -= lik * lik;
      }
      if (s <= 1e-30 || !std::isfinite(s)) {
        s = 1e-8;  // clamped pivot (counted); keeps the factor SPD
        ++breakdowns;
      }
      f->l_val[end] = std::sqrt(s);
      for (index_t p = begin; p <= end; ++p) tag[f->l_col[p] - b0] = -1;
    }
  }
  breakdowns_ = breakdowns;

  // Build L^T rows (block-local transpose), diagonal first by construction
  // because L's rows are sorted so column i's smallest row is i itself.
  f->lt_row_ptr.assign(a.nrows + 1, 0);
  for (index_t i = 0; i < a.nrows; ++i)
    for (index_t p = f->l_row_ptr[i]; p < f->l_row_ptr[i + 1]; ++p)
      ++f->lt_row_ptr[f->l_col[p] + 1];
  for (index_t i = 0; i < a.nrows; ++i) f->lt_row_ptr[i + 1] += f->lt_row_ptr[i];
  f->lt_col.resize(f->l_col.size());
  f->lt_val.resize(f->l_val.size());
  std::vector<index_t> next(f->lt_row_ptr.begin(), f->lt_row_ptr.end() - 1);
  for (index_t i = 0; i < a.nrows; ++i)
    for (index_t p = f->l_row_ptr[i]; p < f->l_row_ptr[i + 1]; ++p) {
      const index_t c = f->l_col[p];
      const index_t dst = next[c]++;
      f->lt_col[dst] = i;
      f->lt_val[dst] = f->l_val[p];
    }
  f64_ = std::move(f);
}

template <class VT>
std::unique_ptr<Preconditioner<VT>> BlockJacobiIc0::make_apply_impl(Prec storage) {
  switch (storage) {
    case Prec::FP64:
      return std::make_unique<IcApplyHandle<double, VT>>(f64_, counter_);
    case Prec::FP32:
      if (!f32_) f32_ = std::make_shared<IcFactors<float>>(cast_factors<float>(*f64_));
      return std::make_unique<IcApplyHandle<float, VT>>(f32_, counter_);
    case Prec::FP16:
      if (!f16_) f16_ = std::make_shared<IcFactors<half>>(cast_factors<half>(*f64_));
      return std::make_unique<IcApplyHandle<half, VT>>(f16_, counter_);
  }
  throw std::logic_error("BlockJacobiIc0: bad storage precision");
}

std::unique_ptr<Preconditioner<double>> BlockJacobiIc0::make_apply_fp64(Prec storage) {
  return make_apply_impl<double>(storage);
}
std::unique_ptr<Preconditioner<float>> BlockJacobiIc0::make_apply_fp32(Prec storage) {
  return make_apply_impl<float>(storage);
}
std::unique_ptr<Preconditioner<half>> BlockJacobiIc0::make_apply_fp16(Prec storage) {
  return make_apply_impl<half>(storage);
}

}  // namespace nk
