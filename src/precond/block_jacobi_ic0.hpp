// Block-Jacobi IC(0) — incomplete Cholesky with zero fill, the paper's
// primary preconditioner for symmetric positive definite matrices on the
// CPU node ("block-Jacobi ILU(0) (or IC(0) when symmetric)").
//
// Each diagonal block is factored as A_b ≈ L L^T on the lower-triangular
// sparsity pattern of A_b.  The α_ILU diagonal boost is applied during the
// factorization, and non-positive pivots (IC(0) can break down on matrices
// that are not M-matrices) are clamped to a small positive value and
// counted.  Like ILU(0), factorization happens in fp64 with lazy fp32/fp16
// value casts for the mixed-precision apply handles.
#pragma once

#include <memory>
#include <vector>

#include "base/backend.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/csr.hpp"

namespace nk {

/// IC(0) factor data at storage precision P.  `l` holds rows of L with the
/// diagonal last; `lt` holds rows of L^T (columns of L) with the diagonal
/// first — the layout the backward substitution wants.
template <class P>
struct IcFactors {
  index_t n = 0;
  std::vector<index_t> block_start;
  std::vector<index_t> l_row_ptr, l_col, lt_row_ptr, lt_col;
  std::vector<P> l_val, lt_val;

  [[nodiscard]] index_t nblocks() const {
    return static_cast<index_t>(block_start.size()) - 1;
  }
};

template <class Dst, class Src>
IcFactors<Dst> cast_factors(const IcFactors<Src>& f) {
  IcFactors<Dst> out;
  out.n = f.n;
  out.block_start = f.block_start;
  out.l_row_ptr = f.l_row_ptr;
  out.l_col = f.l_col;
  out.lt_row_ptr = f.lt_row_ptr;
  out.lt_col = f.lt_col;
  out.l_val.resize(f.l_val.size());
  out.lt_val.resize(f.lt_val.size());
  blas::convert<Src, Dst>(std::span<const Src>(f.l_val), std::span<Dst>(out.l_val));
  blas::convert<Src, Dst>(std::span<const Src>(f.lt_val), std::span<Dst>(out.lt_val));
  return out;
}

/// z = L^{-T} L^{-1} r, block-parallel, computed in W.  Per-block
/// substitution is thread-invariant, so the serial backend is the same
/// sweep with the OpenMP team suppressed — bit-identical by construction.
template <class P, class VT, class W = promote_t<P, VT>>
void ic_solve(const IcFactors<P>& f, std::span<const VT> r, std::span<VT> z,
              Backend be = Backend::kHost) {
  const index_t nb = f.nblocks();
  const bool par = be == Backend::kHost;
  (void)par;  // referenced only from the pragma; unused without OpenMP
#pragma omp parallel for schedule(static) if (par)
  for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(nb); ++b) {
    const index_t b0 = f.block_start[b], b1 = f.block_start[b + 1];
    // Forward: L y = r (diagonal is the last entry of each L row).
    for (index_t i = b0; i < b1; ++i) {
      W s = static_cast<W>(r[i]);
      const index_t end = f.l_row_ptr[i + 1] - 1;  // diag position
      for (index_t p = f.l_row_ptr[i]; p < end; ++p)
        s -= static_cast<W>(f.l_val[p]) * static_cast<W>(z[f.l_col[p]]);
      z[i] = static_cast<VT>(s / static_cast<W>(f.l_val[end]));
    }
    // Backward: L^T z = y (diagonal is the first entry of each L^T row).
    for (index_t i = b1; i-- > b0;) {
      W s = static_cast<W>(z[i]);
      const index_t begin = f.lt_row_ptr[i];  // diag position
      for (index_t p = begin + 1; p < f.lt_row_ptr[i + 1]; ++p)
        s -= static_cast<W>(f.lt_val[p]) * static_cast<W>(z[f.lt_col[p]]);
      z[i] = static_cast<VT>(s / static_cast<W>(f.lt_val[begin]));
    }
  }
}

class BlockJacobiIc0 final : public PrimaryPrecond {
 public:
  struct Config {
    int nblocks = 0;     ///< 0 → one block per OpenMP thread
    double alpha = 1.0;  ///< α diagonal boost during factorization
  };

  BlockJacobiIc0(const CsrMatrix<double>& a, Config cfg);

  [[nodiscard]] std::string name() const override { return "bj-ic0"; }
  [[nodiscard]] index_t size() const override { return f64_->n; }

  std::unique_ptr<Preconditioner<double>> make_apply_fp64(Prec storage) override;
  std::unique_ptr<Preconditioner<float>> make_apply_fp32(Prec storage) override;
  std::unique_ptr<Preconditioner<half>> make_apply_fp16(Prec storage) override;

  /// Non-positive pivots clamped during factorization.
  [[nodiscard]] int breakdowns() const { return breakdowns_; }

  [[nodiscard]] const IcFactors<double>& factors_fp64() const { return *f64_; }

 private:
  template <class VT>
  std::unique_ptr<Preconditioner<VT>> make_apply_impl(Prec storage);

  std::shared_ptr<IcFactors<double>> f64_;
  std::shared_ptr<IcFactors<float>> f32_;
  std::shared_ptr<IcFactors<half>> f16_;
  int breakdowns_ = 0;
};

template <class SP, class VT>
class IcApplyHandle final : public Preconditioner<VT> {
 public:
  IcApplyHandle(std::shared_ptr<const IcFactors<SP>> f, std::shared_ptr<InvocationCounter> cnt)
      : f_(std::move(f)), cnt_(std::move(cnt)) {}

  void apply(std::span<const VT> r, std::span<VT> z) override {
    ++cnt_->count;
    ic_solve(*f_, r, z, this->backend());
  }
  [[nodiscard]] index_t size() const override { return f_->n; }

 private:
  std::shared_ptr<const IcFactors<SP>> f_;
  std::shared_ptr<InvocationCounter> cnt_;
};

}  // namespace nk
