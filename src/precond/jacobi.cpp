#include "precond/jacobi.hpp"

#include <cmath>
#include <stdexcept>

namespace nk {

JacobiPrecond::JacobiPrecond(const CsrMatrix<double>& a) {
  if (a.nrows != a.ncols) throw std::invalid_argument("JacobiPrecond: matrix must be square");
  auto f = std::make_shared<JacobiFactors<double>>();
  f->n = a.nrows;
  f->inv_diag.resize(a.nrows);
  const std::vector<double> d = a.diagonal();
  for (index_t i = 0; i < a.nrows; ++i)
    f->inv_diag[i] = (d[i] != 0.0 && std::isfinite(d[i])) ? 1.0 / d[i] : 1.0;
  f64_ = std::move(f);
}

template <class VT>
std::unique_ptr<Preconditioner<VT>> JacobiPrecond::make_apply_impl(Prec storage) {
  switch (storage) {
    case Prec::FP64:
      return std::make_unique<JacobiApplyHandle<double, VT>>(f64_, counter_);
    case Prec::FP32:
      if (!f32_) f32_ = std::make_shared<JacobiFactors<float>>(cast_factors<float>(*f64_));
      return std::make_unique<JacobiApplyHandle<float, VT>>(f32_, counter_);
    case Prec::FP16:
      if (!f16_) f16_ = std::make_shared<JacobiFactors<half>>(cast_factors<half>(*f64_));
      return std::make_unique<JacobiApplyHandle<half, VT>>(f16_, counter_);
  }
  throw std::logic_error("JacobiPrecond: bad storage precision");
}

std::unique_ptr<Preconditioner<double>> JacobiPrecond::make_apply_fp64(Prec storage) {
  return make_apply_impl<double>(storage);
}
std::unique_ptr<Preconditioner<float>> JacobiPrecond::make_apply_fp32(Prec storage) {
  return make_apply_impl<float>(storage);
}
std::unique_ptr<Preconditioner<half>> JacobiPrecond::make_apply_fp16(Prec storage) {
  return make_apply_impl<half>(storage);
}

}  // namespace nk
