#include "precond/block_jacobi_ilu0.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "base/env.hpp"

namespace nk {

std::vector<index_t> make_block_starts(index_t n, int nblocks) {
  if (nblocks <= 0) nblocks = num_threads();
  nblocks = std::min<int>(nblocks, std::max<index_t>(n, 1));
  std::vector<index_t> starts(nblocks + 1);
  for (int b = 0; b <= nblocks; ++b)
    starts[b] = static_cast<index_t>(static_cast<std::int64_t>(n) * b / nblocks);
  return starts;
}

BlockJacobiIlu0::BlockJacobiIlu0(const CsrMatrix<double>& a, Config cfg) {
  if (a.nrows != a.ncols) throw std::invalid_argument("BlockJacobiIlu0: matrix must be square");
  auto f = std::make_shared<IluFactors<double>>();
  f->n = a.nrows;
  f->block_start = make_block_starts(a.nrows, cfg.nblocks);
  const index_t nb = f->nblocks();

  // Pass 1: count per-row entries restricted to the owning block, inserting
  // the diagonal where the pattern lacks it.
  f->row_ptr.assign(a.nrows + 1, 0);
  std::vector<index_t> owner(a.nrows);
  for (index_t b = 0; b < nb; ++b)
    for (index_t i = f->block_start[b]; i < f->block_start[b + 1]; ++i) owner[i] = b;

#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(a.nrows); ++i) {
    const index_t b = owner[i];
    const index_t b0 = f->block_start[b], b1 = f->block_start[b + 1];
    index_t cnt = 0;
    bool saw_diag = false;
    for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const index_t c = a.col_idx[k];
      if (c >= b0 && c < b1) {
        ++cnt;
        if (c == static_cast<index_t>(i)) saw_diag = true;
      }
    }
    if (!saw_diag) ++cnt;
    f->row_ptr[i + 1] = cnt;
  }
  for (index_t i = 0; i < a.nrows; ++i) f->row_ptr[i + 1] += f->row_ptr[i];
  f->col_idx.resize(f->row_ptr[a.nrows]);
  f->vals.resize(f->row_ptr[a.nrows]);
  f->diag_pos.resize(a.nrows);

  // Pass 2: copy entries (sorted) with the α-boosted diagonal.
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(a.nrows); ++i) {
    const index_t b = owner[i];
    const index_t b0 = f->block_start[b], b1 = f->block_start[b + 1];
    index_t p = f->row_ptr[i];
    bool placed_diag = false;
    for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const index_t c = a.col_idx[k];
      if (c < b0 || c >= b1) continue;
      if (!placed_diag && c > static_cast<index_t>(i)) {
        // insert missing diagonal before the first upper entry
        f->col_idx[p] = static_cast<index_t>(i);
        f->vals[p] = 0.0;
        f->diag_pos[i] = p++;
        placed_diag = true;
      }
      f->col_idx[p] = c;
      f->vals[p] = (c == static_cast<index_t>(i)) ? a.vals[k] * cfg.alpha : a.vals[k];
      if (c == static_cast<index_t>(i)) {
        f->diag_pos[i] = p;
        placed_diag = true;
      }
      ++p;
    }
    if (!placed_diag) {
      f->col_idx[p] = static_cast<index_t>(i);
      f->vals[p] = 0.0;
      f->diag_pos[i] = p;
    }
  }

  // Pass 3: IKJ ILU(0) per block.
  int breakdowns = 0;
#pragma omp parallel for schedule(static) reduction(+ : breakdowns)
  for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(nb); ++b) {
    const index_t b0 = f->block_start[b], b1 = f->block_start[b + 1];
    const index_t width = b1 - b0;
    std::vector<index_t> pos(width, -1);  // col -> position in current row i
    for (index_t i = b0; i < b1; ++i) {
      for (index_t p = f->row_ptr[i]; p < f->row_ptr[i + 1]; ++p)
        pos[f->col_idx[p] - b0] = p;
      for (index_t p = f->row_ptr[i]; p < f->diag_pos[i]; ++p) {
        const index_t k = f->col_idx[p];
        const double ukk = f->vals[f->diag_pos[k]];
        const double lik = f->vals[p] / ukk;
        f->vals[p] = lik;
        for (index_t q = f->diag_pos[k] + 1; q < f->row_ptr[k + 1]; ++q) {
          const index_t j = f->col_idx[q];
          const index_t pj = pos[j - b0];
          if (pj >= 0) f->vals[pj] -= lik * f->vals[q];
        }
      }
      double& uii = f->vals[f->diag_pos[i]];
      if (std::abs(uii) < 1e-30 || !std::isfinite(uii)) {
        uii = 1.0;  // zero-pivot replacement (counted)
        ++breakdowns;
      }
      for (index_t p = f->row_ptr[i]; p < f->row_ptr[i + 1]; ++p)
        pos[f->col_idx[p] - b0] = -1;
    }
  }
  breakdowns_ = breakdowns;
  f64_ = std::move(f);
}

template <class VT>
std::unique_ptr<Preconditioner<VT>> BlockJacobiIlu0::make_apply_impl(Prec storage) {
  switch (storage) {
    case Prec::FP64:
      return std::make_unique<IluApplyHandle<double, VT>>(f64_, counter_);
    case Prec::FP32:
      if (!f32_) f32_ = std::make_shared<IluFactors<float>>(cast_factors<float>(*f64_));
      return std::make_unique<IluApplyHandle<float, VT>>(f32_, counter_);
    case Prec::FP16:
      if (!f16_) f16_ = std::make_shared<IluFactors<half>>(cast_factors<half>(*f64_));
      return std::make_unique<IluApplyHandle<half, VT>>(f16_, counter_);
  }
  throw std::logic_error("BlockJacobiIlu0: bad storage precision");
}

std::unique_ptr<Preconditioner<double>> BlockJacobiIlu0::make_apply_fp64(Prec storage) {
  return make_apply_impl<double>(storage);
}
std::unique_ptr<Preconditioner<float>> BlockJacobiIlu0::make_apply_fp32(Prec storage) {
  return make_apply_impl<float>(storage);
}
std::unique_ptr<Preconditioner<half>> BlockJacobiIlu0::make_apply_fp16(Prec storage) {
  return make_apply_impl<half>(storage);
}

}  // namespace nk
