// nk::kern::Kernels — the execution-space dispatch table.
//
// A Kernels value carries the nk::Backend a solver was built for and
// forwards every kernel call to that backend's implementation:
//
//   kern::Kernels kx(ws.backend());
//   kx.dot(r, r);            // host: blas::dot (OpenMP/SIMD paths)
//   kx.spmm(a, x, ldx, ...); // serial: nk::serial::spmm (plain loops)
//
// Engines, solvers, operators, and preconditioner handles hold a Kernels
// member instead of naming nk::blas:: / nk::spmv / nk::spmm directly —
// the seam ROADMAP item 1 asked for.  Dispatch is a compile-time choice
// between per-backend policy structs selected by one runtime branch on the
// stored enum: the kernel layer is templated over matrix × vector × scalar
// precisions and panel layouts, so a runtime function-pointer table would
// explode combinatorially and obscure the bit-identity contracts; a
// branch into fully-typed implementations keeps every instantiation
// checkable and costs one predictable test per kernel call (epsilon next
// to any kernel body).
//
// Adding a backend: implement the nk::serial surface (serial_kernels.hpp
// is the template) under src/backend/<name>/, add the enumerator in
// base/backend.hpp, and extend the branches here.  Kernels absent from a
// backend can fall back to staging through an existing one explicitly —
// never silently.
//
// The scan-only guards (blas::has_nonfinite / first_nonfinite_col) and the
// layout staging copies (panel_copy*) are backend-neutral by construction
// (exact element reads/copies, no reductions, no SIMD dispatch) and are
// exposed here unconditionally so callers stay implementation-free.
#pragma once

#include <cstddef>
#include <span>

#include "base/backend.hpp"
#include "base/blas1.hpp"
#include "base/blas_block.hpp"
#include "backend/serial_kernels.hpp"
#include "sparse/csr.hpp"
#include "sparse/sell.hpp"
#include "sparse/spmm.hpp"
#include "sparse/spmv.hpp"

namespace nk::kern {

class Kernels {
 public:
  constexpr Kernels() = default;
  constexpr explicit Kernels(Backend be) : be_(be) {}

  [[nodiscard]] constexpr Backend backend() const { return be_; }

  // ---- BLAS-1 ------------------------------------------------------------

  template <class Src, class Dst>
  void convert(std::span<const Src> x, std::span<Dst> y) const {
    if (be_ == Backend::kSerial) nk::serial::convert(x, y);
    else blas::convert(x, y);
  }

  template <class T>
  void copy(std::span<const T> x, std::span<T> y) const {
    if (be_ == Backend::kSerial) nk::serial::copy(x, y);
    else blas::copy(x, y);
  }

  template <class T>
  void set_zero(std::span<T> x) const {
    if (be_ == Backend::kSerial) nk::serial::set_zero(x);
    else blas::set_zero(x);
  }

  template <class T, class S>
  void scal(S alpha, std::span<T> x) const {
    if (be_ == Backend::kSerial) nk::serial::scal(alpha, x);
    else blas::scal(alpha, x);
  }

  template <class TX, class TY, class S>
  void axpy(S alpha, std::span<const TX> x, std::span<TY> y) const {
    if (be_ == Backend::kSerial) nk::serial::axpy(alpha, x, y);
    else blas::axpy(alpha, x, y);
  }

  template <class TX, class TY, class S>
  void axpby(S alpha, std::span<const TX> x, S beta, std::span<TY> y) const {
    if (be_ == Backend::kSerial) nk::serial::axpby(alpha, x, beta, y);
    else blas::axpby(alpha, x, beta, y);
  }

  template <class TX, class TY, class TZ>
  void sub(std::span<const TX> x, std::span<const TY> y, std::span<TZ> z) const {
    if (be_ == Backend::kSerial) nk::serial::sub(x, y, z);
    else blas::sub(x, y, z);
  }

  template <class TX, class TY>
  auto dot(std::span<const TX> x, std::span<const TY> y) const {
    return be_ == Backend::kSerial ? nk::serial::dot(x, y) : blas::dot(x, y);
  }

  template <class T>
  auto nrm2(std::span<const T> x) const {
    return be_ == Backend::kSerial ? nk::serial::nrm2(x) : blas::nrm2(x);
  }

  template <class T>
  double nrm_inf(std::span<const T> x) const {
    return be_ == Backend::kSerial ? nk::serial::nrm_inf(x) : blas::nrm_inf(x);
  }

  template <class T>
  std::size_t count_nonfinite(std::span<const T> x) const {
    return be_ == Backend::kSerial ? nk::serial::count_nonfinite(x)
                                   : blas::count_nonfinite(x);
  }

  // ---- blocked multi-vector kernels --------------------------------------

  template <class TV, class TW>
  void dot_many(const TV* v, std::ptrdiff_t ld, int k, std::span<const TW> w,
                acc_t<promote_t<TV, TW>>* out) const {
    if (be_ == Backend::kSerial) nk::serial::dot_many(v, ld, k, w, out);
    else blas::dot_many(v, ld, k, w, out);
  }

  template <class TV, class TW, class S>
  void axpy_many(const TV* v, std::ptrdiff_t ld, int k, const S* h, std::span<TW> w,
                 bool subtract = false) const {
    if (be_ == Backend::kSerial) nk::serial::axpy_many(v, ld, k, h, w, subtract);
    else blas::axpy_many(v, ld, k, h, w, subtract);
  }

  template <class TX, class TY, class S>
  void scal_copy(S alpha, std::span<const TX> x, std::span<TY> y) const {
    if (be_ == Backend::kSerial) nk::serial::scal_copy(alpha, x, y);
    else blas::scal_copy(alpha, x, y);
  }

  template <class TX, class TY>
  void dot_cols(const TX* x, std::ptrdiff_t ldx, const TY* y, std::ptrdiff_t ldy, int k,
                std::size_t n, acc_t<promote_t<TX, TY>>* out,
                const unsigned char* active = nullptr,
                PanelLayout lx = PanelLayout::kRowMajor,
                PanelLayout ly = PanelLayout::kRowMajor) const {
    if (be_ == Backend::kSerial)
      nk::serial::dot_cols(x, ldx, y, ldy, k, n, out, active, lx, ly);
    else
      blas::dot_cols(x, ldx, y, ldy, k, n, out, active, lx, ly);
  }

  template <class T>
  void nrm2_cols(const T* x, std::ptrdiff_t ldx, int k, std::size_t n, acc_t<T>* out,
                 const unsigned char* active = nullptr,
                 PanelLayout lx = PanelLayout::kRowMajor) const {
    if (be_ == Backend::kSerial) nk::serial::nrm2_cols(x, ldx, k, n, out, active, lx);
    else blas::nrm2_cols(x, ldx, k, n, out, active, lx);
  }

  template <class TX, class TY, class S>
  void axpy_cols(const S* alpha, const TX* x, std::ptrdiff_t ldx, TY* yp,
                 std::ptrdiff_t ldy, int k, std::size_t n,
                 const unsigned char* active = nullptr, const int* ymap = nullptr,
                 PanelLayout lx = PanelLayout::kRowMajor,
                 PanelLayout ly = PanelLayout::kRowMajor) const {
    if (be_ == Backend::kSerial)
      nk::serial::axpy_cols(alpha, x, ldx, yp, ldy, k, n, active, ymap, lx, ly);
    else
      blas::axpy_cols(alpha, x, ldx, yp, ldy, k, n, active, ymap, lx, ly);
  }

  template <class TX, class TY, class S>
  void axpby_cols(const S* alpha, const TX* x, std::ptrdiff_t ldx, const S* beta, TY* yp,
                  std::ptrdiff_t ldy, int k, std::size_t n,
                  const unsigned char* active = nullptr,
                  PanelLayout lx = PanelLayout::kRowMajor,
                  PanelLayout ly = PanelLayout::kRowMajor) const {
    if (be_ == Backend::kSerial)
      nk::serial::axpby_cols(alpha, x, ldx, beta, yp, ldy, k, n, active, lx, ly);
    else
      blas::axpby_cols(alpha, x, ldx, beta, yp, ldy, k, n, active, lx, ly);
  }

  // ---- non-finite guards (backend-neutral scans) -------------------------

  template <class T>
  [[nodiscard]] bool has_nonfinite(std::span<const T> x) const {
    return blas::has_nonfinite(x);
  }

  template <class T>
  [[nodiscard]] int first_nonfinite_col(const T* p, std::ptrdiff_t ld, int k,
                                        std::size_t n,
                                        PanelLayout lay = PanelLayout::kRowMajor) const {
    return blas::first_nonfinite_col(p, ld, k, n, lay);
  }

  // ---- sparse products ---------------------------------------------------

  template <class MT, class XT, class YT>
  void spmv(const CsrMatrix<MT>& a, std::span<const XT> x, std::span<YT> y) const {
    if (be_ == Backend::kSerial) nk::serial::spmv(a, x, y);
    else nk::spmv(a, x, y);
  }

  template <class MT, class XT, class YT>
  void spmv(const SellMatrix<MT>& a, std::span<const XT> x, std::span<YT> y) const {
    if (be_ == Backend::kSerial) nk::serial::spmv(a, x, y);
    else nk::spmv(a, x, y);
  }

  template <class MT, class XT, class BT, class YT>
  void residual(const CsrMatrix<MT>& a, std::span<const XT> x, std::span<const BT> b,
                std::span<YT> y) const {
    if (be_ == Backend::kSerial) nk::serial::residual(a, x, b, y);
    else nk::residual(a, x, b, y);
  }

  template <class MT, class XT, class BT, class YT>
  void residual(const SellMatrix<MT>& a, std::span<const XT> x, std::span<const BT> b,
                std::span<YT> y) const {
    if (be_ == Backend::kSerial) nk::serial::residual(a, x, b, y);
    else nk::residual(a, x, b, y);
  }

  template <class MT, class XT>
  double relative_residual(const CsrMatrix<MT>& a, std::span<const XT> x,
                           std::span<const double> b) const {
    return be_ == Backend::kSerial ? nk::serial::relative_residual(a, x, b)
                                   : nk::relative_residual(a, x, b);
  }

  template <class MT, class XT, class YT>
  void spmm(const CsrMatrix<MT>& a, const XT* x, std::ptrdiff_t ldx, YT* y,
            std::ptrdiff_t ldy, int k, PanelLayout lx = PanelLayout::kRowMajor,
            PanelLayout ly = PanelLayout::kRowMajor) const {
    if (be_ == Backend::kSerial) nk::serial::spmm(a, x, ldx, y, ldy, k, lx, ly);
    else nk::spmm(a, x, ldx, y, ldy, k, lx, ly);
  }

  template <class MT, class XT, class YT>
  void spmm(const SellMatrix<MT>& a, const XT* x, std::ptrdiff_t ldx, YT* y,
            std::ptrdiff_t ldy, int k) const {
    if (be_ == Backend::kSerial) nk::serial::spmm(a, x, ldx, y, ldy, k);
    else nk::spmm(a, x, ldx, y, ldy, k);
  }

  template <class MT, class XT, class BT, class YT>
  void residual_many(const CsrMatrix<MT>& a, const XT* x, std::ptrdiff_t ldx,
                     const BT* b, std::ptrdiff_t ldb, YT* y, std::ptrdiff_t ldy,
                     int k) const {
    if (be_ == Backend::kSerial) nk::serial::residual_many(a, x, ldx, b, ldb, y, ldy, k);
    else nk::residual_many(a, x, ldx, b, ldb, y, ldy, k);
  }

  template <class MT, class XT, class BT, class YT>
  void residual_many(const SellMatrix<MT>& a, const XT* x, std::ptrdiff_t ldx,
                     const BT* b, std::ptrdiff_t ldb, YT* y, std::ptrdiff_t ldy,
                     int k) const {
    if (be_ == Backend::kSerial) nk::serial::residual_many(a, x, ldx, b, ldb, y, ldy, k);
    else nk::residual_many(a, x, ldx, b, ldb, y, ldy, k);
  }

 private:
  Backend be_ = Backend::kHost;
};

}  // namespace nk::kern
