// nk::serial — the reference execution-space backend.
//
// Independently written, single-threaded counterparts of every kernel the
// host backend accelerates: no OpenMP regions, no F16C bulk conversion, no
// AVX-512 FP16 dispatch.  Each function mirrors its host twin's signature
// (backend/kernels.hpp branches between them on the stored nk::Backend)
// and does the textbook thing — one plain loop, one accumulator chain.
//
// Two jobs:
//  * the oracle: the conformance sweep runs the full solver × precond ×
//    format × precision catalog on `;backend=serial` against the committed
//    host baseline, so every clever host kernel is cross-checked by an
//    implementation that shares none of its code;
//  * the seam proof: a complete second backend demonstrates that an
//    omp-target/CUDA tree is a drop-in directory, not another refactor.
//
// Numerical contract vs the host backend:
//  * element-local kernels (convert/copy/scal/axpy/axpby/sub, the *_cols
//    updates, scal_copy, axpy_many) are BIT-IDENTICAL: the per-element
//    operation sequence matches, and half conversions round identically
//    (static_cast through _Float16 and F16C both round to nearest-even);
//  * reductions (dot/nrm2/dot_many/dot_cols, SpMV/SpMM row dots) use one
//    plain accumulator chain in the same accumulator type, where the host
//    uses four-way fp16 unrolling, OpenMP reassociation, or AVX-512 lane
//    sums — agreement is at the same tolerance tiers the fp16 rows of the
//    conformance baseline already carry (and exact on fp64/fp32 paths
//    whenever the host ran single-threaded without unrolling).
#pragma once

#include <cmath>
#include <cstddef>
#include <span>

#include "base/blas1.hpp"
#include "base/panel.hpp"
#include "sparse/csr.hpp"
#include "sparse/sell.hpp"

namespace nk::serial {

// ---------------------------------------------------------------------------
// BLAS-1
// ---------------------------------------------------------------------------

/// y[i] = x[i] converted to the destination type (scalar converts only).
template <class Src, class Dst>
void convert(std::span<const Src> x, std::span<Dst> y) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) y[i] = static_cast<Dst>(x[i]);
}

/// y = x.
template <class T>
void copy(std::span<const T> x, std::span<T> y) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) y[i] = x[i];
}

/// x = 0.
template <class T>
void set_zero(std::span<T> x) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) x[i] = static_cast<T>(0);
}

/// x *= alpha (computed in the promoted type, stored per element — the
/// same rounding as the host store).
template <class T, class S>
void scal(S alpha, std::span<T> x) {
  using W = promote_t<T, S>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  const W a = static_cast<W>(alpha);
  for (std::ptrdiff_t i = 0; i < n; ++i)
    x[i] = static_cast<T>(a * static_cast<W>(x[i]));
}

/// y += alpha * x.
template <class TX, class TY, class S>
void axpy(S alpha, std::span<const TX> x, std::span<TY> y) {
  using W = promote_t<promote_t<TX, TY>, S>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  const W a = static_cast<W>(alpha);
  for (std::ptrdiff_t i = 0; i < n; ++i)
    y[i] = static_cast<TY>(static_cast<W>(y[i]) + a * static_cast<W>(x[i]));
}

/// y = alpha * x + beta * y.
template <class TX, class TY, class S>
void axpby(S alpha, std::span<const TX> x, S beta, std::span<TY> y) {
  using W = promote_t<promote_t<TX, TY>, S>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  const W a = static_cast<W>(alpha), b = static_cast<W>(beta);
  for (std::ptrdiff_t i = 0; i < n; ++i)
    y[i] = static_cast<TY>(a * static_cast<W>(x[i]) + b * static_cast<W>(y[i]));
}

/// z = x - y.
template <class TX, class TY, class TZ>
void sub(std::span<const TX> x, std::span<const TY> y, std::span<TZ> z) {
  using W = promote_t<TX, TY>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  for (std::ptrdiff_t i = 0; i < n; ++i)
    z[i] = static_cast<TZ>(static_cast<W>(x[i]) - static_cast<W>(y[i]));
}

/// Dot product: one accumulator chain in the usual accumulator type.
template <class TX, class TY>
auto dot(std::span<const TX> x, std::span<const TY> y) {
  using W = acc_t<promote_t<TX, TY>>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  W s{0};
  for (std::ptrdiff_t i = 0; i < n; ++i)
    s += static_cast<W>(x[i]) * static_cast<W>(y[i]);
  return s;
}

/// Euclidean norm: one sum-of-squares chain, same double-rounded sqrt
/// store as the host kernel.
template <class T>
auto nrm2(std::span<const T> x) {
  using W = acc_t<T>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  W s{0};
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const W v = static_cast<W>(x[i]);
    s += v * v;
  }
  return static_cast<W>(std::sqrt(static_cast<double>(s)));
}

/// Infinity norm (double, diagnostics).
template <class T>
double nrm_inf(std::span<const T> x) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  double m = 0.0;
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const double v = std::fabs(static_cast<double>(x[i]));
    if (v > m) m = v;
  }
  return m;
}

/// Count of non-finite entries.
template <class T>
std::size_t count_nonfinite(std::span<const T> x) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  std::size_t c = 0;
  for (std::ptrdiff_t i = 0; i < n; ++i)
    if (!std::isfinite(static_cast<double>(x[i]))) ++c;
  return c;
}

// ---------------------------------------------------------------------------
// Blocked multi-vector kernels (the host blas_block.hpp surface)
// ---------------------------------------------------------------------------

/// out[j] = V_jᵀ·w — k independent plain dot chains.
template <class TV, class TW>
void dot_many(const TV* v, std::ptrdiff_t ld, int k, std::span<const TW> w,
              acc_t<promote_t<TV, TW>>* out) {
  using W = acc_t<promote_t<TV, TW>>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(w.size());
  for (int j = 0; j < k; ++j) {
    const TV* vj = v + static_cast<std::ptrdiff_t>(j) * ld;
    W s{0};
    for (std::ptrdiff_t i = 0; i < n; ++i)
      s += static_cast<W>(vj[i]) * static_cast<W>(w[i]);
    out[j] = s;
  }
}

/// w (±)= Σ_j h[j]·V_j as k chained axpys: the running value rounds to TW
/// after every term — the host kernel's documented semantic, exactly.
template <class TV, class TW, class S>
void axpy_many(const TV* v, std::ptrdiff_t ld, int k, const S* h, std::span<TW> w,
               bool subtract = false) {
  using W = promote_t<promote_t<TV, TW>, S>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(w.size());
  for (int j = 0; j < k; ++j) {
    const W a = subtract ? -static_cast<W>(h[j]) : static_cast<W>(h[j]);
    const TV* vj = v + static_cast<std::ptrdiff_t>(j) * ld;
    for (std::ptrdiff_t i = 0; i < n; ++i)
      w[i] = static_cast<TW>(static_cast<W>(w[i]) + a * static_cast<W>(vj[i]));
  }
}

/// y = α·x.
template <class TX, class TY, class S>
void scal_copy(S alpha, std::span<const TX> x, std::span<TY> y) {
  using W = promote_t<promote_t<TX, TY>, S>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  const W a = static_cast<W>(alpha);
  for (std::ptrdiff_t i = 0; i < n; ++i)
    y[i] = static_cast<TY>(a * static_cast<W>(x[i]));
}

/// out[c] = x_cᵀ·y_c per unmasked column — plain chains, layout-addressed.
template <class TX, class TY>
void dot_cols(const TX* x, std::ptrdiff_t ldx, const TY* y, std::ptrdiff_t ldy, int k,
              std::size_t n, acc_t<promote_t<TX, TY>>* out,
              const unsigned char* active = nullptr,
              PanelLayout lx = PanelLayout::kRowMajor,
              PanelLayout ly = PanelLayout::kRowMajor) {
  using W = acc_t<promote_t<TX, TY>>;
  const std::ptrdiff_t nn = static_cast<std::ptrdiff_t>(n);
  for (int c = 0; c < k; ++c) {
    if (active != nullptr && !active[c]) continue;
    W s{0};
    for (std::ptrdiff_t i = 0; i < nn; ++i)
      s += static_cast<W>(*panel_at(x, ldx, lx, c, i)) *
           static_cast<W>(*panel_at(y, ldy, ly, c, i));
    out[c] = s;
  }
}

/// out[c] = ‖x_c‖₂ per unmasked column (double-rounded sqrt store).
template <class T>
void nrm2_cols(const T* x, std::ptrdiff_t ldx, int k, std::size_t n, acc_t<T>* out,
               const unsigned char* active = nullptr,
               PanelLayout lx = PanelLayout::kRowMajor) {
  using W = acc_t<T>;
  const std::ptrdiff_t nn = static_cast<std::ptrdiff_t>(n);
  for (int c = 0; c < k; ++c) {
    if (active != nullptr && !active[c]) continue;
    W s{0};
    for (std::ptrdiff_t i = 0; i < nn; ++i) {
      const W v = static_cast<W>(*panel_at(x, ldx, lx, c, i));
      s += v * v;
    }
    out[c] = static_cast<W>(std::sqrt(static_cast<double>(s)));
  }
}

/// y_c += alpha[c]·x_c per unmasked column (`ymap` scatters into original
/// column positions, as in the host kernel).
template <class TX, class TY, class S>
void axpy_cols(const S* alpha, const TX* x, std::ptrdiff_t ldx, TY* yp,
               std::ptrdiff_t ldy, int k, std::size_t n,
               const unsigned char* active = nullptr, const int* ymap = nullptr,
               PanelLayout lx = PanelLayout::kRowMajor,
               PanelLayout ly = PanelLayout::kRowMajor) {
  using W = promote_t<promote_t<TX, TY>, S>;
  const std::ptrdiff_t nn = static_cast<std::ptrdiff_t>(n);
  for (int c = 0; c < k; ++c) {
    if (active != nullptr && !active[c]) continue;
    const W a = static_cast<W>(alpha[c]);
    const std::ptrdiff_t yc = ymap != nullptr ? ymap[c] : c;
    for (std::ptrdiff_t i = 0; i < nn; ++i) {
      TY* y = panel_at(yp, ldy, ly, yc, i);
      *y = static_cast<TY>(static_cast<W>(*y) +
                           a * static_cast<W>(*panel_at(x, ldx, lx, c, i)));
    }
  }
}

/// y_c = alpha[c]·x_c + beta[c]·y_c per unmasked column.
template <class TX, class TY, class S>
void axpby_cols(const S* alpha, const TX* x, std::ptrdiff_t ldx, const S* beta, TY* yp,
                std::ptrdiff_t ldy, int k, std::size_t n,
                const unsigned char* active = nullptr,
                PanelLayout lx = PanelLayout::kRowMajor,
                PanelLayout ly = PanelLayout::kRowMajor) {
  using W = promote_t<promote_t<TX, TY>, S>;
  const std::ptrdiff_t nn = static_cast<std::ptrdiff_t>(n);
  for (int c = 0; c < k; ++c) {
    if (active != nullptr && !active[c]) continue;
    const W a = static_cast<W>(alpha[c]), b = static_cast<W>(beta[c]);
    for (std::ptrdiff_t i = 0; i < nn; ++i) {
      TY* y = panel_at(yp, ldy, ly, c, i);
      *y = static_cast<TY>(a * static_cast<W>(*panel_at(x, ldx, lx, c, i)) +
                           b * static_cast<W>(*y));
    }
  }
}

// ---------------------------------------------------------------------------
// Sparse products
// ---------------------------------------------------------------------------

/// y = A x over CSR: one accumulator per row.
template <class MT, class XT, class YT, class Acc = promote_t<MT, XT>>
void spmv(const CsrMatrix<MT>& a, std::span<const XT> x, std::span<YT> y) {
  const std::ptrdiff_t n = a.nrows;
  const index_t* rp = a.row_ptr.data();
  const index_t* ci = a.col_idx.data();
  const MT* v = a.vals.data();
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    Acc s{0};
    for (index_t t = rp[i]; t < rp[i + 1]; ++t)
      s += static_cast<Acc>(v[t]) * static_cast<Acc>(x[ci[t]]);
    y[i] = static_cast<YT>(s);
  }
}

/// y = b - A x over CSR.
template <class MT, class XT, class BT, class YT,
          class Acc = promote_t<promote_t<MT, XT>, BT>>
void residual(const CsrMatrix<MT>& a, std::span<const XT> x, std::span<const BT> b,
              std::span<YT> y) {
  const std::ptrdiff_t n = a.nrows;
  const index_t* rp = a.row_ptr.data();
  const index_t* ci = a.col_idx.data();
  const MT* v = a.vals.data();
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    Acc s{0};
    for (index_t t = rp[i]; t < rp[i + 1]; ++t)
      s += static_cast<Acc>(v[t]) * static_cast<Acc>(x[ci[t]]);
    y[i] = static_cast<YT>(static_cast<Acc>(b[i]) - s);
  }
}

/// ‖b - A x‖₂ / ‖b‖₂ in fp64 (the outer convergence criterion).
template <class MT, class XT>
double relative_residual(const CsrMatrix<MT>& a, std::span<const XT> x,
                         std::span<const double> b) {
  const std::ptrdiff_t n = a.nrows;
  const index_t* rp = a.row_ptr.data();
  const index_t* ci = a.col_idx.data();
  const MT* v = a.vals.data();
  double rr = 0.0, bb = 0.0;
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    double s = b[i];
    for (index_t t = rp[i]; t < rp[i + 1]; ++t)
      s -= static_cast<double>(v[t]) * static_cast<double>(x[ci[t]]);
    rr += s * s;
    bb += b[i] * b[i];
  }
  return bb == 0.0 ? std::sqrt(rr) : std::sqrt(rr / bb);
}

namespace detail {

/// Dot of one SELL lane (stride-C walk), one accumulator.
template <class MT, class XT, class Acc>
inline Acc lane_dot(const MT* vals, const index_t* cols, const XT* x, index_t base,
                    index_t lane, index_t w, int C) {
  Acc s{0};
  for (index_t j = 0; j < w; ++j) {
    const index_t t = base + j * C + lane;
    s += static_cast<Acc>(vals[t]) * static_cast<Acc>(x[cols[t]]);
  }
  return s;
}

}  // namespace detail

/// y = A x over SELL-C: plain lane walks (padding contributes exact zeros).
template <class MT, class XT, class YT, class Acc = promote_t<MT, XT>>
void spmv(const SellMatrix<MT>& a, std::span<const XT> x, std::span<YT> y) {
  const index_t ns = a.nslices();
  const int C = a.chunk;
  for (index_t sl = 0; sl < ns; ++sl) {
    const index_t r0 = sl * C;
    const index_t r1 = std::min<index_t>(r0 + C, a.nrows);
    for (index_t i = r0; i < r1; ++i)
      y[i] = static_cast<YT>(detail::lane_dot<MT, XT, Acc>(
          a.vals.data(), a.cols.data(), x.data(), a.slice_ptr[sl], i - r0,
          a.slice_width[sl], C));
  }
}

/// y = b - A x over SELL-C.
template <class MT, class XT, class BT, class YT,
          class Acc = promote_t<promote_t<MT, XT>, BT>>
void residual(const SellMatrix<MT>& a, std::span<const XT> x, std::span<const BT> b,
              std::span<YT> y) {
  const index_t ns = a.nslices();
  const int C = a.chunk;
  for (index_t sl = 0; sl < ns; ++sl) {
    const index_t r0 = sl * C;
    const index_t r1 = std::min<index_t>(r0 + C, a.nrows);
    for (index_t i = r0; i < r1; ++i) {
      const Acc s = detail::lane_dot<MT, XT, Acc>(a.vals.data(), a.cols.data(), x.data(),
                                                  a.slice_ptr[sl], i - r0,
                                                  a.slice_width[sl], C);
      y[i] = static_cast<YT>(static_cast<Acc>(b[i]) - s);
    }
  }
}

/// Y_c = A X_c over CSR, per column, layout-addressed panels.
template <class MT, class XT, class YT, class Acc = promote_t<MT, XT>>
void spmm(const CsrMatrix<MT>& a, const XT* x, std::ptrdiff_t ldx, YT* y,
          std::ptrdiff_t ldy, int k, PanelLayout lx = PanelLayout::kRowMajor,
          PanelLayout ly = PanelLayout::kRowMajor) {
  const std::ptrdiff_t n = a.nrows;
  const index_t* rp = a.row_ptr.data();
  const index_t* ci = a.col_idx.data();
  const MT* v = a.vals.data();
  for (int c = 0; c < k; ++c) {
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      Acc s{0};
      for (index_t t = rp[i]; t < rp[i + 1]; ++t)
        s += static_cast<Acc>(v[t]) * static_cast<Acc>(*panel_at(x, ldx, lx, c, ci[t]));
      *panel_at(y, ldy, ly, c, i) = static_cast<YT>(s);
    }
  }
}

/// Y_c = B_c − A X_c over CSR (row-major panels, as the host signature).
template <class MT, class XT, class BT, class YT,
          class Acc = promote_t<promote_t<MT, XT>, BT>>
void residual_many(const CsrMatrix<MT>& a, const XT* x, std::ptrdiff_t ldx, const BT* b,
                   std::ptrdiff_t ldb, YT* y, std::ptrdiff_t ldy, int k) {
  const std::ptrdiff_t n = a.nrows;
  for (int c = 0; c < k; ++c) {
    const XT* xc = x + static_cast<std::ptrdiff_t>(c) * ldx;
    const BT* bc = b + static_cast<std::ptrdiff_t>(c) * ldb;
    YT* yc = y + static_cast<std::ptrdiff_t>(c) * ldy;
    serial::residual<MT, XT, BT, YT, Acc>(
        a, std::span<const XT>(xc, static_cast<std::size_t>(n)),
        std::span<const BT>(bc, static_cast<std::size_t>(n)),
        std::span<YT>(yc, static_cast<std::size_t>(n)));
  }
}

/// Y_c = A X_c over SELL-C, per column.
template <class MT, class XT, class YT, class Acc = promote_t<MT, XT>>
void spmm(const SellMatrix<MT>& a, const XT* x, std::ptrdiff_t ldx, YT* y,
          std::ptrdiff_t ldy, int k) {
  for (int c = 0; c < k; ++c) {
    const XT* xc = x + static_cast<std::ptrdiff_t>(c) * ldx;
    YT* yc = y + static_cast<std::ptrdiff_t>(c) * ldy;
    serial::spmv<MT, XT, YT, Acc>(a, std::span<const XT>(xc, static_cast<std::size_t>(a.nrows)),
                          std::span<YT>(yc, static_cast<std::size_t>(a.nrows)));
  }
}

/// Y_c = B_c − A X_c over SELL-C, per column.
template <class MT, class XT, class BT, class YT,
          class Acc = promote_t<promote_t<MT, XT>, BT>>
void residual_many(const SellMatrix<MT>& a, const XT* x, std::ptrdiff_t ldx, const BT* b,
                   std::ptrdiff_t ldb, YT* y, std::ptrdiff_t ldy, int k) {
  for (int c = 0; c < k; ++c) {
    const XT* xc = x + static_cast<std::ptrdiff_t>(c) * ldx;
    const BT* bc = b + static_cast<std::ptrdiff_t>(c) * ldb;
    YT* yc = y + static_cast<std::ptrdiff_t>(c) * ldy;
    serial::residual<MT, XT, BT, YT, Acc>(
        a, std::span<const XT>(xc, static_cast<std::size_t>(a.nrows)),
        std::span<const BT>(bc, static_cast<std::size_t>(a.nrows)),
        std::span<YT>(yc, static_cast<std::size_t>(a.nrows)));
  }
}

}  // namespace nk::serial
