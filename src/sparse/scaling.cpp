#include "sparse/scaling.hpp"

#include <cmath>

namespace nk {

ScalingResult diagonal_scale_symmetric(CsrMatrix<double>& a) {
  ScalingResult res;
  res.scale.assign(a.nrows, 1.0);
  const std::vector<double> d = a.diagonal();
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(a.nrows); ++i) {
    const double di = std::abs(d[i]);
    if (di > 0.0) res.scale[i] = 1.0 / std::sqrt(di);
  }
  for (index_t i = 0; i < a.nrows; ++i)
    if (d[i] == 0.0) res.had_zero_diagonal = true;

#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(a.nrows); ++i)
    for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k)
      a.vals[k] *= res.scale[i] * res.scale[a.col_idx[k]];
  return res;
}

std::vector<double> diagonal_scale_rows(CsrMatrix<double>& a) {
  std::vector<double> d = a.diagonal();
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(a.nrows); ++i) {
    const double di = d[i];
    if (di != 0.0)
      for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) a.vals[k] /= di;
  }
  return d;
}

void apply_scale(const std::vector<double>& s, std::vector<double>& x) {
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(x.size()); ++i) x[i] *= s[i];
}

}  // namespace nk
