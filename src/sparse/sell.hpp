// Sliced ELLPACK (SELL-C) sparse format (Monakov et al., 2010).
//
// The paper's GPU experiments store matrices in sliced ELLPACK with a chunk
// (slice) size of 32.  Rows are grouped into slices of C consecutive rows;
// each slice is padded to its longest row and stored column-major within
// the slice so that consecutive lanes read consecutive memory — the GPU
// coalescing layout.  We reproduce the format faithfully (including padding
// behaviour) on the CPU substrate; see DESIGN.md §4 for the GPU
// substitution rationale.
#pragma once

#include <span>
#include <vector>

#include "base/blas1.hpp"
#include "sparse/csr.hpp"

namespace nk {

template <class T>
struct SellMatrix {
  using value_type = T;

  index_t nrows = 0;
  index_t ncols = 0;
  int chunk = 32;                     ///< slice height C (paper: 32)
  std::vector<index_t> slice_ptr;     ///< per-slice offset into cols/vals (size nslices+1)
  std::vector<index_t> slice_width;   ///< padded width of each slice
  std::vector<index_t> cols;          ///< padded, column-major within slice
  std::vector<T> vals;                ///< padded, column-major within slice

  [[nodiscard]] index_t nslices() const {
    return static_cast<index_t>((nrows + chunk - 1) / chunk);
  }

  /// Stored entries including padding.
  [[nodiscard]] std::size_t padded_nnz() const { return vals.size(); }
};

/// Convert CSR → SELL-C.  Padding entries carry column 0 and value 0 so the
/// kernel needs no branch; `pad_ratio` (padded/real nnz) measures overhead.
template <class T>
SellMatrix<T> csr_to_sell(const CsrMatrix<T>& a, int chunk = 32) {
  SellMatrix<T> s;
  s.nrows = a.nrows;
  s.ncols = a.ncols;
  s.chunk = chunk;
  const index_t ns = s.nslices();
  s.slice_ptr.assign(ns + 1, 0);
  s.slice_width.assign(ns, 0);
  for (index_t sl = 0; sl < ns; ++sl) {
    index_t w = 0;
    const index_t r0 = sl * chunk;
    const index_t r1 = std::min<index_t>(r0 + chunk, a.nrows);
    for (index_t i = r0; i < r1; ++i)
      w = std::max(w, a.row_ptr[i + 1] - a.row_ptr[i]);
    s.slice_width[sl] = w;
    s.slice_ptr[sl + 1] = s.slice_ptr[sl] + w * chunk;
  }
  s.cols.assign(s.slice_ptr[ns], 0);
  s.vals.assign(s.slice_ptr[ns], static_cast<T>(0));
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t sl = 0; sl < static_cast<std::ptrdiff_t>(ns); ++sl) {
    const index_t r0 = static_cast<index_t>(sl) * chunk;
    const index_t r1 = std::min<index_t>(r0 + chunk, a.nrows);
    const index_t base = s.slice_ptr[sl];
    for (index_t i = r0; i < r1; ++i) {
      const index_t lane = i - r0;
      index_t j = 0;
      for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k, ++j) {
        s.cols[base + j * chunk + lane] = a.col_idx[k];
        s.vals[base + j * chunk + lane] = a.vals[k];
      }
      // remaining lanes already zero-padded; point padding at the row's own
      // first column when available to keep accesses in-range and local
      for (; j < s.slice_width[sl]; ++j)
        s.cols[base + j * chunk + lane] =
            (a.row_ptr[i + 1] > a.row_ptr[i]) ? a.col_idx[a.row_ptr[i]] : 0;
    }
  }
  return s;
}

/// Padding overhead: padded_nnz / nnz (>= 1).
template <class T>
double sell_pad_ratio(const SellMatrix<T>& s, index_t real_nnz) {
  return real_nnz == 0 ? 1.0
                       : static_cast<double>(s.padded_nnz()) / static_cast<double>(real_nnz);
}

/// Largest slice height the SIMD kernel handles with stack accumulators.
/// The paper's setting is C = 32; anything up to 64 stays on the fast path.
inline constexpr int kSellSimdMaxChunk = 64;

namespace sell_detail {

/// Dot of one SELL lane (stride-C elements), accumulating in Acc.  Four
/// independent partial sums break the scalar-convert dependency chain on
/// mixed half→float reads (see spmv.hpp's row_dot note).
template <class MT, class XT, class Acc>
inline Acc lane_dot(const MT* __restrict vals, const index_t* __restrict cols,
                    const XT* __restrict x, index_t base, index_t lane, index_t w, int C) {
  if constexpr (sizeof(MT) == 2 && !std::is_same_v<Acc, MT>) {
    Acc s0{0}, s1{0}, s2{0}, s3{0};
    index_t j = 0;
    for (; j + 4 <= w; j += 4) {
      const index_t k = base + j * C + lane;
      s0 += static_cast<Acc>(vals[k]) * static_cast<Acc>(x[cols[k]]);
      s1 += static_cast<Acc>(vals[k + C]) * static_cast<Acc>(x[cols[k + C]]);
      s2 += static_cast<Acc>(vals[k + 2 * C]) * static_cast<Acc>(x[cols[k + 2 * C]]);
      s3 += static_cast<Acc>(vals[k + 3 * C]) * static_cast<Acc>(x[cols[k + 3 * C]]);
    }
    for (; j < w; ++j) {
      const index_t k = base + j * C + lane;
      s0 += static_cast<Acc>(vals[k]) * static_cast<Acc>(x[cols[k]]);
    }
    return (s0 + s1) + (s2 + s3);
  } else {
    Acc s{0};
    for (index_t j = 0; j < w; ++j) {
      const index_t k = base + j * C + lane;
      s += static_cast<Acc>(vals[k]) * static_cast<Acc>(x[cols[k]]);
    }
    return s;
  }
}

/// Column-major SIMD slice sweep: for each stored column j of the slice,
/// one `omp simd` pass across the C lanes.  This is the access pattern
/// SELL-C exists for (Monakov et al. 2010): `vals`/`cols` reads are
/// contiguous across lanes (unit stride), the per-lane accumulators are
/// independent (no reduction dependency), and on fp16 storage the C
/// adjacent half values convert with vectorized vcvtph2ps instead of the
/// serial scalar converts a lane-at-a-time walk degenerates to.
/// Padding lanes accumulate exact zeros and are discarded by the stores.
template <class MT, class XT, class Acc, class Store>
inline void slice_sweep_simd(const MT* __restrict vals, const index_t* __restrict cols,
                             const XT* __restrict x, index_t base, index_t w, int C,
                             index_t r0, index_t r1, Store&& store) {
  Acc acc[kSellSimdMaxChunk] = {};
  XT xb[kSellSimdMaxChunk];
  for (index_t j = 0; j < w; ++j) {
    const MT* __restrict vj = vals + base + static_cast<std::ptrdiff_t>(j) * C;
    const index_t* __restrict cj = cols + base + static_cast<std::ptrdiff_t>(j) * C;
    // Gather first, arithmetic second: the gather loop is the only
    // irregular access, and splitting it out leaves the FMA loop fully
    // contiguous so it vectorizes for every precision combo.
#pragma omp simd
    for (int lane = 0; lane < C; ++lane) xb[lane] = x[cj[lane]];
    if constexpr (sizeof(MT) == 2 && !std::is_same_v<Acc, MT>) {
      // Convert the C adjacent half values in one vectorized pass; a scalar
      // convert inside the FMA loop would serialize on its destination-
      // register merge (see spmv.hpp's row_dot note), and GCC cannot
      // auto-vectorize _Float16→float, hence the explicit F16C helper.
      Acc vf[kSellSimdMaxChunk];
      if constexpr (std::is_same_v<Acc, float>) {
        half_to_float_n(vj, vf, C);
      } else {
        for (int lane = 0; lane < C; ++lane) vf[lane] = static_cast<Acc>(vj[lane]);
      }
#pragma omp simd
      for (int lane = 0; lane < C; ++lane) acc[lane] += vf[lane] * static_cast<Acc>(xb[lane]);
    } else {
#pragma omp simd
      for (int lane = 0; lane < C; ++lane)
        acc[lane] += static_cast<Acc>(vj[lane]) * static_cast<Acc>(xb[lane]);
    }
  }
  for (index_t i = r0; i < r1; ++i) store(i, acc[i - r0]);
}

}  // namespace sell_detail

/// y = A x over SELL-C, row-wise (the pre-SIMD reference kernel: each lane
/// walks its row with stride-C reads).  Kept for the perf-tracking bench;
/// use spmv() for real work.
template <class MT, class XT, class YT, class Acc = promote_t<MT, XT>>
void spmv_rowwise(const SellMatrix<MT>& a, std::span<const XT> x, std::span<YT> y) {
  const index_t ns = a.nslices();
  const int C = a.chunk;
#pragma omp parallel for schedule(static) if (static_cast<std::ptrdiff_t>(a.padded_nnz()) > blas::parallel_threshold())
  for (std::ptrdiff_t sl = 0; sl < static_cast<std::ptrdiff_t>(ns); ++sl) {
    const index_t r0 = static_cast<index_t>(sl) * C;
    const index_t r1 = std::min<index_t>(r0 + C, a.nrows);
    const index_t base = a.slice_ptr[sl];
    const index_t w = a.slice_width[sl];
    for (index_t i = r0; i < r1; ++i) {
      y[i] = static_cast<YT>(sell_detail::lane_dot<MT, XT, Acc>(
          a.vals.data(), a.cols.data(), x.data(), base, i - r0, w, C));
    }
  }
}

/// y = A x over SELL-C: column-major within each slice, SIMD across lanes.
template <class MT, class XT, class YT, class Acc = promote_t<MT, XT>>
void spmv(const SellMatrix<MT>& a, std::span<const XT> x, std::span<YT> y) {
  const index_t ns = a.nslices();
  const int C = a.chunk;
  if (C > kSellSimdMaxChunk) {  // oversize chunks fall back to the lane walk
    spmv_rowwise<MT, XT, YT, Acc>(a, x, y);
    return;
  }
#pragma omp parallel for schedule(static) if (static_cast<std::ptrdiff_t>(a.padded_nnz()) > blas::parallel_threshold())
  for (std::ptrdiff_t sl = 0; sl < static_cast<std::ptrdiff_t>(ns); ++sl) {
    const index_t r0 = static_cast<index_t>(sl) * C;
    const index_t r1 = std::min<index_t>(r0 + C, a.nrows);
    sell_detail::slice_sweep_simd<MT, XT, Acc>(
        a.vals.data(), a.cols.data(), x.data(), a.slice_ptr[sl], a.slice_width[sl], C, r0, r1,
        [&](index_t i, Acc s) { y[i] = static_cast<YT>(s); });
  }
}

/// y = b - A x over SELL-C (fused residual, same SIMD slice sweep).
template <class MT, class XT, class BT, class YT,
          class Acc = promote_t<promote_t<MT, XT>, BT>>
void residual(const SellMatrix<MT>& a, std::span<const XT> x, std::span<const BT> b,
              std::span<YT> y) {
  const index_t ns = a.nslices();
  const int C = a.chunk;
#pragma omp parallel for schedule(static) if (static_cast<std::ptrdiff_t>(a.padded_nnz()) > blas::parallel_threshold())
  for (std::ptrdiff_t sl = 0; sl < static_cast<std::ptrdiff_t>(ns); ++sl) {
    const index_t r0 = static_cast<index_t>(sl) * C;
    const index_t r1 = std::min<index_t>(r0 + C, a.nrows);
    const index_t base = a.slice_ptr[sl];
    const index_t w = a.slice_width[sl];
    if (C <= kSellSimdMaxChunk) {
      sell_detail::slice_sweep_simd<MT, XT, Acc>(
          a.vals.data(), a.cols.data(), x.data(), base, w, C, r0, r1,
          [&](index_t i, Acc s) { y[i] = static_cast<YT>(static_cast<Acc>(b[i]) - s); });
    } else {
      for (index_t i = r0; i < r1; ++i) {
        const Acc s = sell_detail::lane_dot<MT, XT, Acc>(a.vals.data(), a.cols.data(),
                                                         x.data(), base, i - r0, w, C);
        y[i] = static_cast<YT>(static_cast<Acc>(b[i]) - s);
      }
    }
  }
}

}  // namespace nk
