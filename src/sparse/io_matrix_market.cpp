#include "sparse/io_matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "sparse/coo_builder.hpp"

namespace nk {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// Drop a trailing '\r' so CRLF (Windows-written) files parse identically
/// to LF files — SuiteSparse archives contain both flavors.
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

bool blank(const std::string& line) {
  return line.find_first_not_of(" \t") == std::string::npos;
}

}  // namespace

CsrMatrix<double> read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("mtx: empty stream");
  strip_cr(line);
  std::istringstream head(line);
  std::string banner, object, format, field, symmetry;
  head >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") throw std::runtime_error("mtx: missing %%MatrixMarket banner");
  object = lower(object);
  format = lower(format);
  field = lower(field);
  symmetry = lower(symmetry);
  if (object != "matrix" || format != "coordinate")
    throw std::runtime_error("mtx: only coordinate matrices are supported");
  if (field != "real" && field != "integer" && field != "pattern")
    throw std::runtime_error("mtx: unsupported field '" + field + "'");
  const bool symmetric = symmetry == "symmetric";
  const bool skew = symmetry == "skew-symmetric";
  if (!symmetric && !skew && symmetry != "general")
    throw std::runtime_error("mtx: unsupported symmetry '" + symmetry + "'");

  // Skip comments (and blank lines) up to the size line.
  bool have_dims = false;
  while (std::getline(in, line)) {
    strip_cr(line);
    if (!line.empty() && line[0] != '%' && !blank(line)) {
      have_dims = true;
      break;
    }
  }
  if (!have_dims) throw std::runtime_error("mtx: missing size line");
  std::istringstream dims(line);
  long long rows = 0, cols = 0, entries = 0;
  dims >> rows >> cols >> entries;
  if (!dims || rows <= 0 || cols <= 0 || entries < 0)
    throw std::runtime_error("mtx: bad size line");
  if (rows > std::numeric_limits<index_t>::max() || cols > std::numeric_limits<index_t>::max())
    throw std::runtime_error("mtx: matrix dimensions exceed 32-bit index range");

  CooBuilder builder(static_cast<index_t>(rows), static_cast<index_t>(cols));
  long long seen = 0;
  while (seen < entries && std::getline(in, line)) {
    strip_cr(line);
    if (line.empty() || line[0] == '%' || blank(line)) continue;
    std::istringstream ls(line);
    long long i = 0, j = 0;
    double v = 1.0;
    ls >> i >> j;
    if (!ls) throw std::runtime_error("mtx: bad entry line: " + line);
    if (field != "pattern") {
      ls >> v;
      if (!ls) throw std::runtime_error("mtx: bad entry line: " + line);
    }
    // Range-check the 1-based indices BEFORE the narrowing cast: a huge
    // index would otherwise wrap into range and silently corrupt the
    // matrix instead of failing.
    if (i < 1 || i > rows || j < 1 || j > cols)
      throw std::runtime_error("mtx: entry index out of range: " + line);
    const index_t ii = static_cast<index_t>(i - 1), jj = static_cast<index_t>(j - 1);
    builder.add(ii, jj, v);
    if ((symmetric || skew) && ii != jj) builder.add(jj, ii, skew ? -v : v);
    ++seen;
  }
  if (seen != entries) throw std::runtime_error("mtx: truncated entry list");
  return builder.to_csr();
}

CsrMatrix<double> read_matrix_market_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("mtx: cannot open " + path);
  return read_matrix_market(f);
}

void write_matrix_market(std::ostream& out, const CsrMatrix<double>& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by nkrylov\n";
  out << a.nrows << " " << a.ncols << " " << a.nnz() << "\n";
  out.precision(17);
  for (index_t i = 0; i < a.nrows; ++i)
    for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k)
      out << (i + 1) << " " << (a.col_idx[k] + 1) << " " << a.vals[k] << "\n";
}

void write_matrix_market_file(const std::string& path, const CsrMatrix<double>& a) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("mtx: cannot write " + path);
  write_matrix_market(f, a);
}

}  // namespace nk
