#include "sparse/io_matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sparse/coo_builder.hpp"

namespace nk {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

CsrMatrix<double> read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("mtx: empty stream");
  std::istringstream head(line);
  std::string banner, object, format, field, symmetry;
  head >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") throw std::runtime_error("mtx: missing %%MatrixMarket banner");
  object = lower(object);
  format = lower(format);
  field = lower(field);
  symmetry = lower(symmetry);
  if (object != "matrix" || format != "coordinate")
    throw std::runtime_error("mtx: only coordinate matrices are supported");
  if (field != "real" && field != "integer" && field != "pattern")
    throw std::runtime_error("mtx: unsupported field '" + field + "'");
  const bool symmetric = symmetry == "symmetric";
  const bool skew = symmetry == "skew-symmetric";
  if (!symmetric && !skew && symmetry != "general")
    throw std::runtime_error("mtx: unsupported symmetry '" + symmetry + "'");

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  long long rows = 0, cols = 0, entries = 0;
  dims >> rows >> cols >> entries;
  if (rows <= 0 || cols <= 0 || entries < 0) throw std::runtime_error("mtx: bad size line");

  CooBuilder builder(static_cast<index_t>(rows), static_cast<index_t>(cols));
  long long seen = 0;
  while (seen < entries && std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ls(line);
    long long i = 0, j = 0;
    double v = 1.0;
    ls >> i >> j;
    if (field != "pattern") ls >> v;
    if (!ls && field != "pattern") throw std::runtime_error("mtx: bad entry line: " + line);
    const index_t ii = static_cast<index_t>(i - 1), jj = static_cast<index_t>(j - 1);
    builder.add(ii, jj, v);
    if ((symmetric || skew) && ii != jj) builder.add(jj, ii, skew ? -v : v);
    ++seen;
  }
  if (seen != entries) throw std::runtime_error("mtx: truncated entry list");
  return builder.to_csr();
}

CsrMatrix<double> read_matrix_market_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("mtx: cannot open " + path);
  return read_matrix_market(f);
}

void write_matrix_market(std::ostream& out, const CsrMatrix<double>& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by nkrylov\n";
  out << a.nrows << " " << a.ncols << " " << a.nnz() << "\n";
  out.precision(17);
  for (index_t i = 0; i < a.nrows; ++i)
    for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k)
      out << (i + 1) << " " << (a.col_idx[k] + 1) << " " << a.vals[k] << "\n";
}

void write_matrix_market_file(const std::string& path, const CsrMatrix<double>& a) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("mtx: cannot write " + path);
  write_matrix_market(f, a);
}

}  // namespace nk
