// Sparse matrix × multiple-vector products (SpMM) over CSR and SELL-C —
// the kernel behind batched multi-RHS solving.
//
// A batch of k right-hand sides advances in lockstep through a solver, so
// every operator application becomes Y_c = A·X_c for c in [0, k).  Running
// k separate SpMVs streams the matrix from memory k times; these kernels
// stream it ONCE: the row (CSR) or slice (SELL) being processed stays hot
// in L1/L2 while the k column dots read it, so the dominant traffic — the
// matrix values and indices — is shared across the whole batch.  For a
// memory-bound solve this is the single biggest lever batching has.
//
// Numerical contract: column c of spmm()/residual_many() performs exactly
// the accumulation sequence spmv()/residual() performs on that column
// (detail::row_dot's per-row order for CSR — including its four-way fp16
// partial-sum grouping — and the SIMD slice sweep for SELL), so batched
// and sequential solves produce bit-identical iterates per right-hand
// side on the fp64/fp32 CSR paths and on every SELL path.  The one
// exception is fp16 STORAGE over CSR: both sides compute the same fp32
// operation sequence, but the compiler's FMA-contraction freedom
// (-ffp-contract) may fuse it differently in the two loop structures, so
// agreement there is at fp32 rounding level, not bitwise — which is why
// the fp16 inner levels are tolerance-checked rather than exact in the
// batched-solve tests.  What changes is the SCHEDULE: the CSR kernel
// walks the row's nonzeros once and updates all k per-column accumulators
// per nonzero.
// That reads A once per batch instead of k times AND — the bigger effect
// on a single core — replaces k serial FMA dependency chains with k
// independent accumulators advancing in lockstep, so the row dot becomes
// throughput-bound instead of latency-bound.
//
// Layout: by default column c of X starts at x + c·ldx (each column
// contiguous, length n); same for Y/B.  The CSR kernels also accept
// PanelLayout::kColMajor for X and/or Y (element (i, c) at p[i·ld + c],
// see panel.hpp): the per-nonzero gather x[ci[t]] then reads the k live
// columns unit-stride, which is how compacted interleaved survivor panels
// stream.  Layout changes addressing only — each column's accumulation
// sequence is preserved, so layouts agree bit-for-bit wherever the
// row-major kernel is exact.  The SELL kernels are row-major only (their
// slice sweep is already column-at-a-time SIMD; interleaved callers stage
// through the operator-level transpose fallback).  k = 0 is a no-op,
// k = 1 degenerates to spmv.
#pragma once

#include <span>

#include "base/blas1.hpp"
#include "base/panel.hpp"
#include "sparse/csr.hpp"
#include "sparse/sell.hpp"
#include "sparse/spmv.hpp"

namespace nk {

/// Largest batch the CSR kernels hold in per-row stack accumulators; wider
/// batches are processed in column groups of this size (still exact).
inline constexpr int kSpmmMaxCols = 16;

namespace spmm_detail {

/// One CSR row × up to kSpmmMaxCols columns: per column the accumulation
/// sequence of row_dot on that column (plain `s += v·x` on the general
/// path, the four-way partial-sum grouping on the fp16-storage path),
/// interleaved across columns for ILP.  KC > 0 pins the column count at
/// compile time (k == KC) so the per-nonzero column loops fully unroll —
/// the difference between a modest and a large win on short stencil rows.
/// `out(c, s)` stores column c's row value.  LX selects X's panel layout:
/// under kColMajor the per-nonzero gather lands at x + ci[t]·ldx and the k
/// columns read unit-stride from there (addressing only — the accumulation
/// order per column is LX-independent).
template <class MT, class XT, class Acc, int KC,
          PanelLayout LX = PanelLayout::kRowMajor, class Out>
inline void row_dots(const MT* __restrict v, const index_t* __restrict ci,
                     const XT* __restrict x, std::ptrdiff_t ldx, int k_dyn, index_t b,
                     index_t e, Out&& out) {
  const int k = KC > 0 ? KC : k_dyn;
  constexpr bool ilv = LX == PanelLayout::kColMajor;
  const std::ptrdiff_t xs = ilv ? 1 : ldx;  // column stride at a gathered row
  if constexpr (sizeof(MT) == 2 && !std::is_same_v<Acc, MT>) {
    // fp16 matrix path: reproduce row_dot's four-way partial sums — lane
    // (t − b) mod 4 over the 4-aligned prefix, remainder into lane 0 —
    // with the converted value shared across all k columns.
    Acc acc[4][kSpmmMaxCols] = {};
    Acc vf[16];
    index_t t = b;
    for (; t + 16 <= e; t += 16) {
      if constexpr (std::is_same_v<Acc, float>) {
        half_to_float_n(v + t, vf, 16);  // conversion-exact (see row_dot)
      } else {
        for (int j = 0; j < 16; ++j) vf[j] = static_cast<Acc>(v[t + j]);
      }
      for (int j = 0; j < 16; ++j) {
        const Acc av = vf[j];
        const XT* __restrict xc = x + (ilv ? ci[t + j] * ldx : ci[t + j]);
        Acc* __restrict lane = acc[j % 4];
        for (int c = 0; c < k; ++c) lane[c] += av * static_cast<Acc>(xc[c * xs]);
      }
    }
    for (; t + 4 <= e; t += 4) {
      for (int j = 0; j < 4; ++j) {
        const Acc av = static_cast<Acc>(v[t + j]);
        const XT* __restrict xc = x + (ilv ? ci[t + j] * ldx : ci[t + j]);
        Acc* __restrict lane = acc[j];
        for (int c = 0; c < k; ++c) lane[c] += av * static_cast<Acc>(xc[c * xs]);
      }
    }
    for (; t < e; ++t) {
      const Acc av = static_cast<Acc>(v[t]);
      const XT* __restrict xc = x + (ilv ? ci[t] * ldx : ci[t]);
      for (int c = 0; c < k; ++c) acc[0][c] += av * static_cast<Acc>(xc[c * xs]);
    }
    for (int c = 0; c < k; ++c)
      out(c, (acc[0][c] + acc[1][c]) + (acc[2][c] + acc[3][c]));
  } else {
    Acc acc[kSpmmMaxCols] = {};
    for (index_t t = b; t < e; ++t) {
      const Acc av = static_cast<Acc>(v[t]);
      const XT* __restrict xc = x + (ilv ? ci[t] * ldx : ci[t]);
      for (int c = 0; c < k; ++c) acc[c] += av * static_cast<Acc>(xc[c * xs]);
    }
    for (int c = 0; c < k; ++c) out(c, acc[c]);
  }
}

/// Dispatch a column group to the compile-time-specialized row kernel.
/// Every width greedy_group produces is pinned: the common 16/8/4 tiers
/// AND the 1/2/3 tails — previously a <4 tail (any odd batch width, e.g. a
/// compacted survivor count of 5, 7, 9 or 17) fell into the dynamic
/// `<...,0>` kernel and silently lost the unrolled path.  The dynamic case
/// remains as a safety net only.
template <class Body>
inline void dispatch_cols(int kc, Body&& body) {
  switch (kc) {
    case 1: body.template operator()<1>(); break;
    case 2: body.template operator()<2>(); break;
    case 3: body.template operator()<3>(); break;
    case 4: body.template operator()<4>(); break;
    case 8: body.template operator()<8>(); break;
    case kSpmmMaxCols: body.template operator()<kSpmmMaxCols>(); break;
    default: body.template operator()<0>(); break;
  }
}

/// Greedy group decomposition (blas::greedy_group): keeps a compacted
/// active set (say 11 survivors of 16) in the fully-unrolled pinned
/// kernels instead of falling into the unpinned path as one ragged group.
inline int next_group(int remaining) { return blas::greedy_group(remaining, kSpmmMaxCols); }

/// Layout-pinned CSR SpMM body shared by the public spmm overloads.
template <PanelLayout LX, PanelLayout LY, class MT, class XT, class YT, class Acc>
void spmm_csr(const CsrMatrix<MT>& a, const XT* x, std::ptrdiff_t ldx, YT* y,
              std::ptrdiff_t ldy, int k) {
  const std::ptrdiff_t n = a.nrows;
  const std::ptrdiff_t work = static_cast<std::ptrdiff_t>(a.nnz()) * std::max(k, 1);
  const index_t* __restrict rp = a.row_ptr.data();
  const index_t* __restrict ci = a.col_idx.data();
  const MT* __restrict v = a.vals.data();
  for (int c0 = 0; c0 < k;) {
    const int kc = next_group(k - c0);
    const XT* xg = LX == PanelLayout::kColMajor ? x + c0 : x + static_cast<std::ptrdiff_t>(c0) * ldx;
    YT* yg = LY == PanelLayout::kColMajor ? y + c0 : y + static_cast<std::ptrdiff_t>(c0) * ldy;
    dispatch_cols(kc, [&]<int KC>() {
#pragma omp parallel for schedule(static) if (work > blas::parallel_threshold())
      for (std::ptrdiff_t i = 0; i < n; ++i)
        row_dots<MT, XT, Acc, KC, LX>(
            v, ci, xg, ldx, kc, rp[i], rp[i + 1], [&](int c, Acc s) {
              *panel_at<LY>(yg, ldy, c, i) = static_cast<YT>(s);
            });
    });
    c0 += kc;
  }
}

}  // namespace spmm_detail

/// Y_c = A X_c over CSR for c in [0, k); lx/ly select the X/Y panel
/// layouts (addressing only — per-column accumulation order is fixed).
template <class MT, class XT, class YT, class Acc = promote_t<MT, XT>>
void spmm(const CsrMatrix<MT>& a, const XT* x, std::ptrdiff_t ldx, YT* y,
          std::ptrdiff_t ldy, int k, PanelLayout lx = PanelLayout::kRowMajor,
          PanelLayout ly = PanelLayout::kRowMajor) {
  using PL = PanelLayout;
  if (lx == PL::kRowMajor && ly == PL::kRowMajor)
    spmm_detail::spmm_csr<PL::kRowMajor, PL::kRowMajor, MT, XT, YT, Acc>(a, x, ldx, y, ldy, k);
  else if (lx == PL::kColMajor && ly == PL::kColMajor)
    spmm_detail::spmm_csr<PL::kColMajor, PL::kColMajor, MT, XT, YT, Acc>(a, x, ldx, y, ldy, k);
  else if (lx == PL::kColMajor)
    spmm_detail::spmm_csr<PL::kColMajor, PL::kRowMajor, MT, XT, YT, Acc>(a, x, ldx, y, ldy, k);
  else
    spmm_detail::spmm_csr<PL::kRowMajor, PL::kColMajor, MT, XT, YT, Acc>(a, x, ldx, y, ldy, k);
}

/// Y_c = B_c − A X_c over CSR (fused batched residual).
template <class MT, class XT, class BT, class YT,
          class Acc = promote_t<promote_t<MT, XT>, BT>>
void residual_many(const CsrMatrix<MT>& a, const XT* x, std::ptrdiff_t ldx, const BT* b,
                   std::ptrdiff_t ldb, YT* y, std::ptrdiff_t ldy, int k) {
  const std::ptrdiff_t n = a.nrows;
  const std::ptrdiff_t work = static_cast<std::ptrdiff_t>(a.nnz()) * std::max(k, 1);
  const index_t* __restrict rp = a.row_ptr.data();
  const index_t* __restrict ci = a.col_idx.data();
  const MT* __restrict v = a.vals.data();
  for (int c0 = 0; c0 < k;) {
    const int kc = spmm_detail::next_group(k - c0);
    const XT* xg = x + static_cast<std::ptrdiff_t>(c0) * ldx;
    const BT* bg = b + static_cast<std::ptrdiff_t>(c0) * ldb;
    YT* yg = y + static_cast<std::ptrdiff_t>(c0) * ldy;
    spmm_detail::dispatch_cols(kc, [&]<int KC>() {
#pragma omp parallel for schedule(static) if (work > blas::parallel_threshold())
      for (std::ptrdiff_t i = 0; i < n; ++i)
        spmm_detail::row_dots<MT, XT, Acc, KC>(
            v, ci, xg, ldx, kc, rp[i], rp[i + 1], [&](int c, Acc s) {
              yg[static_cast<std::ptrdiff_t>(c) * ldy + i] = static_cast<YT>(
                  static_cast<Acc>(bg[static_cast<std::ptrdiff_t>(c) * ldb + i]) - s);
            });
    });
    c0 += kc;
  }
}

/// Y_c = A X_c over SELL-C: per slice, the SIMD column-major sweep runs
/// once per batch column while the slice's values/indices stay in cache.
template <class MT, class XT, class YT, class Acc = promote_t<MT, XT>>
void spmm(const SellMatrix<MT>& a, const XT* x, std::ptrdiff_t ldx, YT* y,
          std::ptrdiff_t ldy, int k) {
  const index_t ns = a.nslices();
  const int C = a.chunk;
  const std::ptrdiff_t work =
      static_cast<std::ptrdiff_t>(a.padded_nnz()) * std::max(k, 1);
#pragma omp parallel for schedule(static) if (work > blas::parallel_threshold())
  for (std::ptrdiff_t sl = 0; sl < static_cast<std::ptrdiff_t>(ns); ++sl) {
    const index_t r0 = static_cast<index_t>(sl) * C;
    const index_t r1 = std::min<index_t>(r0 + C, a.nrows);
    const index_t base = a.slice_ptr[sl];
    const index_t w = a.slice_width[sl];
    for (int c = 0; c < k; ++c) {
      const XT* xc = x + static_cast<std::ptrdiff_t>(c) * ldx;
      YT* yc = y + static_cast<std::ptrdiff_t>(c) * ldy;
      if (C <= kSellSimdMaxChunk) {
        sell_detail::slice_sweep_simd<MT, XT, Acc>(
            a.vals.data(), a.cols.data(), xc, base, w, C, r0, r1,
            [&](index_t i, Acc s) { yc[i] = static_cast<YT>(s); });
      } else {
        for (index_t i = r0; i < r1; ++i)
          yc[i] = static_cast<YT>(sell_detail::lane_dot<MT, XT, Acc>(
              a.vals.data(), a.cols.data(), xc, base, i - r0, w, C));
      }
    }
  }
}

/// Y_c = B_c − A X_c over SELL-C (fused batched residual).
template <class MT, class XT, class BT, class YT,
          class Acc = promote_t<promote_t<MT, XT>, BT>>
void residual_many(const SellMatrix<MT>& a, const XT* x, std::ptrdiff_t ldx, const BT* b,
                   std::ptrdiff_t ldb, YT* y, std::ptrdiff_t ldy, int k) {
  const index_t ns = a.nslices();
  const int C = a.chunk;
  const std::ptrdiff_t work =
      static_cast<std::ptrdiff_t>(a.padded_nnz()) * std::max(k, 1);
#pragma omp parallel for schedule(static) if (work > blas::parallel_threshold())
  for (std::ptrdiff_t sl = 0; sl < static_cast<std::ptrdiff_t>(ns); ++sl) {
    const index_t r0 = static_cast<index_t>(sl) * C;
    const index_t r1 = std::min<index_t>(r0 + C, a.nrows);
    const index_t base = a.slice_ptr[sl];
    const index_t w = a.slice_width[sl];
    for (int c = 0; c < k; ++c) {
      const XT* xc = x + static_cast<std::ptrdiff_t>(c) * ldx;
      const BT* bc = b + static_cast<std::ptrdiff_t>(c) * ldb;
      YT* yc = y + static_cast<std::ptrdiff_t>(c) * ldy;
      if (C <= kSellSimdMaxChunk) {
        sell_detail::slice_sweep_simd<MT, XT, Acc>(
            a.vals.data(), a.cols.data(), xc, base, w, C, r0, r1, [&](index_t i, Acc s) {
              yc[i] = static_cast<YT>(static_cast<Acc>(bc[i]) - s);
            });
      } else {
        for (index_t i = r0; i < r1; ++i) {
          const Acc s = sell_detail::lane_dot<MT, XT, Acc>(a.vals.data(), a.cols.data(), xc,
                                                           base, i - r0, w, C);
          yc[i] = static_cast<YT>(static_cast<Acc>(bc[i]) - s);
        }
      }
    }
  }
}

}  // namespace nk
