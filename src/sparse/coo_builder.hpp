// Coordinate-format accumulator for assembling CSR matrices.
// Duplicate (i, j) entries are summed, matching finite-element assembly and
// Matrix Market symmetric expansion semantics.
#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace nk {

class CooBuilder {
 public:
  CooBuilder(index_t nrows, index_t ncols) : nrows_(nrows), ncols_(ncols) {}

  /// Append one entry; out-of-range indices throw.
  void add(index_t i, index_t j, double v);

  /// Append v to (i,j) and (j,i) — symmetric assembly helper.
  void add_sym(index_t i, index_t j, double v) {
    add(i, j, v);
    if (i != j) add(j, i, v);
  }

  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return ncols_; }
  [[nodiscard]] std::size_t entries() const { return is_.size(); }

  /// Assemble into CSR with sorted rows; duplicates are summed.
  [[nodiscard]] CsrMatrix<double> to_csr() const;

 private:
  index_t nrows_, ncols_;
  std::vector<index_t> is_, js_;
  std::vector<double> vs_;
};

}  // namespace nk
