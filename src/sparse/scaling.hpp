// Diagonal scaling.  The paper applies diagonal scaling to all test
// matrices before solving; it is essential for fp16 viability because it
// maps matrix values into a range binary16 can represent (diagonal becomes
// exactly 1, off-diagonals O(1)).
#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace nk {

/// Result of a symmetric diagonal scaling  Ã = D^{-1/2} A D^{-1/2}.
struct ScalingResult {
  std::vector<double> scale;      ///< s_i = 1/sqrt(|a_ii|)
  bool had_zero_diagonal = false; ///< rows with a_ii == 0 are left unscaled
};

/// Scale A in place symmetrically: a_ij <- s_i a_ij s_j with
/// s_i = 1/sqrt(|a_ii|).  Returns the scale so right-hand sides and
/// solutions can be transformed consistently:
///   solve à x̃ = b̃ with b̃_i = s_i b_i, then x_i = s_i x̃_i.
ScalingResult diagonal_scale_symmetric(CsrMatrix<double>& a);

/// Row scaling a_ij <- a_ij / a_ii (Jacobi scaling), for experiments that
/// want unit diagonal without preserving symmetry.
std::vector<double> diagonal_scale_rows(CsrMatrix<double>& a);

/// Apply elementwise scale to a vector: x_i <- s_i * x_i.
void apply_scale(const std::vector<double>& s, std::vector<double>& x);

}  // namespace nk
