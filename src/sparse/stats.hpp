// Matrix structure analysis used by Table 2 reporting and test assertions.
#pragma once

#include <string>

#include "sparse/csr.hpp"

namespace nk {

struct MatrixStats {
  index_t n = 0;
  index_t nnz = 0;
  double nnz_per_row = 0.0;
  index_t max_row_nnz = 0;
  index_t min_row_nnz = 0;
  /// Max |i - j| over stored entries — small for stencil/banded structure,
  /// large for circuit-like scattered patterns.
  index_t bandwidth = 0;
  /// Population standard deviation of the per-row nnz counts.  The
  /// CSR-vs-SELL signal: sliced ELLPACK pads every row of a chunk to the
  /// chunk maximum, so uniform row lengths (stddev ≈ 0) make SELL free and
  /// ragged rows make it pay pure padding.
  double row_nnz_stddev = 0.0;
  bool structurally_symmetric = false;
  bool numerically_symmetric = false;
  bool has_full_diagonal = false;   ///< every row stores its diagonal entry
  double diag_dominance_min = 0.0;  ///< min_i |a_ii| / sum_{j!=i} |a_ij| (inf-safe cap 1e300)
  double max_abs = 0.0;
  double min_abs_nonzero = 0.0;
  double fp16_overflow_fraction = 0.0;  ///< fraction of values outside binary16 range
};

/// Compute structural and numerical statistics (O(nnz) passes plus one
/// transpose for the symmetry checks).
MatrixStats analyze(const CsrMatrix<double>& a);

/// Human-readable one-line summary: "n=... nnz=... nnz/n=... sym=yes ...".
std::string stats_summary(const MatrixStats& s);

}  // namespace nk
