// Matrix Market (.mtx) coordinate-format I/O.
//
// The paper evaluates on SuiteSparse matrices distributed in this format;
// the `mm_solve` example and the bench harness accept .mtx files so a user
// with the real collection can rerun every experiment on the paper's exact
// inputs.  Supports real/integer/pattern fields and general/symmetric
// symmetry (symmetric entries are expanded on read).
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace nk {

/// Parse an .mtx stream into CSR (rows sorted, duplicates summed).
/// Throws std::runtime_error on malformed input.
CsrMatrix<double> read_matrix_market(std::istream& in);

/// Read from a file path; throws std::runtime_error if unreadable.
CsrMatrix<double> read_matrix_market_file(const std::string& path);

/// Write CSR as a general real coordinate .mtx.
void write_matrix_market(std::ostream& out, const CsrMatrix<double>& a);

/// Write to a file path; throws std::runtime_error on failure.
void write_matrix_market_file(const std::string& path, const CsrMatrix<double>& a);

}  // namespace nk
