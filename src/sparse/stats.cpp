#include "sparse/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace nk {

MatrixStats analyze(const CsrMatrix<double>& a) {
  MatrixStats s;
  s.n = a.nrows;
  s.nnz = a.nnz();
  s.nnz_per_row = a.nnz_per_row();
  s.min_row_nnz = std::numeric_limits<index_t>::max();
  s.max_row_nnz = 0;
  s.has_full_diagonal = true;
  s.diag_dominance_min = 1e300;
  s.min_abs_nonzero = std::numeric_limits<double>::max();

  double rn_sum = 0.0, rn_sumsq = 0.0;
  for (index_t i = 0; i < a.nrows; ++i) {
    const index_t rn = a.row_ptr[i + 1] - a.row_ptr[i];
    s.min_row_nnz = std::min(s.min_row_nnz, rn);
    s.max_row_nnz = std::max(s.max_row_nnz, rn);
    rn_sum += static_cast<double>(rn);
    rn_sumsq += static_cast<double>(rn) * static_cast<double>(rn);
    double diag = 0.0, off = 0.0;
    bool saw_diag = false;
    for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const double v = a.vals[k];
      const double av = std::abs(v);
      const index_t band = a.col_idx[k] > i ? a.col_idx[k] - i : i - a.col_idx[k];
      s.bandwidth = std::max(s.bandwidth, band);
      if (av > s.max_abs) s.max_abs = av;
      if (av > 0.0 && av < s.min_abs_nonzero) s.min_abs_nonzero = av;
      if (av > static_cast<double>(fp_limits<half>::max)) s.fp16_overflow_fraction += 1.0;
      if (a.col_idx[k] == i) {
        diag = av;
        saw_diag = true;
      } else {
        off += av;
      }
    }
    if (!saw_diag) s.has_full_diagonal = false;
    const double dom = off > 0.0 ? diag / off : 1e300;
    s.diag_dominance_min = std::min(s.diag_dominance_min, dom);
  }
  if (s.nnz > 0) s.fp16_overflow_fraction /= static_cast<double>(s.nnz);
  if (s.min_abs_nonzero == std::numeric_limits<double>::max()) s.min_abs_nonzero = 0.0;
  if (a.nrows > 0) {
    const double mean = rn_sum / static_cast<double>(a.nrows);
    const double var = std::max(0.0, rn_sumsq / static_cast<double>(a.nrows) - mean * mean);
    s.row_nnz_stddev = std::sqrt(var);
  }

  // Symmetry checks (pattern and values).
  const CsrMatrix<double> at = transpose(a);
  CsrMatrix<double> b = a, bt = at;
  b.sort_rows();
  bt.sort_rows();
  s.structurally_symmetric = (b.row_ptr == bt.row_ptr && b.col_idx == bt.col_idx);
  if (s.structurally_symmetric) {
    s.numerically_symmetric = true;
    for (std::size_t k = 0; k < b.vals.size(); ++k) {
      const double x = b.vals[k], y = bt.vals[k];
      if (std::abs(x - y) > 1e-12 * std::max({1.0, std::abs(x), std::abs(y)})) {
        s.numerically_symmetric = false;
        break;
      }
    }
  }
  return s;
}

std::string stats_summary(const MatrixStats& s) {
  std::ostringstream os;
  os << "n=" << s.n << " nnz=" << s.nnz << " nnz/n=" << s.nnz_per_row
     << " sym=" << (s.numerically_symmetric ? "yes" : "no")
     << " diag_dom_min=" << s.diag_dominance_min << " max|a|=" << s.max_abs;
  return os.str();
}

}  // namespace nk
