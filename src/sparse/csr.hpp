// Compressed Sparse Row matrix, templated on value type.
//
// The paper stores all matrices in CSR with 32-bit integer index arrays on
// the CPU node; F3R keeps one copy of A per precision level actually used
// (fp64 for the outermost FGMRES, fp32 for the second level, fp16 for the
// third level and the innermost Richardson).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "base/blas1.hpp"
#include "base/half.hpp"

namespace nk {

template <class T>
struct CsrMatrix {
  using value_type = T;

  index_t nrows = 0;
  index_t ncols = 0;
  std::vector<index_t> row_ptr;  ///< size nrows + 1
  std::vector<index_t> col_idx;  ///< size nnz
  std::vector<T> vals;           ///< size nnz

  CsrMatrix() = default;
  CsrMatrix(index_t rows, index_t cols) : nrows(rows), ncols(cols), row_ptr(rows + 1, 0) {}

  [[nodiscard]] index_t nnz() const { return row_ptr.empty() ? 0 : row_ptr.back(); }

  [[nodiscard]] bool empty() const { return nrows == 0; }

  /// Average nonzeros per row (the paper's nnz/n column of Table 2).
  [[nodiscard]] double nnz_per_row() const {
    return nrows == 0 ? 0.0 : static_cast<double>(nnz()) / static_cast<double>(nrows);
  }

  /// Row `i` as (cols, vals) spans.
  [[nodiscard]] std::span<const index_t> row_cols(index_t i) const {
    return {col_idx.data() + row_ptr[i], static_cast<std::size_t>(row_ptr[i + 1] - row_ptr[i])};
  }
  [[nodiscard]] std::span<const T> row_vals(index_t i) const {
    return {vals.data() + row_ptr[i], static_cast<std::size_t>(row_ptr[i + 1] - row_ptr[i])};
  }

  /// Value at (i, j), or 0 if the entry is not stored.  Rows must be sorted.
  [[nodiscard]] T at(index_t i, index_t j) const {
    const auto cols = row_cols(i);
    auto it = std::lower_bound(cols.begin(), cols.end(), j);
    if (it == cols.end() || *it != j) return static_cast<T>(0);
    return vals[row_ptr[i] + static_cast<index_t>(it - cols.begin())];
  }

  /// Diagonal entries (0 where absent).
  [[nodiscard]] std::vector<T> diagonal() const {
    std::vector<T> d(nrows, static_cast<T>(0));
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(nrows); ++i) {
      for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k)
        if (col_idx[k] == static_cast<index_t>(i)) {
          d[i] = vals[k];
          break;
        }
    }
    return d;
  }

  /// Sort the column indices (and values) within every row.
  void sort_rows() {
    std::vector<std::pair<index_t, T>> buf;
    for (index_t i = 0; i < nrows; ++i) {
      const index_t b = row_ptr[i], e = row_ptr[i + 1];
      buf.clear();
      for (index_t k = b; k < e; ++k) buf.emplace_back(col_idx[k], vals[k]);
      std::sort(buf.begin(), buf.end(),
                [](const auto& a, const auto& c) { return a.first < c.first; });
      for (index_t k = b; k < e; ++k) {
        col_idx[k] = buf[k - b].first;
        vals[k] = buf[k - b].second;
      }
    }
  }

  /// True if every row's column indices are strictly increasing.
  [[nodiscard]] bool rows_sorted() const {
    for (index_t i = 0; i < nrows; ++i)
      for (index_t k = row_ptr[i] + 1; k < row_ptr[i + 1]; ++k)
        if (col_idx[k - 1] >= col_idx[k]) return false;
    return true;
  }

  /// Basic structural sanity (monotone row_ptr, in-range columns).
  void validate() const {
    if (static_cast<index_t>(row_ptr.size()) != nrows + 1)
      throw std::invalid_argument("CsrMatrix: row_ptr size mismatch");
    if (col_idx.size() != vals.size()) throw std::invalid_argument("CsrMatrix: col/val mismatch");
    for (index_t i = 0; i < nrows; ++i)
      if (row_ptr[i] > row_ptr[i + 1]) throw std::invalid_argument("CsrMatrix: row_ptr not monotone");
    if (!col_idx.empty())
      for (index_t c : col_idx)
        if (c < 0 || c >= ncols) throw std::invalid_argument("CsrMatrix: column out of range");
  }
};

/// Value-cast a CSR matrix to another precision (structure is shared shape,
/// values are rounded).  This is how F3R builds its fp32/fp16 copies of A,
/// and how fp32/fp16 preconditioners are produced from fp64 factorizations.
template <class Dst, class Src>
CsrMatrix<Dst> cast_matrix(const CsrMatrix<Src>& a) {
  CsrMatrix<Dst> out;
  out.nrows = a.nrows;
  out.ncols = a.ncols;
  out.row_ptr = a.row_ptr;
  out.col_idx = a.col_idx;
  out.vals.resize(a.vals.size());
  blas::convert<Src, Dst>(std::span<const Src>(a.vals), std::span<Dst>(out.vals));
  return out;
}

/// Explicit transpose (used by AINV construction and symmetry checks).
template <class T>
CsrMatrix<T> transpose(const CsrMatrix<T>& a) {
  CsrMatrix<T> at(a.ncols, a.nrows);
  at.col_idx.resize(a.nnz());
  at.vals.resize(a.nnz());
  // Count entries per column.
  std::vector<index_t> cnt(a.ncols + 1, 0);
  for (index_t k = 0; k < a.nnz(); ++k) ++cnt[a.col_idx[k] + 1];
  for (index_t c = 0; c < a.ncols; ++c) cnt[c + 1] += cnt[c];
  at.row_ptr = cnt;
  std::vector<index_t> next(cnt.begin(), cnt.end() - 1);
  for (index_t i = 0; i < a.nrows; ++i)
    for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      const index_t c = a.col_idx[k];
      const index_t dst = next[c]++;
      at.col_idx[dst] = i;
      at.vals[dst] = a.vals[k];
    }
  return at;
}

/// True if the matrix equals its transpose up to `tol` (relative to the
/// largest absolute value involved).  Rows must be sorted.
template <class T>
bool is_symmetric(const CsrMatrix<T>& a, double tol = 0.0) {
  if (a.nrows != a.ncols) return false;
  const CsrMatrix<T> at = transpose(a);
  if (at.row_ptr != a.row_ptr || at.col_idx != a.col_idx) {
    // Pattern could still be symmetric with different intra-row order.
    CsrMatrix<T> s = at;
    s.sort_rows();
    CsrMatrix<T> b = a;
    b.sort_rows();
    if (s.row_ptr != b.row_ptr || s.col_idx != b.col_idx) return false;
    for (std::size_t k = 0; k < b.vals.size(); ++k) {
      const double x = static_cast<double>(b.vals[k]), y = static_cast<double>(s.vals[k]);
      if (std::abs(x - y) > tol * std::max(1.0, std::max(std::abs(x), std::abs(y)))) return false;
    }
    return true;
  }
  for (std::size_t k = 0; k < a.vals.size(); ++k) {
    const double x = static_cast<double>(a.vals[k]), y = static_cast<double>(at.vals[k]);
    if (std::abs(x - y) > tol * std::max(1.0, std::max(std::abs(x), std::abs(y)))) return false;
  }
  return true;
}

}  // namespace nk
