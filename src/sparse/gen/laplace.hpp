// Classic Laplacian / anisotropic diffusion model problems.
// These serve both the test suite (small SPD problems with known behaviour)
// and the SuiteSparse stand-ins (ecology2, tmt_sym, thermal2, G3_circuit
// are 2-D/3-D diffusion-type SPD matrices with ~5-7 nnz/row).
#pragma once

#include "sparse/csr.hpp"

namespace nk::gen {

/// 2-D 5-point Laplacian on an nx × ny grid (Dirichlet): diag 4, off -1.
CsrMatrix<double> laplace2d(index_t nx, index_t ny);

/// 3-D 7-point Laplacian on nx × ny × nz (Dirichlet): diag 6, off -1.
CsrMatrix<double> laplace3d(index_t nx, index_t ny, index_t nz);

/// 2-D anisotropic diffusion: -(eps u_xx + u_yy); five-point, SPD,
/// conditioning worsens as eps → 0 (thermal-problem character).
CsrMatrix<double> anisotropic2d(index_t nx, index_t ny, double eps);

/// 3-D anisotropic diffusion with per-axis coefficients.
CsrMatrix<double> anisotropic3d(index_t nx, index_t ny, index_t nz, double ex, double ey,
                                double ez);

}  // namespace nk::gen
