// HPCG / HPGMP stencil generators.
//
// HPCG (Dongarra, Heroux, Luszczek 2016): 27-point stencil on an
// nx × ny × nz grid with diagonal 26 and off-diagonals -1.
//
// HPGMP (Yamazaki et al. 2022): the same stencil, except connections to
// forward (+z) neighbours become -1 + β and backward (-z) neighbours
// become -1 - β (β = 0.5 in the paper), which makes the matrix
// nonsymmetric.  The paper names these matrices hpcg_x_y_z / hpgmp_x_y_z
// where x,y,z are log2 of the per-axis sizes.
#pragma once

#include <string>

#include "sparse/csr.hpp"

namespace nk::gen {

struct StencilOptions {
  index_t nx = 32;
  index_t ny = 32;
  index_t nz = 32;
  double diag = 26.0;
  double off = -1.0;
  double beta = 0.0;  ///< HPGMP z-asymmetry; 0 reproduces HPCG
};

/// Build the 27-point stencil matrix described above (boundary rows simply
/// omit out-of-range neighbours, as HPCG does).
CsrMatrix<double> stencil27(const StencilOptions& opt);

/// hpcg_x_y_z with per-axis sizes 2^lx, 2^ly, 2^lz.
CsrMatrix<double> hpcg(int lx, int ly, int lz);

/// hpgmp_x_y_z (β = 0.5 as in the paper's experiments).
CsrMatrix<double> hpgmp(int lx, int ly, int lz, double beta = 0.5);

/// Name helper: "hpcg_7_7_7" etc., matching Table 2 naming.
std::string stencil_name(const char* base, int lx, int ly, int lz);

}  // namespace nk::gen
