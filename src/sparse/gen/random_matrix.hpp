// Random sparse matrix generators for property-based tests and for
// SuiteSparse stand-ins with irregular sparsity (circuit-type rows).
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace nk::gen {

struct RandomOptions {
  index_t n = 1000;
  double avg_nnz_per_row = 8.0;  ///< expected off-diagonal count per row
  double dominance = 1.1;        ///< diag = dominance * (row off-diag abs sum)
  bool symmetric = false;
  std::uint64_t seed = 42;
  double value_lo = -1.0;        ///< off-diagonal value range
  double value_hi = 1.0;
};

/// Random sparse matrix with a guaranteed-nonzero, diagonally dominant
/// diagonal (dominance > 1 makes it an H-matrix, so ILU(0)/AINV exist and
/// Krylov solvers converge — the controlled setting property tests need).
CsrMatrix<double> random_sparse(const RandomOptions& opt);

/// Random SPD matrix: builds B random lower-triangular sparse + unit
/// diagonal scaling, returns  B Bᵀ + shift·I  (small, dense-ish rows; use
/// n ≤ a few thousand).
CsrMatrix<double> random_spd(index_t n, double density, double shift, std::uint64_t seed);

/// Power-law row-degree matrix imitating circuit matrices (rajat31,
/// Freescale1 class): most rows have 2-4 entries, a few hubs are dense.
CsrMatrix<double> random_circuit(index_t n, index_t max_degree, double dominance,
                                 std::uint64_t seed);

}  // namespace nk::gen
