#include "sparse/gen/laplace.hpp"

#include <stdexcept>

#include "sparse/coo_builder.hpp"

namespace nk::gen {

CsrMatrix<double> laplace2d(index_t nx, index_t ny) { return anisotropic2d(nx, ny, 1.0); }

CsrMatrix<double> laplace3d(index_t nx, index_t ny, index_t nz) {
  return anisotropic3d(nx, ny, nz, 1.0, 1.0, 1.0);
}

CsrMatrix<double> anisotropic2d(index_t nx, index_t ny, double eps) {
  if (nx <= 0 || ny <= 0) throw std::invalid_argument("anisotropic2d: bad grid");
  const index_t n = nx * ny;
  CooBuilder b(n, n);
  for (index_t y = 0; y < ny; ++y)
    for (index_t x = 0; x < nx; ++x) {
      const index_t row = y * nx + x;
      b.add(row, row, 2.0 * eps + 2.0);
      if (x > 0) b.add(row, row - 1, -eps);
      if (x + 1 < nx) b.add(row, row + 1, -eps);
      if (y > 0) b.add(row, row - nx, -1.0);
      if (y + 1 < ny) b.add(row, row + nx, -1.0);
    }
  return b.to_csr();
}

CsrMatrix<double> anisotropic3d(index_t nx, index_t ny, index_t nz, double ex, double ey,
                                double ez) {
  if (nx <= 0 || ny <= 0 || nz <= 0) throw std::invalid_argument("anisotropic3d: bad grid");
  const std::int64_t n64 = static_cast<std::int64_t>(nx) * ny * nz;
  if (n64 > std::int64_t{1} << 30)
    throw std::invalid_argument("anisotropic3d: grid too large for 32-bit indices");
  const index_t n = static_cast<index_t>(n64);
  CooBuilder b(n, n);
  for (index_t z = 0; z < nz; ++z)
    for (index_t y = 0; y < ny; ++y)
      for (index_t x = 0; x < nx; ++x) {
        const index_t row = (z * ny + y) * nx + x;
        b.add(row, row, 2.0 * (ex + ey + ez));
        if (x > 0) b.add(row, row - 1, -ex);
        if (x + 1 < nx) b.add(row, row + 1, -ex);
        if (y > 0) b.add(row, row - nx, -ey);
        if (y + 1 < ny) b.add(row, row + nx, -ey);
        if (z > 0) b.add(row, row - nx * ny, -ez);
        if (z + 1 < nz) b.add(row, row + nx * ny, -ez);
      }
  return b.to_csr();
}

}  // namespace nk::gen
