// Convection–diffusion model problems (nonsymmetric).
// Upwind-discretized  -Δu + v·∇u  on structured grids; the velocity
// magnitude controls non-normality.  These are the stand-in class for the
// paper's nonsymmetric atmospheric/semiconductor matrices (atmosmod*,
// Transport, t2em, tmt_unsym).
#pragma once

#include "sparse/csr.hpp"

namespace nk::gen {

struct ConvDiffOptions {
  index_t nx = 32;
  index_t ny = 32;
  index_t nz = 1;    ///< nz == 1 gives the 2-D problem
  double vx = 1.0;   ///< convection velocity along x
  double vy = 0.5;   ///< along y
  double vz = 0.25;  ///< along z (ignored in 2-D)
  double diffusion = 1.0;
};

/// First-order upwind convection–diffusion matrix.  Row sums of the
/// off-diagonal magnitudes never exceed the diagonal, so the matrix is an
/// M-matrix (weakly diagonally dominant) for any velocity — mirroring the
/// well-behaved but nonsymmetric character of the paper's atmosmod set.
CsrMatrix<double> convdiff(const ConvDiffOptions& opt);

}  // namespace nk::gen
