#include "sparse/gen/suite_standins.hpp"

#include <cmath>
#include <stdexcept>

#include "base/rng.hpp"
#include "sparse/gen/convdiff.hpp"
#include "sparse/gen/laplace.hpp"
#include "sparse/gen/random_matrix.hpp"
#include "sparse/gen/stencil.hpp"

namespace nk::gen {

namespace {

// Base linear dimensions at scale=1; chosen so n lands in 3e4 – 3e5.
constexpr index_t kBase2d = 192;  // 2-D problems: 192² ≈ 37k rows
constexpr index_t kBase3d = 32;   // 3-D problems: 32³ ≈ 33k rows

// Negative scale shrinks: scale = -d divides the base dimension by d
// (floored to keep the generators well-posed).  The conformance sweep uses
// this to run the FULL catalog × solver × precision grid in seconds while
// preserving each stand-in's structure class.
index_t dim2(int scale) {
  if (scale < 0) return std::max<index_t>(12, kBase2d / -scale);
  return kBase2d * std::max(1, scale);
}
index_t dim3(int scale) {
  if (scale < 0) return std::max<index_t>(6, kBase3d / -scale);
  return kBase3d * std::max(1, scale);
}

// A fixed well-conditioned SPD 3×3 block (eigenvalues ~ {0.5, 1, 2}).
const std::vector<double> kSpdBlock3 = {
    1.20, 0.30, 0.10,  //
    0.30, 1.00, 0.20,  //
    0.10, 0.20, 0.80,
};

CsrMatrix<double> elasticity_like(int scale, double diag_boost) {
  // 27-point stencil ⊗ 3×3 SPD block ≈ 81 nnz/row interior — the paper's
  // elasticity matrices (audikw_1: 82.3, Queen_4147: 76.3) live in this
  // regime.  `diag_boost` shifts the stencil diagonal before the block
  // expansion to tune conditioning per stand-in (negative = harder).
  StencilOptions o;
  o.nx = o.ny = o.nz = dim3(scale) / 2;  // 3 dofs/node triples the rows
  o.diag = 26.0 + diag_boost;
  CsrMatrix<double> a = stencil27(o);
  return kron_block(a, kSpdBlock3, 3);
}

CsrMatrix<double> hard_stokes_like(int scale, double convection, std::uint64_t seed) {
  // Convection-dominated 3-D problem with a random skew perturbation on the
  // off-diagonals: nonsymmetric, non-diagonally-dominant — the class where
  // the paper reports BiCGStab/FGMRES(64) failures (ss, stokes, vas_stokes).
  ConvDiffOptions o;
  o.nx = o.ny = o.nz = dim3(scale);
  o.vx = convection;
  o.vy = 0.7 * convection;
  o.vz = 0.4 * convection;
  CsrMatrix<double> a = convdiff(o);
  Xoshiro256 rng(seed);
  for (index_t i = 0; i < a.nrows; ++i)
    for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k)
      if (a.col_idx[k] != i) a.vals[k] *= (1.0 + 0.3 * (rng.uniform() - 0.5));
  return a;
}

struct Entry {
  ProblemSpec spec;
  std::function<CsrMatrix<double>(int)> make;
};

std::vector<Entry> build_catalog() {
  std::vector<Entry> c;
  auto add = [&](ProblemSpec s, std::function<CsrMatrix<double>(int)> f) {
    c.push_back({std::move(s), std::move(f)});
  };

  // --- symmetric set (paper Figure 1a / Table 2 upper block) ---
  add({"Bump_2911", "3-D elasticity-like block SPD (7pt ⊗ 3x3)", true, 1.1, 1.2, false, false},
      [](int s) { return elasticity_like(s, 0.0); });
  add({"Emilia_923", "3-D elasticity-like block SPD, softer diagonal", true, 1.0, 1.2, false, false},
      [](int s) { return elasticity_like(s, -0.05); });
  add({"G3_circuit", "2-D 5-pt diffusion, stretched grid (circuit-power class)", true, 1.0, 1.0, false, false},
      [](int s) { return laplace2d(dim2(s) * 2, dim2(s) / 2); });
  add({"Queen_4147", "3-D elasticity-like block SPD, stiffer blocks", true, 1.1, 1.3, false, false},
      [](int s) { return elasticity_like(s, 0.15); });
  add({"Serena", "3-D elasticity-like block SPD (gas-reservoir class)", true, 1.1, 1.2, false, false},
      [](int s) { return elasticity_like(s, 0.05); });
  add({"apache2", "3-D 7-pt Laplacian (structural class)", true, 1.0, 1.0, false, true},
      [](int s) { return laplace3d(dim3(s), dim3(s), dim3(s)); });
  add({"audikw_1", "3-D elasticity-like block SPD, widest rows", true, 1.1, 1.6, false, false},
      [](int s) { return elasticity_like(s, 0.3); });
  add({"ecology2", "2-D 5-pt Laplacian (landscape-flow class)", true, 1.0, 1.0, false, false},
      [](int s) { return laplace2d(dim2(s), dim2(s)); });
  add({"hpcg_4_4_4", "HPCG 27-pt stencil (exact generator)", true, 1.0, 1.0, true, false},
      [](int s) { return hpcg(4 + (s > 1), 4 + (s > 1), 4 + (s > 1)); });
  add({"hpcg_5_5_5", "HPCG 27-pt stencil (exact generator)", true, 1.0, 1.0, true, false},
      [](int s) { return hpcg(5 + (s > 1), 5 + (s > 1), 5 + (s > 1)); });
  add({"hpcg_6_5_5", "HPCG 27-pt stencil (exact generator)", true, 1.0, 1.0, true, false},
      [](int s) { return hpcg(6 + (s > 1), 5 + (s > 1), 5 + (s > 1)); });
  add({"hpcg_6_6_5", "HPCG 27-pt stencil (exact generator)", true, 1.0, 1.0, true, false},
      [](int s) { return hpcg(6 + (s > 1), 6 + (s > 1), 5 + (s > 1)); });
  add({"ldoor", "3-D elasticity-like block SPD (shell class)", true, 1.1, 1.3, false, false},
      [](int s) { return elasticity_like(s, 0.2); });
  add({"thermal2", "2-D anisotropic diffusion eps=0.02 (thermal class)", true, 1.0, 1.0, false, false},
      [](int s) { return anisotropic2d(dim2(s), dim2(s), 0.02); });
  add({"tmt_sym", "2-D anisotropic diffusion eps=0.1 (electromagnetics class)", true, 1.0, 1.0, false, false},
      [](int s) { return anisotropic2d(dim2(s), dim2(s), 0.1); });

  // --- nonsymmetric set (paper Figure 1b / Table 2 lower block) ---
  add({"Freescale1", "circuit-like preferential-attachment graph", false, 1.1, 1.1, false, true},
      [](int s) { return random_circuit(dim2(s) * dim2(s) / 4, 64, 1.02, 101); });
  add({"Transport", "3-D convection-diffusion, moderate velocity", false, 1.0, 1.0, false, false},
      [](int s) {
        ConvDiffOptions o;
        o.nx = o.ny = o.nz = dim3(s);
        o.vx = 40.0; o.vy = 25.0; o.vz = 10.0;
        return convdiff(o);
      });
  add({"atmosmodd", "3-D convection-diffusion (atmospheric class, v≈x)", false, 1.0, 1.0, false, false},
      [](int s) {
        ConvDiffOptions o;
        o.nx = o.ny = o.nz = dim3(s);
        o.vx = 60.0; o.vy = 5.0; o.vz = 5.0;
        return convdiff(o);
      });
  add({"atmosmodj", "3-D convection-diffusion (atmospheric class, v≈y)", false, 1.0, 1.0, false, false},
      [](int s) {
        ConvDiffOptions o;
        o.nx = o.ny = o.nz = dim3(s);
        o.vx = 5.0; o.vy = 60.0; o.vz = 5.0;
        return convdiff(o);
      });
  add({"atmosmodl", "3-D convection-diffusion (atmospheric class, mild v)", false, 1.0, 1.0, false, false},
      [](int s) {
        ConvDiffOptions o;
        o.nx = o.ny = o.nz = dim3(s);
        o.vx = 15.0; o.vy = 15.0; o.vz = 15.0;
        return convdiff(o);
      });
  add({"hpgmp_4_4_4", "HPGMP 27-pt β=0.5 stencil (exact generator)", false, 1.0, 1.0, true, false},
      [](int s) { return hpgmp(4 + (s > 1), 4 + (s > 1), 4 + (s > 1)); });
  add({"hpgmp_5_5_5", "HPGMP 27-pt β=0.5 stencil (exact generator)", false, 1.0, 1.0, true, false},
      [](int s) { return hpgmp(5 + (s > 1), 5 + (s > 1), 5 + (s > 1)); });
  add({"hpgmp_6_5_5", "HPGMP 27-pt β=0.5 stencil (exact generator)", false, 1.0, 1.0, true, false},
      [](int s) { return hpgmp(6 + (s > 1), 5 + (s > 1), 5 + (s > 1)); });
  add({"hpgmp_6_6_5", "HPGMP 27-pt β=0.5 stencil (exact generator)", false, 1.0, 1.0, true, false},
      [](int s) { return hpgmp(6 + (s > 1), 6 + (s > 1), 5 + (s > 1)); });
  add({"rajat31", "circuit-like graph, weaker dominance", false, 1.0, 1.0, false, true},
      [](int s) { return random_circuit(dim2(s) * dim2(s) / 4, 48, 1.05, 202); });
  add({"ss", "convection-dominated + skew perturbation (hard)", false, 1.1, 1.2, false, true},
      [](int s) { return hard_stokes_like(s, 120.0, 303); });
  add({"stokes", "convection-dominated + skew perturbation (hardest)", false, 1.0, 1.3, false, true},
      [](int s) { return hard_stokes_like(s, 400.0, 404); });
  add({"t2em", "2-D convection-diffusion (electromagnetics class)", false, 1.0, 1.0, false, false},
      [](int s) {
        ConvDiffOptions o;
        o.nx = dim2(s); o.ny = dim2(s); o.nz = 1;
        o.vx = 10.0; o.vy = 10.0;
        return convdiff(o);
      });
  add({"tmt_unsym", "2-D convection-diffusion, anisotropic velocity", false, 1.0, 1.0, false, false},
      [](int s) {
        ConvDiffOptions o;
        o.nx = dim2(s); o.ny = dim2(s); o.nz = 1;
        o.vx = 30.0; o.vy = 3.0;
        return convdiff(o);
      });
  add({"vas_stokes_1M", "convection-dominated + skew perturbation (hard)", false, 1.0, 1.3, false, true},
      [](int s) { return hard_stokes_like(s, 200.0, 505); });
  add({"vas_stokes_2M", "convection-dominated + skew perturbation (hard, larger)", false, 1.0, 1.3, false, true},
      [](int s) { return hard_stokes_like(std::max(1, s), 250.0, 606); });
  return c;
}

const std::vector<Entry>& catalog() {
  static const std::vector<Entry> c = build_catalog();
  return c;
}

}  // namespace

CsrMatrix<double> kron_block(const CsrMatrix<double>& a, const std::vector<double>& block,
                             index_t bs) {
  if (static_cast<index_t>(block.size()) != bs * bs)
    throw std::invalid_argument("kron_block: block size mismatch");
  CsrMatrix<double> out(a.nrows * bs, a.ncols * bs);
  const index_t bnnz = bs * bs;
  out.col_idx.resize(static_cast<std::size_t>(a.nnz()) * bnnz);
  out.vals.resize(static_cast<std::size_t>(a.nnz()) * bnnz);
  // row (i, r) has (row nnz of i) * bs entries
  for (index_t i = 0; i < a.nrows; ++i) {
    const index_t rn = a.row_ptr[i + 1] - a.row_ptr[i];
    for (index_t r = 0; r < bs; ++r) out.row_ptr[i * bs + r + 1] = rn * bs;
  }
  for (index_t i = 0; i < out.nrows; ++i) out.row_ptr[i + 1] += out.row_ptr[i];
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(a.nrows); ++i) {
    for (index_t r = 0; r < bs; ++r) {
      index_t dst = out.row_ptr[i * bs + r];
      for (index_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
        const index_t j = a.col_idx[k];
        const double av = a.vals[k];
        for (index_t cc = 0; cc < bs; ++cc) {
          out.col_idx[dst] = j * bs + cc;
          out.vals[dst] = av * block[r * bs + cc];
          ++dst;
        }
      }
    }
  }
  return out;
}

const std::vector<ProblemSpec>& standin_catalog() {
  static const std::vector<ProblemSpec> specs = [] {
    std::vector<ProblemSpec> s;
    for (const auto& e : catalog()) s.push_back(e.spec);
    return s;
  }();
  return specs;
}

std::vector<std::string> symmetric_set() {
  std::vector<std::string> out;
  for (const auto& e : catalog())
    if (e.spec.symmetric) out.push_back(e.spec.paper_name);
  return out;
}

std::vector<std::string> nonsymmetric_set() {
  std::vector<std::string> out;
  for (const auto& e : catalog())
    if (!e.spec.symmetric) out.push_back(e.spec.paper_name);
  return out;
}

const ProblemSpec& find_spec(const std::string& paper_name) {
  for (const auto& e : catalog())
    if (e.spec.paper_name == paper_name) return e.spec;
  throw std::invalid_argument("unknown problem: " + paper_name);
}

Problem make_problem(const std::string& paper_name, int scale) {
  for (const auto& e : catalog())
    if (e.spec.paper_name == paper_name) return {e.spec, e.make(scale)};
  throw std::invalid_argument("unknown problem: " + paper_name);
}

}  // namespace nk::gen
