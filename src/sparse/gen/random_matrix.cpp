#include "sparse/gen/random_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "base/rng.hpp"
#include "sparse/coo_builder.hpp"

namespace nk::gen {

CsrMatrix<double> random_sparse(const RandomOptions& opt) {
  if (opt.n <= 0) throw std::invalid_argument("random_sparse: n must be positive");
  Xoshiro256 rng(opt.seed);
  const index_t n = opt.n;

  // Draw off-diagonal pattern row by row.
  std::vector<std::set<index_t>> pattern(n);
  const double p_entry = opt.avg_nnz_per_row;
  for (index_t i = 0; i < n; ++i) {
    const int cnt = static_cast<int>(p_entry / (opt.symmetric ? 2.0 : 1.0) + rng.uniform());
    for (int c = 0; c < cnt; ++c) {
      index_t j = static_cast<index_t>(rng.uniform_index(static_cast<std::uint64_t>(n)));
      if (j == i) continue;
      pattern[i].insert(j);
      if (opt.symmetric) pattern[j].insert(i);
    }
  }

  CooBuilder b(n, n);
  std::vector<double> rowsum(n, 0.0);
  // Values: symmetric case draws once per unordered pair.
  std::map<std::pair<index_t, index_t>, double> symval;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j : pattern[i]) {
      double v;
      if (opt.symmetric) {
        const auto key = std::minmax(i, j);
        auto it = symval.find({key.first, key.second});
        if (it == symval.end()) {
          v = rng.uniform(opt.value_lo, opt.value_hi);
          symval[{key.first, key.second}] = v;
        } else {
          v = it->second;
        }
      } else {
        v = rng.uniform(opt.value_lo, opt.value_hi);
      }
      b.add(i, j, v);
      rowsum[i] += std::abs(v);
    }
  }
  for (index_t i = 0; i < n; ++i) {
    const double d = opt.dominance * std::max(rowsum[i], 1e-3);
    b.add(i, i, d);
  }
  return b.to_csr();
}

CsrMatrix<double> random_spd(index_t n, double density, double shift, std::uint64_t seed) {
  if (n <= 0) throw std::invalid_argument("random_spd: n must be positive");
  Xoshiro256 rng(seed);
  // Sparse lower-triangular factor B with unit diagonal.
  std::vector<std::vector<std::pair<index_t, double>>> bl(n);
  for (index_t i = 0; i < n; ++i) {
    bl[i].emplace_back(i, 1.0);
    for (index_t j = 0; j < i; ++j)
      if (rng.uniform() < density) bl[i].emplace_back(j, rng.uniform(-0.5, 0.5));
    std::sort(bl[i].begin(), bl[i].end());
  }
  // A = B Bᵀ + shift I, assembled densely per row pair on the B pattern.
  CooBuilder cb(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) {
      // dot of sparse rows i and j of B
      double s = 0.0;
      std::size_t pi = 0, pj = 0;
      while (pi < bl[i].size() && pj < bl[j].size()) {
        if (bl[i][pi].first < bl[j][pj].first) ++pi;
        else if (bl[i][pi].first > bl[j][pj].first) ++pj;
        else { s += bl[i][pi].second * bl[j][pj].second; ++pi; ++pj; }
      }
      if (i == j) {
        cb.add(i, i, s + shift);
      } else if (s != 0.0) {
        cb.add(i, j, s);
        cb.add(j, i, s);
      }
    }
  }
  return cb.to_csr();
}

CsrMatrix<double> random_circuit(index_t n, index_t max_degree, double dominance,
                                 std::uint64_t seed) {
  if (n <= 1) throw std::invalid_argument("random_circuit: n must be > 1");
  Xoshiro256 rng(seed);
  std::vector<std::set<index_t>> pattern(n);
  // Preferential attachment: node i connects to ~2 earlier nodes chosen with
  // probability proportional to an earlier node's current degree + 1.
  std::vector<index_t> targets;  // multiset encoded as repeated entries
  targets.reserve(static_cast<std::size_t>(n) * 3);
  targets.push_back(0);
  for (index_t i = 1; i < n; ++i) {
    const int links = 1 + static_cast<int>(rng.uniform_index(2));
    for (int l = 0; l < links; ++l) {
      index_t j = targets[rng.uniform_index(targets.size())];
      if (j == i) j = (i + 1) % n == i ? 0 : static_cast<index_t>((i + 1) % n);
      if (j != i && static_cast<index_t>(pattern[j].size()) < max_degree) {
        pattern[i].insert(j);
        pattern[j].insert(i);
        targets.push_back(j);
      }
    }
    targets.push_back(i);
  }
  CooBuilder b(n, n);
  std::vector<double> rowsum(n, 0.0);
  for (index_t i = 0; i < n; ++i)
    for (index_t j : pattern[i])
      if (j < i) {  // one draw per edge; slight asymmetry in values
        const double v = rng.uniform(-1.0, -0.01);
        const double w = v * rng.uniform(0.8, 1.2);
        b.add(i, j, v);
        b.add(j, i, w);
        rowsum[i] += std::abs(v);
        rowsum[j] += std::abs(w);
      }
  for (index_t i = 0; i < n; ++i) b.add(i, i, dominance * std::max(rowsum[i], 0.1));
  return b.to_csr();
}

}  // namespace nk::gen
