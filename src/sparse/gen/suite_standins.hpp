// SuiteSparse stand-in catalog (Table 2 of the paper).
//
// The paper evaluates on 31 matrices: SuiteSparse entries plus HPCG and
// HPGMP stencils.  The SuiteSparse collection is not available offline, so
// for every paper matrix we provide a *stand-in* from the same structure
// class (SPD diffusion, 3-D elasticity-like block SPD, nonsymmetric
// convection–diffusion, circuit-like irregular, hard convection-dominated)
// at sizes scaled to a single node.  HPCG/HPGMP matrices are generated
// exactly.  See DESIGN.md §4 for the substitution rationale; EXPERIMENTS.md
// records which stand-in replaced which matrix.
//
// Each catalog entry also carries the paper's diagonal-boost factors
// α_ILU / α_AINV (Table 2) which the preconditioner construction applies.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace nk::gen {

struct ProblemSpec {
  std::string paper_name;     ///< name in Table 2, e.g. "ecology2"
  std::string standin;        ///< short description of what we generate
  bool symmetric = true;
  double alpha_ilu = 1.0;     ///< Table 2 α_ILU
  double alpha_ainv = 1.0;    ///< Table 2 α_AINV
  bool exact = false;         ///< true when the generator IS the paper matrix (HPCG/HPGMP)
  bool hard = false;          ///< paper reports convergence failures of some solvers
};

struct Problem {
  ProblemSpec spec;
  CsrMatrix<double> a;        ///< generated matrix, NOT yet diagonally scaled
};

/// All Table 2 entries in paper order (symmetric set then nonsymmetric set).
const std::vector<ProblemSpec>& standin_catalog();

/// Names of the symmetric / nonsymmetric subsets (paper order).
std::vector<std::string> symmetric_set();
std::vector<std::string> nonsymmetric_set();

/// Look up a spec by paper name; throws std::invalid_argument if unknown.
const ProblemSpec& find_spec(const std::string& paper_name);

/// Generate the stand-in for `paper_name`.
///
/// `scale` multiplies the linear grid dimensions (scale=1 gives problems in
/// the 3·10^4 – 3·10^5 row range suitable for a laptop-class node; scale=2
/// is ~8x larger for 3-D problems).  HPCG/HPGMP names honour their encoded
/// log2 sizes when `scale == 0` (paper-exact sizes; large!).  Negative
/// scale shrinks: scale = -d divides the base grid dimension by d — the
/// conformance sweep's "mini" catalog, same structure classes at test
/// sizes.
Problem make_problem(const std::string& paper_name, int scale = 1);

/// Kronecker-product block expansion  A ⊗ M  used for elasticity-like
/// stand-ins: SPD A and SPD block M give an SPD result with
/// nnz/row = block² × (stencil nnz/row).
CsrMatrix<double> kron_block(const CsrMatrix<double>& a, const std::vector<double>& block,
                             index_t bs);

}  // namespace nk::gen
