#include "sparse/gen/stencil.hpp"

#include <sstream>
#include <stdexcept>

namespace nk::gen {

CsrMatrix<double> stencil27(const StencilOptions& opt) {
  const index_t nx = opt.nx, ny = opt.ny, nz = opt.nz;
  if (nx <= 0 || ny <= 0 || nz <= 0) throw std::invalid_argument("stencil27: bad grid size");
  const std::int64_t n64 = static_cast<std::int64_t>(nx) * ny * nz;
  if (n64 > std::int64_t{1} << 30) throw std::invalid_argument("stencil27: grid too large for 32-bit indices");
  const index_t n = static_cast<index_t>(n64);

  CsrMatrix<double> a(n, n);
  // First pass: count nnz per row (boundary rows have fewer neighbours).
#pragma omp parallel for schedule(static) collapse(2)
  for (std::ptrdiff_t z = 0; z < static_cast<std::ptrdiff_t>(nz); ++z)
    for (std::ptrdiff_t y = 0; y < static_cast<std::ptrdiff_t>(ny); ++y)
      for (index_t x = 0; x < nx; ++x) {
        const index_t row = static_cast<index_t>((z * ny + y) * nx + x);
        index_t cnt = 0;
        for (int dz = -1; dz <= 1; ++dz)
          for (int dy = -1; dy <= 1; ++dy)
            for (int dx = -1; dx <= 1; ++dx) {
              const std::ptrdiff_t xx = x + dx, yy = y + dy, zz = z + dz;
              if (xx >= 0 && xx < nx && yy >= 0 && yy < ny && zz >= 0 && zz < nz) ++cnt;
            }
        a.row_ptr[row + 1] = cnt;
      }
  for (index_t i = 0; i < n; ++i) a.row_ptr[i + 1] += a.row_ptr[i];
  a.col_idx.resize(a.row_ptr[n]);
  a.vals.resize(a.row_ptr[n]);

  // Second pass: fill entries in lexicographic (sorted) column order.
#pragma omp parallel for schedule(static) collapse(2)
  for (std::ptrdiff_t z = 0; z < static_cast<std::ptrdiff_t>(nz); ++z)
    for (std::ptrdiff_t y = 0; y < static_cast<std::ptrdiff_t>(ny); ++y)
      for (index_t x = 0; x < nx; ++x) {
        const index_t row = static_cast<index_t>((z * ny + y) * nx + x);
        index_t k = a.row_ptr[row];
        for (int dz = -1; dz <= 1; ++dz)
          for (int dy = -1; dy <= 1; ++dy)
            for (int dx = -1; dx <= 1; ++dx) {
              const std::ptrdiff_t xx = x + dx, yy = y + dy, zz = z + dz;
              if (xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 || zz >= nz) continue;
              const index_t col = static_cast<index_t>((zz * ny + yy) * nx + xx);
              double v;
              if (dx == 0 && dy == 0 && dz == 0) {
                v = opt.diag;
              } else if (dz > 0) {
                v = opt.off + opt.beta;  // forward along z
              } else if (dz < 0) {
                v = opt.off - opt.beta;  // backward along z
              } else {
                v = opt.off;
              }
              a.col_idx[k] = col;
              a.vals[k] = v;
              ++k;
            }
      }
  return a;
}

CsrMatrix<double> hpcg(int lx, int ly, int lz) {
  StencilOptions opt;
  opt.nx = index_t{1} << lx;
  opt.ny = index_t{1} << ly;
  opt.nz = index_t{1} << lz;
  return stencil27(opt);
}

CsrMatrix<double> hpgmp(int lx, int ly, int lz, double beta) {
  StencilOptions opt;
  opt.nx = index_t{1} << lx;
  opt.ny = index_t{1} << ly;
  opt.nz = index_t{1} << lz;
  opt.beta = beta;
  return stencil27(opt);
}

std::string stencil_name(const char* base, int lx, int ly, int lz) {
  std::ostringstream os;
  os << base << "_" << lx << "_" << ly << "_" << lz;
  return os.str();
}

}  // namespace nk::gen
