#include "sparse/gen/convdiff.hpp"

#include <cmath>
#include <stdexcept>

#include "sparse/coo_builder.hpp"

namespace nk::gen {

CsrMatrix<double> convdiff(const ConvDiffOptions& opt) {
  const index_t nx = opt.nx, ny = opt.ny, nz = opt.nz;
  if (nx <= 0 || ny <= 0 || nz <= 0) throw std::invalid_argument("convdiff: bad grid");
  const std::int64_t n64 = static_cast<std::int64_t>(nx) * ny * nz;
  if (n64 > std::int64_t{1} << 30)
    throw std::invalid_argument("convdiff: grid too large for 32-bit indices");
  const index_t n = static_cast<index_t>(n64);
  const double h = 1.0 / static_cast<double>(nx + 1);  // uniform mesh width
  const double d = opt.diffusion / (h * h);

  // Upwind: for velocity v >= 0 the flux couples to the upwind (-1)
  // neighbour; each axis contributes  (2d + |v|/h)  to the diagonal.
  auto up = [&](double v) { return -d - std::max(v, 0.0) / h; };
  auto down = [&](double v) { return -d - std::max(-v, 0.0) / h; };
  auto dia = [&](double v) { return 2.0 * d + std::abs(v) / h; };

  const bool threed = nz > 1;
  CooBuilder b(n, n);
  for (index_t z = 0; z < nz; ++z)
    for (index_t y = 0; y < ny; ++y)
      for (index_t x = 0; x < nx; ++x) {
        const index_t row = (z * ny + y) * nx + x;
        double diag = dia(opt.vx) + dia(opt.vy) + (threed ? dia(opt.vz) : 0.0);
        b.add(row, row, diag);
        if (x > 0) b.add(row, row - 1, up(opt.vx));
        if (x + 1 < nx) b.add(row, row + 1, down(opt.vx));
        if (y > 0) b.add(row, row - nx, up(opt.vy));
        if (y + 1 < ny) b.add(row, row + nx, down(opt.vy));
        if (threed) {
          if (z > 0) b.add(row, row - nx * ny, up(opt.vz));
          if (z + 1 < nz) b.add(row, row + nx * ny, down(opt.vz));
        }
      }
  return b.to_csr();
}

}  // namespace nk::gen
