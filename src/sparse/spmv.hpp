// Sparse matrix-vector products over CSR, including the mixed-precision
// variants the paper relies on:
//
//   * fp64 A × fp64 x   — outermost FGMRES level
//   * fp32 A × fp32 x   — second FGMRES level
//   * fp16 A × fp32 x   — third FGMRES level ("F^m3 performs SpMV in fp32
//                          because A is stored in fp16 while the input
//                          Arnoldi basis is in fp32")
//   * fp16 A × fp16 x   — innermost Richardson
//
// The accumulation type defaults to the promoted input type, i.e. a pure
// fp16 product accumulates in fp16 exactly as native fp16 FMA hardware
// would (GCC rounds each _Float16 operation to binary16).
#pragma once

#include <span>

#include "base/blas1.hpp"
#include "sparse/csr.hpp"

namespace nk {

namespace detail {

/// Dot of one CSR row with a gathered vector, accumulating in Acc.
///
/// The half→float fast path matters: a naive `(float)v[k] * x[ci[k]]` loop
/// emits scalar `vcvtsh2ss` whose destination-register merge creates a
/// false serial dependency across iterations (~2x slower than fp64!).
/// Converting a 16-value chunk first (vectorizable `vcvtph2ps`) and
/// accumulating into four independent partial sums breaks the chain.
template <class MT, class XT, class Acc>
inline Acc row_dot(const MT* __restrict v, const index_t* __restrict ci,
                   const XT* __restrict x, index_t begin, index_t end) {
  if constexpr (sizeof(MT) == 2 && !std::is_same_v<Acc, MT>) {
    Acc vf[16];
    Acc s0{0}, s1{0}, s2{0}, s3{0};
    index_t k = begin;
    for (; k + 16 <= end; k += 16) {
      if constexpr (std::is_same_v<Acc, float>)
        half_to_float_n(v + k, vf, 16);  // GCC can't vectorize this loop itself
      else
        for (int j = 0; j < 16; ++j) vf[j] = static_cast<Acc>(v[k + j]);
      for (int j = 0; j < 16; j += 4) {
        s0 += vf[j] * static_cast<Acc>(x[ci[k + j]]);
        s1 += vf[j + 1] * static_cast<Acc>(x[ci[k + j + 1]]);
        s2 += vf[j + 2] * static_cast<Acc>(x[ci[k + j + 2]]);
        s3 += vf[j + 3] * static_cast<Acc>(x[ci[k + j + 3]]);
      }
    }
    for (; k + 4 <= end; k += 4) {
      s0 += static_cast<Acc>(v[k]) * static_cast<Acc>(x[ci[k]]);
      s1 += static_cast<Acc>(v[k + 1]) * static_cast<Acc>(x[ci[k + 1]]);
      s2 += static_cast<Acc>(v[k + 2]) * static_cast<Acc>(x[ci[k + 2]]);
      s3 += static_cast<Acc>(v[k + 3]) * static_cast<Acc>(x[ci[k + 3]]);
    }
    for (; k < end; ++k) s0 += static_cast<Acc>(v[k]) * static_cast<Acc>(x[ci[k]]);
    return (s0 + s1) + (s2 + s3);
  } else {
    Acc s{0};
    for (index_t k = begin; k < end; ++k)
      s += static_cast<Acc>(v[k]) * static_cast<Acc>(x[ci[k]]);
    return s;
  }
}

}  // namespace detail

/// y = A x.
template <class MT, class XT, class YT, class Acc = promote_t<MT, XT>>
void spmv(const CsrMatrix<MT>& a, std::span<const XT> x, std::span<YT> y) {
  const std::ptrdiff_t n = a.nrows;
  const std::ptrdiff_t work = a.nnz();
  const index_t* __restrict rp = a.row_ptr.data();
  const index_t* __restrict ci = a.col_idx.data();
  const MT* __restrict v = a.vals.data();
  const XT* __restrict xp = x.data();
  YT* __restrict yp = y.data();
#pragma omp parallel for schedule(static) if (work > blas::parallel_threshold())
  for (std::ptrdiff_t i = 0; i < n; ++i)
    yp[i] = static_cast<YT>(detail::row_dot<MT, XT, Acc>(v, ci, xp, rp[i], rp[i + 1]));
}

/// y = b - A x  (fused residual; saves one pass over y).
template <class MT, class XT, class BT, class YT, class Acc = promote_t<promote_t<MT, XT>, BT>>
void residual(const CsrMatrix<MT>& a, std::span<const XT> x, std::span<const BT> b,
              std::span<YT> y) {
  const std::ptrdiff_t n = a.nrows;
  const std::ptrdiff_t work = a.nnz();
  const index_t* __restrict rp = a.row_ptr.data();
  const index_t* __restrict ci = a.col_idx.data();
  const MT* __restrict v = a.vals.data();
  const XT* __restrict xp = x.data();
  const BT* __restrict bp = b.data();
  YT* __restrict yp = y.data();
#pragma omp parallel for schedule(static) if (work > blas::parallel_threshold())
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const Acc s = detail::row_dot<MT, XT, Acc>(v, ci, xp, rp[i], rp[i + 1]);
    yp[i] = static_cast<YT>(static_cast<Acc>(bp[i]) - s);
  }
}

/// ‖b - A x‖₂ / ‖b‖₂ computed entirely in fp64 — the paper's convergence
/// criterion, evaluated at the outermost level only.
template <class MT, class XT>
double relative_residual(const CsrMatrix<MT>& a, std::span<const XT> x,
                         std::span<const double> b) {
  const std::ptrdiff_t n = a.nrows;
  const std::ptrdiff_t work = a.nnz();
  const index_t* __restrict rp = a.row_ptr.data();
  const index_t* __restrict ci = a.col_idx.data();
  const MT* __restrict v = a.vals.data();
  double rr = 0.0, bb = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : rr, bb) if (work > blas::parallel_threshold())
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    double s = b[i];
    for (index_t k = rp[i]; k < rp[i + 1]; ++k)
      s -= static_cast<double>(v[k]) * static_cast<double>(x[ci[k]]);
    rr += s * s;
    bb += b[i] * b[i];
  }
  return bb == 0.0 ? std::sqrt(rr) : std::sqrt(rr / bb);
}

}  // namespace nk
