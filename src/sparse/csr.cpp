// Explicit instantiations of the CSR templates for the three library
// precisions, keeping duplicate codegen out of every translation unit.
#include "sparse/csr.hpp"

namespace nk {

template struct CsrMatrix<double>;
template struct CsrMatrix<float>;
template struct CsrMatrix<half>;

template CsrMatrix<double> cast_matrix<double, double>(const CsrMatrix<double>&);
template CsrMatrix<float> cast_matrix<float, double>(const CsrMatrix<double>&);
template CsrMatrix<half> cast_matrix<half, double>(const CsrMatrix<double>&);
template CsrMatrix<half> cast_matrix<half, float>(const CsrMatrix<float>&);
template CsrMatrix<float> cast_matrix<float, half>(const CsrMatrix<half>&);
template CsrMatrix<double> cast_matrix<double, float>(const CsrMatrix<float>&);
template CsrMatrix<double> cast_matrix<double, half>(const CsrMatrix<half>&);

template CsrMatrix<double> transpose<double>(const CsrMatrix<double>&);
template CsrMatrix<float> transpose<float>(const CsrMatrix<float>&);
template CsrMatrix<half> transpose<half>(const CsrMatrix<half>&);

template bool is_symmetric<double>(const CsrMatrix<double>&, double);
template bool is_symmetric<float>(const CsrMatrix<float>&, double);

}  // namespace nk
