#include "sparse/coo_builder.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace nk {

void CooBuilder::add(index_t i, index_t j, double v) {
  if (i < 0 || i >= nrows_ || j < 0 || j >= ncols_)
    throw std::out_of_range("CooBuilder::add: index out of range");
  is_.push_back(i);
  js_.push_back(j);
  vs_.push_back(v);
}

CsrMatrix<double> CooBuilder::to_csr() const {
  const std::size_t m = is_.size();
  std::vector<std::size_t> perm(m);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    if (is_[a] != is_[b]) return is_[a] < is_[b];
    return js_[a] < js_[b];
  });

  CsrMatrix<double> out(nrows_, ncols_);
  out.col_idx.reserve(m);
  out.vals.reserve(m);
  index_t prev_i = -1, prev_j = -1;
  for (std::size_t p = 0; p < m; ++p) {
    const std::size_t k = perm[p];
    const index_t i = is_[k], j = js_[k];
    if (i == prev_i && j == prev_j) {
      out.vals.back() += vs_[k];  // duplicate: accumulate
    } else {
      out.col_idx.push_back(j);
      out.vals.push_back(vs_[k]);
      ++out.row_ptr[i + 1];
      prev_i = i;
      prev_j = j;
    }
  }
  for (index_t i = 0; i < nrows_; ++i) out.row_ptr[i + 1] += out.row_ptr[i];
  return out;
}

}  // namespace nk
