// Explicit instantiations of the sliced-ELLPACK conversion for the three
// library precisions.
#include "sparse/sell.hpp"

namespace nk {

template SellMatrix<double> csr_to_sell<double>(const CsrMatrix<double>&, int);
template SellMatrix<float> csr_to_sell<float>(const CsrMatrix<float>&, int);
template SellMatrix<half> csr_to_sell<half>(const CsrMatrix<half>&, int);

}  // namespace nk
