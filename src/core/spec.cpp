#include "core/spec.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/registry.hpp"

namespace nk {

namespace {

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Shortest round-trip decimal rendering of a double ("1e-08", "0.25").
std::string fmt_double(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

int parse_int_opt(const std::string& key, const std::string& value, int lo) {
  int v = 0;
  const auto res = std::from_chars(value.data(), value.data() + value.size(), v);
  if (res.ec != std::errc{} || res.ptr != value.data() + value.size())
    throw SpecError("bad integer '" + value + "' for spec option " + key);
  if (v < lo)
    throw SpecError("out-of-range value '" + value + "' for spec option " + key);
  return v;
}

double parse_double_opt(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(value, &pos);
  } catch (const std::exception&) {
    throw SpecError("bad number '" + value + "' for spec option " + key);
  }
  if (pos != value.size())
    throw SpecError("bad number '" + value + "' for spec option " + key);
  return v;
}

Prec parse_prec_token(const std::string& tok) {
  try {
    return parse_prec(tok);
  } catch (const std::invalid_argument&) {
    throw SpecError("bad precision token '" + tok + "' (expected fp64|fp32|fp16)");
  }
}

/// Shared by the ":NAME" head suffix and the ";backend=" option; a backend
/// may be named at most once per spec, whichever spelling is used.
void set_backend_token(const std::string& tok, SolverSpec* s) {
  const auto be = parse_backend(tok);
  if (!be.has_value())
    throw SpecError("unknown backend '" + tok + "' in spec (known: " +
                    std::string(backend_names()) + ")");
  if (s->backend.has_value())
    throw SpecError("backend given twice in spec (':" + tok +
                    "' suffix and/or ';backend=')");
  s->backend = *be;
}

/// Split "name[@prec]"; empty name / empty precision are errors.
struct Token {
  std::string name;
  std::optional<Prec> prec;
};

Token split_token(const std::string& text, const char* what) {
  Token t;
  const auto at = text.find('@');
  t.name = text.substr(0, at);
  if (t.name.empty()) throw SpecError(std::string("empty ") + what + " kind in spec");
  if (at != std::string::npos) {
    const std::string p = text.substr(at + 1);
    if (p.find('@') != std::string::npos)
      throw SpecError("more than one '@' in spec token '" + text + "'");
    t.prec = parse_prec_token(p);
  }
  return t;
}

struct Option {
  std::string key;
  std::string value;  ///< empty for bare flags
  bool has_value = false;
};

/// Split the option tail "k1=v1;k2;..." (already stripped of the head).
std::vector<Option> split_options(const std::string& tail) {
  std::vector<Option> out;
  std::size_t pos = 0;
  while (pos <= tail.size()) {
    const auto sep = tail.find(';', pos);
    const std::string piece =
        tail.substr(pos, sep == std::string::npos ? std::string::npos : sep - pos);
    if (piece.empty()) throw SpecError("empty option in spec (stray ';')");
    Option o;
    const auto eq = piece.find('=');
    if (eq == std::string::npos) {
      o.key = piece;
    } else {
      o.key = piece.substr(0, eq);
      o.value = piece.substr(eq + 1);
      o.has_value = true;
      if (o.key.empty() || o.value.empty())
        throw SpecError("malformed option '" + piece + "' in spec");
    }
    out.push_back(std::move(o));
    if (sep == std::string::npos) break;
    pos = sep + 1;
  }
  return out;
}

std::string require_value(const Option& o) {
  if (!o.has_value) throw SpecError("spec option '" + o.key + "' needs a value");
  return o.value;
}

void require_flag(const Option& o) {
  if (o.has_value) throw SpecError("spec option '" + o.key + "' takes no value");
}

/// Apply one option to (solver, precond); keys are namespaced by name, so a
/// single tail serves both halves of a full spec string.
void apply_option(const Option& o, SolverSpec* s, PrecondSpec* pc) {
  if (s != nullptr) {
    if (o.key == "rtol") {
      s->rtol = parse_double_opt(o.key, require_value(o));
      return;
    }
    if (o.key == "max-iters") {
      s->max_iters = parse_int_opt(o.key, require_value(o), 1);
      return;
    }
    if (o.key == "restarts") {
      s->max_restarts = parse_int_opt(o.key, require_value(o), 0);
      return;
    }
    if (o.key == "wave") {
      s->wave = parse_int_opt(o.key, require_value(o), 0);
      return;
    }
    if (o.key == "masked") {
      require_flag(o);
      s->compact = false;
      return;
    }
    if (o.key == "nohist") {
      require_flag(o);
      s->record_history = false;
      return;
    }
    if (o.key == "layout") {
      const std::string v = require_value(o);
      const auto l = parse_panel_layout(v);
      if (!l.has_value())
        throw SpecError("bad value '" + v +
                        "' for spec option layout (expected rowmajor|colmajor)");
      s->layout = *l;
      return;
    }
    if (o.key == "stagnate-window") {
      s->stagnate_window = parse_int_opt(o.key, require_value(o), 0);
      return;
    }
    if (o.key == "backend") {
      set_backend_token(require_value(o), s);
      return;
    }
    if (o.key == "fallback") {
      // Comma-separated precision ladder, e.g. "fallback=fp32,fp64".
      const std::string v = require_value(o);
      s->fallback.clear();
      std::size_t pos = 0;
      while (pos <= v.size()) {
        const auto comma = v.find(',', pos);
        const std::string piece =
            v.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (piece.empty())
          throw SpecError("empty precision in spec option fallback ('" + v + "')");
        s->fallback.push_back(parse_prec_token(piece));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      return;
    }
  }
  if (o.key == "nblocks") {
    pc->nblocks = parse_int_opt(o.key, require_value(o), 0);
    return;
  }
  if (o.key == "omega") {
    pc->omega = parse_double_opt(o.key, require_value(o));
    return;
  }
  if (o.key == "degree") {
    pc->degree = parse_int_opt(o.key, require_value(o), 0);
    return;
  }
  if (o.key == "inject") {
    pc->inject = require_value(o);
    return;
  }
  if (o.key == "inner") {
    pc->inner = require_value(o);
    return;
  }
  throw SpecError(
      "unknown spec option '" + o.key +
      (s != nullptr
           ? "' (solver: rtol max-iters restarts wave masked nohist layout "
             "stagnate-window fallback backend; "
             "preconditioner: nblocks omega degree inject inner)"
           : "' (preconditioner options: nblocks omega degree inject inner)"));
}

void resolve_precond_kind(const Token& tok, PrecondSpec* out) {
  if (registry().precond_info(tok.name) == nullptr) {
    std::ostringstream os;
    os << "unknown preconditioner kind '" << tok.name << "' (registered:";
    for (const auto& k : registry().precond_kinds()) os << " " << k;
    os << ")";
    throw SpecError(os.str());
  }
  out->kind = tok.name;
  out->storage = tok.prec;
}

/// Resolve a solver token name: exact registered kind, else trailing
/// digits as m, else an "fpNN-" legacy prefix as the precision axis.
void resolve_solver_kind(const Token& tok, SolverSpec* out) {
  const Registry& reg = registry();
  std::string name = tok.name;
  std::optional<Prec> prec = tok.prec;
  int m = 0;

  if (reg.solver_info(name) == nullptr) {
    // "fp16-f3r" → prec fp16, rest "f3r" (only when the full name is not
    // itself a registered kind — "fp16-f2" IS one).
    if (name.size() > 5 && name[0] == 'f' && name[1] == 'p' && name[4] == '-') {
      const std::string prefix = name.substr(0, 4);
      if (prefix == "fp64" || prefix == "fp32" || prefix == "fp16") {
        if (prec.has_value())
          throw SpecError("precision given twice in solver token '" + tok.name + "'");
        prec = parse_prec_token(prefix);
        name = name.substr(5);
      }
    }
  }
  if (reg.solver_info(name) == nullptr) {
    // "fgmres64" → kind "fgmres", m 64.
    std::size_t d = name.size();
    while (d > 0 && std::isdigit(static_cast<unsigned char>(name[d - 1]))) --d;
    if (d > 0 && d < name.size() && reg.solver_info(name.substr(0, d)) != nullptr) {
      m = parse_int_opt("m", name.substr(d), 1);
      name = name.substr(0, d);
    }
  }
  const SolverKindInfo* info = reg.solver_info(name);
  if (info == nullptr) {
    std::ostringstream os;
    os << "unknown solver kind '" << tok.name << "' (registered:";
    for (const auto& k : reg.solver_kinds()) os << " " << k;
    os << ")";
    throw SpecError(os.str());
  }
  if (m != 0 && !info->takes_m)
    throw SpecError("solver kind '" + name + "' does not take an iteration count ('" +
                    tok.name + "')");
  if (prec.has_value() && !info->takes_prec)
    throw SpecError("solver kind '" + name + "' has fixed precisions (no @prec)");
  out->kind = name;
  out->m = m;
  out->prec = prec.value_or(Prec::FP64);
}

}  // namespace

PrecondSpec PrecondSpec::parse(const std::string& text) {
  const std::string s = lower(text);
  PrecondSpec out;
  const auto semi = s.find(';');
  const std::string head = s.substr(0, semi);
  if (head.find('/') != std::string::npos)
    throw SpecError("'/' is not valid in a preconditioner spec: '" + text + "'");
  resolve_precond_kind(split_token(head, "preconditioner"), &out);
  if (semi != std::string::npos)
    for (const Option& o : split_options(s.substr(semi + 1)))
      apply_option(o, nullptr, &out);
  return out;
}

std::string PrecondSpec::to_string() const {
  std::string s = kind;
  if (storage.has_value()) s += std::string("@") + prec_name(*storage);
  const PrecondSpec def;
  if (nblocks != def.nblocks) s += ";nblocks=" + std::to_string(nblocks);
  if (omega != def.omega) s += ";omega=" + fmt_double(omega);
  if (degree != def.degree) s += ";degree=" + std::to_string(degree);
  if (!inject.empty()) s += ";inject=" + inject;
  if (!inner.empty()) s += ";inner=" + inner;
  return s;
}

SolverSpec SolverSpec::parse(const std::string& text) {
  const std::string s = lower(text);
  SolverSpec out;
  const auto semi = s.find(';');
  std::string head = s.substr(0, semi);

  // ":NAME" backend suffix on the head ("cg/jacobi@fp64:serial") — the
  // short spelling of ";backend=NAME"; giving both is rejected below.
  const auto colon = head.find(':');
  if (colon != std::string::npos) {
    const std::string be_tok = head.substr(colon + 1);
    if (be_tok.empty()) throw SpecError("empty backend after ':' in spec '" + text + "'");
    if (be_tok.find(':') != std::string::npos)
      throw SpecError("more than one ':' in spec '" + text + "'");
    set_backend_token(be_tok, &out);
    head.resize(colon);
  }

  const auto slash = head.find('/');
  const std::string solver_part = head.substr(0, slash);
  resolve_solver_kind(split_token(solver_part, "solver"), &out);
  if (slash != std::string::npos) {
    const std::string precond_part = head.substr(slash + 1);
    if (precond_part.find('/') != std::string::npos)
      throw SpecError("more than one '/' in spec '" + text + "'");
    resolve_precond_kind(split_token(precond_part, "preconditioner"), &out.precond);
  }
  if (semi != std::string::npos)
    for (const Option& o : split_options(s.substr(semi + 1)))
      apply_option(o, &out, &out.precond);
  return out;
}

std::string SolverSpec::to_string() const {
  std::string s = kind;
  if (m != 0) s += std::to_string(m);
  if (prec != Prec::FP64) s += std::string("@") + prec_name(prec);

  const PrecondSpec pdef;
  if (precond.kind != pdef.kind || precond.storage.has_value()) {
    s += "/" + precond.kind;
    if (precond.storage.has_value()) s += std::string("@") + prec_name(*precond.storage);
  }

  const SolverSpec def;
  if (rtol != def.rtol) s += ";rtol=" + fmt_double(rtol);
  if (max_iters != def.max_iters) s += ";max-iters=" + std::to_string(max_iters);
  if (max_restarts != def.max_restarts) s += ";restarts=" + std::to_string(max_restarts);
  if (!record_history) s += ";nohist";
  if (wave != def.wave) s += ";wave=" + std::to_string(wave);
  if (!compact) s += ";masked";
  if (layout.has_value()) s += std::string(";layout=") + panel_layout_name(*layout);
  if (stagnate_window != def.stagnate_window)
    s += ";stagnate-window=" + std::to_string(stagnate_window);
  if (!fallback.empty()) {
    s += ";fallback=";
    for (std::size_t i = 0; i < fallback.size(); ++i)
      s += std::string(i > 0 ? "," : "") + prec_name(fallback[i]);
  }
  // Canonical form is the option spelling; an unset backend emits nothing,
  // so pre-backend spec strings round-trip byte-identically.
  if (backend.has_value()) s += std::string(";backend=") + backend_name(*backend);
  if (precond.nblocks != pdef.nblocks) s += ";nblocks=" + std::to_string(precond.nblocks);
  if (precond.omega != pdef.omega) s += ";omega=" + fmt_double(precond.omega);
  if (precond.degree != pdef.degree) s += ";degree=" + std::to_string(precond.degree);
  if (!precond.inject.empty()) s += ";inject=" + precond.inject;
  if (!precond.inner.empty()) s += ";inner=" + precond.inner;
  return s;
}

SolverSpec parse_solver_spec(const std::string& text) { return SolverSpec::parse(text); }

PrecondSpec parse_precond_spec(const std::string& text) { return PrecondSpec::parse(text); }

namespace {

// The CLI front doors share the Options parser's error discipline:
// one line naming the flag and the offending value, then exit(2).
[[noreturn]] void die_bad_spec(const std::string& flag, const std::string& text,
                               const char* what) {
  std::cerr << "error: invalid spec '" << text << "' for --" << flag << ": " << what
            << "\n";
  std::exit(2);
}

}  // namespace

SolverSpec parse_solver_spec_cli(const std::string& flag, const std::string& text) {
  try {
    return SolverSpec::parse(text);
  } catch (const SpecError& e) {
    die_bad_spec(flag, text, e.what());
  }
}

PrecondSpec parse_precond_spec_cli(const std::string& flag, const std::string& text) {
  try {
    return PrecondSpec::parse(text);
  } catch (const SpecError& e) {
    die_bad_spec(flag, text, e.what());
  }
}

}  // namespace nk
