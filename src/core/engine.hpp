// The type-erased solver interface behind nk::Session.
//
// A SolverEngine is one fully described solver bound to a prepared problem
// and a primary preconditioner: the registry's factories build one from a
// SolverSpec, and Session drives it through the uniform solve() /
// solve_many() surface.  Engines defer all heavy per-solve construction
// (operator handles, typed apply handles, Krylov buffers) into the solve
// calls themselves, drawing buffers from the owning Session's workspace, so
// constructing an engine is cheap and repeated solves reuse memory.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "krylov/history.hpp"

namespace nk {

class SolverEngine {
 public:
  virtual ~SolverEngine() = default;

  /// Reporting name, e.g. "fp16-CG", "fp64-FGMRES(64)", "fp16-F3R".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Solve A x = b (x holds the initial guess, normally zero).  Fills the
  /// complete SolveResult: name, timing, invocation counters, true final
  /// relative residual.
  virtual SolveResult solve(std::span<const double> b, std::span<double> x) = 0;

  /// Batched solve: k right-hand sides, column c of B/X contiguous at
  /// offset c·n.  Kinds with a batched kernel path (cg, bicgstab, the
  /// nested tuples) share every matrix/factor sweep across the batch and
  /// stay per-column bit-identical to solve(); the remaining kinds run the
  /// columns sequentially through solve() with shared setup.
  virtual std::vector<SolveResult> solve_many(std::span<const double> B,
                                              std::span<double> X, int k) = 0;
};

}  // namespace nk
