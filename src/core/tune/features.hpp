// Layer 1 of the autotuner (core/tune/): feature extraction.
//
// TuneFeatures is the structural record every later layer keys on: the
// cost-model shortlist reads size/density/symmetry, the @fp16 gate reads
// the overflow fraction of the SCALED matrix, and the CSR-vs-SELL
// recommendation reads the row-length variance (SELL pads every row of a
// chunk to the chunk maximum — uniform rows make it free, ragged rows make
// it pay pure padding).  Extraction is one nk::analyze() pass (O(nnz) plus
// a transpose) over the prepared fp64 matrix — cheap next to a
// preconditioner factorization, and cached behind the perf-DB anyway.
#pragma once

#include <cstdint>
#include <string>

#include "core/problem.hpp"
#include "sparse/stats.hpp"

namespace nk::tune {

struct TuneFeatures {
  index_t n = 0;
  index_t nnz = 0;
  double nnz_per_row = 0.0;
  /// The prepared problem's symmetry CLAIM (what the solve will assume) —
  /// not re-derived from the values, so a matrix solved "as general"
  /// shortlists BiCGStab/FGMRES even if its values happen to be symmetric.
  bool symmetric = false;
  double diag_dominance_min = 0.0;
  /// Fraction of scaled values outside binary16 range: any overflow at all
  /// gates every @fp16 candidate out of the shortlist.
  double fp16_overflow_fraction = 0.0;
  index_t bandwidth = 0;
  double row_nnz_stddev = 0.0;
  /// What the prepared problem already stores (format is fixed at
  /// preparation time; the tuner can only RECOMMEND the other one).
  bool uses_sell = false;
  /// Perf-DB key (core/fingerprint.hpp); recomputed when the problem was
  /// hand-assembled with fingerprint 0.
  std::uint64_t fingerprint = 0;
};

/// Extract features from a prepared problem (one analyze() pass).
TuneFeatures extract_features(const PreparedProblem& p);

/// The format recommendation derived from row-length variance: true when
/// rows are uniform enough (stddev <= ~10% of the mean row length) that
/// sliced-ELLPACK padding is near-free and its SIMD sweeps win.
[[nodiscard]] bool prefers_sell(const TuneFeatures& f);

/// One-line rendering for logs and the --list/--explain surfaces.
std::string features_summary(const TuneFeatures& f);

}  // namespace nk::tune
