// Layer 3 of the autotuner: probe solves and the "auto" meta-engine.
//
// The cost model ranks candidates by modeled memory accesses per primary-M
// application, but it cannot know each candidate's CONVERGENCE RATE on
// this matrix — that is what the probes measure.  tune() runs a budget of
// short, capped solves (NKRYLOV_TUNE_PROBES, default 4; 0 = model-only)
// over the top of the shortlist, all against the problem's own RHS and all
// drawing buffers from ONE shared SolverWorkspace (sequential engine
// rebuild reuses the slabs — the Session fallback ladder's trick), and
// scores them in MODELED WORK, never wall-clock:
//
//   converged probe:  work  = precond_invocations x unit_cost   (less wins)
//   capped probe:     rate  = residual digits gained / work     (more wins)
//
// so a tuning run is deterministic for a fixed thread count and never
// rewards a machine's momentary load.  The winner's minimal spec is
// written to the fingerprint-keyed perf-DB (perf_db.hpp); the next
// Session("auto") on the same matrix skips the probes entirely.
//
// Session("auto") reaches this layer through the registered meta-kind:
// make_auto_engine tunes at construction, delegates every solve to the
// chosen engine, and — because a DB entry is advisory, not a guarantee —
// escalates through the remaining ranked candidates if a solve fails.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/tune/shortlist.hpp"

namespace nk::tune {

/// Outcome of one tuning run (exposed for tests and the CLI surfaces).
struct TuneResult {
  /// Winning minimal spec: kind / precision axis / m / precond kind only —
  /// termination, batching, and backend stay whatever the caller set.
  SolverSpec chosen;
  /// The full model ranking (ascending unit cost), for escalation.
  std::vector<Candidate> ranked;
  TuneFeatures features;
  bool db_hit = false;  ///< chosen came from the perf-DB, probes skipped
  int probes_run = 0;
  std::string log;      ///< human-readable reasoning trail
};

/// Tune `p`: features -> perf-DB lookup -> (on miss) shortlist + probes.
/// `rtol` is the caller's convergence target (probes stop there); `ws` is
/// the workspace probes draw slabs from — nullptr skips the probes and
/// falls back to the pure model ranking.
TuneResult tune(const PreparedProblem& p, const Constraints& c, double rtol,
                SolverWorkspace* ws);

/// Factory behind the registered "auto" kind (core/engines.cpp).  `spec`
/// is the user's auto spec: its '@prec' (when not fp64) and non-default
/// '/precond' become shortlist pins, its option tail is copied onto the
/// winner.  `m` is the Session-minted default preconditioner, reused
/// whenever the winner wants the same one.
std::unique_ptr<SolverEngine> make_auto_engine(const SolverSpec& spec,
                                               const PreparedProblem& p,
                                               std::shared_ptr<PrimaryPrecond> m,
                                               SolverWorkspace* ws);

}  // namespace nk::tune
