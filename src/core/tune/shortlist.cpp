#include "core/tune/shortlist.hpp"

#include <algorithm>
#include <sstream>

#include "core/cost_model.hpp"

namespace nk::tune {

namespace {

/// Access constant of A's values at `pr` (indices stay 32-bit).
double ca_at(const TuneFeatures& f, Prec pr) {
  return access_constant(f.nnz_per_row, prec_bytes(pr));
}

/// Access constant of one M application at storage precision `pr`.
/// Jacobi touches one diagonal value per row; the ILU(0)/IC(0) factors of
/// "bj" carry the sparsity of A itself (level-0 fill), so their sweep
/// streams nnz/row values per row like a SpMV.
double cm_at(const TuneFeatures& f, const std::string& precond, Prec pr) {
  if (precond == "jacobi") return access_constant(1.0, prec_bytes(pr));
  return access_constant(f.nnz_per_row, prec_bytes(pr));
}

/// F3R's inner-chain shape below the fp64 outer level (core/f3r.hpp's
/// Table 1 configuration): FGMRES(8) . FGMRES(4) . Richardson(2), with the
/// matrix stored at fp32 / the spec's lowest precision going inward.  One
/// outer iteration applies the primary preconditioner 8*4*2 = 64 times.
constexpr int kF3rInnerApplies = 8 * 4 * 2;

double unit_cost_f3r(const TuneFeatures& f, Prec lowest, const std::string& precond) {
  // Inner chain priced at its dominant storage precisions: the F^8 level
  // streams fp32 values, the F^4/R^2 levels stream `lowest`.
  const double ca32 = ca_at(f, Prec::FP32);
  const double ca_low = ca_at(f, lowest);
  const double cm_low = cm_at(f, precond, lowest);
  const std::vector<LevelCost> tail = {{'F', 4}, {'R', 2}};
  // Equation (2) composed by hand so the two inner precisions can differ:
  // O(F^8, tail) = ca32*8 + O(tail)*8 + 2.5*64.
  const double tail_cost = cost_nested(ca_low, cm_low, tail);
  const double chain = ca32 * 8.0 + tail_cost * 8.0 + 2.5 * 64.0;
  // One fp64 outer FGMRES(100) iteration around it: one fp64 SpMV plus the
  // amortized orthogonalization (2.5*m per iteration at m = 100).
  const double outer = ca_at(f, Prec::FP64) + 2.5 * 100.0;
  return (outer + chain) / static_cast<double>(kF3rInnerApplies);
}

}  // namespace

double unit_cost(const TuneFeatures& f, const SolverSpec& spec) {
  const Prec mstore = spec.precond.storage.value_or(spec.prec);
  const double ca64 = ca_at(f, Prec::FP64);
  const double cm = cm_at(f, spec.precond.kind, mstore);
  if (spec.kind == "cg")
    // Per iteration: one fp64 SpMV, one M apply, ~10 vector streams.
    return ca64 + cm + 10.0;
  if (spec.kind == "bicgstab")
    // Two SpMVs + two M applies + ~13 vector streams per iteration,
    // over two M applications.
    return ca64 + cm + 6.5;
  if (spec.kind == "fgmres") {
    const int m = spec.m > 0 ? spec.m : 64;
    return cost_fgmres(ca64, cm, m) / static_cast<double>(m);
  }
  if (spec.kind == "ir-gmres") {
    const int m = spec.m > 0 ? spec.m : 8;
    // Inner GMRES(m) entirely at the working precision, one fp64 residual
    // SpMV per refinement cycle amortized over its m M applications.
    const double ca_in = ca_at(f, spec.prec);
    const double cm_in = cm_at(f, spec.precond.kind, mstore);
    return (cost_fgmres(ca_in, cm_in, m) + ca64) / static_cast<double>(m);
  }
  if (spec.kind == "f3r") return unit_cost_f3r(f, spec.prec, spec.precond.kind);
  // Unknown kind: price it like CG so a registered-but-unmodeled kind can
  // still be probed by an explicit pin rather than rejected.
  return ca64 + cm + 10.0;
}

namespace {

std::vector<Candidate> build_list(const TuneFeatures& f, const Constraints& c,
                                  bool honor_fp16_gate) {
  // Gates, each with its reasoning recorded on the candidates it shapes.
  const bool fp16_ok = !honor_fp16_gate || f.fp16_overflow_fraction <= 0.0;
  const bool jacobi_ok = f.diag_dominance_min >= 0.5;
  // An explicit '/precond' on the auto spec replaces the default "bj" in
  // every candidate (and suppresses the jacobi alternatives).
  const bool pinned_precond = !c.pin_precond.empty();
  const std::string bj = pinned_precond ? c.pin_precond : "bj";

  const auto prec_ok = [&](Prec pr) {
    if (c.pin_prec.has_value() && pr != *c.pin_prec) return false;
    return pr != Prec::FP16 || fp16_ok;
  };

  std::vector<Candidate> out;
  const auto add = [&](const std::string& kind, Prec pr, int m,
                       const std::string& precond, const std::string& gate) {
    if (!prec_ok(pr)) return;
    if (pinned_precond && precond != bj) return;
    Candidate cand;
    cand.spec.kind = kind;
    cand.spec.prec = pr;
    cand.spec.m = m;
    cand.spec.precond.kind = precond;
    cand.unit_cost = unit_cost(f, cand.spec);
    std::ostringstream why;
    why << gate << "; modeled " << cand.unit_cost << " accesses/M-apply";
    cand.why = why.str();
    out.push_back(std::move(cand));
  };

  // Flat Krylov: CG on symmetric problems, BiCGStab otherwise (the
  // registry's own "krylov" selection rule, made explicit so the DB entry
  // names the real kind).  The '@prec' axis is M's storage precision.
  const std::string flat = f.symmetric ? "cg" : "bicgstab";
  const std::string flat_gate = f.symmetric ? "symmetric -> CG" : "nonsymmetric -> BiCGStab";
  for (const Prec pr : {Prec::FP16, Prec::FP32, Prec::FP64})
    add(flat, pr, 0, bj, flat_gate);
  // Jacobi streams ONE value per row, so its storage precision barely
  // moves the model or the iterate: emit a single candidate at the
  // cheapest admitted precision rather than three near-identical shades
  // (which would crowd precision-distinct configurations out of the
  // probe budget's top slots).
  if (jacobi_ok && !pinned_precond) {
    for (const Prec pr : {Prec::FP16, Prec::FP32, Prec::FP64}) {
      if (!prec_ok(pr)) continue;
      add(flat, pr, 0, "jacobi", flat_gate + "; diag-dominant -> jacobi");
      break;
    }
  }

  // The restarted-FGMRES workhorse (robust on everything the catalog has).
  for (const Prec pr : {Prec::FP16, Prec::FP64}) add("fgmres", pr, 64, bj, "baseline");

  // Nested F3R at the two low precisions the paper evaluates.
  add("f3r", Prec::FP16, 0, bj, "nested fp16 chain");
  add("f3r", Prec::FP32, 0, bj, "nested fp32 chain");

  // The conventional mixed-precision baseline.
  add("ir-gmres", Prec::FP32, 8, bj, "iterative-refinement baseline");

  // Ascending model price; stable so equal-cost candidates keep the
  // deterministic construction order above.
  std::stable_sort(out.begin(), out.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.unit_cost < b.unit_cost;
                   });
  return out;
}

}  // namespace

std::vector<Candidate> shortlist(const TuneFeatures& f, const Constraints& c) {
  std::vector<Candidate> out = build_list(f, c, /*honor_fp16_gate=*/true);
  // A user pin can empty the gated list (e.g. '@fp16' pinned on a matrix
  // whose scaled values overflow binary16): the explicit pin outranks the
  // gate — the user asked for that axis, so admit it and let the probes
  // judge, rather than returning nothing.
  if (out.empty()) out = build_list(f, c, /*honor_fp16_gate=*/false);
  return out;
}

}  // namespace nk::tune
