#include "core/tune/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "base/env.hpp"
#include "core/fingerprint.hpp"
#include "core/tune/perf_db.hpp"

namespace nk::tune {

namespace {

/// Iteration cap for one probe solve.  Deliberately small: a probe only
/// needs enough outer iterations to expose the convergence RATE (scored as
/// residual digits per modeled access), not to finish the solve.  The
/// nested kinds are capped by restarts instead (one outer pass; the nested
/// driver checks convergence in the outermost level, so a converging probe
/// still stops at the target).
constexpr int kProbeIters = 40;

/// The probe variant of a candidate spec: the caller's tolerance, no
/// history ring, tight work caps.  Everything else (wave/layout/backend)
/// stays default — probes are scalar solves on the session's workspace.
SolverSpec probe_spec(const Candidate& cand, double rtol) {
  SolverSpec s = cand.spec;
  s.rtol = rtol;
  s.record_history = false;
  s.max_iters = kProbeIters;
  s.max_restarts = 0;
  return s;
}

/// Residual digits gained from a unit starting residual.
double digits_of(double relres) {
  return std::max(0.0, -std::log10(std::max(relres, 1e-300)));
}

}  // namespace

TuneResult tune(const PreparedProblem& p, const Constraints& c, double rtol,
                SolverWorkspace* ws) {
  TuneResult r;
  r.features = extract_features(p);
  r.ranked = shortlist(r.features, c);
  std::ostringstream log;
  log << "tune: fp=" << fingerprint_hex(r.features.fingerprint) << " "
      << features_summary(r.features) << "\n";

  std::string stored;
  if (tune_db().lookup(r.features.fingerprint, stored)) {
    try {
      r.chosen = SolverSpec::parse(stored);
      r.db_hit = true;
      log << "tune: db hit -> " << stored << "\n";
      r.log = log.str();
      return r;
    } catch (const SpecError& e) {
      // A hand-seeded entry can name a kind this build doesn't register;
      // degrade to a cold-cache tuning run rather than failing the solve.
      log << "tune: db entry '" << stored << "' rejected (" << e.what()
          << "); re-tuning\n";
    }
  }

  if (r.ranked.empty()) {
    // Unreachable with the built-in candidate table (the fgmres workhorse
    // always survives the gates), but never hand back an empty choice.
    r.chosen = SolverSpec::parse("fgmres64");
    r.log = log.str();
    return r;
  }
  for (const Candidate& cand : r.ranked)
    log << "tune: rank " << cand.spec.to_string() << " (" << cand.why << ")\n";

  const long budget = tune_probes_env();
  const bool can_probe = ws != nullptr && p.a != nullptr &&
                         p.b.size() == static_cast<std::size_t>(p.a->size()) &&
                         !p.b.empty();

  int best = 0;
  if (budget > 0 && can_probe) {
    // One shared workspace, engines built/destroyed sequentially: the
    // grow-only slabs are reused across probes (and again by the real
    // engine afterwards) exactly like the Session fallback ladder.
    //
    // The budget is spent on DISTINCT (kind, precond) configurations, not
    // ranked positions: the precision shades of one configuration sit
    // adjacent in the ranking and solve near-identically, so probing three
    // of them would tell the tuner almost nothing new while starving the
    // structurally different kinds further down the list.  Within a
    // configuration the cheapest (first-ranked) shade stands in for all.
    std::vector<double> x(p.b.size());
    std::map<std::string, std::shared_ptr<PrimaryPrecond>> ms;
    std::vector<std::string> probed_configs;
    const double target_digits = std::max(digits_of(rtol), 1.0);
    double best_score = 0.0;
    best = -1;
    for (std::size_t i = 0;
         i < r.ranked.size() && r.probes_run < static_cast<int>(budget); ++i) {
      const Candidate& cand = r.ranked[i];
      const std::string config = cand.spec.kind + "/" + cand.spec.precond.kind;
      if (std::find(probed_configs.begin(), probed_configs.end(), config) !=
          probed_configs.end())
        continue;
      const SolverSpec ps = probe_spec(cand, rtol);
      try {
        std::shared_ptr<PrimaryPrecond>& m = ms[ps.precond.to_string()];
        if (!m) m = registry().make_precond(ps.precond, p);
        const auto eng = registry().make_solver(ps, p, m, ws);
        std::fill(x.begin(), x.end(), 0.0);
        const SolveResult res = eng->solve(p.b, x);
        ++r.probes_run;
        probed_configs.push_back(config);
        // Modeled work, NOT wall-clock: M applications weighted by the
        // candidate's modeled accesses per application.  Deterministic for
        // a fixed thread count — a loaded machine tunes the same way.
        // A converged probe scores its actual work; a capped one scores the
        // work PROJECTED to the target (linear-rate extrapolation of the
        // digits it did gain), so partial progress competes on the same
        // axis instead of converged-beats-all.
        const double work =
            std::max(1.0, static_cast<double>(res.precond_invocations)) * cand.unit_cost;
        const double digits = digits_of(res.final_relres);
        const double score =
            res.converged ? work : work * target_digits / std::max(digits, 0.1);
        log << "tune: probe " << cand.spec.to_string() << " -> "
            << status_name(res.status) << " M-applies=" << res.precond_invocations
            << " relres=" << res.final_relres << " score=" << score << "\n";
        if (best < 0 || score < best_score) {
          best = static_cast<int>(i);
          best_score = score;
        }
      } catch (const std::exception& e) {
        log << "tune: probe " << cand.spec.to_string() << " unbuildable ("
            << e.what() << ")\n";
        probed_configs.push_back(config);  // don't retry the config's shades
      }
    }
    if (best < 0) best = 0;  // every probe unbuildable: trust the model
    tune_db().note_probes(static_cast<std::uint64_t>(r.probes_run));
  } else {
    log << "tune: model-only (probes "
        << (budget <= 0 ? "disabled" : "unavailable") << ")\n";
  }

  r.chosen = r.ranked[static_cast<std::size_t>(best)].spec;
  log << "tune: chose " << r.chosen.to_string() << "\n";
  tune_db().store(r.features.fingerprint, r.chosen.to_string());
  r.log = log.str();
  return r;
}

namespace {

/// "<solver>: <status>[ (<site>)]" — the Session fallback ladder's attempt
/// label, reproduced for the tuner's own escalation trail.
std::string attempt_label(const SolveResult& r) {
  std::string s = r.solver + ": " + status_name(r.status);
  if (!r.failure.empty()) s += " (" + r.failure + ")";
  return s;
}

/// The meta-engine behind Session("auto"): tunes at construction, then
/// delegates.  A perf-DB entry (or a probe winner) is advisory — if the
/// chosen engine fails a real solve, the remaining ranked candidates are
/// tried in model order and the first success overwrites the DB entry.
class AutoEngine final : public SolverEngine {
 public:
  AutoEngine(const SolverSpec& spec, const PreparedProblem& p,
             std::shared_ptr<PrimaryPrecond> session_m, SolverWorkspace* ws)
      : p_(&p), ws_(ws), user_(spec), session_m_(std::move(session_m)) {
    Constraints c;
    if (spec.prec != Prec::FP64) c.pin_prec = spec.prec;
    if (spec.precond.kind != PrecondSpec{}.kind) c.pin_precond = spec.precond.kind;
    tuned_ = tune(p, c, spec.rtol, ws);
    adopt(tuned_.chosen);
  }

  [[nodiscard]] std::string name() const override {
    return "auto(" + engine_->name() + ")";
  }

  SolveResult solve(std::span<const double> b, std::span<double> x) override {
    SolveResult res = engine_->solve(b, x);
    if (res.converged || res.status == SolveStatus::kInvalidInput) return res;

    // Escalation: the tuned choice failed on this RHS.  Walk the remaining
    // ranked candidates (ascending model cost) with full caller budgets;
    // the first one that converges becomes the session's engine AND the
    // new DB entry for this matrix.
    std::vector<std::string> attempts = std::move(res.attempts);
    for (const Candidate& cand : tuned_.ranked) {
      if (cand.spec == chosen_) continue;
      attempts.push_back(attempt_label(res));
      adopt(cand.spec);
      std::fill(x.begin(), x.end(), 0.0);
      res = engine_->solve(b, x);
      if (res.converged) {
        tune_db().store(tuned_.features.fingerprint, cand.spec.to_string());
        break;
      }
      if (res.status == SolveStatus::kInvalidInput) break;
    }
    res.attempts = std::move(attempts);
    return res;
  }

  std::vector<SolveResult> solve_many(std::span<const double> B, std::span<double> X,
                                      int k) override {
    // Pure delegation: per-column recovery stays the Session fallback
    // ladder's job (";fallback=") — re-tuning mid-batch would tear down
    // the batched engine under its own wave scheduler.
    return engine_->solve_many(B, X, k);
  }

 private:
  /// Rebuild the inner engine for the minimal spec `minimal`, carrying the
  /// user's option tail (termination, batching, layout, resilience,
  /// backend) over verbatim.  Sequential rebuild on the shared workspace.
  void adopt(const SolverSpec& minimal) {
    SolverSpec full = minimal;
    full.rtol = user_.rtol;
    full.max_iters = user_.max_iters;
    full.max_restarts = user_.max_restarts;
    full.record_history = user_.record_history;
    full.wave = user_.wave;
    full.compact = user_.compact;
    full.layout = user_.layout;
    full.stagnate_window = user_.stagnate_window;
    full.fallback = user_.fallback;
    full.backend = user_.backend;
    if (user_.precond.storage.has_value() && !full.precond.storage.has_value())
      full.precond.storage = user_.precond.storage;
    full.precond.nblocks = user_.precond.nblocks;
    full.precond.omega = user_.precond.omega;
    full.precond.degree = user_.precond.degree;

    // Reuse the Session-minted M whenever the winner wants the same
    // factorization; otherwise mint (and cache) per precond description.
    std::shared_ptr<PrimaryPrecond> m;
    if (full.precond == user_.precond) {
      m = session_m_;
    } else {
      std::shared_ptr<PrimaryPrecond>& slot = minted_[full.precond.to_string()];
      if (!slot) slot = registry().make_precond(full.precond, *p_);
      m = slot;
    }
    engine_.reset();
    engine_ = registry().make_solver(full, *p_, std::move(m), ws_);
    chosen_ = minimal;
  }

  const PreparedProblem* p_;
  SolverWorkspace* ws_;
  SolverSpec user_;    ///< the caller's "auto" spec (options to carry over)
  SolverSpec chosen_;  ///< current minimal choice (escalation skips it)
  std::shared_ptr<PrimaryPrecond> session_m_;
  std::map<std::string, std::shared_ptr<PrimaryPrecond>> minted_;
  TuneResult tuned_;
  std::unique_ptr<SolverEngine> engine_;
};

}  // namespace

std::unique_ptr<SolverEngine> make_auto_engine(const SolverSpec& spec,
                                               const PreparedProblem& p,
                                               std::shared_ptr<PrimaryPrecond> m,
                                               SolverWorkspace* ws) {
  return std::make_unique<AutoEngine>(spec, p, std::move(m), ws);
}

}  // namespace nk::tune
