// Layer 2 of the autotuner: the cost-model shortlist.
//
// The paper's whole point (Section 4.1) is that the right solver /
// precision / nesting choice is predictable from a memory-access cost
// model.  This layer turns that model into a RANKING: enumerate the
// candidate specs the features admit (symmetry gates CG vs BiCGStab, the
// fp16-overflow fraction gates every @fp16 candidate, diagonal dominance
// gates the cheap Jacobi preconditioner), price each one in modeled
// memory accesses PER PRIMARY-M APPLICATION via cost_fgmres/cost_nested
// (core/cost_model.hpp), and sort ascending.
//
// Per-M-apply is the deliberate currency.  The paper's Table 3 compares
// solvers by preconditioner applications because outer-iteration counts
// are not comparable across kinds (10 F3R outer iterations ≈ 640 M
// applications ≈ 300 CG iterations); under the paper's observation that
// well-chosen configurations need a SIMILAR number of M applications to
// converge, the cheapest-per-apply candidate is the predicted winner, and
// the probe layer (tuner.hpp) settles what the model cannot know — the
// actual convergence rate of each shortlisted spec on this matrix.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/spec.hpp"
#include "core/tune/features.hpp"

namespace nk::tune {

/// One ranked candidate: a minimal spec (kind / precision axis / m /
/// precond — termination and batching stay at the caller's settings) plus
/// its model price and the reasoning trail.
struct Candidate {
  SolverSpec spec;
  double unit_cost = 0.0;  ///< modeled accesses per primary-M application
  std::string why;         ///< one-line gate/pricing rationale
};

/// User pins carried from the "auto" spec: an explicit '@prec' restricts
/// the precision axis, an explicit '/precond' restricts the precond kind.
struct Constraints {
  std::optional<Prec> pin_prec;
  std::string pin_precond;  ///< empty = tuner's choice
};

/// Modeled memory accesses per primary-M application for `spec` on a
/// matrix with these features (the shortlist's pricing function, exposed
/// for tests and for converting probe M-apply counts into modeled work).
[[nodiscard]] double unit_cost(const TuneFeatures& f, const SolverSpec& spec);

/// The full gated, priced, ascending-cost candidate list.  Never empty
/// for a non-empty problem: the fp64 FGMRES(64)/bj workhorse is always
/// admitted (unless the pins exclude it, in which case the pinned
/// equivalents are).  Deterministic: same features -> same order.
[[nodiscard]] std::vector<Candidate> shortlist(const TuneFeatures& f,
                                               const Constraints& c = {});

}  // namespace nk::tune
