// Layer 4 of the autotuner: the fingerprint-keyed perf-DB.
//
// The expensive part of tuning is the probe solves; the matrix fingerprint
// (core/fingerprint.hpp, FNV-1a over the prepared structure+values) makes
// their outcome reusable: once a winning spec is known for a matrix, every
// later Session("auto") on the same matrix — in this process or, with
// NKRYLOV_TUNE_DB set, in any later process — skips the probes entirely.
//
// The store is deliberately a cache, not a baseline: entries are advisory
// (a stale or hand-seeded spec that no longer converges is simply beaten
// by the escalation ladder at solve time), and a corrupt DB file must
// never break a solve — malformed lines are warned about and skipped.
//
// File format (one entry per line, '#' comments, versioned header):
//
//   # nkrylov-tune-db-v1
//   <16-hex-digit fingerprint> <spec text>
//
// e.g. `d2a0a1fe90132abc f3r@fp16/bj`.  Pre-seeding is just writing such
// lines by hand (fingerprints are printed by the tuner's log line and by
// examples/solve_spec).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace nk::tune {

/// Process-wide tuning statistics (reported by nkrylovd STATS).
struct TuneDbStats {
  std::uint64_t hits = 0;    ///< lookups answered from the DB
  std::uint64_t misses = 0;  ///< lookups that forced a tuning run
  std::uint64_t probes = 0;  ///< probe solves executed
  std::size_t entries = 0;   ///< current resident entry count
};

/// Thread-safe fingerprint -> spec-text store with optional file backing.
class TuneDb {
 public:
  /// Look up the stored spec text for `fingerprint`.  Counts a hit or a
  /// miss; returns true and fills `spec_text` on a hit.
  bool lookup(std::uint64_t fingerprint, std::string& spec_text);

  /// Record (or overwrite) the winning spec for `fingerprint` and, when a
  /// backing file is attached, rewrite it.  Write failures warn once and
  /// leave the in-memory entry intact.
  void store(std::uint64_t fingerprint, const std::string& spec_text);

  /// Count `n` executed probe solves (STATS surface).
  void note_probes(std::uint64_t n);

  TuneDbStats stats() const;

  /// Attach a backing file: load its entries (merging over the resident
  /// map) and rewrite it on every store().  An empty path detaches.
  void attach_file(const std::string& path);

  /// Drop every entry, detach the backing file, and zero the counters
  /// (test isolation; the backing file itself is left untouched).
  void clear();

 private:
  void save_locked();  ///< requires mu_ held

  mutable std::mutex mu_;
  std::map<std::uint64_t, std::string> entries_;
  std::string path_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t probes_ = 0;
};

/// The process-wide DB.  First use attaches NKRYLOV_TUNE_DB when set
/// (base/env.hpp) — later attach_file()/clear() calls can redirect it.
TuneDb& tune_db();

}  // namespace nk::tune
