#include "core/tune/perf_db.hpp"

#include <fstream>
#include <iostream>
#include <sstream>

#include "base/env.hpp"
#include "core/fingerprint.hpp"

namespace nk::tune {

namespace {

constexpr const char* kHeader = "# nkrylov-tune-db-v1";

}  // namespace

bool TuneDb::lookup(std::uint64_t fingerprint, std::string& spec_text) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  spec_text = it->second;
  return true;
}

void TuneDb::store(std::uint64_t fingerprint, const std::string& spec_text) {
  const std::lock_guard<std::mutex> lock(mu_);
  entries_[fingerprint] = spec_text;
  if (!path_.empty()) save_locked();
}

void TuneDb::note_probes(std::uint64_t n) {
  const std::lock_guard<std::mutex> lock(mu_);
  probes_ += n;
}

TuneDbStats TuneDb::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  TuneDbStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.probes = probes_;
  s.entries = entries_.size();
  return s;
}

void TuneDb::attach_file(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mu_);
  path_ = path;
  if (path_.empty()) return;
  std::ifstream in(path_);
  if (!in) return;  // absent file is fine: created on first store()
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.find(' ');
    std::uint64_t key = 0;
    // A valid entry is exactly `<16-hex> <nonempty spec>`; anything else
    // is skipped with a warning naming the file and line — a corrupt
    // cache degrades to a cold cache, never to a failed solve.
    if (sp == std::string::npos || sp + 1 >= line.size() ||
        !parse_fingerprint_hex(line.substr(0, sp), key)) {
      std::cerr << "nkrylov: tune-db " << path_ << ":" << lineno
                << ": malformed entry skipped: '" << line << "'\n";
      continue;
    }
    entries_[key] = line.substr(sp + 1);
  }
}

void TuneDb::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  path_.clear();
  hits_ = 0;
  misses_ = 0;
  probes_ = 0;
}

void TuneDb::save_locked() {
  std::ofstream out(path_, std::ios::trunc);
  if (!out) {
    // Warn (every rewrite — the situation may be transient) but keep the
    // in-memory entries working; persistence is best-effort.
    std::cerr << "nkrylov: tune-db: cannot write '" << path_ << "'\n";
    return;
  }
  out << kHeader << "\n";
  for (const auto& [key, spec] : entries_) out << fingerprint_hex(key) << " " << spec << "\n";
}

TuneDb& tune_db() {
  static TuneDb db;
  static std::once_flag attached;
  std::call_once(attached, [] {
    const std::string path = tune_db_env();
    if (!path.empty()) db.attach_file(path);
  });
  return db;
}

}  // namespace nk::tune
