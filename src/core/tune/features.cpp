#include "core/tune/features.hpp"

#include <sstream>

#include "core/fingerprint.hpp"

namespace nk::tune {

TuneFeatures extract_features(const PreparedProblem& p) {
  TuneFeatures f;
  if (!p.a) return f;
  const CsrMatrix<double>& a = p.a->csr_fp64();
  const MatrixStats s = analyze(a);
  f.n = s.n;
  f.nnz = s.nnz;
  f.nnz_per_row = s.nnz_per_row;
  f.symmetric = p.symmetric;
  f.diag_dominance_min = s.diag_dominance_min;
  f.fp16_overflow_fraction = s.fp16_overflow_fraction;
  f.bandwidth = s.bandwidth;
  f.row_nnz_stddev = s.row_nnz_stddev;
  f.uses_sell = p.a->uses_sell();
  f.fingerprint = p.fingerprint != 0 ? p.fingerprint : matrix_fingerprint(a, p.symmetric);
  return f;
}

bool prefers_sell(const TuneFeatures& f) {
  if (f.nnz_per_row <= 0.0) return false;
  return f.row_nnz_stddev <= 0.1 * f.nnz_per_row;
}

std::string features_summary(const TuneFeatures& f) {
  std::ostringstream os;
  os << "n=" << f.n << " nnz/row=" << f.nnz_per_row
     << " sym=" << (f.symmetric ? "yes" : "no")
     << " diag_dom_min=" << f.diag_dominance_min
     << " fp16_overflow=" << f.fp16_overflow_fraction << " bandwidth=" << f.bandwidth
     << " row_nnz_stddev=" << f.row_nnz_stddev
     << " format=" << (f.uses_sell ? "sell" : "csr")
     << " prefer=" << (prefers_sell(f) ? "sell" : "csr");
  return os.str();
}

}  // namespace nk::tune
