#include "core/registry.hpp"

#include <algorithm>
#include <sstream>

namespace nk {

namespace {

std::string join(const std::vector<std::string>& xs) {
  std::ostringstream os;
  for (std::size_t i = 0; i < xs.size(); ++i) os << (i ? " " : "") << xs[i];
  return os.str();
}

}  // namespace

void Registry::add_solver(SolverKindInfo info, SolverFactory factory) {
  const std::string kind = info.kind;
  if (solvers_.find(kind) == solvers_.end()) solver_order_.push_back(kind);
  solvers_[kind] = {std::move(info), std::move(factory)};
}

void Registry::add_precond(PrecondKindInfo info, PrecondFactory factory) {
  const std::string kind = info.kind;
  if (preconds_.find(kind) == preconds_.end()) precond_order_.push_back(kind);
  preconds_[kind] = {std::move(info), std::move(factory)};
}

const SolverKindInfo* Registry::solver_info(const std::string& kind) const {
  const auto it = solvers_.find(kind);
  return it == solvers_.end() ? nullptr : &it->second.info;
}

const PrecondKindInfo* Registry::precond_info(const std::string& kind) const {
  const auto it = preconds_.find(kind);
  return it == preconds_.end() ? nullptr : &it->second.info;
}

std::vector<std::string> Registry::solver_kinds() const { return solver_order_; }

std::vector<std::string> Registry::precond_kinds() const { return precond_order_; }

std::vector<std::string> Registry::conformance_solver_kinds() const {
  std::vector<std::string> out;
  for (const auto& k : solver_order_)
    if (solvers_.at(k).info.conformance) out.push_back(k);
  return out;
}

std::vector<std::string> Registry::conformance_precond_kinds() const {
  std::vector<std::string> out;
  for (const auto& k : precond_order_)
    if (preconds_.at(k).info.conformance) out.push_back(k);
  return out;
}

std::unique_ptr<SolverEngine> Registry::make_solver(const SolverSpec& spec,
                                                    const PreparedProblem& p,
                                                    std::shared_ptr<PrimaryPrecond> m,
                                                    SolverWorkspace* ws) const {
  const auto it = solvers_.find(spec.kind);
  if (it == solvers_.end())
    throw SpecError("unknown solver kind '" + spec.kind +
                    "' (registered: " + join(solver_kinds()) + ")");
  const SolverKindInfo& info = it->second.info;
  if (!info.takes_m && spec.m != 0)
    throw SpecError("solver kind '" + spec.kind + "' does not take an iteration count");
  if (!info.takes_prec && spec.prec != Prec::FP64)
    throw SpecError("solver kind '" + spec.kind + "' has fixed precisions (no @prec)");
  if (info.takes_m && spec.m == 0) {
    // Resolve the kind's default m centrally so no factory can silently
    // build with a zero Krylov dimension.
    SolverSpec resolved = spec;
    resolved.m = info.default_m;
    return it->second.factory(resolved, p, std::move(m), ws);
  }
  return it->second.factory(spec, p, std::move(m), ws);
}

std::shared_ptr<PrimaryPrecond> Registry::make_precond(const PrecondSpec& spec,
                                                       const PreparedProblem& p) const {
  const auto it = preconds_.find(spec.kind);
  if (it == preconds_.end())
    throw SpecError("unknown preconditioner kind '" + spec.kind +
                    "' (registered: " + join(precond_kinds()) + ")");
  return it->second.factory(spec, p);
}

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry;  // leaked intentionally: immune to static
    detail::register_builtin_kinds(*reg);  // destruction order at exit
    return reg;
  }();
  return *r;
}

}  // namespace nk
