#include "core/registry.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace nk {

namespace {

std::string join(const std::vector<std::string>& xs) {
  std::ostringstream os;
  for (std::size_t i = 0; i < xs.size(); ++i) os << (i ? " " : "") << xs[i];
  return os.str();
}

}  // namespace

// Copy-mutate-swap: writers serialize on write_mu_, clone the current
// snapshot, apply the mutation, and publish the clone.  The displaced
// snapshot is parked in retired_ so any info pointer a reader obtained from
// it stays valid forever (registrations are rare; the list stays tiny).
template <class Mutate>
void Registry::update(Mutate&& mutate) {
  const std::lock_guard<std::mutex> lock(write_mu_);
  auto old = state_.load(std::memory_order_acquire);
  auto next = std::make_shared<State>(*old);
  mutate(*next);
  retired_.push_back(std::move(old));
  state_.store(std::shared_ptr<const State>(std::move(next)), std::memory_order_release);
}

void Registry::add_solver(SolverKindInfo info, SolverFactory factory) {
  update([&](State& s) {
    const std::string kind = info.kind;
    if (s.solvers.find(kind) == s.solvers.end()) s.solver_order.push_back(kind);
    s.solvers[kind] = {std::move(info), std::move(factory)};
  });
}

void Registry::add_precond(PrecondKindInfo info, PrecondFactory factory) {
  update([&](State& s) {
    const std::string kind = info.kind;
    if (s.preconds.find(kind) == s.preconds.end()) s.precond_order.push_back(kind);
    s.preconds[kind] = {std::move(info), std::move(factory)};
  });
}

const SolverKindInfo* Registry::solver_info(const std::string& kind) const {
  const auto s = snapshot();
  const auto it = s->solvers.find(kind);
  return it == s->solvers.end() ? nullptr : &it->second.info;
}

const PrecondKindInfo* Registry::precond_info(const std::string& kind) const {
  const auto s = snapshot();
  const auto it = s->preconds.find(kind);
  return it == s->preconds.end() ? nullptr : &it->second.info;
}

std::vector<std::string> Registry::solver_kinds() const { return snapshot()->solver_order; }

std::vector<std::string> Registry::precond_kinds() const {
  return snapshot()->precond_order;
}

std::vector<std::string> Registry::conformance_solver_kinds() const {
  const auto s = snapshot();
  std::vector<std::string> out;
  for (const auto& k : s->solver_order)
    if (s->solvers.at(k).info.conformance) out.push_back(k);
  return out;
}

std::vector<std::string> Registry::conformance_precond_kinds() const {
  const auto s = snapshot();
  std::vector<std::string> out;
  for (const auto& k : s->precond_order)
    if (s->preconds.at(k).info.conformance) out.push_back(k);
  return out;
}

std::unique_ptr<SolverEngine> Registry::make_solver(const SolverSpec& spec,
                                                    const PreparedProblem& p,
                                                    std::shared_ptr<PrimaryPrecond> m,
                                                    SolverWorkspace* ws) const {
  // Hold the snapshot across the factory call: no lock is held, so a
  // factory is free to re-enter the registry (the fault wrapper builds its
  // inner kind this way) even while another thread registers.
  const auto s = snapshot();
  const auto it = s->solvers.find(spec.kind);
  if (it == s->solvers.end())
    throw SpecError("unknown solver kind '" + spec.kind +
                    "' (registered: " + join(s->solver_order) + ")");
  const SolverKindInfo& info = it->second.info;
  if (!info.takes_m && spec.m != 0)
    throw SpecError("solver kind '" + spec.kind + "' does not take an iteration count");
  if (!info.takes_prec && spec.prec != Prec::FP64)
    throw SpecError("solver kind '" + spec.kind + "' has fixed precisions (no @prec)");
  if (spec.backend.has_value() && !info.supports_backend(*spec.backend))
    throw SpecError("solver kind '" + spec.kind + "' does not support backend '" +
                    backend_name(*spec.backend) + "'");
  if (info.takes_m && spec.m == 0) {
    // Resolve the kind's default m centrally so no factory can silently
    // build with a zero Krylov dimension.
    SolverSpec resolved = spec;
    resolved.m = info.default_m;
    return it->second.factory(resolved, p, std::move(m), ws);
  }
  return it->second.factory(spec, p, std::move(m), ws);
}

std::shared_ptr<PrimaryPrecond> Registry::make_precond(const PrecondSpec& spec,
                                                       const PreparedProblem& p) const {
  const auto s = snapshot();
  const auto it = s->preconds.find(spec.kind);
  if (it == s->preconds.end())
    throw SpecError("unknown preconditioner kind '" + spec.kind +
                    "' (registered: " + join(s->precond_order) + ")");
  return it->second.factory(spec, p);
}

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry;  // leaked intentionally: immune to static
    detail::register_builtin_kinds(*reg);  // destruction order at exit
    return reg;
  }();
  return *r;
}

}  // namespace nk
