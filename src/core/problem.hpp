// Problem preparation — the shared front half of every experiment: generate
// (or load) a matrix, diagonally scale it (the paper scales all matrices),
// build the uniform-[0,1) right-hand side, and wrap the matrix in the
// multi-precision store the solvers draw their typed operators from.
//
// Split out of core/runner.hpp so the descriptor layer (spec/registry/
// session) can name PreparedProblem without pulling in the legacy runner
// entry points.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/nested_builder.hpp"
#include "sparse/csr.hpp"

namespace nk {

/// A prepared linear system: diagonally scaled matrix (the paper scales all
/// matrices), uniform-[0,1) right-hand side, zero initial guess.
struct PreparedProblem {
  std::string name;
  bool symmetric = false;
  double alpha_ilu = 1.0;
  double alpha_ainv = 1.0;
  std::shared_ptr<MultiPrecMatrix> a;
  std::vector<double> b;
  /// FNV-1a fingerprint of the prepared (sorted, diagonally scaled) fp64
  /// matrix + symmetry flag (core/fingerprint.hpp) — the autotuner's
  /// perf-DB key.  prepare_problem fills it; hand-assembled problems may
  /// leave it 0 (the tuner recomputes on demand).  Computed AFTER scaling,
  /// so the library path and the daemon path (which keys its ProblemTable
  /// on the RAW client bytes) agree on the identity of what is solved.
  std::uint64_t fingerprint = 0;
};

/// Scale `a` symmetrically, build the RHS, wrap in MultiPrecMatrix.
/// `use_sell` selects the sliced-ELLPACK kernels (GPU-node configuration).
PreparedProblem prepare_problem(std::string name, CsrMatrix<double> a, bool symmetric,
                                double alpha_ilu, double alpha_ainv, std::uint64_t rhs_seed,
                                bool use_sell = false);

/// Generate + prepare a Table 2 stand-in by paper name.
PreparedProblem prepare_standin(const std::string& paper_name, int scale,
                                std::uint64_t rhs_seed = 7, bool use_sell = false);

/// k seeded uniform-[0,1) right-hand sides, column c seeded `seed0 + c`
/// (column 0 reproduces prepare_problem's RHS when seed0 = rhs_seed).
std::vector<double> batch_rhs(const PreparedProblem& p, int k, std::uint64_t seed0 = 7);

}  // namespace nk
