#include "core/service/protocol.hpp"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "core/service/fingerprint.hpp"

namespace nk::service {

namespace {

/// Split on single spaces.  Leading/trailing/doubled spaces produce empty
/// tokens, which the field-count checks below then reject — "SOLVE  ab 1"
/// is malformed, not forgiven.
std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t sp = line.find(' ', start);
    if (sp == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, sp - start));
    start = sp + 1;
  }
}

[[noreturn]] void bad(const std::string& message) {
  throw ProtocolError("bad-request", message);
}

void expect_fields(const std::vector<std::string>& f, std::size_t want, const char* verb) {
  if (f.size() != want)
    bad(std::string(verb) + ": expected " + std::to_string(want - 1) + " argument(s), got " +
        std::to_string(f.size() - 1));
}

double parse_f64_field(const std::string& tok, const char* what) {
  if (tok.empty()) bad(std::string(what) + ": empty field");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0')
    bad(std::string(what) + ": malformed number '" + tok + "'");
  if (errno == ERANGE) bad(std::string(what) + ": out of range '" + tok + "'");
  return v;
}

std::uint64_t parse_handle_field(const std::string& tok) {
  std::uint64_t h = 0;
  if (!parse_fingerprint_hex(tok, h)) bad("handle: malformed hex '" + tok + "'");
  return h;
}

/// Token sanity for free-text fields that must survive the one-line
/// space-separated framing (stand-in names, spec strings, failure sites).
void expect_token(const std::string& tok, const char* what) {
  if (tok.empty()) bad(std::string(what) + ": empty field");
  for (const char c : tok)
    if (c == ' ' || c == '\n' || c == '\r')
      bad(std::string(what) + ": whitespace in '" + tok + "'");
}

}  // namespace

std::int64_t parse_i64_field(std::string_view tok, const char* what, std::int64_t min,
                             std::int64_t max) {
  if (tok.empty()) bad(std::string(what) + ": empty field");
  const std::string s(tok);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') bad(std::string(what) + ": malformed integer '" + s + "'");
  if (errno == ERANGE || v < min || v > max)
    bad(std::string(what) + ": value '" + s + "' outside [" + std::to_string(min) + ", " +
        std::to_string(max) + "]");
  return v;
}

Request parse_request_line(const std::string& line) {
  if (line.empty()) bad("empty request line");
  if (line.size() > 4096) bad("request line too long");
  const std::vector<std::string> f = split_fields(line);
  Request r;
  const std::string& verb = f[0];
  if (verb == "HELLO") {
    expect_fields(f, 1, "HELLO");
    r.verb = Request::Verb::kHello;
  } else if (verb == "PUTGEN") {
    expect_fields(f, 3, "PUTGEN");
    r.verb = Request::Verb::kPutGen;
    expect_token(f[1], "standin");
    r.standin = f[1];
    r.scale = static_cast<int>(parse_i64_field(f[2], "scale", 1, 64));
  } else if (verb == "PUT") {
    expect_fields(f, 4, "PUT");
    r.verb = Request::Verb::kPut;
    r.n = parse_i64_field(f[1], "n", 1, kMaxN);
    r.nnz = parse_i64_field(f[2], "nnz", 0, kMaxNnz);
    r.symmetric = parse_i64_field(f[3], "sym", 0, 1) != 0;
  } else if (verb == "SOLVE") {
    expect_fields(f, 5, "SOLVE");
    r.verb = Request::Verb::kSolve;
    r.handle = parse_handle_field(f[1]);
    r.k = static_cast<int>(parse_i64_field(f[2], "k", 1, kMaxK));
    r.n = parse_i64_field(f[3], "n", 1, kMaxN);
    expect_token(f[4], "spec");
    r.spec = f[4];
  } else if (verb == "STATS") {
    expect_fields(f, 1, "STATS");
    r.verb = Request::Verb::kStats;
  } else if (verb == "FREE") {
    expect_fields(f, 2, "FREE");
    r.verb = Request::Verb::kFree;
    r.handle = parse_handle_field(f[1]);
  } else if (verb == "SHUTDOWN") {
    expect_fields(f, 1, "SHUTDOWN");
    r.verb = Request::Verb::kShutdown;
  } else {
    bad("unknown verb '" + verb + "'");
  }
  return r;
}

std::string format_request_line(const Request& r) {
  switch (r.verb) {
    case Request::Verb::kHello:
      return "HELLO";
    case Request::Verb::kPutGen:
      return "PUTGEN " + r.standin + " " + std::to_string(r.scale);
    case Request::Verb::kPut:
      return "PUT " + std::to_string(r.n) + " " + std::to_string(r.nnz) + " " +
             (r.symmetric ? "1" : "0");
    case Request::Verb::kSolve:
      return "SOLVE " + fingerprint_hex(r.handle) + " " + std::to_string(r.k) + " " +
             std::to_string(r.n) + " " + r.spec;
    case Request::Verb::kStats:
      return "STATS";
    case Request::Verb::kFree:
      return "FREE " + fingerprint_hex(r.handle);
    case Request::Verb::kShutdown:
      return "SHUTDOWN";
  }
  return {};  // unreachable
}

std::string format_col_line(int c, const SolveResult& r) {
  std::ostringstream os;
  os << "COL " << c << ' ' << status_name(r.status) << ' ' << r.iterations << ' ';
  os.precision(17);
  os << r.final_relres << ' ' << (r.failure.empty() ? "-" : r.failure);
  return os.str();
}

WireColumn parse_col_line(const std::string& line) {
  const std::vector<std::string> f = split_fields(line);
  if (f.size() != 6 || f[0] != "COL") bad("malformed COL line '" + line + "'");
  WireColumn c;
  c.col = static_cast<int>(parse_i64_field(f[1], "col", 0, kMaxK - 1));
  expect_token(f[2], "status");
  c.status = f[2];
  c.iterations = static_cast<int>(parse_i64_field(f[3], "iters", 0, 1 << 30));
  c.relres = parse_f64_field(f[4], "relres");
  expect_token(f[5], "site");
  c.failure = (f[5] == "-") ? std::string() : f[5];
  return c;
}

}  // namespace nk::service
