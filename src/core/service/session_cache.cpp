#include "core/service/session_cache.hpp"

#include <utility>
#include <vector>

#include "core/problem.hpp"
#include "core/service/fingerprint.hpp"

namespace nk::service {

template <class Build>
ProblemTable::PutOutcome ProblemTable::put(std::uint64_t fp, Build&& build) {
  std::shared_ptr<Slot> slot;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    auto [it, inserted] = table_.try_emplace(fp, nullptr);
    if (inserted) it->second = std::make_shared<Slot>();
    slot = it->second;
  }
  // Prepare (or wait for the preparer) under the slot latch, NOT the map
  // mutex: a cold stampede on one matrix pays preparation exactly once,
  // and unrelated clients are never serialized behind it.
  std::shared_ptr<const PreparedProblem> problem;
  bool cached = true;
  {
    std::unique_lock<std::mutex> slot_lk(slot->mu);
    if (!slot->problem) {
      try {
        slot->problem = build();
      } catch (...) {
        // Failed preparation must not leave a forever-empty slot: drop it
        // (if no later put already replaced it) and let the error out.
        slot_lk.unlock();
        const std::lock_guard<std::mutex> lk(mu_);
        auto it = table_.find(fp);
        if (it != table_.end() && it->second == slot) table_.erase(it);
        throw;
      }
      cached = false;
    }
    problem = slot->problem;
  }
  // Counters AFTER releasing the slot latch (map-then-slot is the only
  // lock order anywhere in this file).
  const std::lock_guard<std::mutex> lk(mu_);
  if (cached)
    ++hits_;
  else
    ++misses_;
  return {fp, std::move(problem), cached};
}

ProblemTable::PutOutcome ProblemTable::put_matrix(CsrMatrix<double> a, bool symmetric) {
  const std::uint64_t fp = matrix_fingerprint(a, symmetric);
  return put(fp, [&] {
    return std::make_shared<const PreparedProblem>(
        prepare_problem("client-" + fingerprint_hex(fp), std::move(a), symmetric,
                        /*alpha_ilu=*/1.0, /*alpha_ainv=*/1.0, /*rhs_seed=*/7));
  });
}

ProblemTable::PutOutcome ProblemTable::put_standin(const std::string& name, int scale) {
  return put(standin_fingerprint(name, scale), [&] {
    return std::make_shared<const PreparedProblem>(prepare_standin(name, scale));
  });
}

std::shared_ptr<const PreparedProblem> ProblemTable::find(std::uint64_t handle) const {
  std::shared_ptr<Slot> slot;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    auto it = table_.find(handle);
    if (it == table_.end()) return nullptr;
    slot = it->second;
  }
  // May briefly block behind an in-flight preparation of this handle —
  // which is exactly the wait a SOLVE racing its own PUT wants.
  const std::lock_guard<std::mutex> slot_lk(slot->mu);
  return slot->problem;
}

bool ProblemTable::erase(std::uint64_t handle) {
  const std::lock_guard<std::mutex> lk(mu_);
  return table_.erase(handle) != 0;
}

ProblemTable::Stats ProblemTable::stats() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return {hits_, misses_, table_.size()};
}

SessionCache::Lease SessionCache::lease(std::uint64_t handle,
                                        std::shared_ptr<const PreparedProblem> p,
                                        const SolverSpec& spec) {
  const std::string key = fingerprint_hex(handle) + "|" + spec.to_string();
  std::shared_ptr<Entry> entry;
  bool fresh = false;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      it = entries_.emplace(key, std::make_shared<Entry>()).first;
      fresh = true;
    }
    entry = it->second;
    entry->last_used = ++tick_;
    if (fresh && entries_.size() > capacity_) evict_idle_locked(key);
  }
  // Take the entry lock OUTSIDE the cache mutex: waiting for another
  // client's solve on this Session must not block unrelated leases.
  std::unique_lock<std::mutex> entry_lk(entry->mu);
  Lease lease(std::move(entry), std::move(entry_lk));
  if (!lease.entry_->session) {
    // Built under the entry lock so concurrent lessees of the same key
    // pay setup exactly once.  On throw (unknown kind) the entry stays
    // session-less and the next lease retries; hit/miss counters are
    // settled only once construction succeeds.
    lease.entry_->session = std::make_unique<Session>(std::move(p), spec);
    lease.built_ = true;
  }
  {
    const std::lock_guard<std::mutex> lk(mu_);
    if (lease.built_)
      ++misses_;
    else
      ++hits_;
  }
  return lease;
}

void SessionCache::evict_idle_locked(const std::string& keep_key) {
  // Reclaim oldest-idle entries until back under capacity.  try_lock is
  // the idleness test: a held lock means a solve is in flight there, and
  // in-flight sessions are never evicted (their Lease keeps the Entry
  // alive regardless, but we also keep them resident for reuse).
  while (entries_.size() > capacity_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == keep_key) continue;
      if (victim != entries_.end() && it->second->last_used >= victim->second->last_used)
        continue;
      if (it->second->mu.try_lock()) {
        it->second->mu.unlock();
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything else is in flight
    entries_.erase(victim);
    ++evictions_;
  }
}

SessionCache::Stats SessionCache::stats() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return {hits_, misses_, evictions_, entries_.size()};
}

}  // namespace nk::service
