#include "core/service/io.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace nk::service {

bool write_all(int fd, const void* data, std::size_t bytes) {
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t w = ::write(fd, p, bytes);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    p += w;
    bytes -= static_cast<std::size_t>(w);
  }
  return true;
}

bool write_line(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  return write_all(fd, framed.data(), framed.size());
}

bool BufferedReader::refill() {
  if (begin_ == end_) begin_ = end_ = 0;
  if (end_ == buf_.size()) return false;  // caller's line overflowed kMaxLine
  while (true) {
    const ssize_t r = ::read(fd_, buf_.data() + end_, buf_.size() - end_);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF
    end_ += static_cast<std::size_t>(r);
    return true;
  }
}

bool BufferedReader::read_line(std::string& out) {
  out.clear();
  while (true) {
    for (std::size_t i = begin_; i < end_; ++i) {
      if (buf_[i] == '\n') {
        out.append(buf_.data() + begin_, i - begin_);
        begin_ = i + 1;
        return out.size() <= kMaxLine;
      }
    }
    // No newline buffered yet: keep what we have as a prefix and refill.
    out.append(buf_.data() + begin_, end_ - begin_);
    begin_ = end_ = 0;
    if (out.size() > kMaxLine) return false;
    if (!refill()) return false;
  }
}

bool BufferedReader::read_exact(void* data, std::size_t bytes) {
  char* p = static_cast<char*>(data);
  while (bytes > 0) {
    if (begin_ == end_ && !refill()) return false;
    const std::size_t have = end_ - begin_;
    const std::size_t take = have < bytes ? have : bytes;
    std::memcpy(p, buf_.data() + begin_, take);
    begin_ += take;
    p += take;
    bytes -= take;
  }
  return true;
}

}  // namespace nk::service
