// The nkrylovd wire protocol (v1).
//
// Requests and responses travel over a Unix-domain stream socket as one
// ASCII header line ('\n'-terminated, single-space-separated fields),
// optionally followed by a little-endian binary payload whose size the
// header fully determines — so the stream NEVER desynchronizes: a server
// that rejects a request still knows exactly how many payload bytes to
// drain.  Solver configurations ride in the existing spec grammar
// (core/spec.hpp), so the daemon speaks the same language as the CLI
// tools, the conformance catalog, and the bench JSON:
//
//   HELLO                       -> OK nkrylovd 1
//   PUTGEN <standin> <scale>    -> HANDLE <hex16> <n> <nnz> CACHED|NEW
//   PUT <n> <nnz> <sym:0|1>     -> HANDLE <hex16> <n> <nnz> CACHED|NEW
//       payload: int32 row_ptr[n+1], int32 col_idx[nnz], fp64 vals[nnz]
//   SOLVE <handle> <k> <n> <spec>  -> RESULT <k> <n>
//       payload: fp64 B[k*n]          k lines: COL <c> <status> <iters> <relres> <site|->
//                                     payload: fp64 X[k*n]
//   STATS                       -> STATS key=value ...
//   FREE <handle>               -> OK
//   SHUTDOWN                    -> OK          (then the daemon exits)
//
// Any rejected request gets a one-line structured error instead:
//
//   ERR <code> <message>        codes: bad-request, unknown-handle,
//                               bad-spec, bad-matrix, too-large, internal
//
// Solver FAILURES are not ERRs: a request that parses but does not
// converge (breakdown, non-finite, stagnation, invalid RHS) still gets a
// RESULT whose COL lines carry the structured per-column SolveStatus —
// exactly the resilience taxonomy of PR 7, now per client request.
//
// Parsing here follows the repo's checked-parse policy everywhere: every
// integer must consume its whole token (no "8x"), every field count must
// match exactly, and all sizes are bounded (kMaxN/kMaxK/kMaxNnz) before a
// single payload byte is allocated.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "krylov/history.hpp"

namespace nk::service {

inline constexpr int kProtocolVersion = 1;

/// Hard request bounds: checked before any allocation, so one malformed
/// or hostile header cannot OOM the daemon.
inline constexpr std::int64_t kMaxN = std::int64_t{1} << 27;    ///< rows
inline constexpr std::int64_t kMaxNnz = std::int64_t{1} << 30;  ///< nonzeros
inline constexpr int kMaxK = 4096;                              ///< RHS per request

/// Structured protocol failure: `code` is the wire error code, what() the
/// human message after it.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  [[nodiscard]] const std::string& code() const { return code_; }

 private:
  std::string code_;
};

/// Strict full-token integer parse in [min, max]; throws ProtocolError
/// (code "bad-request") naming `what` on garbage, partial parses
/// ("4096x"), or range violations.
std::int64_t parse_i64_field(std::string_view tok, const char* what, std::int64_t min,
                             std::int64_t max);

/// One parsed request header.
struct Request {
  enum class Verb : std::uint8_t { kHello, kPut, kPutGen, kSolve, kStats, kFree, kShutdown };

  Verb verb = Verb::kHello;
  // PUTGEN
  std::string standin;
  int scale = 1;
  // PUT (dimensions of the binary payload that follows)
  std::int64_t n = 0;
  std::int64_t nnz = 0;
  bool symmetric = false;
  // SOLVE / FREE
  std::uint64_t handle = 0;
  std::string spec;  ///< solver spec text (validated by SolverSpec::parse later)
  int k = 0;
};

/// Parse one request header line (no trailing '\n').  Throws ProtocolError
/// with code "bad-request" on unknown verbs, wrong field counts, malformed
/// numbers, or bound violations.
Request parse_request_line(const std::string& line);

/// Canonical header line for `r` (no trailing '\n');
/// parse_request_line(format_request_line(r)) round-trips.
std::string format_request_line(const Request& r);

/// One COL response line for column `c`.
std::string format_col_line(int c, const SolveResult& r);

/// Client-side view of one COL line.
struct WireColumn {
  int col = 0;
  std::string status;   ///< status_name() spelling ("converged", "non_finite", ...)
  int iterations = 0;
  double relres = 0.0;
  std::string failure;  ///< failure site, "" when the line carried "-"
  [[nodiscard]] bool converged() const { return status == "converged"; }
};

/// Parse a COL line (strict, like everything here).  Throws ProtocolError.
WireColumn parse_col_line(const std::string& line);

}  // namespace nk::service
