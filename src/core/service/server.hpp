// nkrylovd's serving loop: a Unix-domain stream listener with one thread
// per connection, all of them feeding the shared SolveExecutor.
//
// The server is the protocol boundary and nothing else: it parses header
// lines (strictly — see protocol.hpp), bounds and drains payloads, maps
// handles through the ProblemTable, and turns executor futures back into
// RESULT/COL wire replies.  All solver intelligence — caching, batching
// across clients, per-column fault retirement — lives below it.
//
// Error discipline:
//   - a malformed HEADER desynchronizes the stream (the payload length is
//     unknowable), so the reply is one ERR line and the connection closes;
//   - a semantically bad but well-formed request (unknown handle, bad
//     spec, inconsistent matrix) has a known payload size: it is drained,
//     an ERR line is sent, and the connection stays usable;
//   - a solver-level failure is NOT an error: the client gets a normal
//     RESULT whose COL lines carry the structured per-column status.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/service/executor.hpp"
#include "core/service/io.hpp"
#include "core/service/protocol.hpp"
#include "core/service/session_cache.hpp"

namespace nk::service {

struct ServerConfig {
  std::string socket_path;  ///< Unix-domain socket path (unlinked on bind/close)
  ExecutorConfig executor;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();  ///< stop() + join everything
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + spawn the accept thread.  Throws std::runtime_error
  /// on socket/bind failures (stale socket files are unlinked first).
  void start();

  /// Block until a client sends SHUTDOWN, stop() is called, or
  /// `external_stop` (poll-friendly for signal handlers) goes true.
  void wait(const std::atomic<bool>* external_stop = nullptr);

  /// Stop accepting, close the listener, join connection threads.
  /// Queued solves still drain (executor destructor semantics).
  void stop();

  [[nodiscard]] const std::string& socket_path() const { return cfg_.socket_path; }

  /// The "STATS ..." payload (also what the STATS verb returns).
  [[nodiscard]] std::string stats_line() const;

 private:
  void accept_loop();
  void serve_connection(int fd);
  /// One request; false when the connection must close (EOF, I/O error,
  /// header desync, SHUTDOWN).
  bool serve_request(int fd, BufferedReader& in);
  bool handle_put(int fd, BufferedReader& in, const Request& r);
  bool handle_putgen(int fd, const Request& r);
  bool handle_solve(int fd, BufferedReader& in, const Request& r);
  bool send_err(int fd, const std::string& code, const std::string& msg);

  ServerConfig cfg_;
  ProblemTable problems_;
  SolveExecutor executor_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
  std::set<int> active_fds_;  ///< open connection fds, guarded by conn_mu_
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> next_request_id_{1};

  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace nk::service
