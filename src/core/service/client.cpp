#include "core/service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "core/service/fingerprint.hpp"

namespace nk::service {

namespace {

[[noreturn]] void transport_error(const std::string& what) {
  throw std::runtime_error("nk_client: " + what);
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

}  // namespace

Client::Client(const std::string& socket_path) : in_(-1) {
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path))
    transport_error("socket path empty or too long: '" + socket_path + "'");
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) transport_error(std::string("socket(): ") + strerror(errno));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = strerror(errno);
    ::close(fd_);
    fd_ = -1;
    transport_error("connect('" + socket_path + "'): " + why);
  }
  in_ = BufferedReader(fd_);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::read_reply() {
  std::string line;
  if (!in_.read_line(line)) transport_error("connection closed mid-reply");
  if (line.rfind("ERR ", 0) == 0) {
    const std::string rest = line.substr(4);
    const std::size_t sp = rest.find(' ');
    if (sp == std::string::npos) throw ProtocolError(rest, "");
    throw ProtocolError(rest.substr(0, sp), rest.substr(sp + 1));
  }
  return line;
}

std::string Client::hello() {
  if (!write_line(fd_, "HELLO")) transport_error("write failed");
  const std::string line = read_reply();
  if (line.rfind("OK ", 0) != 0) transport_error("unexpected HELLO reply '" + line + "'");
  return line.substr(3);
}

Client::Handle Client::parse_handle_reply(const std::string& line) {
  const std::vector<std::string> f = split_ws(line);
  if (f.size() != 5 || f[0] != "HANDLE" || (f[4] != "CACHED" && f[4] != "NEW"))
    transport_error("malformed HANDLE reply '" + line + "'");
  Handle h;
  if (!parse_fingerprint_hex(f[1], h.handle))
    transport_error("malformed handle in reply '" + line + "'");
  h.n = parse_i64_field(f[2], "reply n", 0, kMaxN);
  h.nnz = parse_i64_field(f[3], "reply nnz", 0, kMaxNnz);
  h.cached = f[4] == "CACHED";
  return h;
}

Client::Handle Client::put_matrix(const CsrMatrix<double>& a, bool symmetric) {
  Request r;
  r.verb = Request::Verb::kPut;
  r.n = a.nrows;
  r.nnz = a.nnz();
  r.symmetric = symmetric;
  if (!write_line(fd_, format_request_line(r)) ||
      !write_all(fd_, a.row_ptr.data(), a.row_ptr.size() * sizeof(index_t)) ||
      !write_all(fd_, a.col_idx.data(), a.col_idx.size() * sizeof(index_t)) ||
      !write_all(fd_, a.vals.data(), a.vals.size() * sizeof(double)))
    transport_error("write failed");
  return parse_handle_reply(read_reply());
}

Client::Handle Client::put_standin(const std::string& name, int scale) {
  Request r;
  r.verb = Request::Verb::kPutGen;
  r.standin = name;
  r.scale = scale;
  if (!write_line(fd_, format_request_line(r))) transport_error("write failed");
  return parse_handle_reply(read_reply());
}

Client::SolveReply Client::solve(std::uint64_t handle, const std::string& spec,
                                 std::span<const double> B, int k, std::int64_t n) {
  if (k <= 0 || n <= 0 || B.size() != static_cast<std::size_t>(k) * static_cast<std::size_t>(n))
    transport_error("solve(): B size does not match k*n");
  Request r;
  r.verb = Request::Verb::kSolve;
  r.handle = handle;
  r.k = k;
  r.n = n;
  r.spec = spec;
  if (!write_line(fd_, format_request_line(r)) ||
      !write_all(fd_, B.data(), B.size() * sizeof(double)))
    transport_error("write failed");

  const std::string head = read_reply();
  const std::vector<std::string> f = split_ws(head);
  if (f.size() != 3 || f[0] != "RESULT") transport_error("malformed RESULT reply '" + head + "'");
  const auto rk = parse_i64_field(f[1], "reply k", 1, kMaxK);
  const auto rn = parse_i64_field(f[2], "reply n", 1, kMaxN);
  if (rk != k || rn != n) transport_error("RESULT dimensions disagree with request");

  SolveReply reply;
  reply.n = rn;
  reply.columns.reserve(static_cast<std::size_t>(rk));
  for (std::int64_t c = 0; c < rk; ++c) {
    std::string line;
    if (!in_.read_line(line)) transport_error("connection closed mid-reply");
    reply.columns.push_back(parse_col_line(line));
  }
  reply.x.resize(static_cast<std::size_t>(rk) * static_cast<std::size_t>(rn));
  if (!in_.read_exact(reply.x.data(), reply.x.size() * sizeof(double)))
    transport_error("connection closed mid-payload");
  return reply;
}

std::map<std::string, std::uint64_t> Client::stats() {
  if (!write_line(fd_, "STATS")) transport_error("write failed");
  const std::string line = read_reply();
  if (line.rfind("STATS", 0) != 0) transport_error("unexpected STATS reply '" + line + "'");
  std::map<std::string, std::uint64_t> out;
  for (const std::string& tok : split_ws(line.substr(5))) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos) continue;
    out[tok.substr(0, eq)] = static_cast<std::uint64_t>(parse_i64_field(
        tok.substr(eq + 1), "stats value", 0, std::numeric_limits<std::int64_t>::max()));
  }
  return out;
}

void Client::free_handle(std::uint64_t handle) {
  Request r;
  r.verb = Request::Verb::kFree;
  r.handle = handle;
  if (!write_line(fd_, format_request_line(r))) transport_error("write failed");
  const std::string line = read_reply();
  if (line != "OK") transport_error("unexpected FREE reply '" + line + "'");
}

void Client::shutdown_server() {
  if (!write_line(fd_, "SHUTDOWN")) transport_error("write failed");
  const std::string line = read_reply();
  if (line != "OK") transport_error("unexpected SHUTDOWN reply '" + line + "'");
}

std::string Client::request_raw(const std::string& line) {
  if (!write_line(fd_, line)) transport_error("write failed");
  std::string reply;
  if (!in_.read_line(reply)) transport_error("connection closed mid-reply");
  return reply;
}

}  // namespace nk::service
