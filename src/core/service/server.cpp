#include "core/service/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/service/fingerprint.hpp"
#include "core/spec.hpp"
#include "core/tune/perf_db.hpp"

namespace nk::service {

namespace {

int open_unix_listener(const std::string& path) {
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("nkrylovd: socket path empty or too long: '" + path + "'");
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("nkrylovd: socket(): " + std::string(strerror(errno)));
  ::unlink(path.c_str());  // stale socket from a crashed daemon
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = strerror(errno);
    ::close(fd);
    throw std::runtime_error("nkrylovd: bind('" + path + "'): " + why);
  }
  if (::listen(fd, 128) != 0) {
    const std::string why = strerror(errno);
    ::close(fd);
    ::unlink(path.c_str());
    throw std::runtime_error("nkrylovd: listen(): " + why);
  }
  return fd;
}

}  // namespace

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg)), executor_(cfg_.executor) {}

Server::~Server() { stop(); }

void Server::start() {
  listen_fd_ = open_unix_listener(cfg_.socket_path);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::wait(const std::atomic<bool>* external_stop) {
  std::unique_lock<std::mutex> lk(wait_mu_);
  // Polling wait so a signal handler only needs to flip a flag.
  wait_cv_.wait_for(lk, std::chrono::milliseconds(50), [&] {
    return shutdown_requested_ || stopping_.load() ||
           (external_stop != nullptr && external_stop->load());
  });
  while (!(shutdown_requested_ || stopping_.load() ||
           (external_stop != nullptr && external_stop->load()))) {
    wait_cv_.wait_for(lk, std::chrono::milliseconds(50));
  }
}

void Server::stop() {
  if (stopping_.exchange(true)) return;  // first caller does the teardown
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // Kick every connection out of its blocking read; the fd set and the
    // erase in serve_connection share conn_mu_, so no recycled-fd races.
    const std::lock_guard<std::mutex> lk(conn_mu_);
    for (const int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> conns;
  {
    const std::lock_guard<std::mutex> lk(conn_mu_);
    conns.swap(connections_);
  }
  for (std::thread& t : conns) t.join();
  ::unlink(cfg_.socket_path.c_str());
  wait_cv_.notify_all();
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop) or fatal
    }
    const std::lock_guard<std::mutex> lk(conn_mu_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    active_fds_.insert(fd);
    connections_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void Server::serve_connection(int fd) {
  BufferedReader in(fd);
  while (serve_request(fd, in)) {
  }
  {
    const std::lock_guard<std::mutex> lk(conn_mu_);
    active_fds_.erase(fd);
  }
  ::close(fd);
}

bool Server::send_err(int fd, const std::string& code, const std::string& msg) {
  return write_line(fd, "ERR " + code + " " + msg);
}

bool Server::serve_request(int fd, BufferedReader& in) {
  std::string line;
  if (!in.read_line(line)) return false;  // EOF / error / overlong line
  Request r;
  try {
    r = parse_request_line(line);
  } catch (const ProtocolError& e) {
    // A malformed header leaves any payload length unknowable — reply,
    // then close so the stream cannot desynchronize.
    send_err(fd, e.code(), e.what());
    return false;
  }
  switch (r.verb) {
    case Request::Verb::kHello:
      return write_line(fd, "OK nkrylovd " + std::to_string(kProtocolVersion));
    case Request::Verb::kPut:
      return handle_put(fd, in, r);
    case Request::Verb::kPutGen:
      return handle_putgen(fd, r);
    case Request::Verb::kSolve:
      return handle_solve(fd, in, r);
    case Request::Verb::kStats:
      return write_line(fd, stats_line());
    case Request::Verb::kFree:
      if (problems_.erase(r.handle)) return write_line(fd, "OK");
      return send_err(fd, "unknown-handle", fingerprint_hex(r.handle));
    case Request::Verb::kShutdown: {
      write_line(fd, "OK");
      {
        const std::lock_guard<std::mutex> lk(wait_mu_);
        shutdown_requested_ = true;
      }
      wait_cv_.notify_all();
      return false;
    }
  }
  return false;  // unreachable
}

bool Server::handle_put(int fd, BufferedReader& in, const Request& r) {
  const auto n = static_cast<std::size_t>(r.n);
  const auto nnz = static_cast<std::size_t>(r.nnz);
  std::vector<index_t> row_ptr(n + 1);
  std::vector<index_t> col_idx(nnz);
  std::vector<double> vals(nnz);
  if (!in.read_exact(row_ptr.data(), row_ptr.size() * sizeof(index_t)) ||
      !in.read_exact(col_idx.data(), col_idx.size() * sizeof(index_t)) ||
      !in.read_exact(vals.data(), vals.size() * sizeof(double)))
    return false;

  // Structural validation BEFORE preparation: a hostile row_ptr must not
  // reach the kernels.
  std::string bad;
  if (row_ptr[0] != 0) bad = "row_ptr[0] != 0";
  for (std::size_t i = 0; bad.empty() && i < n; ++i)
    if (row_ptr[i + 1] < row_ptr[i]) bad = "row_ptr not nondecreasing";
  if (bad.empty() && static_cast<std::size_t>(row_ptr[n]) != nnz) bad = "row_ptr[n] != nnz";
  for (std::size_t i = 0; bad.empty() && i < nnz; ++i)
    if (col_idx[i] < 0 || static_cast<std::size_t>(col_idx[i]) >= n)
      bad = "col_idx out of range";
  if (!bad.empty()) return send_err(fd, "bad-matrix", bad);

  CsrMatrix<double> a(static_cast<index_t>(n), static_cast<index_t>(n));
  a.row_ptr = std::move(row_ptr);
  a.col_idx = std::move(col_idx);
  a.vals = std::move(vals);
  ProblemTable::PutOutcome out;
  try {
    out = problems_.put_matrix(std::move(a), r.symmetric);
  } catch (const std::exception& e) {
    return send_err(fd, "bad-matrix", e.what());
  }
  return write_line(fd, "HANDLE " + fingerprint_hex(out.handle) + " " + std::to_string(n) +
                            " " + std::to_string(nnz) + (out.cached ? " CACHED" : " NEW"));
}

bool Server::handle_putgen(int fd, const Request& r) {
  ProblemTable::PutOutcome out;
  try {
    out = problems_.put_standin(r.standin, r.scale);
  } catch (const std::exception& e) {
    return send_err(fd, "bad-matrix", e.what());
  }
  const CsrMatrix<double>& a = out.problem->a->csr_fp64();
  return write_line(fd, "HANDLE " + fingerprint_hex(out.handle) + " " +
                            std::to_string(a.nrows) + " " + std::to_string(a.nnz()) +
                            (out.cached ? " CACHED" : " NEW"));
}

bool Server::handle_solve(int fd, BufferedReader& in, const Request& r) {
  const auto n = static_cast<std::size_t>(r.n);
  const auto k = static_cast<std::size_t>(r.k);

  // Decide acceptance BEFORE touching the payload; a rejected request has
  // a known payload size, so we drain it and keep the connection.
  std::shared_ptr<const PreparedProblem> p = problems_.find(r.handle);
  std::string err_code;
  std::string err_msg;
  SolverSpec spec;
  if (!p) {
    err_code = "unknown-handle";
    err_msg = fingerprint_hex(r.handle);
  } else if (p->b.size() != n) {
    err_code = "bad-request";
    err_msg = "n=" + std::to_string(n) + " but handle has n=" + std::to_string(p->b.size());
  } else {
    try {
      spec = SolverSpec::parse(r.spec);
    } catch (const SpecError& e) {
      err_code = "bad-spec";
      err_msg = e.what();
    }
  }
  if (!err_code.empty()) {
    std::vector<double> sink(4096);
    std::size_t remaining = k * n * sizeof(double);
    while (remaining > 0) {
      const std::size_t take = std::min(remaining, sink.size() * sizeof(double));
      if (!in.read_exact(sink.data(), take)) return false;
      remaining -= take;
    }
    return send_err(fd, err_code, err_msg);
  }

  // No value screening here: a NaN-poisoned column is the ENGINE's job to
  // retire (kNonFinite / kInvalidInput per column), and the other columns
  // of its shared batch must complete normally.
  std::vector<std::vector<double>> columns(k);
  for (std::size_t c = 0; c < k; ++c) {
    columns[c].resize(n);
    if (!in.read_exact(columns[c].data(), n * sizeof(double))) return false;
  }

  const std::uint64_t request_id = next_request_id_.fetch_add(1);
  std::vector<std::future<ColumnOutcome>> futures =
      executor_.submit(r.handle, std::move(p), spec, std::move(columns), request_id);

  std::vector<ColumnOutcome> outcomes;
  outcomes.reserve(k);
  for (auto& f : futures) outcomes.push_back(f.get());

  if (!write_line(fd, "RESULT " + std::to_string(k) + " " + std::to_string(n))) return false;
  for (std::size_t c = 0; c < k; ++c)
    if (!write_line(fd, format_col_line(static_cast<int>(c), outcomes[c].result)))
      return false;
  for (std::size_t c = 0; c < k; ++c)
    if (!write_all(fd, outcomes[c].x.data(), n * sizeof(double))) return false;
  return true;
}

std::string Server::stats_line() const {
  const ProblemTable::Stats ps = problems_.stats();
  const SessionCache::Stats ss = executor_.sessions().stats();
  const SolveExecutor::Stats xs = executor_.stats();
  std::ostringstream os;
  os << "STATS problem_hits=" << ps.hits << " problem_misses=" << ps.misses
     << " problem_resident=" << ps.resident << " session_hits=" << ss.hits
     << " session_misses=" << ss.misses << " session_evictions=" << ss.evictions
     << " session_resident=" << ss.resident << " columns=" << xs.columns
     << " batches=" << xs.batches << " merged_batches=" << xs.merged_batches
     << " widest_batch=" << xs.widest_batch;
  // Autotuner counters (process-wide; nonzero only once a client has sent
  // a "auto" spec): DB answers vs cold tuning runs vs probe solves burned.
  const tune::TuneDbStats ts = tune::tune_db().stats();
  os << " tuner_hits=" << ts.hits << " tuner_misses=" << ts.misses
     << " tuner_probes=" << ts.probes;
  return os.str();
}

}  // namespace nk::service
